//===- tests/alloc/BaselineTest.cpp - GC / LS / BLS tests -----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/GraphColoring.h"
#include "alloc/LinearScan.h"

#include "alloc/Allocator.h"
#include "alloc/OptimalBnB.h"
#include "core/ProblemBuilder.h"
#include "graph/Coloring.h"
#include "graph/Generators.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "suites/Suites.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace layra;

TEST(GraphColoringTest, ProducesProperColoringWithinR) {
  Rng R(61);
  for (int Round = 0; Round < 25; ++Round) {
    Graph G = randomGraph(R, 20 + static_cast<unsigned>(R.nextBelow(30)),
                          0.25, 30);
    unsigned Regs = 2 + static_cast<unsigned>(R.nextBelow(6));
    AllocationProblem P =
        AllocationProblem::fromGeneralGraph(G, Regs, {});
    GraphColoringAllocator GC;
    AllocationResult Result = GC.allocate(P);
    const std::vector<unsigned> &Colors = GC.lastColoring();
    EXPECT_TRUE(isProperColoring(P.graph(), Colors));
    for (VertexId V = 0; V < P.graph().numVertices(); ++V) {
      if (Result.Allocated[V]) {
        EXPECT_LT(Colors[V], Regs);
      } else {
        EXPECT_EQ(Colors[V], ~0u);
      }
    }
  }
}

TEST(GraphColoringTest, ColorsEverythingWhenDegreesAreLow) {
  // A tree has degeneracy 1: 2 registers always suffice.
  Graph G(10);
  for (VertexId V = 1; V < 10; ++V) {
    G.addEdge(V, (V - 1) / 2);
    G.setWeight(V, 5);
  }
  G.setWeight(0, 5);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 2);
  GraphColoringAllocator GC;
  EXPECT_EQ(GC.allocate(P).SpillCost, 0);
}

TEST(GraphColoringTest, SpillsOnKPlusOneClique) {
  // K4 with 3 registers: exactly one vertex must spill, the cheapest one
  // by cost/degree (all degrees equal => cheapest cost).
  Graph G(4);
  G.setWeight(0, 10);
  G.setWeight(1, 2);
  G.setWeight(2, 8);
  G.setWeight(3, 9);
  for (VertexId A = 0; A < 4; ++A)
    for (VertexId B = A + 1; B < 4; ++B)
      G.addEdge(A, B);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 3);
  GraphColoringAllocator GC;
  AllocationResult Result = GC.allocate(P);
  EXPECT_EQ(Result.SpillCost, 2);
  EXPECT_FALSE(Result.Allocated[1]);
}

TEST(GraphColoringTest, OptimisticColoringBeatsPessimism) {
  // Diamond (C4 + no chord is 2-colorable but Chaitin's rule would push a
  // node at R=2 since all degrees are 2): optimism must color everything.
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 0);
  for (VertexId V = 0; V < 4; ++V)
    G.setWeight(V, 7);
  AllocationProblem P = AllocationProblem::fromGeneralGraph(G, 2, {});
  GraphColoringAllocator GC;
  EXPECT_EQ(GC.allocate(P).SpillCost, 0);
}

namespace {
AllocationProblem ssaProblem(Rng &R, unsigned Regs) {
  ProgramGenOptions Opt;
  Opt.NumVars = 14;
  Opt.MaxBlocks = 28;
  Function F = generateFunction(R, Opt);
  SsaConversion Conv = convertToSsa(F);
  return buildSsaProblem(Conv.Ssa, ST231, Regs);
}
} // namespace

TEST(LinearScanTest, RespectsIntervalCapacity) {
  Rng R(62);
  for (int Round = 0; Round < 15; ++Round) {
    unsigned Regs = 2 + static_cast<unsigned>(R.nextBelow(6));
    AllocationProblem P = ssaProblem(R, Regs);
    ASSERT_TRUE(P.Intervals.has_value());
    for (const char *Name : {"ls", "bls"}) {
      auto LS = makeAllocator(Name);
      AllocationResult Result = LS->allocate(P);
      // Allocated intervals never exceed R simultaneously.
      std::vector<LiveInterval> Kept;
      for (const LiveInterval &I : P.Intervals->Intervals)
        if (Result.Allocated[I.V])
          Kept.push_back(I);
      LiveIntervalTable Sub;
      Sub.Intervals = Kept;
      EXPECT_LE(Sub.maxOverlap(), Regs) << Name << " round " << Round;
    }
  }
}

TEST(LinearScanTest, CostAwareBlsBeatsBlindLsOnJitWorkload) {
  // On the JIT-shaped workload (the paper's Figure 14 setting) cost-aware
  // BLS clearly beats the cost-blind policy, and the gap widens with the
  // register count (DLS keeps spilling hot intervals it should not).
  Suite S = makeSpecJvm98();
  for (unsigned Regs : {4u, 8u}) {
    Weight TotalLs = 0, TotalBls = 0;
    for (const NamedProblem &NP : generalProblems(S, ARMv7, Regs)) {
      TotalLs += makeAllocator("ls")->allocate(NP.P).SpillCost;
      TotalBls += makeAllocator("bls")->allocate(NP.P).SpillCost;
    }
    EXPECT_LT(TotalBls, TotalLs) << "R=" << Regs;
  }
}

TEST(LinearScanTest, EnoughRegistersSpillNothing) {
  Rng R(64);
  AllocationProblem P = ssaProblem(R, 64);
  EXPECT_EQ(makeAllocator("ls")->allocate(P).SpillCost, 0);
  EXPECT_EQ(makeAllocator("bls")->allocate(P).SpillCost, 0);
}

namespace {
/// A problem whose interval table is exactly \p Ivs (in increasing Start
/// order), with interference edges between every overlapping pair so the
/// instance is self-consistent.
AllocationProblem intervalProblem(std::vector<LiveInterval> Ivs,
                                  unsigned Regs) {
  Graph G(static_cast<unsigned>(Ivs.size()));
  unsigned MaxEnd = 0;
  for (size_t I = 0; I < Ivs.size(); ++I) {
    G.setWeight(Ivs[I].V, Ivs[I].Cost);
    MaxEnd = std::max(MaxEnd, Ivs[I].End);
    for (size_t J = 0; J < I; ++J)
      if (Ivs[I].overlaps(Ivs[J]))
        G.addEdge(Ivs[I].V, Ivs[J].V);
  }
  AllocationProblem P = AllocationProblem::fromGeneralGraph(G, Regs, {});
  LiveIntervalTable Table;
  Table.Intervals = std::move(Ivs);
  Table.NumPoints = MaxEnd + 1;
  P.Intervals = std::move(Table);
  return P;
}
} // namespace

TEST(CostBeladyTest, SpillsCurrentWhenNoActiveIntervalIsEligible) {
  // Active interval costs 100, current costs 10: with threshold 0.25 the
  // limit is 12.5, so the active interval is ineligible and the *current*
  // interval spills -- even though it ends first.  Cost-blind LS would
  // evict the long expensive interval instead.
  AllocationProblem P = intervalProblem(
      {{/*V=*/0, /*Start=*/0, /*End=*/100, /*Cost=*/100},
       {/*V=*/1, /*Start=*/10, /*End=*/20, /*Cost=*/10}},
      /*Regs=*/1);
  LinearScanAllocator Bls(LinearScanAllocator::PolicyKind::CostBelady, 0.25);
  AllocationResult R = Bls.allocate(P);
  EXPECT_TRUE(R.Allocated[0]);
  EXPECT_FALSE(R.Allocated[1]);
  EXPECT_EQ(R.SpillCost, 10);

  LinearScanAllocator Ls(LinearScanAllocator::PolicyKind::FurthestEnd);
  AllocationResult Blind = Ls.allocate(P);
  EXPECT_FALSE(Blind.Allocated[0]);
  EXPECT_TRUE(Blind.Allocated[1]);
  EXPECT_EQ(Blind.SpillCost, 100);
}

TEST(CostBeladyTest, EvictsCheapActiveWhenCurrentIsIneligible) {
  // The cheap interval is active and the expensive one arrives: the
  // current interval is over the threshold but the cheapest candidate is
  // always eligible, so the active interval is evicted and the expensive
  // value keeps its register.
  AllocationProblem P = intervalProblem(
      {{/*V=*/0, /*Start=*/0, /*End=*/50, /*Cost=*/10},
       {/*V=*/1, /*Start=*/5, /*End=*/100, /*Cost=*/100}},
      /*Regs=*/1);
  LinearScanAllocator Bls(LinearScanAllocator::PolicyKind::CostBelady, 0.25);
  AllocationResult R = Bls.allocate(P);
  EXPECT_FALSE(R.Allocated[0]);
  EXPECT_TRUE(R.Allocated[1]);
  EXPECT_EQ(R.SpillCost, 10);
}

TEST(CostBeladyTest, EqualCostsFallBackToFurthestEnd) {
  // All candidates cost the same, so every one is within the threshold and
  // the Belady rule decides: the interval ending furthest is evicted.
  AllocationProblem P = intervalProblem(
      {{/*V=*/0, /*Start=*/0, /*End=*/100, /*Cost=*/50},
       {/*V=*/1, /*Start=*/10, /*End=*/20, /*Cost=*/50}},
      /*Regs=*/1);
  LinearScanAllocator Bls(LinearScanAllocator::PolicyKind::CostBelady, 0.25);
  AllocationResult R = Bls.allocate(P);
  EXPECT_FALSE(R.Allocated[0]);
  EXPECT_TRUE(R.Allocated[1]);
}

TEST(CostBeladyTest, EqualCostEqualEndTieKeepsActiveInterval) {
  // Exact tie on cost *and* end point: eviction requires a strictly later
  // end, so the already-active interval keeps its register and the current
  // one spills -- deterministically.
  AllocationProblem P = intervalProblem(
      {{/*V=*/0, /*Start=*/0, /*End=*/30, /*Cost=*/50},
       {/*V=*/1, /*Start=*/10, /*End=*/30, /*Cost=*/50}},
      /*Regs=*/1);
  LinearScanAllocator Bls(LinearScanAllocator::PolicyKind::CostBelady, 0.25);
  AllocationResult R = Bls.allocate(P);
  EXPECT_TRUE(R.Allocated[0]);
  EXPECT_FALSE(R.Allocated[1]);
}

TEST(CostBeladyTest, ThresholdBoundaryIsInclusive) {
  // MinCost 4, threshold 0.25 -> limit 5.0 exactly.  An active interval
  // costing 5 is still eligible (<=), so its later end gets it evicted; at
  // cost 6 it drops out and the current interval spills instead.
  for (Weight ActiveCost : {Weight(5), Weight(6)}) {
    AllocationProblem P = intervalProblem(
        {{/*V=*/0, /*Start=*/0, /*End=*/100, /*Cost=*/ActiveCost},
         {/*V=*/1, /*Start=*/10, /*End=*/20, /*Cost=*/4}},
        /*Regs=*/1);
    LinearScanAllocator Bls(LinearScanAllocator::PolicyKind::CostBelady,
                            0.25);
    AllocationResult R = Bls.allocate(P);
    if (ActiveCost == 5) {
      EXPECT_FALSE(R.Allocated[0]);
      EXPECT_TRUE(R.Allocated[1]);
    } else {
      EXPECT_TRUE(R.Allocated[0]);
      EXPECT_FALSE(R.Allocated[1]);
    }
  }
}

TEST(AllocatorRegistryTest, AllNamesResolve) {
  for (const std::string &Name : allAllocatorNames()) {
    auto A = makeAllocator(Name);
    ASSERT_NE(A, nullptr) << Name;
    EXPECT_EQ(Name, A->name());
  }
  EXPECT_EQ(makeAllocator("nope"), nullptr);
}

TEST(AllocatorRegistryTest, EveryAllocatorIsFeasibleOnAnSsaInstance) {
  Rng R(65);
  AllocationProblem P = ssaProblem(R, 4);
  for (const std::string &Name : allAllocatorNames()) {
    if (Name == "brute" && P.graph().numVertices() > 24)
      continue;
    auto A = makeAllocator(Name);
    AllocationResult Result = A->allocate(P);
    EXPECT_TRUE(isFeasibleAllocation(P, Result.Allocated)) << Name;
    EXPECT_EQ(Result.AllocatedWeight + Result.SpillCost, P.graph().totalWeight())
        << Name;
  }
}

TEST(AllocatorRegistryTest, HeuristicsNeverBeatOptimal) {
  Rng R(66);
  for (int Round = 0; Round < 10; ++Round) {
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(8));
    AllocationProblem P = ssaProblem(R, Regs);
    OptimalBnBAllocator BnB;
    AllocationResult Optimal = BnB.allocate(P);
    ASSERT_TRUE(Optimal.Proven);
    for (const std::string &Name :
         {std::string("gc"), std::string("nl"), std::string("bl"),
          std::string("fpl"), std::string("bfpl"), std::string("lh"),
          std::string("ls"), std::string("bls")}) {
      AllocationResult Result = makeAllocator(Name)->allocate(P);
      EXPECT_GE(Result.SpillCost, Optimal.SpillCost)
          << Name << " round " << Round;
    }
  }
}
