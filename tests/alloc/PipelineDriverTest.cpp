//===- tests/alloc/PipelineDriverTest.cpp - Pipeline driver tests ---------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/Pipeline.h"

#include "ir/Dominators.h"
#include "ir/Liveness.h"
#include "ir/LoopInfo.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {
Function makeSsaFunction(uint64_t Seed, unsigned NumVars = 16) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  Opt.NumVars = NumVars;
  Opt.MaxBlocks = 28;
  Function F = generateFunction(R, Opt);
  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  Loops.annotate(F);
  return convertToSsa(F).Ssa;
}
} // namespace

TEST(PipelineDriverTest, ConvergesToFittingPressure) {
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    Function F = makeSsaFunction(Seed);
    for (unsigned Regs : {4u, 6u, 8u}) {
      PipelineResult Out = runAllocationPipeline(F, ST231, Regs);
      EXPECT_TRUE(verifyFunction(Out.Rewritten, /*ExpectSsa=*/true));
      // The driver iterates until long ranges fit; transient reload
      // pressure may exceed R by at most the machine's operand width, and
      // the assignment must succeed for the allocated set.
      EXPECT_LE(Out.Rounds, 4u);
      Liveness Live(Out.Rewritten);
      EXPECT_EQ(Out.FinalMaxLive, Live.maxLive(Out.Rewritten));
    }
  }
}

TEST(PipelineDriverTest, NoSpillsWhenPressureFits) {
  Function F = makeSsaFunction(7, /*NumVars=*/6);
  PipelineResult Out = runAllocationPipeline(F, ST231, 32);
  EXPECT_EQ(Out.TotalSpillCost, 0);
  EXPECT_EQ(Out.Spills.NumLoads + Out.Spills.NumStores, 0u);
  EXPECT_TRUE(Out.Fits);
  EXPECT_EQ(Out.Rounds, 1u);
}

TEST(PipelineDriverTest, SpillCodeAppearsUnderPressure) {
  Function F = makeSsaFunction(13, /*NumVars=*/20);
  // Precondition: this seed must actually exceed the register count, or the
  // expectations below would be vacuous.
  Liveness Live(F);
  ASSERT_GT(Live.maxLive(F), 3u);
  PipelineResult Out = runAllocationPipeline(F, ST231, 3);
  EXPECT_GT(Out.TotalSpillCost, 0);
  EXPECT_GT(Out.Spills.NumStores, 0u);
  EXPECT_GT(Out.Spills.NumLoads, 0u);
  // Spill code must actually appear in the function body.
  unsigned Loads = 0, Stores = 0;
  for (BlockId B = 0; B < Out.Rewritten.numBlocks(); ++B)
    for (const Instruction &I : Out.Rewritten.block(B).Instrs) {
      Loads += I.Op == Opcode::Load ? 1 : 0;
      Stores += I.Op == Opcode::Store ? 1 : 0;
    }
  EXPECT_EQ(Loads, Out.Spills.NumLoads);
  EXPECT_EQ(Stores, Out.Spills.NumStores);
}

TEST(PipelineDriverTest, AffinityBiasReducesCopyCost) {
  Weight WithBias = 0, WithoutBias = 0;
  for (uint64_t Seed : {21u, 22u, 23u, 24u, 25u, 26u}) {
    Function F = makeSsaFunction(Seed);
    PipelineOptions On, Off;
    On.AffinityBias = true;
    Off.AffinityBias = false;
    WithBias += runAllocationPipeline(F, ST231, 6, On).RemainingCopyCost;
    WithoutBias += runAllocationPipeline(F, ST231, 6, Off).RemainingCopyCost;
  }
  EXPECT_LE(WithBias, WithoutBias);
}

TEST(PipelineDriverTest, DifferentAllocatorsPlugIn) {
  Function F = makeSsaFunction(31);
  for (const char *Name : {"bfpl", "gc", "nl"}) {
    PipelineOptions Opt;
    Opt.AllocatorName = Name;
    PipelineResult Out = runAllocationPipeline(F, ST231, 5, Opt);
    EXPECT_TRUE(verifyFunction(Out.Rewritten, /*ExpectSsa=*/true)) << Name;
  }
}

TEST(PipelineDriverTest, CiscTargetFoldsReloadsAndStillFits) {
  Function F = makeSsaFunction(13, /*NumVars=*/20);
  Liveness Live(F);
  ASSERT_GT(Live.maxLive(F), 4u);

  PipelineOptions Fold, NoFold;
  NoFold.FoldMemoryOperands = false;
  PipelineResult WithFold = runAllocationPipeline(F, X86_64, 4, Fold);
  PipelineResult Without = runAllocationPipeline(F, X86_64, 4, NoFold);

  EXPECT_GT(WithFold.LoadsFolded, 0u);
  EXPECT_EQ(Without.LoadsFolded, 0u);
  EXPECT_TRUE(verifyFunction(WithFold.Rewritten, /*ExpectSsa=*/true));
  // Folding removes reload temporaries, so the final pressure is no worse.
  EXPECT_LE(WithFold.FinalMaxLive, Without.FinalMaxLive);
  // Residual loads in the folded function match inserted minus folded.
  unsigned Residual = 0;
  for (BlockId B = 0; B < WithFold.Rewritten.numBlocks(); ++B)
    for (const Instruction &I : WithFold.Rewritten.block(B).Instrs)
      Residual += I.Op == Opcode::Load ? 1 : 0;
  EXPECT_EQ(Residual, WithFold.Spills.NumLoads - WithFold.LoadsFolded);
}

TEST(PipelineDriverTest, RiscTargetNeverFolds) {
  Function F = makeSsaFunction(13, /*NumVars=*/20);
  PipelineResult Out = runAllocationPipeline(F, ST231, 4);
  EXPECT_EQ(Out.LoadsFolded, 0u);
}

TEST(PipelineDriverTest, BetterAllocatorSpillsNoMoreInRoundOne) {
  // BFPL's first-round spill cost is no worse than NL's across seeds.
  Weight Bfpl = 0, Nl = 0;
  for (uint64_t Seed : {41u, 42u, 43u, 44u}) {
    Function F = makeSsaFunction(Seed, 20);
    PipelineOptions A, B;
    A.AllocatorName = "bfpl";
    B.AllocatorName = "nl";
    Bfpl += runAllocationPipeline(F, ST231, 4, A).TotalSpillCost;
    Nl += runAllocationPipeline(F, ST231, 4, B).TotalSpillCost;
  }
  EXPECT_LE(Bfpl, Nl);
}
