//===- tests/alloc/OptimalTest.cpp - Exact solver tests -------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/OptimalBnB.h"

#include "alloc/BruteForce.h"
#include "alloc/OptimalInterval.h"
#include "core/ProblemBuilder.h"
#include "graph/Generators.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "suites/Suites.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(OptimalTest, MatchesBruteForceOnChordalGraphs) {
  Rng R(101);
  for (int Round = 0; Round < 50; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 4 + static_cast<unsigned>(R.nextBelow(16));
    Opt.MaxWeight = 30;
    Graph G = randomChordalGraph(R, Opt);
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(6));
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);
    OptimalBnBAllocator BnB;
    BruteForceAllocator Brute;
    AllocationResult Fast = BnB.allocate(P);
    AllocationResult Slow = Brute.allocate(P);
    EXPECT_TRUE(Fast.Proven);
    EXPECT_EQ(Fast.SpillCost, Slow.SpillCost)
        << "round " << Round << " R=" << Regs;
  }
}

TEST(OptimalTest, MatchesBruteForceOnGeneralPointConstraints) {
  // Non-chordal instances with arbitrary point constraints.
  Rng R(202);
  for (int Round = 0; Round < 40; ++Round) {
    unsigned N = 6 + static_cast<unsigned>(R.nextBelow(12));
    Graph G = randomGraph(R, N, 0.3, 25);
    // Random constraint sets of size 2..5.
    std::vector<std::vector<VertexId>> Sets;
    unsigned NumSets = 3 + static_cast<unsigned>(R.nextBelow(8));
    for (unsigned S = 0; S < NumSets; ++S) {
      std::set<VertexId> Set;
      unsigned Size = 2 + static_cast<unsigned>(R.nextBelow(4));
      for (unsigned I = 0; I < Size; ++I)
        Set.insert(static_cast<VertexId>(R.nextBelow(N)));
      Sets.emplace_back(Set.begin(), Set.end());
    }
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(3));
    AllocationProblem P =
        AllocationProblem::fromGeneralGraph(std::move(G), Regs, Sets);
    OptimalBnBAllocator BnB;
    BruteForceAllocator Brute;
    EXPECT_EQ(BnB.allocate(P).SpillCost, Brute.allocate(P).SpillCost)
        << "round " << Round;
  }
}

TEST(OptimalTest, FlowSolverAgreesOnIntervalInstances) {
  // Independent cross-check: min-cost-flow exact selection on intervals vs
  // branch-and-bound on the equivalent point-constraint problem.
  Rng R(303);
  for (int Round = 0; Round < 30; ++Round) {
    unsigned N = 5 + static_cast<unsigned>(R.nextBelow(30));
    std::vector<LiveInterval> Intervals(N);
    Graph G;
    for (unsigned I = 0; I < N; ++I) {
      Intervals[I].V = I;
      Intervals[I].Start = static_cast<unsigned>(R.nextBelow(40));
      Intervals[I].End =
          Intervals[I].Start + static_cast<unsigned>(R.nextBelow(12));
      Intervals[I].Cost = static_cast<Weight>(R.nextInRange(1, 25));
      G.addVertex(Intervals[I].Cost);
    }
    // Point constraints: live sets at every coordinate.
    std::vector<std::vector<VertexId>> Sets;
    for (unsigned Point = 0; Point < 55; ++Point) {
      std::vector<VertexId> Live;
      for (unsigned I = 0; I < N; ++I)
        if (Intervals[I].Start <= Point && Point <= Intervals[I].End)
          Live.push_back(I);
      if (Live.size() > 1)
        Sets.push_back(std::move(Live));
    }
    for (unsigned A = 0; A < N; ++A)
      for (unsigned B = A + 1; B < N; ++B)
        if (Intervals[A].overlaps(Intervals[B]))
          G.addEdge(A, B);

    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(5));
    std::vector<char> Keep = selectIntervalsOptimal(Intervals, Regs);
    Weight FlowWeight = 0;
    for (unsigned I = 0; I < N; ++I)
      if (Keep[I])
        FlowWeight += Intervals[I].Cost;

    AllocationProblem P =
        AllocationProblem::fromGeneralGraph(std::move(G), Regs, Sets);
    OptimalBnBAllocator BnB;
    AllocationResult Result = BnB.allocate(P);
    EXPECT_TRUE(Result.Proven);
    EXPECT_EQ(FlowWeight, Result.AllocatedWeight) << "round " << Round;
  }
}

TEST(OptimalTest, ProvenOnSuiteSizedSsaInstances) {
  // The solver must prove optimality on the actual suite instances the
  // benchmark harness sweeps (here: the two largest SPEC-like programs).
  Suite S = makeSpec2000Int();
  S.Programs.resize(2);
  for (unsigned Regs : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::vector<NamedProblem> Problems = chordalProblems(S, ST231, Regs);
    for (NamedProblem &NP : Problems) {
      OptimalBnBAllocator BnB;
      AllocationResult Result = BnB.allocate(NP.P);
      EXPECT_TRUE(Result.Proven)
          << NP.Program << "/" << NP.Function << " R=" << Regs
          << " V=" << NP.P.graph().numVertices() << " maxlive=" << NP.P.maxLive();
      EXPECT_TRUE(isFeasibleAllocation(NP.P, Result.Allocated));
    }
  }
}

TEST(OptimalTest, NodeLimitReportsUnproven) {
  Rng R(505);
  ChordalGenOptions Opt;
  Opt.NumVertices = 60;
  Opt.SubtreeSpread = 0.5; // Dense.
  Graph G = randomChordalGraph(R, Opt);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 8);
  OptimalBnBAllocator Tiny(/*NodeLimit=*/3);
  AllocationResult Result = Tiny.allocate(P);
  // With 3 nodes the search cannot finish (unless preprocessing solved it);
  // the incumbent must still be feasible.
  EXPECT_TRUE(isFeasibleAllocation(P, Result.Allocated));
  if (!Result.Proven) {
    EXPECT_GT(Result.AllocatedWeight, 0);
  }
}

TEST(OptimalTest, FreeVerticesAlwaysAllocated) {
  // Constraints of size <= R never bind: everything is allocated.
  Graph G(5);
  for (VertexId V = 0; V < 5; ++V)
    G.setWeight(V, 1 + V);
  G.addEdge(0, 1);
  G.addEdge(2, 3);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 2);
  OptimalBnBAllocator BnB;
  AllocationResult Result = BnB.allocate(P);
  EXPECT_EQ(Result.SpillCost, 0);
  EXPECT_TRUE(Result.Proven);
}
