//===- tests/alloc/OptimalIntervalTest.cpp - Flow-exact solver tests ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/OptimalInterval.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {
LiveInterval iv(ValueId V, unsigned Start, unsigned End, Weight Cost) {
  LiveInterval I;
  I.V = V;
  I.Start = Start;
  I.End = End;
  I.Cost = Cost;
  return I;
}
} // namespace

TEST(OptimalIntervalTest, EmptyInput) {
  EXPECT_TRUE(selectIntervalsOptimal({}, 4).empty());
}

TEST(OptimalIntervalTest, ZeroRegistersKeepNothing) {
  std::vector<LiveInterval> Is{iv(0, 0, 5, 10)};
  std::vector<char> Keep = selectIntervalsOptimal(Is, 0);
  EXPECT_EQ(Keep, std::vector<char>{0});
}

TEST(OptimalIntervalTest, DisjointIntervalsAllKept) {
  std::vector<LiveInterval> Is{iv(0, 0, 1, 5), iv(1, 2, 3, 5),
                               iv(2, 4, 5, 5)};
  std::vector<char> Keep = selectIntervalsOptimal(Is, 1);
  EXPECT_EQ(Keep, (std::vector<char>{1, 1, 1}));
}

TEST(OptimalIntervalTest, OverlapForcesCheapestOut) {
  // Three intervals all overlapping at [2,3], R = 2: drop the cheapest.
  std::vector<LiveInterval> Is{iv(0, 0, 4, 10), iv(1, 1, 5, 2),
                               iv(2, 2, 3, 7)};
  std::vector<char> Keep = selectIntervalsOptimal(Is, 2);
  EXPECT_EQ(Keep, (std::vector<char>{1, 0, 1}));
}

TEST(OptimalIntervalTest, PrefersTwoSmallOverOneLarge) {
  // One long expensive interval vs two short ones that together outweigh
  // it; R = 1 and all three share a point? No: the two short ones do not
  // overlap each other, so keeping both (4+4=8) beats the long one (5).
  std::vector<LiveInterval> Is{iv(0, 0, 9, 5), iv(1, 0, 3, 4),
                               iv(2, 5, 9, 4)};
  std::vector<char> Keep = selectIntervalsOptimal(Is, 1);
  EXPECT_EQ(Keep, (std::vector<char>{0, 1, 1}));
}

TEST(OptimalIntervalTest, TouchingEndpointsOverlap) {
  // End is inclusive: [0,2] and [2,4] DO overlap at point 2.
  std::vector<LiveInterval> Is{iv(0, 0, 2, 5), iv(1, 2, 4, 6)};
  std::vector<char> Keep = selectIntervalsOptimal(Is, 1);
  EXPECT_EQ(Keep[0] + Keep[1], 1); // Only one fits.
  EXPECT_EQ(Keep[1], 1);           // The heavier one.
}
