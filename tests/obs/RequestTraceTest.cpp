//===- tests/obs/RequestTraceTest.cpp - Request trace tests ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-scoped span trees (obs/RequestTrace.h): trace id generation
/// and wire validation, span bookkeeping, per-job phase attachment, and
/// the JSON shapes echoed in traced responses and slow-request lines.
///
//===----------------------------------------------------------------------===//

#include "obs/RequestTrace.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>

using namespace layra;
using obs::RequestTrace;

TEST(TraceIdTest, MakeTraceIdIsDeterministicHex) {
  std::string A = obs::makeTraceId(42, 1);
  std::string B = obs::makeTraceId(42, 1);
  EXPECT_EQ(A, B);
  ASSERT_EQ(A.size(), 16u);
  for (char C : A)
    EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')) << A;
}

TEST(TraceIdTest, DistinctInputsGiveDistinctIds) {
  std::set<std::string> Ids;
  for (uint64_t Seq = 1; Seq <= 100; ++Seq)
    Ids.insert(obs::makeTraceId(7, Seq));
  for (uint64_t Salt = 0; Salt < 100; ++Salt)
    Ids.insert(obs::makeTraceId(Salt, 1));
  // (7, 1) appears in both loops: exactly one expected duplicate.
  EXPECT_EQ(Ids.size(), 199u);
}

TEST(TraceIdTest, ValidationAcceptsWireSafeIds) {
  EXPECT_TRUE(obs::isValidTraceId("a"));
  EXPECT_TRUE(obs::isValidTraceId("lg0-17"));
  EXPECT_TRUE(obs::isValidTraceId("svc:prod.us-2_req"));
  EXPECT_TRUE(obs::isValidTraceId(std::string(64, 'x')));
}

TEST(TraceIdTest, ValidationRejectsEmptyLongAndUnsafe) {
  EXPECT_FALSE(obs::isValidTraceId(""));
  EXPECT_FALSE(obs::isValidTraceId(std::string(65, 'x')));
  EXPECT_FALSE(obs::isValidTraceId("has space"));
  EXPECT_FALSE(obs::isValidTraceId("quote\"inject"));
  EXPECT_FALSE(obs::isValidTraceId("new\nline"));
  EXPECT_FALSE(obs::isValidTraceId("slash/path"));
}

TEST(RequestTraceTest, InactiveUntilBegun) {
  RequestTrace Trace;
  EXPECT_FALSE(Trace.active());
  Trace.begin("req-1", std::chrono::steady_clock::now());
  EXPECT_TRUE(Trace.active());
  EXPECT_EQ(Trace.id(), "req-1");
}

TEST(RequestTraceTest, SpansAccumulateAndNegativesClamp) {
  RequestTrace Trace;
  Trace.begin("req-1", std::chrono::steady_clock::now());
  Trace.addSpan("accept", 0, 0.5);
  Trace.addSpan("queue_wait", 0.5, -0.001); // Clock skew: clamps to 0.
  ASSERT_EQ(Trace.spans().size(), 2u);
  EXPECT_TRUE(Trace.hasSpan("accept"));
  EXPECT_TRUE(Trace.hasSpan("queue_wait"));
  EXPECT_FALSE(Trace.hasSpan("driver"));
  EXPECT_EQ(Trace.spans()[1].DurMs, 0.0);
}

TEST(RequestTraceTest, ToJsonCarriesIdAndOrderedSpans) {
  RequestTrace Trace;
  Trace.begin("req-json", std::chrono::steady_clock::now());
  Trace.addSpan("accept", 0, 0.25);
  Trace.addSpan("dispatch", 0.25, 1.5);

  JsonValue Doc = Trace.toJson();
  const JsonValue *Id = Doc.find("id");
  ASSERT_NE(Id, nullptr);
  EXPECT_EQ(Id->stringValue(), "req-json");
  const JsonValue *Spans = Doc.find("spans");
  ASSERT_NE(Spans, nullptr);
  ASSERT_EQ(Spans->size(), 2u);
  EXPECT_EQ(Spans->at(0).find("name")->stringValue(), "accept");
  EXPECT_EQ(Spans->at(1).find("name")->stringValue(), "dispatch");
  EXPECT_EQ(Spans->at(1).find("start_ms")->numberValue(), 0.25);
  EXPECT_EQ(Spans->at(1).find("dur_ms")->numberValue(), 1.5);
  // No jobs attached: the member is omitted entirely.
  EXPECT_EQ(Doc.find("jobs"), nullptr);
}

TEST(RequestTraceTest, AttachedJobPhasesOmitZeroCountPhases) {
  RequestTrace Trace;
  Trace.begin("req-phases", std::chrono::steady_clock::now());

  std::vector<PhaseTotals> Phases(2);
  Phases[0].Ms[size_t(Phase::Liveness)] = 3.5;
  Phases[0].Count[size_t(Phase::Liveness)] = 7;
  // Job 1 never ran anything: its phase list must come out empty.
  Trace.attachJobPhases(Phases);

  JsonValue Doc = Trace.toJson();
  const JsonValue *Jobs = Doc.find("jobs");
  ASSERT_NE(Jobs, nullptr);
  ASSERT_EQ(Jobs->size(), 2u);

  const JsonValue *P0 = Jobs->at(0).find("phases");
  ASSERT_NE(P0, nullptr);
  ASSERT_EQ(P0->size(), 1u);
  EXPECT_EQ(P0->at(0).find("name")->stringValue(),
            phaseName(Phase::Liveness));
  EXPECT_EQ(P0->at(0).find("self_ms")->numberValue(), 3.5);
  EXPECT_EQ(P0->at(0).find("count")->numberValue(), 7.0);

  const JsonValue *P1 = Jobs->at(1).find("phases");
  ASSERT_NE(P1, nullptr);
  EXPECT_EQ(P1->size(), 0u);
}

TEST(RequestTraceTest, IdJsonIsMinimal) {
  RequestTrace Trace;
  Trace.begin("req-min", std::chrono::steady_clock::now());
  JsonValue Doc = Trace.idJson();
  EXPECT_EQ(Doc.size(), 1u);
  ASSERT_NE(Doc.find("id"), nullptr);
  EXPECT_EQ(Doc.find("id")->stringValue(), "req-min");
}

TEST(RequestTraceTest, SinceBeginIsMonotone) {
  RequestTrace Trace;
  auto Epoch = std::chrono::steady_clock::now() -
               std::chrono::milliseconds(5);
  Trace.begin("req-mono", Epoch);
  double A = Trace.sinceBeginMs();
  double B = Trace.sinceBeginMs();
  EXPECT_GE(A, 5.0);
  EXPECT_GE(B, A);
}
