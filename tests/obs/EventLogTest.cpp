//===- tests/obs/EventLogTest.cpp - Event ring tests ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight-recorder ring (obs/EventLog.h): disabled no-op contract,
/// payload truncation, wrap-around windowing, concurrent writers,
/// snapshot-during-record safety, the JSON-lines dump format, and the
/// atomic file writer behind --event-log / --metrics-dump.
///
//===----------------------------------------------------------------------===//

#include "obs/EventLog.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace layra;
using obs::EventKind;
using obs::EventLog;

TEST(EventLogTest, DisabledRecordIsANoOp) {
  EventLog Log(8);
  EXPECT_FALSE(Log.enabled());
  Log.record(EventKind::RequestStart, 1.0, "t1", "allocate");
  EXPECT_EQ(Log.recorded(), 0u);
  EXPECT_TRUE(Log.snapshot().empty());
}

TEST(EventLogTest, RecordsSequencedTypedEvents) {
  EventLog Log(8);
  Log.setEnabled(true);
  Log.record(EventKind::RequestStart, 0, "trace-a", "allocate");
  Log.record(EventKind::RequestEnd, 12.5, "trace-a", "allocate");
  Log.record(EventKind::DrainBegin);

  std::vector<EventLog::Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Seq, 0u);
  EXPECT_EQ(Events[0].Kind, EventKind::RequestStart);
  EXPECT_STREQ(Events[0].Trace, "trace-a");
  EXPECT_STREQ(Events[0].Detail, "allocate");
  EXPECT_EQ(Events[1].Kind, EventKind::RequestEnd);
  EXPECT_EQ(Events[1].Value, 12.5);
  EXPECT_EQ(Events[2].Kind, EventKind::DrainBegin);
  EXPECT_STREQ(Events[2].Trace, "");
  // Timestamps are monotone against the log's own epoch.
  EXPECT_LE(Events[0].TsMs, Events[1].TsMs);
  EXPECT_LE(Events[1].TsMs, Events[2].TsMs);
}

TEST(EventLogTest, OverlongPayloadsTruncateWithTerminator) {
  EventLog Log(4);
  Log.setEnabled(true);
  std::string LongTrace(200, 'x');
  std::string LongDetail(200, 'y');
  Log.record(EventKind::Reject, 0, LongTrace.c_str(), LongDetail.c_str());
  std::vector<EventLog::Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(std::strlen(Events[0].Trace), EventLog::kTraceBytes - 1);
  EXPECT_EQ(std::strlen(Events[0].Detail), EventLog::kDetailBytes - 1);
}

TEST(EventLogTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventLog(5).capacity(), 8u);
  EXPECT_EQ(EventLog(8).capacity(), 8u);
  EXPECT_EQ(EventLog(1).capacity(), 2u);
}

TEST(EventLogTest, WrapAroundKeepsTheMostRecentWindow) {
  EventLog Log(8);
  Log.setEnabled(true);
  for (int I = 0; I < 20; ++I)
    Log.record(EventKind::RequestEnd, double(I));
  EXPECT_EQ(Log.recorded(), 20u);
  std::vector<EventLog::Event> Events = Log.snapshot();
  // Only the last capacity() events survive, oldest first.
  ASSERT_EQ(Events.size(), 8u);
  for (size_t I = 0; I < Events.size(); ++I) {
    EXPECT_EQ(Events[I].Seq, 12 + I);
    EXPECT_EQ(Events[I].Value, double(12 + I));
  }
}

TEST(EventLogTest, ConcurrentWritersLoseNothing) {
  EventLog Log(1 << 16); // Larger than the total write count: no laps.
  Log.setEnabled(true);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 10000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T)
    Threads.emplace_back([&Log, T] {
      for (unsigned I = 0; I < kPerThread; ++I)
        Log.record(EventKind::RequestStart, double(T));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Log.recorded(), uint64_t(kThreads) * kPerThread);
  std::vector<EventLog::Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), size_t(kThreads) * kPerThread);
  // Sequence numbers are unique and strictly increasing: every slot was
  // published exactly once and the snapshot orders them correctly.
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].Seq, Events[I - 1].Seq + 1);
}

TEST(EventLogTest, SnapshotDuringConcurrentRecordStaysConsistent) {
  EventLog Log(16); // Small ring: snapshots race lapping writers hard.
  Log.setEnabled(true);
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    uint64_t I = 0;
    while (!Stop.load(std::memory_order_relaxed))
      Log.record(EventKind::RequestEnd, double(I++));
  });
  // Every snapshot taken mid-stream must be internally consistent:
  // strictly increasing seqs, and each surviving event's Value matches
  // the Seq it was written with (a torn copy would break the pairing).
  for (int Round = 0; Round < 200; ++Round) {
    std::vector<EventLog::Event> Events = Log.snapshot();
    for (size_t I = 0; I < Events.size(); ++I) {
      EXPECT_EQ(Events[I].Value, double(Events[I].Seq));
      if (I > 0) {
        EXPECT_GT(Events[I].Seq, Events[I - 1].Seq);
      }
    }
  }
  Stop = true;
  Writer.join();
}

TEST(EventLogTest, JsonLinesParseAndCarryTheVocabulary) {
  EventLog Log(8);
  Log.setEnabled(true);
  Log.record(EventKind::RequestStart, 0, "id-1", "allocate");
  Log.record(EventKind::SlowRequest, 34.25, "id-1");
  Log.record(EventKind::Dump, 0, nullptr, "sigquit");

  std::string Text = Log.toJsonLines();
  std::istringstream In(Text);
  std::string Line;
  std::vector<std::string> Kinds;
  while (std::getline(In, Line)) {
    JsonParseResult Parsed = parseJson(Line);
    ASSERT_TRUE(Parsed.Ok) << Parsed.Error << " in: " << Line;
    const JsonValue *Kind = Parsed.Value.find("event");
    ASSERT_NE(Kind, nullptr);
    Kinds.push_back(Kind->stringValue());
    ASSERT_NE(Parsed.Value.find("seq"), nullptr);
    ASSERT_NE(Parsed.Value.find("ts_ms"), nullptr);
  }
  ASSERT_EQ(Kinds.size(), 3u);
  EXPECT_EQ(Kinds[0], "request_start");
  EXPECT_EQ(Kinds[1], "slow_request");
  EXPECT_EQ(Kinds[2], "dump");
}

TEST(EventLogTest, ResetDropsEventsAndRestartsSequencing) {
  EventLog Log(8);
  Log.setEnabled(true);
  Log.record(EventKind::RequestStart);
  Log.reset();
  EXPECT_EQ(Log.recorded(), 0u);
  EXPECT_TRUE(Log.snapshot().empty());
  Log.record(EventKind::RequestEnd);
  std::vector<EventLog::Event> Events = Log.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Seq, 0u);
  EXPECT_EQ(Events[0].Kind, EventKind::RequestEnd);
}

TEST(EventLogTest, EveryKindHasAStableName) {
  std::set<std::string> Names;
  for (int K = 0; K <= int(EventKind::Fatal); ++K)
    Names.insert(obs::eventKindName(EventKind(K)));
  // All distinct, none empty.
  EXPECT_EQ(Names.size(), size_t(int(EventKind::Fatal)) + 1);
  EXPECT_EQ(Names.count(""), 0u);
}

TEST(WriteFileAtomicallyTest, WritesContentAndLeavesNoTempFile) {
  std::string Path =
      "/tmp/layra-evlog-test-" + std::to_string(::getpid()) + ".txt";
  std::string Error;
  ASSERT_TRUE(obs::writeFileAtomically(Path, "first\n", &Error)) << Error;
  // Overwrite: readers of Path see either old or new, never a mix.
  ASSERT_TRUE(obs::writeFileAtomically(Path, "second\n", &Error)) << Error;

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  char Buf[64] = {};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  EXPECT_EQ(std::string(Buf, N), "second\n");

  // The temp file must not survive a successful rename.
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  EXPECT_EQ(::access(Tmp.c_str(), F_OK), -1);
  std::remove(Path.c_str());
}

TEST(WriteFileAtomicallyTest, FailureReportsErrorAndCleansUp) {
  std::string Error;
  EXPECT_FALSE(obs::writeFileAtomically(
      "/nonexistent-dir-layra/evlog.txt", "x", &Error));
  EXPECT_FALSE(Error.empty());
}
