//===- tests/obs/MetricsTest.cpp - Metrics registry tests -----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics core (obs/Metrics.h): log-linear bucket geometry, percentile
/// readout against an exact sorted reference, per-thread shard merging,
/// counter overflow arithmetic, and the Prometheus/text expositions.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

using namespace layra;

//===----------------------------------------------------------------------===//
// Bucket geometry
//===----------------------------------------------------------------------===//

TEST(HistogramBucketsTest, BucketsPartitionTheTickRange) {
  // Every bucket's [low, high) range must start exactly where the previous
  // one ended: no gaps, no overlaps, over the whole geometry.
  uint64_t PrevHigh = 0;
  for (unsigned I = 0; I < hist::kNumBuckets; ++I) {
    EXPECT_EQ(hist::bucketLowTicks(I), PrevHigh) << "bucket " << I;
    EXPECT_GT(hist::bucketHighTicks(I), hist::bucketLowTicks(I))
        << "bucket " << I;
    PrevHigh = hist::bucketHighTicks(I);
  }
  EXPECT_EQ(PrevHigh, UINT64_MAX);
}

TEST(HistogramBucketsTest, BucketIndexRoundTripsBoundaries) {
  // Each bucket's own boundaries map back to it: the low tick is inside,
  // the high tick belongs to the next bucket.
  for (unsigned I = 0; I < hist::kNumBuckets; ++I) {
    EXPECT_EQ(hist::bucketIndex(hist::bucketLowTicks(I)), I);
    uint64_t High = hist::bucketHighTicks(I);
    if (High != UINT64_MAX)
      EXPECT_EQ(hist::bucketIndex(High), I + 1);
    else
      EXPECT_EQ(hist::bucketIndex(UINT64_MAX), I);
  }
}

TEST(HistogramBucketsTest, LowBucketsAreExact) {
  // The first 16 ticks each get their own bucket: sub-bucket-resolution
  // values are counted exactly, not quantized.
  for (uint64_t T = 0; T < hist::kSubBuckets; ++T) {
    EXPECT_EQ(hist::bucketIndex(T), T);
    EXPECT_EQ(hist::bucketLowTicks(unsigned(T)), T);
    EXPECT_EQ(hist::bucketHighTicks(unsigned(T)), T + 1);
  }
}

TEST(HistogramBucketsTest, RelativeWidthBoundedBySixteenth) {
  // Above the exact range, bucket width / low bound <= 1/16: the promised
  // worst-case relative quantization error.
  for (unsigned I = hist::kSubBuckets; I < hist::kNumBuckets - 1; ++I) {
    uint64_t Lo = hist::bucketLowTicks(I);
    uint64_t Width = hist::bucketHighTicks(I) - Lo;
    EXPECT_LE(double(Width) / double(Lo), 1.0 / 16.0 + 1e-12)
        << "bucket " << I;
  }
}

TEST(HistogramBucketsTest, MsToTicksClampsAndQuantizes) {
  EXPECT_EQ(hist::msToTicks(-1.0), 0u);
  EXPECT_EQ(hist::msToTicks(0.0), 0u);
  // 1 ms = 1024 ticks exactly (binary scale).
  EXPECT_EQ(hist::msToTicks(1.0), uint64_t(hist::kTicksPerMs));
  // Absurdly large durations saturate instead of overflowing to 0.
  EXPECT_GT(hist::msToTicks(1e30), uint64_t(1) << 62);
}

//===----------------------------------------------------------------------===//
// Percentiles vs an exact reference
//===----------------------------------------------------------------------===//

namespace {

double exactPercentile(std::vector<double> Sorted, double Q) {
  size_t Rank = size_t(std::ceil(Q * double(Sorted.size())));
  Rank = std::max<size_t>(Rank, 1);
  Rank = std::min(Rank, Sorted.size());
  return Sorted[Rank - 1];
}

} // namespace

TEST(HistogramTest, PercentilesTrackExactReferenceWithinBucketError) {
  Histogram H;
  std::vector<double> Values;
  Rng R(20260808);
  for (unsigned I = 0; I < 5000; ++I) {
    // Log-uniform over roughly [0.01ms, 1000ms] -- the latency shape the
    // histogram is built for.
    double Ms = std::pow(10.0, -2.0 + 5.0 * R.nextDouble());
    Values.push_back(Ms);
    H.record(Ms);
  }
  std::sort(Values.begin(), Values.end());
  HistogramSnapshot Snap = H.snapshot();
  ASSERT_EQ(Snap.Count, Values.size());
  for (double Q : {0.50, 0.90, 0.95, 0.99}) {
    double Exact = exactPercentile(Values, Q);
    double Approx = Snap.percentile(Q);
    // The estimate may be off by one bucket width (1/16 relative) plus the
    // one-tick quantization floor.
    double Tolerance = Exact / 16.0 + 2.0 / hist::kTicksPerMs;
    EXPECT_NEAR(Approx, Exact, Tolerance) << "q=" << Q;
  }
}

TEST(HistogramTest, EmptyAndSingleSampleEdges) {
  Histogram H;
  EXPECT_EQ(H.snapshot().Count, 0u);
  EXPECT_EQ(H.snapshot().percentile(0.99), 0.0);
  H.record(2.5);
  HistogramSnapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Count, 1u);
  // Every percentile of a single sample is that sample (within a bucket).
  EXPECT_NEAR(Snap.percentile(0.50), 2.5, 2.5 / 16.0 + 0.01);
  EXPECT_NEAR(Snap.percentile(0.99), 2.5, 2.5 / 16.0 + 0.01);
  EXPECT_NEAR(Snap.meanMs(), 2.5, 0.01);
}

TEST(HistogramTest, MergeAccumulatesCounts) {
  Histogram A, B;
  for (int I = 0; I < 10; ++I)
    A.record(1.0);
  for (int I = 0; I < 30; ++I)
    B.record(100.0);
  HistogramSnapshot SA = A.snapshot();
  SA.merge(B.snapshot());
  EXPECT_EQ(SA.Count, 40u);
  // 10 fast + 30 slow: the median sits in the slow mode.
  EXPECT_GT(SA.percentile(0.5), 50.0);
  EXPECT_LT(SA.percentile(0.1), 2.0);
}

//===----------------------------------------------------------------------===//
// Registry: shards, names, overflow
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, SameNameSameId) {
  MetricsRegistry R;
  CounterId C1 = R.counter("test.counter");
  CounterId C2 = R.counter("test.counter");
  EXPECT_EQ(C1, C2);
  EXPECT_NE(R.counter("test.other"), C1);
  HistogramId H1 = R.histogram("test.hist");
  EXPECT_EQ(R.histogram("test.hist"), H1);
}

TEST(MetricsRegistryTest, PerThreadShardsMergeInSnapshot) {
  MetricsRegistry R;
  CounterId C = R.counter("merge.counter");
  HistogramId H = R.histogram("merge.hist");
  constexpr unsigned kThreads = 8;
  constexpr unsigned kPerThread = 10000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T)
    Threads.emplace_back([&R, C, H] {
      for (unsigned I = 0; I < kPerThread; ++I) {
        R.add(C);
        R.record(H, 1.0);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  MetricsSnapshot Snap = R.snapshot();
  const uint64_t *Count = Snap.counter("merge.counter");
  ASSERT_NE(Count, nullptr);
  EXPECT_EQ(*Count, uint64_t(kThreads) * kPerThread);
  const HistogramSnapshot *Hist = Snap.histogram("merge.hist");
  ASSERT_NE(Hist, nullptr);
  EXPECT_EQ(Hist->Count, uint64_t(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, CounterOverflowWrapsWithoutTrapping) {
  MetricsRegistry R;
  CounterId C = R.counter("wrap.counter");
  R.add(C, UINT64_MAX); // One tick short of wrapping.
  R.add(C, 3);          // Modulo 2^64: lands on 2.
  const uint64_t *V = R.snapshot().counter("wrap.counter");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(*V, 2u);
}

TEST(MetricsRegistryTest, GaugesKeepLastValue) {
  MetricsRegistry R;
  GaugeId G = R.gauge("test.gauge");
  R.set(G, 1.5);
  R.set(G, -2.25);
  const double *V = R.snapshot().gauge("test.gauge");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(*V, -2.25);
}

TEST(MetricsRegistryTest, ResetZeroesCachedWriters) {
  MetricsRegistry R;
  CounterId C = R.counter("reset.counter");
  R.add(C, 7);
  R.reset();
  EXPECT_EQ(*R.snapshot().counter("reset.counter"), 0u);
  // The thread's cached shard pointer must still be valid for new writes.
  R.add(C, 2);
  EXPECT_EQ(*R.snapshot().counter("reset.counter"), 2u);
}

//===----------------------------------------------------------------------===//
// Expositions
//===----------------------------------------------------------------------===//

TEST(MetricsSnapshotTest, PrometheusTextSanitizesAndCumulates) {
  MetricsRegistry R;
  R.add(R.counter("layra.test.requests"), 5);
  HistogramId H = R.histogram("layra.test.latency_ms");
  R.record(H, 0.5);
  R.record(H, 0.5);
  R.record(H, 200.0);
  std::string Text = R.snapshot().toPrometheusText();
  // Dots sanitize to underscores; TYPE lines announce each family.
  EXPECT_NE(Text.find("# TYPE layra_test_requests counter"),
            std::string::npos);
  EXPECT_NE(Text.find("layra_test_requests 5"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE layra_test_latency_ms histogram"),
            std::string::npos);
  // _count and _sum series exist and the bucket counts are cumulative:
  // the final occupied bucket must read 3.
  EXPECT_NE(Text.find("layra_test_latency_ms_count 3"), std::string::npos);
  EXPECT_NE(Text.find("layra_test_latency_ms_sum"), std::string::npos);
  EXPECT_NE(Text.find("} 3\n"), std::string::npos);
}

TEST(MetricsSnapshotTest, TextViewFiltersByPrefix) {
  MetricsRegistry R;
  R.add(R.counter("alpha.one"), 1);
  R.add(R.counter("beta.two"), 2);
  std::string Alpha = R.snapshot().toText("alpha.");
  EXPECT_NE(Alpha.find("alpha.one"), std::string::npos);
  EXPECT_EQ(Alpha.find("beta.two"), std::string::npos);
}
