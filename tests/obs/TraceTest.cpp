//===- tests/obs/TraceTest.cpp - Phase tracer tests -----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The phase tracer (obs/Trace.h): Chrome-trace JSON from a real pipeline
/// run parses under the strict support/Json parser with properly nested
/// spans, deterministic mode yields byte-identical traces, a disabled
/// tracer emits nothing, and enabling the full observability surface does
/// not change a timing-free driver report.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "driver/BatchDriver.h"
#include "driver/ReportIO.h"
#include "ir/Dominators.h"
#include "ir/LoopInfo.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace layra;

namespace {

Function makeSsaFunction(uint64_t Seed, unsigned NumVars = 14) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  Opt.NumVars = NumVars;
  Opt.MaxBlocks = 20;
  Function F = generateFunction(R, Opt);
  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  Loops.annotate(F);
  return convertToSsa(F).Ssa;
}

/// Every test leaves the global obs state exactly as it found it (off),
/// so test order cannot leak tracer state into unrelated suites.
struct ObsQuiesce {
  ~ObsQuiesce() {
    TraceCollector::global().disable();
    TraceCollector::global().clear();
    obs::setPhaseAccounting(false);
  }
};

PipelineResult runOnce(uint64_t Seed, unsigned Regs = 4) {
  Function F = makeSsaFunction(Seed);
  return runAllocationPipeline(F, ST231, Regs);
}

} // namespace

TEST(TraceTest, DisabledTracerEmitsNothing) {
  ObsQuiesce Quiesce;
  TraceCollector &TC = TraceCollector::global();
  TC.disable();
  TC.clear();
  runOnce(3);
  EXPECT_EQ(TC.eventCount(), 0u);
  // An empty trace is still a valid document.
  JsonParseResult Parsed = parseJson(TC.toJson().dump(0));
  ASSERT_TRUE(Parsed.Ok) << Parsed.Error;
  const JsonValue *Events = Parsed.Value.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  EXPECT_EQ(Events->size(), 0u);
}

TEST(TraceTest, PipelineTraceParsesAndCarriesExpectedSpans) {
  ObsQuiesce Quiesce;
  TraceCollector &TC = TraceCollector::global();
  TC.clear();
  TC.enable(/*Deterministic=*/true);
  runOnce(5, /*Regs=*/4);
  TC.disable();
  ASSERT_GT(TC.eventCount(), 0u);

  JsonParseResult Parsed = parseJson(TC.toJson().dump(2));
  ASSERT_TRUE(Parsed.Ok) << Parsed.Error << " at line " << Parsed.Line;

  const JsonValue *Events = Parsed.Value.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_GT(Events->size(), 0u);
  std::set<std::string> Names;
  for (const JsonValue &E : Events->elements()) {
    ASSERT_NE(E.find("ph"), nullptr);
    EXPECT_EQ(E.find("ph")->stringValue(), "X");
    EXPECT_EQ(E.find("cat")->stringValue(), "layra");
    EXPECT_GE(E.find("dur")->numberValue(), 0.0);
    Names.insert(E.find("name")->stringValue());
  }
  // The stages every ST231 pipeline run must pass through.
  for (const char *Expected :
       {"pipeline", "problem_build", "liveness", "spill_costs",
        "interference", "mcs_peo", "allocate", "assign"})
    EXPECT_TRUE(Names.count(Expected)) << Expected;
}

TEST(TraceTest, SpansNestProperlyPerThread) {
  ObsQuiesce Quiesce;
  TraceCollector &TC = TraceCollector::global();
  TC.clear();
  TC.enable(/*Deterministic=*/true);
  runOnce(9, /*Regs=*/3);
  TC.disable();

  JsonValue Doc = TC.toJson();
  const JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_GT(Events->size(), 0u);
  // Group by tid; within a thread, spans sorted by (ts asc, dur desc) must
  // form a proper forest: each span either contains or is disjoint from
  // the next, never partially overlapping.
  std::map<long long, std::vector<std::pair<double, double>>> ByTid;
  for (const JsonValue &E : Events->elements())
    ByTid[E.find("tid")->intValue()].push_back(
        {E.find("ts")->numberValue(), E.find("dur")->numberValue()});
  for (auto &Entry : ByTid) {
    auto &Spans = Entry.second;
    std::vector<std::pair<double, double>> Stack; // (start, end)
    for (const auto &[Ts, Dur] : Spans) {
      double End = Ts + Dur;
      while (!Stack.empty() && Ts >= Stack.back().second)
        Stack.pop_back();
      if (!Stack.empty()) {
        // Open ancestor: this span must be fully contained in it.
        EXPECT_GE(Ts, Stack.back().first);
        EXPECT_LE(End, Stack.back().second);
      }
      Stack.push_back({Ts, End});
    }
  }
}

TEST(TraceTest, DeterministicModeIsReproducible) {
  ObsQuiesce Quiesce;
  TraceCollector &TC = TraceCollector::global();

  TC.clear();
  TC.enable(/*Deterministic=*/true);
  runOnce(11);
  TC.disable();
  std::string First = TC.toJson().dump(2);

  TC.clear();
  TC.enable(/*Deterministic=*/true);
  runOnce(11);
  TC.disable();
  std::string Second = TC.toJson().dump(2);

  EXPECT_EQ(First, Second);
}

TEST(TraceTest, ObservabilityDoesNotPerturbTimingFreeReports) {
  ObsQuiesce Quiesce;
  Function F = makeSsaFunction(21);
  Suite S;
  S.Name = "trace-test";
  SuiteProgram Prog;
  Prog.Name = F.name();
  Prog.Functions.push_back(std::move(F));
  S.Programs.push_back(std::move(Prog));
  BatchJob Job;
  Job.SuiteName = S.Name;
  Job.SuiteData = &S;
  Job.NumRegisters = 4;
  std::vector<BatchJob> Jobs{Job};

  TraceCollector &TC = TraceCollector::global();
  TC.disable();
  TC.clear();
  obs::setPhaseAccounting(false);
  BatchDriver Quiet(1);
  std::string QuietJson =
      driverReportToJson(Quiet.run(Jobs), /*IncludeTiming=*/false,
                         /*IncludeTasks=*/true)
          .dump(2);

  TC.enable(/*Deterministic=*/true);
  obs::setPhaseAccounting(true);
  BatchDriver Loud(1);
  std::string LoudJson =
      driverReportToJson(Loud.run(Jobs), /*IncludeTiming=*/false,
                         /*IncludeTasks=*/true)
          .dump(2);

  EXPECT_EQ(QuietJson, LoudJson);
}

TEST(TraceTest, PhaseAccountingFillsJobBreakdowns) {
  ObsQuiesce Quiesce;
  Function F = makeSsaFunction(31);
  Suite S;
  S.Name = "trace-test";
  SuiteProgram Prog;
  Prog.Name = F.name();
  Prog.Functions.push_back(std::move(F));
  S.Programs.push_back(std::move(Prog));
  BatchJob Job;
  Job.SuiteName = S.Name;
  Job.SuiteData = &S;
  Job.NumRegisters = 4;

  obs::setPhaseAccounting(true);
  BatchDriver Driver(1);
  DriverReport Report = Driver.run({Job});
  obs::setPhaseAccounting(false);

  ASSERT_EQ(Report.Jobs.size(), 1u);
  const JobReport &JR = Report.Jobs[0];
  ASSERT_EQ(JR.PhaseMs.size(), size_t(kNumPhases));
  ASSERT_EQ(JR.PhaseCount.size(), size_t(kNumPhases));
  // Every solve enters the pipeline and final assignment at least once.
  EXPECT_GT(JR.PhaseCount[unsigned(Phase::Pipeline)], 0u);
  EXPECT_GT(JR.PhaseCount[unsigned(Phase::Allocate)], 0u);
  EXPECT_GT(JR.PhaseCount[unsigned(Phase::Assign)], 0u);
  // Self times are non-negative and their sum reconstructs (almost all of)
  // the run without double counting -- it cannot exceed total wall time by
  // more than rounding noise.
  double SelfSum = 0;
  for (unsigned P = 0; P < kNumPhases; ++P) {
    EXPECT_GE(JR.PhaseMs[P], 0.0);
    SelfSum += JR.PhaseMs[P];
  }
  EXPECT_GT(SelfSum, 0.0);
}
