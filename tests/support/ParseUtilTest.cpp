//===- tests/support/ParseUtilTest.cpp - CLI parsing tests ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared CLI grammars: strict bounded integers, the `--regs` range /
/// comma-list grammar, and the `--class-regs=NAME:N` override grammar.
/// Every front end (layra-bench, layra-serve's loadgen, the fig*
/// binaries, layra_alloc_tool) routes through these helpers, so a typo
/// class lives or dies here.
///
//===----------------------------------------------------------------------===//

#include "support/ParseUtil.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(ParseUtilTest, BoundedUnsignedAcceptsPlainDigits) {
  unsigned Out = 7;
  EXPECT_TRUE(parseBoundedUnsigned("0", 10, Out));
  EXPECT_EQ(Out, 0u);
  EXPECT_TRUE(parseBoundedUnsigned("1024", 1024, Out));
  EXPECT_EQ(Out, 1024u);
}

TEST(ParseUtilTest, BoundedUnsignedRejectsGarbageAndLeavesOutUntouched) {
  unsigned Out = 42;
  EXPECT_FALSE(parseBoundedUnsigned("", 10, Out));
  EXPECT_FALSE(parseBoundedUnsigned(nullptr, 10, Out));
  EXPECT_FALSE(parseBoundedUnsigned("-1", 10, Out));   // Sign.
  EXPECT_FALSE(parseBoundedUnsigned("+3", 10, Out));   // Sign.
  EXPECT_FALSE(parseBoundedUnsigned(" 3", 10, Out));   // Whitespace.
  EXPECT_FALSE(parseBoundedUnsigned("3x", 10, Out));   // Trailing garbage.
  EXPECT_FALSE(parseBoundedUnsigned("11", 10, Out));   // Out of range.
  EXPECT_EQ(Out, 42u); // Untouched on every failure.
}

TEST(ParseUtilTest, RegListParsesInclusiveRange) {
  std::vector<unsigned> Out;
  std::string Error;
  ASSERT_TRUE(parseRegList("4..16", 1024, Out, Error));
  ASSERT_EQ(Out.size(), 13u);
  EXPECT_EQ(Out.front(), 4u);
  EXPECT_EQ(Out.back(), 16u);
  // Degenerate range: one value.
  ASSERT_TRUE(parseRegList("8..8", 1024, Out, Error));
  EXPECT_EQ(Out, std::vector<unsigned>{8u});
}

TEST(ParseUtilTest, RegListParsesSingleValuesAndCommaLists) {
  std::vector<unsigned> Out;
  std::string Error;
  ASSERT_TRUE(parseRegList("6", 1024, Out, Error));
  EXPECT_EQ(Out, std::vector<unsigned>{6u});
  ASSERT_TRUE(parseRegList("1,2,4", 1024, Out, Error));
  EXPECT_EQ(Out, (std::vector<unsigned>{1u, 2u, 4u}));
}

TEST(ParseUtilTest, RegListRejectsMalformedRanges) {
  std::vector<unsigned> Out;
  std::string Error;
  EXPECT_FALSE(parseRegList("16..4", 1024, Out, Error)); // HI < LO.
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(parseRegList("0..4", 1024, Out, Error));  // LO must be >= 1.
  EXPECT_FALSE(parseRegList("..4", 1024, Out, Error));   // Missing LO.
  EXPECT_FALSE(parseRegList("4..", 1024, Out, Error));   // Missing HI.
  EXPECT_FALSE(parseRegList("4..x", 1024, Out, Error));  // Garbage HI.
  EXPECT_FALSE(parseRegList("4..2000", 1024, Out, Error)); // Over Max.
  EXPECT_FALSE(parseRegList("", 1024, Out, Error));      // Empty.
  EXPECT_FALSE(parseRegList("0", 1024, Out, Error));     // Zero count.
  EXPECT_FALSE(parseRegList("3,-1", 1024, Out, Error));  // Signed entry.
}

TEST(ParseUtilTest, ClassRegListParsesOverrides) {
  std::vector<ClassRegOverride> Out;
  std::string Error;
  ASSERT_TRUE(parseClassRegList("vfp:8", 1024, Out, Error));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Class, "vfp");
  EXPECT_EQ(Out[0].Regs, 8u);

  ASSERT_TRUE(parseClassRegList("gpr:12,vfp:8", 1024, Out, Error));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Class, "gpr");
  EXPECT_EQ(Out[0].Regs, 12u);
  EXPECT_EQ(Out[1].Class, "vfp");
  EXPECT_EQ(Out[1].Regs, 8u);
}

TEST(ParseUtilTest, ClassRegListRejectsMalformedOverrides) {
  std::vector<ClassRegOverride> Out;
  std::string Error;
  EXPECT_FALSE(parseClassRegList("", 1024, Out, Error));       // Empty.
  EXPECT_FALSE(parseClassRegList("vfp", 1024, Out, Error));    // No colon.
  EXPECT_FALSE(parseClassRegList(":8", 1024, Out, Error));     // No name.
  EXPECT_FALSE(parseClassRegList("vfp:", 1024, Out, Error));   // No count.
  EXPECT_FALSE(parseClassRegList("vfp:0", 1024, Out, Error));  // Zero.
  EXPECT_FALSE(parseClassRegList("vfp:-2", 1024, Out, Error)); // Sign.
  EXPECT_FALSE(parseClassRegList("vfp:8x", 1024, Out, Error)); // Garbage.
  EXPECT_FALSE(parseClassRegList("vfp:2000", 1024, Out, Error)); // Over Max.
  EXPECT_FALSE(parseClassRegList("vfp:4,vfp:8", 1024, Out, Error)); // Dup.
  EXPECT_FALSE(Error.empty());
}

TEST(ParseUtilTest, SplitCommaListDropsEmptySegments) {
  EXPECT_EQ(splitCommaList("a,,b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(splitCommaList(""), std::vector<std::string>{});
  EXPECT_EQ(splitCommaList(",,"), std::vector<std::string>{});
  EXPECT_EQ(splitCommaList("solo"), std::vector<std::string>{"solo"});
}

TEST(ParseUtilTest, PositiveSecondsAcceptsPlainDecimals) {
  double Out = -1.0;
  ASSERT_TRUE(parsePositiveSeconds("5", 3600.0, Out));
  EXPECT_EQ(Out, 5.0);
  ASSERT_TRUE(parsePositiveSeconds("0.25", 3600.0, Out));
  EXPECT_EQ(Out, 0.25);
  ASSERT_TRUE(parsePositiveSeconds("2.", 3600.0, Out));
  EXPECT_EQ(Out, 2.0);
  ASSERT_TRUE(parsePositiveSeconds(".5", 3600.0, Out));
  EXPECT_EQ(Out, 0.5);
  ASSERT_TRUE(parsePositiveSeconds("3600", 3600.0, Out)); // Max inclusive.
  EXPECT_EQ(Out, 3600.0);
}

TEST(ParseUtilTest, PositiveSecondsRejectsStrtodExtensions) {
  // strtod would happily read all of these; the flag grammar must not.
  double Out = -1.0;
  EXPECT_FALSE(parsePositiveSeconds("0x10", 3600.0, Out)); // Hex: not 16s.
  EXPECT_FALSE(parsePositiveSeconds("1e3", 3600.0, Out));  // Not 1000s.
  EXPECT_FALSE(parsePositiveSeconds("1E3", 3600.0, Out));
  EXPECT_FALSE(parsePositiveSeconds("inf", 3600.0, Out));
  EXPECT_FALSE(parsePositiveSeconds("nan", 3600.0, Out));
  EXPECT_FALSE(parsePositiveSeconds("+5", 3600.0, Out));
  EXPECT_FALSE(parsePositiveSeconds(" 5", 3600.0, Out)); // No whitespace.
  EXPECT_EQ(Out, -1.0); // Failures leave Out untouched.
}

TEST(ParseUtilTest, PositiveSecondsRejectsMalformedAndOutOfRange) {
  double Out = -1.0;
  EXPECT_FALSE(parsePositiveSeconds("", 3600.0, Out));
  EXPECT_FALSE(parsePositiveSeconds(".", 3600.0, Out));   // No digit.
  EXPECT_FALSE(parsePositiveSeconds("1.2.3", 3600.0, Out)); // Two dots.
  EXPECT_FALSE(parsePositiveSeconds("-5", 3600.0, Out));
  EXPECT_FALSE(parsePositiveSeconds("0", 3600.0, Out));   // Strictly > 0.
  EXPECT_FALSE(parsePositiveSeconds("0.0", 3600.0, Out));
  EXPECT_FALSE(parsePositiveSeconds("3601", 3600.0, Out)); // Over Max.
  EXPECT_FALSE(parsePositiveSeconds("5s", 3600.0, Out));  // Trailing unit.
  EXPECT_FALSE(parsePositiveSeconds(nullptr, 3600.0, Out));
  EXPECT_EQ(Out, -1.0);
}
