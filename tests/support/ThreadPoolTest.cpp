//===- tests/support/ThreadPoolTest.cpp - Thread pool tests ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace layra;

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    EXPECT_EQ(Pool.numThreads(), Threads);
    constexpr std::size_t N = 10'000;
    std::vector<std::atomic<int>> Hits(N);
    Pool.parallelFor(N, [&](std::size_t I) { ++Hits[I]; });
    for (std::size_t I = 0; I < N; ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << ", " << Threads
                                   << " threads";
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonLoops) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, [&](std::size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 0);
  Pool.parallelFor(1, [&](std::size_t I) {
    EXPECT_EQ(I, 0u);
    ++Count;
  });
  EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool Pool(3);
  std::atomic<std::size_t> Total{0};
  for (int Round = 0; Round < 50; ++Round)
    Pool.parallelFor(17, [&](std::size_t) { ++Total; });
  EXPECT_EQ(Total.load(), 50u * 17u);
}

TEST(ThreadPoolTest, StealsImbalancedWork) {
  // Front-load all the slow tasks into the first chunk: with stealing the
  // batch still terminates and covers every index.
  ThreadPool Pool(4);
  constexpr std::size_t N = 64;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](std::size_t I) {
    if (I < N / 4)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ++Hits[I];
  });
  for (std::size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
  ThreadPool Pool; // Default-constructed pool uses the hardware count.
  EXPECT_GE(Pool.numThreads(), 1u);
}

TEST(ThreadPoolTest, ResultsIndependentOfThreadCount) {
  // Each index computes a deterministic value into its own slot; any two
  // pools must produce identical result vectors.
  auto Run = [](unsigned Threads) {
    ThreadPool Pool(Threads);
    std::vector<std::uint64_t> Out(1000);
    Pool.parallelFor(Out.size(), [&](std::size_t I) {
      std::uint64_t H = I * 0x9e3779b97f4a7c15ULL;
      H ^= H >> 32;
      Out[I] = H;
    });
    return Out;
  };
  EXPECT_EQ(Run(1), Run(8));
}

TEST(ThreadPoolTest, ParallelForWorkerSlotsAreExclusiveAndComplete) {
  // parallelForWorker's contract: every index runs exactly once, slots lie
  // in [0, numThreads()), and no two tasks share a slot *concurrently* --
  // the property per-worker SolverWorkspaces rely on.
  ThreadPool Pool(4);
  constexpr std::size_t N = 2000;
  std::vector<std::atomic<int>> Hits(N);
  std::vector<std::atomic<int>> InSlot(Pool.numThreads());
  std::atomic<bool> Overlap{false};
  Pool.parallelForWorker(N, [&](std::size_t I, unsigned Slot) {
    ASSERT_LT(Slot, Pool.numThreads());
    if (InSlot[Slot].fetch_add(1) != 0)
      Overlap = true;
    ++Hits[I];
    InSlot[Slot].fetch_sub(1);
  });
  EXPECT_FALSE(Overlap.load());
  for (std::size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1);
}

TEST(ThreadPoolTest, ParallelForWorkerSingleThreadUsesSlotZero) {
  ThreadPool Pool(1);
  std::vector<unsigned> Slots;
  Pool.parallelForWorker(16, [&](std::size_t, unsigned Slot) {
    Slots.push_back(Slot); // Single-threaded: no synchronization needed.
  });
  EXPECT_EQ(Slots.size(), 16u);
  for (unsigned S : Slots)
    EXPECT_EQ(S, 0u);
}
