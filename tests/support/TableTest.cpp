//===- tests/support/TableTest.cpp - Table printer tests ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace layra;

namespace {
std::string render(const Table &T, bool Csv = false) {
  char Buffer[4096];
  std::FILE *Mem = fmemopen(Buffer, sizeof(Buffer), "w");
  if (Csv)
    T.printCsv(Mem);
  else
    T.print(Mem);
  std::fclose(Mem);
  return Buffer;
}
} // namespace

TEST(TableTest, AlignsColumns) {
  Table T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  std::string Out = render(T);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Separator line present.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table T({"a", "b"});
  T.addRow({"1", "2"});
  EXPECT_EQ(render(T, /*Csv=*/true), "a,b\n1,2\n");
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::num(2.0, 1), "2.0");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
  EXPECT_EQ(Table::num(static_cast<long long>(-7)), "-7");
}

TEST(TableTest, RowCount) {
  Table T({"x"});
  EXPECT_EQ(T.numRows(), 0u);
  T.addRow({"1"});
  T.addRow({"2"});
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TableTest, PercentFormatting) {
  EXPECT_EQ(Table::percent(1, 2), "50.0%");
  EXPECT_EQ(Table::percent(2, 3), "66.7%");
  EXPECT_EQ(Table::percent(0, 5), "0.0%");
  // Zero denominator renders as a placeholder, not a division.
  EXPECT_EQ(Table::percent(3, 0), "-");
}
