//===- tests/support/BitVectorTest.cpp - BitVector unit tests -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(BitVectorTest, SetTestReset) {
  BitVector B(130);
  EXPECT_FALSE(B.test(0));
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_FALSE(B.test(63));
  B.reset(64);
  EXPECT_FALSE(B.test(64));
  EXPECT_EQ(B.count(), 2u);
}

TEST(BitVectorTest, UnionReportsChange) {
  BitVector A(70), B(70);
  B.set(69);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)); // Idempotent.
  EXPECT_TRUE(A.test(69));
}

TEST(BitVectorTest, Subtract) {
  BitVector A(10), B(10);
  A.set(1);
  A.set(2);
  B.set(2);
  A.subtract(B);
  EXPECT_TRUE(A.test(1));
  EXPECT_FALSE(A.test(2));
}

TEST(BitVectorTest, ForEachVisitsInOrder) {
  BitVector B(200);
  B.set(3);
  B.set(64);
  B.set(199);
  std::vector<unsigned> Seen;
  B.forEach([&](std::size_t Bit) { Seen.push_back(static_cast<unsigned>(Bit)); });
  EXPECT_EQ(Seen, (std::vector<unsigned>{3, 64, 199}));
  EXPECT_EQ(B.toIndices(), Seen);
}

TEST(BitVectorTest, ClearAndEquality) {
  BitVector A(65), B(65);
  A.set(64);
  EXPECT_FALSE(A == B);
  A.clear();
  EXPECT_TRUE(A == B);
  EXPECT_EQ(A.count(), 0u);
}

TEST(BitVectorTest, ResizePreservesBitsAndClearsDroppedTail) {
  BitVector B(10);
  B.set(1);
  B.set(9);
  B.resize(200);
  EXPECT_EQ(B.size(), 200u);
  EXPECT_TRUE(B.test(1));
  EXPECT_TRUE(B.test(9));
  EXPECT_FALSE(B.test(199));
  B.set(150);
  // Shrinking drops bits past the new size; growing back must not
  // resurrect them (llvm::BitVector semantics).
  B.resize(100);
  EXPECT_EQ(B.size(), 100u);
  EXPECT_EQ(B.count(), 2u);
  B.resize(200);
  EXPECT_FALSE(B.test(150));
  EXPECT_EQ(B.count(), 2u);
}

TEST(BitVectorTest, GrowToNeverShrinks) {
  BitVector B(100);
  B.set(80);
  B.growTo(50);
  EXPECT_EQ(B.size(), 100u);
  EXPECT_TRUE(B.test(80));
  B.growTo(300);
  EXPECT_EQ(B.size(), 300u);
  EXPECT_TRUE(B.test(80));
  EXPECT_FALSE(B.test(299));
}
