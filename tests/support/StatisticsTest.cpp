//===- tests/support/StatisticsTest.cpp - Statistics unit tests -----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(StatisticsTest, EmptySampleIsAllZero) {
  SampleSummary S = summarize({});
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.Mean, 0.0);
  EXPECT_EQ(S.Max, 0.0);
}

TEST(StatisticsTest, SingleValue) {
  SampleSummary S = summarize({4.0});
  EXPECT_EQ(S.Count, 1u);
  EXPECT_EQ(S.Min, 4.0);
  EXPECT_EQ(S.Median, 4.0);
  EXPECT_EQ(S.Max, 4.0);
  EXPECT_EQ(S.StdDev, 0.0);
}

TEST(StatisticsTest, KnownQuartiles) {
  SampleSummary S = summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Q1, 2.0);
  EXPECT_DOUBLE_EQ(S.Median, 3.0);
  EXPECT_DOUBLE_EQ(S.Q3, 4.0);
  EXPECT_DOUBLE_EQ(S.Max, 5.0);
  EXPECT_DOUBLE_EQ(S.Mean, 3.0);
}

TEST(StatisticsTest, MedianInterpolatesEvenSamples) {
  SampleSummary S = summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(S.Median, 2.5);
}

TEST(StatisticsTest, OrderIndependent) {
  SampleSummary A = summarize({5, 1, 4, 2, 3});
  SampleSummary B = summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(A.Median, B.Median);
  EXPECT_DOUBLE_EQ(A.Q1, B.Q1);
  EXPECT_DOUBLE_EQ(A.StdDev, B.StdDev);
}

TEST(StatisticsTest, QuantileEndpoints) {
  std::vector<double> Sorted{1, 2, 3, 4, 10};
  EXPECT_DOUBLE_EQ(quantileOfSorted(Sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantileOfSorted(Sorted, 1.0), 10.0);
}

TEST(StatisticsTest, StdDevOfConstantSampleIsZero) {
  SampleSummary S = summarize({2, 2, 2, 2});
  EXPECT_DOUBLE_EQ(S.StdDev, 0.0);
}

TEST(StatisticsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0}), 4.0);
  EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}
