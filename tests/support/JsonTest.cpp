//===- tests/support/JsonTest.cpp - JSON emitter tests --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(JsonTest, Scalars) {
  EXPECT_EQ(JsonValue().dump(0), "null");
  EXPECT_EQ(JsonValue(true).dump(0), "true");
  EXPECT_EQ(JsonValue(false).dump(0), "false");
  EXPECT_EQ(JsonValue(42).dump(0), "42");
  EXPECT_EQ(JsonValue(-7LL).dump(0), "-7");
  EXPECT_EQ(JsonValue("hi").dump(0), "\"hi\"");
}

TEST(JsonTest, DoublesFormatShortestRoundTrip) {
  EXPECT_EQ(JsonValue(0.5).dump(0), "0.5");
  EXPECT_EQ(JsonValue(1.0).dump(0), "1");
  EXPECT_EQ(JsonValue(0.1).dump(0), "0.1");
  EXPECT_EQ(JsonValue(3.14159).dump(0), "3.14159");
}

TEST(JsonTest, EscapesStrings) {
  EXPECT_EQ(JsonValue("a\"b").dump(0), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue("a\\b").dump(0), "\"a\\\\b\"");
  EXPECT_EQ(JsonValue("a\nb\tc").dump(0), "\"a\\nb\\tc\"");
  EXPECT_EQ(JsonValue(std::string("a\x01z")).dump(0), "\"a\\u0001z\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue Obj = JsonValue::object();
  Obj.set("zebra", 1).set("alpha", 2).set("mid", 3);
  EXPECT_EQ(Obj.dump(0), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Overwrite keeps the original position.
  Obj.set("alpha", 9);
  EXPECT_EQ(Obj.dump(0), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonTest, NestedStructure) {
  JsonValue Root = JsonValue::object();
  JsonValue Arr = JsonValue::array();
  Arr.push(1).push("two").push(JsonValue::object().set("k", false));
  Root.set("items", std::move(Arr));
  EXPECT_EQ(Root.dump(0), "{\"items\":[1,\"two\",{\"k\":false}]}");
}

TEST(JsonTest, PrettyPrinting) {
  JsonValue Root = JsonValue::object();
  Root.set("a", 1);
  Root.set("b", JsonValue::array().push(2));
  EXPECT_EQ(Root.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
  EXPECT_EQ(JsonValue::object().dump(2), "{}");
  EXPECT_EQ(JsonValue::array().dump(2), "[]");
}

TEST(JsonTest, DumpIsDeterministic) {
  auto Build = [] {
    JsonValue Root = JsonValue::object();
    Root.set("suite", "eembc").set("regs", 8).set("cost", 1234.5);
    return Root.dump();
  };
  EXPECT_EQ(Build(), Build());
}
