//===- tests/support/RandomTest.cpp - PRNG unit tests ---------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace layra;

TEST(RandomTest, DeterministicStreams) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  unsigned Equal = 0;
  for (int I = 0; I < 1000; ++I)
    Equal += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Equal, 5u);
}

TEST(RandomTest, NextBelowInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RandomTest, NextBelowCoversAllResidues) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 2000; ++I)
    Seen.insert(R.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RandomTest, NextInRangeInclusiveBounds) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 5000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng R(5);
  for (int I = 0; I < 10000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, NextBoolExtremes) {
  Rng R(9);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(RandomTest, NextBoolRoughFrequency) {
  Rng R(13);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.nextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(Hits / 10000.0, 0.3, 0.03);
}

TEST(RandomTest, ShufflePreservesElements) {
  Rng R(17);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Sorted = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Sorted);
}

TEST(RandomTest, PickWeightedRespectsZeroWeights) {
  Rng R(19);
  std::vector<double> W{0.0, 1.0, 0.0, 3.0};
  std::map<size_t, int> Counts;
  for (int I = 0; I < 4000; ++I)
    ++Counts[R.pickWeighted(W)];
  EXPECT_EQ(Counts.count(0), 0u);
  EXPECT_EQ(Counts.count(2), 0u);
  // Index 3 should be roughly three times as frequent as index 1.
  EXPECT_GT(Counts[3], 2 * Counts[1]);
}

TEST(RandomTest, ForkDecorrelates) {
  Rng A(23);
  Rng B = A.fork();
  unsigned Equal = 0;
  for (int I = 0; I < 1000; ++I)
    Equal += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Equal, 5u);
}

TEST(RandomTest, SplitMix64KnownAvalanche) {
  // Two consecutive outputs from the same state differ in many bits.
  uint64_t S = 0;
  uint64_t A = splitMix64(S);
  uint64_t B = splitMix64(S);
  EXPECT_NE(A, B);
  EXPECT_GT(__builtin_popcountll(A ^ B), 10);
}
