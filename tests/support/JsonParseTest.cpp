//===- tests/support/JsonParseTest.cpp - JSON parser tests ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// parseJson() accepts exactly the documents the emitter can produce (plus
/// the rest of RFC 8259) and turns every malformed input into an error with
/// a position -- it feeds the service wire protocol, where crashing on
/// garbage is not an option.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

JsonValue parseOk(const std::string &Text) {
  JsonParseResult R = parseJson(Text);
  EXPECT_TRUE(R.Ok) << Text << " -> " << R.Error;
  return R.Value;
}

std::string parseError(const std::string &Text) {
  JsonParseResult R = parseJson(Text);
  EXPECT_FALSE(R.Ok) << Text << " unexpectedly parsed";
  EXPECT_FALSE(R.Error.empty());
  EXPECT_GE(R.Line, 1u);
  EXPECT_GE(R.Column, 1u);
  return R.Error;
}

} // namespace

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_EQ(parseOk("true").boolValue(), true);
  EXPECT_EQ(parseOk("false").boolValue(true), false);
  EXPECT_EQ(parseOk("42").intValue(), 42);
  EXPECT_EQ(parseOk("-7").intValue(), -7);
  EXPECT_EQ(parseOk("0").intValue(), 0);
  EXPECT_DOUBLE_EQ(parseOk("0.5").numberValue(), 0.5);
  EXPECT_DOUBLE_EQ(parseOk("-2.25e2").numberValue(), -225.0);
  EXPECT_DOUBLE_EQ(parseOk("1E-3").numberValue(), 0.001);
  EXPECT_EQ(parseOk("\"hi\"").stringValue(), "hi");
  EXPECT_EQ(parseOk("  \t\r\n 7 \n").intValue(), 7);
}

TEST(JsonParseTest, IntVersusDouble) {
  EXPECT_TRUE(parseOk("9007199254740993").isInt()); // Exact in 64-bit int.
  EXPECT_TRUE(parseOk("1.0").isDouble());           // Fraction => double.
  EXPECT_TRUE(parseOk("1e2").isDouble());           // Exponent => double.
  // Beyond long long range falls back to double instead of erroring.
  JsonValue Big = parseOk("123456789012345678901234567890");
  EXPECT_TRUE(Big.isDouble());
  EXPECT_GT(Big.numberValue(), 1e29);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parseOk("\"a\\\"b\"").stringValue(), "a\"b");
  EXPECT_EQ(parseOk("\"a\\\\b\"").stringValue(), "a\\b");
  EXPECT_EQ(parseOk("\"a\\/b\"").stringValue(), "a/b");
  EXPECT_EQ(parseOk("\"\\b\\f\\n\\r\\t\"").stringValue(), "\b\f\n\r\t");
  EXPECT_EQ(parseOk("\"\\u0041\"").stringValue(), "A");
  EXPECT_EQ(parseOk("\"\\u00e9\"").stringValue(), "\xc3\xa9");   // é
  EXPECT_EQ(parseOk("\"\\u2603\"").stringValue(), "\xe2\x98\x83"); // snowman
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").stringValue(),
            "\xf0\x9f\x98\x80");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(parseOk("\"\xc3\xa9\"").stringValue(), "\xc3\xa9");
}

TEST(JsonParseTest, NestedStructure) {
  JsonValue V = parseOk(
      "{\"jobs\":[{\"suite\":\"eembc\",\"regs\":8,\"fit\":true},"
      "{\"suite\":\"lao-kernels\",\"regs\":4,\"fit\":false}],"
      "\"wall\":1.5,\"extra\":null}");
  ASSERT_TRUE(V.isObject());
  const JsonValue *Jobs = V.find("jobs");
  ASSERT_NE(Jobs, nullptr);
  ASSERT_TRUE(Jobs->isArray());
  ASSERT_EQ(Jobs->size(), 2u);
  EXPECT_EQ(Jobs->at(0).find("suite")->stringValue(), "eembc");
  EXPECT_EQ(Jobs->at(1).find("regs")->intValue(), 4);
  EXPECT_EQ(Jobs->at(1).find("fit")->boolValue(true), false);
  EXPECT_TRUE(V.find("extra")->isNull());
  EXPECT_EQ(V.find("missing"), nullptr);
  EXPECT_EQ(V.size(), 3u);
}

TEST(JsonParseTest, DeepNestingWithinLimit) {
  std::string Deep;
  for (int I = 0; I < 30; ++I)
    Deep += "[";
  Deep += "1";
  for (int I = 0; I < 30; ++I)
    Deep += "]";
  JsonValue V = parseOk(Deep);
  for (int I = 0; I < 30; ++I) {
    ASSERT_TRUE(V.isArray());
    ASSERT_EQ(V.size(), 1u);
    V = V.at(0);
  }
  EXPECT_EQ(V.intValue(), 1);
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string Deep;
  for (int I = 0; I < 200; ++I)
    Deep += "[";
  Deep += "1";
  for (int I = 0; I < 200; ++I)
    Deep += "]";
  parseError(Deep);
  // The same document parses with a larger explicit limit.
  EXPECT_TRUE(parseJson(Deep, 400).Ok);
}

TEST(JsonParseTest, DuplicateKeysKeepLast) {
  JsonValue V = parseOk("{\"a\":1,\"b\":2,\"a\":3}");
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V.find("a")->intValue(), 3);
}

TEST(JsonParseTest, LargeObjectsParseInLinearTime) {
  // Regression guard for the parser's indexed member insertion: 50k
  // distinct keys would take ~1.25e9 string scans through the O(n^2)
  // JsonValue::set path, versus a handful of milliseconds here.
  std::string Doc = "{";
  for (int I = 0; I < 50000; ++I) {
    if (I)
      Doc += ',';
    Doc += "\"key" + std::to_string(I) + "\":" + std::to_string(I);
  }
  Doc += "}";
  JsonParseResult R = parseJson(Doc);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value.size(), 50000u);
  EXPECT_EQ(R.Value.find("key49999")->intValue(), 49999);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  parseError("");
  parseError("   ");
  parseError("{");
  parseError("[1,2");
  parseError("[1,]");
  parseError("{\"a\":}");
  parseError("{\"a\" 1}");
  parseError("{a:1}");
  parseError("{\"a\":1,}");
  parseError("nul");
  parseError("truex");
  parseError("\"unterminated");
  parseError("\"bad escape \\q\"");
  parseError("\"truncated \\u12\"");
  parseError("\"lone high \\ud83d\"");
  parseError("\"lone low \\ude00\"");
  parseError("\"ctrl \x01\"");
  parseError("01");
  parseError("-");
  parseError("1.");
  parseError("1e");
  parseError(".5");
  parseError("+1");
  parseError("NaN");
  parseError("Infinity");
  parseError("1 2");
  parseError("{} []");
  parseError("[1] trailing");
}

TEST(JsonParseTest, ErrorPositionsPointAtProblem) {
  JsonParseResult R = parseJson("{\"a\": 1,\n  \"b\": ]}");
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Line, 2u);
  EXPECT_EQ(R.Column, 8u); // The ']' on "  \"b\": ]}".
}

TEST(JsonParseTest, RoundTripsEmitterOutput) {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", "layra-driver-report/v1");
  Doc.set("threads", 4);
  Doc.set("wall", 12.375);
  Doc.set("note", "line1\nline2\t\"quoted\"");
  JsonValue Arr = JsonValue::array();
  Arr.push(1).push(JsonValue(false)).push(JsonValue());
  Doc.set("items", std::move(Arr));
  for (unsigned Indent : {0u, 2u, 4u}) {
    JsonParseResult R = parseJson(Doc.dump(Indent));
    ASSERT_TRUE(R.Ok) << R.Error;
    // Re-dumping the parsed tree reproduces the original bytes: the
    // emitter and parser agree on every representable document.
    EXPECT_EQ(R.Value.dump(Indent), Doc.dump(Indent));
  }
}
