//===- tests/support/LruCacheTest.cpp - Bounded LRU map tests -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct unit coverage for support/LruCache.h -- the bound behind both
/// batch-driver content-hash caches.  Eviction order is part of the
/// driver's determinism contract, so it is pinned here explicitly instead
/// of only indirectly through driver reports.
///
//===----------------------------------------------------------------------===//

#include "support/LruCache.h"

#include <gtest/gtest.h>

#include <string>

using namespace layra;

TEST(LruCacheTest, UnboundedByDefault) {
  LruCache<int, int> Cache;
  EXPECT_EQ(Cache.capacity(), 0u);
  for (int I = 0; I < 1000; ++I)
    Cache.insert(I, I * I);
  EXPECT_EQ(Cache.size(), 1000u);
  EXPECT_EQ(Cache.evictions(), 0u);
  ASSERT_NE(Cache.find(999), nullptr);
  EXPECT_EQ(*Cache.find(999), 999 * 999);
  EXPECT_EQ(Cache.find(1000), nullptr);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedInInsertionOrder) {
  LruCache<int, std::string> Cache(3);
  Cache.insert(1, "a");
  Cache.insert(2, "b");
  Cache.insert(3, "c");
  // 1 is the least recently used; the fourth insert must evict exactly it.
  Cache.insert(4, "d");
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_EQ(Cache.peek(1), nullptr);
  EXPECT_NE(Cache.peek(2), nullptr);
  EXPECT_NE(Cache.peek(3), nullptr);
  EXPECT_NE(Cache.peek(4), nullptr);
}

TEST(LruCacheTest, FindTouchesRecencyOrder) {
  LruCache<int, int> Cache(2);
  Cache.insert(1, 10);
  Cache.insert(2, 20);
  // Touching 1 makes 2 the LRU entry: the next insert evicts 2, not 1.
  ASSERT_NE(Cache.find(1), nullptr);
  Cache.insert(3, 30);
  EXPECT_NE(Cache.peek(1), nullptr);
  EXPECT_EQ(Cache.peek(2), nullptr);
  EXPECT_NE(Cache.peek(3), nullptr);
}

TEST(LruCacheTest, PeekDoesNotTouchRecencyOrder) {
  LruCache<int, int> Cache(2);
  Cache.insert(1, 10);
  Cache.insert(2, 20);
  // peek(1) must NOT rescue 1: it stays the LRU entry and is evicted.
  ASSERT_NE(Cache.peek(1), nullptr);
  Cache.insert(3, 30);
  EXPECT_EQ(Cache.peek(1), nullptr);
  EXPECT_NE(Cache.peek(2), nullptr);
}

TEST(LruCacheTest, CapacityOneKeepsOnlyNewestEntry) {
  LruCache<int, int> Cache(1);
  Cache.insert(1, 10);
  Cache.insert(2, 20);
  Cache.insert(3, 30);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.evictions(), 2u);
  EXPECT_EQ(Cache.peek(1), nullptr);
  EXPECT_EQ(Cache.peek(2), nullptr);
  ASSERT_NE(Cache.find(3), nullptr);
  EXPECT_EQ(*Cache.find(3), 30);
}

TEST(LruCacheTest, SetCapacityEvictsOverflowImmediately) {
  LruCache<int, int> Cache;
  for (int I = 0; I < 10; ++I)
    Cache.insert(I, I);
  Cache.find(0); // 0 becomes most recent; 1 is now the LRU entry.
  Cache.setCapacity(2);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 8u);
  // Survivors: the two most recently used entries (0 by the touch, 9 by
  // insertion).
  EXPECT_NE(Cache.peek(0), nullptr);
  EXPECT_NE(Cache.peek(9), nullptr);
  EXPECT_EQ(Cache.peek(8), nullptr);
}

TEST(LruCacheTest, SetCapacityZeroRemovesBound) {
  LruCache<int, int> Cache(2);
  Cache.insert(1, 1);
  Cache.insert(2, 2);
  Cache.setCapacity(0);
  for (int I = 3; I <= 50; ++I)
    Cache.insert(I, I);
  EXPECT_EQ(Cache.size(), 50u);
  EXPECT_EQ(Cache.evictions(), 0u);
}

TEST(LruCacheTest, FindPointerStableUntilEviction) {
  LruCache<int, std::string> Cache(2);
  Cache.insert(1, "one");
  std::string *P = Cache.find(1);
  ASSERT_NE(P, nullptr);
  Cache.insert(2, "two"); // No eviction at capacity 2.
  EXPECT_EQ(*P, "one");   // std::list nodes do not move.
}

TEST(LruCacheTest, ClearEmptiesWithoutCountingEvictions) {
  LruCache<int, int> Cache(4);
  Cache.insert(1, 1);
  Cache.insert(2, 2);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.evictions(), 0u);
  EXPECT_EQ(Cache.find(1), nullptr);
  // The cache is fully usable after clear().
  Cache.insert(3, 3);
  ASSERT_NE(Cache.find(3), nullptr);
}
