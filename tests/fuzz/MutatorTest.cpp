//===- tests/fuzz/MutatorTest.cpp - Structured mutator tests --------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured mutators (fuzz/Mutator.h): the FunctionSketch rebuild
/// is lossless, every mutation kind is seed-deterministic, accepted
/// mutants stay structurally valid and round-trip through ir/Parser, and
/// the individual kinds do what their names promise (split adds a block,
/// merge removes one, add-loop adds a back edge, ...).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "driver/BatchDriver.h" // hashFunction
#include "fuzz/FuzzCase.h"
#include "ir/Parser.h"
#include "ir/ProgramGen.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

/// A small deterministic base case on \p TargetName.
FuzzCase makeBase(uint64_t Seed, const std::string &TargetName = "st231",
                  unsigned NumClasses = 1) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  Opt.NumVars = 10;
  Opt.MaxBlocks = 14;
  Opt.MaxNesting = 2;
  Opt.ExprsPerBlockMin = 1;
  Opt.ExprsPerBlockMax = 4;
  Opt.NumClasses = NumClasses;
  FuzzCase Case;
  Case.F = generateFunction(R, Opt, "base" + std::to_string(Seed));
  Case.TargetName = TargetName;
  const TargetDesc *Target = Case.target();
  for (unsigned C = 0; C < Target->numClasses(); ++C)
    Case.Budgets.push_back(4);
  EXPECT_TRUE(validateCase(Case));
  return Case;
}

/// Applies \p Kind with retries over draw attempts (some kinds need an
/// applicable site); returns true when it applied at least once with a
/// valid result.
bool applyValidated(FuzzCase &Case, MutationKind Kind, Rng &R,
                    unsigned Attempts = 16) {
  for (unsigned A = 0; A < Attempts; ++A) {
    FuzzCase Candidate = Case;
    if (!applyMutation(Candidate, Kind, R))
      continue;
    if (!validateCase(Candidate) || !normalizeCase(Candidate))
      continue;
    Case = std::move(Candidate);
    return true;
  }
  return false;
}

} // namespace

TEST(MutatorTest, SketchRebuildIsLosslessModuloPredOrder) {
  // build() re-inserts edges in block-then-succ order, which may permute
  // pred lists relative to the original construction history -- meaningless
  // in the phi-free substrate.  One rebuild is therefore a
  // canonicalization: a second round trip must be byte-identical, and
  // everything except pred order must survive the first.
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    FuzzCase Case = makeBase(Seed, "armv7-vfp", 2);
    Function Once = FunctionSketch::fromFunction(Case.F).build();
    Function Twice = FunctionSketch::fromFunction(Once).build();
    EXPECT_EQ(Once.toString(), Twice.toString()) << "seed=" << Seed;
    EXPECT_EQ(hashFunction(Once), hashFunction(Twice));

    ASSERT_EQ(Case.F.numBlocks(), Once.numBlocks());
    EXPECT_EQ(Case.F.numValues(), Once.numValues());
    for (BlockId B = 0; B < Case.F.numBlocks(); ++B) {
      const BasicBlock &Orig = Case.F.block(B);
      const BasicBlock &Built = Once.block(B);
      EXPECT_EQ(Orig.Name, Built.Name);
      EXPECT_EQ(Orig.Succs, Built.Succs);
      EXPECT_EQ(Orig.Frequency, Built.Frequency);
      EXPECT_EQ(Orig.Instrs.size(), Built.Instrs.size());
      for (size_t I = 0; I < Orig.Instrs.size(); ++I) {
        EXPECT_EQ(Orig.Instrs[I].Op, Built.Instrs[I].Op);
        EXPECT_EQ(Orig.Instrs[I].Defs, Built.Instrs[I].Defs);
        EXPECT_EQ(Orig.Instrs[I].Uses, Built.Instrs[I].Uses);
      }
    }
    for (ValueId V = 0; V < Case.F.numValues(); ++V)
      EXPECT_EQ(Case.F.valueClass(V), Once.valueClass(V));
  }
}

TEST(MutatorTest, MutationsAreSeedDeterministic) {
  for (MutationKind Kind : allMutationKinds()) {
    FuzzCase A = makeBase(3, "armv7-vfp", 2);
    FuzzCase B = makeBase(3, "armv7-vfp", 2);
    Rng Ra(99), Rb(99);
    bool AppliedA = applyMutation(A, Kind, Ra);
    bool AppliedB = applyMutation(B, Kind, Rb);
    EXPECT_EQ(AppliedA, AppliedB) << mutationKindName(Kind);
    EXPECT_EQ(A.F.toString(), B.F.toString()) << mutationKindName(Kind);
    EXPECT_EQ(A.Budgets, B.Budgets) << mutationKindName(Kind);
  }
}

TEST(MutatorTest, AcceptedMutantsRoundTripThroughParser) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    FuzzCase Case = makeBase(Seed, "armv7-vfp", 2);
    Rng R(Seed * 17 + 1);
    for (unsigned Step = 0; Step < 12; ++Step) {
      FuzzCase Candidate = Case;
      if (!applyRandomMutation(Candidate, R))
        continue;
      if (!validateCase(Candidate) || !normalizeCase(Candidate))
        continue;
      Case = Candidate;
      // Round-trip stability: the normalized form re-parses and
      // re-prints byte-identically.
      std::string Text = Case.F.toString();
      ParsedFunction Parsed = parseFunction(Text);
      ASSERT_TRUE(Parsed.Ok) << Parsed.Error;
      EXPECT_EQ(Parsed.F.toString(), Text);
    }
    EXPECT_FALSE(Case.Trail.empty()) << "seed=" << Seed;
  }
}

TEST(MutatorTest, InsertOpAlwaysProducesValidCases) {
  // insert-op only draws from in-scope values, so unlike the optimistic
  // kinds it must never need the validation gate.
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    FuzzCase Case = makeBase(Seed);
    Rng R(Seed);
    for (unsigned Step = 0; Step < 8; ++Step) {
      ASSERT_TRUE(applyMutation(Case, MutationKind::InsertOp, R));
      std::string Error;
      ASSERT_TRUE(validateCase(Case, &Error))
          << "seed=" << Seed << " step=" << Step << ": " << Error;
    }
  }
}

TEST(MutatorTest, SplitAddsAndMergeRemovesBlocks) {
  FuzzCase Case = makeBase(5);
  Rng R(7);
  unsigned Before = Case.F.numBlocks();
  ASSERT_TRUE(applyValidated(Case, MutationKind::SplitBlock, R));
  EXPECT_EQ(Case.F.numBlocks(), Before + 1);

  // The split created a single-succ/single-pred pair, so a merge site
  // exists; merging shrinks the CFG again.
  unsigned Split = Case.F.numBlocks();
  ASSERT_TRUE(applyValidated(Case, MutationKind::MergeBlocks, R));
  EXPECT_LT(Case.F.numBlocks(), Split);
}

TEST(MutatorTest, AddLoopCreatesABackEdge) {
  FuzzCase Case = makeBase(2);
  auto CountEdges = [](const Function &F) {
    size_t N = 0;
    for (BlockId B = 0; B < F.numBlocks(); ++B)
      N += F.block(B).Succs.size();
    return N;
  };
  Rng R(21);
  size_t Before = CountEdges(Case.F);
  ASSERT_TRUE(applyValidated(Case, MutationKind::AddLoop, R));
  EXPECT_EQ(CountEdges(Case.F), Before + 1);
  std::string Error;
  EXPECT_TRUE(verifyFunction(Case.F, /*ExpectSsa=*/false, &Error)) << Error;
}

TEST(MutatorTest, CloneBlockGrowsTheCfg) {
  FuzzCase Case = makeBase(4);
  Rng R(13);
  unsigned Before = Case.F.numBlocks();
  ASSERT_TRUE(applyValidated(Case, MutationKind::CloneBlock, R));
  // Cloning adds one block; the donor may become unreachable and be
  // pruned, so the count grows by one or stays equal -- never shrinks.
  EXPECT_GE(Case.F.numBlocks(), Before);
}

TEST(MutatorTest, ReassignClassRespectsTargetTable) {
  FuzzCase Case = makeBase(6, "armv7-vfp", 2);
  Rng R(31);
  ASSERT_TRUE(applyValidated(Case, MutationKind::ReassignClass, R));
  const TargetDesc *Target = Case.target();
  EXPECT_LT(Case.F.maxValueClass(), Target->numClasses());

  // Single-class targets have nowhere to reassign to.
  FuzzCase Single = makeBase(6);
  EXPECT_FALSE(applyMutation(Single, MutationKind::ReassignClass, R));
}

TEST(MutatorTest, BudgetAndFreqPerturbationsStayInRange) {
  FuzzCase Case = makeBase(8, "armv7-vfp", 2);
  Rng R(41);
  ASSERT_TRUE(applyValidated(Case, MutationKind::PerturbBudget, R));
  for (unsigned B : Case.Budgets) {
    EXPECT_GE(B, 1u);
    EXPECT_LE(B, 10u);
  }
  ASSERT_TRUE(applyValidated(Case, MutationKind::PerturbFreq, R));
  std::string Error;
  EXPECT_TRUE(validateCase(Case, &Error)) << Error;
}

TEST(MutatorTest, ReproducerFormatRoundTrips) {
  FuzzCase Case = makeBase(9, "armv7-vfp", 2);
  Case.Seed = 42;
  Case.Run = 7;
  Case.Trail = {"insert-op", "add-loop"};
  Case.OracleName = "heuristic-vs-exact";
  Case.Detail = "example detail line";
  ASSERT_TRUE(normalizeCase(Case));

  std::string Text = formatReproducer(Case);
  FuzzCase Loaded;
  std::string Error;
  ASSERT_TRUE(parseReproducer(Text, Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded.TargetName, Case.TargetName);
  EXPECT_EQ(Loaded.Budgets, Case.Budgets);
  EXPECT_EQ(Loaded.Seed, Case.Seed);
  EXPECT_EQ(Loaded.Run, Case.Run);
  EXPECT_EQ(Loaded.Trail, Case.Trail);
  EXPECT_EQ(Loaded.OracleName, Case.OracleName);
  EXPECT_EQ(Loaded.Detail, Case.Detail);
  EXPECT_EQ(Loaded.F.toString(), Case.F.toString());
  EXPECT_EQ(hashCase(Loaded), hashCase(Case));

  // A bare corpus file (no metadata) defaults to st231 with R=4.
  FuzzCase Bare;
  ASSERT_TRUE(parseReproducer(makeBase(1).F.toString(), Bare, &Error))
      << Error;
  EXPECT_EQ(Bare.TargetName, "st231");
  EXPECT_EQ(Bare.Budgets, std::vector<unsigned>{4});
}

TEST(MutatorTest, ValidateRejectsBrokenCases) {
  // Unknown target.
  FuzzCase Case = makeBase(1);
  Case.TargetName = "z80";
  EXPECT_FALSE(validateCase(Case));

  // Budget arity mismatch.
  Case = makeBase(1);
  Case.Budgets.push_back(4);
  EXPECT_FALSE(validateCase(Case));

  // Class beyond the target's table.
  Case = makeBase(1, "armv7-vfp", 2);
  Case.TargetName = "st231";
  Case.Budgets = {4};
  std::string Error;
  if (Case.F.maxValueClass() > 0) {
    EXPECT_FALSE(validateCase(Case, &Error));
  }

  // A use with no definition on some path.
  ParsedFunction Bad = parseFunction("function f {\n"
                                     "entry:  ; depth=0 freq=1\n"
                                     "  %r = op %ghost\n"
                                     "  ret\n"
                                     "}\n");
  ASSERT_TRUE(Bad.Ok) << Bad.Error;
  FuzzCase Ghost;
  Ghost.F = Bad.F;
  Ghost.TargetName = "st231";
  Ghost.Budgets = {4};
  EXPECT_FALSE(validateCase(Ghost, &Error));
  EXPECT_NE(Error.find("before any definition"), std::string::npos) << Error;
}
