//===- tests/fuzz/MinimizerTest.cpp - Delta-minimization tests ------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The delta-debugging minimizer and the end-to-end crash workflow --
/// the fuzz subsystem's acceptance criterion: a seeded `layra-fuzz` run
/// with an intentionally broken oracle (--break-oracle) must produce a
/// minimized reproducer of at most 10 instructions whose failure
/// replays through the --repro path, bit-reproducibly.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include "fuzz/Corpus.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Mutator.h"
#include "ir/ProgramGen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace layra;

namespace {

/// Scratch directory for crash files.
struct TempDir {
  std::string Path;
  TempDir() {
    char Template[] = "/tmp/layra-fuzz-test-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : "";
  }
  ~TempDir() {
    if (Path.empty())
      return;
    // Best-effort cleanup of crash files, then the directory.
    std::string Cmd = "rm -rf '" + Path + "'";
    (void)std::system(Cmd.c_str());
  }
};

bool containsCopy(const Function &F) {
  for (const BasicBlock &BB : F.blocks())
    for (const Instruction &I : BB.Instrs)
      if (I.Op == Opcode::Copy)
        return true;
  return false;
}

FuzzCase makeBase(uint64_t Seed) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  Opt.NumVars = 12;
  Opt.MaxBlocks = 20;
  Opt.MaxNesting = 3;
  Opt.ExprsPerBlockMin = 2;
  Opt.ExprsPerBlockMax = 5;
  Opt.CopyProb = 0.25; // Make sure copies appear.
  FuzzCase Case;
  Case.F = generateFunction(R, Opt, "min" + std::to_string(Seed));
  Case.TargetName = "st231";
  Case.Budgets = {4};
  EXPECT_TRUE(validateCase(Case));
  EXPECT_TRUE(normalizeCase(Case));
  return Case;
}

} // namespace

TEST(MinimizerTest, ShrinksToMinimalCopyWitnessDeterministically) {
  // Direct library-level minimization against a synthetic predicate:
  // "the function still contains a copy".  The fixpoint should reach the
  // canonical 3-instruction witness (def, copy, ret).
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    FuzzCase Case = makeBase(Seed);
    if (!containsCopy(Case.F))
      continue;
    unsigned Before = Case.numInstructions();
    MinimizeStats Stats = minimizeCase(Case, [](const FuzzCase &Candidate) {
      return containsCopy(Candidate.F);
    });
    EXPECT_GT(Stats.CandidatesTried, 0u);
    EXPECT_TRUE(containsCopy(Case.F));
    EXPECT_LE(Case.numInstructions(), 3u) << "seed=" << Seed;
    EXPECT_LT(Case.numInstructions(), Before);
    EXPECT_EQ(Case.F.numBlocks(), 1u);
    EXPECT_TRUE(validateCase(Case));

    // Determinism: minimizing the same input again yields the same bytes.
    FuzzCase Again = makeBase(Seed);
    minimizeCase(Again, [](const FuzzCase &Candidate) {
      return containsCopy(Candidate.F);
    });
    EXPECT_EQ(Case.F.toString(), Again.F.toString());
    EXPECT_EQ(Case.Budgets, Again.Budgets);
  }
}

TEST(MinimizerTest, MinimizerNeverAcceptsInvalidOrPassingCandidates) {
  FuzzCase Case = makeBase(2);
  if (!containsCopy(Case.F))
    GTEST_SKIP() << "seed produced no copy";
  minimizeCase(Case, [](const FuzzCase &Candidate) {
    // The predicate sees only validated candidates.
    EXPECT_TRUE(validateCase(Candidate));
    return containsCopy(Candidate.F);
  });
  EXPECT_TRUE(containsCopy(Case.F));
}

TEST(MinimizerTest, BrokenOracleRunProducesMinimizedReplayableReproducer) {
  // The acceptance criterion end to end, via the library entry points the
  // CLI wraps: a seeded session with --break-oracle=parse-roundtrip must
  // fail, minimize to <= 10 instructions, and replay through --repro.
  TempDir Crashes;
  FuzzOptions Options;
  Options.Seed = 3;
  Options.Runs = 30;
  Options.TargetName = "st231";
  Options.CrashDir = Crashes.Path;
  Options.BreakOracle = "parse-roundtrip";
  Options.MaxFailures = 2;

  FuzzReport Report = runFuzzSession(Options, nullptr);
  ASSERT_TRUE(Report.Errors.empty())
      << (Report.Errors.empty() ? "" : Report.Errors.front());
  ASSERT_FALSE(Report.Failures.empty());

  for (const FuzzFailure &Failure : Report.Failures) {
    const FuzzCase &Min = Failure.Case;
    EXPECT_LE(Min.numInstructions(), 10u);
    EXPECT_TRUE(containsCopy(Min.F));
    EXPECT_EQ(Min.OracleName, "parse-roundtrip");
    ASSERT_FALSE(Failure.CrashPath.empty());

    // The written reproducer replays the failure -- with the planted
    // break still armed -- and is clean without it.
    std::string Error;
    FuzzOptions Replay;
    Replay.BreakOracle = "parse-roundtrip";
    OracleOutcome Reproduced =
        reproduceFile(Failure.CrashPath, Replay, &Error);
    ASSERT_TRUE(Error.empty()) << Error;
    EXPECT_FALSE(Reproduced.Ok);
    EXPECT_NE(Reproduced.Detail.find("planted"), std::string::npos);

    FuzzOptions Fixed;
    OracleOutcome Clean = reproduceFile(Failure.CrashPath, Fixed, &Error);
    ASSERT_TRUE(Error.empty()) << Error;
    EXPECT_TRUE(Clean.Ok) << Clean.Detail;
  }
}

TEST(MinimizerTest, SessionsAreBitReproducible) {
  // Two identical sessions must agree on every observable: failure
  // count, crash paths, reproducer bytes.
  TempDir DirA, DirB;
  FuzzOptions Options;
  Options.Seed = 3;
  Options.Runs = 15;
  Options.BreakOracle = "parse-roundtrip";
  Options.MaxFailures = 1;

  Options.CrashDir = DirA.Path;
  FuzzReport A = runFuzzSession(Options, nullptr);
  Options.CrashDir = DirB.Path;
  FuzzReport B = runFuzzSession(Options, nullptr);

  ASSERT_EQ(A.Failures.size(), B.Failures.size());
  ASSERT_FALSE(A.Failures.empty());
  EXPECT_EQ(A.MutationsApplied, B.MutationsApplied);
  EXPECT_EQ(A.OracleChecks, B.OracleChecks);
  for (size_t I = 0; I < A.Failures.size(); ++I) {
    EXPECT_EQ(formatReproducer(A.Failures[I].Case),
              formatReproducer(B.Failures[I].Case));
    // Content-addressed names match modulo the directory.
    std::string NameA =
        A.Failures[I].CrashPath.substr(DirA.Path.size());
    std::string NameB =
        B.Failures[I].CrashPath.substr(DirB.Path.size());
    EXPECT_EQ(NameA, NameB);
    std::ifstream InA(A.Failures[I].CrashPath), InB(B.Failures[I].CrashPath);
    std::ostringstream TextA, TextB;
    TextA << InA.rdbuf();
    TextB << InB.rdbuf();
    EXPECT_EQ(TextA.str(), TextB.str());
    EXPECT_FALSE(TextA.str().empty());
  }
}

TEST(MinimizerTest, CrashFilesAreContentAddressedAndIdempotent) {
  TempDir Dir;
  FuzzCase Case = makeBase(1);
  Case.OracleName = "parse-roundtrip";
  Case.Detail = "synthetic";
  std::string Error;
  std::string First = writeCrashFile(Dir.Path, Case, &Error);
  ASSERT_FALSE(First.empty()) << Error;
  std::string Second = writeCrashFile(Dir.Path, Case, &Error);
  EXPECT_EQ(First, Second);

  FuzzCase Loaded;
  ASSERT_TRUE(loadReproducerFile(First, Loaded, &Error)) << Error;
  EXPECT_EQ(hashCase(Loaded), hashCase(Case));
  EXPECT_EQ(Loaded.OracleName, Case.OracleName);
}
