//===- tests/fuzz/OracleTest.cpp - Oracle registry tests ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-oracle registry (fuzz/Oracles.h): every oracle
/// passes on known-good generated and corpus-style cases (single- and
/// multi-class), the planted --break-oracle failure triggers exactly on
/// functions containing a copy, and the serve-direct oracle holds
/// against a real in-process server.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "core/SolverWorkspace.h"
#include "fuzz/FuzzCase.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "service/Client.h"
#include "service/Server.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <unistd.h>

using namespace layra;

namespace {

FuzzCase makeCase(uint64_t Seed, const std::string &TargetName,
                  unsigned NumClasses, std::vector<unsigned> Budgets) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  Opt.NumVars = 9;
  Opt.MaxBlocks = 14;
  Opt.MaxNesting = 2;
  Opt.ExprsPerBlockMin = 1;
  Opt.ExprsPerBlockMax = 4;
  Opt.NumClasses = NumClasses;
  Opt.AltClassProb = 0.4;
  FuzzCase Case;
  Case.F = generateFunction(R, Opt, "oc" + std::to_string(Seed));
  Case.TargetName = TargetName;
  Case.Budgets = std::move(Budgets);
  EXPECT_TRUE(validateCase(Case));
  EXPECT_TRUE(normalizeCase(Case));
  return Case;
}

/// Runs \p OracleName over \p Case with a shared workspace.
OracleOutcome runOn(const FuzzCase &Case, const std::string &OracleName,
                    SolverWorkspace *WS = nullptr,
                    const std::string &BreakOracle = {},
                    Client *ServeClient = nullptr) {
  SsaConversion Ssa = convertToSsa(Case.F);
  OracleContext Ctx;
  Ctx.Case = &Case;
  Ctx.Target = Case.target();
  Ctx.Ssa = &Ssa.Ssa;
  Ctx.WS = WS;
  Ctx.ServeClient = ServeClient;
  Ctx.ServeThreads = 2;
  Ctx.BreakOracle = BreakOracle;
  const Oracle *O = findOracle(OracleName);
  EXPECT_NE(O, nullptr) << OracleName;
  return runOracle(*O, Ctx);
}

} // namespace

TEST(OracleTest, RegistryNamesAreStableAndLookupsWork) {
  const std::vector<Oracle> &Registry = oracleRegistry();
  ASSERT_EQ(Registry.size(), 9u);
  for (const Oracle &O : Registry) {
    EXPECT_EQ(findOracle(O.Name), &O);
    EXPECT_NE(O.Description[0], '\0');
  }
  EXPECT_EQ(findOracle("no-such-oracle"), nullptr);
  // The serve-backed oracle is marked as such (the CLI keys on it).
  ASSERT_NE(findOracle("serve-direct"), nullptr);
  EXPECT_TRUE(findOracle("serve-direct")->NeedsServer);
  EXPECT_FALSE(findOracle("heuristic-vs-exact")->NeedsServer);
  // The baseline sweep runs locally too.
  ASSERT_NE(findOracle("baseline-backends"), nullptr);
  EXPECT_FALSE(findOracle("baseline-backends")->NeedsServer);
}

TEST(OracleTest, AllLocalOraclesPassOnKnownGoodCases) {
  SolverWorkspace WS;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    FuzzCase Single = makeCase(Seed, "st231", 1, {3});
    FuzzCase Multi = makeCase(Seed + 50, "armv7-vfp", 2, {3, 2});
    for (const FuzzCase *Case : {&Single, &Multi}) {
      for (const Oracle &O : oracleRegistry()) {
        if (O.NeedsServer)
          continue;
        OracleOutcome Outcome = runOn(*Case, O.Name, &WS);
        EXPECT_TRUE(Outcome.Ok)
            << O.Name << " seed=" << Seed << ": " << Outcome.Detail;
      }
    }
  }
}

TEST(OracleTest, PlantedBreakFiresExactlyOnCopies) {
  // A case guaranteed to contain a copy.
  FuzzCase WithCopy;
  WithCopy.TargetName = "st231";
  WithCopy.Budgets = {4};
  {
    BlockId Entry = WithCopy.F.makeBlock("entry");
    ValueId A = WithCopy.F.makeValue("a");
    ValueId B = WithCopy.F.makeValue("b");
    Instruction Def;
    Def.Op = Opcode::Op;
    Def.Defs = {A};
    Instruction Copy;
    Copy.Op = Opcode::Copy;
    Copy.Defs = {B};
    Copy.Uses = {A};
    Instruction Ret;
    Ret.Op = Opcode::Return;
    Ret.Uses = {B};
    auto &Instrs = WithCopy.F.block(Entry).Instrs;
    Instrs.push_back(Def);
    Instrs.push_back(Copy);
    Instrs.push_back(Ret);
  }
  ASSERT_TRUE(validateCase(WithCopy));

  // Breaking one oracle fails that oracle -- and only that one.
  OracleOutcome Broken =
      runOn(WithCopy, "parse-roundtrip", nullptr, "parse-roundtrip");
  EXPECT_FALSE(Broken.Ok);
  EXPECT_NE(Broken.Detail.find("planted"), std::string::npos);
  EXPECT_TRUE(runOn(WithCopy, "parse-roundtrip").Ok);
  EXPECT_TRUE(
      runOn(WithCopy, "assignment-valid", nullptr, "parse-roundtrip").Ok);

  // Copy-free functions never trigger the planted failure.
  FuzzCase NoCopy = makeCase(3, "st231", 1, {4});
  bool HasCopy = false;
  for (const BasicBlock &BB : NoCopy.F.blocks())
    for (const Instruction &I : BB.Instrs)
      HasCopy |= I.Op == Opcode::Copy;
  if (!HasCopy) {
    EXPECT_TRUE(
        runOn(NoCopy, "parse-roundtrip", nullptr, "parse-roundtrip").Ok);
  }
}

TEST(OracleTest, ServeDirectHoldsAgainstARealServer) {
  // In-process server on a temp Unix socket, exactly the harness
  // layra-fuzz --serve-oracle builds.
  char Template[] = "/tmp/layra-oracle-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  ASSERT_NE(Dir, nullptr);
  ServerOptions Opt;
  Opt.UnixPath = std::string(Dir) + "/serve.sock";
  Opt.Threads = 2;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  SolverWorkspace WS;
  for (uint64_t Seed = 11; Seed <= 14; ++Seed) {
    FuzzCase Case = makeCase(Seed, "armv7-vfp", 2, {4, 2});
    OracleOutcome Outcome =
        runOn(Case, "serve-direct", &WS, {}, &Conn);
    EXPECT_TRUE(Outcome.Ok) << "seed=" << Seed << ": " << Outcome.Detail;
  }

  // Without a client the oracle passes vacuously (it is opt-in).
  FuzzCase Case = makeCase(15, "st231", 1, {4});
  EXPECT_TRUE(runOn(Case, "serve-direct").Ok);

  Conn.close();
  S.requestStop();
  S.wait();
  ::rmdir(Dir);
}
