//===- tests/driver/BatchDriverTest.cpp - Batch driver tests --------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include "alloc/Allocator.h"
#include "core/AllocationProblem.h"
#include "driver/ReportIO.h"
#include "graph/Graph.h"
#include "ir/Dominators.h"
#include "ir/LoopInfo.h"
#include "ir/ProgramGen.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

/// The eembc jobs used by the determinism checks: full suite, two register
/// counts, default pipeline options.
std::vector<BatchJob> eembcJobs() {
  std::vector<BatchJob> Jobs;
  for (unsigned Regs : {4u, 8u}) {
    BatchJob Job;
    Job.SuiteName = "eembc";
    Job.NumRegisters = Regs;
    Jobs.push_back(Job);
  }
  return Jobs;
}

/// A tiny hand-built suite of generated functions (faster than the real
/// suites for cache-focused tests).
Suite tinySuite(unsigned NumFunctions, uint64_t Seed) {
  Suite S;
  S.Name = "tiny";
  SuiteProgram Prog;
  Prog.Name = "prog";
  Rng R(Seed);
  for (unsigned I = 0; I < NumFunctions; ++I) {
    ProgramGenOptions Opt;
    Opt.NumVars = 10;
    Opt.MaxBlocks = 12;
    Function F = generateFunction(R, Opt, "f" + std::to_string(I));
    DominatorTree Dom(F);
    LoopInfo Loops(F, Dom);
    Loops.annotate(F);
    Prog.Functions.push_back(std::move(F));
  }
  S.Programs.push_back(std::move(Prog));
  return S;
}

} // namespace

TEST(BatchDriverTest, EembcResultsAreBitIdenticalAcrossThreadCounts) {
  BatchDriver Serial(1), Parallel(8);
  DriverReport A = Serial.run(eembcJobs());
  DriverReport B = Parallel.run(eembcJobs());

  ASSERT_EQ(A.Jobs.size(), B.Jobs.size());
  EXPECT_EQ(A.Threads, 1u);
  EXPECT_EQ(B.Threads, 8u);

  // Field-level equality of every deterministic quantity.
  for (size_t J = 0; J < A.Jobs.size(); ++J) {
    const JobReport &JA = A.Jobs[J], &JB = B.Jobs[J];
    EXPECT_EQ(JA.TotalSpillCost, JB.TotalSpillCost);
    EXPECT_EQ(JA.TotalLoads, JB.TotalLoads);
    EXPECT_EQ(JA.TotalStores, JB.TotalStores);
    EXPECT_EQ(JA.TotalRounds, JB.TotalRounds);
    EXPECT_EQ(JA.FunctionsFit, JB.FunctionsFit);
    EXPECT_EQ(JA.CacheHits, JB.CacheHits);
    ASSERT_EQ(JA.Tasks.size(), JB.Tasks.size());
    for (size_t T = 0; T < JA.Tasks.size(); ++T) {
      EXPECT_EQ(JA.Tasks[T].Program, JB.Tasks[T].Program);
      EXPECT_EQ(JA.Tasks[T].Function, JB.Tasks[T].Function);
      EXPECT_EQ(JA.Tasks[T].Key, JB.Tasks[T].Key);
      EXPECT_EQ(JA.Tasks[T].CacheHit, JB.Tasks[T].CacheHit);
      EXPECT_EQ(JA.Tasks[T].Out.SpillCost, JB.Tasks[T].Out.SpillCost);
      EXPECT_EQ(JA.Tasks[T].Out.Rounds, JB.Tasks[T].Out.Rounds);
    }
  }

  // The acceptance-criterion form: serialized JSON without timing fields is
  // byte-identical (per-task detail included).
  std::string TextA = driverReportToJson(A, /*IncludeTiming=*/false,
                                         /*IncludeTasks=*/true)
                          .dump();
  std::string TextB = driverReportToJson(B, /*IncludeTiming=*/false,
                                         /*IncludeTasks=*/true)
                          .dump();
  // threads is configuration, not a measurement; normalize it away.
  size_t PosA = TextA.find("\"threads\": 1");
  size_t PosB = TextB.find("\"threads\": 8");
  ASSERT_NE(PosA, std::string::npos);
  ASSERT_NE(PosB, std::string::npos);
  TextA.replace(PosA, 12, "\"threads\": N");
  TextB.replace(PosB, 12, "\"threads\": N");
  EXPECT_EQ(TextA, TextB);
}

TEST(BatchDriverTest, DuplicateJobHitsCacheWithoutChangingTotals) {
  Suite S = tinySuite(6, 99);
  BatchJob Job;
  Job.SuiteName = "tiny";
  Job.SuiteData = &S;
  Job.NumRegisters = 4;

  BatchDriver Driver(4);
  DriverReport Report = Driver.run({Job, Job});
  ASSERT_EQ(Report.Jobs.size(), 2u);
  const JobReport &First = Report.Jobs[0], &Second = Report.Jobs[1];

  // Second job is served entirely from the cache...
  EXPECT_EQ(Second.CacheHits, 6u);
  for (const TaskResult &T : Second.Tasks)
    EXPECT_TRUE(T.CacheHit);
  // ...without changing any totals.
  EXPECT_EQ(First.TotalSpillCost, Second.TotalSpillCost);
  EXPECT_EQ(First.TotalLoads, Second.TotalLoads);
  EXPECT_EQ(First.TotalStores, Second.TotalStores);
  EXPECT_EQ(First.TotalRounds, Second.TotalRounds);
  // Only the unique instances were solved and memoized.
  EXPECT_EQ(Driver.pipelineCacheSize(), 6u);
}

TEST(BatchDriverTest, CachePersistsAcrossRuns) {
  Suite S = tinySuite(5, 7);
  BatchJob Job;
  Job.SuiteName = "tiny";
  Job.SuiteData = &S;
  Job.NumRegisters = 3;

  BatchDriver Driver(2);
  DriverReport First = Driver.run({Job});
  EXPECT_EQ(First.Jobs[0].CacheHits, 0u);
  DriverReport Second = Driver.run({Job});
  EXPECT_EQ(Second.Jobs[0].CacheHits, 5u);
  EXPECT_EQ(First.Jobs[0].TotalSpillCost, Second.Jobs[0].TotalSpillCost);
  // A different register count is a different instance: no hits.
  Job.NumRegisters = 5;
  DriverReport Third = Driver.run({Job});
  EXPECT_EQ(Third.Jobs[0].CacheHits, 0u);
}

TEST(BatchDriverTest, HashDistinguishesInstancesButIgnoresNames) {
  Suite S = tinySuite(2, 11);
  const Function &F = S.Programs[0].Functions[0];
  const Function &G = S.Programs[0].Functions[1];

  PipelineOptions Opt;
  uint64_t Base = hashPipelineTask(F, ST231, 4, Opt);
  EXPECT_EQ(Base, hashPipelineTask(F, ST231, 4, Opt));
  EXPECT_NE(Base, hashPipelineTask(G, ST231, 4, Opt));
  EXPECT_NE(Base, hashPipelineTask(F, ST231, 5, Opt));
  EXPECT_NE(Base, hashPipelineTask(F, ARMv7, 4, Opt));
  PipelineOptions NoFold = Opt;
  NoFold.FoldMemoryOperands = false;
  EXPECT_NE(Base, hashPipelineTask(F, ST231, 4, NoFold));

  // Renaming values does not change the structural hash.
  Function Renamed = F;
  for (ValueId V = 0; V < Renamed.numValues(); ++V)
    Renamed.setValueName(V, "renamed" + std::to_string(V));
  EXPECT_EQ(hashFunction(F), hashFunction(Renamed));
}

TEST(BatchDriverTest, SolveProblemsMatchesDirectAllocation) {
  Suite S = tinySuite(4, 21);
  std::vector<NamedProblem> Problems = chordalProblems(S, ST231, 4);
  std::vector<const AllocationProblem *> Ptrs;
  for (const NamedProblem &P : Problems)
    Ptrs.push_back(&P.P);

  BatchDriver Driver(4);
  for (const char *Name : {"bfpl", "gc", "lh"}) {
    std::vector<AllocationResult> Batch = Driver.solveProblems(Ptrs, Name);
    ASSERT_EQ(Batch.size(), Problems.size());
    for (size_t I = 0; I < Problems.size(); ++I) {
      AllocationResult Direct = makeAllocator(Name)->allocate(Problems[I].P);
      EXPECT_EQ(Batch[I].SpillCost, Direct.SpillCost) << Name;
      EXPECT_EQ(Batch[I].Allocated, Direct.Allocated) << Name;
    }
  }
  EXPECT_GT(Driver.problemCacheSize(), 0u);
}

TEST(BatchDriverTest, SolveProblemsReportsUnknownAllocatorWithoutDying) {
  Suite S = tinySuite(2, 41);
  std::vector<NamedProblem> Problems = chordalProblems(S, ST231, 4);
  std::vector<const AllocationProblem *> Ptrs;
  for (const NamedProblem &P : Problems)
    Ptrs.push_back(&P.P);

  BatchDriver Driver(2);
  std::string Error;
  std::vector<AllocationResult> Out =
      Driver.solveProblems(Ptrs, "not-an-allocator", 0, &Error);
  EXPECT_TRUE(Out.empty());
  EXPECT_NE(Error.find("unknown allocator"), std::string::npos) << Error;
  EXPECT_NE(Error.find("not-an-allocator"), std::string::npos) << Error;
  // The message enumerates what *would* work.
  EXPECT_NE(Error.find("gc"), std::string::npos) << Error;

  // The same driver is still usable afterwards.
  Error.clear();
  std::vector<AllocationResult> Good =
      Driver.solveProblems(Ptrs, "bfpl", 0, &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Good.size(), Problems.size());
}

TEST(BatchDriverTest, SolveProblemsRejectsIntervalAllocatorsOnGraphOnlyInput) {
  // Problems built straight from a graph carry no interval table; linear
  // scan must be refused up front with a diagnostic, not a process abort
  // from inside the worker pool.
  Graph G(6);
  for (VertexId V = 0; V < 6; ++V)
    G.setWeight(V, 1 + V);
  for (VertexId V = 1; V < 6; ++V)
    G.addEdge(V - 1, V);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 2);
  ASSERT_FALSE(P.Intervals.has_value());
  std::vector<const AllocationProblem *> Ptrs{&P};

  BatchDriver Driver(2);
  for (const char *Name : {"ls", "bls"}) {
    std::string Error;
    std::vector<AllocationResult> Out =
        Driver.solveProblems(Ptrs, Name, 0, &Error);
    EXPECT_TRUE(Out.empty()) << Name;
    EXPECT_NE(Error.find("requires live intervals"), std::string::npos)
        << Name << ": " << Error;
  }
  // Graph-based allocators remain fine on the same input.
  std::string Error;
  std::vector<AllocationResult> Out =
      Driver.solveProblems(Ptrs, "bfpl", 0, &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(Out.size(), 1u);
}

TEST(BatchDriverTest, CacheCapacityBoundsEntriesAndCountsEvictions) {
  Suite S = tinySuite(6, 123);
  BatchJob Job;
  Job.SuiteName = "tiny";
  Job.SuiteData = &S;
  Job.NumRegisters = 4;

  BatchDriver Driver(2);
  Driver.setCacheCapacity(4);
  DriverReport First = Driver.run({Job});
  // Six unique solves flowed through a four-entry cache.
  EXPECT_EQ(Driver.pipelineCacheSize(), 4u);
  EXPECT_EQ(First.CacheEntries, 4u);
  EXPECT_EQ(First.CacheEvictions, 2u);
  EXPECT_EQ(First.Jobs[0].CacheHits, 0u);
  // Totals are unaffected by the bound: eviction costs re-solves, never
  // correctness.
  BatchDriver Unbounded(2);
  DriverReport Reference = Unbounded.run({Job});
  EXPECT_EQ(First.Jobs[0].TotalSpillCost, Reference.Jobs[0].TotalSpillCost);
  EXPECT_EQ(First.Jobs[0].TotalLoads, Reference.Jobs[0].TotalLoads);

  // Re-running re-solves the evicted two; the cache stays at capacity.
  DriverReport Second = Driver.run({Job});
  EXPECT_EQ(Driver.pipelineCacheSize(), 4u);
  EXPECT_EQ(Second.Jobs[0].TotalSpillCost, Reference.Jobs[0].TotalSpillCost);

  DriverCacheCounters Counters = Driver.pipelineCacheCounters();
  EXPECT_EQ(Counters.Capacity, 4u);
  EXPECT_EQ(Counters.Entries, 4u);
  EXPECT_GT(Counters.Evictions, 2u);
  EXPECT_GT(Counters.Hits + Counters.Misses, 0u);

  // Shrinking the bound trims immediately.
  Driver.setCacheCapacity(2);
  EXPECT_EQ(Driver.pipelineCacheSize(), 2u);
}

TEST(BatchDriverTest, BoundedProblemCacheStillMatchesDirectAllocation) {
  Suite S = tinySuite(5, 31);
  std::vector<NamedProblem> Problems = chordalProblems(S, ST231, 4);
  std::vector<const AllocationProblem *> Ptrs;
  for (const NamedProblem &P : Problems)
    Ptrs.push_back(&P.P);

  // Capacity 1 forces evictions within a single call; results must still
  // land correctly because they are copied before the cache commit.
  BatchDriver Driver(2);
  Driver.setCacheCapacity(1);
  std::vector<AllocationResult> Batch = Driver.solveProblems(Ptrs, "bfpl");
  std::vector<AllocationResult> Again = Driver.solveProblems(Ptrs, "bfpl");
  ASSERT_EQ(Batch.size(), Problems.size());
  for (size_t I = 0; I < Problems.size(); ++I) {
    AllocationResult Direct = makeAllocator("bfpl")->allocate(Problems[I].P);
    EXPECT_EQ(Batch[I].SpillCost, Direct.SpillCost);
    EXPECT_EQ(Batch[I].Allocated, Direct.Allocated);
    EXPECT_EQ(Again[I].SpillCost, Direct.SpillCost);
  }
  EXPECT_EQ(Driver.problemCacheSize(), 1u);
  EXPECT_GT(Driver.problemCacheCounters().Evictions, 0u);
}

TEST(BatchDriverTest, TransparentReportsAreIdenticalHoweverWarmTheCache) {
  Suite S = tinySuite(6, 77);
  BatchJob Job;
  Job.SuiteName = "tiny";
  Job.SuiteData = &S;
  Job.NumRegisters = 4;

  auto Serialize = [](const DriverReport &R) {
    return driverReportToJson(R, /*IncludeTiming=*/false,
                              /*IncludeTasks=*/true)
        .dump();
  };

  // Fresh driver, non-transparent: the baseline a one-shot run reports.
  BatchDriver Fresh(2);
  std::string Baseline = Serialize(Fresh.run({Job}));

  // Warm driver in transparent mode: the same bytes, every time.
  BatchDriver Warm(2);
  std::string First = Serialize(Warm.run({Job}, /*CacheTransparent=*/true));
  std::string Second = Serialize(Warm.run({Job}, /*CacheTransparent=*/true));
  EXPECT_EQ(First, Baseline);
  EXPECT_EQ(Second, Baseline);

  // Without transparency the second run visibly hits the cache instead.
  BatchDriver Plain(2);
  Plain.run({Job});
  std::string PlainSecond = Serialize(Plain.run({Job}));
  EXPECT_NE(PlainSecond, Baseline);

  // Transparency also hides the capacity bound (a fresh reference driver
  // is unbounded), while the driver's real cache stays bounded.
  BatchDriver Bounded(2);
  Bounded.setCacheCapacity(2);
  std::string BoundedFirst =
      Serialize(Bounded.run({Job}, /*CacheTransparent=*/true));
  std::string BoundedSecond =
      Serialize(Bounded.run({Job}, /*CacheTransparent=*/true));
  EXPECT_EQ(BoundedFirst, Baseline);
  EXPECT_EQ(BoundedSecond, Baseline);
  EXPECT_EQ(Bounded.pipelineCacheSize(), 2u);
}

TEST(BatchDriverTest, ReportSerializersProduceParseableShapes) {
  Suite S = tinySuite(3, 33);
  BatchJob Job;
  Job.SuiteName = "tiny";
  Job.SuiteData = &S;
  Job.NumRegisters = 4;
  BatchDriver Driver(2);
  DriverReport Report = Driver.run({Job});

  std::string Json = driverReportToJson(Report).dump();
  EXPECT_NE(Json.find("\"schema\": \"layra-driver-report/v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"total_spill_cost\""), std::string::npos);
  EXPECT_NE(Json.find("\"wall_ms\""), std::string::npos);
  std::string NoTiming =
      driverReportToJson(Report, /*IncludeTiming=*/false).dump();
  EXPECT_EQ(NoTiming.find("wall_ms"), std::string::npos);

  char Buffer[16384];
  std::FILE *Mem = fmemopen(Buffer, sizeof(Buffer), "w");
  writeDriverReportCsv(Mem, Report);
  std::fclose(Mem);
  std::string Csv = Buffer;
  EXPECT_EQ(Csv.compare(0, 5, "suite"), 0);
  // suite,target,regs,allocator,affinity,fold,max_rounds,functions,...
  EXPECT_NE(Csv.find("tiny,st231,4,bfpl,1,1,4,3"), std::string::npos);

  Mem = fmemopen(Buffer, sizeof(Buffer), "w");
  writeDriverTasksCsv(Mem, Report);
  std::fclose(Mem);
  std::string TasksCsv = Buffer;
  // Header plus one row per function.
  size_t Lines = 0;
  for (char C : TasksCsv)
    Lines += C == '\n' ? 1 : 0;
  EXPECT_EQ(Lines, 1u + 3u);
}
