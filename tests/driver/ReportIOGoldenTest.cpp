//===- tests/driver/ReportIOGoldenTest.cpp - Serializer golden files ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden-file tests for the DriverReport serializers: the timing-free
/// JSON/CSV output of a fixed deterministic batch is compared byte-for-byte
/// against fixtures committed under tests/driver/golden/.  Any schema or
/// formatting drift then shows up as a reviewable fixture diff instead of
/// silently breaking BENCH_*.json trajectory tooling.
///
/// Regenerating after an *intentional* schema change:
///   LAYRA_UPDATE_GOLDEN=1 ./tests_driver_ReportIOGoldenTest
/// then commit the rewritten fixtures.
///
//===----------------------------------------------------------------------===//

#include "driver/ReportIO.h"

#include "driver/BatchDriver.h"
#include "ir/Dominators.h"
#include "ir/LoopInfo.h"
#include "ir/ProgramGen.h"
#include "obs/Trace.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace layra;

namespace {

/// The fixed batch behind every fixture: two deterministic generated
/// programs at two register counts.  Changing this function invalidates
/// the fixtures by design -- regenerate and review the diff.
DriverReport goldenReport() {
  Suite S;
  S.Name = "golden";
  SuiteProgram Prog;
  Prog.Name = "prog";
  Rng R(20240717);
  for (unsigned I = 0; I < 3; ++I) {
    ProgramGenOptions Opt;
    Opt.NumVars = 10;
    Opt.MaxBlocks = 12;
    Function F = generateFunction(R, Opt, "f" + std::to_string(I));
    DominatorTree Dom(F);
    LoopInfo Loops(F, Dom);
    Loops.annotate(F);
    Prog.Functions.push_back(std::move(F));
  }
  S.Programs.push_back(std::move(Prog));

  std::vector<BatchJob> Jobs;
  for (unsigned Regs : {3u, 5u}) {
    BatchJob Job;
    Job.SuiteName = S.Name;
    Job.SuiteData = &S;
    Job.NumRegisters = Regs;
    Jobs.push_back(Job);
  }
  BatchDriver Driver(1);
  return Driver.run(Jobs);
}

std::string goldenDir() {
  return std::string(LAYRA_SOURCE_DIR) + "/tests/driver/golden";
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Captures what \p Write emits into a FILE* as a string.
template <typename WriterT> std::string capture(WriterT Write) {
  std::FILE *Tmp = std::tmpfile();
  EXPECT_NE(Tmp, nullptr) << "tmpfile() unavailable in this environment";
  if (!Tmp)
    return {}; // Comparison below then fails cleanly, without a null deref.
  Write(Tmp);
  long Size = std::ftell(Tmp);
  std::rewind(Tmp);
  std::string Out(static_cast<size_t>(Size), '\0');
  size_t ReadCount = std::fread(Out.data(), 1, Out.size(), Tmp);
  EXPECT_EQ(ReadCount, Out.size());
  std::fclose(Tmp);
  return Out;
}

void compareToGolden(const std::string &Actual, const std::string &File) {
  std::string Path = goldenDir() + "/" + File;
  if (std::getenv("LAYRA_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out.good()) << "cannot rewrite fixture " << Path;
    Out << Actual;
    return;
  }
  std::string Expected = readFile(Path);
  ASSERT_FALSE(Expected.empty())
      << "missing fixture " << Path
      << " (run with LAYRA_UPDATE_GOLDEN=1 to create it)";
  EXPECT_EQ(Expected, Actual)
      << "serializer drift vs. " << Path
      << "; if intentional, regenerate with LAYRA_UPDATE_GOLDEN=1 and "
         "review the fixture diff";
}

} // namespace

TEST(ReportIOGolden, JsonWithoutTimingMatchesFixture) {
  DriverReport Report = goldenReport();
  compareToGolden(capture([&](std::FILE *Out) {
                    writeDriverReportJson(Out, Report, /*IncludeTiming=*/false,
                                          /*IncludeTasks=*/true);
                  }),
                  "report.json");
}

TEST(ReportIOGolden, CsvWithoutTimingMatchesFixture) {
  DriverReport Report = goldenReport();
  compareToGolden(capture([&](std::FILE *Out) {
                    writeDriverReportCsv(Out, Report,
                                         /*IncludeTiming=*/false);
                  }),
                  "report.csv");
}

TEST(ReportIOGolden, TasksCsvWithoutTimingMatchesFixture) {
  DriverReport Report = goldenReport();
  compareToGolden(capture([&](std::FILE *Out) {
                    writeDriverTasksCsv(Out, Report,
                                        /*IncludeTiming=*/false);
                  }),
                  "tasks.csv");
}

TEST(ReportIOGolden, ObservabilityOnStillMatchesTimingFreeFixtures) {
  // Full observability surface enabled: the timing-free serializations
  // must keep their committed bytes.  Phase breakdowns only ever ride in
  // under IncludeTiming, so the goldens are insensitive to obs state.
  TraceCollector &TC = TraceCollector::global();
  TC.clear();
  TC.enable(/*Deterministic=*/true);
  obs::setPhaseAccounting(true);
  DriverReport Report = goldenReport();
  obs::setPhaseAccounting(false);
  TC.disable();
  TC.clear();

  compareToGolden(capture([&](std::FILE *Out) {
                    writeDriverReportJson(Out, Report, /*IncludeTiming=*/false,
                                          /*IncludeTasks=*/true);
                  }),
                  "report.json");
  compareToGolden(capture([&](std::FILE *Out) {
                    writeDriverReportCsv(Out, Report,
                                         /*IncludeTiming=*/false);
                  }),
                  "report.csv");
}

TEST(ReportIOGolden, TimedReportCarriesPhaseBreakdowns) {
  // Not a golden (timings are nondeterministic): with phase accounting on,
  // a timed JSON report grows a phase_ms object per job and the timed CSV
  // grows the per-phase columns.
  obs::setPhaseAccounting(true);
  DriverReport Report = goldenReport();
  obs::setPhaseAccounting(false);

  ASSERT_FALSE(Report.Jobs.empty());
  for (const JobReport &JR : Report.Jobs)
    EXPECT_EQ(JR.PhaseMs.size(), size_t(kNumPhases));
  std::string Json = capture([&](std::FILE *Out) {
    writeDriverReportJson(Out, Report, /*IncludeTiming=*/true,
                          /*IncludeTasks=*/false);
  });
  EXPECT_NE(Json.find("\"phase_ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"pipeline\""), std::string::npos);
  std::string Csv = capture([&](std::FILE *Out) {
    writeDriverReportCsv(Out, Report, /*IncludeTiming=*/true);
  });
  EXPECT_NE(Csv.find("phase_ms_pipeline"), std::string::npos);
}
