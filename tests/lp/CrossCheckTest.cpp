//===- tests/lp/CrossCheckTest.cpp - lp vs graph/core consistency ---------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-module consistency: the same optimum must emerge from Frank's
/// combinatorial MWSS (graph/), the clique-tree DP (core/), the exact
/// branch-and-bound (alloc/) and the LP-based packing ILP (lp/) wherever
/// their domains overlap.  These are the strongest correctness tests in
/// the repository: four independent algorithms agreeing on thousands of
/// random instances.
///
//===----------------------------------------------------------------------===//

#include "lp/Ilp.h"

#include "alloc/OptimalBnB.h"
#include "core/AllocationProblem.h"
#include "graph/Chordal.h"
#include "graph/Generators.h"
#include "graph/StableSet.h"
#include "lp/Simplex.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

/// Builds the packing ILP of an allocation problem (capacity R rows over
/// the point constraints).
IlpInstance packingOf(const AllocationProblem &P) {
  IlpInstance I;
  I.Weights.resize(P.graph().numVertices());
  for (VertexId V = 0; V < P.graph().numVertices(); ++V)
    I.Weights[V] = P.graph().weight(V);
  for (const PressureConstraint &K : P.Constraints) {
    IlpConstraint Row;
    Row.Capacity = K.Budget;
    for (VertexId V : K.Members)
      Row.Vars.push_back(V);
    I.Constraints.push_back(std::move(Row));
  }
  return I;
}

} // namespace

class LpCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LpCrossCheck, FranksMwssEqualsIlpAtOneRegister) {
  // Paper §4: with one register, the optimal allocation *is* the maximum
  // weighted stable set.  Frank's O(V+E) algorithm and the LP-based ILP
  // must agree exactly on chordal graphs.
  Rng R(GetParam());
  for (int Round = 0; Round < 20; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 8 + static_cast<unsigned>(R.nextBelow(40));
    Opt.MaxWeight = 50;
    Graph G = randomChordalGraph(R, Opt);
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, 1);

    std::vector<Weight> Weights(P.graph().numVertices());
    for (VertexId V = 0; V < P.graph().numVertices(); ++V)
      Weights[V] = P.graph().weight(V);
    StableSetResult Stable =
        maximumWeightedStableSetChordal(P.graph(), P.Peo, Weights);
    Weight FrankWeight = Stable.TotalWeight;

    IlpResult Ilp = solveBinaryPackingBudgeted(packingOf(P));
    ASSERT_TRUE(Ilp.Proven);
    EXPECT_EQ(FrankWeight, Ilp.Value)
        << "seed " << GetParam() << " round " << Round;
  }
}

TEST_P(LpCrossCheck, IlpEqualsOptimalBnBOnChordalProblems) {
  Rng R(GetParam() * 977);
  for (int Round = 0; Round < 12; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 10 + static_cast<unsigned>(R.nextBelow(50));
    Opt.MaxWeight = 40;
    Graph G = randomChordalGraph(R, Opt);
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(6));
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);

    OptimalBnBAllocator BnB;
    AllocationResult FromBnB = BnB.allocate(P);
    ASSERT_TRUE(FromBnB.Proven);

    IlpResult Ilp = solveBinaryPackingBudgeted(packingOf(P));
    ASSERT_TRUE(Ilp.Proven);
    EXPECT_EQ(FromBnB.AllocatedWeight, Ilp.Value)
        << "seed " << GetParam() << " round " << Round << " R=" << Regs;
  }
}

TEST_P(LpCrossCheck, LpRelaxationBoundsTheIlp) {
  // Weak duality at the instance level: LP >= ILP always, and on chordal
  // clique systems the gap after flooring is frequently zero.
  Rng R(GetParam() * 31 + 7);
  ChordalGenOptions Opt;
  Opt.NumVertices = 20 + static_cast<unsigned>(R.nextBelow(30));
  Opt.MaxWeight = 25;
  Graph G = randomChordalGraph(R, Opt);
  unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(4));
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);
  IlpInstance I = packingOf(P);

  LinearProgram LP;
  for (unsigned V = 0; V < I.numVars(); ++V)
    LP.addVariable(static_cast<double>(I.Weights[V]), 0.0, 1.0);
  for (const IlpConstraint &K : I.Constraints) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned V : K.Vars)
      Terms.push_back({V, 1.0});
    std::sort(Terms.begin(), Terms.end());
    LP.addRow(std::move(Terms), static_cast<double>(K.Capacity));
  }
  LpSolution Relaxed = solveLp(LP);
  ASSERT_EQ(Relaxed.Status, LpStatus::Optimal);

  IlpResult Ilp = solveBinaryPackingBudgeted(I);
  ASSERT_TRUE(Ilp.Proven);
  EXPECT_GE(Relaxed.Value, static_cast<double>(Ilp.Value) - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpCrossCheck,
                         ::testing::Values(3, 14, 15, 92, 65, 35, 89, 79));
