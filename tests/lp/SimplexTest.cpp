//===- tests/lp/SimplexTest.cpp - Bounded-variable simplex tests ----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include "alloc/OptimalInterval.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace layra;

namespace {
constexpr double kTol = 1e-6;

/// Builds an LP over \p N 0/1-box variables.
LinearProgram boxLp(unsigned N) {
  LinearProgram LP;
  for (unsigned J = 0; J < N; ++J)
    LP.addVariable(0.0, 0.0, 1.0);
  return LP;
}
} // namespace

TEST(SimplexTest, BoundsOnlyMaximization) {
  // With no rows, every positive-cost variable goes to its upper bound and
  // every negative-cost variable stays at its lower bound.
  LinearProgram LP;
  LP.addVariable(3.0, 0.0, 2.0);
  LP.addVariable(-1.0, 0.0, 5.0);
  LP.addVariable(0.0, 0.0, 1.0);
  LpSolution S = solveLp(LP);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Value, 6.0, kTol);
  EXPECT_NEAR(S.X[0], 2.0, kTol);
  EXPECT_NEAR(S.X[1], 0.0, kTol);
}

TEST(SimplexTest, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig
  // example): optimum 36 at (2, 6).
  LinearProgram LP;
  LP.addVariable(3.0);
  LP.addVariable(5.0);
  LP.addRow({{0, 1.0}}, 4.0);
  LP.addRow({{1, 2.0}}, 12.0);
  LP.addRow({{0, 3.0}, {1, 2.0}}, 18.0);
  LpSolution S = solveLp(LP);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Value, 36.0, kTol);
  EXPECT_NEAR(S.X[0], 2.0, kTol);
  EXPECT_NEAR(S.X[1], 6.0, kTol);
}

TEST(SimplexTest, UnboundedDetected) {
  LinearProgram LP;
  LP.addVariable(1.0); // No upper bound.
  LP.addVariable(1.0, 0.0, 1.0);
  LP.addRow({{1, 1.0}}, 1.0); // Constrains only the bounded variable.
  LpSolution S = solveLp(LP);
  EXPECT_EQ(S.Status, LpStatus::Unbounded);
}

TEST(SimplexTest, FractionalCliqueRelaxation) {
  // Triangle with capacity 1 and equal weights: the LP optimum is the
  // fractional point (1/2, 1/2, 1/2) pattern's value, i.e. 3/2 -- the
  // classic integrality gap of the stable-set relaxation on odd cliques
  // when the clique row is missing.  With the clique row present the
  // optimum is exactly 1.
  LinearProgram Pairwise = boxLp(3);
  for (unsigned J = 0; J < 3; ++J)
    Pairwise.Objective[J] = 1.0;
  Pairwise.addRow({{0, 1.0}, {1, 1.0}}, 1.0);
  Pairwise.addRow({{0, 1.0}, {2, 1.0}}, 1.0);
  Pairwise.addRow({{1, 1.0}, {2, 1.0}}, 1.0);
  LpSolution Half = solveLp(Pairwise);
  ASSERT_EQ(Half.Status, LpStatus::Optimal);
  EXPECT_NEAR(Half.Value, 1.5, kTol);

  LinearProgram Clique = boxLp(3);
  for (unsigned J = 0; J < 3; ++J)
    Clique.Objective[J] = 1.0;
  Clique.addRow({{0, 1.0}, {1, 1.0}, {2, 1.0}}, 1.0);
  LpSolution Tight = solveLp(Clique);
  ASSERT_EQ(Tight.Status, LpStatus::Optimal);
  EXPECT_NEAR(Tight.Value, 1.0, kTol);
}

TEST(SimplexTest, NonzeroLowerBoundsShiftCorrectly) {
  // max x + y with 1 <= x <= 3, 2 <= y, x + y <= 6: optimum 6.
  LinearProgram LP;
  LP.addVariable(1.0, 1.0, 3.0);
  LP.addVariable(1.0, 2.0, LinearProgram::kInfinity);
  LP.addRow({{0, 1.0}, {1, 1.0}}, 6.0);
  LpSolution S = solveLp(LP);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Value, 6.0, kTol);
  EXPECT_GE(S.X[0], 1.0 - kTol);
  EXPECT_GE(S.X[1], 2.0 - kTol);
}

TEST(SimplexTest, FixedVariableByEqualBounds) {
  // A variable with Lower == Upper is frozen; the rest optimises around it.
  LinearProgram LP;
  LP.addVariable(10.0, 1.0, 1.0); // Fixed to 1.
  LP.addVariable(1.0, 0.0, 1.0);
  LP.addRow({{0, 1.0}, {1, 1.0}}, 1.0);
  LpSolution S = solveLp(LP);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.X[0], 1.0, kTol);
  EXPECT_NEAR(S.X[1], 0.0, kTol);
  EXPECT_NEAR(S.Value, 10.0, kTol);
}

TEST(SimplexTest, DegenerateTiesTerminate) {
  // Many identical rows force degenerate pivots; the solver must still
  // terminate at the optimum (anti-cycling safeguard).
  LinearProgram LP = boxLp(6);
  for (unsigned J = 0; J < 6; ++J)
    LP.Objective[J] = 1.0;
  for (unsigned R = 0; R < 12; ++R) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned J = 0; J < 6; ++J)
      Terms.push_back({J, 1.0});
    LP.addRow(std::move(Terms), 2.0);
  }
  LpSolution S = solveLp(LP);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Value, 2.0, kTol);
}

TEST(SimplexTest, ZeroCapacityRowPinsEverythingDown) {
  LinearProgram LP = boxLp(3);
  for (unsigned J = 0; J < 3; ++J)
    LP.Objective[J] = 1.0 + J;
  LP.addRow({{0, 1.0}, {1, 1.0}, {2, 1.0}}, 0.0);
  LpSolution S = solveLp(LP);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Value, 0.0, kTol);
}

namespace {
/// Random packing LP: N variables in [0,1], clique-style 0/1 rows.
LinearProgram randomPackingLp(Rng &R, unsigned N, unsigned NumRows,
                              unsigned MaxCap) {
  LinearProgram LP = boxLp(N);
  for (unsigned J = 0; J < N; ++J)
    LP.Objective[J] = static_cast<double>(R.nextInRange(0, 40));
  for (unsigned Row = 0; Row < NumRows; ++Row) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned J = 0; J < N; ++J)
      if (R.nextBool(0.4))
        Terms.push_back({J, 1.0});
    if (Terms.empty())
      continue;
    LP.addRow(std::move(Terms),
              static_cast<double>(1 + R.nextBelow(MaxCap)));
  }
  return LP;
}
} // namespace

class SimplexKktSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexKktSweep, OptimalityConditionsHold) {
  // Property test: every reported optimum satisfies the KKT conditions of
  // the bounded LP -- primal feasibility, dual feasibility, complementary
  // slackness, and strong duality via c.x = y.b + sum max(rc, 0) * upper.
  Rng R(GetParam());
  LinearProgram LP =
      randomPackingLp(R, 6 + static_cast<unsigned>(R.nextBelow(18)),
                      2 + static_cast<unsigned>(R.nextBelow(10)), 4);
  LpSolution S = solveLp(LP);
  ASSERT_EQ(S.Status, LpStatus::Optimal);

  // Primal feasibility.
  for (unsigned J = 0; J < LP.NumVars; ++J) {
    EXPECT_GE(S.X[J], LP.Lower[J] - kTol);
    EXPECT_LE(S.X[J], LP.Upper[J] + kTol);
  }
  for (unsigned Row = 0; Row < LP.Rows.size(); ++Row) {
    double Lhs = 0;
    for (auto [Var, Coeff] : LP.Rows[Row].Terms)
      Lhs += Coeff * S.X[Var];
    EXPECT_LE(Lhs, LP.Rows[Row].Rhs + kTol);

    // Dual feasibility + complementary slackness.
    EXPECT_GE(S.RowDuals[Row], -kTol);
    if (S.RowDuals[Row] > kTol) {
      EXPECT_NEAR(Lhs, LP.Rows[Row].Rhs, 1e-5);
    }
  }

  // Reduced-cost signs: interior variables have ~0 reduced cost, variables
  // at lower have <= 0, variables at upper have >= 0 (maximisation).
  for (unsigned J = 0; J < LP.NumVars; ++J) {
    bool AtLower = S.X[J] <= LP.Lower[J] + kTol;
    bool AtUpper = S.X[J] >= LP.Upper[J] - kTol;
    if (!AtLower && !AtUpper) {
      EXPECT_NEAR(S.ReducedCosts[J], 0.0, 1e-5) << "var " << J;
    } else if (AtLower && !AtUpper) {
      EXPECT_LE(S.ReducedCosts[J], kTol) << "var " << J;
    } else if (AtUpper && !AtLower) {
      EXPECT_GE(S.ReducedCosts[J], -kTol) << "var " << J;
    }
  }

  // Strong duality for the bounded problem.
  double Dual = 0;
  for (unsigned Row = 0; Row < LP.Rows.size(); ++Row)
    Dual += S.RowDuals[Row] * LP.Rows[Row].Rhs;
  for (unsigned J = 0; J < LP.NumVars; ++J)
    Dual += std::max(S.ReducedCosts[J], 0.0) * LP.Upper[J];
  EXPECT_NEAR(S.Value, Dual, 1e-4 * (1.0 + std::abs(S.Value)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexKktSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(SimplexTest, IntervalLpIsIntegralAndMatchesFlowSolver) {
  // Interval clique matrices have the consecutive-ones property, so the
  // packing LP is integral: the simplex value must equal the exact
  // min-cost-flow interval allocator on the same instance.
  Rng R(909);
  for (int Round = 0; Round < 25; ++Round) {
    unsigned N = 4 + static_cast<unsigned>(R.nextBelow(20));
    std::vector<LiveInterval> Intervals(N);
    for (unsigned I = 0; I < N; ++I) {
      Intervals[I].V = I;
      Intervals[I].Start = static_cast<unsigned>(R.nextBelow(30));
      Intervals[I].End =
          Intervals[I].Start + static_cast<unsigned>(R.nextBelow(10));
      Intervals[I].Cost = static_cast<Weight>(R.nextInRange(1, 30));
    }
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(4));

    std::vector<char> Keep = selectIntervalsOptimal(Intervals, Regs);
    Weight FlowValue = 0;
    for (unsigned I = 0; I < N; ++I)
      if (Keep[I])
        FlowValue += Intervals[I].Cost;

    LinearProgram LP = boxLp(N);
    for (unsigned I = 0; I < N; ++I)
      LP.Objective[I] = static_cast<double>(Intervals[I].Cost);
    for (unsigned Point = 0; Point < 40; ++Point) {
      std::vector<std::pair<unsigned, double>> Terms;
      for (unsigned I = 0; I < N; ++I)
        if (Intervals[I].Start <= Point && Point <= Intervals[I].End)
          Terms.push_back({I, 1.0});
      if (Terms.size() > Regs)
        LP.addRow(std::move(Terms), static_cast<double>(Regs));
    }
    LpSolution S = solveLp(LP);
    ASSERT_EQ(S.Status, LpStatus::Optimal);
    EXPECT_NEAR(S.Value, static_cast<double>(FlowValue), 1e-5)
        << "round " << Round;
  }
}
