//===- tests/lp/IlpTest.cpp - Exact packing ILP solver tests --------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "lp/Ilp.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

/// Exhaustive reference solver for instances with <= 20 variables.
Weight bruteForcePacking(const IlpInstance &I) {
  unsigned N = I.numVars();
  Weight Best = 0;
  for (uint64_t Mask = 0; Mask < (uint64_t(1) << N); ++Mask) {
    bool Feasible = true;
    for (const IlpConstraint &K : I.Constraints) {
      unsigned Used = 0;
      for (unsigned V : K.Vars)
        Used += (Mask >> V) & 1;
      if (Used > K.Capacity) {
        Feasible = false;
        break;
      }
    }
    if (!Feasible)
      continue;
    Weight Value = 0;
    for (unsigned V = 0; V < N; ++V)
      if ((Mask >> V) & 1)
        Value += I.Weights[V];
    Best = std::max(Best, Value);
  }
  return Best;
}

bool isFeasible(const IlpInstance &I, const std::vector<char> &X) {
  for (const IlpConstraint &K : I.Constraints) {
    unsigned Used = 0;
    for (unsigned V : K.Vars)
      Used += X[V] ? 1 : 0;
    if (Used > K.Capacity)
      return false;
  }
  return true;
}

IlpInstance randomInstance(Rng &R, unsigned N, unsigned NumRows,
                           unsigned MaxCap) {
  IlpInstance I;
  I.Weights.resize(N);
  for (Weight &W : I.Weights)
    W = R.nextInRange(0, 30);
  for (unsigned Row = 0; Row < NumRows; ++Row) {
    IlpConstraint K;
    for (unsigned V = 0; V < N; ++V)
      if (R.nextBool(0.45))
        K.Vars.push_back(V);
    if (K.Vars.empty())
      continue;
    K.Capacity = static_cast<unsigned>(R.nextBelow(MaxCap + 1));
    I.Constraints.push_back(std::move(K));
  }
  return I;
}

} // namespace

TEST(IlpTest, EmptyInstance) {
  IlpInstance I;
  IlpResult Result = solveBinaryPackingBudgeted(I);
  EXPECT_TRUE(Result.Proven);
  EXPECT_EQ(Result.Value, 0);
}

TEST(IlpTest, NoConstraintsTakesEverything) {
  IlpInstance I;
  I.Weights = {5, 0, 7, 3};
  IlpResult Result = solveBinaryPackingBudgeted(I);
  EXPECT_TRUE(Result.Proven);
  EXPECT_EQ(Result.Value, 15);
  EXPECT_TRUE(Result.X[0] && Result.X[2] && Result.X[3]);
}

TEST(IlpTest, SingleCliquePicksHeaviest) {
  // One clique of capacity 2 over four variables: the two heaviest win.
  IlpInstance I;
  I.Weights = {4, 9, 1, 6};
  I.Constraints.push_back({{0, 1, 2, 3}, 2});
  IlpResult Result = solveBinaryPackingBudgeted(I);
  EXPECT_TRUE(Result.Proven);
  EXPECT_EQ(Result.Value, 15);
  EXPECT_TRUE(Result.X[1] && Result.X[3]);
}

TEST(IlpTest, ZeroCapacityForcesAllOut) {
  IlpInstance I;
  I.Weights = {3, 8};
  I.Constraints.push_back({{0, 1}, 0});
  IlpResult Result = solveBinaryPackingBudgeted(I);
  EXPECT_TRUE(Result.Proven);
  EXPECT_EQ(Result.Value, 0);
  EXPECT_FALSE(Result.X[0] || Result.X[1]);
}

TEST(IlpTest, FractionalLpNeedsBranching) {
  // Odd-cycle pairwise constraints with capacity 1 and weight 3: the LP
  // relaxation is half-integral with value 15/2, whose floor (7) exceeds
  // the ILP optimum (6) -- the root bound cannot close this, so the solver
  // must genuinely branch to prove optimality.
  IlpInstance I;
  I.Weights = {3, 3, 3, 3, 3};
  for (unsigned V = 0; V < 5; ++V)
    I.Constraints.push_back({{V, (V + 1) % 5}, 1});
  IlpResult Result = solveBinaryPackingBudgeted(I);
  EXPECT_TRUE(Result.Proven);
  EXPECT_EQ(Result.Value, 6);
  EXPECT_GT(Result.Nodes, 1u) << "expected actual branching on C5";
}

TEST(IlpTest, WarmStartNeverDegrades) {
  Rng R(42);
  for (int Round = 0; Round < 20; ++Round) {
    IlpInstance I = randomInstance(R, 12, 6, 3);
    // Greedy warm start: heaviest-first.
    std::vector<unsigned> Order(12);
    for (unsigned V = 0; V < 12; ++V)
      Order[V] = V;
    std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
      return I.Weights[A] > I.Weights[B];
    });
    std::vector<char> Warm(12, 0);
    Weight WarmValue = 0;
    for (unsigned V : Order) {
      Warm[V] = 1;
      if (isFeasible(I, Warm)) {
        WarmValue += I.Weights[V];
      } else {
        Warm[V] = 0;
      }
    }
    IlpResult Result = solveBinaryPackingBudgeted(I, &Warm);
    EXPECT_TRUE(Result.Proven);
    EXPECT_GE(Result.Value, WarmValue);
    EXPECT_TRUE(isFeasible(I, Result.X));
  }
}

TEST(IlpTest, ZeroBudgetKeepsWarmStartUnproven) {
  IlpInstance I;
  I.Weights = {4, 9, 1, 6};
  I.Constraints.push_back({{0, 1, 2, 3}, 2});
  std::vector<char> Warm = {1, 0, 1, 0}; // Feasible, value 5, suboptimal.
  uint64_t Budget = 0;
  IlpResult Result = solveBinaryPacking(I, &Warm, Budget);
  EXPECT_FALSE(Result.Proven);
  EXPECT_EQ(Result.Value, 5);
  EXPECT_TRUE(isFeasible(I, Result.X));
}

TEST(IlpTest, SharedBudgetIsDecremented) {
  IlpInstance I;
  I.Weights = {4, 9, 1, 6};
  I.Constraints.push_back({{0, 1, 2, 3}, 2});
  uint64_t Budget = 1000;
  IlpResult Result = solveBinaryPacking(I, nullptr, Budget);
  EXPECT_TRUE(Result.Proven);
  EXPECT_LT(Budget, 1000u);
  EXPECT_EQ(1000 - Budget, Result.Nodes);
}

class IlpBruteForceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IlpBruteForceSweep, MatchesExhaustiveSearch) {
  Rng R(GetParam());
  for (int Round = 0; Round < 25; ++Round) {
    unsigned N = 4 + static_cast<unsigned>(R.nextBelow(11));
    unsigned Rows = 2 + static_cast<unsigned>(R.nextBelow(7));
    unsigned MaxCap = 1 + static_cast<unsigned>(R.nextBelow(4));
    IlpInstance I = randomInstance(R, N, Rows, MaxCap);
    IlpResult Result = solveBinaryPackingBudgeted(I);
    ASSERT_TRUE(Result.Proven) << "seed " << GetParam() << " round " << Round;
    EXPECT_TRUE(isFeasible(I, Result.X));
    EXPECT_EQ(Result.Value, bruteForcePacking(I))
        << "seed " << GetParam() << " round " << Round;
    // The reported value must match the reported selection.
    Weight Recount = 0;
    for (unsigned V = 0; V < N; ++V)
      if (Result.X[V])
        Recount += I.Weights[V];
    EXPECT_EQ(Recount, Result.Value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpBruteForceSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(IlpTest, DisjointComponentsDecompose) {
  // Eight disjoint weighted C5s: joint branching would be exponential, the
  // presolve decomposition solves them in a linear number of nodes.  The
  // optimum is 2 heaviest-compatible picks per cycle.
  IlpInstance I;
  unsigned Cycles = 8;
  I.Weights.assign(5 * Cycles, 3);
  for (unsigned C = 0; C < Cycles; ++C)
    for (unsigned V = 0; V < 5; ++V)
      I.Constraints.push_back({{5 * C + V, 5 * C + (V + 1) % 5}, 1});
  uint64_t Budget = 10'000;
  IlpResult Result = solveBinaryPacking(I, nullptr, Budget);
  EXPECT_TRUE(Result.Proven);
  EXPECT_EQ(Result.Value, 6 * static_cast<Weight>(Cycles));
  EXPECT_TRUE(isFeasible(I, Result.X));
  EXPECT_LT(Result.Nodes, 20u * Cycles) << "decomposition failed to kick in";
}

TEST(IlpTest, UnconstrainedVariablesSurviveDecomposition) {
  // Variables outside every constraint must be selected even when the
  // constrained part decomposes into components.
  IlpInstance I;
  I.Weights = {7, 1, 2, 9, 4};
  I.Constraints.push_back({{1, 2}, 1}); // One component: {1,2}.
  I.Constraints.push_back({{3, 4}, 1}); // Another: {3,4}.
  IlpResult Result = solveBinaryPackingBudgeted(I);
  EXPECT_TRUE(Result.Proven);
  EXPECT_TRUE(Result.X[0]);
  EXPECT_EQ(Result.Value, 7 + 2 + 9);
}

TEST(IlpTest, LargeNearIntegralInstanceSolvesAtRoot) {
  // Clique rows from a sliding window mimic SSA-style instances: the LP is
  // near-integral, so the warm-started search should stay tiny.
  Rng R(7);
  unsigned N = 220;
  IlpInstance I;
  I.Weights.resize(N);
  for (Weight &W : I.Weights)
    W = R.nextInRange(1, 1000);
  for (unsigned Start = 0; Start + 16 <= N; Start += 3) {
    IlpConstraint K;
    for (unsigned V = Start; V < Start + 16; ++V)
      K.Vars.push_back(V);
    K.Capacity = 6;
    I.Constraints.push_back(std::move(K));
  }
  uint64_t Budget = 100'000;
  IlpResult Result = solveBinaryPacking(I, nullptr, Budget);
  EXPECT_TRUE(Result.Proven);
  EXPECT_TRUE(isFeasible(I, Result.X));
  EXPECT_LT(Result.Nodes, 2000u);
}
