//===- tests/service/ServerLoopbackTest.cpp - Server e2e tests ------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the allocation server over loopback transports
/// (Unix-domain and TCP), including the acceptance criterion of the
/// service subsystem: with >= 4 concurrent clients, every response is
/// byte-identical to a direct BatchDriver solve of the same jobs, cache
/// hit counters increase strictly across repeated requests, and server
/// memory stays bounded by the configured cache capacity.
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "driver/BatchDriver.h"
#include "driver/ReportIO.h"
#include "ir/Parser.h"
#include "service/Client.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace layra;

namespace {

/// Server-side pool width; reference drivers must match so the reports'
/// "threads" field agrees.
constexpr unsigned kServerThreads = 2;

/// A scratch directory for Unix socket paths (socket paths have a ~108
/// byte limit, so /tmp rather than a deep build tree).
struct TempDir {
  std::string Path;
  TempDir() {
    char Template[] = "/tmp/layra-serve-test-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : "";
  }
  ~TempDir() {
    if (!Path.empty())
      ::rmdir(Path.c_str()); // Sockets inside are unlinked by the server.
  }
  std::string socketPath(const std::string &Name) const {
    return Path + "/" + Name;
  }
};

/// An allocate request over \p Regs of the lao-kernels suite (the
/// smallest real suite: 12 tiny kernels).
ServiceRequest allocateRequest(std::vector<unsigned> Regs,
                               bool Details = false) {
  ServiceRequest Req;
  Req.K = ServiceRequest::Kind::Allocate;
  Req.Suites = {"lao-kernels"};
  Req.Regs = std::move(Regs);
  Req.Details = Details;
  return Req;
}

/// What a direct, fresh BatchDriver run of \p Req serializes: the byte
/// string every server response must equal.
std::string directReport(const ServiceRequest &Req) {
  std::vector<BatchJob> Jobs;
  const TargetDesc *Target = targetByName(Req.TargetName);
  EXPECT_NE(Target, nullptr) << Req.TargetName;
  for (const std::string &Name : Req.Suites)
    for (unsigned Regs : Req.Regs) {
      BatchJob Job;
      Job.SuiteName = Name;
      Job.Target = *Target;
      Job.NumRegisters = Regs;
      Job.ClassRegs = Req.ClassRegs;
      Job.Options = Req.Options;
      Jobs.push_back(Job);
    }
  BatchDriver Driver(kServerThreads);
  DriverReport Report = Driver.run(Jobs);
  return driverReportToJson(Report, Req.Timing, Req.Details).dump(2) + "\n";
}

/// Asserts that a connection the server tore down reads as "gone".
/// docs/PROTOCOL.md ("Framing-error teardown"): after a framing-level
/// violation the server answers once and closes; when bytes beyond the
/// rejected header are still unread at close time -- or the teardown
/// races the client's read under load -- the kernel reports ECONNRESET
/// (FrameStatus::IoError) rather than a clean FIN (FrameStatus::Eof).
/// Both spellings are the documented contract; anything else (a stray
/// extra frame, a half-read header) is a real failure.
void expectConnectionGone(int Fd) {
  std::string Payload;
  FrameStatus After = readFrame(Fd, Payload);
  EXPECT_TRUE(After == FrameStatus::Eof || After == FrameStatus::IoError)
      << frameStatusName(After);
}

uint64_t statsCacheHits(Client &Conn) {
  std::string Payload, Error;
  EXPECT_TRUE(Conn.stats(Payload, &Error)) << Error;
  JsonParseResult Parsed = parseJson(Payload);
  EXPECT_TRUE(Parsed.Ok) << Parsed.Error;
  const JsonValue *Cache = Parsed.Value.find("cache");
  EXPECT_NE(Cache, nullptr);
  return Cache && Cache->find("hits")
             ? static_cast<uint64_t>(Cache->find("hits")->intValue())
             : 0;
}

} // namespace

TEST(ServerLoopbackTest, PingOverUnixAndTcp) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("ping.sock");
  Opt.EnableTcp = true; // Ephemeral port.
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  ASSERT_NE(S.tcpPort(), 0);

  Client Unix = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Unix.valid()) << Error;
  EXPECT_TRUE(Unix.ping(&Error)) << Error;

  Client Tcp = Client::connectToTcp("127.0.0.1", S.tcpPort(), &Error);
  ASSERT_TRUE(Tcp.valid()) << Error;
  EXPECT_TRUE(Tcp.ping(&Error)) << Error;

  // connectToSpec spellings reach the same server.
  Client Spec = Client::connectToSpec(
      "tcp:127.0.0.1:" + std::to_string(S.tcpPort()), &Error);
  ASSERT_TRUE(Spec.valid()) << Error;
  EXPECT_TRUE(Spec.ping(&Error)) << Error;

  S.requestStop();
  S.wait();
  EXPECT_FALSE(S.running());
  // The socket file is gone after a drain.
  struct stat Sb;
  EXPECT_NE(::stat(Opt.UnixPath.c_str(), &Sb), 0);
}

TEST(ServerLoopbackTest, ResponsesMatchDirectDriverRunByteForByte) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("direct.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  // With and without per-task details; repeated to cover the warm cache.
  for (bool Details : {false, true}) {
    ServiceRequest Req = allocateRequest({4, 6}, Details);
    std::string Expected = directReport(Req);
    for (int Round = 0; Round < 3; ++Round) {
      std::string Response;
      ASSERT_TRUE(
          Conn.call(Client::makeAllocateRequest(Req), Response, &Error))
          << Error;
      EXPECT_EQ(Response, Expected) << "details=" << Details
                                    << " round=" << Round;
    }
  }
}

TEST(ServerLoopbackTest, MultiClassAllocateCarriesPerClassBudgets) {
  // Register-class acceptance path: an allocate request against a
  // multi-class target with "class_regs" budget overrides runs end-to-end
  // and stays byte-identical to a direct driver run of the same jobs;
  // squeezing the second class's file visibly changes the report.
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("classes.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  ServiceRequest Req;
  Req.K = ServiceRequest::Kind::Allocate;
  Req.Suites = {"mixed-classes"};
  Req.TargetName = "armv7-vfp";
  Req.Regs = {4};
  Req.ClassRegs = {{"vfp", 2}};

  std::string Squeezed;
  ASSERT_TRUE(Conn.call(Client::makeAllocateRequest(Req), Squeezed, &Error))
      << Error;
  EXPECT_FALSE(Client::isErrorResponse(Squeezed));
  EXPECT_EQ(Squeezed, directReport(Req));
  // The report carries the resolved per-class budgets.
  EXPECT_NE(Squeezed.find("\"class_regs\""), std::string::npos);
  EXPECT_NE(Squeezed.find("\"vfp\": 2"), std::string::npos);

  // A roomy second file must produce a different (cheaper) report.
  Req.ClassRegs = {{"vfp", 32}};
  std::string Roomy;
  ASSERT_TRUE(Conn.call(Client::makeAllocateRequest(Req), Roomy, &Error))
      << Error;
  EXPECT_FALSE(Client::isErrorResponse(Roomy));
  EXPECT_EQ(Roomy, directReport(Req));
  EXPECT_NE(Roomy, Squeezed);

  // Semantic validation: a class the target does not have is a request
  // error, as is a multi-class suite on a single-class target.
  Req.ClassRegs = {{"mmx", 4}};
  std::string Rejected;
  ASSERT_TRUE(Conn.call(Client::makeAllocateRequest(Req), Rejected, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Rejected));

  Req.ClassRegs.clear();
  Req.TargetName = "st231";
  ASSERT_TRUE(Conn.call(Client::makeAllocateRequest(Req), Rejected, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Rejected));
}

TEST(ServerLoopbackTest, FourConcurrentClientsSeeIdenticalDeterministicBytes) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("concurrent.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  // Four clients, each hammering its own register count; every reply must
  // equal the direct-driver bytes for that request, no matter how the four
  // streams interleave in the shared queue/cache.
  constexpr unsigned kClients = 4;
  constexpr unsigned kRounds = 4;
  std::vector<ServiceRequest> Requests;
  std::vector<std::string> Expected;
  for (unsigned C = 0; C < kClients; ++C) {
    Requests.push_back(allocateRequest({3 + C}, /*Details=*/true));
    Expected.push_back(directReport(Requests.back()));
  }

  std::vector<std::string> Failures(kClients);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < kClients; ++C)
    Threads.emplace_back([&, C] {
      std::string ClientError;
      Client Conn = Client::connectToUnix(Opt.UnixPath, &ClientError);
      if (!Conn.valid()) {
        Failures[C] = "connect: " + ClientError;
        return;
      }
      std::string Request = Client::makeAllocateRequest(Requests[C]);
      std::string Response;
      for (unsigned Round = 0; Round < kRounds; ++Round) {
        if (!Conn.call(Request, Response, &ClientError)) {
          Failures[C] = "call: " + ClientError;
          return;
        }
        if (Response != Expected[C]) {
          Failures[C] = "response bytes diverged on round " +
                        std::to_string(Round);
          return;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (unsigned C = 0; C < kClients; ++C)
    EXPECT_TRUE(Failures[C].empty()) << "client " << C << ": " << Failures[C];

  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.RequestsAllocate, kClients * kRounds);
  EXPECT_EQ(Stats.RequestsFailed, 0u);
}

TEST(ServerLoopbackTest, CacheHitCountersIncreaseStrictlyAcrossRepeats) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("hits.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;
  std::string Request =
      Client::makeAllocateRequest(allocateRequest({4, 5}));
  std::string Response;

  uint64_t Previous = statsCacheHits(Conn);
  for (int Round = 0; Round < 3; ++Round) {
    ASSERT_TRUE(Conn.call(Request, Response, &Error)) << Error;
    uint64_t Hits = statsCacheHits(Conn);
    // Round 0 may or may not hit (duplicate functions within the suite);
    // every later round repeats known instances, so hits must strictly
    // grow.
    if (Round > 0) {
      EXPECT_GT(Hits, Previous) << "round " << Round;
    }
    Previous = Hits;
  }
}

TEST(ServerLoopbackTest, MemoryStaysBoundedByCacheCapacity) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("bounded.sock");
  Opt.Threads = kServerThreads;
  Opt.CacheCapacity = 8; // 12 kernels per request: must evict.
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;
  std::string Response;
  // Distinct register counts = distinct instances; far more than capacity.
  for (unsigned Regs = 2; Regs <= 7; ++Regs) {
    ServiceRequest Req = allocateRequest({Regs});
    ASSERT_TRUE(
        Conn.call(Client::makeAllocateRequest(Req), Response, &Error))
        << Error;
    // Responses stay correct (identical to a fresh unbounded driver) even
    // while the bounded cache is churning.
    EXPECT_EQ(Response, directReport(Req)) << "regs=" << Regs;
  }

  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.CacheCapacity, 8u);
  EXPECT_LE(Stats.CacheEntries, 8u);
  EXPECT_GT(Stats.CacheEvictions, 0u);
}

TEST(ServerLoopbackTest, SubmitIrMatchesDirectDriverAndRejectsBadIr) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("ir.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  const char *Ir = "function pressure {\n"
                   "entry:  ; depth=0 freq=1\n"
                   "  %a = op\n"
                   "  %b = op\n"
                   "  %c = op\n"
                   "  %d = op %a, %b\n"
                   "  %e = op %c, %d\n"
                   "  ret %a, %b, %c, %d, %e\n"
                   "}\n";
  ServiceRequest Req;
  Req.K = ServiceRequest::Kind::SubmitIr;
  Req.IrText = Ir;
  Req.Regs = {2, 3};
  Req.Details = true;

  std::string Response;
  ASSERT_TRUE(
      Conn.call(Client::makeSubmitIrRequest(Req), Response, &Error))
      << Error;

  // Reference: a direct driver run over the exact suite shape the server
  // builds for a submission (suite "submitted", program = function name).
  ParsedFunction Parsed = parseFunction(Ir);
  ASSERT_TRUE(Parsed.Ok) << Parsed.Error;
  Suite Sub;
  Sub.Name = "submitted";
  SuiteProgram Prog;
  Prog.Name = Parsed.F.name();
  Prog.Functions.push_back(std::move(Parsed.F));
  Sub.Programs.push_back(std::move(Prog));
  std::vector<BatchJob> Jobs;
  for (unsigned Regs : Req.Regs) {
    BatchJob Job;
    Job.SuiteName = Sub.Name;
    Job.SuiteData = &Sub;
    Job.NumRegisters = Regs;
    Jobs.push_back(Job);
  }
  BatchDriver Driver(kServerThreads);
  std::string Expected =
      driverReportToJson(Driver.run(Jobs), /*IncludeTiming=*/false,
                         /*IncludeTasks=*/true)
          .dump(2) +
      "\n";
  EXPECT_EQ(Response, Expected);

  // Unparseable IR and non-SSA IR produce error responses, not a dead
  // server.
  Req.IrText = "function broken {";
  ASSERT_TRUE(
      Conn.call(Client::makeSubmitIrRequest(Req), Response, &Error))
      << Error;
  EXPECT_NE(Response.find("layra-serve-error/v1"), std::string::npos);
  EXPECT_NE(Response.find("ir parse error"), std::string::npos);

  Req.IrText = "function notssa {\n"
               "entry:  ; depth=0 freq=1\n"
               "  %a = op\n"
               "  %a = op\n"
               "  ret %a\n"
               "}\n";
  ASSERT_TRUE(
      Conn.call(Client::makeSubmitIrRequest(Req), Response, &Error))
      << Error;
  EXPECT_NE(Response.find("layra-serve-error/v1"), std::string::npos);

  // The connection still serves good requests afterwards.
  EXPECT_TRUE(Conn.ping(&Error)) << Error;
}

TEST(ServerLoopbackTest, SubmitIrDeltaWarmStartMatchesFreshSolveByteForByte) {
  // The JIT resubmission path end to end, across shards: a plain submit
  // registers a base on its home shard, a "base"-carrying resubmission
  // warm-starts from it (counted in delta.hits), and the response bytes
  // equal what a FRESH server answers for the same edited IR submitted
  // from scratch.  (Resubmitting to the same server would trivially pass
  // via the outcome cache; the fresh server is the honest reference.)
  const char *BaseIr = "function jitted {\n"
                       "entry:  ; depth=0 freq=1\n"
                       "  %a = op\n"
                       "  %b = op\n"
                       "  br %b\n"
                       "  ; succs=loop\n"
                       "loop:  ; depth=1 freq=10 preds=entry,loop\n"
                       "  %p = phi %a, %q\n"
                       "  %q = op %p, %b\n"
                       "  br %q\n"
                       "  ; succs=loop,exit\n"
                       "exit:  ; depth=0 freq=1 preds=loop\n"
                       "  ret %p, %q\n"
                       "}\n";
  // Profile drift: the loop got hotter.  Structure is unchanged.
  std::string EditedIr = BaseIr;
  size_t Freq = EditedIr.find("freq=10");
  ASSERT_NE(Freq, std::string::npos);
  EditedIr.replace(Freq, 7, "freq=90");

  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("delta.sock");
  Opt.Threads = kServerThreads;
  Opt.Shards = 4; // Base and delta must co-reside on one shard.
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  ServiceRequest Req;
  Req.K = ServiceRequest::Kind::SubmitIr;
  Req.IrText = BaseIr;
  Req.Regs = {3};
  Req.Details = true;
  std::string Response;
  ASSERT_TRUE(Conn.call(Client::makeSubmitIrRequest(Req), Response, &Error))
      << Error;
  EXPECT_FALSE(Client::isErrorResponse(Response));
  EXPECT_EQ(S.stats().DeltaBases, 1u);

  Req.IrText = EditedIr;
  Req.Base = formatBaseKey(submitIrBaseKey(BaseIr));
  std::string DeltaResponse;
  ASSERT_TRUE(
      Conn.call(Client::makeSubmitIrRequest(Req), DeltaResponse, &Error))
      << Error;
  EXPECT_FALSE(Client::isErrorResponse(DeltaResponse));
  EXPECT_EQ(S.stats().DeltaHits, 1u);
  EXPECT_EQ(S.stats().DeltaFallbacks, 0u);

  // Reference: the same edited IR, submitted plain to a fresh server.
  ServerOptions FreshOpt;
  FreshOpt.UnixPath = Dir.socketPath("delta-fresh.sock");
  FreshOpt.Threads = kServerThreads;
  FreshOpt.Shards = 4;
  Server Fresh(FreshOpt);
  ASSERT_TRUE(Fresh.start(&Error)) << Error;
  Client FreshConn = Client::connectToUnix(FreshOpt.UnixPath, &Error);
  ASSERT_TRUE(FreshConn.valid()) << Error;
  ServiceRequest FreshReq = Req;
  FreshReq.Base.clear();
  FreshReq.BaseKey = 0;
  std::string FreshResponse;
  ASSERT_TRUE(Conn.valid());
  ASSERT_TRUE(FreshConn.call(Client::makeSubmitIrRequest(FreshReq),
                             FreshResponse, &Error))
      << Error;
  EXPECT_EQ(DeltaResponse, FreshResponse);

  // A structural edit under the same base falls back to a full solve --
  // counted, answered, byte-equal to a fresh solve.
  std::string Structural = EditedIr;
  size_t Ret = Structural.find("  ret %p, %q");
  ASSERT_NE(Ret, std::string::npos);
  Structural.insert(Ret, "  %r = op %q\n");
  Structural.replace(Structural.find("ret %p, %q"), 10, "ret %p, %r");
  Req.IrText = Structural;
  ASSERT_TRUE(
      Conn.call(Client::makeSubmitIrRequest(Req), DeltaResponse, &Error))
      << Error;
  EXPECT_FALSE(Client::isErrorResponse(DeltaResponse));
  EXPECT_EQ(S.stats().DeltaFallbacks, 1u);
  FreshReq.IrText = Structural;
  ASSERT_TRUE(FreshConn.call(Client::makeSubmitIrRequest(FreshReq),
                             FreshResponse, &Error))
      << Error;
  EXPECT_EQ(DeltaResponse, FreshResponse);

  // An unregistered base is a request error, not a silent full solve.
  Req.Base = formatBaseKey(0xdeadbeefdeadbeefULL);
  ASSERT_TRUE(
      Conn.call(Client::makeSubmitIrRequest(Req), Response, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Response));
  EXPECT_NE(Response.find("base not found"), std::string::npos);
  // ...and a malformed base key is rejected at parse time.
  Req.Base = "not-a-key";
  ASSERT_TRUE(
      Conn.call(Client::makeSubmitIrRequest(Req), Response, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Response));

  // The v4 stats surface carries the delta counters.
  std::string Payload;
  ASSERT_TRUE(Conn.stats(Payload, &Error)) << Error;
  EXPECT_NE(Payload.find("layra-serve-stats/v4"), std::string::npos);
  EXPECT_NE(Payload.find("\"delta\""), std::string::npos);
  EXPECT_NE(Payload.find("\"fallbacks\""), std::string::npos);
  EXPECT_NE(Payload.find("\"touch_failures\""), std::string::npos);
}

TEST(ServerLoopbackTest, MalformedTrafficGetsErrorsWithoutKillingServer) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("garbage.sock");
  Opt.Threads = kServerThreads;
  Opt.MaxFrameBytes = 4096;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  // Bad JSON in a well-formed frame: error response, connection survives.
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;
  std::string Response;
  ASSERT_TRUE(Conn.call("this is not json", Response, &Error)) << Error;
  EXPECT_NE(Response.find("layra-serve-error/v1"), std::string::npos);
  ASSERT_TRUE(Conn.call("{\"type\":\"warp\"}", Response, &Error)) << Error;
  EXPECT_NE(Response.find("unknown request type"), std::string::npos);
  EXPECT_TRUE(Conn.ping(&Error)) << Error;

  // Unknown suite / allocator / target: semantic errors, same contract.
  for (const char *Bad :
       {"{\"type\":\"allocate\",\"suite\":\"no-such\",\"regs\":4}",
        "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
        "\"options\":{\"allocator\":\"alchemy\"}}",
        "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
        "\"target\":\"z80\"}"}) {
    ASSERT_TRUE(Conn.call(Bad, Response, &Error)) << Error;
    EXPECT_NE(Response.find("layra-serve-error/v1"), std::string::npos)
        << Bad;
  }

  // Garbage bytes where a frame header belongs: one protocol-error
  // response, then the server closes that connection -- and only that one.
  SocketFd Raw = connectUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Raw.valid()) << Error;
  ASSERT_TRUE(sendAll(Raw.fd(), "GET / HTTP/1.1\r\n\r\n", 18));
  std::string Payload;
  ASSERT_EQ(readFrame(Raw.fd(), Payload), FrameStatus::Ok);
  EXPECT_NE(Payload.find("bad frame magic"), std::string::npos);
  expectConnectionGone(Raw.fd());

  // An oversized length claim: same pattern.
  SocketFd Big = connectUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Big.valid()) << Error;
  std::string Huge = "LYRA";
  Huge += static_cast<char>(0x7F);
  Huge.append(3, '\0');
  ASSERT_TRUE(sendAll(Big.fd(), Huge.data(), Huge.size()));
  ASSERT_EQ(readFrame(Big.fd(), Payload), FrameStatus::Ok);
  EXPECT_NE(Payload.find("oversized frame"), std::string::npos);
  expectConnectionGone(Big.fd());

  // A peer that vanishes mid-frame must not wedge anything.
  SocketFd Trunc = connectUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Trunc.valid()) << Error;
  std::string Partial = encodeFrame("{\"type\":\"ping\"}");
  Partial.resize(Partial.size() - 3);
  ASSERT_TRUE(sendAll(Trunc.fd(), Partial.data(), Partial.size()));
  Trunc.reset();

  // The original connection is still healthy through all of it.
  EXPECT_TRUE(Conn.ping(&Error)) << Error;
  ServerStats Stats = S.stats();
  EXPECT_GT(Stats.RequestsFailed, 0u);
}

TEST(ServerLoopbackTest, UnixListenerRefusesToClobberFilesOrLiveServers) {
  TempDir Dir;
  std::string Error;

  // A regular file at the socket path must survive a bind attempt.
  std::string FilePath = Dir.socketPath("precious.txt");
  {
    std::FILE *F = std::fopen(FilePath.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs("data", F);
    std::fclose(F);
  }
  EXPECT_FALSE(listenUnix(FilePath, &Error).valid());
  struct stat Sb;
  ASSERT_EQ(::stat(FilePath.c_str(), &Sb), 0);
  EXPECT_TRUE(S_ISREG(Sb.st_mode));
  ::unlink(FilePath.c_str());

  // A live server's socket must not be hijacked by a second listener...
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("live.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  ASSERT_TRUE(S.start(&Error)) << Error;
  EXPECT_FALSE(listenUnix(Opt.UnixPath, &Error).valid());
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;
  EXPECT_TRUE(Conn.ping(&Error)) << Error;
  S.requestStop();
  S.wait();

  // ...but a stale socket left by a dead server is replaced.
  std::string StalePath = Dir.socketPath("stale.sock");
  { SocketFd Dead = listenUnix(StalePath, &Error); }
  // The listener fd is closed but the file remains; binding again works.
  SocketFd Fresh = listenUnix(StalePath, &Error);
  EXPECT_TRUE(Fresh.valid()) << Error;
  ::unlink(StalePath.c_str());
}

TEST(ServerLoopbackTest, PipelinedRequestsAreAnsweredInOrder) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("pipeline.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  // Raw socket: send a slow allocate, a malformed request, and a ping
  // back-to-back before reading anything.  Responses must come back in
  // request order -- the parse error must not overtake the allocate
  // response.
  SocketFd Raw = connectUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Raw.valid()) << Error;
  ServiceRequest Slow = allocateRequest({4});
  ASSERT_TRUE(
      writeFrame(Raw.fd(), Client::makeAllocateRequest(Slow)));
  ASSERT_TRUE(writeFrame(Raw.fd(), "definitely not json"));
  ASSERT_TRUE(writeFrame(Raw.fd(), "{\"type\":\"ping\"}"));

  std::string Payload;
  ASSERT_EQ(readFrame(Raw.fd(), Payload), FrameStatus::Ok);
  EXPECT_EQ(Payload, directReport(Slow));
  ASSERT_EQ(readFrame(Raw.fd(), Payload), FrameStatus::Ok);
  EXPECT_NE(Payload.find("layra-serve-error/v1"), std::string::npos);
  ASSERT_EQ(readFrame(Raw.fd(), Payload), FrameStatus::Ok);
  EXPECT_NE(Payload.find("layra-serve-pong/v1"), std::string::npos);
}

TEST(ServerLoopbackTest, TracedResponsesDifferOnlyByTheTraceMember) {
  // Measure-never-steer at the protocol level: asking for a trace adds
  // exactly one trailing "trace" member; every other byte of the report
  // -- and the report of a direct driver run -- is unchanged.
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("traced.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  ServiceRequest Req = allocateRequest({4, 5}, /*Details=*/true);
  std::string Untraced;
  ASSERT_TRUE(
      Conn.call(Client::makeAllocateRequest(Req), Untraced, &Error))
      << Error;
  EXPECT_EQ(Untraced, directReport(Req));

  ServiceRequest TracedReq = Req;
  TracedReq.Trace = true;
  TracedReq.TraceId = "identity-check";
  std::string Traced;
  ASSERT_TRUE(
      Conn.call(Client::makeAllocateRequest(TracedReq), Traced, &Error))
      << Error;
  ASSERT_FALSE(Client::isErrorResponse(Traced));
  EXPECT_NE(Traced, Untraced);

  // Rebuild the traced response without its "trace" member, preserving
  // member order; the bytes must equal the untraced response exactly.
  JsonParseResult Parsed = parseJson(Traced);
  ASSERT_TRUE(Parsed.Ok) << Parsed.Error;
  ASSERT_NE(Parsed.Value.find("trace"), nullptr);
  JsonValue Stripped = JsonValue::object();
  for (const auto &Member : Parsed.Value.members())
    if (Member.first != "trace")
      Stripped.append(Member.first, Member.second);
  EXPECT_EQ(Stripped.dump(2) + "\n", Untraced);

  // And the trace member is the last one: appended, never interleaved.
  EXPECT_EQ(Parsed.Value.members().back().first, "trace");
}

TEST(ServerLoopbackTest, ShardedResponsesAreByteIdenticalToDirectRun) {
  // Cross-shard byte-equality: with four shards, whichever one a request
  // hashes to, the response equals a direct fresh driver run -- and the
  // stats v3 shards array accounts for every request exactly once.
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("sharded.sock");
  Opt.Threads = kServerThreads;
  Opt.Shards = 4;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  // Distinct register counts hash to different shards (whichever they
  // are); repeats cover each shard's warm cache.
  for (unsigned Regs = 3; Regs <= 8; ++Regs) {
    ServiceRequest Req = allocateRequest({Regs});
    std::string Expected = directReport(Req);
    for (int Round = 0; Round < 2; ++Round) {
      std::string Response;
      ASSERT_TRUE(
          Conn.call(Client::makeAllocateRequest(Req), Response, &Error))
          << Error;
      EXPECT_EQ(Response, Expected) << "regs=" << Regs << " round=" << Round;
    }
  }

  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.RequestsAllocate, 12u);
  ASSERT_EQ(Stats.PerShard.size(), 4u);
  uint64_t ShardSum = 0;
  for (const ShardStats &Sh : Stats.PerShard)
    ShardSum += Sh.Requests;
  EXPECT_EQ(ShardSum, 12u);
}

TEST(ServerLoopbackTest, ShardRoutingIsDeterministicAndTraceVisible) {
  // routeRequestHash must be a pure function of the request content, so
  // identical requests land on the same shard across connections -- the
  // property that keeps per-shard caches warm.  The echoed trace carries
  // the shard id, making the routing observable.
  ServiceRequest Req = allocateRequest({5});
  ServiceRequest Again = allocateRequest({5});
  EXPECT_EQ(routeRequestHash(Req), routeRequestHash(Again));
  // Trace fields must not steer routing.
  Again.Trace = true;
  Again.TraceId = "route-probe";
  EXPECT_EQ(routeRequestHash(Req), routeRequestHash(Again));
  // Different work routes (almost surely) differently-hashed.
  ServiceRequest Other = allocateRequest({6});
  EXPECT_NE(routeRequestHash(Req), routeRequestHash(Other));

  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("routing.sock");
  Opt.Threads = kServerThreads;
  Opt.Shards = 4;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  // The same traced request from two separate connections reports the
  // same shard id.
  long long SeenShard = -1;
  for (int C = 0; C < 2; ++C) {
    Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
    ASSERT_TRUE(Conn.valid()) << Error;
    ServiceRequest Traced = allocateRequest({5});
    Traced.Trace = true;
    Traced.TraceId = "shard-probe";
    std::string Response;
    ASSERT_TRUE(
        Conn.call(Client::makeAllocateRequest(Traced), Response, &Error))
        << Error;
    ASSERT_FALSE(Client::isErrorResponse(Response));
    JsonParseResult Parsed = parseJson(Response);
    ASSERT_TRUE(Parsed.Ok) << Parsed.Error;
    const JsonValue *Trace = Parsed.Value.find("trace");
    ASSERT_NE(Trace, nullptr);
    const JsonValue *Shard = Trace->find("shard");
    ASSERT_NE(Shard, nullptr);
    long long Id = Shard->intValue(-1);
    EXPECT_GE(Id, 0);
    EXPECT_LT(Id, 4);
    if (SeenShard < 0)
      SeenShard = Id;
    else
      EXPECT_EQ(Id, SeenShard);
  }
}

TEST(ServerLoopbackTest, FullShardQueueRejectsWithCleanError) {
  // Admission control: a request routed to a full shard queue gets an
  // immediate error response ("server overloaded") instead of unbounded
  // buffering.  QueueCapacity = 0 makes every shard queue permanently
  // full -- the deterministic way to exercise the reject path.
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("reject.sock");
  Opt.Threads = kServerThreads;
  Opt.QueueCapacity = 0;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  // Ping and stats run inline on the IO thread: never rejected.
  EXPECT_TRUE(Conn.ping(&Error)) << Error;

  std::string Response;
  ASSERT_TRUE(Conn.call(Client::makeAllocateRequest(allocateRequest({4})),
                        Response, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Response));
  EXPECT_NE(Response.find("server overloaded"), std::string::npos);

  // The connection survives the rejection, and the stats record it as
  // rejected -- distinct from failed.
  EXPECT_TRUE(Conn.ping(&Error)) << Error;
  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.RequestsRejected, 1u);
  EXPECT_EQ(Stats.RequestsFailed, 0u);
}

TEST(ServerLoopbackTest, InFlightWindowKeepsPipelinedOrderUnderPressure) {
  // A tiny per-connection window forces the IO loop to pause and resume
  // parsing repeatedly; responses must still come back complete and in
  // request order.
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("window.sock");
  Opt.Threads = kServerThreads;
  Opt.InFlightWindow = 2;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  SocketFd Raw = connectUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Raw.valid()) << Error;
  ServiceRequest Req = allocateRequest({4});
  std::string Expected = directReport(Req);
  constexpr int kBurst = 8;
  for (int I = 0; I < kBurst; ++I)
    ASSERT_TRUE(writeFrame(Raw.fd(), Client::makeAllocateRequest(Req)));
  std::string Payload;
  for (int I = 0; I < kBurst; ++I) {
    ASSERT_EQ(readFrame(Raw.fd(), Payload), FrameStatus::Ok) << "i=" << I;
    EXPECT_EQ(Payload, Expected) << "i=" << I;
  }
}

TEST(ServerLoopbackTest, DiskCacheWarmRestartServesIdenticalBytes) {
  // The persistent store end-to-end: a fresh server process over the same
  // cache directory answers from disk -- byte-identically -- and counts
  // the disk hits.
  TempDir Dir;
  std::string CacheDir = Dir.Path + "/cache";
  ServiceRequest Req = allocateRequest({4, 6}, /*Details=*/true);
  std::string Expected = directReport(Req);

  auto serveOnce = [&](const char *Socket, ServerStats &StatsOut) {
    ServerOptions Opt;
    Opt.UnixPath = Dir.socketPath(Socket);
    Opt.Threads = kServerThreads;
    Opt.Shards = 2;
    Opt.DiskCacheDir = CacheDir;
    Server S(Opt);
    std::string Error;
    ASSERT_TRUE(S.start(&Error)) << Error;
    Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
    ASSERT_TRUE(Conn.valid()) << Error;
    std::string Response;
    ASSERT_TRUE(
        Conn.call(Client::makeAllocateRequest(Req), Response, &Error))
        << Error;
    EXPECT_EQ(Response, Expected);
    StatsOut = S.stats();
    S.requestStop();
    S.wait();
  };

  ServerStats Cold;
  serveOnce("cold.sock", Cold);
  EXPECT_TRUE(Cold.DiskCacheEnabled);
  EXPECT_GT(Cold.DiskWrites, 0u);
  EXPECT_GT(Cold.DiskEntries, 0u);

  // Second process, same directory: its memory caches start empty, so
  // every task resolves through the disk store.
  ServerStats Warm;
  serveOnce("warm.sock", Warm);
  EXPECT_GT(Warm.DiskHits, 0u);
  EXPECT_EQ(Warm.DiskWrites, 0u); // Nothing new to persist.

  // Scrub the cache tree so TempDir can rmdir.
  std::string Cmd = "rm -rf '" + CacheDir + "'";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);
}

TEST(ServerLoopbackTest, GracefulStopDrainsAndDisconnects) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("drain.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;

  // An idle connected client...
  Client Idle = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Idle.valid()) << Error;
  ASSERT_TRUE(Idle.ping(&Error)) << Error;

  // ...sees EOF once the server drains.
  S.requestStop();
  S.wait();
  EXPECT_FALSE(S.running());
  std::string Response;
  EXPECT_FALSE(Idle.call("{\"type\":\"ping\"}", Response, &Error));

  // Stopping twice is fine.
  S.requestStop();
  S.wait();
}
