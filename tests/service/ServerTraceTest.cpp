//===- tests/service/ServerTraceTest.cpp - Request tracing e2e tests ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-scoped observability over the wire: trace id round trips,
/// server-generated ids under a pinned salt, span trees on traced
/// allocate responses, minimal echoes on ping/stats/error responses,
/// the --slow-ms threshold boundary, and the global event ring's
/// request lifecycle records.
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "obs/EventLog.h"
#include "obs/RequestTrace.h"
#include "service/Client.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <unistd.h>
#include <vector>

using namespace layra;

namespace {

constexpr unsigned kServerThreads = 2;

struct TempDir {
  std::string Path;
  TempDir() {
    char Template[] = "/tmp/layra-trace-test-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : "";
  }
  ~TempDir() {
    if (!Path.empty())
      ::rmdir(Path.c_str());
  }
  std::string socketPath(const std::string &Name) const {
    return Path + "/" + Name;
  }
};

ServiceRequest allocateRequest(std::vector<unsigned> Regs) {
  ServiceRequest Req;
  Req.K = ServiceRequest::Kind::Allocate;
  Req.Suites = {"lao-kernels"};
  Req.Regs = std::move(Regs);
  return Req;
}

/// Parses \p Response and returns its "trace" member (nullptr when the
/// response carries none).  \p Doc keeps the parse alive for the caller.
const JsonValue *traceOf(const std::string &Response, JsonParseResult &Doc) {
  Doc = parseJson(Response);
  EXPECT_TRUE(Doc.Ok) << Doc.Error;
  return Doc.Ok ? Doc.Value.find("trace") : nullptr;
}

/// Collects span names, in order.
std::vector<std::string> spanNames(const JsonValue &Trace) {
  std::vector<std::string> Names;
  if (const JsonValue *Spans = Trace.find("spans"))
    for (const JsonValue &Span : Spans->elements())
      if (const JsonValue *Name = Span.find("name"))
        Names.push_back(Name->stringValue());
  return Names;
}

} // namespace

TEST(ServerTraceTest, ClientSuppliedIdRoundTripsWithSpanTree) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("trace.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  ServiceRequest Req = allocateRequest({4});
  Req.Trace = true;
  Req.TraceId = "test-req-007";
  std::string Response;
  ASSERT_TRUE(
      Conn.call(Client::makeAllocateRequest(Req), Response, &Error))
      << Error;
  ASSERT_FALSE(Client::isErrorResponse(Response));

  JsonParseResult Doc;
  const JsonValue *Trace = traceOf(Response, Doc);
  ASSERT_NE(Trace, nullptr);
  ASSERT_NE(Trace->find("id"), nullptr);
  EXPECT_EQ(Trace->find("id")->stringValue(), "test-req-007");

  // The serve-path taxonomy, in timeline order.  response_flush cannot
  // appear in its own echo: the response is serialized before flushing.
  std::vector<std::string> Names = spanNames(*Trace);
  ASSERT_EQ(Names.size(), 4u);
  EXPECT_EQ(Names[0], "accept");
  EXPECT_EQ(Names[1], "queue_wait");
  EXPECT_EQ(Names[2], "dispatch");
  EXPECT_EQ(Names[3], "driver");

  // Spans tile the timeline: each starts where the previous ended,
  // within the independent 3-decimal rounding of start and duration.
  const JsonValue *Spans = Trace->find("spans");
  double Cursor = 0;
  for (const JsonValue &Span : Spans->elements()) {
    EXPECT_NEAR(Span.find("start_ms")->numberValue(), Cursor, 0.0025);
    Cursor = Span.find("start_ms")->numberValue() +
             Span.find("dur_ms")->numberValue();
  }

  // The driver attached per-job solver phases, and they saw real work.
  const JsonValue *JobsV = Trace->find("jobs");
  ASSERT_NE(JobsV, nullptr);
  ASSERT_GT(JobsV->size(), 0u);
  double PhaseMs = 0;
  for (const JsonValue &Job : JobsV->elements()) {
    const JsonValue *Phases = Job.find("phases");
    ASSERT_NE(Phases, nullptr);
    for (const JsonValue &Ph : Phases->elements()) {
      EXPECT_GT(Ph.find("count")->numberValue(), 0.0);
      PhaseMs += Ph.find("self_ms")->numberValue();
    }
  }
  EXPECT_GT(PhaseMs, 0.0);
}

TEST(ServerTraceTest, ServerGeneratedIdsUseThePinnedSalt) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("salt.sock");
  Opt.Threads = kServerThreads;
  Opt.TraceIdSalt = 42; // Pin: ids become a pure function of sequence.
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  // `"trace": true` asks for tracing without supplying an id.
  std::string Response;
  ASSERT_TRUE(Conn.call("{\"type\":\"ping\",\"trace\":true}", Response,
                        &Error))
      << Error;
  JsonParseResult Doc;
  const JsonValue *Trace = traceOf(Response, Doc);
  ASSERT_NE(Trace, nullptr);
  EXPECT_EQ(Trace->find("id")->stringValue(), obs::makeTraceId(42, 1));

  ASSERT_TRUE(Conn.call("{\"type\":\"ping\",\"trace\":true}", Response,
                        &Error))
      << Error;
  Trace = traceOf(Response, Doc);
  ASSERT_NE(Trace, nullptr);
  EXPECT_EQ(Trace->find("id")->stringValue(), obs::makeTraceId(42, 2));
}

TEST(ServerTraceTest, UntracedResponsesCarryNoTraceMember) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("plain.sock");
  Opt.Threads = kServerThreads;
  // Slow logging armed: the server traces internally, but response
  // bytes must stay clean -- measure, never steer.
  Opt.SlowMs = 0;
  Opt.SlowLog = tmpfile();
  ASSERT_NE(Opt.SlowLog, nullptr);
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  std::string Response;
  ASSERT_TRUE(Conn.call(
      Client::makeAllocateRequest(allocateRequest({4})), Response, &Error))
      << Error;
  JsonParseResult Doc;
  EXPECT_EQ(traceOf(Response, Doc), nullptr);

  ASSERT_TRUE(Conn.call("{\"type\":\"ping\"}", Response, &Error)) << Error;
  EXPECT_EQ(traceOf(Response, Doc), nullptr);

  S.requestStop();
  S.wait();
  std::fclose(Opt.SlowLog);
}

TEST(ServerTraceTest, PingStatsAndErrorsEchoAMinimalId) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("echo.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  std::string Response;
  JsonParseResult Doc;

  ASSERT_TRUE(Conn.call("{\"type\":\"ping\",\"trace\":\"ping-1\"}",
                        Response, &Error))
      << Error;
  const JsonValue *Trace = traceOf(Response, Doc);
  ASSERT_NE(Trace, nullptr);
  EXPECT_EQ(Trace->find("id")->stringValue(), "ping-1");
  EXPECT_EQ(Trace->size(), 1u); // id only: no span tree on a pong.

  ASSERT_TRUE(Conn.call("{\"type\":\"stats\",\"trace\":\"stat-1\"}",
                        Response, &Error))
      << Error;
  Trace = traceOf(Response, Doc);
  ASSERT_NE(Trace, nullptr);
  EXPECT_EQ(Trace->find("id")->stringValue(), "stat-1");

  // A rejected request still echoes the id, so clients can correlate
  // failures; an untraced rejection stays clean.
  ASSERT_TRUE(Conn.call("{\"type\":\"allocate\",\"suite\":\"no-such\","
                        "\"regs\":4,\"trace\":\"bad-1\"}",
                        Response, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Response));
  Trace = traceOf(Response, Doc);
  ASSERT_NE(Trace, nullptr);
  EXPECT_EQ(Trace->find("id")->stringValue(), "bad-1");

  ASSERT_TRUE(Conn.call("{\"type\":\"allocate\",\"suite\":\"no-such\","
                        "\"regs\":4}",
                        Response, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Response));
  EXPECT_EQ(traceOf(Response, Doc), nullptr);
}

TEST(ServerTraceTest, MalformedTraceFieldsAreParseErrors) {
  TempDir Dir;
  ServerOptions Opt;
  Opt.UnixPath = Dir.socketPath("badtrace.sock");
  Opt.Threads = kServerThreads;
  Server S(Opt);
  std::string Error;
  ASSERT_TRUE(S.start(&Error)) << Error;
  Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  std::string Response;
  // Wrong type.
  ASSERT_TRUE(
      Conn.call("{\"type\":\"ping\",\"trace\":123}", Response, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Response));
  // Unsafe id characters.
  ASSERT_TRUE(Conn.call("{\"type\":\"ping\",\"trace\":\"has space\"}",
                        Response, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Response));
  // Over-long id.
  std::string Long(65, 'x');
  ASSERT_TRUE(Conn.call("{\"type\":\"ping\",\"trace\":\"" + Long + "\"}",
                        Response, &Error))
      << Error;
  EXPECT_TRUE(Client::isErrorResponse(Response));
  // The connection survives all three rejections.
  EXPECT_TRUE(Conn.ping(&Error)) << Error;
}

TEST(ServerTraceTest, SlowLogThresholdBoundary) {
  TempDir Dir;

  // Threshold 0: every request is "slow" (>= is inclusive), each line
  // is one JSON object carrying the full span tree -- including
  // response_flush, which only the server-side view can contain.
  {
    ServerOptions Opt;
    Opt.UnixPath = Dir.socketPath("slow0.sock");
    Opt.Threads = kServerThreads;
    Opt.SlowMs = 0;
    Opt.SlowLog = tmpfile();
    ASSERT_NE(Opt.SlowLog, nullptr);
    Server S(Opt);
    std::string Error;
    ASSERT_TRUE(S.start(&Error)) << Error;
    Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
    ASSERT_TRUE(Conn.valid()) << Error;

    std::string Response;
    ASSERT_TRUE(Conn.call(
        Client::makeAllocateRequest(allocateRequest({4})), Response,
        &Error))
        << Error;
    ASSERT_TRUE(Conn.call("{\"type\":\"ping\"}", Response, &Error))
        << Error;
    S.requestStop();
    S.wait();

    std::rewind(Opt.SlowLog);
    char Line[65536];
    unsigned Lines = 0;
    bool SawFlush = false, SawDriver = false;
    while (std::fgets(Line, sizeof(Line), Opt.SlowLog)) {
      ++Lines;
      JsonParseResult Parsed = parseJson(std::string(Line));
      ASSERT_TRUE(Parsed.Ok) << Parsed.Error << " in: " << Line;
      EXPECT_EQ(Parsed.Value.find("event")->stringValue(), "slow_request");
      ASSERT_NE(Parsed.Value.find("kind"), nullptr);
      ASSERT_NE(Parsed.Value.find("total_ms"), nullptr);
      const JsonValue *Trace = Parsed.Value.find("trace");
      ASSERT_NE(Trace, nullptr);
      for (const std::string &Name : spanNames(*Trace)) {
        SawFlush |= Name == "response_flush";
        SawDriver |= Name == "driver";
      }
    }
    EXPECT_EQ(Lines, 2u); // allocate + ping, nothing more.
    EXPECT_TRUE(SawFlush);
    EXPECT_TRUE(SawDriver);
    std::fclose(Opt.SlowLog);
  }

  // An unreachable threshold logs nothing.
  {
    ServerOptions Opt;
    Opt.UnixPath = Dir.socketPath("slowinf.sock");
    Opt.Threads = kServerThreads;
    Opt.SlowMs = 1e9;
    Opt.SlowLog = tmpfile();
    ASSERT_NE(Opt.SlowLog, nullptr);
    Server S(Opt);
    std::string Error;
    ASSERT_TRUE(S.start(&Error)) << Error;
    Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
    ASSERT_TRUE(Conn.valid()) << Error;
    std::string Response;
    ASSERT_TRUE(Conn.call(
        Client::makeAllocateRequest(allocateRequest({4})), Response,
        &Error))
        << Error;
    S.requestStop();
    S.wait();
    std::fflush(Opt.SlowLog);
    EXPECT_EQ(std::ftell(Opt.SlowLog), 0L);
    std::fclose(Opt.SlowLog);
  }
}

TEST(ServerTraceTest, EventRingRecordsTheRequestLifecycle) {
  obs::EventLog &Events = obs::EventLog::global();
  ASSERT_FALSE(Events.enabled()); // No other owner in this process.
  Events.reset();
  Events.setEnabled(true);

  {
    TempDir Dir;
    ServerOptions Opt;
    Opt.UnixPath = Dir.socketPath("events.sock");
    Opt.Threads = kServerThreads;
    Server S(Opt);
    std::string Error;
    ASSERT_TRUE(S.start(&Error)) << Error;
    Client Conn = Client::connectToUnix(Opt.UnixPath, &Error);
    ASSERT_TRUE(Conn.valid()) << Error;

    ServiceRequest Req = allocateRequest({4});
    Req.Trace = true;
    Req.TraceId = "ev-req-1";
    std::string Response;
    ASSERT_TRUE(
        Conn.call(Client::makeAllocateRequest(Req), Response, &Error))
        << Error;
    // A rejection lands in the ring too.
    ASSERT_TRUE(Conn.call("{\"type\":\"allocate\",\"suite\":\"no-such\","
                          "\"regs\":4,\"trace\":\"ev-bad-1\"}",
                          Response, &Error))
        << Error;
    S.requestStop();
    S.wait();
  }

  Events.setEnabled(false);
  std::vector<obs::EventLog::Event> Recorded = Events.snapshot();
  bool Started = false, Ended = false, Rejected = false;
  bool DrainBegan = false, DrainEnded = false;
  for (const obs::EventLog::Event &E : Recorded) {
    if (E.Kind == obs::EventKind::RequestStart &&
        std::string(E.Trace) == "ev-req-1")
      Started = true;
    if (E.Kind == obs::EventKind::RequestEnd &&
        std::string(E.Trace) == "ev-req-1") {
      Ended = true;
      EXPECT_GT(E.Value, 0.0); // total_ms
      EXPECT_STREQ(E.Detail, "allocate");
    }
    if (E.Kind == obs::EventKind::Reject &&
        std::string(E.Trace) == "ev-bad-1")
      Rejected = true;
    DrainBegan |= E.Kind == obs::EventKind::DrainBegin;
    DrainEnded |= E.Kind == obs::EventKind::DrainEnd;
  }
  EXPECT_TRUE(Started);
  EXPECT_TRUE(Ended);
  EXPECT_TRUE(Rejected);
  EXPECT_TRUE(DrainBegan);
  EXPECT_TRUE(DrainEnded);
  Events.reset();
}
