//===- tests/service/ProtocolTest.cpp - Wire-protocol tests ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frame encode/decode round trips, rejection of truncated / oversized /
/// garbage frames, and request parsing.  Stream tests run over a
/// socketpair, the same transport class the server sees.
///
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "service/Client.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <string>
#include <sys/socket.h>
#include <unistd.h>

using namespace layra;

namespace {

/// A connected socket pair; [0] plays the client, [1] the server.
struct StreamPair {
  SocketFd A, B;
  StreamPair() {
    int Fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    A.reset(Fds[0]);
    B.reset(Fds[1]);
  }
};

} // namespace

TEST(ProtocolTest, HeaderEncodesMagicAndBigEndianLength) {
  std::string Header = encodeFrameHeader(0x0102A3u);
  ASSERT_EQ(Header.size(), kFrameHeaderBytes);
  EXPECT_EQ(Header.compare(0, 4, "LYRA"), 0);
  EXPECT_EQ(static_cast<unsigned char>(Header[4]), 0x00);
  EXPECT_EQ(static_cast<unsigned char>(Header[5]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(Header[6]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(Header[7]), 0xA3);
}

TEST(ProtocolTest, FrameRoundTripOverSocket) {
  StreamPair S;
  for (const std::string &Payload :
       {std::string("{}"), std::string(""), std::string("{\"k\":\"v\"}"),
        std::string(100000, 'x')}) {
    ASSERT_TRUE(writeFrame(S.A.fd(), Payload));
    std::string Got;
    ASSERT_EQ(readFrame(S.B.fd(), Got), FrameStatus::Ok);
    EXPECT_EQ(Got, Payload);
  }
  // Several frames queued back-to-back arrive in order and undamaged.
  ASSERT_TRUE(writeFrame(S.A.fd(), "first"));
  ASSERT_TRUE(writeFrame(S.A.fd(), "second"));
  std::string Got;
  ASSERT_EQ(readFrame(S.B.fd(), Got), FrameStatus::Ok);
  EXPECT_EQ(Got, "first");
  ASSERT_EQ(readFrame(S.B.fd(), Got), FrameStatus::Ok);
  EXPECT_EQ(Got, "second");
}

TEST(ProtocolTest, CleanCloseIsEof) {
  StreamPair S;
  S.A.reset();
  std::string Got;
  EXPECT_EQ(readFrame(S.B.fd(), Got), FrameStatus::Eof);
}

TEST(ProtocolTest, TruncatedHeaderIsTruncated) {
  StreamPair S;
  ASSERT_TRUE(sendAll(S.A.fd(), "LYR", 3)); // Partial magic, then EOF.
  S.A.reset();
  std::string Got;
  EXPECT_EQ(readFrame(S.B.fd(), Got), FrameStatus::Truncated);
}

TEST(ProtocolTest, TruncatedPayloadIsTruncated) {
  StreamPair S;
  std::string Frame = encodeFrame("hello world");
  ASSERT_TRUE(sendAll(S.A.fd(), Frame.data(), Frame.size() - 4));
  S.A.reset();
  std::string Got;
  EXPECT_EQ(readFrame(S.B.fd(), Got), FrameStatus::Truncated);
}

TEST(ProtocolTest, GarbageMagicIsBadMagic) {
  StreamPair S;
  ASSERT_TRUE(sendAll(S.A.fd(), "GET / HTTP/1.1\r\n", 16));
  std::string Got;
  EXPECT_EQ(readFrame(S.B.fd(), Got), FrameStatus::BadMagic);
}

TEST(ProtocolTest, OversizedLengthIsRejectedWithoutAllocating) {
  StreamPair S;
  // Magic plus a 256 MiB length claim; only the header is ever sent.
  std::string Header = "LYRA";
  Header += static_cast<char>(0x10);
  Header += '\0';
  Header += '\0';
  Header += '\0';
  ASSERT_TRUE(sendAll(S.A.fd(), Header.data(), Header.size()));
  std::string Got;
  EXPECT_EQ(readFrame(S.B.fd(), Got, kDefaultMaxFrameBytes),
            FrameStatus::Oversized);
  EXPECT_TRUE(Got.empty()); // Nothing was buffered for the bogus length.
  // A tighter per-server bound applies to honest frames too.
  StreamPair S2;
  ASSERT_TRUE(writeFrame(S2.A.fd(), std::string(2048, 'x')));
  EXPECT_EQ(readFrame(S2.B.fd(), Got, /*MaxPayloadBytes=*/1024),
            FrameStatus::Oversized);
}

TEST(ProtocolTest, ParsesAllocateRequest) {
  ServiceRequest Req;
  std::string Error;
  ASSERT_TRUE(parseServiceRequest(
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":[4,8],"
      "\"target\":\"armv7\",\"options\":{\"allocator\":\"lh\","
      "\"max_rounds\":2,\"affinity\":false,\"fold\":false},"
      "\"timing\":true,\"details\":true}",
      Req, Error))
      << Error;
  EXPECT_EQ(Req.K, ServiceRequest::Kind::Allocate);
  ASSERT_EQ(Req.Suites.size(), 1u);
  EXPECT_EQ(Req.Suites[0], "eembc");
  ASSERT_EQ(Req.Regs.size(), 2u);
  EXPECT_EQ(Req.Regs[0], 4u);
  EXPECT_EQ(Req.Regs[1], 8u);
  EXPECT_EQ(Req.TargetName, "armv7");
  EXPECT_EQ(Req.Options.AllocatorName, "lh");
  EXPECT_EQ(Req.Options.MaxRounds, 2u);
  EXPECT_FALSE(Req.Options.AffinityBias);
  EXPECT_FALSE(Req.Options.FoldMemoryOperands);
  EXPECT_TRUE(Req.Timing);
  EXPECT_TRUE(Req.Details);

  // Defaults: st231, bfpl, no timing, scalar regs accepted.
  ASSERT_TRUE(parseServiceRequest(
      "{\"type\":\"allocate\",\"suite\":[\"eembc\",\"lao-kernels\"],"
      "\"regs\":6}",
      Req, Error))
      << Error;
  EXPECT_EQ(Req.Suites.size(), 2u);
  ASSERT_EQ(Req.Regs.size(), 1u);
  EXPECT_EQ(Req.Regs[0], 6u);
  EXPECT_EQ(Req.TargetName, "st231");
  EXPECT_EQ(Req.Options.AllocatorName, "bfpl");
  EXPECT_FALSE(Req.Timing);
}

TEST(ProtocolTest, ParsesClassRegsOverrides) {
  ServiceRequest Req;
  std::string Error;
  ASSERT_TRUE(parseServiceRequest(
      "{\"type\":\"allocate\",\"suite\":\"mixed-classes\",\"regs\":[4],"
      "\"target\":\"armv7-vfp\",\"class_regs\":{\"vfp\":8,\"gpr\":12}}",
      Req, Error))
      << Error;
  ASSERT_EQ(Req.ClassRegs.size(), 2u);
  EXPECT_EQ(Req.ClassRegs[0].Class, "vfp");
  EXPECT_EQ(Req.ClassRegs[0].Regs, 8u);
  EXPECT_EQ(Req.ClassRegs[1].Class, "gpr");
  EXPECT_EQ(Req.ClassRegs[1].Regs, 12u);

  // Absent field: no overrides (architectural defaults).
  ASSERT_TRUE(parseServiceRequest(
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4}", Req, Error));
  EXPECT_TRUE(Req.ClassRegs.empty());

  // Syntactic rejections (semantic name checks live in the server).
  const char *Bad[] = {
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
      "\"class_regs\":[]}", // Not an object.
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
      "\"class_regs\":{}}", // Empty object.
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
      "\"class_regs\":{\"vfp\":0}}", // Zero budget.
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
      "\"class_regs\":{\"vfp\":4096}}", // Over the bound.
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
      "\"class_regs\":{\"vfp\":\"8\"}}", // Count as string.
  };
  for (const char *Payload : Bad) {
    Error.clear();
    EXPECT_FALSE(parseServiceRequest(Payload, Req, Error)) << Payload;
    EXPECT_FALSE(Error.empty()) << Payload;
  }
}

TEST(ProtocolTest, ParsesPingStatsAndSubmitIr) {
  ServiceRequest Req;
  std::string Error;
  ASSERT_TRUE(parseServiceRequest("{\"type\":\"ping\"}", Req, Error));
  EXPECT_EQ(Req.K, ServiceRequest::Kind::Ping);
  ASSERT_TRUE(parseServiceRequest("{\"type\":\"stats\"}", Req, Error));
  EXPECT_EQ(Req.K, ServiceRequest::Kind::Stats);
  ASSERT_TRUE(parseServiceRequest(
      "{\"type\":\"submit_ir\",\"ir\":\"function f {...}\","
      "\"name\":\"mine\",\"regs\":[4]}",
      Req, Error))
      << Error;
  EXPECT_EQ(Req.K, ServiceRequest::Kind::SubmitIr);
  EXPECT_EQ(Req.IrText, "function f {...}");
  EXPECT_EQ(Req.Name, "mine");
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  ServiceRequest Req;
  std::string Error;
  const char *Bad[] = {
      "",                                             // Not JSON.
      "{",                                            // Malformed JSON.
      "[1,2,3]",                                      // Not an object.
      "{\"no_type\":1}",                              // Missing type.
      "{\"type\":\"fly\"}",                           // Unknown type.
      "{\"type\":\"allocate\"}",                      // Missing suite.
      "{\"type\":\"allocate\",\"suite\":\"eembc\"}",  // Missing regs.
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":[]}",
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":[0]}",
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":[4096]}",
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":[4.5]}",
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
      "\"timing\":\"yes\"}",                          // Bool field as string.
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
      "\"options\":{\"max_rounds\":0}}",              // Round bound.
      "{\"type\":\"allocate\",\"suite\":17,\"regs\":[4]}",
      "{\"type\":\"submit_ir\",\"regs\":[4]}",        // Missing ir.
      "{\"type\":\"submit_ir\",\"ir\":\"\",\"regs\":[4]}",
  };
  for (const char *Text : Bad) {
    Error.clear();
    EXPECT_FALSE(parseServiceRequest(Text, Req, Error)) << Text;
    EXPECT_FALSE(Error.empty()) << Text;
  }
}

TEST(ProtocolTest, ClientRequestBuildersRoundTripThroughParser) {
  ServiceRequest Out;
  Out.K = ServiceRequest::Kind::Allocate;
  Out.Suites = {"eembc", "lao-kernels"};
  Out.Regs = {4, 8, 12};
  Out.TargetName = "armv7";
  Out.Options.AllocatorName = "lh";
  Out.Options.AffinityBias = false;
  Out.Options.MaxRounds = 3;
  Out.Timing = true;
  Out.Details = true;

  ServiceRequest In;
  std::string Error;
  ASSERT_TRUE(
      parseServiceRequest(Client::makeAllocateRequest(Out), In, Error))
      << Error;
  EXPECT_EQ(In.K, ServiceRequest::Kind::Allocate);
  EXPECT_EQ(In.Suites, Out.Suites);
  EXPECT_EQ(In.Regs, Out.Regs);
  EXPECT_EQ(In.TargetName, Out.TargetName);
  EXPECT_EQ(In.Options.AllocatorName, Out.Options.AllocatorName);
  EXPECT_EQ(In.Options.AffinityBias, Out.Options.AffinityBias);
  EXPECT_EQ(In.Options.MaxRounds, Out.Options.MaxRounds);
  EXPECT_EQ(In.Timing, Out.Timing);
  EXPECT_EQ(In.Details, Out.Details);

  Out.K = ServiceRequest::Kind::SubmitIr;
  Out.IrText = "function g {\nentry:\n  ret\n}\n";
  Out.Name = "handwritten";
  ASSERT_TRUE(
      parseServiceRequest(Client::makeSubmitIrRequest(Out), In, Error))
      << Error;
  EXPECT_EQ(In.K, ServiceRequest::Kind::SubmitIr);
  EXPECT_EQ(In.IrText, Out.IrText);
  EXPECT_EQ(In.Name, Out.Name);
  EXPECT_EQ(In.Regs, Out.Regs);
}

TEST(ProtocolTest, ErrorAndPongResponsesAreWellFormed) {
  JsonParseResult Error = parseJson(makeErrorResponse("boom \"quoted\""));
  ASSERT_TRUE(Error.Ok);
  EXPECT_EQ(Error.Value.find("schema")->stringValue(), kErrorSchema);
  EXPECT_EQ(Error.Value.find("error")->stringValue(), "boom \"quoted\"");

  JsonParseResult Pong = parseJson(makePongResponse());
  ASSERT_TRUE(Pong.Ok);
  EXPECT_EQ(Pong.Value.find("schema")->stringValue(), kPongSchema);
  EXPECT_EQ(Pong.Value.find("protocol")->stringValue(),
            kServeProtocolVersion);
}

TEST(ProtocolTest, ParsesTraceField) {
  ServiceRequest Req;
  std::string Error;

  // Absent: tracing off.
  ASSERT_TRUE(parseServiceRequest("{\"type\":\"ping\"}", Req, Error));
  EXPECT_FALSE(Req.Trace);
  EXPECT_TRUE(Req.TraceId.empty());

  // Boolean true: trace with a server-generated id.
  ASSERT_TRUE(
      parseServiceRequest("{\"type\":\"ping\",\"trace\":true}", Req, Error))
      << Error;
  EXPECT_TRUE(Req.Trace);
  EXPECT_TRUE(Req.TraceId.empty());

  // Boolean false: explicit opt-out.
  ASSERT_TRUE(parseServiceRequest("{\"type\":\"ping\",\"trace\":false}",
                                  Req, Error))
      << Error;
  EXPECT_FALSE(Req.Trace);

  // String: client-supplied id.
  ASSERT_TRUE(parseServiceRequest(
      "{\"type\":\"allocate\",\"suite\":\"eembc\",\"regs\":4,"
      "\"trace\":\"cli.7:a-b\"}",
      Req, Error))
      << Error;
  EXPECT_TRUE(Req.Trace);
  EXPECT_EQ(Req.TraceId, "cli.7:a-b");
}

TEST(ProtocolTest, RejectsMalformedTraceFields) {
  ServiceRequest Req;
  std::string Error;
  const std::string Long(65, 'x');
  const std::string Bad[] = {
      "{\"type\":\"ping\",\"trace\":1}",          // Wrong type.
      "{\"type\":\"ping\",\"trace\":null}",       // Wrong type.
      "{\"type\":\"ping\",\"trace\":[true]}",     // Wrong type.
      "{\"type\":\"ping\",\"trace\":\"\"}",       // Empty id.
      "{\"type\":\"ping\",\"trace\":\"a b\"}",    // Unsafe character.
      "{\"type\":\"ping\",\"trace\":\"a/b\"}",    // Unsafe character.
      "{\"type\":\"ping\",\"trace\":\"" + Long + "\"}", // Too long.
  };
  for (const std::string &Text : Bad) {
    Error.clear();
    EXPECT_FALSE(parseServiceRequest(Text, Req, Error)) << Text;
    EXPECT_FALSE(Error.empty()) << Text;
  }
}

TEST(ProtocolTest, ClientBuilderEmitsTraceFieldAndResponsesEchoIt) {
  // Builder round trip: bool and string spellings both survive the wire.
  ServiceRequest Out;
  Out.K = ServiceRequest::Kind::Allocate;
  Out.Suites = {"eembc"};
  Out.Regs = {4};
  Out.Trace = true;
  ServiceRequest In;
  std::string Error;
  ASSERT_TRUE(
      parseServiceRequest(Client::makeAllocateRequest(Out), In, Error))
      << Error;
  EXPECT_TRUE(In.Trace);
  EXPECT_TRUE(In.TraceId.empty());

  Out.TraceId = "builder-id-1";
  ASSERT_TRUE(
      parseServiceRequest(Client::makeAllocateRequest(Out), In, Error))
      << Error;
  EXPECT_TRUE(In.Trace);
  EXPECT_EQ(In.TraceId, "builder-id-1");

  // Canned responses append a minimal trace echo when given an id, and
  // stay byte-identical to the untraced spelling when not.
  std::string Untraced = makeErrorResponse("boom");
  JsonParseResult Traced = parseJson(makeErrorResponse("boom", "err-1"));
  ASSERT_TRUE(Traced.Ok);
  ASSERT_NE(Traced.Value.find("trace"), nullptr);
  EXPECT_EQ(Traced.Value.find("trace")->find("id")->stringValue(),
            "err-1");
  EXPECT_EQ(parseJson(Untraced).Value.find("trace"), nullptr);

  JsonParseResult Pong = parseJson(makePongResponse("pong-1"));
  ASSERT_TRUE(Pong.Ok);
  ASSERT_NE(Pong.Value.find("trace"), nullptr);
  EXPECT_EQ(Pong.Value.find("trace")->find("id")->stringValue(), "pong-1");
}
