//===- tests/service/DiskCacheTest.cpp - Persistent store tests -----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the content-addressed on-disk outcome store: round-trips
/// within and across instances, rejection (and deletion) of truncated,
/// corrupted, and wrong-revision entries, byte-cap LRU eviction, and the
/// degraded no-op mode for an unusable directory.
///
//===----------------------------------------------------------------------===//

#include "service/DiskCache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

using namespace layra;

namespace {

/// A scratch directory removed (recursively) on destruction.
struct TempDir {
  std::string Path;
  TempDir() {
    char Template[] = "/tmp/layra-disk-test-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::string Cmd = "rm -rf '" + Path + "'";
      (void)std::system(Cmd.c_str());
    }
  }
};

/// Where DiskCache files an entry: DIR/<2-hex>/<16-hex-key>.
std::string entryPathFor(const std::string &Dir, uint64_t Key) {
  char Name[17];
  std::snprintf(Name, sizeof Name, "%016llx",
                static_cast<unsigned long long>(Key));
  return Dir + "/" + std::string(Name).substr(0, 2) + "/" + Name;
}

TaskOutcome sampleOutcome(unsigned Seed) {
  TaskOutcome Out;
  Out.SpillCost = static_cast<Weight>(100 + Seed);
  Out.NumLoads = 3 + Seed;
  Out.NumStores = 2 + Seed;
  Out.LoadsFolded = Seed;
  Out.Rounds = 1 + Seed % 3;
  Out.FinalMaxLive = 7 + Seed;
  Out.Fits = (Seed % 2) == 0;
  return Out;
}

void expectEqualOutcome(const TaskOutcome &Got, const TaskOutcome &Want) {
  EXPECT_EQ(Got.SpillCost, Want.SpillCost);
  EXPECT_EQ(Got.NumLoads, Want.NumLoads);
  EXPECT_EQ(Got.NumStores, Want.NumStores);
  EXPECT_EQ(Got.LoadsFolded, Want.LoadsFolded);
  EXPECT_EQ(Got.Rounds, Want.Rounds);
  EXPECT_EQ(Got.FinalMaxLive, Want.FinalMaxLive);
  EXPECT_EQ(Got.Fits, Want.Fits);
}

bool fileExists(const std::string &Path) {
  struct stat Sb;
  return ::stat(Path.c_str(), &Sb) == 0;
}

} // namespace

TEST(DiskCacheTest, RoundTripsWithinAndAcrossInstances) {
  TempDir Dir;
  TaskOutcome Stored = sampleOutcome(1);
  {
    DiskCache Cache(Dir.Path);
    ASSERT_TRUE(Cache.valid()) << Cache.error();
    Cache.store(0xdeadbeefcafef00dULL, Stored);
    TaskOutcome Got;
    ASSERT_TRUE(Cache.lookup(0xdeadbeefcafef00dULL, Got));
    expectEqualOutcome(Got, Stored);
    DiskCacheStats S = Cache.stats();
    EXPECT_EQ(S.Writes, 1u);
    EXPECT_EQ(S.Hits, 1u);
    EXPECT_EQ(S.Entries, 1u);
    EXPECT_EQ(S.Bytes, DiskCache::entryBytes());
  }
  // A fresh instance re-indexes the directory and serves the same bytes:
  // the property that warm-starts a restarted server.
  DiskCache Reopened(Dir.Path);
  ASSERT_TRUE(Reopened.valid()) << Reopened.error();
  EXPECT_EQ(Reopened.stats().Entries, 1u);
  TaskOutcome Got;
  ASSERT_TRUE(Reopened.lookup(0xdeadbeefcafef00dULL, Got));
  expectEqualOutcome(Got, Stored);
}

TEST(DiskCacheTest, UnknownKeyIsACountedMiss) {
  TempDir Dir;
  DiskCache Cache(Dir.Path);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  TaskOutcome Got;
  EXPECT_FALSE(Cache.lookup(42, Got));
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_EQ(Cache.stats().Hits, 0u);
}

TEST(DiskCacheTest, TruncatedEntryReadsAsMissAndIsDeleted) {
  TempDir Dir;
  DiskCache Cache(Dir.Path);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  constexpr uint64_t Key = 7;
  Cache.store(Key, sampleOutcome(2));
  std::string Path = entryPathFor(Dir.Path, Key);
  ASSERT_TRUE(fileExists(Path));
  ASSERT_EQ(::truncate(Path.c_str(), static_cast<off_t>(
                                         DiskCache::entryBytes() - 5)),
            0);
  TaskOutcome Got;
  EXPECT_FALSE(Cache.lookup(Key, Got));
  // Useless bytes are scrubbed so the next store can re-persist cleanly.
  EXPECT_FALSE(fileExists(Path));
  DiskCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_EQ(S.Evictions, 0u); // Corruption cleanup is not an eviction.
}

TEST(DiskCacheTest, CorruptedMagicReadsAsMissAndIsDeleted) {
  TempDir Dir;
  constexpr uint64_t Key = 9;
  {
    DiskCache Cache(Dir.Path);
    ASSERT_TRUE(Cache.valid()) << Cache.error();
    Cache.store(Key, sampleOutcome(3));
  }
  std::string Path = entryPathFor(Dir.Path, Key);
  std::FILE *F = std::fopen(Path.c_str(), "r+b");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fputc('X', F), 'X'); // Clobber the first magic byte.
  std::fclose(F);
  // Reopen: the startup scan indexes the file by name, but the first read
  // rejects it.
  DiskCache Cache(Dir.Path);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  TaskOutcome Got;
  EXPECT_FALSE(Cache.lookup(Key, Got));
  EXPECT_FALSE(fileExists(Path));
}

TEST(DiskCacheTest, RevisionMismatchInvalidatesEntry) {
  TempDir Dir;
  constexpr uint64_t Key = 11;
  {
    DiskCache Cache(Dir.Path);
    ASSERT_TRUE(Cache.valid()) << Cache.error();
    Cache.store(Key, sampleOutcome(4));
  }
  // Forge an entry "written by a different solver revision": flip one bit
  // of the revision-hash field (bytes 8..15 of the header).
  std::string Path = entryPathFor(Dir.Path, Key);
  std::FILE *F = std::fopen(Path.c_str(), "r+b");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fseek(F, 8, SEEK_SET), 0);
  int Byte = std::fgetc(F);
  ASSERT_NE(Byte, EOF);
  unsigned char Flipped = static_cast<unsigned char>(Byte) ^ 0x01;
  // The forged value must actually differ from the live revision hash.
  ASSERT_NE(static_cast<unsigned char>(DiskCache::revisionHash() & 0xFF),
            Flipped);
  ASSERT_EQ(std::fseek(F, 8, SEEK_SET), 0);
  ASSERT_EQ(std::fputc(Flipped, F), Flipped);
  std::fclose(F);

  DiskCache Cache(Dir.Path);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  TaskOutcome Got;
  EXPECT_FALSE(Cache.lookup(Key, Got));
  EXPECT_FALSE(fileExists(Path));
  // A re-store after the miss works, and the entry reads back again.
  Cache.store(Key, sampleOutcome(4));
  ASSERT_TRUE(Cache.lookup(Key, Got));
  expectEqualOutcome(Got, sampleOutcome(4));
}

TEST(DiskCacheTest, ByteCapEvictsLeastRecentlyUsed) {
  TempDir Dir;
  // Room for exactly two entries.
  DiskCache Cache(Dir.Path, 2 * DiskCache::entryBytes());
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  Cache.store(1, sampleOutcome(1));
  Cache.store(2, sampleOutcome(2));
  // Touch key 1 so key 2 becomes the least recently used.
  TaskOutcome Got;
  ASSERT_TRUE(Cache.lookup(1, Got));
  Cache.store(3, sampleOutcome(3));

  DiskCacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_EQ(S.Bytes, 2 * DiskCache::entryBytes());
  EXPECT_FALSE(fileExists(entryPathFor(Dir.Path, 2)));
  EXPECT_TRUE(Cache.lookup(1, Got));
  expectEqualOutcome(Got, sampleOutcome(1));
  EXPECT_TRUE(Cache.lookup(3, Got));
  EXPECT_FALSE(Cache.lookup(2, Got));
}

TEST(DiskCacheTest, TinyCapStillKeepsTheNewestEntry) {
  TempDir Dir;
  // A cap smaller than one entry must not make the cache evict what it
  // just wrote -- that would persist nothing, ever.
  DiskCache Cache(Dir.Path, 1);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  Cache.store(5, sampleOutcome(5));
  EXPECT_EQ(Cache.stats().Entries, 1u);
  TaskOutcome Got;
  EXPECT_TRUE(Cache.lookup(5, Got));
  // The next store displaces it: the newest entry wins.
  Cache.store(6, sampleOutcome(6));
  DiskCacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_FALSE(Cache.lookup(5, Got));
  EXPECT_TRUE(Cache.lookup(6, Got));
}

TEST(DiskCacheTest, UnusableDirectoryDegradesToNoOpMisses) {
  TempDir Dir;
  // A path whose parent is a regular file can never become a directory.
  std::string FilePath = Dir.Path + "/plain-file";
  std::FILE *F = std::fopen(FilePath.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fclose(F);
  DiskCache Cache(FilePath + "/cache");
  EXPECT_FALSE(Cache.valid());
  EXPECT_FALSE(Cache.error().empty());
  // Every operation is a safe no-op.
  Cache.store(1, sampleOutcome(1));
  TaskOutcome Got;
  EXPECT_FALSE(Cache.lookup(1, Got));
  EXPECT_EQ(Cache.stats().Entries, 0u);
}

TEST(DiskCacheTest, FailedRecencyTouchIsCountedNotFatal) {
  // The hit path refreshes each entry's mtime so LRU order survives a
  // restart; on filesystems where that touch fails (read-only remounts,
  // permission drift) the hit must still be served, with the failure
  // visible in stats (the server exports it as disk_cache.touch_failures).
  TempDir Dir;
  DiskCache Cache(Dir.Path);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  TaskOutcome Stored = sampleOutcome(3);
  Cache.store(0x42, Stored);

  Cache.setTouchHookForTest(+[](const char *) { return false; });
  TaskOutcome Got;
  ASSERT_TRUE(Cache.lookup(0x42, Got)); // The hit itself is unaffected.
  expectEqualOutcome(Got, Stored);
  ASSERT_TRUE(Cache.lookup(0x42, Got));
  DiskCacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.TouchFailures, 2u);

  // Recovery: once touches succeed again the counter stops moving.
  Cache.setTouchHookForTest(nullptr);
  ASSERT_TRUE(Cache.lookup(0x42, Got));
  EXPECT_EQ(Cache.stats().TouchFailures, 2u);
  EXPECT_EQ(Cache.stats().Hits, 3u);
}
