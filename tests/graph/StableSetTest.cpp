//===- tests/graph/StableSetTest.cpp - Frank's algorithm tests ------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "graph/StableSet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace layra;

namespace {
std::vector<Weight> weightsOf(const Graph &G) {
  std::vector<Weight> W(G.numVertices());
  for (VertexId V = 0; V < G.numVertices(); ++V)
    W[V] = G.weight(V);
  return W;
}

/// The paper's Figure 5 graph (see ChordalTest.cpp for the layout).
Graph figure5Graph() {
  Graph G;
  G.addVertex(1, "a"); // 0
  G.addVertex(2, "b"); // 1
  G.addVertex(2, "c"); // 2
  G.addVertex(5, "d"); // 3
  G.addVertex(2, "e"); // 4
  G.addVertex(6, "f"); // 5
  G.addVertex(1, "g"); // 6
  G.addEdge(0, 3);
  G.addEdge(0, 5);
  G.addEdge(3, 5);
  G.addEdge(3, 4);
  G.addEdge(4, 5);
  G.addEdge(2, 3);
  G.addEdge(2, 4);
  G.addEdge(1, 2);
  G.addEdge(1, 6);
  G.addEdge(6, 2);
  return G;
}
} // namespace

TEST(StableSetTest, EmptyGraph) {
  Graph G;
  StableSetResult R = maximumWeightedStableSetChordal(
      G, maximumCardinalitySearch(G), {});
  EXPECT_TRUE(R.Set.empty());
  EXPECT_EQ(R.TotalWeight, 0);
}

TEST(StableSetTest, SingleVertex) {
  Graph G;
  G.addVertex(7);
  StableSetResult R = maximumWeightedStableSetChordal(
      G, maximumCardinalitySearch(G), weightsOf(G));
  EXPECT_EQ(R.Set, std::vector<VertexId>{0});
  EXPECT_EQ(R.TotalWeight, 7);
}

TEST(StableSetTest, PaperFigure5ExampleHasWeightEight) {
  // The paper computes a maximum weighted stable set of weight 8 ({f,b} in
  // its trace; {f,c} is the other optimum).
  Graph G = figure5Graph();
  StableSetResult R = maximumWeightedStableSetChordal(
      G, maximumCardinalitySearch(G), weightsOf(G));
  EXPECT_EQ(R.TotalWeight, 8);
  EXPECT_TRUE(G.isStableSet(R.Set));
  std::set<VertexId> Got(R.Set.begin(), R.Set.end());
  std::set<VertexId> BF{1, 5}, CF{2, 5};
  EXPECT_TRUE(Got == BF || Got == CF);
}

TEST(StableSetTest, PaperFigure5WithPaperPeoReproducesTrace) {
  // Driving Frank's algorithm with the paper's own PEO [a,f,d,e,b,g,c]
  // reproduces the trace of Figure 5: red = {b, f, a}, blue = {f, b}.
  Graph G = figure5Graph();
  EliminationOrder PaperPeo =
      EliminationOrder::fromOrder({0, 5, 3, 4, 1, 6, 2});
  StableSetResult R =
      maximumWeightedStableSetChordal(G, PaperPeo, weightsOf(G));
  std::set<VertexId> Got(R.Set.begin(), R.Set.end());
  EXPECT_EQ(Got, (std::set<VertexId>{1, 5})); // {b, f}
  EXPECT_EQ(R.TotalWeight, 8);
}

TEST(StableSetTest, ZeroWeightVerticesAreNeverChosen) {
  Graph G(3);
  G.setWeight(0, 0);
  G.setWeight(1, 5);
  G.setWeight(2, 0);
  G.addEdge(0, 1);
  StableSetResult R = maximumWeightedStableSetChordal(
      G, maximumCardinalitySearch(G), weightsOf(G));
  EXPECT_EQ(R.Set, std::vector<VertexId>{1});
}

TEST(StableSetTest, MaskRestrictsTheComputation) {
  // Path a-b-c with weights 1, 10, 1: unmasked optimum is {b}; masking out
  // b must yield {a, c}.
  Graph G(3);
  G.setWeight(0, 1);
  G.setWeight(1, 10);
  G.setWeight(2, 1);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  EliminationOrder Peo = maximumCardinalitySearch(G);
  StableSetResult Full =
      maximumWeightedStableSetChordal(G, Peo, weightsOf(G));
  EXPECT_EQ(Full.Set, std::vector<VertexId>{1});

  std::vector<char> Mask{1, 0, 1};
  StableSetResult Masked =
      maximumWeightedStableSetChordal(G, Peo, weightsOf(G), Mask);
  std::set<VertexId> Got(Masked.Set.begin(), Masked.Set.end());
  EXPECT_EQ(Got, (std::set<VertexId>{0, 2}));
  EXPECT_EQ(Masked.TotalWeight, 2);
}

TEST(StableSetTest, MatchesBruteForceOnRandomChordalGraphs) {
  Rng R(909);
  for (int Round = 0; Round < 60; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 3 + static_cast<unsigned>(R.nextBelow(15));
    Opt.TreeSize = 3 + static_cast<unsigned>(R.nextBelow(12));
    Opt.MaxWeight = 20;
    Graph G = randomChordalGraph(R, Opt);
    EliminationOrder Peo = maximumCardinalitySearch(G);
    StableSetResult Fast =
        maximumWeightedStableSetChordal(G, Peo, weightsOf(G));
    StableSetResult Slow =
        maximumWeightedStableSetBruteForce(G, weightsOf(G));
    EXPECT_EQ(Fast.TotalWeight, Slow.TotalWeight) << "round " << Round;
    EXPECT_TRUE(G.isStableSet(Fast.Set));
  }
}

TEST(StableSetTest, MatchesBruteForceOnRandomIntervalGraphs) {
  Rng R(111);
  for (int Round = 0; Round < 40; ++Round) {
    Graph G = randomIntervalGraph(R, 3 + static_cast<unsigned>(R.nextBelow(14)),
                                  40, 15, 25);
    EliminationOrder Peo = maximumCardinalitySearch(G);
    StableSetResult Fast =
        maximumWeightedStableSetChordal(G, Peo, weightsOf(G));
    StableSetResult Slow =
        maximumWeightedStableSetBruteForce(G, weightsOf(G));
    EXPECT_EQ(Fast.TotalWeight, Slow.TotalWeight) << "round " << Round;
  }
}

TEST(StableSetTest, ReportedWeightMatchesSet) {
  Rng R(222);
  ChordalGenOptions Opt;
  Opt.NumVertices = 50;
  Graph G = randomChordalGraph(R, Opt);
  StableSetResult Result = maximumWeightedStableSetChordal(
      G, maximumCardinalitySearch(G), weightsOf(G));
  EXPECT_EQ(Result.TotalWeight, G.weightOf(Result.Set));
}
