//===- tests/graph/GraphTest.cpp - Graph unit tests -----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Graph.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(GraphTest, AddVertexAssignsDenseIds) {
  Graph G;
  EXPECT_EQ(G.addVertex(1), 0u);
  EXPECT_EQ(G.addVertex(2), 1u);
  EXPECT_EQ(G.numVertices(), 2u);
  EXPECT_EQ(G.weight(0), 1);
  EXPECT_EQ(G.weight(1), 2);
}

TEST(GraphTest, AddEdgeIsIdempotent) {
  Graph G(3);
  EXPECT_TRUE(G.addEdge(0, 1));
  EXPECT_FALSE(G.addEdge(1, 0)); // Same undirected edge.
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_TRUE(G.hasEdge(1, 0));
  EXPECT_FALSE(G.hasEdge(0, 2));
}

TEST(GraphTest, DegreeTracksNeighbors) {
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(0, 3);
  EXPECT_EQ(G.degree(0), 3u);
  EXPECT_EQ(G.degree(1), 1u);
}

TEST(GraphTest, TotalAndSubsetWeight) {
  Graph G;
  G.addVertex(5);
  G.addVertex(7);
  G.addVertex(11);
  EXPECT_EQ(G.totalWeight(), 23);
  EXPECT_EQ(G.weightOf({0, 2}), 16);
}

TEST(GraphTest, StableSetDetection) {
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(2, 3);
  EXPECT_TRUE(G.isStableSet({0, 2}));
  EXPECT_TRUE(G.isStableSet({1, 3}));
  EXPECT_FALSE(G.isStableSet({0, 1}));
  EXPECT_TRUE(G.isStableSet({}));
}

TEST(GraphTest, InducedSubgraphKeepsWeightsAndEdges) {
  Graph G;
  for (Weight W : {1, 2, 3, 4})
    G.addVertex(W);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);

  std::vector<VertexId> Map;
  Graph Sub = G.inducedSubgraph({1, 2, 3}, &Map);
  EXPECT_EQ(Sub.numVertices(), 3u);
  EXPECT_EQ(Sub.numEdges(), 2u); // 1-2 and 2-3 survive; 0-1 dropped.
  EXPECT_EQ(Map[0], ~0u);
  EXPECT_EQ(Sub.weight(Map[1]), 2);
  EXPECT_TRUE(Sub.hasEdge(Map[1], Map[2]));
  EXPECT_FALSE(Sub.hasEdge(Map[1], Map[3]));
}

TEST(GraphTest, NamesRoundTrip) {
  Graph G;
  G.addVertex(1, "x");
  G.addVertex(2);
  EXPECT_EQ(G.name(0), "x");
  EXPECT_EQ(G.name(1), "");
  G.setName(1, "y");
  EXPECT_EQ(G.name(1), "y");
}

TEST(GraphTest, ToDotMentionsVerticesAndEdges) {
  Graph G;
  G.addVertex(1, "a");
  G.addVertex(2, "b");
  G.addEdge(0, 1);
  std::string Dot = G.toDot({0});
  EXPECT_NE(Dot.find("a:1"), std::string::npos);
  EXPECT_NE(Dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(Dot.find("filled"), std::string::npos);
}
