//===- tests/graph/GraphTest.cpp - Graph unit tests -----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Graph.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(GraphTest, AddVertexAssignsDenseIds) {
  Graph G;
  EXPECT_EQ(G.addVertex(1), 0u);
  EXPECT_EQ(G.addVertex(2), 1u);
  EXPECT_EQ(G.numVertices(), 2u);
  EXPECT_EQ(G.weight(0), 1);
  EXPECT_EQ(G.weight(1), 2);
}

TEST(GraphTest, AddEdgeIsIdempotent) {
  Graph G(3);
  EXPECT_TRUE(G.addEdge(0, 1));
  EXPECT_FALSE(G.addEdge(1, 0)); // Same undirected edge.
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_TRUE(G.hasEdge(1, 0));
  EXPECT_FALSE(G.hasEdge(0, 2));
}

TEST(GraphTest, DegreeTracksNeighbors) {
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(0, 3);
  EXPECT_EQ(G.degree(0), 3u);
  EXPECT_EQ(G.degree(1), 1u);
}

TEST(GraphTest, TotalAndSubsetWeight) {
  Graph G;
  G.addVertex(5);
  G.addVertex(7);
  G.addVertex(11);
  EXPECT_EQ(G.totalWeight(), 23);
  EXPECT_EQ(G.weightOf({0, 2}), 16);
}

TEST(GraphTest, StableSetDetection) {
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(2, 3);
  EXPECT_TRUE(G.isStableSet({0, 2}));
  EXPECT_TRUE(G.isStableSet({1, 3}));
  EXPECT_FALSE(G.isStableSet({0, 1}));
  EXPECT_TRUE(G.isStableSet({}));
}

TEST(GraphTest, InducedSubgraphKeepsWeightsAndEdges) {
  Graph G;
  for (Weight W : {1, 2, 3, 4})
    G.addVertex(W);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);

  std::vector<VertexId> Map;
  Graph Sub = G.inducedSubgraph({1, 2, 3}, &Map);
  EXPECT_EQ(Sub.numVertices(), 3u);
  EXPECT_EQ(Sub.numEdges(), 2u); // 1-2 and 2-3 survive; 0-1 dropped.
  EXPECT_EQ(Map[0], ~0u);
  EXPECT_EQ(Sub.weight(Map[1]), 2);
  EXPECT_TRUE(Sub.hasEdge(Map[1], Map[2]));
  EXPECT_FALSE(Sub.hasEdge(Map[1], Map[3]));
}

TEST(GraphTest, NamesRoundTrip) {
  Graph G;
  G.addVertex(1, "x");
  G.addVertex(2);
  EXPECT_EQ(G.name(0), "x");
  EXPECT_EQ(G.name(1), "");
  G.setName(1, "y");
  EXPECT_EQ(G.name(1), "y");
}

TEST(GraphTest, ToDotMentionsVerticesAndEdges) {
  Graph G;
  G.addVertex(1, "a");
  G.addVertex(2, "b");
  G.addEdge(0, 1);
  std::string Dot = G.toDot({0});
  EXPECT_NE(Dot.find("a:1"), std::string::npos);
  EXPECT_NE(Dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(Dot.find("filled"), std::string::npos);
}

TEST(GraphTest, CompressPreservesNeighborOrderDegreesAndEdges) {
  Graph G(5);
  // Deliberately non-sorted insertion order: it must survive compression
  // verbatim (MCS tie-breaking depends on it).
  G.addEdge(0, 3);
  G.addEdge(0, 1);
  G.addEdge(2, 0);
  G.addEdge(4, 2);

  std::vector<std::vector<VertexId>> Before;
  for (VertexId V = 0; V < 5; ++V)
    Before.emplace_back(G.neighbors(V).begin(), G.neighbors(V).end());

  ASSERT_FALSE(G.compressed());
  G.compress();
  ASSERT_TRUE(G.compressed());
  EXPECT_EQ(G.numVertices(), 5u);
  EXPECT_EQ(G.numEdges(), 4u);
  for (VertexId V = 0; V < 5; ++V) {
    NeighborRange N = G.neighbors(V);
    EXPECT_EQ(std::vector<VertexId>(N.begin(), N.end()), Before[V]) << V;
    EXPECT_EQ(G.degree(V), Before[V].size()) << V;
  }
  EXPECT_EQ(G.neighbors(0)[0], 3u); // Insertion order, not sorted order.
  EXPECT_TRUE(G.hasEdge(0, 3));
  EXPECT_TRUE(G.hasEdge(2, 4));
  EXPECT_FALSE(G.hasEdge(1, 2));
  EXPECT_TRUE(G.isStableSet({1, 2}));
  EXPECT_FALSE(G.isStableSet({0, 2}));

  // compress() is idempotent.
  G.compress();
  EXPECT_EQ(G.neighbors(0)[0], 3u);
  EXPECT_EQ(G.numEdges(), 4u);
}

TEST(GraphTest, CompressedGraphYieldsMutableInducedSubgraph) {
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.setWeight(2, 9);
  G.compress();

  std::vector<VertexId> Map;
  Graph Sub = G.inducedSubgraph({1, 2, 3}, &Map);
  EXPECT_FALSE(Sub.compressed());
  EXPECT_EQ(Sub.numEdges(), 2u);
  EXPECT_EQ(Sub.weight(Map[2]), 9);
  EXPECT_EQ(Sub.addVertex(1), 3u); // Still mutable.
}

TEST(GraphTest, IncrementalGrowthKeepsHasEdgeCorrect) {
  // addVertex after construction exercises the bit-matrix re-stride path;
  // hasEdge must agree with a reference edge set throughout.
  Graph G;
  std::vector<std::pair<VertexId, VertexId>> Edges;
  for (unsigned I = 0; I < 200; ++I) {
    VertexId V = G.addVertex(1);
    for (VertexId U = V % 7; U < V; U += 13) {
      ASSERT_TRUE(G.addEdge(U, V));
      Edges.push_back({U, V});
    }
  }
  for (const auto &E : Edges) {
    EXPECT_TRUE(G.hasEdge(E.first, E.second));
    EXPECT_TRUE(G.hasEdge(E.second, E.first));
    EXPECT_FALSE(G.addEdge(E.first, E.second)); // Dedup still works.
  }
  EXPECT_EQ(G.numEdges(), Edges.size());
  EXPECT_FALSE(G.hasEdge(0, 12)); // 12 % 7 = 5, step 13: never inserted.
}

TEST(GraphTest, HasEdgeFallsBackToScanPastDenseCap) {
  // One vertex over the cap: the bit matrix is dropped for good and the
  // list scan takes over, with identical answers.
  Graph G(Graph::kMaxDenseVertices + 1);
  VertexId Last = Graph::kMaxDenseVertices;
  G.addEdge(0, Last);
  G.addEdge(1, 2);
  EXPECT_TRUE(G.hasEdge(0, Last));
  EXPECT_TRUE(G.hasEdge(Last, 0));
  EXPECT_TRUE(G.hasEdge(2, 1));
  EXPECT_FALSE(G.hasEdge(0, 1));
  EXPECT_FALSE(G.addEdge(Last, 0));
  EXPECT_EQ(G.numEdges(), 2u);

  // Growing *across* the cap mid-life drops the matrix too.
  Graph H(8);
  H.addEdge(0, 1);
  for (unsigned I = 8; I <= Graph::kMaxDenseVertices; ++I)
    H.addVertex(0);
  EXPECT_TRUE(H.hasEdge(0, 1));
  H.addEdge(2, Graph::kMaxDenseVertices);
  EXPECT_TRUE(H.hasEdge(Graph::kMaxDenseVertices, 2));
  EXPECT_FALSE(H.hasEdge(1, 2));
}

TEST(GraphTest, NeighborRangeBasics) {
  Graph G(3);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  NeighborRange N = G.neighbors(0);
  EXPECT_EQ(N.size(), 2u);
  EXPECT_FALSE(N.empty());
  EXPECT_EQ(N[0], 1u);
  EXPECT_EQ(N[1], 2u);
  // Equality is element-wise, not pointer identity: 1 and 2 both see {0}.
  EXPECT_EQ(G.neighbors(1), G.neighbors(2));
  EXPECT_TRUE(G.neighbors(0) != G.neighbors(1));
  NeighborRange Empty;
  EXPECT_TRUE(Empty.empty());
  EXPECT_EQ(Empty.size(), 0u);
}
