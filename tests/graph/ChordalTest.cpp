//===- tests/graph/ChordalTest.cpp - Chordal machinery tests --------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Chordal.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace layra;

namespace {
/// Reference maximal-clique enumeration (Bron-Kerbosch without pivoting);
/// exponential, for cross-validation on small graphs only.
void bronKerbosch(const Graph &G, std::set<VertexId> R, std::set<VertexId> P,
                  std::set<VertexId> X,
                  std::vector<std::set<VertexId>> &Out) {
  if (P.empty() && X.empty()) {
    Out.push_back(R);
    return;
  }
  std::set<VertexId> PCopy = P;
  for (VertexId V : PCopy) {
    std::set<VertexId> NewR = R;
    NewR.insert(V);
    std::set<VertexId> NewP, NewX;
    for (VertexId U : G.neighbors(V)) {
      if (P.count(U))
        NewP.insert(U);
      if (X.count(U))
        NewX.insert(U);
    }
    bronKerbosch(G, NewR, NewP, NewX, Out);
    P.erase(V);
    X.insert(V);
  }
}

std::vector<std::set<VertexId>> referenceMaximalCliques(const Graph &G) {
  std::set<VertexId> P;
  for (VertexId V = 0; V < G.numVertices(); ++V)
    P.insert(V);
  std::vector<std::set<VertexId>> Out;
  bronKerbosch(G, {}, P, {}, Out);
  return Out;
}

/// The paper's Figure 5 graph: seven vertices a..g with weights
/// 1,2,2,5,2,6,1 and the chordal structure of Figure 4.
Graph figure5Graph() {
  Graph G;
  VertexId A = G.addVertex(1, "a");
  VertexId B = G.addVertex(2, "b");
  VertexId C = G.addVertex(2, "c");
  VertexId D = G.addVertex(5, "d");
  VertexId E = G.addVertex(2, "e");
  VertexId F = G.addVertex(6, "f");
  VertexId H = G.addVertex(1, "g");
  G.addEdge(A, D);
  G.addEdge(A, F);
  G.addEdge(D, F);
  G.addEdge(D, E);
  G.addEdge(E, F);
  G.addEdge(C, D);
  G.addEdge(C, E);
  G.addEdge(B, C);
  G.addEdge(B, H);
  G.addEdge(H, C);
  return G;
}
} // namespace

TEST(ChordalTest, EmptyAndSingletonAreChordal) {
  Graph Empty;
  EXPECT_TRUE(isChordal(Empty));
  Graph One(1);
  EXPECT_TRUE(isChordal(One));
}

TEST(ChordalTest, TriangleIsChordalC4IsNot) {
  Graph Triangle(3);
  Triangle.addEdge(0, 1);
  Triangle.addEdge(1, 2);
  Triangle.addEdge(2, 0);
  EXPECT_TRUE(isChordal(Triangle));

  Graph C4(4);
  C4.addEdge(0, 1);
  C4.addEdge(1, 2);
  C4.addEdge(2, 3);
  C4.addEdge(3, 0);
  EXPECT_FALSE(isChordal(C4));

  // Adding a chord makes it chordal again.
  C4.addEdge(0, 2);
  EXPECT_TRUE(isChordal(C4));
}

TEST(ChordalTest, C5IsNotChordal) {
  Graph C5(5);
  for (unsigned I = 0; I < 5; ++I)
    C5.addEdge(I, (I + 1) % 5);
  EXPECT_FALSE(isChordal(C5));
}

TEST(ChordalTest, Figure4GraphIsChordalWithExpectedPeo) {
  Graph G = figure5Graph();
  EXPECT_TRUE(isChordal(G));
  // The paper's example PEO [a, f, d, e, b, g, c] must validate.
  EliminationOrder PaperPeo =
      EliminationOrder::fromOrder({0, 5, 3, 4, 1, 6, 2});
  EXPECT_TRUE(isPerfectEliminationOrder(G, PaperPeo));
  // A clearly wrong order: eliminate d first (neighbors a,f,e,c are not a
  // clique: a-e missing).
  EliminationOrder Bad = EliminationOrder::fromOrder({3, 0, 5, 4, 1, 6, 2});
  EXPECT_FALSE(isPerfectEliminationOrder(G, Bad));
}

TEST(ChordalTest, McsAndLexBfsProducePeosOnRandomChordalGraphs) {
  Rng R(101);
  for (int Round = 0; Round < 30; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 10 + static_cast<unsigned>(R.nextBelow(50));
    Opt.TreeSize = 10 + static_cast<unsigned>(R.nextBelow(40));
    Graph G = randomChordalGraph(R, Opt);
    EXPECT_TRUE(isPerfectEliminationOrder(G, maximumCardinalitySearch(G)));
    EXPECT_TRUE(isPerfectEliminationOrder(G, lexBfs(G)));
  }
}

TEST(ChordalTest, McsDetectsNonChordalViaFailedPeo) {
  Rng R(202);
  unsigned NonChordalSeen = 0;
  for (int Round = 0; Round < 20; ++Round) {
    Graph G = randomGraph(R, 12, 0.3, 10);
    bool Chordal = isChordal(G);
    // Cross-check with a direct definition-based test: every cycle of
    // length 4 found as (a-b, b-c, c-d, d-a) without chords disproves
    // chordality.  We only verify one direction: if we find a chordless
    // 4-cycle, isChordal must have said false.
    bool FoundChordless4Cycle = false;
    for (VertexId A = 0; A < G.numVertices(); ++A)
      for (VertexId B : G.neighbors(A))
        for (VertexId C : G.neighbors(B))
          for (VertexId D : G.neighbors(C)) {
            if (A == C || B == D || A == D)
              continue;
            if (G.hasEdge(D, A) && !G.hasEdge(A, C) && !G.hasEdge(B, D))
              FoundChordless4Cycle = true;
          }
    if (FoundChordless4Cycle) {
      EXPECT_FALSE(Chordal);
      ++NonChordalSeen;
    }
  }
  EXPECT_GT(NonChordalSeen, 0u) << "test never exercised the negative case";
}

TEST(ChordalTest, MaximalCliquesMatchBronKerboschOnRandomChordalGraphs) {
  Rng R(303);
  for (int Round = 0; Round < 25; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 4 + static_cast<unsigned>(R.nextBelow(14));
    Opt.TreeSize = 4 + static_cast<unsigned>(R.nextBelow(12));
    Graph G = randomChordalGraph(R, Opt);
    EliminationOrder Peo = maximumCardinalitySearch(G);
    CliqueCover Cover = maximalCliquesChordal(G, Peo);

    std::vector<std::set<VertexId>> Reference = referenceMaximalCliques(G);
    std::set<std::set<VertexId>> RefSet(Reference.begin(), Reference.end());
    std::set<std::set<VertexId>> Got;
    for (const auto &K : Cover.Cliques)
      Got.insert(std::set<VertexId>(K.begin(), K.end()));
    EXPECT_EQ(Got, RefSet) << "round " << Round;
  }
}

TEST(ChordalTest, CliquesOfIndexIsConsistent) {
  Rng R(404);
  ChordalGenOptions Opt;
  Opt.NumVertices = 30;
  Graph G = randomChordalGraph(R, Opt);
  CliqueCover Cover = maximalCliquesChordal(G, maximumCardinalitySearch(G));
  for (VertexId V = 0; V < G.numVertices(); ++V) {
    EXPECT_FALSE(Cover.CliquesOf[V].empty());
    for (unsigned K : Cover.CliquesOf[V]) {
      const auto &Clique = Cover.Cliques[K];
      EXPECT_NE(std::find(Clique.begin(), Clique.end(), V), Clique.end());
    }
  }
}

TEST(ChordalTest, CliquesAreActuallyCliques) {
  Rng R(505);
  ChordalGenOptions Opt;
  Opt.NumVertices = 40;
  Graph G = randomChordalGraph(R, Opt);
  CliqueCover Cover = maximalCliquesChordal(G, maximumCardinalitySearch(G));
  for (const auto &K : Cover.Cliques)
    for (size_t A = 0; A < K.size(); ++A)
      for (size_t B = A + 1; B < K.size(); ++B)
        EXPECT_TRUE(G.hasEdge(K[A], K[B]));
}

TEST(ChordalTest, CliqueTreeIsValidOnRandomChordalGraphs) {
  Rng R(606);
  for (int Round = 0; Round < 25; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 5 + static_cast<unsigned>(R.nextBelow(60));
    Opt.TreeSize = 5 + static_cast<unsigned>(R.nextBelow(40));
    Graph G = randomChordalGraph(R, Opt);
    CliqueCover Cover = maximalCliquesChordal(G, maximumCardinalitySearch(G));
    CliqueTree Tree = buildCliqueTree(G, Cover);
    EXPECT_TRUE(isValidCliqueTree(G, Cover, Tree)) << "round " << Round;
  }
}

TEST(ChordalTest, CliqueTreeTopoOrderHasParentsFirst) {
  Rng R(707);
  ChordalGenOptions Opt;
  Opt.NumVertices = 30;
  Graph G = randomChordalGraph(R, Opt);
  CliqueCover Cover = maximalCliquesChordal(G, maximumCardinalitySearch(G));
  CliqueTree Tree = buildCliqueTree(G, Cover);
  std::vector<unsigned> Position(Cover.numCliques());
  for (unsigned I = 0; I < Tree.TopoOrder.size(); ++I)
    Position[Tree.TopoOrder[I]] = I;
  for (unsigned C = 0; C < Cover.numCliques(); ++C) {
    if (Tree.Parent[C] != ~0u) {
      EXPECT_LT(Position[Tree.Parent[C]], Position[C]);
    }
  }
}

TEST(ChordalTest, MaxCliqueSizeOfFigure4GraphIsThree) {
  Graph G = figure5Graph();
  CliqueCover Cover = maximalCliquesChordal(G, maximumCardinalitySearch(G));
  EXPECT_EQ(Cover.maxCliqueSize(), 3u);
  // Expected maximal cliques: {a,d,f}, {d,e,f}, {c,d,e}, {b,c,g}.
  EXPECT_EQ(Cover.numCliques(), 4u);
}

TEST(ChordalTest, IntervalGraphsAreChordal) {
  Rng R(808);
  for (int Round = 0; Round < 10; ++Round) {
    Graph G = randomIntervalGraph(R, 40, 100, 25, 50);
    EXPECT_TRUE(isChordal(G));
  }
}
