//===- tests/graph/GeneratorsTest.cpp - Graph generator tests -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Chordal.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(GeneratorsTest, ChordalByConstruction) {
  Rng R(31);
  for (int Round = 0; Round < 40; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 1 + static_cast<unsigned>(R.nextBelow(80));
    Opt.TreeSize = 1 + static_cast<unsigned>(R.nextBelow(60));
    Opt.SubtreeSpread = 0.05 + 0.5 * R.nextDouble();
    Graph G = randomChordalGraph(R, Opt);
    EXPECT_EQ(G.numVertices(), Opt.NumVertices);
    EXPECT_TRUE(isChordal(G)) << "round " << Round;
  }
}

TEST(GeneratorsTest, WeightsWithinBounds) {
  Rng R(32);
  ChordalGenOptions Opt;
  Opt.NumVertices = 60;
  Opt.MaxWeight = 17;
  Graph G = randomChordalGraph(R, Opt);
  for (VertexId V = 0; V < G.numVertices(); ++V) {
    EXPECT_GE(G.weight(V), 1);
    EXPECT_LE(G.weight(V), 17);
  }
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  ChordalGenOptions Opt;
  Opt.NumVertices = 25;
  Rng A(777), B(777);
  Graph G1 = randomChordalGraph(A, Opt);
  Graph G2 = randomChordalGraph(B, Opt);
  ASSERT_EQ(G1.numVertices(), G2.numVertices());
  EXPECT_EQ(G1.numEdges(), G2.numEdges());
  for (VertexId V = 0; V < G1.numVertices(); ++V) {
    EXPECT_EQ(G1.weight(V), G2.weight(V));
    EXPECT_EQ(G1.neighbors(V), G2.neighbors(V));
  }
}

TEST(GeneratorsTest, ErdosRenyiDensityTracksProbability) {
  Rng R(33);
  unsigned N = 60;
  Graph Sparse = randomGraph(R, N, 0.05, 10);
  Graph Dense = randomGraph(R, N, 0.5, 10);
  size_t MaxEdges = static_cast<size_t>(N) * (N - 1) / 2;
  EXPECT_LT(Sparse.numEdges(), MaxEdges / 8);
  EXPECT_GT(Dense.numEdges(), MaxEdges / 3);
}

TEST(GeneratorsTest, DenseRandomGraphsAreUsuallyNonChordal) {
  Rng R(34);
  unsigned NonChordal = 0;
  for (int Round = 0; Round < 10; ++Round)
    NonChordal += isChordal(randomGraph(R, 20, 0.3, 10)) ? 0 : 1;
  EXPECT_GE(NonChordal, 8u);
}

TEST(GeneratorsTest, IntervalGraphEdgesMatchOverlaps) {
  // Structural spot check: interval graphs are chordal and edge count is
  // plausible; full chordality is asserted in ChordalTest.
  Rng R(35);
  Graph G = randomIntervalGraph(R, 30, 60, 20, 9);
  EXPECT_EQ(G.numVertices(), 30u);
  EXPECT_TRUE(isChordal(G));
}
