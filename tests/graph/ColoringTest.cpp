//===- tests/graph/ColoringTest.cpp - Coloring tests ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Coloring.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(ColoringTest, GreedyColoringIsProper) {
  Rng R(10);
  Graph G = randomGraph(R, 30, 0.2, 10);
  std::vector<VertexId> Order;
  for (VertexId V = 0; V < G.numVertices(); ++V)
    Order.push_back(V);
  std::vector<unsigned> Colors = greedyColoring(G, Order);
  EXPECT_TRUE(isProperColoring(G, Colors));
  for (unsigned C : Colors)
    EXPECT_NE(C, kNoColor);
}

TEST(ColoringTest, ChordalColoringUsesMaxCliqueColors) {
  Rng R(20);
  for (int Round = 0; Round < 20; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 10 + static_cast<unsigned>(R.nextBelow(40));
    Graph G = randomChordalGraph(R, Opt);
    EliminationOrder Peo = maximumCardinalitySearch(G);
    CliqueCover Cover = maximalCliquesChordal(G, Peo);
    std::vector<unsigned> Colors = colorChordal(G, Peo);
    EXPECT_TRUE(isProperColoring(G, Colors));
    // Optimality on chordal graphs: #colors == clique number.
    EXPECT_EQ(numColorsUsed(Colors), Cover.maxCliqueSize()) << Round;
  }
}

TEST(ColoringTest, PartialSequenceLeavesRestUncolored) {
  Graph G(3);
  G.addEdge(0, 1);
  std::vector<unsigned> Colors = greedyColoring(G, {0, 1});
  EXPECT_NE(Colors[0], kNoColor);
  EXPECT_NE(Colors[1], kNoColor);
  EXPECT_EQ(Colors[2], kNoColor);
  EXPECT_NE(Colors[0], Colors[1]);
  EXPECT_TRUE(isProperColoring(G, Colors));
}

TEST(ColoringTest, NumColorsUsedOnEmpty) {
  EXPECT_EQ(numColorsUsed({}), 0u);
  EXPECT_EQ(numColorsUsed({kNoColor, kNoColor}), 0u);
}

TEST(ColoringTest, ImproperColoringDetected) {
  Graph G(2);
  G.addEdge(0, 1);
  EXPECT_FALSE(isProperColoring(G, {0u, 0u}));
  EXPECT_TRUE(isProperColoring(G, {0u, 1u}));
}
