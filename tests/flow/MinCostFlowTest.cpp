//===- tests/flow/MinCostFlowTest.cpp - Min-cost flow tests ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "flow/MinCostFlow.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(MinCostFlowTest, SingleArc) {
  MinCostFlow Net(2);
  Net.addArc(0, 1, 5, 3);
  auto R = Net.run(0, 1);
  EXPECT_EQ(R.Flow, 5);
  EXPECT_EQ(R.TotalCost, 15);
}

TEST(MinCostFlowTest, PrefersCheaperParallelPath) {
  // Two parallel 0->1 arcs: cheap cap 2, expensive cap 10.
  MinCostFlow Net(2);
  unsigned Cheap = Net.addArc(0, 1, 2, 1);
  unsigned Expensive = Net.addArc(0, 1, 10, 5);
  auto R = Net.run(0, 1, 4);
  EXPECT_EQ(R.Flow, 4);
  EXPECT_EQ(R.TotalCost, 2 * 1 + 2 * 5);
  EXPECT_EQ(Net.flowOn(Cheap), 2);
  EXPECT_EQ(Net.flowOn(Expensive), 2);
}

TEST(MinCostFlowTest, RespectsMaxFlowCap) {
  MinCostFlow Net(2);
  Net.addArc(0, 1, 100, 1);
  auto R = Net.run(0, 1, 7);
  EXPECT_EQ(R.Flow, 7);
  EXPECT_EQ(R.TotalCost, 7);
}

TEST(MinCostFlowTest, DisconnectedSinkGivesZeroFlow) {
  MinCostFlow Net(3);
  Net.addArc(0, 1, 4, 1);
  auto R = Net.run(0, 2);
  EXPECT_EQ(R.Flow, 0);
  EXPECT_EQ(R.TotalCost, 0);
}

TEST(MinCostFlowTest, BottleneckLimitsFlow) {
  // 0 -> 1 -> 2 with middle capacity 3.
  MinCostFlow Net(3);
  Net.addArc(0, 1, 10, 0);
  Net.addArc(1, 2, 3, 2);
  auto R = Net.run(0, 2);
  EXPECT_EQ(R.Flow, 3);
  EXPECT_EQ(R.TotalCost, 6);
}

TEST(MinCostFlowTest, NegativeCostArcsViaBellmanFordPotentials) {
  // Diamond where the negative-cost detour must be taken first.
  //   0 -> 1 (cap 1, cost -10), 1 -> 3 (cap 1, cost 1)
  //   0 -> 2 (cap 2, cost 2),   2 -> 3 (cap 2, cost 2)
  MinCostFlow Net(4);
  unsigned Detour = Net.addArc(0, 1, 1, -10);
  Net.addArc(1, 3, 1, 1);
  Net.addArc(0, 2, 2, 2);
  Net.addArc(2, 3, 2, 2);
  auto R = Net.run(0, 3, 2);
  EXPECT_EQ(R.Flow, 2);
  EXPECT_EQ(R.TotalCost, (-10 + 1) + (2 + 2));
  EXPECT_EQ(Net.flowOn(Detour), 1);
}

TEST(MinCostFlowTest, ChooseCheapestSubsetOfNegativeArcs) {
  // The interval-selection pattern: chain with cap 1 and two bypasses
  // competing for it; only the more negative one should be used.
  MinCostFlow Net(3);
  Net.addArc(0, 1, 1, 0);
  Net.addArc(1, 2, 1, 0);
  unsigned Weak = Net.addArc(0, 2, 1, -3);
  unsigned Strong = Net.addArc(0, 2, 1, -8);
  auto R = Net.run(0, 2, 1);
  EXPECT_EQ(R.Flow, 1);
  EXPECT_EQ(R.TotalCost, -8);
  EXPECT_EQ(Net.flowOn(Strong), 1);
  EXPECT_EQ(Net.flowOn(Weak), 0);
}
