//===- tests/ir/ParserTest.cpp - Textual IR parser tests ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Dominators.h"
#include "ir/Liveness.h"
#include "ir/LoopInfo.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(ParserTest, StraightLineFunction) {
  ParsedFunction P = parseFunction("function f {\n"
                                   "entry:\n"
                                   "  %a = op\n"
                                   "  %b = op %a\n"
                                   "  ret %b\n"
                                   "}\n");
  ASSERT_TRUE(P.Ok) << P.Error << " at line " << P.Line;
  EXPECT_EQ(P.F.name(), "f");
  EXPECT_EQ(P.F.numBlocks(), 1u);
  EXPECT_EQ(P.F.numValues(), 2u);
  ASSERT_EQ(P.F.block(0).Instrs.size(), 3u);
  EXPECT_EQ(P.F.block(0).Instrs[2].Op, Opcode::Return);
  EXPECT_TRUE(verifyFunction(P.F, /*ExpectSsa=*/true));
}

TEST(ParserTest, DiamondWithAnnotationsAndPhi) {
  ParsedFunction P = parseFunction(
      "function diamond {\n"
      "entry:  ; depth=0 freq=1\n"
      "  %c = op\n"
      "  br %c\n"
      "  ; succs=left,right\n"
      "left:  ; depth=0 freq=1 preds=entry\n"
      "  %x = op %c\n"
      "  br %x\n"
      "  ; succs=join\n"
      "right:  ; depth=0 freq=1 preds=entry\n"
      "  %y = op %c\n"
      "  br %y\n"
      "  ; succs=join\n"
      "join:  ; depth=0 freq=1 preds=left,right\n"
      "  %m = phi %x, %y\n"
      "  ret %m\n"
      "}\n");
  ASSERT_TRUE(P.Ok) << P.Error << " at line " << P.Line;
  ASSERT_EQ(P.F.numBlocks(), 4u);
  // Phi operand order must follow the preds order.
  const BasicBlock &Join = P.F.block(3);
  ASSERT_EQ(Join.Preds.size(), 2u);
  EXPECT_EQ(P.F.block(Join.Preds[0]).Name, "left");
  EXPECT_EQ(P.F.block(Join.Preds[1]).Name, "right");
  const Instruction &Phi = Join.Instrs[0];
  ASSERT_TRUE(Phi.isPhi());
  EXPECT_EQ(P.F.valueName(Phi.Uses[0]), "x");
  EXPECT_EQ(P.F.valueName(Phi.Uses[1]), "y");
  EXPECT_TRUE(verifyFunction(P.F, /*ExpectSsa=*/true));
}

TEST(ParserTest, LoopHeaderAnnotationsSurvive) {
  ParsedFunction P = parseFunction("function lp {\n"
                                   "entry:\n"
                                   "  %i0 = op\n"
                                   "  br %i0\n"
                                   "  ; succs=loop\n"
                                   "loop:  ; depth=1 freq=10 preds=entry,loop\n"
                                   "  %i = phi %i0, %i2\n"
                                   "  %i2 = op %i\n"
                                   "  br %i2\n"
                                   "  ; succs=loop,exit\n"
                                   "exit:  ; preds=loop\n"
                                   "  ret\n"
                                   "}\n");
  ASSERT_TRUE(P.Ok) << P.Error << " at line " << P.Line;
  EXPECT_EQ(P.F.block(1).LoopDepth, 1u);
  EXPECT_EQ(P.F.block(1).Frequency, 10);
  EXPECT_TRUE(verifyFunction(P.F, /*ExpectSsa=*/true));
}

TEST(ParserTest, SpillAnnotationsRoundTrip) {
  ParsedFunction P = parseFunction("function sp {\n"
                                   "entry:\n"
                                   "  %a = op\n"
                                   "  store %a [slot 3]\n"
                                   "  %t = load [slot 3]\n"
                                   "  %b = op [mem slot 1]\n"
                                   "  ret %t, %b\n"
                                   "}\n");
  ASSERT_TRUE(P.Ok) << P.Error << " at line " << P.Line;
  const std::vector<Instruction> &Is = P.F.block(0).Instrs;
  EXPECT_EQ(Is[1].SpillSlot, 3);
  EXPECT_EQ(Is[2].SpillSlot, 3);
  ASSERT_EQ(Is[3].MemUseSlots.size(), 1u);
  EXPECT_EQ(Is[3].MemUseSlots[0], 1);
}

TEST(ParserTest, UndefPhiOperand) {
  ParsedFunction P = parseFunction("function u {\n"
                                   "entry:\n"
                                   "  %a = op\n"
                                   "  br %a\n"
                                   "  ; succs=join,join2\n"
                                   "join:  ; preds=entry\n"
                                   "  %p = phi <undef>\n"
                                   "  ret %p\n"
                                   "join2:  ; preds=entry\n"
                                   "  ret\n"
                                   "}\n");
  ASSERT_TRUE(P.Ok) << P.Error << " at line " << P.Line;
  EXPECT_EQ(P.F.block(1).Instrs[0].Uses[0], kNoValue);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char *Text;
    const char *ExpectSubstring;
  };
  const Case Cases[] = {
      {"", "empty input"},
      {"function f {\n}\n", "no blocks"},
      {"function f {\nentry:\n  %a = op\n", "closing '}'"},
      {"function f {\nentry:\n  %a = frobnicate\n}\n", "unknown opcode"},
      {"function f {\nentry:\n  %a = op\n  ; succs=nowhere\n}\n",
       "unknown successor"},
      {"function f {\nentry:  ; preds=ghost\n  ret\n}\n",
       "unknown predecessor"},
      {"function f {\nentry:\n  %a = op trailing!\n}\n", "trailing"},
      {"function f {\nentry:  ; preds=entry\n  ret\n}\n",
       "no matching succs"},
  };
  for (const Case &C : Cases) {
    ParsedFunction P = parseFunction(C.Text);
    EXPECT_FALSE(P.Ok) << C.Text;
    EXPECT_NE(P.Error.find(C.ExpectSubstring), std::string::npos)
        << "got error: " << P.Error;
    EXPECT_GE(P.Line, 1u);
  }
}

TEST(ParserTest, MismatchedSuccsWithoutPreds) {
  ParsedFunction P = parseFunction("function f {\n"
                                   "a:\n"
                                   "  br %v\n"
                                   "  ; succs=b\n"
                                   "b:\n"
                                   "  ret\n"
                                   "}\n");
  // succs says a->b but b has no preds annotation: inconsistent.
  EXPECT_FALSE(P.Ok);
  EXPECT_NE(P.Error.find("missing from the target's preds"),
            std::string::npos)
      << P.Error;
}

namespace {
/// Generates, annotates and SSA-converts a random function.
Function randomSsaFunction(uint64_t Seed) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  Opt.NumVars = 14;
  Opt.MaxBlocks = 18;
  Function F = generateFunction(R, Opt);
  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  Loops.annotate(F);
  return convertToSsa(F).Ssa;
}
} // namespace

class ParserRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTrip, PrintParsePrintIsStable) {
  // print(parse(print(F))) must equal print(parse(...)) again: one parse
  // normalizes anonymous value numbering, after which the textual form is
  // a fixpoint.  The reparsed function must also stay verifiable and keep
  // the CFG/liveness structure.
  Function F = randomSsaFunction(GetParam());
  std::string First = F.toString();

  ParsedFunction P1 = parseFunction(First);
  ASSERT_TRUE(P1.Ok) << P1.Error << " at line " << P1.Line;
  ASSERT_TRUE(verifyFunction(P1.F, /*ExpectSsa=*/true));
  std::string Second = P1.F.toString();

  ParsedFunction P2 = parseFunction(Second);
  ASSERT_TRUE(P2.Ok) << P2.Error << " at line " << P2.Line;
  EXPECT_EQ(Second, P2.F.toString());

  // Structure is preserved exactly.
  ASSERT_EQ(F.numBlocks(), P1.F.numBlocks());
  EXPECT_EQ(F.numValues(), P1.F.numValues());
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    EXPECT_EQ(F.block(B).Preds.size(), P1.F.block(B).Preds.size());
    EXPECT_EQ(F.block(B).Succs.size(), P1.F.block(B).Succs.size());
    EXPECT_EQ(F.block(B).Frequency, P1.F.block(B).Frequency);
    ASSERT_EQ(F.block(B).Instrs.size(), P1.F.block(B).Instrs.size());
    for (size_t I = 0; I < F.block(B).Instrs.size(); ++I)
      EXPECT_EQ(F.block(B).Instrs[I].Op, P1.F.block(B).Instrs[I].Op);
  }
  Liveness LiveOrig(F), LiveParsed(P1.F);
  EXPECT_EQ(LiveOrig.maxLive(F), LiveParsed.maxLive(P1.F));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19,
                                           20));
