//===- tests/ir/ProgramGenTest.cpp - Program generator tests --------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/ProgramGen.h"

#include "ir/Dominators.h"
#include "ir/LoopInfo.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(ProgramGenTest, GeneratesVerifiedReachableFunctions) {
  Rng R(1);
  for (int Round = 0; Round < 50; ++Round) {
    ProgramGenOptions Opt;
    Opt.NumVars = 4 + static_cast<unsigned>(R.nextBelow(30));
    Opt.MaxBlocks = 6 + static_cast<unsigned>(R.nextBelow(60));
    Opt.MaxNesting = 1 + static_cast<unsigned>(R.nextBelow(4));
    Function F = generateFunction(R, Opt);
    std::string Error;
    ASSERT_TRUE(verifyFunction(F, false, &Error)) << Error;
    DominatorTree Dom(F);
    for (BlockId B = 0; B < F.numBlocks(); ++B)
      EXPECT_TRUE(Dom.isReachable(B)) << "round " << Round;
    EXPECT_LE(F.numBlocks(), Opt.MaxBlocks);
  }
}

TEST(ProgramGenTest, DeterministicGivenSeed) {
  ProgramGenOptions Opt;
  Rng A(99), B(99);
  Function F1 = generateFunction(A, Opt, "x");
  Function F2 = generateFunction(B, Opt, "x");
  EXPECT_EQ(F1.toString(), F2.toString());
}

TEST(ProgramGenTest, RespectsLooplessConfiguration) {
  Rng R(5);
  ProgramGenOptions Opt;
  Opt.LoopProb = 0.0;
  Opt.IfProb = 0.0;
  for (int Round = 0; Round < 10; ++Round) {
    Function F = generateFunction(R, Opt);
    DominatorTree Dom(F);
    LoopInfo Loops(F, Dom);
    EXPECT_TRUE(Loops.loops().empty());
  }
}

TEST(ProgramGenTest, LoopHeavyConfigurationsProduceLoops) {
  Rng R(6);
  ProgramGenOptions Opt;
  Opt.LoopProb = 0.8;
  Opt.IfProb = 0.1;
  Opt.MaxBlocks = 40;
  unsigned TotalLoops = 0;
  for (int Round = 0; Round < 10; ++Round) {
    Function F = generateFunction(R, Opt);
    DominatorTree Dom(F);
    LoopInfo Loops(F, Dom);
    TotalLoops += static_cast<unsigned>(Loops.loops().size());
  }
  EXPECT_GT(TotalLoops, 10u);
}

TEST(ProgramGenTest, LoopDepthRespectsNestingBound) {
  Rng R(7);
  ProgramGenOptions Opt;
  Opt.LoopProb = 0.7;
  Opt.IfProb = 0.0;
  Opt.MaxNesting = 2;
  Opt.MaxBlocks = 60;
  for (int Round = 0; Round < 10; ++Round) {
    Function F = generateFunction(R, Opt);
    DominatorTree Dom(F);
    LoopInfo Loops(F, Dom);
    Loops.annotate(F);
    for (BlockId B = 0; B < F.numBlocks(); ++B)
      EXPECT_LE(F.block(B).LoopDepth, Opt.MaxNesting);
  }
}

TEST(ProgramGenTest, FrequenciesFollowLoopDepth) {
  Rng R(8);
  ProgramGenOptions Opt;
  Opt.LoopProb = 0.6;
  Opt.MaxBlocks = 40;
  Function F = generateFunction(R, Opt);
  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  Loops.annotate(F, /*FreqBase=*/10);
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    Weight Expected = 1;
    for (unsigned D = 0; D < F.block(B).LoopDepth; ++D)
      Expected *= 10;
    EXPECT_EQ(F.block(B).Frequency, Expected);
  }
}

TEST(ProgramGenTest, NonSsaRedefinitionsArePresent) {
  // The generator must produce multiple defs per variable, otherwise the
  // "general graph" evaluation would silently degenerate to SSA.
  Rng R(9);
  ProgramGenOptions Opt;
  Opt.NumVars = 10;
  Opt.MaxBlocks = 40;
  Function F = generateFunction(R, Opt);
  std::vector<unsigned> Defs(F.numValues(), 0);
  for (BlockId B = 0; B < F.numBlocks(); ++B)
    for (const Instruction &I : F.block(B).Instrs)
      for (ValueId V : I.Defs)
        ++Defs[V];
  unsigned MultiDef = 0;
  for (unsigned D : Defs)
    MultiDef += D > 1 ? 1 : 0;
  EXPECT_GT(MultiDef, 2u);
}
