//===- tests/ir/SsaTest.cpp - SSA construction tests ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/SsaBuilder.h"

#include "IrTestHelpers.h"
#include "graph/Chordal.h"
#include "ir/Interference.h"
#include "ir/Liveness.h"
#include "ir/ProgramGen.h"
#include "ir/Target.h"

#include <gtest/gtest.h>

using namespace layra;
using namespace layra::irtest;

TEST(SsaTest, StraightLineNeedsNoPhis) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a");
  op(F, B, A);
  op(F, B, A, {A}); // Redefinition.
  ret(F, B, {A});

  SsaConversion Conv = convertToSsa(F);
  EXPECT_EQ(Conv.NumPhis, 0u);
  EXPECT_TRUE(verifyFunction(Conv.Ssa, /*ExpectSsa=*/true));
  // The two defs of a became two values mapping back to a.
  EXPECT_EQ(Conv.Ssa.numValues(), 2u);
  EXPECT_EQ(Conv.OriginalOf[0], A);
  EXPECT_EQ(Conv.OriginalOf[1], A);
}

TEST(SsaTest, DiamondRedefinitionInsertsOnePhi) {
  // x defined in both arms, used at the merge: exactly one phi at merge.
  Function F("f");
  BlockId Entry = F.makeBlock(), Left = F.makeBlock(),
          Right = F.makeBlock(), Merge = F.makeBlock();
  ValueId C = F.makeValue("c"), X = F.makeValue("x");
  op(F, Entry, C);
  br(F, Entry, C);
  op(F, Left, X, {C});
  br(F, Left, C);
  op(F, Right, X, {C});
  br(F, Right, C);
  ret(F, Merge, {X});
  F.addEdge(Entry, Left);
  F.addEdge(Entry, Right);
  F.addEdge(Left, Merge);
  F.addEdge(Right, Merge);

  SsaConversion Conv = convertToSsa(F);
  EXPECT_EQ(Conv.NumPhis, 1u);
  EXPECT_TRUE(verifyFunction(Conv.Ssa, /*ExpectSsa=*/true));
  const Instruction &Phi = Conv.Ssa.block(Merge).Instrs.front();
  ASSERT_TRUE(Phi.isPhi());
  ASSERT_EQ(Phi.Uses.size(), 2u);
  EXPECT_NE(Phi.Uses[0], Phi.Uses[1]);
  // All phi inputs rename x.
  EXPECT_EQ(Conv.OriginalOf[Phi.Uses[0]], X);
  EXPECT_EQ(Conv.OriginalOf[Phi.Uses[1]], X);
}

TEST(SsaTest, PrunedSsaSkipsDeadPhis) {
  // x redefined in both arms but never used after the merge: no phi.
  Function F("f");
  BlockId Entry = F.makeBlock(), Left = F.makeBlock(),
          Right = F.makeBlock(), Merge = F.makeBlock();
  ValueId C = F.makeValue("c"), X = F.makeValue("x");
  op(F, Entry, C);
  br(F, Entry, C);
  op(F, Left, X, {C});
  br(F, Left, C);
  op(F, Right, X, {C});
  br(F, Right, C);
  ret(F, Merge, {C});
  F.addEdge(Entry, Left);
  F.addEdge(Entry, Right);
  F.addEdge(Left, Merge);
  F.addEdge(Right, Merge);

  SsaConversion Conv = convertToSsa(F);
  EXPECT_EQ(Conv.NumPhis, 0u);
}

TEST(SsaTest, LoopVariableGetsHeaderPhi) {
  // do { i = op i } while (...): i needs a phi at the loop header.
  Function F("f");
  BlockId Entry = F.makeBlock(), Body = F.makeBlock(), Exit = F.makeBlock();
  ValueId I = F.makeValue("i");
  op(F, Entry, I);
  br(F, Entry, I);
  op(F, Body, I, {I});
  br(F, Body, I);
  ret(F, Exit, {I});
  F.addEdge(Entry, Body);
  F.addEdge(Body, Body);
  F.addEdge(Body, Exit);

  SsaConversion Conv = convertToSsa(F);
  EXPECT_EQ(Conv.NumPhis, 1u);
  EXPECT_TRUE(verifyFunction(Conv.Ssa, /*ExpectSsa=*/true));
  EXPECT_TRUE(Conv.Ssa.block(Body).Instrs.front().isPhi());
}

TEST(SsaTest, GeneratedProgramsConvertToValidSsa) {
  Rng R(1234);
  for (int Round = 0; Round < 25; ++Round) {
    ProgramGenOptions Opt;
    Opt.NumVars = 6 + static_cast<unsigned>(R.nextBelow(20));
    Opt.MaxBlocks = 8 + static_cast<unsigned>(R.nextBelow(40));
    Function F = generateFunction(R, Opt);
    SsaConversion Conv = convertToSsa(F);
    std::string Error;
    EXPECT_TRUE(verifyFunction(Conv.Ssa, /*ExpectSsa=*/true, &Error))
        << "round " << Round << ": " << Error;
    // Every SSA value renames exactly one def of the original function.
    unsigned NumDefs = 0;
    for (BlockId B = 0; B < F.numBlocks(); ++B)
      for (const Instruction &I : F.block(B).Instrs)
        NumDefs += static_cast<unsigned>(I.Defs.size());
    EXPECT_EQ(Conv.Ssa.numValues(), NumDefs + Conv.NumPhis);
  }
}

TEST(SsaTest, SsaInterferenceGraphsAreChordal) {
  // The paper's foundational fact (§3.2): interference graphs of strict SSA
  // programs are chordal.  Exercise it over many random programs.
  Rng R(5678);
  unsigned TotalVertices = 0;
  for (int Round = 0; Round < 25; ++Round) {
    ProgramGenOptions Opt;
    Opt.NumVars = 6 + static_cast<unsigned>(R.nextBelow(18));
    Opt.MaxBlocks = 8 + static_cast<unsigned>(R.nextBelow(32));
    Function F = generateFunction(R, Opt);
    SsaConversion Conv = convertToSsa(F);
    Liveness Live(Conv.Ssa);
    std::vector<Weight> Costs = computeSpillCosts(Conv.Ssa, ST231);
    InterferenceInfo Info = buildInterference(Conv.Ssa, Live, Costs);
    EXPECT_TRUE(isChordal(Info.G)) << "round " << Round;
    TotalVertices += Info.G.numVertices();
  }
  EXPECT_GT(TotalVertices, 500u) << "instances too small to be meaningful";
}

TEST(SsaTest, OriginalOfMapsEveryNewValue) {
  Rng R(999);
  ProgramGenOptions Opt;
  Function F = generateFunction(R, Opt);
  SsaConversion Conv = convertToSsa(F);
  ASSERT_EQ(Conv.OriginalOf.size(), Conv.Ssa.numValues());
  for (ValueId V : Conv.OriginalOf)
    EXPECT_LT(V, F.numValues());
}
