//===- tests/ir/DominatorsTest.cpp - Dominator tree tests -----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include "IrTestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace layra;
using namespace layra::irtest;

namespace {
/// Diamond: entry -> {left, right} -> merge.
struct Diamond {
  Function F{"diamond"};
  BlockId Entry, Left, Right, Merge;
  ValueId C;

  Diamond() {
    Entry = F.makeBlock("entry");
    Left = F.makeBlock("left");
    Right = F.makeBlock("right");
    Merge = F.makeBlock("merge");
    C = F.makeValue("c");
    op(F, Entry, C);
    br(F, Entry, C);
    br(F, Left, C);
    br(F, Right, C);
    ret(F, Merge, {C});
    F.addEdge(Entry, Left);
    F.addEdge(Entry, Right);
    F.addEdge(Left, Merge);
    F.addEdge(Right, Merge);
  }
};
} // namespace

TEST(DominatorsTest, DiamondIdoms) {
  Diamond D;
  DominatorTree Dom(D.F);
  EXPECT_EQ(Dom.idom(D.Left), D.Entry);
  EXPECT_EQ(Dom.idom(D.Right), D.Entry);
  EXPECT_EQ(Dom.idom(D.Merge), D.Entry); // Not left or right.
  EXPECT_EQ(Dom.idom(D.Entry), kNoBlock);
}

TEST(DominatorsTest, DominatesIsReflexiveAndRespectsPaths) {
  Diamond D;
  DominatorTree Dom(D.F);
  EXPECT_TRUE(Dom.dominates(D.Entry, D.Merge));
  EXPECT_TRUE(Dom.dominates(D.Left, D.Left));
  EXPECT_FALSE(Dom.dominates(D.Left, D.Merge));
  EXPECT_FALSE(Dom.dominates(D.Merge, D.Entry));
}

TEST(DominatorsTest, DiamondFrontiers) {
  Diamond D;
  DominatorTree Dom(D.F);
  // Left and Right have frontier {Merge}; Entry and Merge have none.
  EXPECT_EQ(Dom.dominanceFrontier(D.Left), std::vector<BlockId>{D.Merge});
  EXPECT_EQ(Dom.dominanceFrontier(D.Right), std::vector<BlockId>{D.Merge});
  EXPECT_TRUE(Dom.dominanceFrontier(D.Entry).empty());
  EXPECT_TRUE(Dom.dominanceFrontier(D.Merge).empty());
}

TEST(DominatorsTest, LoopHeaderDominatesBodyAndIsInOwnFrontier) {
  // entry -> header; header -> body -> header (back edge); header -> exit.
  Function F("loop");
  BlockId Entry = F.makeBlock("entry");
  BlockId Header = F.makeBlock("header");
  BlockId Body = F.makeBlock("body");
  BlockId Exit = F.makeBlock("exit");
  ValueId C = F.makeValue("c");
  op(F, Entry, C);
  br(F, Entry, C);
  br(F, Header, C);
  br(F, Body, C);
  ret(F, Exit, {C});
  F.addEdge(Entry, Header);
  F.addEdge(Header, Body);
  F.addEdge(Header, Exit);
  F.addEdge(Body, Header);

  DominatorTree Dom(F);
  EXPECT_TRUE(Dom.dominates(Header, Body));
  EXPECT_TRUE(Dom.dominates(Header, Exit));
  EXPECT_EQ(Dom.idom(Body), Header);
  // The back edge puts Header into its own frontier and Body's frontier.
  std::vector<BlockId> HeaderFrontier = Dom.dominanceFrontier(Header);
  EXPECT_NE(std::find(HeaderFrontier.begin(), HeaderFrontier.end(), Header),
            HeaderFrontier.end());
  std::vector<BlockId> BodyFrontier = Dom.dominanceFrontier(Body);
  EXPECT_EQ(BodyFrontier, std::vector<BlockId>{Header});
}

TEST(DominatorsTest, UnreachableBlocksAreReported) {
  Function F("unreach");
  BlockId Entry = F.makeBlock();
  BlockId Orphan = F.makeBlock();
  ValueId C = F.makeValue();
  op(F, Entry, C);
  ret(F, Entry, {C});
  ret(F, Orphan, {});
  DominatorTree Dom(F);
  EXPECT_TRUE(Dom.isReachable(Entry));
  EXPECT_FALSE(Dom.isReachable(Orphan));
}

TEST(DominatorsTest, ReversePostOrderStartsAtEntryAndRespectsEdges) {
  Diamond D;
  DominatorTree Dom(D.F);
  const std::vector<BlockId> &Rpo = Dom.reversePostOrder();
  ASSERT_EQ(Rpo.size(), 4u);
  EXPECT_EQ(Rpo.front(), D.Entry);
  EXPECT_EQ(Rpo.back(), D.Merge);
}

TEST(DominatorsTest, DomTreePreorderVisitsParentBeforeChild) {
  Diamond D;
  DominatorTree Dom(D.F);
  std::vector<BlockId> Pre = Dom.domTreePreorder();
  ASSERT_EQ(Pre.size(), 4u);
  EXPECT_EQ(Pre.front(), D.Entry);
  std::vector<unsigned> Pos(4);
  for (unsigned I = 0; I < Pre.size(); ++I)
    Pos[Pre[I]] = I;
  for (BlockId B : {D.Left, D.Right, D.Merge})
    EXPECT_LT(Pos[Dom.idom(B)], Pos[B]);
}
