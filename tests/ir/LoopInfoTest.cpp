//===- tests/ir/LoopInfoTest.cpp - Loop detection tests -------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/LoopInfo.h"

#include "IrTestHelpers.h"

#include <gtest/gtest.h>

using namespace layra;
using namespace layra::irtest;

TEST(LoopInfoTest, StraightLineHasNoLoops) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId V = F.makeValue();
  op(F, B, V);
  ret(F, B, {V});
  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  EXPECT_TRUE(Loops.loops().empty());
  EXPECT_EQ(Loops.depth(B), 0u);
}

TEST(LoopInfoTest, SimpleLoopDetected) {
  Function F("f");
  BlockId Entry = F.makeBlock(), Body = F.makeBlock(), Exit = F.makeBlock();
  ValueId V = F.makeValue();
  op(F, Entry, V);
  br(F, Entry, V);
  br(F, Body, V);
  ret(F, Exit, {V});
  F.addEdge(Entry, Body);
  F.addEdge(Body, Body); // Self loop.
  F.addEdge(Body, Exit);

  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  ASSERT_EQ(Loops.loops().size(), 1u);
  EXPECT_EQ(Loops.loops()[0].Header, Body);
  EXPECT_EQ(Loops.depth(Body), 1u);
  EXPECT_EQ(Loops.depth(Entry), 0u);
  EXPECT_EQ(Loops.depth(Exit), 0u);
}

TEST(LoopInfoTest, NestedLoopsAccumulateDepth) {
  // entry -> outer; outer -> inner; inner -> inner (self);
  // inner -> outerLatch; outerLatch -> outer (back); outerLatch -> exit.
  Function F("f");
  BlockId Entry = F.makeBlock("entry"), Outer = F.makeBlock("outer"),
          Inner = F.makeBlock("inner"), Latch = F.makeBlock("latch"),
          Exit = F.makeBlock("exit");
  ValueId V = F.makeValue();
  op(F, Entry, V);
  br(F, Entry, V);
  br(F, Outer, V);
  br(F, Inner, V);
  br(F, Latch, V);
  ret(F, Exit, {V});
  F.addEdge(Entry, Outer);
  F.addEdge(Outer, Inner);
  F.addEdge(Inner, Inner);
  F.addEdge(Inner, Latch);
  F.addEdge(Latch, Outer);
  F.addEdge(Latch, Exit);

  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  EXPECT_EQ(Loops.loops().size(), 2u);
  EXPECT_EQ(Loops.depth(Inner), 2u); // In both loops.
  EXPECT_EQ(Loops.depth(Outer), 1u);
  EXPECT_EQ(Loops.depth(Latch), 1u);
  EXPECT_EQ(Loops.depth(Exit), 0u);

  LoopInfo(F, Dom).annotate(F, 10);
  EXPECT_EQ(F.block(Inner).Frequency, 100);
  EXPECT_EQ(F.block(Outer).Frequency, 10);
  EXPECT_EQ(F.block(Exit).Frequency, 1);
}

TEST(LoopInfoTest, FrequencySaturatesAtMaxDepth) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId V = F.makeValue();
  op(F, B, V);
  ret(F, B, {V});
  F.block(B).LoopDepth = 0;
  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  Loops.annotate(F, 10, /*MaxDepth=*/2);
  EXPECT_EQ(F.block(B).Frequency, 1);
}

TEST(LoopInfoTest, MultipleLatchesMergeIntoOneLoop) {
  // Two back edges to the same header form one loop (Chaitin-style
  // natural-loop merging).
  Function F("f");
  BlockId Entry = F.makeBlock(), Header = F.makeBlock(),
          LatchA = F.makeBlock(), LatchB = F.makeBlock(),
          Exit = F.makeBlock();
  ValueId V = F.makeValue();
  op(F, Entry, V);
  br(F, Entry, V);
  br(F, Header, V);
  br(F, LatchA, V);
  br(F, LatchB, V);
  ret(F, Exit, {V});
  F.addEdge(Entry, Header);
  F.addEdge(Header, LatchA);
  F.addEdge(Header, LatchB);
  F.addEdge(LatchA, Header);
  F.addEdge(LatchB, Header);
  F.addEdge(LatchA, Exit);

  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  ASSERT_EQ(Loops.loops().size(), 1u);
  EXPECT_EQ(Loops.depth(Header), 1u);
  EXPECT_EQ(Loops.depth(LatchA), 1u);
  EXPECT_EQ(Loops.depth(LatchB), 1u);
}
