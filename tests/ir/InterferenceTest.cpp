//===- tests/ir/InterferenceTest.cpp - Interference builder tests ---------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Interference.h"

#include "IrTestHelpers.h"
#include "graph/Chordal.h"
#include "ir/LoopInfo.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace layra;
using namespace layra::irtest;

TEST(InterferenceTest, OverlappingValuesInterfere) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), Bv = F.makeValue("b"), C = F.makeValue("c");
  op(F, B, A);
  op(F, B, Bv);          // a live here -> a-b edge.
  op(F, B, C, {A, Bv});  // a, b live here -> c-a, c-b? (a,b die here)
  ret(F, B, {C});

  Liveness Live(F);
  std::vector<Weight> Costs(F.numValues(), 1);
  InterferenceInfo Info = buildInterference(F, Live, Costs);
  EXPECT_TRUE(Info.G.hasEdge(A, Bv));
  // c is born as a and b die: no interference with either.
  EXPECT_FALSE(Info.G.hasEdge(A, C));
  EXPECT_FALSE(Info.G.hasEdge(Bv, C));
  EXPECT_EQ(Info.MaxLive, 2u);
}

TEST(InterferenceTest, SpillCostsWeightedByFrequency) {
  // One access in the entry (freq 1), the loop body accesses x twice per
  // iteration (freq 10 after annotation).
  Function F("f");
  BlockId Entry = F.makeBlock(), Body = F.makeBlock(), Exit = F.makeBlock();
  ValueId X = F.makeValue("x"), T = F.makeValue("t");
  op(F, Entry, X);
  br(F, Entry, X);
  op(F, Body, T, {X, X});
  br(F, Body, T);
  ret(F, Exit, {X});
  F.addEdge(Entry, Body);
  F.addEdge(Body, Body);
  F.addEdge(Body, Exit);

  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  Loops.annotate(F);
  ASSERT_EQ(F.block(Body).Frequency, 10);

  std::vector<Weight> Costs = computeSpillCosts(F, ST231);
  // x: def in entry (store, freq 1) + branch use in entry (load, freq 1)
  //    + 2 uses in body (loads, freq 10) + 1 use in exit (load, freq 1).
  EXPECT_EQ(Costs[X], ST231.StoreCost * 1 + ST231.LoadCost * 1 +
                          ST231.LoadCost * 20 + ST231.LoadCost * 1);
  // t: def (store) + use (branch) in body at freq 10.
  EXPECT_EQ(Costs[T], ST231.StoreCost * 10 + ST231.LoadCost * 10);
}

TEST(InterferenceTest, PhiDefsInterfereWithLiveIns) {
  Function F("f");
  BlockId Entry = F.makeBlock(), Left = F.makeBlock(),
          Right = F.makeBlock(), Merge = F.makeBlock();
  ValueId C = F.makeValue("c"), L = F.makeValue("l"), R = F.makeValue("r"),
          M = F.makeValue("m");
  op(F, Entry, C);
  br(F, Entry, C);
  op(F, Left, L);
  br(F, Left, L);
  op(F, Right, R);
  br(F, Right, R);
  F.addEdge(Entry, Left);
  F.addEdge(Entry, Right);
  F.addEdge(Left, Merge);
  F.addEdge(Right, Merge);
  phi(F, Merge, M, {L, R});
  ret(F, Merge, {M, C}); // c is live across both arms and the phi.
  ASSERT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));

  Liveness Live(F);
  std::vector<Weight> Costs(F.numValues(), 1);
  InterferenceInfo Info = buildInterference(F, Live, Costs);
  EXPECT_TRUE(Info.G.hasEdge(M, C));  // Phi def vs live-through value.
  EXPECT_TRUE(Info.G.hasEdge(L, C));
  EXPECT_TRUE(Info.G.hasEdge(R, C));
  EXPECT_FALSE(Info.G.hasEdge(L, R)); // Different arms never overlap.
  EXPECT_FALSE(Info.G.hasEdge(M, L)); // Phi kills its operand.
}

TEST(InterferenceTest, PointLiveSetsAreCliques) {
  Rng Rand(4242);
  for (int Round = 0; Round < 15; ++Round) {
    ProgramGenOptions Opt;
    Opt.NumVars = 8 + static_cast<unsigned>(Rand.nextBelow(16));
    Function F = generateFunction(Rand, Opt);
    SsaConversion Conv = convertToSsa(F);
    Liveness Live(Conv.Ssa);
    std::vector<Weight> Costs = computeSpillCosts(Conv.Ssa, ST231);
    InterferenceInfo Info = buildInterference(Conv.Ssa, Live, Costs);
    for (const auto &Set : Info.PointLiveSets)
      for (size_t I = 0; I < Set.size(); ++I)
        for (size_t J = I + 1; J < Set.size(); ++J)
          EXPECT_TRUE(Info.G.hasEdge(Set[I], Set[J]))
              << "round " << Round << " non-clique live set";
  }
}

TEST(InterferenceTest, MaximalCliquesAppearAmongPointLiveSets) {
  // Paper §3.2: on SSA graphs, maximal cliques == maximal live sets.
  Rng Rand(777);
  for (int Round = 0; Round < 10; ++Round) {
    ProgramGenOptions Opt;
    Opt.NumVars = 8 + static_cast<unsigned>(Rand.nextBelow(12));
    Function F = generateFunction(Rand, Opt);
    SsaConversion Conv = convertToSsa(F);
    Liveness Live(Conv.Ssa);
    std::vector<Weight> Costs = computeSpillCosts(Conv.Ssa, ST231);
    InterferenceInfo Info = buildInterference(Conv.Ssa, Live, Costs);

    std::set<std::vector<VertexId>> PointSets(Info.PointLiveSets.begin(),
                                              Info.PointLiveSets.end());
    CliqueCover Cover =
        maximalCliquesChordal(Info.G, maximumCardinalitySearch(Info.G));
    for (auto Clique : Cover.Cliques) {
      std::sort(Clique.begin(), Clique.end());
      EXPECT_TRUE(PointSets.count(Clique))
          << "round " << Round << ": maximal clique not a live set";
    }
    EXPECT_EQ(Cover.maxCliqueSize(), Info.MaxLive) << "round " << Round;
  }
}

TEST(InterferenceTest, MinRegistersTracksWidestInstruction) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue(), Bv = F.makeValue(), C = F.makeValue(),
          D = F.makeValue();
  op(F, B, A);
  op(F, B, Bv);
  op(F, B, C);
  op(F, B, D, {A, Bv, C}); // 3 uses + 1 def.
  ret(F, B, {D});
  Liveness Live(F);
  std::vector<Weight> Costs(F.numValues(), 1);
  InterferenceInfo Info = buildInterference(F, Live, Costs);
  EXPECT_EQ(Info.MinRegisters, 4u);
}
