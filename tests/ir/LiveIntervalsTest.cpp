//===- tests/ir/LiveIntervalsTest.cpp - Live interval tests ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/LiveIntervals.h"

#include "IrTestHelpers.h"
#include "ir/ProgramGen.h"
#include "ir/Target.h"
#include "ir/Interference.h"

#include <gtest/gtest.h>

using namespace layra;
using namespace layra::irtest;

TEST(LiveIntervalsTest, StraightLineIntervals) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), Bv = F.makeValue("b"), C = F.makeValue("c");
  op(F, B, A);          // point 1
  op(F, B, Bv);         // point 2
  op(F, B, C, {A, Bv}); // point 3
  ret(F, B, {C});       // point 4

  Liveness Live(F);
  std::vector<Weight> Costs(F.numValues(), 1);
  LiveIntervalTable Table = computeLiveIntervals(F, Live, Costs);
  ASSERT_EQ(Table.Intervals.size(), 3u);
  // Sorted by start: a [1,3], b [2,3], c [3,4].
  EXPECT_EQ(Table.Intervals[0].V, A);
  EXPECT_EQ(Table.Intervals[0].Start, 1u);
  EXPECT_EQ(Table.Intervals[0].End, 3u);
  EXPECT_EQ(Table.Intervals[1].V, Bv);
  EXPECT_EQ(Table.Intervals[2].V, C);
  EXPECT_EQ(Table.Intervals[2].End, 4u);
  EXPECT_EQ(Table.maxOverlap(), 3u); // At point 3 all three touch.
}

TEST(LiveIntervalsTest, IntervalsCoverBlockBoundaries) {
  Function F("f");
  BlockId Entry = F.makeBlock(), Next = F.makeBlock();
  ValueId A = F.makeValue("a"), C = F.makeValue("c");
  op(F, Entry, A);
  br(F, Entry, A);
  op(F, Next, C, {A});
  ret(F, Next, {C});
  F.addEdge(Entry, Next);

  Liveness Live(F);
  std::vector<Weight> Costs(F.numValues(), 1);
  LiveIntervalTable Table = computeLiveIntervals(F, Live, Costs);
  // a spans from its def in entry into the next block.
  const LiveInterval &IA = Table.Intervals[0];
  EXPECT_EQ(IA.V, A);
  EXPECT_LT(IA.Start, Table.BlockStart[Next]);
  EXPECT_GT(IA.End, Table.BlockStart[Next]);
}

TEST(LiveIntervalsTest, FlatteningCoversHoles) {
  // Classic linear-scan conservatism: a value dead across a region still
  // occupies its flattened interval there.  v defined in entry, unused in a
  // long middle block, used in exit: the interval covers the middle.
  Function F("f");
  BlockId Entry = F.makeBlock(), Mid = F.makeBlock(), Exit = F.makeBlock();
  ValueId V = F.makeValue("v"), T = F.makeValue("t");
  op(F, Entry, V);
  br(F, Entry, V);
  op(F, Mid, T);
  br(F, Mid, T);
  ret(F, Exit, {V});
  F.addEdge(Entry, Mid);
  F.addEdge(Mid, Exit);

  Liveness Live(F);
  std::vector<Weight> Costs(F.numValues(), 1);
  LiveIntervalTable Table = computeLiveIntervals(F, Live, Costs);
  const LiveInterval *IV = nullptr;
  for (const LiveInterval &I : Table.Intervals)
    if (I.V == V)
      IV = &I;
  ASSERT_NE(IV, nullptr);
  // Covers the middle block entirely.
  EXPECT_LE(IV->Start, Table.BlockStart[Mid]);
  EXPECT_GE(IV->End, Table.BlockStart[Exit]);
  // And overlaps t even though they are never simultaneously live.
  for (const LiveInterval &I : Table.Intervals)
    if (I.V == T) {
      EXPECT_TRUE(IV->overlaps(I));
    }
}

TEST(LiveIntervalsTest, MaxOverlapUpperBoundsMaxLive) {
  // Flattened intervals over-approximate liveness, so interval pressure is
  // always >= MaxLive.
  Rng R(31415);
  for (int Round = 0; Round < 15; ++Round) {
    ProgramGenOptions Opt;
    Opt.NumVars = 8 + static_cast<unsigned>(R.nextBelow(16));
    Function F = generateFunction(R, Opt);
    Liveness Live(F);
    std::vector<Weight> Costs = computeSpillCosts(F, ST231);
    InterferenceInfo Info = buildInterference(F, Live, Costs);
    LiveIntervalTable Table = computeLiveIntervals(F, Live, Costs);
    EXPECT_GE(Table.maxOverlap(), Info.MaxLive) << "round " << Round;
  }
}

TEST(LiveIntervalsTest, SortedByStart) {
  Rng R(27182);
  ProgramGenOptions Opt;
  Function F = generateFunction(R, Opt);
  Liveness Live(F);
  std::vector<Weight> Costs = computeSpillCosts(F, ST231);
  LiveIntervalTable Table = computeLiveIntervals(F, Live, Costs);
  for (size_t I = 1; I < Table.Intervals.size(); ++I)
    EXPECT_LE(Table.Intervals[I - 1].Start, Table.Intervals[I].Start);
}
