//===- tests/ir/IrTestHelpers.h - Hand-built IR helpers ---------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#ifndef LAYRA_TESTS_IR_IRTESTHELPERS_H
#define LAYRA_TESTS_IR_IRTESTHELPERS_H

#include "ir/Program.h"

#include <vector>

namespace layra {
namespace irtest {

/// Appends `Def = op Uses...` to block \p B.
inline void op(Function &F, BlockId B, ValueId Def,
               std::vector<ValueId> Uses = {}) {
  Instruction I;
  I.Op = Opcode::Op;
  I.Defs.push_back(Def);
  I.Uses = std::move(Uses);
  F.block(B).Instrs.push_back(std::move(I));
}

/// Appends `Def = copy Src`.
inline void copy(Function &F, BlockId B, ValueId Def, ValueId Src) {
  Instruction I;
  I.Op = Opcode::Copy;
  I.Defs.push_back(Def);
  I.Uses.push_back(Src);
  F.block(B).Instrs.push_back(std::move(I));
}

/// Appends a phi defining \p Def; operand count must equal the block's
/// predecessor count at the time of the call.
inline void phi(Function &F, BlockId B, ValueId Def,
                std::vector<ValueId> Incoming) {
  Instruction I;
  I.Op = Opcode::Phi;
  I.Defs.push_back(Def);
  I.Uses = std::move(Incoming);
  F.block(B).Instrs.push_back(std::move(I));
}

/// Appends a branch terminator using \p Cond.
inline void br(Function &F, BlockId B, ValueId Cond) {
  Instruction I;
  I.Op = Opcode::Branch;
  I.Uses.push_back(Cond);
  F.block(B).Instrs.push_back(std::move(I));
}

/// Appends a return terminator using \p Values.
inline void ret(Function &F, BlockId B, std::vector<ValueId> Values = {}) {
  Instruction I;
  I.Op = Opcode::Return;
  I.Uses = std::move(Values);
  F.block(B).Instrs.push_back(std::move(I));
}

} // namespace irtest
} // namespace layra

#endif // LAYRA_TESTS_IR_IRTESTHELPERS_H
