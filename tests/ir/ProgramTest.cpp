//===- tests/ir/ProgramTest.cpp - IR and verifier tests -------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "IrTestHelpers.h"

#include <gtest/gtest.h>

using namespace layra;
using namespace layra::irtest;

namespace {
/// Straight-line a = op; b = op a; ret b.
Function straightLine() {
  Function F("straight");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), Bv = F.makeValue("b");
  op(F, B, A);
  op(F, B, Bv, {A});
  ret(F, B, {Bv});
  return F;
}
} // namespace

TEST(ProgramTest, StraightLineVerifies) {
  Function F = straightLine();
  std::string Error;
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true, &Error)) << Error;
}

TEST(ProgramTest, EmptyFunctionFailsVerification) {
  Function F;
  std::string Error;
  EXPECT_FALSE(verifyFunction(F, false, &Error));
  EXPECT_NE(Error.find("no blocks"), std::string::npos);
}

TEST(ProgramTest, MissingTerminatorFails) {
  Function F;
  BlockId B = F.makeBlock();
  op(F, B, F.makeValue());
  std::string Error;
  EXPECT_FALSE(verifyFunction(F, false, &Error));
}

TEST(ProgramTest, TerminatorInMiddleFails) {
  Function F;
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue();
  op(F, B, A);
  ret(F, B, {A});
  op(F, B, F.makeValue()); // After the terminator.
  EXPECT_FALSE(verifyFunction(F));
}

TEST(ProgramTest, PhiOperandArityMustMatchPreds) {
  Function F;
  BlockId Entry = F.makeBlock();
  BlockId Join = F.makeBlock();
  ValueId A = F.makeValue();
  op(F, Entry, A);
  br(F, Entry, A);
  F.addEdge(Entry, Join);
  // Phi with two operands but one predecessor.
  phi(F, Join, F.makeValue(), {A, A});
  ret(F, Join);
  EXPECT_FALSE(verifyFunction(F));
}

TEST(ProgramTest, PhiAfterNonPhiFails) {
  Function F;
  BlockId Entry = F.makeBlock();
  BlockId Next = F.makeBlock();
  ValueId A = F.makeValue();
  op(F, Entry, A);
  br(F, Entry, A);
  F.addEdge(Entry, Next);
  op(F, Next, F.makeValue(), {A});
  phi(F, Next, F.makeValue(), {A});
  ret(F, Next);
  EXPECT_FALSE(verifyFunction(F));
}

TEST(ProgramTest, AddEdgeExtendsPhis) {
  Function F;
  BlockId Entry = F.makeBlock();
  BlockId Mid = F.makeBlock();
  BlockId Join = F.makeBlock();
  ValueId A = F.makeValue();
  op(F, Entry, A);
  br(F, Entry, A);
  F.addEdge(Entry, Join);
  phi(F, Join, F.makeValue(), {A}); // One pred so far.
  ret(F, Join);
  br(F, Mid, A); // Mid is unreachable but structurally fine.
  F.addEdge(Mid, Join);
  EXPECT_EQ(F.block(Join).Instrs.front().Uses.size(), 2u);
  EXPECT_EQ(F.block(Join).Instrs.front().Uses[1], kNoValue);
}

TEST(ProgramTest, DoubleDefFailsSsaVerification) {
  Function F;
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue();
  op(F, B, A);
  op(F, B, A); // Second def of A.
  ret(F, B, {A});
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/false));
  std::string Error;
  EXPECT_FALSE(verifyFunction(F, /*ExpectSsa=*/true, &Error));
  EXPECT_NE(Error.find("defined twice"), std::string::npos);
}

TEST(ProgramTest, UseBeforeDefFailsSsaVerification) {
  Function F;
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue(), C = F.makeValue();
  op(F, B, C, {A}); // A used before its def.
  op(F, B, A);
  ret(F, B, {C});
  EXPECT_FALSE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(ProgramTest, ToStringMentionsNamesAndOpcodes) {
  Function F = straightLine();
  std::string Text = F.toString();
  EXPECT_NE(Text.find("%a"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
  EXPECT_NE(Text.find("op"), std::string::npos);
}

TEST(ProgramTest, OpcodeNames) {
  EXPECT_STREQ(opcodeName(Opcode::Phi), "phi");
  EXPECT_STREQ(opcodeName(Opcode::Load), "load");
  EXPECT_STREQ(opcodeName(Opcode::Store), "store");
  EXPECT_STREQ(opcodeName(Opcode::Return), "ret");
}
