//===- tests/ir/SpillRewriterTest.cpp - Spill code insertion tests --------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/SpillRewriter.h"

#include "IrTestHelpers.h"
#include "ir/Liveness.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"

#include <gtest/gtest.h>

using namespace layra;
using namespace layra::irtest;

TEST(SpillRewriterTest, StoreAfterDefLoadBeforeUse) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), C = F.makeValue("c");
  op(F, B, A);
  op(F, B, C, {A});
  ret(F, B, {C});

  std::vector<char> Spilled(F.numValues(), 0);
  Spilled[A] = 1;
  SpillRewriteStats Stats = rewriteSpills(F, Spilled);
  EXPECT_EQ(Stats.NumSlots, 1u);
  EXPECT_EQ(Stats.NumStores, 1u);
  EXPECT_EQ(Stats.NumLoads, 1u);

  // Expected layout: a = op; store a; t = load; c = op t; ret c.
  const std::vector<Instruction> &Is = F.block(B).Instrs;
  ASSERT_EQ(Is.size(), 5u);
  EXPECT_EQ(Is[0].Op, Opcode::Op);
  EXPECT_EQ(Is[1].Op, Opcode::Store);
  EXPECT_EQ(Is[1].Uses[0], A);
  EXPECT_EQ(Is[2].Op, Opcode::Load);
  EXPECT_EQ(Is[3].Uses[0], Is[2].Defs[0]); // Use renamed to the reload.
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(SpillRewriterTest, SharedReloadWithinOneInstruction) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), C = F.makeValue("c");
  op(F, B, A);
  op(F, B, C, {A, A}); // Two uses of the same spilled value.
  ret(F, B, {C});

  std::vector<char> Spilled(F.numValues(), 0);
  Spilled[A] = 1;
  SpillRewriteStats Stats = rewriteSpills(F, Spilled);
  EXPECT_EQ(Stats.NumLoads, 1u); // One reload feeds both operands.
  const std::vector<Instruction> &Is = F.block(B).Instrs;
  EXPECT_EQ(Is[3].Uses[0], Is[3].Uses[1]);
}

TEST(SpillRewriterTest, PhiOperandReloadedInPredecessor) {
  Function F("f");
  BlockId Entry = F.makeBlock(), Left = F.makeBlock(),
          Right = F.makeBlock(), Merge = F.makeBlock();
  ValueId C = F.makeValue("c"), L = F.makeValue("l"), R = F.makeValue("r"),
          M = F.makeValue("m");
  op(F, Entry, C);
  br(F, Entry, C);
  op(F, Left, L);
  br(F, Left, C); // Condition uses c so the only use of l is the phi.
  op(F, Right, R);
  br(F, Right, C);
  F.addEdge(Entry, Left);
  F.addEdge(Entry, Right);
  F.addEdge(Left, Merge);
  F.addEdge(Right, Merge);
  phi(F, Merge, M, {L, R});
  ret(F, Merge, {M});
  ASSERT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));

  std::vector<char> Spilled(F.numValues(), 0);
  Spilled[L] = 1;
  SpillRewriteStats Stats = rewriteSpills(F, Spilled);
  EXPECT_EQ(Stats.NumStores, 1u);
  EXPECT_EQ(Stats.NumLoads, 1u);
  // The reload sits in Left before its terminator, not in Merge.
  const std::vector<Instruction> &LeftIs = F.block(Left).Instrs;
  ASSERT_EQ(LeftIs.size(), 4u); // op, store, load, br.
  EXPECT_EQ(LeftIs[2].Op, Opcode::Load);
  EXPECT_TRUE(LeftIs.back().isTerminator());
  // The phi operand was renamed to the reload.
  EXPECT_EQ(F.block(Merge).Instrs.front().Uses[0], LeftIs[2].Defs[0]);
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(SpillRewriterTest, SpilledPhiDefStoredAfterPhis) {
  Function F("f");
  BlockId Entry = F.makeBlock(), Body = F.makeBlock(), Exit = F.makeBlock();
  ValueId I0 = F.makeValue("i0"), I1 = F.makeValue("i1"),
          Iphi = F.makeValue("i");
  op(F, Entry, I0);
  br(F, Entry, I0);
  F.addEdge(Entry, Body);
  phi(F, Body, Iphi, {I0});
  op(F, Body, I1, {Iphi});
  br(F, Body, I1);
  F.addEdge(Body, Body); // Extends the phi with a self-loop operand.
  F.block(Body).Instrs.front().Uses[1] = I1;
  F.addEdge(Body, Exit);
  ret(F, Exit, {I1});
  ASSERT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));

  std::vector<char> Spilled(F.numValues(), 0);
  Spilled[Iphi] = 1;
  rewriteSpills(F, Spilled);
  const std::vector<Instruction> &Is = F.block(Body).Instrs;
  ASSERT_GE(Is.size(), 3u);
  EXPECT_TRUE(Is[0].isPhi());
  EXPECT_EQ(Is[1].Op, Opcode::Store); // Store right after the phi block.
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(SpillRewriterTest, MassSpillKeepsFunctionValidOnGeneratedPrograms) {
  Rng Rand(161803);
  for (int Round = 0; Round < 10; ++Round) {
    ProgramGenOptions Opt;
    Opt.NumVars = 8 + static_cast<unsigned>(Rand.nextBelow(12));
    Function F = generateFunction(Rand, Opt);
    SsaConversion Conv = convertToSsa(F);
    Function &Ssa = Conv.Ssa;

    // Spill every third value.
    std::vector<char> Spilled(Ssa.numValues(), 0);
    for (ValueId V = 0; V < Ssa.numValues(); V += 3)
      Spilled[V] = 1;
    // Pad the flag vector for values created by the rewriter itself.
    Spilled.resize(Ssa.numValues() + 4096, 0);
    rewriteSpills(Ssa, Spilled);
    std::string Error;
    EXPECT_TRUE(verifyFunction(Ssa, /*ExpectSsa=*/true, &Error))
        << "round " << Round << ": " << Error;
  }
}
