//===- tests/ir/OperandFoldingTest.cpp - CISC folding tests ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/OperandFolding.h"

#include "IrTestHelpers.h"
#include "ir/Dominators.h"
#include "ir/Liveness.h"
#include "ir/LoopInfo.h"
#include "ir/ProgramGen.h"
#include "ir/SpillRewriter.h"
#include "ir/SsaBuilder.h"

#include <gtest/gtest.h>

using namespace layra;
using namespace layra::irtest;

namespace {
/// Counts instructions with the given opcode.
unsigned countOpcode(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (BlockId B = 0; B < F.numBlocks(); ++B)
    for (const Instruction &I : F.block(B).Instrs)
      N += I.Op == Op ? 1 : 0;
  return N;
}

/// Builds `a = op; store a; t = load; c = op t; ret c` via the rewriter.
Function spilledStraightLine(ValueId &A, ValueId &C) {
  Function F("f");
  BlockId B = F.makeBlock();
  A = F.makeValue("a");
  C = F.makeValue("c");
  op(F, B, A);
  op(F, B, C, {A});
  ret(F, B, {C});
  std::vector<char> Spilled(F.numValues(), 0);
  Spilled[A] = 1;
  rewriteSpills(F, Spilled);
  return F;
}
} // namespace

TEST(OperandFoldingTest, FoldsSingleUseReload) {
  ValueId A, C;
  Function F = spilledStraightLine(A, C);
  ASSERT_EQ(countOpcode(F, Opcode::Load), 1u);

  OperandFoldStats Stats = foldMemoryOperands(F, X86_64);
  EXPECT_EQ(Stats.LoadsFolded, 1u);
  EXPECT_EQ(Stats.CostSaved, X86_64.LoadCost - X86_64.MemOperandCost);
  EXPECT_EQ(countOpcode(F, Opcode::Load), 0u);
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));

  // The consumer reads the slot directly and no longer reads the temp.
  const Instruction &Consumer = F.block(0).Instrs[2];
  EXPECT_EQ(Consumer.Op, Opcode::Op);
  EXPECT_TRUE(Consumer.Uses.empty());
  ASSERT_EQ(Consumer.MemUseSlots.size(), 1u);
  EXPECT_EQ(Consumer.MemUseSlots[0], 0);
}

TEST(OperandFoldingTest, RiscTargetFoldsNothing) {
  ValueId A, C;
  Function F = spilledStraightLine(A, C);
  OperandFoldStats Stats = foldMemoryOperands(F, ST231);
  EXPECT_EQ(Stats.LoadsFolded, 0u);
  EXPECT_EQ(Stats.CostSaved, 0);
  EXPECT_EQ(countOpcode(F, Opcode::Load), 1u);
}

TEST(OperandFoldingTest, RespectsOneMemOperandLimit) {
  // Two spilled operands feeding one instruction: x86 folds exactly one.
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), B2 = F.makeValue("b"), C = F.makeValue("c");
  op(F, B, A);
  op(F, B, B2);
  op(F, B, C, {A, B2});
  ret(F, B, {C});
  std::vector<char> Spilled(F.numValues(), 0);
  Spilled[A] = Spilled[B2] = 1;
  rewriteSpills(F, Spilled);
  ASSERT_EQ(countOpcode(F, Opcode::Load), 2u);

  OperandFoldStats Stats = foldMemoryOperands(F, X86_64);
  EXPECT_EQ(Stats.LoadsFolded, 1u);
  EXPECT_EQ(countOpcode(F, Opcode::Load), 1u);
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(OperandFoldingTest, WiderBudgetFoldsBoth) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), B2 = F.makeValue("b"), C = F.makeValue("c");
  op(F, B, A);
  op(F, B, B2);
  op(F, B, C, {A, B2});
  ret(F, B, {C});
  std::vector<char> Spilled(F.numValues(), 0);
  Spilled[A] = Spilled[B2] = 1;
  rewriteSpills(F, Spilled);

  TargetDesc TwoOps = X86_64;
  TwoOps.MaxMemOperands = 2;
  OperandFoldStats Stats = foldMemoryOperands(F, TwoOps);
  EXPECT_EQ(Stats.LoadsFolded, 2u);
  EXPECT_EQ(countOpcode(F, Opcode::Load), 0u);
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(OperandFoldingTest, DoesNotFoldIntoStore) {
  // `store t [s2]` where t is itself a reload would be a memory-to-memory
  // move; it must stay a load + store pair.
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), C = F.makeValue("c");
  op(F, B, A);
  copy(F, B, C, A); // C spilled: store follows; A spilled: reload precedes.
  ret(F, B, {});
  std::vector<char> Spilled(F.numValues(), 0);
  Spilled[A] = Spilled[C] = 1;
  rewriteSpills(F, Spilled);

  OperandFoldStats Stats = foldMemoryOperands(F, X86_64);
  // The reload feeds a Copy (excluded) and the store uses C (defined by the
  // copy, not single-use-reload): nothing folds.
  EXPECT_EQ(Stats.LoadsFolded, 0u);
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(OperandFoldingTest, DoesNotFoldMultiUseReload) {
  // A reload with two consuming instructions stays materialised.
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a");
  ValueId T = F.makeValue("t"), U = F.makeValue("u");
  op(F, B, A);
  {
    Instruction Store;
    Store.Op = Opcode::Store;
    Store.SpillSlot = 0;
    Store.Uses.push_back(A);
    F.block(B).Instrs.push_back(Store);
  }
  ValueId Reload = F.makeValue("rl");
  {
    Instruction Load;
    Load.Op = Opcode::Load;
    Load.SpillSlot = 0;
    Load.Defs.push_back(Reload);
    F.block(B).Instrs.push_back(Load);
  }
  op(F, B, T, {Reload});
  op(F, B, U, {Reload});
  ret(F, B, {T, U});

  OperandFoldStats Stats = foldMemoryOperands(F, X86_64);
  EXPECT_EQ(Stats.LoadsFolded, 0u);
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(OperandFoldingTest, InterveningStoreToSameSlotBlocksFolding) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), W = F.makeValue("w"), T = F.makeValue("t");
  op(F, B, A);
  {
    Instruction Store;
    Store.Op = Opcode::Store;
    Store.SpillSlot = 0;
    Store.Uses.push_back(A);
    F.block(B).Instrs.push_back(Store);
  }
  ValueId Reload = F.makeValue("rl");
  {
    Instruction Load;
    Load.Op = Opcode::Load;
    Load.SpillSlot = 0;
    Load.Defs.push_back(Reload);
    F.block(B).Instrs.push_back(Load);
  }
  op(F, B, W, {}); // Redefine the slot between load and use.
  {
    Instruction Store;
    Store.Op = Opcode::Store;
    Store.SpillSlot = 0;
    Store.Uses.push_back(W);
    F.block(B).Instrs.push_back(Store);
  }
  op(F, B, T, {Reload});
  ret(F, B, {T});

  OperandFoldStats Stats = foldMemoryOperands(F, X86_64);
  EXPECT_EQ(Stats.LoadsFolded, 0u);
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(OperandFoldingTest, PhiEdgeReloadsStayMaterialised) {
  // Reloads feeding phi operands sit at predecessor ends; phis cannot read
  // memory, so they must survive folding.
  Function F("f");
  BlockId Entry = F.makeBlock("entry");
  BlockId Left = F.makeBlock("left");
  BlockId Right = F.makeBlock("right");
  BlockId Join = F.makeBlock("join");
  ValueId A = F.makeValue("a"), L = F.makeValue("l"), R = F.makeValue("r");
  ValueId P = F.makeValue("p");
  op(F, Entry, A);
  br(F, Entry, A);
  F.addEdge(Entry, Left);
  F.addEdge(Entry, Right);
  op(F, Left, L, {A});
  br(F, Left, L);
  op(F, Right, R, {A});
  br(F, Right, R);
  F.addEdge(Left, Join);
  F.addEdge(Right, Join);
  phi(F, Join, P, {L, R});
  ret(F, Join, {P});
  ASSERT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));

  std::vector<char> Spilled(F.numValues(), 0);
  Spilled[L] = Spilled[R] = 1;
  rewriteSpills(F, Spilled);
  unsigned LoadsBefore = countOpcode(F, Opcode::Load);
  ASSERT_GE(LoadsBefore, 2u);

  foldMemoryOperands(F, X86_64);
  // The two phi-edge reloads must still be there.
  EXPECT_GE(countOpcode(F, Opcode::Load), 2u);
  EXPECT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));
}

TEST(OperandFoldingTest, PressureNeverIncreasesOnRandomPrograms) {
  // Folding deletes reload temporaries, so MaxLive can only go down.
  for (uint64_t Seed : {3u, 5u, 8u, 13u, 21u}) {
    Rng Rand(Seed);
    ProgramGenOptions Opt;
    Opt.NumVars = 18;
    Opt.MaxBlocks = 24;
    Function F = generateFunction(Rand, Opt);
    DominatorTree Dom(F);
    LoopInfo Loops(F, Dom);
    Loops.annotate(F);
    Function Ssa = convertToSsa(F).Ssa;

    // Spill roughly a third of the values.
    std::vector<char> Spilled(Ssa.numValues(), 0);
    for (ValueId V = 0; V < Ssa.numValues(); ++V)
      Spilled[V] = Rand.nextBool(0.33);
    rewriteSpills(Ssa, Spilled);
    ASSERT_TRUE(verifyFunction(Ssa, /*ExpectSsa=*/true)) << "seed " << Seed;

    Liveness Before(Ssa);
    unsigned PressureBefore = Before.maxLive(Ssa);
    unsigned LoadsBefore = countOpcode(Ssa, Opcode::Load);

    OperandFoldStats Stats = foldMemoryOperands(Ssa, X86_64);
    ASSERT_TRUE(verifyFunction(Ssa, /*ExpectSsa=*/true)) << "seed " << Seed;
    EXPECT_EQ(countOpcode(Ssa, Opcode::Load),
              LoadsBefore - Stats.LoadsFolded);

    Liveness After(Ssa);
    EXPECT_LE(After.maxLive(Ssa), PressureBefore) << "seed " << Seed;
  }
}
