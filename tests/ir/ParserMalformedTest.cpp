//===- tests/ir/ParserMalformedTest.cpp - Malformed textual IR ------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Malformed-input coverage for ir/Parser: truncated functions, unknown
/// opcodes, bad `:$N` register-class suffixes, duplicate labels,
/// out-of-range class ids, inconsistent pred/succ orders -- every case
/// must produce a clean error (Ok=false, message, line number), never a
/// crash.  The same inputs are committed under fuzz/corpus/negative/ and
/// fed to `layra-fuzz` as negative seeds on every run; the last test
/// keeps the two collections honest against each other.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "fuzz/Corpus.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

/// Parses \p Text expecting a clean failure; returns the error message.
std::string expectCleanError(const std::string &Text,
                             unsigned MinLine = 1) {
  ParsedFunction P = parseFunction(Text);
  EXPECT_FALSE(P.Ok) << "unexpectedly parsed:\n" << Text;
  EXPECT_FALSE(P.Error.empty());
  EXPECT_GE(P.Line, MinLine);
  return P.Error;
}

} // namespace

TEST(ParserMalformedTest, TruncatedFunctionMissingBrace) {
  std::string Error = expectCleanError("function truncated {\n"
                                       "entry:  ; depth=0 freq=1\n"
                                       "  %a = op\n"
                                       "  ret\n");
  EXPECT_NE(Error.find("closing '}'"), std::string::npos) << Error;
}

TEST(ParserMalformedTest, EmptyAndHeaderlessInput) {
  expectCleanError("");
  expectCleanError("\n\n  \n");
  expectCleanError("func f {\nentry:\n  ret\n}\n");
  // A function with a header but no blocks.
  std::string Error = expectCleanError("function f {\n}\n");
  EXPECT_NE(Error.find("no blocks"), std::string::npos) << Error;
}

TEST(ParserMalformedTest, UnknownOpcode) {
  std::string Error = expectCleanError("function f {\n"
                                       "entry:  ; depth=0 freq=1\n"
                                       "  %a = warp %b\n"
                                       "  ret\n"
                                       "}\n");
  EXPECT_NE(Error.find("unknown opcode 'warp'"), std::string::npos) << Error;
}

TEST(ParserMalformedTest, BadClassSuffixes) {
  // Non-numeric suffix.
  std::string Error = expectCleanError("function f {\n"
                                       "entry:  ; depth=0 freq=1\n"
                                       "  %a:$x = op\n"
                                       "  ret\n"
                                       "}\n");
  EXPECT_NE(Error.find("register class suffix"), std::string::npos) << Error;

  // Out-of-range class id (kMaxRegClasses is 4, so $9 is invalid).
  Error = expectCleanError("function f {\n"
                           "entry:  ; depth=0 freq=1\n"
                           "  %a:$9 = op\n"
                           "  ret\n"
                           "}\n");
  EXPECT_NE(Error.find("register class suffix"), std::string::npos) << Error;

  // A value redefined with a different class.
  Error = expectCleanError("function f {\n"
                           "entry:  ; depth=0 freq=1\n"
                           "  %a:$1 = op\n"
                           "  %a:$2 = op %a\n"
                           "  ret\n"
                           "}\n");
  EXPECT_NE(Error.find("different register class"), std::string::npos)
      << Error;
}

TEST(ParserMalformedTest, DuplicateBlockLabel) {
  std::string Error = expectCleanError("function f {\n"
                                       "entry:  ; depth=0 freq=1\n"
                                       "  br\n"
                                       "  ; succs=entry\n"
                                       "entry:  ; depth=0 freq=1 preds=entry\n"
                                       "  ret\n"
                                       "}\n");
  EXPECT_NE(Error.find("duplicate block name"), std::string::npos) << Error;
}

TEST(ParserMalformedTest, DanglingPredsAndSuccs) {
  // A pred with no matching succ.
  std::string Error = expectCleanError("function f {\n"
                                       "entry:  ; depth=0 freq=1\n"
                                       "  br\n"
                                       "exit:  ; depth=0 freq=1 preds=entry\n"
                                       "  ret\n"
                                       "}\n");
  EXPECT_NE(Error.find("no matching succs"), std::string::npos) << Error;

  // A succ with no matching pred.
  Error = expectCleanError("function f {\n"
                           "entry:  ; depth=0 freq=1\n"
                           "  br\n"
                           "  ; succs=exit\n"
                           "exit:  ; depth=0 freq=1\n"
                           "  ret\n"
                           "}\n");
  EXPECT_NE(Error.find("missing from the target's preds"),
            std::string::npos)
      << Error;

  // Unknown block names in annotations.
  expectCleanError("function f {\n"
                   "entry:  ; depth=0 freq=1 preds=ghost\n"
                   "  ret\n"
                   "}\n");
  expectCleanError("function f {\n"
                   "entry:  ; depth=0 freq=1\n"
                   "  br\n"
                   "  ; succs=ghost\n"
                   "}\n");
}

TEST(ParserMalformedTest, InconsistentPredSuccOrders) {
  // Both orders are individually well formed but mutually unsatisfiable
  // (the edge-interleaving DAG has a cycle).
  std::string Error =
      expectCleanError("function twisted {\n"
                       "entry:  ; depth=0 freq=1\n"
                       "  br\n"
                       "  ; succs=s1,s2\n"
                       "s1:  ; depth=0 freq=1 preds=entry\n"
                       "  br\n"
                       "  ; succs=a,b\n"
                       "s2:  ; depth=0 freq=1 preds=entry\n"
                       "  br\n"
                       "  ; succs=b,a\n"
                       "a:  ; depth=0 freq=1 preds=s2,s1\n"
                       "  ret\n"
                       "b:  ; depth=0 freq=1 preds=s1,s2\n"
                       "  ret\n"
                       "}\n");
  EXPECT_NE(Error.find("mutually inconsistent"), std::string::npos) << Error;
}

TEST(ParserMalformedTest, MalformedInstructions) {
  // <undef> on the left-hand side (alone it reads as a bad opcode; in a
  // definition list it hits the dedicated diagnostic).
  expectCleanError("function f {\n"
                   "entry:  ; depth=0 freq=1\n"
                   "  <undef> = op\n"
                   "  ret\n"
                   "}\n");
  std::string Error = expectCleanError("function f {\n"
                                       "entry:  ; depth=0 freq=1\n"
                                       "  %a, <undef> = op\n"
                                       "  ret\n"
                                       "}\n");
  EXPECT_NE(Error.find("cannot be defined"), std::string::npos) << Error;

  // Bad [slot] annotation.
  expectCleanError("function f {\n"
                   "entry:  ; depth=0 freq=1\n"
                   "  %a = op [slot x]\n"
                   "  ret\n"
                   "}\n");

  // Trailing garbage after an instruction.
  expectCleanError("function f {\n"
                   "entry:  ; depth=0 freq=1\n"
                   "  %a = op garbage here\n"
                   "  ret\n"
                   "}\n");

  // Definition list without '='.
  expectCleanError("function f {\n"
                   "entry:  ; depth=0 freq=1\n"
                   "  %a %b\n"
                   "  ret\n"
                   "}\n");

  // Dangling '%' with no name.
  expectCleanError("function f {\n"
                   "entry:  ; depth=0 freq=1\n"
                   "  %a = op %\n"
                   "  ret\n"
                   "}\n");
}

TEST(ParserMalformedTest, BadBlockAnnotations) {
  expectCleanError("function f {\n"
                   "entry:  ; depth=x freq=1\n"
                   "  ret\n"
                   "}\n");
  expectCleanError("function f {\n"
                   "entry: unexpected\n"
                   "  ret\n"
                   "}\n");
}

TEST(ParserMalformedTest, NegativeCorpusStaysNegative) {
  // Every committed negative seed must fail to parse cleanly -- the same
  // property `layra-fuzz` asserts at session start.  A seed that starts
  // parsing (because the grammar grew) must be updated or removed.
  std::vector<std::string> Violations;
  unsigned NumScanned = 0;
  ASSERT_TRUE(checkNegativeCorpus(
      std::string(LAYRA_SOURCE_DIR) + "/fuzz/corpus/negative", Violations,
      &NumScanned));
  EXPECT_TRUE(Violations.empty())
      << "first violation: " << Violations.front();
  EXPECT_GE(NumScanned, 10u);
}

TEST(ParserMalformedTest, PositiveCorpusStaysPositive) {
  // And the positive corpus must keep loading: every seed parses,
  // validates, and is unique by content hash.
  std::vector<FuzzCase> Cases;
  std::vector<std::string> Errors;
  ASSERT_TRUE(loadCorpus(std::string(LAYRA_SOURCE_DIR) + "/fuzz/corpus",
                         Cases, Errors));
  EXPECT_TRUE(Errors.empty()) << "first error: " << Errors.front();
  EXPECT_GE(Cases.size(), 8u);
}
