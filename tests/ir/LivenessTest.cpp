//===- tests/ir/LivenessTest.cpp - Liveness analysis tests ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Liveness.h"

#include "IrTestHelpers.h"

#include <gtest/gtest.h>

using namespace layra;
using namespace layra::irtest;

TEST(LivenessTest, StraightLineMaxLive) {
  // a = op; b = op; c = op a, b; ret c      -- a and b overlap.
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), Bv = F.makeValue("b"), C = F.makeValue("c");
  op(F, B, A);
  op(F, B, Bv);
  op(F, B, C, {A, Bv});
  ret(F, B, {C});

  Liveness Live(F);
  EXPECT_EQ(Live.liveIn(B).count(), 0u);
  EXPECT_EQ(Live.liveOut(B).count(), 0u);
  EXPECT_EQ(Live.maxLive(F), 2u);
  EXPECT_EQ(Live.pressureAfter(F, B, 0), 1u); // Only a.
  EXPECT_EQ(Live.pressureAfter(F, B, 1), 2u); // a and b.
  EXPECT_EQ(Live.pressureAfter(F, B, 2), 1u); // c.
}

TEST(LivenessTest, ValueLiveAcrossBlocks) {
  Function F("f");
  BlockId Entry = F.makeBlock(), Next = F.makeBlock();
  ValueId A = F.makeValue("a"), C = F.makeValue("c");
  op(F, Entry, A);
  br(F, Entry, A);
  op(F, Next, C, {A});
  ret(F, Next, {C});
  F.addEdge(Entry, Next);

  Liveness Live(F);
  EXPECT_TRUE(Live.liveOut(Entry).test(A));
  EXPECT_TRUE(Live.liveIn(Next).test(A));
  EXPECT_FALSE(Live.liveOut(Next).test(A));
}

TEST(LivenessTest, LoopCarriedValueLiveThroughLoop) {
  // i is defined before the loop, used inside: live throughout the loop.
  Function F("f");
  BlockId Entry = F.makeBlock(), Header = F.makeBlock(),
          Exit = F.makeBlock();
  ValueId I = F.makeValue("i"), T = F.makeValue("t");
  op(F, Entry, I);
  br(F, Entry, I);
  op(F, Header, T, {I});
  br(F, Header, T);
  ret(F, Exit, {I});
  F.addEdge(Entry, Header);
  F.addEdge(Header, Header); // Self-loop back edge.
  F.addEdge(Header, Exit);

  Liveness Live(F);
  EXPECT_TRUE(Live.liveIn(Header).test(I));
  EXPECT_TRUE(Live.liveOut(Header).test(I)); // Needed by next iteration/exit.
}

TEST(LivenessTest, PhiUsesAreLiveOutOfPredsNotLiveInOfBlock) {
  // entry -> {left, right} -> merge with phi m = (l from left, r from right)
  Function F("f");
  BlockId Entry = F.makeBlock(), Left = F.makeBlock(),
          Right = F.makeBlock(), Merge = F.makeBlock();
  ValueId C = F.makeValue("c"), L = F.makeValue("l"), R = F.makeValue("r"),
          M = F.makeValue("m");
  op(F, Entry, C);
  br(F, Entry, C);
  op(F, Left, L);
  br(F, Left, L);
  op(F, Right, R);
  br(F, Right, R);
  F.addEdge(Entry, Left);
  F.addEdge(Entry, Right);
  F.addEdge(Left, Merge);
  F.addEdge(Right, Merge);
  phi(F, Merge, M, {L, R});
  ret(F, Merge, {M});
  ASSERT_TRUE(verifyFunction(F, /*ExpectSsa=*/true));

  Liveness Live(F);
  EXPECT_TRUE(Live.liveOut(Left).test(L));
  EXPECT_TRUE(Live.liveOut(Right).test(R));
  // Phi operands are *not* live-in of the merge block...
  EXPECT_FALSE(Live.liveIn(Merge).test(L));
  EXPECT_FALSE(Live.liveIn(Merge).test(R));
  // ...but the phi def is.
  EXPECT_TRUE(Live.liveIn(Merge).test(M));
  // L does not leak into the right arm and vice versa.
  EXPECT_FALSE(Live.liveOut(Right).test(L));
  EXPECT_FALSE(Live.liveOut(Left).test(R));
}

TEST(LivenessTest, DeadDefCountsAtItsDefPoint) {
  // d = op (never used): MaxLive must still count it at its def point.
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId D = F.makeValue("d"), E = F.makeValue("e");
  op(F, B, D);
  op(F, B, E);
  ret(F, B, {E});

  Liveness Live(F);
  EXPECT_EQ(Live.maxLive(F), 1u); // d dead at once, e live after def.
}

TEST(LivenessTest, MaxLiveCountsOverlappingDeadDefs) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), D = F.makeValue("d");
  op(F, B, A);
  op(F, B, D); // d dead, but a is live across this point.
  op(F, B, F.makeValue("u"), {A});
  ret(F, B);
  Liveness Live(F);
  // At d's def point both a (live) and d (dead def) occupy registers.
  EXPECT_EQ(Live.maxLive(F), 2u);
}
