//===- tests/core/PropertySweepTest.cpp - Parameterized invariants --------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized property sweeps over (seed, register count) grids: the
/// invariants every allocator must satisfy on every instance, exercised
/// across a matrix of random chordal instances.
///
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"
#include "alloc/OptimalBnB.h"
#include "core/Assignment.h"
#include "core/Coalescing.h"
#include "core/Layered.h"
#include "core/LayeredHeuristic.h"
#include "core/StepLayer.h"
#include "graph/Generators.h"
#include "graph/StableSet.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace layra;

namespace {
/// (seed, register count) sweep parameter.
struct SweepParam {
  uint64_t Seed;
  unsigned Regs;

  friend std::ostream &operator<<(std::ostream &Os, const SweepParam &P) {
    return Os << "seed" << P.Seed << "_R" << P.Regs;
  }
};

class ChordalSweep : public ::testing::TestWithParam<SweepParam> {
protected:
  AllocationProblem makeInstance() const {
    Rng R(GetParam().Seed);
    ChordalGenOptions Opt;
    Opt.NumVertices = 20 + static_cast<unsigned>(R.nextBelow(60));
    Opt.TreeSize = 20 + static_cast<unsigned>(R.nextBelow(40));
    Opt.MaxWeight = 50;
    Graph G = randomChordalGraph(R, Opt);
    return AllocationProblem::fromChordalGraph(std::move(G),
                                               GetParam().Regs);
  }

  /// Synthetic affinities for the coalescing sweeps: random non-adjacent
  /// pairs with positive benefits (move-related values never interfere).
  std::vector<Affinity> makeAffinities(const AllocationProblem &P) const {
    Rng R(GetParam().Seed ^ 0xaff1u);
    std::vector<Affinity> Out;
    unsigned N = P.graph().numVertices();
    for (unsigned Trial = 0; Trial < N; ++Trial) {
      VertexId A = static_cast<VertexId>(R.nextBelow(N));
      VertexId B = static_cast<VertexId>(R.nextBelow(N));
      if (A == B || P.graph().hasEdge(A, B))
        continue;
      Affinity Aff;
      Aff.A = A;
      Aff.B = B;
      Aff.Benefit = 1 + static_cast<Weight>(R.nextBelow(20));
      Out.push_back(Aff);
    }
    return Out;
  }
};
} // namespace

TEST_P(ChordalSweep, EveryLayeredVariantIsFeasible) {
  AllocationProblem P = makeInstance();
  for (auto Opts : {LayeredOptions::nl(), LayeredOptions::bl(),
                    LayeredOptions::fpl(), LayeredOptions::bfpl()}) {
    AllocationResult Result = layeredAllocate(P, Opts);
    EXPECT_TRUE(isFeasibleAllocation(P, Result.Allocated));
    EXPECT_EQ(Result.AllocatedWeight + Result.SpillCost, P.graph().totalWeight());
  }
}

TEST_P(ChordalSweep, FixedPointNeverHurtsAndOptimalNeverLoses) {
  AllocationProblem P = makeInstance();
  Weight Nl = layeredAllocate(P, LayeredOptions::nl()).SpillCost;
  Weight Fpl = layeredAllocate(P, LayeredOptions::fpl()).SpillCost;
  Weight Bl = layeredAllocate(P, LayeredOptions::bl()).SpillCost;
  Weight Bfpl = layeredAllocate(P, LayeredOptions::bfpl()).SpillCost;
  EXPECT_LE(Fpl, Nl);
  EXPECT_LE(Bfpl, Bl);
  OptimalBnBAllocator BnB;
  AllocationResult Optimal = BnB.allocate(P);
  if (Optimal.Proven) {
    EXPECT_LE(Optimal.SpillCost, Nl);
    EXPECT_LE(Optimal.SpillCost, Bfpl);
    EXPECT_LE(Optimal.SpillCost,
              layeredHeuristicAllocate(P).Allocation.SpillCost);
    EXPECT_LE(Optimal.SpillCost, makeAllocator("gc")->allocate(P).SpillCost);
  }
}

TEST_P(ChordalSweep, AssignmentSucceedsForFeasibleAllocations) {
  AllocationProblem P = makeInstance();
  AllocationResult Result = layeredAllocate(P, LayeredOptions::bfpl());
  Assignment A = assignRegisters(P, Result.Allocated);
  EXPECT_TRUE(A.Success);
  EXPECT_LE(A.RegistersUsed, P.uniformBudget());
}

TEST_P(ChordalSweep, LayeredIsDeterministic) {
  AllocationProblem P = makeInstance();
  AllocationResult A = layeredAllocate(P, LayeredOptions::bfpl());
  AllocationResult B = layeredAllocate(P, LayeredOptions::bfpl());
  EXPECT_EQ(A.Allocated, B.Allocated);
}

TEST_P(ChordalSweep, CoalescingOffAndOnBothAssignValidly) {
  AllocationProblem P = makeInstance();
  AllocationResult Result = layeredAllocate(P, LayeredOptions::bfpl());
  std::vector<Affinity> Affinities = makeAffinities(P);

  // Coalescing off (plain tree-scan) and on (affinity-biased): both must
  // produce proper colorings within the register budget...
  Assignment Plain = assignRegisters(P, Result.Allocated);
  Assignment Biased = assignRegistersBiased(P, Result.Allocated, Affinities);
  for (const Assignment *A : {&Plain, &Biased}) {
    EXPECT_TRUE(A->Success);
    EXPECT_LE(A->RegistersUsed, P.uniformBudget());
    for (VertexId V = 0; V < P.graph().numVertices(); ++V) {
      if (!Result.Allocated[V])
        continue;
      for (VertexId U : P.graph().neighbors(V))
        if (Result.Allocated[U]) {
          EXPECT_NE(A->RegisterOf[V], A->RegisterOf[U])
              << "interfering pair shares a register";
        }
    }
  }
  // ...and the bias may only reduce the leftover copy cost, never spill
  // more (it does not touch the allocation at all).
  EXPECT_LE(remainingCopyCost(Affinities, Result.Allocated,
                              Biased.RegisterOf),
            remainingCopyCost(Affinities, Result.Allocated,
                              Plain.RegisterOf));
}

TEST_P(ChordalSweep, ConservativeCoalescingPreservesStructure) {
  AllocationProblem P = makeInstance();
  std::vector<Affinity> Affinities = makeAffinities(P);
  CoalescingResult C =
      coalesceConservative(P.graph(), Affinities, P.uniformBudget());

  // Representatives are path-compressed roots.
  for (VertexId V = 0; V < P.graph().numVertices(); ++V)
    EXPECT_EQ(C.Representative[C.Representative[V]], C.Representative[V]);
  // Interfering vertices are never merged (only affinity pairs are, and
  // move-related values do not interfere).
  for (VertexId V = 0; V < P.graph().numVertices(); ++V)
    for (VertexId U : P.graph().neighbors(V))
      EXPECT_NE(C.Representative[V], C.Representative[U]);
  // Weights are conserved: merging sums them, nothing is dropped.
  EXPECT_EQ(C.Coalesced.totalWeight(), P.graph().totalWeight());
}

INSTANTIATE_TEST_SUITE_P(
    SeedByRegisterGrid, ChordalSweep,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> Params;
      for (uint64_t Seed : {11u, 22u, 33u, 44u, 55u, 66u})
        for (unsigned Regs : {1u, 2u, 3u, 5u, 8u, 13u})
          Params.push_back({Seed, Regs});
      return Params;
    }()),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_R" +
             std::to_string(Info.param.Regs);
    });

namespace {
/// Step parameter sweep: the step-k layer primitive must stay feasible and
/// monotonically use up register capacity.
class StepSweep : public ::testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(StepSweep, SteppedLayeredIsFeasibleAcrossSeeds) {
  unsigned Step = GetParam();
  Rng R(1000 + Step);
  for (int Round = 0; Round < 8; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 15 + static_cast<unsigned>(R.nextBelow(25));
    Graph G = randomChordalGraph(R, Opt);
    unsigned Regs = Step + static_cast<unsigned>(R.nextBelow(6));
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);
    LayeredOptions Opts;
    Opts.Step = Step;
    AllocationResult Result = layeredAllocate(P, Opts);
    EXPECT_TRUE(isFeasibleAllocation(P, Result.Allocated))
        << "step=" << Step << " round=" << Round;
  }
}

TEST_P(StepSweep, BoundedLayerRespectsBoundAndGrowsWithIt) {
  unsigned Step = GetParam();
  Rng R(5000 + Step);
  for (int Round = 0; Round < 6; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 12 + static_cast<unsigned>(R.nextBelow(20));
    Graph G = randomChordalGraph(R, Opt);
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, /*R=*/1);
    unsigned N = P.graph().numVertices();
    std::vector<char> Mask(N, 1);
    std::vector<Weight> W(N);
    for (VertexId V = 0; V < N; ++V)
      W[V] = P.graph().weight(V);

    auto LayerWeight = [&](const std::vector<VertexId> &Layer) {
      Weight Total = 0;
      for (VertexId V : Layer)
        Total += W[V];
      return Total;
    };

    std::vector<VertexId> Layer = optimalBoundedLayer(P, Mask, W, Step);
    // Every maximal clique gains at most Step vertices.
    for (const auto &K : P.Cliques.Cliques) {
      unsigned Hit = 0;
      for (VertexId V : K)
        Hit += std::count(Layer.begin(), Layer.end(), V) ? 1 : 0;
      EXPECT_LE(Hit, Step) << "step=" << Step << " round=" << Round;
    }
    // A looser bound can only improve the optimal layer weight.
    if (Step > 1) {
      std::vector<VertexId> Tighter =
          optimalBoundedLayer(P, Mask, W, Step - 1);
      EXPECT_LE(LayerWeight(Tighter), LayerWeight(Layer))
          << "step=" << Step << " round=" << Round;
    }
  }
}

TEST_P(StepSweep, BoundOneMatchesFranksStableSetPath) {
  // Cross-validation of the two Bound == 1 solvers: the clique-tree DP and
  // Frank's linear-time algorithm optimize the same objective, so their
  // layer *weights* must agree exactly -- on the full vertex set and on
  // masked subsets (the mid-run candidate sets of the layered allocator).
  unsigned Seed = 7000 + GetParam(); // Sweep seeds via the step parameter.
  Rng R(Seed);
  for (int Round = 0; Round < 6; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 12 + static_cast<unsigned>(R.nextBelow(20));
    Graph G = randomChordalGraph(R, Opt);
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, /*R=*/1);
    unsigned N = P.graph().numVertices();
    std::vector<Weight> W(N);
    for (VertexId V = 0; V < N; ++V)
      W[V] = P.graph().weight(V);

    std::vector<char> Mask(N, 1);
    for (int MaskRound = 0; MaskRound < 3; ++MaskRound) {
      std::vector<VertexId> Dp = optimalBoundedLayer(P, Mask, W, 1);
      StableSetResult Frank =
          maximumWeightedStableSetChordal(P.graph(), P.Peo, W, Mask);
      Weight DpWeight = 0;
      for (VertexId V : Dp) {
        EXPECT_TRUE(Mask[V]) << "DP selected a masked-out vertex";
        DpWeight += W[V];
      }
      EXPECT_TRUE(P.graph().isStableSet(Dp)) << "seed=" << Seed;
      EXPECT_EQ(DpWeight, Frank.TotalWeight) << "seed=" << Seed;
      // Knock random vertices out of the mask for the next round.
      for (unsigned Knock = 0; Knock < N / 4; ++Knock)
        Mask[R.nextBelow(N)] = 0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Steps, StepSweep, ::testing::Values(1u, 2u, 3u));
