//===- tests/core/PropertySweepTest.cpp - Parameterized invariants --------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized property sweeps over (seed, register count) grids: the
/// invariants every allocator must satisfy on every instance, exercised
/// across a matrix of random chordal instances.
///
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"
#include "alloc/OptimalBnB.h"
#include "core/Assignment.h"
#include "core/Layered.h"
#include "core/LayeredHeuristic.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {
/// (seed, register count) sweep parameter.
struct SweepParam {
  uint64_t Seed;
  unsigned Regs;

  friend std::ostream &operator<<(std::ostream &Os, const SweepParam &P) {
    return Os << "seed" << P.Seed << "_R" << P.Regs;
  }
};

class ChordalSweep : public ::testing::TestWithParam<SweepParam> {
protected:
  AllocationProblem makeInstance() const {
    Rng R(GetParam().Seed);
    ChordalGenOptions Opt;
    Opt.NumVertices = 20 + static_cast<unsigned>(R.nextBelow(60));
    Opt.TreeSize = 20 + static_cast<unsigned>(R.nextBelow(40));
    Opt.MaxWeight = 50;
    Graph G = randomChordalGraph(R, Opt);
    return AllocationProblem::fromChordalGraph(std::move(G),
                                               GetParam().Regs);
  }
};
} // namespace

TEST_P(ChordalSweep, EveryLayeredVariantIsFeasible) {
  AllocationProblem P = makeInstance();
  for (auto Opts : {LayeredOptions::nl(), LayeredOptions::bl(),
                    LayeredOptions::fpl(), LayeredOptions::bfpl()}) {
    AllocationResult Result = layeredAllocate(P, Opts);
    EXPECT_TRUE(isFeasibleAllocation(P, Result.Allocated));
    EXPECT_EQ(Result.AllocatedWeight + Result.SpillCost, P.G.totalWeight());
  }
}

TEST_P(ChordalSweep, FixedPointNeverHurtsAndOptimalNeverLoses) {
  AllocationProblem P = makeInstance();
  Weight Nl = layeredAllocate(P, LayeredOptions::nl()).SpillCost;
  Weight Fpl = layeredAllocate(P, LayeredOptions::fpl()).SpillCost;
  Weight Bl = layeredAllocate(P, LayeredOptions::bl()).SpillCost;
  Weight Bfpl = layeredAllocate(P, LayeredOptions::bfpl()).SpillCost;
  EXPECT_LE(Fpl, Nl);
  EXPECT_LE(Bfpl, Bl);
  OptimalBnBAllocator BnB;
  AllocationResult Optimal = BnB.allocate(P);
  if (Optimal.Proven) {
    EXPECT_LE(Optimal.SpillCost, Nl);
    EXPECT_LE(Optimal.SpillCost, Bfpl);
    EXPECT_LE(Optimal.SpillCost,
              layeredHeuristicAllocate(P).Allocation.SpillCost);
    EXPECT_LE(Optimal.SpillCost, makeAllocator("gc")->allocate(P).SpillCost);
  }
}

TEST_P(ChordalSweep, AssignmentSucceedsForFeasibleAllocations) {
  AllocationProblem P = makeInstance();
  AllocationResult Result = layeredAllocate(P, LayeredOptions::bfpl());
  Assignment A = assignRegisters(P, Result.Allocated);
  EXPECT_TRUE(A.Success);
  EXPECT_LE(A.RegistersUsed, P.NumRegisters);
}

TEST_P(ChordalSweep, LayeredIsDeterministic) {
  AllocationProblem P = makeInstance();
  AllocationResult A = layeredAllocate(P, LayeredOptions::bfpl());
  AllocationResult B = layeredAllocate(P, LayeredOptions::bfpl());
  EXPECT_EQ(A.Allocated, B.Allocated);
}

INSTANTIATE_TEST_SUITE_P(
    SeedByRegisterGrid, ChordalSweep,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> Params;
      for (uint64_t Seed : {11u, 22u, 33u, 44u, 55u, 66u})
        for (unsigned Regs : {1u, 2u, 3u, 5u, 8u, 13u})
          Params.push_back({Seed, Regs});
      return Params;
    }()),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_R" +
             std::to_string(Info.param.Regs);
    });

namespace {
/// Step parameter sweep: the step-k layer primitive must stay feasible and
/// monotonically use up register capacity.
class StepSweep : public ::testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(StepSweep, SteppedLayeredIsFeasibleAcrossSeeds) {
  unsigned Step = GetParam();
  Rng R(1000 + Step);
  for (int Round = 0; Round < 8; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 15 + static_cast<unsigned>(R.nextBelow(25));
    Graph G = randomChordalGraph(R, Opt);
    unsigned Regs = Step + static_cast<unsigned>(R.nextBelow(6));
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);
    LayeredOptions Opts;
    Opts.Step = Step;
    AllocationResult Result = layeredAllocate(P, Opts);
    EXPECT_TRUE(isFeasibleAllocation(P, Result.Allocated))
        << "step=" << Step << " round=" << Round;
  }
}

INSTANTIATE_TEST_SUITE_P(Steps, StepSweep, ::testing::Values(1u, 2u, 3u));
