//===- tests/core/ProblemBuilderTest.cpp - Problem builder tests ----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/ProblemBuilder.h"

#include "core/AllocationProblem.h"
#include "graph/Chordal.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace layra;

TEST(ProblemBuilderTest, SsaProblemIsChordalWithCliqueConstraints) {
  Rng R(71);
  ProgramGenOptions Opt;
  Function F = generateFunction(R, Opt);
  SsaConversion Conv = convertToSsa(F);
  AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, 4);
  EXPECT_TRUE(P.Chordal);
  EXPECT_EQ(P.Constraints.size(), P.Cliques.Cliques.size());
  EXPECT_TRUE(isPerfectEliminationOrder(P.graph(), P.Peo));
  EXPECT_TRUE(P.Intervals.has_value());
  EXPECT_EQ(P.uniformBudget(), 4u);
}

TEST(ProblemBuilderTest, GeneralProblemCoversEveryVertex) {
  Rng R(72);
  ProgramGenOptions Opt;
  Function F = generateFunction(R, Opt);
  AllocationProblem P = buildGeneralProblem(F, ARMv7, 6);
  EXPECT_FALSE(P.Chordal);
  std::vector<char> Covered(P.graph().numVertices(), 0);
  for (const auto &C : P.Constraints)
    for (VertexId V : C.Members)
      Covered[V] = 1;
  for (VertexId V = 0; V < P.graph().numVertices(); ++V)
    EXPECT_TRUE(Covered[V]) << "vertex " << V << " in no constraint";
}

TEST(ProblemBuilderTest, WithRegistersPreservesStructure) {
  Rng R(73);
  ProgramGenOptions Opt;
  Function F = generateFunction(R, Opt);
  SsaConversion Conv = convertToSsa(F);
  AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, 4);
  AllocationProblem Q = P.withBudgets({9});
  EXPECT_EQ(Q.uniformBudget(), 9u);
  EXPECT_EQ(Q.graph().numVertices(), P.graph().numVertices());
  EXPECT_EQ(Q.Constraints.size(), P.Constraints.size());
  // The sweep path shares one immutable graph instead of copying it.
  EXPECT_EQ(Q.G.get(), P.G.get());
  for (size_t I = 0; I < Q.Constraints.size(); ++I)
    EXPECT_EQ(Q.Constraints[I].Budget, 9u);
}

TEST(ProblemBuilderTest, MaxLiveMatchesLargestConstraint) {
  Rng R(74);
  ProgramGenOptions Opt;
  Function F = generateFunction(R, Opt);
  SsaConversion Conv = convertToSsa(F);
  AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, 4);
  size_t Largest = 0;
  for (const auto &C : P.Constraints)
    Largest = std::max(Largest, C.Members.size());
  EXPECT_EQ(P.maxLive(), Largest);
}

TEST(ProblemBuilderTest, SingletonConstraintAddedForIsolatedVertices) {
  Graph G(3);
  G.setWeight(2, 5); // Vertex 2 is isolated.
  G.addEdge(0, 1);
  AllocationProblem P =
      AllocationProblem::fromGeneralGraph(std::move(G), 2, {{0, 1}});
  bool Found = false;
  for (const auto &C : P.Constraints)
    Found |= C.Members.size() == 1 && C.Members[0] == 2;
  EXPECT_TRUE(Found);
}
