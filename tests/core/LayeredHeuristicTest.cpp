//===- tests/core/LayeredHeuristicTest.cpp - LH allocator tests -----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/LayeredHeuristic.h"

#include "alloc/BruteForce.h"
#include "graph/Coloring.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {
AllocationProblem generalProblemFromGraph(Graph G, unsigned R) {
  // Constraints: all edges as 2-cliques plus singletons (fromGeneralGraph
  // adds singletons for isolated vertices).  For feasibility checking we
  // want the true "colorability" notion, which LH guarantees by
  // construction; edge constraints only matter for R == 1.
  std::vector<std::vector<VertexId>> Sets;
  for (VertexId V = 0; V < G.numVertices(); ++V)
    for (VertexId U : G.neighbors(V))
      if (V < U)
        Sets.push_back({V, U});
  return AllocationProblem::fromGeneralGraph(std::move(G), R,
                                             std::move(Sets));
}
} // namespace

TEST(LayeredHeuristicTest, ClustersPartitionAllVertices) {
  Rng R(11);
  Graph G = randomGraph(R, 40, 0.25, 20);
  std::vector<Cluster> Clusters = clusterVertices(G);
  std::vector<unsigned> SeenCount(G.numVertices(), 0);
  for (const Cluster &C : Clusters) {
    EXPECT_TRUE(G.isStableSet(C.Members));
    EXPECT_EQ(G.weightOf(C.Members), C.TotalWeight);
    for (VertexId V : C.Members)
      ++SeenCount[V];
  }
  for (unsigned Count : SeenCount)
    EXPECT_EQ(Count, 1u);
}

TEST(LayeredHeuristicTest, FirstClusterContainsHeaviestVertex) {
  Rng R(12);
  Graph G = randomGraph(R, 30, 0.3, 50);
  VertexId Heaviest = 0;
  for (VertexId V = 1; V < G.numVertices(); ++V)
    if (G.weight(V) > G.weight(Heaviest))
      Heaviest = V;
  std::vector<Cluster> Clusters = clusterVertices(G);
  const std::vector<VertexId> &First = Clusters.front().Members;
  EXPECT_NE(std::find(First.begin(), First.end(), Heaviest), First.end());
}

TEST(LayeredHeuristicTest, AllocationIsAnRColoringByConstruction) {
  // LH's headline property on non-chordal graphs: the allocated set is
  // partitioned into <= R stable clusters, i.e. it is R-colorable even when
  // the graph is not.
  Rng R(13);
  for (int Round = 0; Round < 20; ++Round) {
    Graph G = randomGraph(R, 25 + static_cast<unsigned>(R.nextBelow(25)),
                          0.25, 30);
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(6));
    AllocationProblem P = generalProblemFromGraph(G, Regs);
    LayeredHeuristicResult Out = layeredHeuristicAllocate(P);
    // RegisterOf is a proper coloring with < R colors on allocated set.
    EXPECT_TRUE(isProperColoring(P.graph(), Out.RegisterOf));
    for (VertexId V = 0; V < P.graph().numVertices(); ++V) {
      if (Out.Allocation.Allocated[V]) {
        EXPECT_LT(Out.RegisterOf[V], Regs);
      } else {
        EXPECT_EQ(Out.RegisterOf[V], LayeredHeuristicResult::kNoRegister);
      }
    }
  }
}

TEST(LayeredHeuristicTest, EnoughRegistersAllocateEverything) {
  Rng R(14);
  Graph G = randomGraph(R, 30, 0.2, 10);
  AllocationProblem P = generalProblemFromGraph(G, 30);
  LayeredHeuristicResult Out = layeredHeuristicAllocate(P);
  EXPECT_EQ(Out.Allocation.SpillCost, 0);
  EXPECT_LE(Out.NumClusters, 30u);
}

TEST(LayeredHeuristicTest, ReasonableOnSmallGraphsVsOptimal) {
  // LH is a heuristic; on small instances it should stay within 2x of the
  // edge-constraint optimum in aggregate (in practice much closer).
  Rng R(15);
  Weight TotalOpt = 0, TotalLh = 0;
  for (int Round = 0; Round < 30; ++Round) {
    Graph G = randomGraph(R, 6 + static_cast<unsigned>(R.nextBelow(12)),
                          0.3, 20);
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(4));
    AllocationProblem P = generalProblemFromGraph(G, Regs);
    LayeredHeuristicResult Out = layeredHeuristicAllocate(P);
    TotalLh += Out.Allocation.SpillCost;
    BruteForceAllocator Brute;
    // Brute force over *coloring* feasibility is hard; use the relaxation
    // (edge/point constraints) as the lower bound reference.
    TotalOpt += Brute.allocate(P).SpillCost;
  }
  EXPECT_LE(TotalLh, 2 * TotalOpt + 50);
}

TEST(LayeredHeuristicTest, WorksOnChordalInstancesToo) {
  Rng R(16);
  ChordalGenOptions Opt;
  Opt.NumVertices = 30;
  Graph G = randomChordalGraph(R, Opt);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 4);
  LayeredHeuristicResult Out = layeredHeuristicAllocate(P);
  EXPECT_TRUE(isFeasibleAllocation(P, Out.Allocation.Allocated));
}
