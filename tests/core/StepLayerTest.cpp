//===- tests/core/StepLayerTest.cpp - Clique-tree DP tests ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/StepLayer.h"

#include "alloc/BruteForce.h"
#include "graph/Generators.h"
#include "graph/StableSet.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {
std::vector<Weight> rawWeights(const Graph &G) {
  std::vector<Weight> W(G.numVertices());
  for (VertexId V = 0; V < G.numVertices(); ++V)
    W[V] = G.weight(V);
  return W;
}
} // namespace

TEST(StepLayerTest, BoundOneMatchesFranksAlgorithm) {
  Rng R(1001);
  for (int Round = 0; Round < 40; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 3 + static_cast<unsigned>(R.nextBelow(25));
    Graph G = randomChordalGraph(R, Opt);
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, 1);
    std::vector<char> Mask(G.numVertices(), 1);
    std::vector<Weight> W = rawWeights(G);
    std::vector<VertexId> Layer = optimalBoundedLayer(P, Mask, W, 1);
    StableSetResult Frank =
        maximumWeightedStableSetChordal(G, P.Peo, W);
    EXPECT_EQ(G.weightOf(Layer), Frank.TotalWeight) << "round " << Round;
    EXPECT_TRUE(G.isStableSet(Layer));
  }
}

TEST(StepLayerTest, MatchesBruteForceForBoundTwoAndThree) {
  // The DP result for bound k is the optimal allocation with k registers
  // (paper §2.2 / Bouchez et al.): certify against exhaustive search.
  Rng R(2002);
  for (int Round = 0; Round < 40; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 4 + static_cast<unsigned>(R.nextBelow(14));
    Opt.MaxWeight = 25;
    Graph G = randomChordalGraph(R, Opt);
    unsigned Bound = 2 + static_cast<unsigned>(R.nextBelow(2)); // 2 or 3.
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Bound);
    std::vector<char> Mask(G.numVertices(), 1);
    std::vector<VertexId> Layer =
        optimalBoundedLayer(P, Mask, rawWeights(G), Bound);

    BruteForceAllocator Brute;
    AllocationResult Optimal = Brute.allocate(P);
    EXPECT_EQ(G.weightOf(Layer), Optimal.AllocatedWeight)
        << "round " << Round << " bound " << Bound;
    // Feasibility of the DP's own set.
    AllocationResult AsResult = AllocationResult::fromAllocatedSet(G, Layer);
    EXPECT_TRUE(isFeasibleAllocation(P, AsResult.Allocated));
  }
}

TEST(StepLayerTest, MaskExcludesVertices) {
  // Triangle with one masked vertex: the layer may only use the others.
  Graph G(3);
  G.setWeight(0, 10);
  G.setWeight(1, 5);
  G.setWeight(2, 3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(0, 2);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 1);
  std::vector<char> Mask{0, 1, 1}; // Vertex 0 not a candidate.
  std::vector<VertexId> Layer =
      optimalBoundedLayer(P, Mask, {10, 5, 3}, 1);
  EXPECT_EQ(Layer, std::vector<VertexId>{1});
}

TEST(StepLayerTest, DisconnectedComponentsAllContribute) {
  // Two disjoint edges: bound 1 takes the heavier endpoint of each.
  Graph G(4);
  G.setWeight(0, 2);
  G.setWeight(1, 9);
  G.setWeight(2, 7);
  G.setWeight(3, 1);
  G.addEdge(0, 1);
  G.addEdge(2, 3);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 1);
  std::vector<char> Mask(4, 1);
  std::vector<VertexId> Layer =
      optimalBoundedLayer(P, Mask, {2, 9, 7, 1}, 1);
  EXPECT_EQ(Layer, (std::vector<VertexId>{1, 2}));
}

TEST(StepLayerTest, BoundLargerThanCliquesTakesEverything) {
  Rng R(3003);
  ChordalGenOptions Opt;
  Opt.NumVertices = 15;
  Opt.SubtreeSpread = 0.1; // Sparse: small cliques.
  Graph G = randomChordalGraph(R, Opt);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 3);
  if (P.maxLive() <= 3) {
    std::vector<char> Mask(G.numVertices(), 1);
    std::vector<VertexId> Layer =
        optimalBoundedLayer(P, Mask, rawWeights(G), 3);
    EXPECT_EQ(Layer.size(), G.numVertices());
  }
}
