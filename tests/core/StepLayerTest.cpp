//===- tests/core/StepLayerTest.cpp - Clique-tree DP tests ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/StepLayer.h"

#include "alloc/BruteForce.h"
#include "graph/Generators.h"
#include "graph/StableSet.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace layra;

namespace {
std::vector<Weight> rawWeights(const Graph &G) {
  std::vector<Weight> W(G.numVertices());
  for (VertexId V = 0; V < G.numVertices(); ++V)
    W[V] = G.weight(V);
  return W;
}
} // namespace

TEST(StepLayerTest, BoundOneMatchesFranksAlgorithm) {
  Rng R(1001);
  for (int Round = 0; Round < 40; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 3 + static_cast<unsigned>(R.nextBelow(25));
    Graph G = randomChordalGraph(R, Opt);
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, 1);
    std::vector<char> Mask(G.numVertices(), 1);
    std::vector<Weight> W = rawWeights(G);
    std::vector<VertexId> Layer = optimalBoundedLayer(P, Mask, W, 1);
    StableSetResult Frank =
        maximumWeightedStableSetChordal(G, P.Peo, W);
    EXPECT_EQ(G.weightOf(Layer), Frank.TotalWeight) << "round " << Round;
    EXPECT_TRUE(G.isStableSet(Layer));
  }
}

TEST(StepLayerTest, MatchesBruteForceForBoundTwoAndThree) {
  // The DP result for bound k is the optimal allocation with k registers
  // (paper §2.2 / Bouchez et al.): certify against exhaustive search.
  Rng R(2002);
  for (int Round = 0; Round < 40; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 4 + static_cast<unsigned>(R.nextBelow(14));
    Opt.MaxWeight = 25;
    Graph G = randomChordalGraph(R, Opt);
    unsigned Bound = 2 + static_cast<unsigned>(R.nextBelow(2)); // 2 or 3.
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Bound);
    std::vector<char> Mask(G.numVertices(), 1);
    std::vector<VertexId> Layer =
        optimalBoundedLayer(P, Mask, rawWeights(G), Bound);

    BruteForceAllocator Brute;
    AllocationResult Optimal = Brute.allocate(P);
    EXPECT_EQ(G.weightOf(Layer), Optimal.AllocatedWeight)
        << "round " << Round << " bound " << Bound;
    // Feasibility of the DP's own set.
    AllocationResult AsResult = AllocationResult::fromAllocatedSet(G, Layer);
    EXPECT_TRUE(isFeasibleAllocation(P, AsResult.Allocated));
  }
}

TEST(StepLayerTest, MaskExcludesVertices) {
  // Triangle with one masked vertex: the layer may only use the others.
  Graph G(3);
  G.setWeight(0, 10);
  G.setWeight(1, 5);
  G.setWeight(2, 3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(0, 2);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 1);
  std::vector<char> Mask{0, 1, 1}; // Vertex 0 not a candidate.
  std::vector<VertexId> Layer =
      optimalBoundedLayer(P, Mask, {10, 5, 3}, 1);
  EXPECT_EQ(Layer, std::vector<VertexId>{1});
}

TEST(StepLayerTest, DisconnectedComponentsAllContribute) {
  // Two disjoint edges: bound 1 takes the heavier endpoint of each.
  Graph G(4);
  G.setWeight(0, 2);
  G.setWeight(1, 9);
  G.setWeight(2, 7);
  G.setWeight(3, 1);
  G.addEdge(0, 1);
  G.addEdge(2, 3);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 1);
  std::vector<char> Mask(4, 1);
  std::vector<VertexId> Layer =
      optimalBoundedLayer(P, Mask, {2, 9, 7, 1}, 1);
  EXPECT_EQ(Layer, (std::vector<VertexId>{1, 2}));
}

TEST(StepLayerTest, BoundLargerThanCliquesTakesEverything) {
  Rng R(3003);
  ChordalGenOptions Opt;
  Opt.NumVertices = 15;
  Opt.SubtreeSpread = 0.1; // Sparse: small cliques.
  Graph G = randomChordalGraph(R, Opt);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 3);
  if (P.maxLive() <= 3) {
    std::vector<char> Mask(G.numVertices(), 1);
    std::vector<VertexId> Layer =
        optimalBoundedLayer(P, Mask, rawWeights(G), 3);
    EXPECT_EQ(Layer.size(), G.numVertices());
  }
}

TEST(StepLayerTest, EstimateSaturatesOnHugeCliquesInsteadOfOverflowing) {
  // estimateBoundedLayerStates only reads the clique cover, so a huge
  // clique can be declared directly without materialising its O(M^2)
  // edges.  C(20000, 8) is ~3e25: without the saturation clamp the
  // accumulating double would sail past any sensible threshold and the
  // exact solver's DP-vs-ILP dispatch would misbehave.
  AllocationProblem P;
  P.Chordal = true;
  std::vector<VertexId> Huge(20000);
  for (VertexId V = 0; V < Huge.size(); ++V)
    Huge[V] = V;
  P.Cliques.Cliques.push_back(Huge);

  double Estimate = estimateBoundedLayerStates(P, /*Mask=*/{}, /*Bound=*/8);
  EXPECT_EQ(Estimate, 1e18);

  // The per-clique Term/Count loop must saturate, not overflow to inf.
  EXPECT_TRUE(std::isfinite(Estimate));

  // Saturation also triggers on *accumulated* totals: many moderate
  // cliques whose individual counts stay below the cap.
  AllocationProblem Many;
  Many.Chordal = true;
  std::vector<VertexId> Mid(400);
  for (VertexId V = 0; V < Mid.size(); ++V)
    Mid[V] = V;
  // C(400, 8) ~ 1.6e16 per clique; 100 cliques push the sum over 1e18.
  for (int K = 0; K < 100; ++K)
    Many.Cliques.Cliques.push_back(Mid);
  EXPECT_EQ(estimateBoundedLayerStates(Many, {}, 8), 1e18);

  // A respected mask keeps the same clique affordable.
  std::vector<char> Mask(20000, 0);
  for (VertexId V = 0; V < 10; ++V)
    Mask[V] = 1;
  double Small = estimateBoundedLayerStates(P, Mask, 8);
  EXPECT_LT(Small, 2048.0); // Sum of C(10, 0..8) < 2^10.
  EXPECT_GT(Small, 1.0);
}
