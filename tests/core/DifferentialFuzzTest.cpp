//===- tests/core/DifferentialFuzzTest.cpp - Differential fuzzing ---------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing over seeded ProgramGen programs: spill-everywhere
/// is NP-complete even under SSA (Bouchez-Darte-Rastello), so the layered
/// heuristics' only correctness anchor is cross-checking against the exact
/// solvers on many generated instances.  Swept over register counts 2..10,
/// every instance asserts
///  - the heuristic never beats a proven exact optimum (and the exhaustive
///    oracle agrees with branch-and-bound where it is affordable),
///  - cluster register assignments are valid: no interfering pair shares a
///    register,
///  - workspace-reuse runs are byte-identical to fresh-workspace runs --
///    the SolverWorkspace carries capacity, never state.
///
//===----------------------------------------------------------------------===//

#include "alloc/BruteForce.h"
#include "alloc/OptimalBnB.h"
#include "alloc/Pipeline.h"
#include "core/Layered.h"
#include "core/LayeredHeuristic.h"
#include "core/ProblemBuilder.h"
#include "core/SolverWorkspace.h"
#include "core/StepLayer.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

/// Small generated programs keep the exact solvers fast while still
/// exercising loops, branches and redefinitions.
Function makeProgram(uint64_t Seed) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  Opt.NumVars = 8 + static_cast<unsigned>(Seed % 5);
  Opt.MaxBlocks = 16;
  Opt.MaxNesting = 2;
  Opt.ExprsPerBlockMin = 1;
  Opt.ExprsPerBlockMax = 4;
  return generateFunction(R, Opt, "fuzz" + std::to_string(Seed));
}

/// Validity: an allocation's register assignment must give interfering
/// vertices distinct registers, and exactly the allocated vertices one.
void expectValidAssignment(const AllocationProblem &P,
                           const LayeredHeuristicResult &LH,
                           uint64_t Seed, unsigned Regs) {
  const std::vector<char> &Allocated = LH.Allocation.Allocated;
  ASSERT_EQ(Allocated.size(), P.graph().numVertices());
  ASSERT_EQ(LH.RegisterOf.size(), P.graph().numVertices());
  for (VertexId V = 0; V < P.graph().numVertices(); ++V) {
    if (!Allocated[V]) {
      EXPECT_EQ(LH.RegisterOf[V], LayeredHeuristicResult::kNoRegister)
          << "seed=" << Seed << " R=" << Regs << " v=" << V;
      continue;
    }
    EXPECT_LT(LH.RegisterOf[V], P.uniformBudget())
        << "seed=" << Seed << " R=" << Regs << " v=" << V;
    for (VertexId U : P.graph().neighbors(V))
      if (Allocated[U]) {
        EXPECT_NE(LH.RegisterOf[V], LH.RegisterOf[U])
            << "interfering pair shares a register: seed=" << Seed
            << " R=" << Regs << " edge=(" << V << "," << U << ")";
      }
  }
  EXPECT_TRUE(isFeasibleAllocation(P, Allocated))
      << "seed=" << Seed << " R=" << Regs;
}

} // namespace

TEST(DifferentialFuzz, HeuristicsNeverBeatProvenExactAndStayValid) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Function F = makeProgram(Seed);
    SsaConversion Ssa = convertToSsa(F);
    for (unsigned Regs = 2; Regs <= 10; ++Regs) {
      AllocationProblem P = buildSsaProblem(Ssa.Ssa, ST231, Regs);

      LayeredHeuristicResult LH = layeredHeuristicAllocate(P);
      expectValidAssignment(P, LH, Seed, Regs);

      AllocationResult Layered = layeredAllocate(P, LayeredOptions::bfpl());
      EXPECT_TRUE(isFeasibleAllocation(P, Layered.Allocated))
          << "seed=" << Seed << " R=" << Regs;

      OptimalBnBAllocator BnB;
      AllocationResult Exact = BnB.allocate(P);
      if (!Exact.Proven)
        continue;
      EXPECT_TRUE(isFeasibleAllocation(P, Exact.Allocated))
          << "seed=" << Seed << " R=" << Regs;
      // The heuristics may only lose (spill more), never win.
      EXPECT_GE(LH.Allocation.SpillCost, Exact.SpillCost)
          << "seed=" << Seed << " R=" << Regs;
      EXPECT_GE(Layered.SpillCost, Exact.SpillCost)
          << "seed=" << Seed << " R=" << Regs;
      // Where exhaustive search is affordable, it must agree exactly.
      if (P.graph().numVertices() <= 20) {
        AllocationResult Brute = BruteForceAllocator().allocate(P);
        EXPECT_EQ(Brute.SpillCost, Exact.SpillCost)
            << "seed=" << Seed << " R=" << Regs;
        EXPECT_GE(LH.Allocation.SpillCost, Brute.SpillCost)
            << "seed=" << Seed << " R=" << Regs;
      }
    }
  }
}

TEST(DifferentialFuzz, WorkspaceReuseIsByteIdenticalToFreshRuns) {
  // One long-lived workspace spanning every instance and register count --
  // exactly the BatchDriver worker pattern.  Any state leak between
  // checkouts would desynchronize the comparisons below.
  SolverWorkspace Shared;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Function F = makeProgram(Seed);
    SsaConversion Ssa = convertToSsa(F);
    for (unsigned Regs = 2; Regs <= 10; ++Regs) {
      AllocationProblem Fresh = buildSsaProblem(Ssa.Ssa, ST231, Regs);
      AllocationProblem Reused =
          buildSsaProblem(Ssa.Ssa, ST231, Regs, &Shared);
      EXPECT_EQ(Fresh.Peo.Order, Reused.Peo.Order);
      EXPECT_EQ(Fresh.Constraints, Reused.Constraints);

      for (auto Opts : {LayeredOptions::nl(), LayeredOptions::bl(),
                        LayeredOptions::fpl(), LayeredOptions::bfpl()}) {
        AllocationResult A = layeredAllocate(Fresh, Opts);
        AllocationResult B = layeredAllocate(Reused, Opts, &Shared);
        EXPECT_EQ(A.Allocated, B.Allocated);
        EXPECT_EQ(A.SpillCost, B.SpillCost);
      }

      LayeredHeuristicResult HFresh = layeredHeuristicAllocate(Fresh);
      LayeredHeuristicResult HReused =
          layeredHeuristicAllocate(Reused, &Shared);
      EXPECT_EQ(HFresh.Allocation.Allocated, HReused.Allocation.Allocated);
      EXPECT_EQ(HFresh.RegisterOf, HReused.RegisterOf);

      OptimalBnBAllocator BnB;
      AllocationResult EFresh = BnB.allocate(Fresh);
      AllocationResult EReused = BnB.allocate(Reused, &Shared);
      EXPECT_EQ(EFresh.Allocated, EReused.Allocated);
      EXPECT_EQ(EFresh.SpillCost, EReused.SpillCost);
    }

    // Whole-pipeline comparison (what a BatchDriver task actually runs).
    PipelineOptions Opts;
    PipelineResult RFresh = runAllocationPipeline(Ssa.Ssa, ST231, 4, Opts);
    PipelineResult RReused =
        runAllocationPipeline(Ssa.Ssa, ST231, 4, Opts, &Shared);
    EXPECT_EQ(RFresh.TotalSpillCost, RReused.TotalSpillCost);
    EXPECT_EQ(RFresh.Spills.NumLoads, RReused.Spills.NumLoads);
    EXPECT_EQ(RFresh.Spills.NumStores, RReused.Spills.NumStores);
    EXPECT_EQ(RFresh.Rounds, RReused.Rounds);
    EXPECT_EQ(RFresh.Fits, RReused.Fits);
    EXPECT_EQ(RFresh.Regs.RegisterOf, RReused.Regs.RegisterOf);
  }
}

TEST(DifferentialFuzz, ReleaseMemoryResetsArenasWithoutChangingResults) {
  // releaseMemory is the give-back valve for long-lived owners: dropping
  // every arena mid-stream must zero the accounting and leave subsequent
  // solves byte-identical (capacity is the only thing a workspace keeps).
  Function F = makeProgram(3);
  SsaConversion Ssa = convertToSsa(F);
  AllocationProblem P = buildSsaProblem(Ssa.Ssa, ST231, 4);

  SolverWorkspace WS;
  AllocationResult Before = layeredAllocate(P, LayeredOptions::bfpl(), &WS);
  EXPECT_GT(WS.Stats.Acquires, 0u);

  WS.releaseMemory();
  EXPECT_EQ(WS.Stats.Acquires, 0u);
  EXPECT_EQ(WS.Stats.bytesTotal(), 0u);

  AllocationResult After = layeredAllocate(P, LayeredOptions::bfpl(), &WS);
  EXPECT_EQ(Before.Allocated, After.Allocated);
  EXPECT_EQ(Before.SpillCost, After.SpillCost);
  // The post-release run started from cold arenas, so its checkouts must
  // register fresh allocation, not phantom reuse.
  EXPECT_GT(WS.Stats.BytesAllocated, 0u);
}

TEST(DifferentialFuzz, ScalarEraEqualsOneClassTableBehavior) {
  // The register-class refactor's compatibility contract: the scalar
  // entry points (one R) and the class-table entry points (budgets {R})
  // are the same computation, and a single-class function run against a
  // multi-class target behaves exactly as on the one-class target with
  // the same cost model (budgets trim to the classes present).
  for (uint64_t Seed = 31; Seed <= 38; ++Seed) {
    Function F = makeProgram(Seed);
    SsaConversion Ssa = convertToSsa(F);
    for (unsigned Regs = 2; Regs <= 8; Regs += 3) {
      AllocationProblem Scalar = buildSsaProblem(Ssa.Ssa, ST231, Regs);
      AllocationProblem Table =
          buildSsaProblem(Ssa.Ssa, ST231, std::vector<unsigned>{Regs});
      EXPECT_EQ(Scalar.Budgets, Table.Budgets);
      EXPECT_EQ(Scalar.Constraints, Table.Constraints);
      EXPECT_EQ(Scalar.Peo.Order, Table.Peo.Order);

      // allocateProblem's single-class fast path is allocate() verbatim.
      OptimalBnBAllocator BnB;
      AllocationResult Direct = BnB.allocate(Scalar);
      AllocationResult Routed = BnB.allocateProblem(Table);
      EXPECT_EQ(Direct.Allocated, Routed.Allocated);
      EXPECT_EQ(Direct.SpillCost, Routed.SpillCost);

      // st231-br has the identical cost model and class-0 file as st231;
      // class-0-only functions cannot tell them apart.
      PipelineOptions Opts;
      PipelineResult OneClass =
          runAllocationPipeline(Ssa.Ssa, ST231, Regs, Opts);
      PipelineResult TwoClass =
          runAllocationPipeline(Ssa.Ssa, ST231_BR, Regs, Opts);
      EXPECT_EQ(OneClass.TotalSpillCost, TwoClass.TotalSpillCost);
      EXPECT_EQ(OneClass.Spills.NumLoads, TwoClass.Spills.NumLoads);
      EXPECT_EQ(OneClass.Regs.RegisterOf, TwoClass.Regs.RegisterOf);
      EXPECT_EQ(OneClass.Rewritten.toString(), TwoClass.Rewritten.toString());
    }
  }
}

TEST(DifferentialFuzz, MultiClassHeuristicsNeverBeatDirectExact) {
  // Two-class instances: the per-class decomposition (heuristics) against
  // the natively per-constraint-budget branch-and-bound, same anchor as
  // the single-class sweep above.
  SolverWorkspace Shared;
  for (uint64_t Seed = 41; Seed <= 48; ++Seed) {
    Rng R(Seed);
    ProgramGenOptions Opt;
    Opt.NumVars = 8 + static_cast<unsigned>(Seed % 4);
    Opt.MaxBlocks = 16;
    Opt.MaxNesting = 2;
    Opt.ExprsPerBlockMin = 1;
    Opt.ExprsPerBlockMax = 4;
    Opt.NumClasses = 2;
    Opt.AltClassProb = 0.4;
    Function F = generateFunction(R, Opt, "mc" + std::to_string(Seed));
    SsaConversion Ssa = convertToSsa(F);
    for (unsigned Regs = 2; Regs <= 6; ++Regs) {
      AllocationProblem P =
          buildSsaProblem(Ssa.Ssa, ARMv7_VFP, {Regs, 2});
      if (!P.multiClass())
        continue; // Rare: the generator used only one class.
      OptimalBnBAllocator BnB;
      AllocationResult Exact = BnB.allocate(P);
      ASSERT_TRUE(Exact.Proven) << "seed=" << Seed << " R=" << Regs;
      EXPECT_TRUE(isFeasibleAllocation(P, Exact.Allocated));
      for (const char *Name : {"bfpl", "lh"}) {
        AllocationResult H =
            makeAllocator(Name)->allocateProblem(P, &Shared);
        EXPECT_TRUE(isFeasibleAllocation(P, H.Allocated))
            << Name << " seed=" << Seed << " R=" << Regs;
        EXPECT_GE(H.SpillCost, Exact.SpillCost)
            << Name << " seed=" << Seed << " R=" << Regs;
        // Workspace reuse stays byte-identical on the decomposition path.
        AllocationResult HFresh = makeAllocator(Name)->allocateProblem(P);
        EXPECT_EQ(H.Allocated, HFresh.Allocated) << Name;
      }
    }
  }
}

TEST(DifferentialFuzz, StepLayersReuseDpTablesDeterministically) {
  // The step >= 2 clique-tree DP is where cross-layer table reuse is
  // heaviest; sweep it with one shared workspace against fresh solves.
  SolverWorkspace Shared;
  for (uint64_t Seed = 21; Seed <= 26; ++Seed) {
    Function F = makeProgram(Seed);
    SsaConversion Ssa = convertToSsa(F);
    for (unsigned Step = 2; Step <= kMaxLayerStep; ++Step) {
      for (unsigned Regs = Step; Regs <= 8; Regs += 2) {
        AllocationProblem P = buildSsaProblem(Ssa.Ssa, ST231, Regs);
        LayeredOptions Opts;
        Opts.Step = Step;
        AllocationResult A = layeredAllocate(P, Opts);
        AllocationResult B = layeredAllocate(P, Opts, &Shared);
        EXPECT_EQ(A.Allocated, B.Allocated)
            << "seed=" << Seed << " step=" << Step << " R=" << Regs;
        EXPECT_TRUE(isFeasibleAllocation(P, B.Allocated));
      }
    }
  }
}
