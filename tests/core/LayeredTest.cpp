//===- tests/core/LayeredTest.cpp - Layered-optimal allocator tests -------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/Layered.h"

#include "alloc/BruteForce.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

#include <set>

using namespace layra;

namespace {
/// The paper's Figure 5/6 graph (vertices a..g = 0..6, weights
/// 1,2,2,5,2,6,1).
Graph figure6Graph() {
  Graph G;
  G.addVertex(1, "a");
  G.addVertex(2, "b");
  G.addVertex(2, "c");
  G.addVertex(5, "d");
  G.addVertex(2, "e");
  G.addVertex(6, "f");
  G.addVertex(1, "g");
  G.addEdge(0, 3);
  G.addEdge(0, 5);
  G.addEdge(3, 5);
  G.addEdge(3, 4);
  G.addEdge(4, 5);
  G.addEdge(2, 3);
  G.addEdge(2, 4);
  G.addEdge(1, 2);
  G.addEdge(1, 6);
  G.addEdge(6, 2);
  return G;
}

/// The paper's Figure 7 graph: six vertices a..f with maximal cliques
/// {a,d,f}, {b,c,e}, {c,d,e}, {d,e,f}.  Weights chosen so NL allocates
/// {a,b,d} and stops, while the fixed point can still add c or e.
Graph figure7Graph() {
  Graph G;
  G.addVertex(4, "a"); // 0
  G.addVertex(5, "b"); // 1
  G.addVertex(1, "c"); // 2
  G.addVertex(3, "d"); // 3
  G.addVertex(1, "e"); // 4
  G.addVertex(1, "f"); // 5
  G.addEdge(0, 3);
  G.addEdge(0, 5);
  G.addEdge(3, 5);
  G.addEdge(1, 2);
  G.addEdge(1, 4);
  G.addEdge(2, 4);
  G.addEdge(2, 3);
  G.addEdge(3, 4);
  G.addEdge(4, 5);
  return G;
}
} // namespace

TEST(LayeredTest, SingleRegisterEqualsMaximumWeightedStableSet) {
  // With R == 1 and step == 1 the layered allocator IS optimal: one layer,
  // which is the maximum weighted stable set.
  Rng R(42);
  for (int Round = 0; Round < 20; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 4 + static_cast<unsigned>(R.nextBelow(16));
    Graph G = randomChordalGraph(R, Opt);
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, 1);
    AllocationResult Layered = layeredAllocate(P, LayeredOptions::nl());
    BruteForceAllocator Brute;
    AllocationResult Optimal = Brute.allocate(P);
    EXPECT_EQ(Layered.SpillCost, Optimal.SpillCost) << "round " << Round;
  }
}

TEST(LayeredTest, PaperFigure6BiasingSavesOne) {
  // §4.1: on the Figure 5 graph with R = 2, the biased choice {c,f} leads
  // to total spill 4 while the unlucky unbiased tie-break {b,f} leads to 5.
  // (The paper's prose says 3 and 4; its own figure weights give 4 and 5 --
  // the *delta* of 1 is what the example demonstrates.  See DESIGN.md.)
  Graph G = figure6Graph();
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 2);

  AllocationResult Biased = layeredAllocate(P, LayeredOptions::bl());
  EXPECT_EQ(Biased.SpillCost, 4);
  // Biased layer 1 must be {c, f}; the allocation then also takes {b, d}.
  std::vector<VertexId> AllocatedVec = Biased.allocated();
  std::set<VertexId> Allocated(AllocatedVec.begin(), AllocatedVec.end());
  EXPECT_EQ(Allocated, (std::set<VertexId>{1, 2, 3, 5})); // b, c, d, f

  AllocationResult Plain = layeredAllocate(P, LayeredOptions::nl());
  EXPECT_GE(Plain.SpillCost, 4);
  EXPECT_LE(Plain.SpillCost, 5);
  EXPECT_LE(Biased.SpillCost, Plain.SpillCost);
}

TEST(LayeredTest, PaperFigure7FixedPointAllocatesMore) {
  // §4.2: after the R = 2 layers {a,b} and {d}, vertex f sits in the full
  // clique {a,d,f} but c and e are still allocatable; the fixed point takes
  // one of them.
  Graph G = figure7Graph();
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 2);

  AllocationResult Plain = layeredAllocate(P, LayeredOptions::nl());
  EXPECT_EQ(Plain.SpillCost, 3); // Spills c, e, f (1+1+1).
  std::vector<VertexId> PlainVec = Plain.allocated();
  std::set<VertexId> PlainSet(PlainVec.begin(), PlainVec.end());
  EXPECT_EQ(PlainSet, (std::set<VertexId>{0, 1, 3})); // a, b, d

  AllocationResult Fixed = layeredAllocate(P, LayeredOptions::fpl());
  EXPECT_EQ(Fixed.SpillCost, 2); // One of c/e joins; f never can.
  EXPECT_FALSE(Fixed.Allocated[5]) << "f cannot join: clique {a,d,f} full";
  // FPL matches the true optimum here.
  BruteForceAllocator Brute;
  EXPECT_EQ(Fixed.SpillCost, Brute.allocate(P).SpillCost);
}

TEST(LayeredTest, AllVariantsAreFeasibleOnRandomChordalGraphs) {
  Rng R(4242);
  for (int Round = 0; Round < 20; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 10 + static_cast<unsigned>(R.nextBelow(60));
    Graph G = randomChordalGraph(R, Opt);
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(8));
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);
    for (auto Opts : {LayeredOptions::nl(), LayeredOptions::bl(),
                      LayeredOptions::fpl(), LayeredOptions::bfpl()}) {
      AllocationResult Result = layeredAllocate(P, Opts);
      EXPECT_TRUE(isFeasibleAllocation(P, Result.Allocated));
      EXPECT_EQ(Result.AllocatedWeight + Result.SpillCost, G.totalWeight());
    }
  }
}

TEST(LayeredTest, FixedPointDominatesPlainLayered) {
  // FPL only ever adds allocations on top of the NL layers, so its spill
  // cost is never worse.
  Rng R(777);
  for (int Round = 0; Round < 30; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 8 + static_cast<unsigned>(R.nextBelow(50));
    Graph G = randomChordalGraph(R, Opt);
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(6));
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);
    AllocationResult Plain = layeredAllocate(P, LayeredOptions::nl());
    AllocationResult Fixed = layeredAllocate(P, LayeredOptions::fpl());
    EXPECT_LE(Fixed.SpillCost, Plain.SpillCost) << "round " << Round;
  }
}

TEST(LayeredTest, QuasiOptimalOnSmallChordalGraphs) {
  // The paper's headline claim, in miniature: BFPL stays within a few
  // percent of the optimum.  On 60 random small instances we allow 10%
  // aggregate and check the aggregate gap.
  Rng R(31337);
  Weight TotalOpt = 0, TotalBfpl = 0;
  for (int Round = 0; Round < 60; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 6 + static_cast<unsigned>(R.nextBelow(12));
    Opt.MaxWeight = 30;
    Graph G = randomChordalGraph(R, Opt);
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(4));
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);
    AllocationResult Bfpl = layeredAllocate(P, LayeredOptions::bfpl());
    BruteForceAllocator Brute;
    AllocationResult Optimal = Brute.allocate(P);
    EXPECT_GE(Bfpl.SpillCost, Optimal.SpillCost);
    TotalOpt += Optimal.SpillCost;
    TotalBfpl += Bfpl.SpillCost;
  }
  ASSERT_GT(TotalOpt, 0);
  double Ratio = static_cast<double>(TotalBfpl) / static_cast<double>(TotalOpt);
  EXPECT_LT(Ratio, 1.10) << "BFPL lost quasi-optimality: " << Ratio;
}

TEST(LayeredTest, LargeRegisterCountAllocatesEverything) {
  Rng R(55);
  ChordalGenOptions Opt;
  Opt.NumVertices = 40;
  Graph G = randomChordalGraph(R, Opt);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 64);
  for (auto Opts : {LayeredOptions::nl(), LayeredOptions::bfpl()}) {
    AllocationResult Result = layeredAllocate(P, Opts);
    EXPECT_EQ(Result.SpillCost, 0);
  }
}

TEST(LayeredTest, StepTwoIsFeasibleAndNoWorseAggregate) {
  // step == 2 layers are optimal for two registers at a time; per §2.3 the
  // result should stay close to (and never beat) the optimum but must
  // always be feasible.
  Rng R(808);
  for (int Round = 0; Round < 15; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 8 + static_cast<unsigned>(R.nextBelow(20));
    Graph G = randomChordalGraph(R, Opt);
    unsigned Regs = 2 + static_cast<unsigned>(R.nextBelow(4));
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);
    LayeredOptions Step2;
    Step2.Step = 2;
    AllocationResult Result = layeredAllocate(P, Step2);
    EXPECT_TRUE(isFeasibleAllocation(P, Result.Allocated));
  }
}

TEST(LayeredTest, ZeroWeightVerticesSpillForFree) {
  Graph G(3);
  G.setWeight(0, 0);
  G.setWeight(1, 0);
  G.setWeight(2, 0);
  G.addEdge(0, 1);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 1);
  AllocationResult Result = layeredAllocate(P, LayeredOptions::bfpl());
  EXPECT_EQ(Result.SpillCost, 0);
  EXPECT_TRUE(isFeasibleAllocation(P, Result.Allocated));
}
