//===- tests/core/CoalescingTest.cpp - Coalescing tests -------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/Coalescing.h"

#include "../ir/IrTestHelpers.h"
#include "core/Layered.h"
#include "core/ProblemBuilder.h"
#include "graph/Chordal.h"
#include "ir/LoopInfo.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"

#include <gtest/gtest.h>

using namespace layra;
using namespace layra::irtest;

TEST(CoalescingTest, CollectsCopyAndPhiAffinities) {
  Function F("f");
  BlockId Entry = F.makeBlock(), Left = F.makeBlock(),
          Right = F.makeBlock(), Merge = F.makeBlock();
  ValueId C = F.makeValue("c"), X = F.makeValue("x"), L = F.makeValue("l"),
          R = F.makeValue("r"), M = F.makeValue("m");
  op(F, Entry, C);
  copy(F, Entry, X, C); // Copy affinity (x, c).
  br(F, Entry, C);
  op(F, Left, L, {X});
  br(F, Left, C);
  op(F, Right, R, {X});
  br(F, Right, C);
  F.addEdge(Entry, Left);
  F.addEdge(Entry, Right);
  F.addEdge(Left, Merge);
  F.addEdge(Right, Merge);
  phi(F, Merge, M, {L, R}); // Phi affinities (m, l) and (m, r).
  ret(F, Merge, {M});

  std::vector<Affinity> Affinities = collectAffinities(F);
  ASSERT_EQ(Affinities.size(), 3u);
  unsigned CopyCount = 0, PhiCount = 0;
  for (const Affinity &A : Affinities) {
    if ((A.A == std::min(C, X)) && (A.B == std::max(C, X)))
      ++CopyCount;
    if (A.A == std::min(M, L) || A.B == std::max(M, R))
      ++PhiCount;
    EXPECT_GT(A.Benefit, 0);
  }
  EXPECT_EQ(CopyCount, 1u);
  EXPECT_GE(PhiCount, 1u);
}

TEST(CoalescingTest, RepeatedCopiesMergeBenefits) {
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), X = F.makeValue("x"), Y = F.makeValue("y");
  op(F, B, A);
  copy(F, B, X, A);
  copy(F, B, Y, A); // Second affinity with A, different pair.
  ret(F, B, {X, Y});
  std::vector<Affinity> Affinities = collectAffinities(F);
  EXPECT_EQ(Affinities.size(), 2u);
}

TEST(CoalescingTest, ConservativeCoalescingNeverMergesInterfering) {
  // a and b overlap: the affinity between them must be rejected.
  Graph G(2);
  G.setWeight(0, 5);
  G.setWeight(1, 5);
  G.addEdge(0, 1);
  CoalescingResult Out =
      coalesceConservative(G, {{0, 1, 10}}, /*NumRegisters=*/4);
  EXPECT_EQ(Out.Merged, 0u);
  EXPECT_EQ(Out.Coalesced.numVertices(), 2u);
}

TEST(CoalescingTest, MergesNonInterferingPairAndSumsWeights) {
  Graph G(3);
  G.setWeight(0, 5);
  G.setWeight(1, 7);
  G.setWeight(2, 1);
  G.addEdge(1, 2); // 0 and 1 do not interfere.
  CoalescingResult Out = coalesceConservative(G, {{0, 1, 3}}, 4);
  EXPECT_EQ(Out.Merged, 1u);
  EXPECT_EQ(Out.BenefitRealized, 3);
  EXPECT_EQ(Out.Coalesced.numVertices(), 2u);
  // The merged node carries both weights and the union of edges.
  VertexId Rep = Out.CoalescedIndex[0];
  EXPECT_EQ(Rep, Out.CoalescedIndex[1]);
  EXPECT_EQ(Out.Coalesced.weight(Rep), 12);
  EXPECT_TRUE(Out.Coalesced.hasEdge(Rep, Out.CoalescedIndex[2]));
}

TEST(CoalescingTest, BriggsTestBlocksRiskyMerges) {
  // K4 plus two pendant vertices x, y with an affinity: merging x and y
  // would create a node with 4 significant (degree >= 2) neighbors at
  // R = 2, so the conservative test must refuse.
  Graph G(6);
  for (VertexId V = 0; V < 4; ++V)
    for (VertexId U = V + 1; U < 4; ++U)
      G.addEdge(V, U);
  G.addEdge(4, 0);
  G.addEdge(4, 1);
  G.addEdge(5, 2);
  G.addEdge(5, 3);
  for (VertexId V = 0; V < 6; ++V)
    G.setWeight(V, 1);
  CoalescingResult Out = coalesceConservative(G, {{4, 5, 100}}, 2);
  EXPECT_EQ(Out.Merged, 0u);
  // With plenty of registers the same merge is fine.
  CoalescingResult Relaxed = coalesceConservative(G, {{4, 5, 100}}, 8);
  EXPECT_EQ(Relaxed.Merged, 1u);
}

TEST(CoalescingTest, CoalescedChordalGraphStaysAllocatable) {
  Rng R(17);
  for (int Round = 0; Round < 10; ++Round) {
    ProgramGenOptions Opt;
    Opt.CopyProb = 0.3; // Copy-rich.
    Function F = generateFunction(R, Opt);
    DominatorTree Dom(F);
    LoopInfo Loops(F, Dom);
    Loops.annotate(F);
    SsaConversion Conv = convertToSsa(F);
    AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, 4);
    std::vector<Affinity> Affinities = collectAffinities(Conv.Ssa);
    CoalescingResult Out =
        coalesceConservative(P.graph(), Affinities, P.uniformBudget());
    // The coalesced graph of a chordal graph after conservative merging
    // still supports the layered allocator (it requires chordality; merged
    // SSA graphs can in principle lose it, so only assert when it holds --
    // and it must hold for the majority of these small cases).
    if (isChordal(Out.Coalesced)) {
      AllocationProblem Q = AllocationProblem::fromChordalGraph(
          Out.Coalesced, P.uniformBudget());
      AllocationResult Result = layeredAllocate(Q, LayeredOptions::bfpl());
      EXPECT_TRUE(isFeasibleAllocation(Q, Result.Allocated));
    }
  }
}

TEST(CoalescingTest, BiasedAssignmentRemovesCopies) {
  // chain: a -> copy x -> copy y with no interference: biased assignment
  // puts all three in one register; the plain scan may too (they are
  // sequential), so check the copy-cost metric instead.
  Function F("f");
  BlockId B = F.makeBlock();
  ValueId A = F.makeValue("a"), X = F.makeValue("x"), Y = F.makeValue("y");
  op(F, B, A);
  copy(F, B, X, A);
  copy(F, B, Y, X);
  ret(F, B, {Y});
  SsaConversion Conv = convertToSsa(F);
  AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, 4);
  std::vector<Affinity> Affinities = collectAffinities(Conv.Ssa);
  std::vector<char> All(P.graph().numVertices(), 1);
  Assignment Biased = assignRegistersBiased(P, All, Affinities);
  EXPECT_TRUE(Biased.Success);
  EXPECT_EQ(remainingCopyCost(Affinities, All, Biased.RegisterOf), 0);
}

TEST(CoalescingTest, BiasedAssignmentNeverWorseOnCopyCost) {
  Rng R(18);
  Weight PlainTotal = 0, BiasedTotal = 0;
  for (int Round = 0; Round < 15; ++Round) {
    ProgramGenOptions Opt;
    Opt.CopyProb = 0.25;
    Function F = generateFunction(R, Opt);
    SsaConversion Conv = convertToSsa(F);
    AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, 6);
    AllocationResult Alloc = layeredAllocate(P, LayeredOptions::bfpl());
    std::vector<Affinity> Affinities = collectAffinities(Conv.Ssa);
    Assignment Plain = assignRegisters(P, Alloc.Allocated);
    Assignment Biased = assignRegistersBiased(P, Alloc.Allocated, Affinities);
    EXPECT_EQ(Plain.Success, Biased.Success);
    PlainTotal +=
        remainingCopyCost(Affinities, Alloc.Allocated, Plain.RegisterOf);
    BiasedTotal +=
        remainingCopyCost(Affinities, Alloc.Allocated, Biased.RegisterOf);
  }
  EXPECT_LE(BiasedTotal, PlainTotal);
  EXPECT_LT(BiasedTotal, PlainTotal) << "bias should help on copy-rich code";
}
