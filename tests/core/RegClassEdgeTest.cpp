//===- tests/core/RegClassEdgeTest.cpp - Multi-class edge cases -----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-class edge cases the register-class refactor (PR 4) left
/// untested: projecting a class with no members, `--class-regs`
/// overriding class 0 (the override must win over the swept --regs
/// value, end to end through the batch driver), and budgets exceeding a
/// class's architectural register count (budgets are solver inputs, not
/// hardware claims -- an oversized budget must behave exactly like "no
/// pressure in this file").
///
//===----------------------------------------------------------------------===//

#include "alloc/OptimalBnB.h"
#include "core/ProblemBuilder.h"
#include "driver/BatchDriver.h"
#include "graph/Graph.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

/// A two-class SSA function (armv7-vfp shaped).
Function makeMixedSsa(uint64_t Seed) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  Opt.NumVars = 10;
  Opt.MaxBlocks = 14;
  Opt.MaxNesting = 2;
  Opt.ExprsPerBlockMin = 1;
  Opt.ExprsPerBlockMax = 4;
  Opt.NumClasses = 2;
  Opt.AltClassProb = 0.4;
  Function F = generateFunction(R, Opt, "edge" + std::to_string(Seed));
  return convertToSsa(F).Ssa;
}

} // namespace

TEST(RegClassEdgeTest, ProjectClassWithNoMembersYieldsAnEmptyProblem) {
  // A two-class problem whose second class has no vertices: projecting
  // it must yield a well-formed empty problem, and solving must treat
  // the class as trivially satisfied.
  Graph G;
  VertexId A = G.addVertex(5, "a");
  VertexId B = G.addVertex(3, "b");
  VertexId C = G.addVertex(2, "c");
  G.addEdge(A, B);
  G.addEdge(B, C);
  AllocationProblem P = AllocationProblem::fromChordalGraph(
      G, {2, 4}, std::vector<RegClassId>(3, 0));

  std::vector<VertexId> ToGlobal;
  AllocationProblem Empty = P.projectClass(1, ToGlobal);
  EXPECT_EQ(Empty.graph().numVertices(), 0u);
  EXPECT_TRUE(ToGlobal.empty());
  EXPECT_TRUE(Empty.fitsBudgets());
  EXPECT_TRUE(isFeasibleAllocation(Empty, {}));

  // The class-aware entry point must route around the empty class and
  // still solve class 0 exactly.
  OptimalBnBAllocator BnB;
  AllocationResult Routed = BnB.allocateProblem(P);
  AllocationResult Occupied = P.multiClass()
                                  ? Routed
                                  : BnB.allocate(P); // (multiClass holds)
  EXPECT_TRUE(Routed.Proven);
  EXPECT_TRUE(isFeasibleAllocation(P, Routed.Allocated));
  EXPECT_EQ(Routed.Allocated, Occupied.Allocated);

  // Projecting the populated class covers every vertex.
  AllocationProblem Full = P.projectClass(0, ToGlobal);
  EXPECT_EQ(Full.graph().numVertices(), 3u);
  EXPECT_EQ(ToGlobal.size(), 3u);
}

TEST(RegClassEdgeTest, ClassRegsOverrideOfClassZeroWinsOverRegs) {
  // resolveClassBudgets: a class-0 override replaces the swept value.
  std::string Error;
  std::vector<unsigned> Budgets =
      resolveClassBudgets(ST231, 4, {{"gpr", 7}}, &Error);
  EXPECT_EQ(Budgets, std::vector<unsigned>{7});

  Budgets = resolveClassBudgets(ARMv7_VFP, 4, {{"gpr", 6}, {"vfp", 8}},
                                &Error);
  EXPECT_EQ(Budgets, (std::vector<unsigned>{6, 8}));

  // Unknown class names are rejected with the target's name in the
  // message.
  Budgets = resolveClassBudgets(ST231, 4, {{"vfp", 8}}, &Error);
  EXPECT_TRUE(Budgets.empty());
  EXPECT_NE(Error.find("st231"), std::string::npos) << Error;

  // End to end: a job overriding class 0 to R' must report exactly what
  // a plain --regs=R' job reports (outcomes, not just budgets).
  Suite S;
  S.Name = "edge";
  SuiteProgram Prog;
  Prog.Name = "p";
  for (uint64_t Seed = 1; Seed <= 3; ++Seed)
    Prog.Functions.push_back(makeMixedSsa(Seed));
  S.Programs.push_back(std::move(Prog));

  BatchJob Overridden;
  Overridden.SuiteName = S.Name;
  Overridden.SuiteData = &S;
  Overridden.Target = ARMv7_VFP;
  Overridden.NumRegisters = 4;           // Loses to the override.
  Overridden.ClassRegs = {{"gpr", 6}};
  BatchJob Plain = Overridden;
  Plain.NumRegisters = 6;
  Plain.ClassRegs.clear();

  BatchDriver Driver(1);
  DriverReport Report = Driver.run({Overridden, Plain});
  ASSERT_EQ(Report.Jobs.size(), 2u);
  const JobReport &JobA = Report.Jobs[0], &JobB = Report.Jobs[1];
  EXPECT_EQ(JobA.Job.Budgets, JobB.Job.Budgets);
  EXPECT_EQ(JobA.TotalSpillCost, JobB.TotalSpillCost);
  EXPECT_EQ(JobA.TotalLoads, JobB.TotalLoads);
  EXPECT_EQ(JobA.TotalStores, JobB.TotalStores);
  EXPECT_EQ(JobA.FunctionsFit, JobB.FunctionsFit);
  ASSERT_EQ(JobA.Tasks.size(), JobB.Tasks.size());
  for (size_t I = 0; I < JobA.Tasks.size(); ++I) {
    EXPECT_EQ(JobA.Tasks[I].Out.SpillCost, JobB.Tasks[I].Out.SpillCost);
    EXPECT_EQ(JobA.Tasks[I].Key, JobB.Tasks[I].Key)
        << "identical resolved budgets must produce identical cache keys";
  }
  // In fact the second job must be served from the first one's cache.
  EXPECT_EQ(Report.CacheHits, JobA.Tasks.size());
}

TEST(RegClassEdgeTest, BudgetBeyondArchitecturalCountBehavesAsNoPressure) {
  // vfp has 32 architectural registers; a budget of 64 is a legal solver
  // input and must act exactly like "this file never spills".
  std::string Error;
  std::vector<unsigned> Budgets =
      resolveClassBudgets(ARMv7_VFP, 4, {{"vfp", 64}}, &Error);
  EXPECT_EQ(Budgets, (std::vector<unsigned>{4, 64}));

  OptimalBnBAllocator BnB;
  for (uint64_t Seed = 21; Seed <= 24; ++Seed) {
    Function F = makeMixedSsa(Seed);
    AllocationProblem Huge = buildSsaProblem(F, ARMv7_VFP, {3, 64});
    AllocationProblem Arch = buildSsaProblem(F, ARMv7_VFP, {3, 32});

    AllocationResult RHuge = BnB.allocateProblem(Huge);
    AllocationResult RArch = BnB.allocateProblem(Arch);
    ASSERT_TRUE(RHuge.Proven);
    ASSERT_TRUE(RArch.Proven);
    EXPECT_TRUE(isFeasibleAllocation(Huge, RHuge.Allocated));

    // Cross-class non-interference: inflating the vfp budget cannot
    // change anything (32 already exceeds any generated pressure), and
    // the gpr side must be untouched either way.
    EXPECT_EQ(RHuge.Allocated, RArch.Allocated) << "seed=" << Seed;
    EXPECT_EQ(RHuge.SpillCost, RArch.SpillCost);

    // No vfp value may spill under a budget beyond its class pressure.
    if (Huge.multiClass()) {
      for (VertexId V = 0; V < Huge.graph().numVertices(); ++V)
        if (Huge.classOf(V) == 1) {
          EXPECT_TRUE(RHuge.Allocated[V]) << "seed=" << Seed << " v=" << V;
        }
    }
  }
}
