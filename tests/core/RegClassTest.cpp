//===- tests/core/RegClassTest.cpp - Register-class end-to-end tests ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register classes end-to-end: the target class tables, the `:$class`
/// textual-IR suffix, class-pure interference construction, and -- the
/// core invariant -- cross-class NON-interference of budgets: squeezing
/// one class's register file must never change another class's spill
/// decisions, because values of different files never compete for a
/// register (the per-pressure-constraint structure of Bouchez et al.
/// generalized to per-class constraints).
///
//===----------------------------------------------------------------------===//

#include "alloc/BruteForce.h"
#include "alloc/OptimalBnB.h"
#include "alloc/Pipeline.h"
#include "core/ProblemBuilder.h"
#include "ir/Interference.h"
#include "ir/Liveness.h"
#include "ir/Parser.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

/// A small generated two-class function (class 0 plus a "vfp"-like class
/// 1), converted to SSA.
Function makeMixedSsa(uint64_t Seed, unsigned NumVars = 10) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  Opt.NumVars = NumVars;
  Opt.MaxBlocks = 16;
  Opt.MaxNesting = 2;
  Opt.ExprsPerBlockMin = 1;
  Opt.ExprsPerBlockMax = 4;
  Opt.NumClasses = 2;
  Opt.AltClassProb = 0.4;
  Function F = generateFunction(R, Opt, "mixed" + std::to_string(Seed));
  return convertToSsa(F).Ssa;
}

/// The allocation flags of \p Result restricted to class \p Class of \p P.
std::vector<char> classFlags(const AllocationProblem &P,
                             const AllocationResult &Result,
                             RegClassId Class) {
  std::vector<char> Out;
  for (VertexId V = 0; V < P.graph().numVertices(); ++V)
    if (P.classOf(V) == Class)
      Out.push_back(Result.Allocated[V]);
  return Out;
}

} // namespace

TEST(RegClassTest, TargetTablesAndRegistry) {
  const TargetDesc *Vfp = targetByName("armv7-vfp");
  ASSERT_NE(Vfp, nullptr);
  EXPECT_EQ(Vfp->numClasses(), 2u);
  EXPECT_STREQ(Vfp->regClass(0).Name, "gpr");
  EXPECT_EQ(Vfp->regClass(0).NumRegisters, 16u);
  EXPECT_STREQ(Vfp->regClass(1).Name, "vfp");
  EXPECT_EQ(Vfp->regClass(1).NumRegisters, 32u);
  EXPECT_EQ(Vfp->classIdByName("vfp"), 1);
  EXPECT_EQ(Vfp->classIdByName("mmx"), -1);

  const TargetDesc *Br = targetByName("st231-br");
  ASSERT_NE(Br, nullptr);
  EXPECT_EQ(Br->numClasses(), 2u);
  EXPECT_STREQ(Br->regClass(1).Name, "br");
  EXPECT_EQ(Br->regClass(1).NumRegisters, 8u);

  // Historical targets are one-class tables.
  for (const char *Name : {"st231", "armv7-a8", "x86-64"}) {
    const TargetDesc *T = targetByName(Name);
    ASSERT_NE(T, nullptr) << Name;
    EXPECT_EQ(T->numClasses(), 1u) << Name;
    EXPECT_EQ(T->regClass(0).NumRegisters, T->NumRegisters) << Name;
  }

  // Budget resolution: class 0 from the sweep, others architectural,
  // overrides by name; unknown names are an error.
  std::vector<unsigned> Budgets = resolveClassBudgets(*Vfp, 4, {});
  EXPECT_EQ(Budgets, (std::vector<unsigned>{4, 32}));
  Budgets = resolveClassBudgets(*Vfp, 4, {{"vfp", 8}});
  EXPECT_EQ(Budgets, (std::vector<unsigned>{4, 8}));
  std::string Error;
  EXPECT_TRUE(resolveClassBudgets(*Vfp, 4, {{"mmx", 8}}, &Error).empty());
  EXPECT_FALSE(Error.empty());

  // The shared listing mentions every registered target once.
  std::string Listing = formatTargetList();
  for (const TargetDesc *T : knownTargets())
    EXPECT_NE(Listing.find(T->Name), std::string::npos) << T->Name;
}

TEST(RegClassTest, ParserRoundTripsClassSuffix) {
  const char *Text = "function f {\n"
                     "entry:\n"
                     "  %a = op\n"
                     "  %b:$1 = op %a\n"
                     "  %c:$1 = copy %b\n"
                     "  ret %a, %c\n"
                     "}\n";
  ParsedFunction P = parseFunction(Text);
  ASSERT_TRUE(P.Ok) << P.Error;
  ASSERT_EQ(P.F.numValues(), 3u);
  EXPECT_EQ(P.F.valueClass(0), 0u);
  EXPECT_EQ(P.F.valueClass(1), 1u);
  EXPECT_EQ(P.F.valueClass(2), 1u);
  EXPECT_EQ(P.F.maxValueClass(), 1u);

  // Printing marks non-default classes at the definition; a reparse gives
  // the identical function text.
  std::string Printed = P.F.toString();
  EXPECT_NE(Printed.find("%b:$1 = op"), std::string::npos) << Printed;
  ParsedFunction Again = parseFunction(Printed);
  ASSERT_TRUE(Again.Ok) << Again.Error;
  EXPECT_EQ(Again.F.toString(), Printed);
  EXPECT_EQ(Again.F.valueClass(1), 1u);
}

TEST(RegClassTest, ParserRejectsBadClassSuffixes) {
  // Out-of-range class id.
  EXPECT_FALSE(parseFunction("function f {\nentry:\n  %a:$9 = op\n  ret %a\n}\n").Ok);
  // Suffix on a use.
  EXPECT_FALSE(parseFunction("function f {\nentry:\n  %a:$1 = op\n  ret %a:$1\n}\n").Ok);
  // Conflicting classes across two defs of one (non-SSA) value.
  EXPECT_FALSE(parseFunction("function f {\nentry:\n  %a:$1 = op\n  %a:$2 = op\n  ret %a\n}\n").Ok);
  // Missing number.
  EXPECT_FALSE(parseFunction("function f {\nentry:\n  %a:$ = op\n  ret %a\n}\n").Ok);
}

TEST(RegClassTest, InterferenceNeverCrossesClasses) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    Function F = makeMixedSsa(Seed);
    ASSERT_EQ(F.maxValueClass(), 1u) << "seed " << Seed
        << ": generator produced no class-1 values; adjust AltClassProb";
    Liveness Live(F);
    std::vector<Weight> Costs = computeSpillCosts(F, ARMv7_VFP);
    InterferenceInfo Info = buildInterference(F, Live, Costs);
    for (VertexId V = 0; V < Info.G.numVertices(); ++V)
      for (VertexId U : Info.G.neighbors(V))
        EXPECT_EQ(F.valueClass(V), F.valueClass(U))
            << "cross-class interference edge (" << V << "," << U << ")";
    // Per-class pressure is tracked separately and bounds the global max.
    ASSERT_EQ(Info.MaxLiveByClass.size(), 2u);
    EXPECT_EQ(Info.MaxLive, std::max(Info.MaxLiveByClass[0],
                                     Info.MaxLiveByClass[1]));
    EXPECT_GT(Info.MaxLiveByClass[0], 0u);
    EXPECT_GT(Info.MaxLiveByClass[1], 0u);
  }
}

TEST(RegClassTest, ClassZeroFunctionsBehaveIdenticallyOnMultiClassTargets) {
  // armv7-a8 and armv7-vfp share the cost model and the class-0 file; a
  // function that never uses class 1 must produce the identical problem
  // and the identical pipeline outcome on both -- the "one-class table"
  // compatibility guarantee of the refactor.
  Rng R(77);
  ProgramGenOptions Opt;
  Opt.NumVars = 10;
  Opt.MaxBlocks = 16;
  Function F = convertToSsa(generateFunction(R, Opt)).Ssa;
  ASSERT_EQ(F.maxValueClass(), 0u);

  AllocationProblem A = buildSsaProblem(F, ARMv7, 4);
  AllocationProblem B = buildSsaProblem(F, ARMv7_VFP, 4);
  EXPECT_EQ(B.numClasses(), 1u); // Trimmed to the classes present.
  EXPECT_EQ(A.Budgets, B.Budgets);
  EXPECT_EQ(A.Constraints, B.Constraints);

  PipelineResult PA = runAllocationPipeline(F, ARMv7, 4);
  PipelineResult PB = runAllocationPipeline(F, ARMv7_VFP, 4);
  EXPECT_EQ(PA.TotalSpillCost, PB.TotalSpillCost);
  EXPECT_EQ(PA.Spills.NumLoads, PB.Spills.NumLoads);
  EXPECT_EQ(PA.Regs.RegisterOf, PB.Regs.RegisterOf);
  EXPECT_EQ(PA.Rewritten.toString(), PB.Rewritten.toString());
}

TEST(RegClassTest, CrossClassBudgetNonInterference) {
  // THE core invariant: varying one class's budget never changes another
  // class's allocation.  Exercised with the exact solver (optimal is
  // unique-cost, so flag equality is meaningful) and the default layered
  // pipeline allocator through the decomposition path.
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    Function F = makeMixedSsa(Seed);
    AllocationProblem Base = buildSsaProblem(F, ARMv7_VFP, 3);
    ASSERT_TRUE(Base.multiClass());

    OptimalBnBAllocator BnB;
    AllocationResult Ref = BnB.allocateProblem(Base);
    ASSERT_TRUE(Ref.Proven);
    std::vector<char> Class0Ref = classFlags(Base, Ref, 0);
    std::vector<char> Class1Ref = classFlags(Base, Ref, 1);

    // Sweep class 1's budget: class 0's optimal allocation is untouched.
    for (unsigned Vfp : {1u, 2u, 4u, 32u}) {
      AllocationProblem P = Base.withBudgets({3, Vfp});
      AllocationResult R = BnB.allocateProblem(P);
      ASSERT_TRUE(R.Proven);
      EXPECT_TRUE(isFeasibleAllocation(P, R.Allocated));
      EXPECT_EQ(classFlags(P, R, 0), Class0Ref)
          << "seed=" << Seed << " vfp=" << Vfp
          << ": class-1 budget changed class-0 decisions";
    }
    // And symmetrically: sweeping class 0 leaves class 1 untouched.
    for (unsigned Gpr : {1u, 2u, 5u, 16u}) {
      AllocationProblem P = Base.withBudgets({Gpr, 32});
      AllocationResult R = BnB.allocateProblem(P);
      ASSERT_TRUE(R.Proven);
      EXPECT_EQ(classFlags(P, R, 1), Class1Ref)
          << "seed=" << Seed << " gpr=" << Gpr
          << ": class-0 budget changed class-1 decisions";
    }
  }
}

TEST(RegClassTest, DecompositionMatchesDirectMultiClassSolvers) {
  // OptimalBnB understands per-constraint budgets natively; the generic
  // per-class decomposition must land on the same optimum.  BruteForce
  // cross-checks both where affordable.
  for (uint64_t Seed = 11; Seed <= 16; ++Seed) {
    Function F = makeMixedSsa(Seed, /*NumVars=*/8);
    for (unsigned Gpr = 2; Gpr <= 5; ++Gpr) {
      AllocationProblem P = buildSsaProblem(F, ARMv7_VFP, {Gpr, 2});
      ASSERT_TRUE(P.multiClass());

      OptimalBnBAllocator BnB;
      AllocationResult Direct = BnB.allocate(P);
      AllocationResult Split = BnB.allocateProblem(P);
      ASSERT_TRUE(Direct.Proven);
      ASSERT_TRUE(Split.Proven);
      EXPECT_TRUE(isFeasibleAllocation(P, Direct.Allocated));
      EXPECT_TRUE(isFeasibleAllocation(P, Split.Allocated));
      EXPECT_EQ(Direct.SpillCost, Split.SpillCost)
          << "seed=" << Seed << " gpr=" << Gpr;

      if (P.graph().numVertices() <= 22) {
        AllocationResult Brute = BruteForceAllocator().allocateProblem(P);
        EXPECT_EQ(Brute.SpillCost, Direct.SpillCost)
            << "seed=" << Seed << " gpr=" << Gpr;
      }

      // Heuristics route through the same decomposition: feasible, never
      // better than the proven optimum.
      for (const char *Name : {"bfpl", "lh", "gc", "ls"}) {
        AllocationResult H = makeAllocator(Name)->allocateProblem(P);
        EXPECT_TRUE(isFeasibleAllocation(P, H.Allocated))
            << Name << " seed=" << Seed;
        EXPECT_GE(H.SpillCost, Direct.SpillCost) << Name;
      }
    }
  }
}

TEST(RegClassTest, MultiClassPipelineEndToEnd) {
  for (uint64_t Seed = 21; Seed <= 24; ++Seed) {
    Function F = makeMixedSsa(Seed);

    // Tight budgets force spilling in both files.
    PipelineResult Tight = runAllocationPipeline(F, ARMv7_VFP, {2, 2});
    std::string VerifyError;
    EXPECT_TRUE(verifyFunction(Tight.Rewritten, /*ExpectSsa=*/true,
                               &VerifyError))
        << VerifyError;
    // Spill temporaries inherit their value's class: the rewritten
    // function introduces no cross-class interference, so its problem
    // still splits cleanly (buildSsaProblem would abort otherwise).
    AllocationProblem Rewritten =
        buildSsaProblem(Tight.Rewritten, ARMv7_VFP, {2, 2});
    for (VertexId V = 0; V < Rewritten.graph().numVertices(); ++V)
      for (VertexId U : Rewritten.graph().neighbors(V))
        EXPECT_EQ(Rewritten.classOf(V), Rewritten.classOf(U));

    // Assignment is (class, index): indices stay below the class budget
    // and interfering (same-class) neighbors never share an index.
    const Assignment &Regs = Tight.Regs;
    ASSERT_EQ(Regs.ClassOf.size(), Regs.RegisterOf.size());
    for (VertexId V = 0; V < Regs.RegisterOf.size(); ++V) {
      if (Regs.RegisterOf[V] == Assignment::kNoRegister)
        continue;
      EXPECT_LT(Regs.RegisterOf[V], 2u); // Both budgets are 2.
    }

    // Generous budgets: everything fits, nothing spills.
    PipelineResult Roomy = runAllocationPipeline(F, ARMv7_VFP, {16, 32});
    EXPECT_TRUE(Roomy.Fits) << "seed=" << Seed;
    EXPECT_EQ(Roomy.TotalSpillCost, 0) << "seed=" << Seed;
    EXPECT_EQ(Roomy.Rounds, 1u) << "seed=" << Seed;
  }
}

TEST(RegClassTest, GeneralProblemsSplitPointSetsPerClass) {
  // Non-SSA (general) instances: every pressure constraint must be
  // class-pure, and isFeasibleAllocation must check each against its own
  // class's budget.
  for (uint64_t Seed = 31; Seed <= 34; ++Seed) {
    Rng R(Seed);
    ProgramGenOptions Opt;
    Opt.NumVars = 10;
    Opt.MaxBlocks = 14;
    Opt.NumClasses = 2;
    Opt.AltClassProb = 0.4;
    Function F = generateFunction(R, Opt);
    AllocationProblem P = buildGeneralProblem(F, ARMv7_VFP, {3, 2});
    ASSERT_TRUE(P.multiClass());
    std::vector<char> Covered(P.graph().numVertices(), 0);
    for (const PressureConstraint &C : P.Constraints) {
      EXPECT_EQ(C.Budget, P.budgetOf(C.Class));
      for (VertexId V : C.Members) {
        EXPECT_EQ(P.classOf(V), C.Class);
        Covered[V] = 1;
      }
    }
    for (VertexId V = 0; V < P.graph().numVertices(); ++V)
      EXPECT_TRUE(Covered[V]) << "vertex " << V << " in no constraint";

    // The layered heuristic (general-graph path) through decomposition.
    AllocationResult H = makeAllocator("lh")->allocateProblem(P);
    EXPECT_TRUE(isFeasibleAllocation(P, H.Allocated)) << "seed=" << Seed;
  }
}
