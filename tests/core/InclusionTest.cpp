//===- tests/core/InclusionTest.cpp - Spill-set inclusion (Figure 2) ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §2.3 / Figure 2: optimal spill sets are *not* monotone in the
/// register count in general (the counter-example), yet inclusion holds for
/// the overwhelming majority of real instances -- which is why stepwise
/// (layered) allocation is quasi-optimal.
///
//===----------------------------------------------------------------------===//

#include "alloc/BruteForce.h"
#include "core/Layered.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

#include <set>

using namespace layra;

namespace {
/// A 5-vertex counter-example in the spirit of Figure 2: path a-b-c-d-e
/// plus chord b-d, weights a=3 b=4 c=2 d=4 e=3.
Graph counterExampleGraph() {
  Graph G;
  G.addVertex(3, "a"); // 0
  G.addVertex(4, "b"); // 1
  G.addVertex(2, "c"); // 2
  G.addVertex(4, "d"); // 3
  G.addVertex(3, "e"); // 4
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 4);
  G.addEdge(1, 3);
  return G;
}

std::set<VertexId> optimalSpillSet(const Graph &G, unsigned R) {
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, R);
  BruteForceAllocator Brute;
  AllocationResult Result = Brute.allocate(P);
  std::vector<VertexId> Spilled = Result.spilled();
  return std::set<VertexId>(Spilled.begin(), Spilled.end());
}
} // namespace

TEST(InclusionTest, Figure2CounterExample) {
  Graph G = counterExampleGraph();
  ASSERT_TRUE(isChordal(G));

  // R = 1: the optimum keeps the stable set {a, c, e} (weight 8) and
  // spills {b, d} (cost 8); every alternative keeps less.
  std::set<VertexId> SpillR1 = optimalSpillSet(G, 1);
  EXPECT_EQ(SpillR1, (std::set<VertexId>{1, 3}));

  // R = 2: the triangle {b, c, d} must lose one member; c is cheapest, so
  // the optimum spills exactly {c}.
  std::set<VertexId> SpillR2 = optimalSpillSet(G, 2);
  EXPECT_EQ(SpillR2, (std::set<VertexId>{2}));

  // The counter-example: spilled(R=2) is NOT a subset of spilled(R=1).
  EXPECT_FALSE(std::includes(SpillR1.begin(), SpillR1.end(),
                             SpillR2.begin(), SpillR2.end()));
}

TEST(InclusionTest, InclusionHoldsForMostRandomInstances) {
  // §2.3 reports inclusion holding for 99.83% of methods.  On random small
  // chordal graphs we verify the property holds for the vast majority
  // (>= 90%) of (instance, R) pairs with unique optima.
  Rng R(65537);
  unsigned Holds = 0, Total = 0;
  for (int Round = 0; Round < 80; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 6 + static_cast<unsigned>(R.nextBelow(10));
    Opt.MaxWeight = 40;
    Graph G = randomChordalGraph(R, Opt);
    std::set<VertexId> Previous; // Spill set at R+1.
    unsigned MaxLive =
        AllocationProblem::fromChordalGraph(G, 1).maxLive();
    if (MaxLive < 2)
      continue;
    // Compare consecutive register counts downward: allocated(R) should
    // contain allocated(R-1), i.e. spilled(R-1) contains spilled(R).
    for (unsigned Regs = MaxLive; Regs >= 1; --Regs) {
      std::set<VertexId> Spill = optimalSpillSet(G, Regs);
      if (Regs != MaxLive) {
        ++Total;
        // Previous = spilled at Regs+1 must be included in Spill (at Regs).
        Holds += std::includes(Spill.begin(), Spill.end(), Previous.begin(),
                               Previous.end())
                     ? 1
                     : 0;
      }
      Previous = std::move(Spill);
    }
  }
  ASSERT_GT(Total, 50u);
  EXPECT_GT(static_cast<double>(Holds) / static_cast<double>(Total), 0.90)
      << Holds << "/" << Total;
}

TEST(InclusionTest, LayeredIsExactWhenInclusionHolds) {
  // On the counter-example, stepwise allocation cannot be optimal for both
  // register counts; verify the gap appears exactly at R = 2.
  Graph G = counterExampleGraph();
  AllocationProblem P1 = AllocationProblem::fromChordalGraph(G, 1);
  AllocationProblem P2 = AllocationProblem::fromChordalGraph(G, 2);
  BruteForceAllocator Brute;

  AllocationResult L1 = layeredAllocate(P1, LayeredOptions::bfpl());
  EXPECT_EQ(L1.SpillCost, Brute.allocate(P1).SpillCost); // R=1 exact.

  AllocationResult L2 = layeredAllocate(P2, LayeredOptions::bfpl());
  AllocationResult O2 = Brute.allocate(P2);
  // Layer 1 keeps {a,c,e}; the best completion spills {b,d} (cost 8) while
  // the true optimum spills {c} (cost 2): the documented stepwise gap.
  EXPECT_GT(L2.SpillCost, O2.SpillCost);
}
