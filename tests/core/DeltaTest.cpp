//===- tests/core/DeltaTest.cpp - Warm-start delta allocation tests -------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The delta-solving contract (core/Delta.h): the compatibility predicate
/// admits exactly the edits that provably preserve interference structure,
/// buildDeltaProblem() reproduces a from-scratch buildSsaProblem() bit for
/// bit, the pipeline's warm start changes no output bytes, and the
/// BatchDriver's base registry counts hits/fallbacks and evicts by LRU.
///
//===----------------------------------------------------------------------===//

#include "core/Delta.h"

#include "alloc/Pipeline.h"
#include "core/ProblemBuilder.h"
#include "driver/BatchDriver.h"
#include "driver/ReportIO.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "suites/Suites.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {

/// A deterministic strict-SSA function with loops (nonuniform block
/// frequencies, so frequency edits actually move spill costs).
Function makeSsa(uint64_t Seed = 71) {
  Rng R(Seed);
  ProgramGenOptions Opt;
  return convertToSsa(generateFunction(R, Opt)).Ssa;
}

Suite singleFunctionSuite(const Function &F) {
  Suite S;
  S.Name = "delta-test";
  S.Programs.push_back({"prog", {F}});
  return S;
}

std::vector<BatchJob> singleJob(const Suite &S) {
  BatchJob Job;
  Job.SuiteName = S.Name;
  Job.SuiteData = &S;
  Job.Target = ST231;
  Job.NumRegisters = 4;
  return {Job};
}

/// Timing-free, task-level report bytes -- the equality the server's
/// responses are built from.
std::string reportBytes(const DriverReport &Report) {
  return driverReportToJson(Report, /*IncludeTiming=*/false,
                            /*IncludeTasks=*/true)
      .dump(2);
}

} // namespace

TEST(DeltaTest, IdenticalResubmissionIsCompatibleWithNoChangedBlocks) {
  Function Base = makeSsa();
  FunctionDelta D = computeFunctionDelta(Base, Base);
  EXPECT_TRUE(D.Compatible);
  EXPECT_TRUE(D.ChangedBlocks.empty());
  EXPECT_TRUE(D.Reason.empty());
}

TEST(DeltaTest, FrequencyEditIsCompatibleAndScopedToTheBlock) {
  Function Base = makeSsa();
  Function New = Base;
  New.block(0).Frequency += 9;
  FunctionDelta D = computeFunctionDelta(Base, New);
  EXPECT_TRUE(D.Compatible);
  ASSERT_EQ(D.ChangedBlocks.size(), 1u);
  EXPECT_EQ(D.ChangedBlocks[0], 0u);
}

TEST(DeltaTest, StructuralEditsAreRejectedWithAReason) {
  Function Base = makeSsa();

  // A use-list edit: the entry terminator gains a use of an entry value.
  Function ExtraUse = Base;
  {
    BasicBlock &Entry = ExtraUse.block(0);
    ASSERT_FALSE(Entry.Instrs.empty());
    ASSERT_FALSE(Entry.Instrs.front().Defs.empty());
    Entry.Instrs.back().Uses.push_back(Entry.Instrs.front().Defs[0]);
  }
  FunctionDelta D1 = computeFunctionDelta(Base, ExtraUse);
  EXPECT_FALSE(D1.Compatible);
  EXPECT_FALSE(D1.Reason.empty());

  // An added instruction changes the block's def/use shape.
  Function ExtraInstr = Base;
  {
    Instruction Nop;
    Nop.Op = Opcode::Op;
    Nop.Defs = {ExtraInstr.makeValue("extra")};
    BasicBlock &Entry = ExtraInstr.block(0);
    Entry.Instrs.insert(Entry.Instrs.begin(), Nop);
  }
  EXPECT_FALSE(computeFunctionDelta(Base, ExtraInstr).Compatible);

  // A register-class change alters interference even with equal CFGs.
  Function NewClass = Base;
  NewClass.setValueClass(0, 1);
  EXPECT_FALSE(computeFunctionDelta(Base, NewClass).Compatible);
}

TEST(DeltaTest, DeltaProblemMatchesFreshBuildAfterFrequencyEdit) {
  Function BaseF = makeSsa();
  std::vector<unsigned> Budgets{4};

  DeltaBase Base;
  Base.Ssa = BaseF;
  ProblemBuildArtifacts Art;
  Base.Problem = buildSsaProblem(BaseF, ST231, Budgets, nullptr, &Art);
  Base.Live = std::move(Art.Live);
  Base.Costs = std::move(Art.Costs);

  Function New = BaseF;
  New.block(0).Frequency += 9;

  AllocationProblem Out;
  bool ExactRound0 = true;
  ASSERT_TRUE(buildDeltaProblem(Base, New, ST231, Budgets, Out, ExactRound0));
  // Costs moved with the frequencies, so round 0 must be re-allocated.
  EXPECT_FALSE(ExactRound0);
  EXPECT_EQ(hashProblem(Out), hashProblem(buildSsaProblem(New, ST231, Budgets)));

  // The byte-identical resubmission reuses round 0 outright.
  AllocationProblem Same;
  ASSERT_TRUE(
      buildDeltaProblem(Base, BaseF, ST231, Budgets, Same, ExactRound0));
  EXPECT_TRUE(ExactRound0);
  EXPECT_EQ(hashProblem(Same), hashProblem(Base.Problem));

  // Structural incompatibility leaves the output untouched.
  Function Bad = BaseF;
  Bad.block(0).Instrs.back().Uses.push_back(0);
  EXPECT_FALSE(buildDeltaProblem(Base, Bad, ST231, Budgets, Out, ExactRound0));
}

TEST(DeltaTest, PipelineWarmStartIsByteIdenticalToFullRun) {
  Function BaseF = makeSsa();
  std::vector<unsigned> Budgets{4};
  PipelineOptions Options;

  DeltaBase Captured;
  PipelineDeltaContext Capture;
  Capture.Capture = &Captured;
  PipelineResult BaseRun =
      runAllocationPipeline(BaseF, ST231, Budgets, Options, nullptr, &Capture);
  ASSERT_TRUE(Captured.HasRound0);
  EXPECT_EQ(Captured.AllocatorName, Options.AllocatorName);

  for (unsigned Bump : {0u, 9u}) {
    Function New = BaseF;
    New.block(0).Frequency += Bump;

    PipelineDeltaContext Warm;
    Warm.Base = &Captured;
    PipelineResult Delta =
        runAllocationPipeline(New, ST231, Budgets, Options, nullptr, &Warm);
    EXPECT_TRUE(Warm.UsedDelta) << "bump=" << Bump;
    // The unedited resubmission reuses the captured round-0 allocation.
    EXPECT_EQ(Warm.WarmStarted, Bump == 0) << "bump=" << Bump;

    PipelineResult Full = runAllocationPipeline(New, ST231, Budgets, Options);
    EXPECT_EQ(Delta.Rewritten.toString(), Full.Rewritten.toString());
    EXPECT_EQ(Delta.TotalSpillCost, Full.TotalSpillCost);
    EXPECT_EQ(Delta.Rounds, Full.Rounds);
    EXPECT_EQ(Delta.FinalMaxLive, Full.FinalMaxLive);
    EXPECT_EQ(Delta.Fits, Full.Fits);
  }
  (void)BaseRun;
}

TEST(DeltaTest, DriverCountsHitsAndFallbacksAndReportsStayByteEqual) {
  Function BaseF = makeSsa();
  const uint64_t Key = 0x1234;

  Suite BaseS = singleFunctionSuite(BaseF);
  std::vector<BatchJob> BaseJobs = singleJob(BaseS);
  BaseJobs[0].RetainKey = Key;

  BatchDriver Warm(1);
  Warm.run(BaseJobs);
  ASSERT_TRUE(Warm.hasBase(Key));
  EXPECT_EQ(Warm.deltaCounters().Bases, 1u);

  // Compatible edit: solved through the delta path, bytes unchanged.
  Function Bumped = BaseF;
  Bumped.block(0).Frequency += 9;
  Suite BumpS = singleFunctionSuite(Bumped);
  std::vector<BatchJob> BumpJobs = singleJob(BumpS);
  BumpJobs[0].BaseKey = Key;
  std::string DeltaBytes =
      reportBytes(Warm.run(BumpJobs, /*CacheTransparent=*/true));
  EXPECT_EQ(Warm.deltaCounters().Hits, 1u);
  EXPECT_EQ(Warm.deltaCounters().Fallbacks, 0u);

  BatchDriver Fresh(1);
  EXPECT_EQ(DeltaBytes, reportBytes(Fresh.run(singleJob(BumpS), true)));

  // Structural edit: full solve, counted as a fallback, still byte-equal.
  Function Edited = BaseF;
  {
    BasicBlock &Entry = Edited.block(0);
    Entry.Instrs.back().Uses.push_back(Entry.Instrs.front().Defs[0]);
  }
  Suite EditS = singleFunctionSuite(Edited);
  std::vector<BatchJob> EditJobs = singleJob(EditS);
  EditJobs[0].BaseKey = Key;
  DeltaBytes = reportBytes(Warm.run(EditJobs, /*CacheTransparent=*/true));
  EXPECT_EQ(Warm.deltaCounters().Hits, 1u);
  EXPECT_EQ(Warm.deltaCounters().Fallbacks, 1u);

  BatchDriver Fresh2(1);
  EXPECT_EQ(DeltaBytes, reportBytes(Fresh2.run(singleJob(EditS), true)));
}

TEST(DeltaTest, BaseRegistryEvictsByLruUnderItsCapacityBound) {
  Function F1 = makeSsa(71), F2 = makeSsa(72);
  Suite S1 = singleFunctionSuite(F1), S2 = singleFunctionSuite(F2);

  BatchDriver Driver(1);
  Driver.setBaseRegistryCapacity(1);
  EXPECT_EQ(Driver.deltaCounters().Capacity, 1u);

  std::vector<BatchJob> J1 = singleJob(S1);
  J1[0].RetainKey = 0xA;
  Driver.run(J1);
  ASSERT_TRUE(Driver.hasBase(0xA));

  // Registering a second base under capacity 1 evicts the first.
  std::vector<BatchJob> J2 = singleJob(S2);
  J2[0].RetainKey = 0xB;
  Driver.run(J2);
  EXPECT_FALSE(Driver.hasBase(0xA));
  EXPECT_TRUE(Driver.hasBase(0xB));
  EXPECT_EQ(Driver.deltaCounters().Bases, 1u);

  // A delta request against the evicted base falls back (and still solves).
  Function Bumped = F1;
  Bumped.block(0).Frequency += 9;
  Suite BumpS = singleFunctionSuite(Bumped);
  std::vector<BatchJob> J3 = singleJob(BumpS);
  J3[0].BaseKey = 0xA;
  DriverReport R = Driver.run(J3);
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(Driver.deltaCounters().Fallbacks, 1u);
  EXPECT_EQ(Driver.deltaCounters().Hits, 0u);
}
