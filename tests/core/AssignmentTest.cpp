//===- tests/core/AssignmentTest.cpp - Register assignment tests ----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/Assignment.h"

#include "core/Layered.h"
#include "graph/Coloring.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(AssignmentTest, FeasibleChordalAllocationAlwaysColorsWithinR) {
  // The decoupling theorem in action: whatever BFPL allocates can be
  // assigned with R registers by the tree scan, with zero extra spill.
  Rng R(21);
  for (int Round = 0; Round < 25; ++Round) {
    ChordalGenOptions Opt;
    Opt.NumVertices = 10 + static_cast<unsigned>(R.nextBelow(50));
    Graph G = randomChordalGraph(R, Opt);
    unsigned Regs = 1 + static_cast<unsigned>(R.nextBelow(8));
    AllocationProblem P = AllocationProblem::fromChordalGraph(G, Regs);
    AllocationResult Alloc = layeredAllocate(P, LayeredOptions::bfpl());
    Assignment Regs2 = assignRegisters(P, Alloc.Allocated);
    EXPECT_TRUE(Regs2.Success) << "round " << Round;
    EXPECT_LE(Regs2.RegistersUsed, Regs);
    EXPECT_TRUE(isProperColoring(P.graph(), Regs2.RegisterOf));
  }
}

TEST(AssignmentTest, SpilledVerticesGetNoRegister) {
  Rng R(22);
  ChordalGenOptions Opt;
  Opt.NumVertices = 20;
  Graph G = randomChordalGraph(R, Opt);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 2);
  AllocationResult Alloc = layeredAllocate(P, LayeredOptions::bfpl());
  Assignment A = assignRegisters(P, Alloc.Allocated);
  for (VertexId V = 0; V < G.numVertices(); ++V) {
    if (Alloc.Allocated[V]) {
      EXPECT_NE(A.RegisterOf[V], Assignment::kNoRegister);
    } else {
      EXPECT_EQ(A.RegisterOf[V], Assignment::kNoRegister);
    }
  }
}

TEST(AssignmentTest, EmptyAllocationUsesNoRegisters) {
  Graph G(4);
  G.addEdge(0, 1);
  AllocationProblem P = AllocationProblem::fromChordalGraph(G, 2);
  Assignment A = assignRegisters(P, std::vector<char>(4, 0));
  EXPECT_EQ(A.RegistersUsed, 0u);
  EXPECT_TRUE(A.Success);
}

TEST(AssignmentTest, GeneralGraphsMayNeedMoreThanRAndReportIt) {
  // C5 is 3-chromatic; keeping all of it with R = 2 must report failure.
  Graph C5(5);
  for (unsigned I = 0; I < 5; ++I) {
    C5.addEdge(I, (I + 1) % 5);
    C5.setWeight(I, 1);
  }
  std::vector<std::vector<VertexId>> Sets;
  for (VertexId V = 0; V < 5; ++V)
    Sets.push_back({V, (V + 1) % 5});
  AllocationProblem P =
      AllocationProblem::fromGeneralGraph(std::move(C5), 2, std::move(Sets));
  Assignment A = assignRegisters(P, std::vector<char>(5, 1));
  EXPECT_FALSE(A.Success);
  EXPECT_GT(A.RegistersUsed, 2u);
  EXPECT_TRUE(isProperColoring(P.graph(), A.RegisterOf));
}
