//===- tests/integration/TextualPipelineTest.cpp - parse -> allocate ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end integration over the textual front door: a function written
/// in the IR syntax (as a user of the library would provide it) goes
/// through parse -> verify -> allocation problem -> every allocator ->
/// pipeline with spill-code materialisation, on every target.
///
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"
#include "alloc/Pipeline.h"
#include "core/ProblemBuilder.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace layra;

namespace {
/// The same loop kernel shipped as examples/sample.lir.
const char *kSample = R"(function sample {
entry:  ; depth=0 freq=1
  %n = op
  %acc0 = op %n
  %bias = op %n
  br %n
  ; succs=loop,exit
loop:  ; depth=1 freq=10 preds=entry,loop
  %acc = phi %acc0, %acc2
  %i = phi %n, %i2
  %t = op %i, %bias
  %acc2 = op %acc, %t
  %i2 = op %i
  br %i2
  ; succs=loop,exit
exit:  ; depth=0 freq=1 preds=entry,loop
  %r = phi %acc0, %acc2
  ret %r
}
)";
} // namespace

TEST(TextualPipelineTest, SampleParsesAndVerifies) {
  ParsedFunction P = parseFunction(kSample);
  ASSERT_TRUE(P.Ok) << P.Error << " at line " << P.Line;
  std::string Error;
  EXPECT_TRUE(verifyFunction(P.F, /*ExpectSsa=*/true, &Error)) << Error;
  EXPECT_EQ(P.F.numBlocks(), 3u);
  EXPECT_EQ(P.F.block(1).Frequency, 10);
}

TEST(TextualPipelineTest, EveryAllocatorHandlesTheParsedFunction) {
  ParsedFunction P = parseFunction(kSample);
  ASSERT_TRUE(P.Ok) << P.Error;
  for (unsigned Regs : {1u, 2u, 3u, 4u}) {
    AllocationProblem Problem = buildSsaProblem(P.F, ST231, Regs);
    for (const std::string &Name : allAllocatorNames()) {
      std::unique_ptr<Allocator> A = makeAllocator(Name);
      ASSERT_NE(A, nullptr) << Name;
      AllocationResult Result = A->allocate(Problem);
      EXPECT_TRUE(isFeasibleAllocation(Problem, Result.Allocated))
          << Name << " at R=" << Regs;
    }
  }
}

TEST(TextualPipelineTest, PipelineMaterialisesOnEveryTarget) {
  for (const TargetDesc *Target : {&ST231, &ARMv7, &X86_64}) {
    ParsedFunction P = parseFunction(kSample);
    ASSERT_TRUE(P.Ok) << P.Error;
    PipelineResult Out = runAllocationPipeline(P.F, *Target, 2);
    EXPECT_TRUE(verifyFunction(Out.Rewritten, /*ExpectSsa=*/true))
        << Target->Name;
    EXPECT_GT(Out.TotalSpillCost, 0) << Target->Name;
    if (Target->MaxMemOperands == 0) {
      EXPECT_EQ(Out.LoadsFolded, 0u) << Target->Name;
    }
  }
}

TEST(TextualPipelineTest, EmittedSpillCodeReparses) {
  // The pipeline's output (with loads, stores and memory operands) must
  // itself round-trip through the parser: print -> parse -> verify.
  ParsedFunction P = parseFunction(kSample);
  ASSERT_TRUE(P.Ok) << P.Error;
  PipelineResult Out = runAllocationPipeline(P.F, X86_64, 2);
  std::string Printed = Out.Rewritten.toString();

  ParsedFunction Again = parseFunction(Printed);
  ASSERT_TRUE(Again.Ok) << Again.Error << " at line " << Again.Line
                        << "\n" << Printed;
  EXPECT_TRUE(verifyFunction(Again.F, /*ExpectSsa=*/true));
  // One parse normalizes value numbering; from there the text is a fixpoint.
  ParsedFunction Stable = parseFunction(Again.F.toString());
  ASSERT_TRUE(Stable.Ok) << Stable.Error;
  EXPECT_EQ(Again.F.toString(), Stable.F.toString());
  // Spill annotations survive the trip.
  unsigned MemOperands = 0, Loads = 0, Stores = 0;
  for (BlockId B = 0; B < Again.F.numBlocks(); ++B)
    for (const Instruction &I : Again.F.block(B).Instrs) {
      MemOperands += static_cast<unsigned>(I.MemUseSlots.size());
      Loads += I.Op == Opcode::Load ? 1 : 0;
      Stores += I.Op == Opcode::Store ? 1 : 0;
    }
  EXPECT_EQ(Loads, Out.Spills.NumLoads - Out.LoadsFolded);
  EXPECT_EQ(Stores, Out.Spills.NumStores);
  EXPECT_EQ(MemOperands, Out.LoadsFolded);
}
