//===- tests/integration/PipelineTest.cpp - End-to-end pipeline -----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end: generate a program, convert to SSA, build the problem,
/// allocate with every algorithm, assign registers, materialise spill code,
/// and verify that the rewritten function's pressure fits the machine
/// (modulo the transient reload operands of §4.3).
///
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"
#include "core/Assignment.h"
#include "core/Layered.h"
#include "core/ProblemBuilder.h"
#include "ir/Liveness.h"
#include "ir/ProgramGen.h"
#include "ir/SpillRewriter.h"
#include "ir/SsaBuilder.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(PipelineTest, SpillRewriteBringsPressureDown) {
  Rng R(271828);
  for (int Round = 0; Round < 10; ++Round) {
    ProgramGenOptions Opt;
    Opt.NumVars = 16;
    Opt.MaxBlocks = 32;
    Function F = generateFunction(R, Opt);
    SsaConversion Conv = convertToSsa(F);
    unsigned Regs = 3 + static_cast<unsigned>(R.nextBelow(4));
    AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, Regs);
    unsigned MaxLiveBefore = P.maxLive();
    if (MaxLiveBefore <= Regs)
      continue; // Nothing to spill.

    AllocationResult Alloc = layeredAllocate(P, LayeredOptions::bfpl());
    ASSERT_TRUE(isFeasibleAllocation(P, Alloc.Allocated));

    // Materialise the spill decision.
    Function Rewritten = Conv.Ssa;
    std::vector<char> Spilled(Rewritten.numValues(), 0);
    for (VertexId V = 0; V < P.graph().numVertices(); ++V)
      Spilled[V] = Alloc.Allocated[V] ? 0 : 1;
    SpillRewriteStats Stats = rewriteSpills(Rewritten, Spilled);
    EXPECT_GT(Stats.NumLoads + Stats.NumStores, 0u);
    ASSERT_TRUE(verifyFunction(Rewritten, /*ExpectSsa=*/true));

    // After the rewrite, the surviving long live ranges fit in R registers.
    // Reload temporaries transiently exceed that: at most the operand width
    // of one instruction, plus the reloads stacked at a block end for
    // spilled phi operands (paper §4.3 discusses exactly this local
    // excess -- "highly sensitive to the number of simultaneously spilled
    // variables").
    Liveness LiveAfter(Rewritten);
    unsigned MaxLiveAfter = LiveAfter.maxLive(Rewritten);
    unsigned WidestInstr = 0;
    for (BlockId B = 0; B < Rewritten.numBlocks(); ++B)
      for (const Instruction &I : Rewritten.block(B).Instrs)
        WidestInstr = std::max(
            WidestInstr,
            static_cast<unsigned>(I.Defs.size() + I.Uses.size()));
    unsigned MaxEdgeReloads = 0;
    for (BlockId B = 0; B < Rewritten.numBlocks(); ++B) {
      unsigned TrailingLoads = 0;
      const std::vector<Instruction> &Is = Rewritten.block(B).Instrs;
      for (size_t I = Is.size(); I-- > 0;) {
        if (Is[I].isTerminator())
          continue;
        if (Is[I].Op != Opcode::Load)
          break;
        ++TrailingLoads;
      }
      MaxEdgeReloads = std::max(MaxEdgeReloads, TrailingLoads);
    }
    EXPECT_LE(MaxLiveAfter, Regs + WidestInstr + MaxEdgeReloads)
        << "round " << Round << " spills did not lower pressure";
  }
}

TEST(PipelineTest, AssignThenVerifyColoringAgainstInterference) {
  Rng R(314159);
  ProgramGenOptions Opt;
  Opt.NumVars = 20;
  Opt.MaxBlocks = 40;
  Function F = generateFunction(R, Opt);
  SsaConversion Conv = convertToSsa(F);
  AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, 6);
  AllocationResult Alloc = layeredAllocate(P, LayeredOptions::bfpl());
  Assignment A = assignRegisters(P, Alloc.Allocated);
  EXPECT_TRUE(A.Success);
  // No two interfering allocated values share a register.
  for (VertexId V = 0; V < P.graph().numVertices(); ++V) {
    if (!Alloc.Allocated[V])
      continue;
    for (VertexId U : P.graph().neighbors(V))
      if (Alloc.Allocated[U]) {
        EXPECT_NE(A.RegisterOf[V], A.RegisterOf[U]);
      }
  }
}

TEST(PipelineTest, CostModelIsConsistentAcrossAllocators) {
  // Whatever the algorithm, AllocatedWeight + SpillCost must equal the
  // total weight, and costs must be reproducible across runs.
  Rng R(161);
  ProgramGenOptions Opt;
  Function F = generateFunction(R, Opt);
  SsaConversion Conv = convertToSsa(F);
  AllocationProblem P = buildSsaProblem(Conv.Ssa, ARMv7, 4);
  for (const std::string &Name :
       {std::string("gc"), std::string("bfpl"), std::string("lh"),
        std::string("ls"), std::string("optimal")}) {
    AllocationResult First = makeAllocator(Name)->allocate(P);
    AllocationResult Second = makeAllocator(Name)->allocate(P);
    EXPECT_EQ(First.SpillCost, Second.SpillCost) << Name;
    EXPECT_EQ(First.AllocatedWeight + First.SpillCost, P.graph().totalWeight())
        << Name;
  }
}

TEST(PipelineTest, TargetsDifferOnlyInCostScale) {
  Rng R(162);
  ProgramGenOptions Opt;
  Function F = generateFunction(R, Opt);
  SsaConversion Conv = convertToSsa(F);
  AllocationProblem PSt = buildSsaProblem(Conv.Ssa, ST231, 4);
  AllocationProblem PArm = buildSsaProblem(Conv.Ssa, ARMv7, 4);
  // Same structure...
  EXPECT_EQ(PSt.graph().numVertices(), PArm.graph().numVertices());
  EXPECT_EQ(PSt.graph().numEdges(), PArm.graph().numEdges());
  EXPECT_EQ(PSt.Constraints.size(), PArm.Constraints.size());
  // ...different weights.
  bool AnyDifferent = false;
  for (VertexId V = 0; V < PSt.graph().numVertices(); ++V)
    AnyDifferent |= PSt.graph().weight(V) != PArm.graph().weight(V);
  EXPECT_TRUE(AnyDifferent);
}
