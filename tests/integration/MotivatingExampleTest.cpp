//===- tests/integration/MotivatingExampleTest.cpp - Paper Figure 1 -------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1: a program whose loop keeps at most three values
/// live.  A pressure-aware (decoupled) allocator with R = 3 never spills the
/// loop values (a2, h1..h6) -- only the cheap excess outside the loop --
/// while a degree-guided allocator is tempted by a2's many heavy neighbors.
///
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"
#include "alloc/OptimalBnB.h"
#include "core/Layered.h"
#include "core/ProblemBuilder.h"
#include "ir/LoopInfo.h"
#include "ir/Liveness.h"
#include "ir/SsaBuilder.h"

#include "../ir/IrTestHelpers.h"

#include <gtest/gtest.h>

using namespace layra;
using namespace layra::irtest;

namespace {
/// Builds the Figure 1 program (non-SSA, as drawn).
///
///   entry: a, b, c, d defined; branch to left or right
///   left1: t = c+1; e = b+1; f = e+1
///   left2: g = d+e; use d, e, f, g; ret
///   pre:   a2 = a (copy); h1 = a2+1; h2 = h1+1
///   loop:  h3 = h1+1; h4 = h2+1; h5 = h3+1; h6 = h4+1;
///          h1 = h5+1; h2 = h6+1; use a2; branch back or out
///   done:  ret
struct Figure1 {
  Function F{"figure1"};
  BlockId Entry, Left1, Left2, Pre, Loop, Done;
  ValueId A, B, C, D, E, Fv, G, T, A2;
  ValueId H[7]; // 1-based use: H[1..6].

  Figure1() {
    Entry = F.makeBlock("entry");
    Left1 = F.makeBlock("left1");
    Left2 = F.makeBlock("left2");
    Pre = F.makeBlock("pre");
    Loop = F.makeBlock("loop");
    Done = F.makeBlock("done");
    A = F.makeValue("a");
    B = F.makeValue("b");
    C = F.makeValue("c");
    D = F.makeValue("d");
    E = F.makeValue("e");
    Fv = F.makeValue("f");
    G = F.makeValue("g");
    T = F.makeValue("t");
    A2 = F.makeValue("a2");
    for (int I = 1; I <= 6; ++I)
      H[I] = F.makeValue("h" + std::to_string(I));

    op(F, Entry, A);
    op(F, Entry, B);
    op(F, Entry, C);
    op(F, Entry, D);
    br(F, Entry, A);
    F.addEdge(Entry, Left1);
    F.addEdge(Entry, Pre);

    op(F, Left1, T, {C});
    op(F, Left1, E, {B});
    op(F, Left1, Fv, {E});
    br(F, Left1, T);
    F.addEdge(Left1, Left2);

    op(F, Left2, G, {D, E});
    op(F, Left2, T, {D, E});
    op(F, Left2, T, {Fv, G});
    ret(F, Left2, {T});

    copy(F, Pre, A2, A);
    op(F, Pre, H[1], {A2});
    op(F, Pre, H[2], {H[1]});
    br(F, Pre, H[2]);
    F.addEdge(Pre, Loop);

    op(F, Loop, H[3], {H[1], A2}); // "... a2": a2 read inside the loop.
    op(F, Loop, H[4], {H[2]});
    op(F, Loop, H[5], {H[3]});
    op(F, Loop, H[6], {H[4]});
    op(F, Loop, H[1], {H[5]});
    op(F, Loop, H[2], {H[6]});
    br(F, Loop, H[2]);
    F.addEdge(Loop, Loop);
    F.addEdge(Loop, Done);

    ret(F, Done, {});

    DominatorTree Dom(F);
    LoopInfo Loops(F, Dom);
    Loops.annotate(F);
  }
};
} // namespace

TEST(MotivatingExampleTest, LoopPressureIsThree) {
  Figure1 Fig;
  SsaConversion Conv = convertToSsa(Fig.F);
  Liveness Live(Conv.Ssa);
  // Inside the loop at most 3 values are live simultaneously (paper: "there
  // are no more than three variables simultaneously live inside the loop").
  unsigned LoopPressure = 0;
  Live.walkBlockBackward(Conv.Ssa, Fig.Loop,
                         [&](unsigned, const BitVector &L) {
                           LoopPressure = std::max(
                               LoopPressure,
                               static_cast<unsigned>(L.count()));
                         });
  EXPECT_LE(LoopPressure, 3u);
  // While the entry keeps four values live at its end.
  EXPECT_EQ(Live.liveOut(Fig.Entry).count(), 4u);
}

TEST(MotivatingExampleTest, PressureAwareAllocationSparesTheLoop) {
  Figure1 Fig;
  SsaConversion Conv = convertToSsa(Fig.F);
  AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, 3);

  AllocationResult Best = layeredAllocate(P, LayeredOptions::bfpl());
  OptimalBnBAllocator BnB;
  AllocationResult Optimal = BnB.allocate(P);
  ASSERT_TRUE(Optimal.Proven);

  // The layered allocation is optimal here.
  EXPECT_EQ(Best.SpillCost, Optimal.SpillCost);
  EXPECT_GT(Best.SpillCost, 0); // Entry pressure 4 > 3 forces one spill.

  // No loop value (h*, a2) is spilled: spilling them is useless for the
  // loop, whose pressure already fits -- the paper's whole point.
  for (VertexId V = 0; V < P.graph().numVertices(); ++V) {
    if (Best.Allocated[V])
      continue;
    const std::string &Name = P.graph().name(V);
    EXPECT_NE(Name.substr(0, 1), "h")
        << "spilled loop value " << Name;
    EXPECT_NE(Name.substr(0, 2), "a2")
        << "spilled loop-carried value " << Name;
  }
}

TEST(MotivatingExampleTest, GraphColoringIsNoBetter) {
  Figure1 Fig;
  SsaConversion Conv = convertToSsa(Fig.F);
  AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, 3);
  AllocationResult Gc = makeAllocator("gc")->allocate(P);
  AllocationResult Best = layeredAllocate(P, LayeredOptions::bfpl());
  EXPECT_GE(Gc.SpillCost, Best.SpillCost);
}
