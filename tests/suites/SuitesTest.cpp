//===- tests/suites/SuitesTest.cpp - Benchmark suite tests ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "suites/Suites.h"

#include "graph/Chordal.h"

#include <gtest/gtest.h>

using namespace layra;

TEST(SuitesTest, SuiteShapes) {
  EXPECT_EQ(makeSpec2000Int().Programs.size(), 12u);
  EXPECT_EQ(makeEembc().Programs.size(), 20u);
  EXPECT_EQ(makeLaoKernels().Programs.size(), 12u);
  EXPECT_EQ(makeSpecJvm98().Programs.size(), 9u);
}

TEST(SuitesTest, DeterministicAcrossCalls) {
  Suite A = makeEembc();
  Suite B = makeEembc();
  ASSERT_EQ(A.numFunctions(), B.numFunctions());
  for (size_t P = 0; P < A.Programs.size(); ++P)
    for (size_t F = 0; F < A.Programs[P].Functions.size(); ++F)
      EXPECT_EQ(A.Programs[P].Functions[F].toString(),
                B.Programs[P].Functions[F].toString());
}

TEST(SuitesTest, AllFunctionsVerify) {
  for (const char *Name :
       {"spec2000int", "eembc", "lao-kernels", "specjvm98"}) {
    Suite S = makeSuite(Name);
    for (const SuiteProgram &Prog : S.Programs)
      for (const Function &F : Prog.Functions) {
        std::string Error;
        EXPECT_TRUE(verifyFunction(F, false, &Error))
            << Name << "/" << Prog.Name << ": " << Error;
      }
  }
}

TEST(SuitesTest, ChordalProblemsAreChordalWithCliqueConstraints) {
  Suite S = makeLaoKernels();
  std::vector<NamedProblem> Problems = chordalProblems(S, ST231, 4);
  EXPECT_EQ(Problems.size(), S.numFunctions());
  for (const NamedProblem &NP : Problems) {
    EXPECT_TRUE(NP.P.Chordal);
    EXPECT_TRUE(isChordal(NP.P.graph()));
    EXPECT_GT(NP.P.maxLive(), 0u);
    EXPECT_TRUE(NP.P.Intervals.has_value());
  }
}

TEST(SuitesTest, GeneralProblemsIncludeNonChordalGraphs) {
  // The JVM98 evaluation depends on genuinely non-chordal interference
  // graphs (paper §6.2).  The method population is dominated by tiny
  // near-trivial methods (as real JIT workloads are), so non-chordality is
  // expected from the hot tail: a healthy share of the *pressured* methods
  // must provide non-chordal graphs.
  Suite S = makeSpecJvm98();
  std::vector<NamedProblem> Problems = generalProblems(S, ARMv7, 6);
  unsigned NonChordal = 0, Hot = 0, HotNonChordal = 0;
  for (const NamedProblem &NP : Problems) {
    bool Chordal = isChordal(NP.P.graph());
    NonChordal += Chordal ? 0 : 1;
    if (NP.P.maxLive() >= 8) {
      ++Hot;
      HotNonChordal += Chordal ? 0 : 1;
    }
  }
  EXPECT_GT(NonChordal, 20u) << NonChordal << " of " << Problems.size();
  ASSERT_GT(Hot, 0u);
  EXPECT_GT(HotNonChordal, Hot / 5) << HotNonChordal << " of " << Hot;
}

TEST(SuitesTest, LoopKernelsHaveHotBlocks) {
  Suite S = makeLaoKernels();
  unsigned HotFunctions = 0;
  for (const SuiteProgram &Prog : S.Programs)
    for (const Function &F : Prog.Functions) {
      Weight MaxFreq = 0;
      for (BlockId B = 0; B < F.numBlocks(); ++B)
        MaxFreq = std::max(MaxFreq, F.block(B).Frequency);
      HotFunctions += MaxFreq >= 100 ? 1 : 0; // Nested-loop frequency.
    }
  EXPECT_GT(HotFunctions, S.numFunctions() / 3);
}

TEST(SuitesTest, ProblemSizesAreRealistic) {
  Suite S = makeSpec2000Int();
  std::vector<NamedProblem> Problems = chordalProblems(S, ST231, 8);
  unsigned TotalVertices = 0, MaxVertices = 0, TotalMaxLive = 0;
  for (const NamedProblem &NP : Problems) {
    TotalVertices += NP.P.graph().numVertices();
    MaxVertices = std::max(MaxVertices, NP.P.graph().numVertices());
    TotalMaxLive += NP.P.maxLive();
  }
  // ~100 functions with O(100) SSA values each.
  EXPECT_GT(TotalVertices / Problems.size(), 50u);
  EXPECT_GT(MaxVertices, 150u);
  EXPECT_GT(TotalMaxLive / Problems.size(), 5u);
}

TEST(SuitesTest, UnknownSuiteNameAborts) {
  EXPECT_DEATH(makeSuite("not-a-suite"), "unknown suite");
}
