//===- examples/cisc_spilling.cpp - Spill code on a CISC target -----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows what a spill decision turns into on different machines (paper
/// §4.3).  The same function is allocated once with the layered-optimal
/// heuristic at a low register count; the resulting spill set is then
/// materialised as spill code twice:
///
///   - ST231 (RISC-like): every spilled use needs an explicit reload;
///   - x86-64 (CISC): complex addressing modes absorb single-use reloads
///     as memory operands (at most one per instruction), and a block-local
///     load-store pass removes reloads whose value is already available.
///
/// Build & run:  ./build/examples/cisc_spilling
///
//===----------------------------------------------------------------------===//

#include "layra/Layra.h"

#include <cstdio>

using namespace layra;

namespace {

/// A small reduction kernel with enough live values to force spilling at
/// four registers: several loop-carried accumulators plus loop-invariant
/// scale factors.
Function buildKernel() {
  Function F("cisc_demo");
  BlockId Entry = F.makeBlock("entry");
  BlockId Loop = F.makeBlock("loop");
  BlockId Exit = F.makeBlock("exit");

  auto Op = [&](BlockId Blk, ValueId Def, std::vector<ValueId> Uses) {
    Instruction I;
    I.Op = Opcode::Op;
    I.Defs = {Def};
    I.Uses = std::move(Uses);
    F.block(Blk).Instrs.push_back(std::move(I));
  };
  auto Terminate = [&](BlockId Blk, Opcode Kind, std::vector<ValueId> Uses) {
    Instruction I;
    I.Op = Kind;
    I.Uses = std::move(Uses);
    F.block(Blk).Instrs.push_back(std::move(I));
  };

  ValueId Scale = F.makeValue("scale"), Bias = F.makeValue("bias");
  ValueId Limit = F.makeValue("limit");
  ValueId Sum = F.makeValue("sum"), Prod = F.makeValue("prod");
  ValueId Idx = F.makeValue("idx"), Elem = F.makeValue("elem");
  ValueId Scaled = F.makeValue("scaled"), Ret = F.makeValue("ret");

  Op(Entry, Scale, {});
  Op(Entry, Bias, {});
  Op(Entry, Limit, {});
  Op(Entry, Sum, {});
  Op(Entry, Prod, {});
  Op(Entry, Idx, {});
  Terminate(Entry, Opcode::Branch, {Limit});
  F.addEdge(Entry, Loop);

  // Loop body: every accumulator is updated from the invariants.
  Op(Loop, Elem, {Idx, Scale});
  Op(Loop, Scaled, {Elem, Bias});
  Op(Loop, Sum, {Sum, Scaled});
  Op(Loop, Prod, {Prod, Elem});
  Op(Loop, Idx, {Idx, Limit});
  Terminate(Loop, Opcode::Branch, {Idx});
  F.addEdge(Loop, Loop);
  F.addEdge(Loop, Exit);

  Op(Exit, Ret, {Sum, Prod});
  Terminate(Exit, Opcode::Return, {Ret});
  F.addEdge(Entry, Exit);
  return F;
}

/// Counts reloads and their frequency-weighted cost under \p Target.
std::pair<unsigned, Weight> reloadCost(const Function &F,
                                       const TargetDesc &Target) {
  unsigned Loads = 0;
  Weight Cost = 0;
  for (BlockId B = 0; B < F.numBlocks(); ++B)
    for (const Instruction &I : F.block(B).Instrs) {
      if (I.Op == Opcode::Load) {
        ++Loads;
        Cost += F.block(B).Frequency * Target.LoadCost;
      }
      Cost += F.block(B).Frequency * Target.MemOperandCost *
              static_cast<Weight>(I.MemUseSlots.size());
    }
  return {Loads, Cost};
}

} // namespace

int main() {
  Function F = buildKernel();
  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  Loops.annotate(F);
  SsaConversion Conv = convertToSsa(F);

  constexpr unsigned Regs = 4;
  AllocationProblem P = buildSsaProblem(Conv.Ssa, X86_64, Regs);
  AllocationResult Alloc = layeredAllocate(P, LayeredOptions::bfpl());
  std::printf("kernel with %u SSA values, MaxLive %u, allocated with R=%u\n",
              Conv.Ssa.numValues(), P.maxLive(), Regs);
  std::printf("spilled %zu values, spill-everywhere cost %lld\n\n",
              Alloc.spilled().size(), static_cast<long long>(Alloc.SpillCost));

  for (const TargetDesc *Target : {&ST231, &X86_64}) {
    Function Rewritten = Conv.Ssa;
    std::vector<char> Spilled(Conv.Ssa.numValues(), 0);
    for (VertexId V = 0; V < P.graph().numVertices(); ++V)
      Spilled[V] = Alloc.Allocated[V] ? 0 : 1;
    SpillRewriteStats Stats = rewriteSpills(Rewritten, Spilled);
    ReloadCleanupStats Cleaned = eliminateRedundantReloads(Rewritten);
    OperandFoldStats Folded = foldMemoryOperands(Rewritten, *Target);

    auto [Loads, Cost] = reloadCost(Rewritten, *Target);
    std::printf("--- %s ---\n", Target->Name);
    std::printf("  reloads inserted:   %u (+%u stores)\n", Stats.NumLoads,
                Stats.NumStores);
    std::printf("  removed block-local: %u\n", Cleaned.LoadsRemoved);
    std::printf("  folded into ops:    %u (budget: %u mem operand(s))\n",
                Folded.LoadsFolded, Target->MaxMemOperands);
    std::printf("  residual reloads:   %u, weighted reload cost %lld\n\n",
                Loads, static_cast<long long>(Cost));
    if (Target == &X86_64)
      std::printf("%s", Rewritten.toString().c_str());
  }
  return 0;
}
