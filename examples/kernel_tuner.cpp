//===- examples/kernel_tuner.cpp - Register sweep on a DSP kernel ---------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An embedded-compiler scenario in the spirit of the paper's lao-kernels
/// evaluation: take one loop kernel, sweep the register count, and chart
/// where each allocator starts spilling and how far from optimal it lands.
/// Also dumps the interference graph in Graphviz DOT with the optimal
/// allocation highlighted, for inspection.
///
/// Build & run:  ./build/examples/kernel_tuner [dot-output-path]
///
//===----------------------------------------------------------------------===//

#include "layra/Layra.h"

#include <cstdio>

using namespace layra;

int main(int ArgC, char **ArgV) {
  // Pull one kernel out of the lao-kernels suite.
  Suite S = makeLaoKernels();
  const Function &Kernel = S.Programs.front().Functions.front();
  SsaConversion Ssa = convertToSsa(Kernel);
  std::printf("kernel %s/%s: %u blocks, %u SSA values\n\n",
              S.Programs.front().Name.c_str(), Kernel.name().c_str(),
              Kernel.numBlocks(), Ssa.Ssa.numValues());

  std::printf("%-5s %-9s %-38s %-9s\n", "R", "MaxLive",
              "spill cost: nl / bl / fpl / bfpl / gc", "optimal");
  for (unsigned Regs = 1; Regs <= 10; ++Regs) {
    AllocationProblem P = buildSsaProblem(Ssa.Ssa, ST231, Regs);
    Weight Nl = layeredAllocate(P, LayeredOptions::nl()).SpillCost;
    Weight Bl = layeredAllocate(P, LayeredOptions::bl()).SpillCost;
    Weight Fpl = layeredAllocate(P, LayeredOptions::fpl()).SpillCost;
    Weight Bfpl = layeredAllocate(P, LayeredOptions::bfpl()).SpillCost;
    Weight Gc = makeAllocator("gc")->allocate(P).SpillCost;
    AllocationResult Optimal = makeAllocator("optimal")->allocate(P);
    std::printf("%-5u %-9u %6lld /%6lld /%6lld /%6lld /%6lld   %-6lld%s\n",
                Regs, P.maxLive(), Nl, Bl, Fpl, Bfpl, Gc, Optimal.SpillCost,
                Optimal.Proven ? "" : " (bound)");
  }

  // Dump the graph with the optimal allocation at the sweet spot R = 4.
  AllocationProblem P = buildSsaProblem(Ssa.Ssa, ST231, 4);
  AllocationResult Optimal = makeAllocator("optimal")->allocate(P);
  std::string Dot = P.graph().toDot(Optimal.allocated());
  const char *Path = ArgC > 1 ? ArgV[1] : "kernel_interference.dot";
  if (std::FILE *Out = std::fopen(Path, "w")) {
    std::fputs(Dot.c_str(), Out);
    std::fclose(Out);
    std::printf("\ninterference graph written to %s "
                "(allocated vertices highlighted)\n",
                Path);
  }
  return 0;
}
