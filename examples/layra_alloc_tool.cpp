//===- examples/layra_alloc_tool.cpp - Command-line allocator driver ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small `llc`-style driver around the library: read a function in the
/// textual IR syntax (ir/Parser.h) or generate a random one, run any of the
/// paper's allocators at a chosen register count, and report the spill
/// decision -- optionally materialising the spill code.
///
/// Usage:
///   layra_alloc_tool [--input FILE | --seed N] [--allocator NAME]
///                    [--regs R] [--class-regs NAME:N[,NAME:N...]]
///                    [--target NAME] [--list-targets]
///                    [--compare] [--emit] [--connect SPEC]
///
///   --input FILE   parse FILE (Function::toString() syntax; must be SSA)
///   --seed N       generate a random function instead (default seed 1)
///   --allocator    one of gc, nl, bl, fpl, bfpl, lh, ls, bls, optimal
///                  (default bfpl)
///   --regs R       register count for class 0 (default 4)
///   --class-regs   per-class budget overrides by name, e.g. vfp:8
///   --target       cost model / addressing modes / class table
///                  (default st231); --list-targets prints the registry
///   --compare      additionally run every allocator and print a table
///   --emit         print the function with spill code inserted
///   --connect SPEC submit the function to a running layra-serve instead
///                  of allocating in-process; SPEC is unix:PATH or
///                  tcp:HOST:PORT.  Prints the server's report payload.
///
/// Examples:
///   ./build/examples/layra_alloc_tool --seed 7 --regs 4 --compare
///   ./build/examples/layra_alloc_tool --input f.lir --allocator optimal
///   ./build/layra_alloc_tool --input f.lir --connect unix:/tmp/layra.sock
///
//===----------------------------------------------------------------------===//

#include "layra/Layra.h"

#include "ir/Parser.h"
#include "service/Client.h"
#include "support/ParseUtil.h"
#include "support/Table.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace layra;

namespace {

struct ToolOptions {
  std::string InputFile;
  uint64_t Seed = 1;
  std::string AllocatorName = "bfpl";
  unsigned Regs = 4;
  std::vector<ClassRegOverride> ClassRegs;
  std::string TargetName = "st231";
  bool Compare = false;
  bool Emit = false;
  std::string ConnectSpec;
};

void printUsageAndExit(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--input FILE | --seed N] [--allocator NAME] "
               "[--regs R] [--class-regs NAME:N[,NAME:N...]] "
               "[--target NAME] [--list-targets] [--compare] "
               "[--emit] [--connect unix:PATH|tcp:HOST:PORT]\n",
               Argv0);
  std::exit(2);
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opt) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        printUsageAndExit(Argv[0]);
      return Argv[++I];
    };
    if (Arg == "--input")
      Opt.InputFile = Next();
    else if (Arg == "--seed")
      Opt.Seed = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--allocator")
      Opt.AllocatorName = Next();
    else if (Arg == "--regs")
      Opt.Regs = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    else if (Arg == "--class-regs") {
      std::string Error;
      if (!parseClassRegList(Next(), 1024, Opt.ClassRegs, Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        std::exit(2);
      }
    } else if (Arg == "--target")
      Opt.TargetName = Next();
    else if (Arg == "--list-targets") {
      std::fputs(formatTargetList().c_str(), stdout);
      std::exit(0);
    }
    else if (Arg == "--compare")
      Opt.Compare = true;
    else if (Arg == "--emit")
      Opt.Emit = true;
    else if (Arg == "--connect")
      Opt.ConnectSpec = Next();
    else
      printUsageAndExit(Argv[0]);
  }
  // Client mode ships the function to a server, which runs exactly one
  // allocator and returns a report; the local-only modes would be
  // silently dropped, so reject the combination outright.
  if (!Opt.ConnectSpec.empty() && (Opt.Compare || Opt.Emit)) {
    std::fprintf(stderr,
                 "error: --connect cannot be combined with --compare or "
                 "--emit (they run locally)\n");
    std::exit(2);
  }
  return true;
}

Function loadOrGenerate(const ToolOptions &Opt) {
  if (!Opt.InputFile.empty()) {
    std::ifstream In(Opt.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   Opt.InputFile.c_str());
      std::exit(1);
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    ParsedFunction P = parseFunction(Buffer.str());
    if (!P.Ok) {
      std::fprintf(stderr, "error: %s:%u: %s\n", Opt.InputFile.c_str(),
                   P.Line, P.Error.c_str());
      std::exit(1);
    }
    std::string VerifyError;
    if (!verifyFunction(P.F, /*ExpectSsa=*/true, &VerifyError)) {
      std::fprintf(stderr, "error: %s: not strict SSA: %s\n",
                   Opt.InputFile.c_str(), VerifyError.c_str());
      std::exit(1);
    }
    return P.F;
  }
  Rng R(Opt.Seed);
  ProgramGenOptions Gen;
  Gen.NumVars = 18;
  Gen.MaxBlocks = 24;
  Function Raw = generateFunction(R, Gen);
  DominatorTree Dom(Raw);
  LoopInfo Loops(Raw, Dom);
  Loops.annotate(Raw);
  return convertToSsa(Raw).Ssa;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opt;
  parseArgs(Argc, Argv, Opt);
  const TargetDesc *Target = targetByName(Opt.TargetName);
  if (!Target) {
    std::fprintf(stderr, "error: unknown target '%s'\n",
                 Opt.TargetName.c_str());
    return 1;
  }

  Function F = loadOrGenerate(Opt);

  if (!Opt.ConnectSpec.empty()) {
    // Client mode: ship the function (in its textual form) to a running
    // layra-serve and print the report the server sends back.  Both
    // hand-written --input files and generated --seed functions take this
    // path; toString() output is exactly what ir/Parser.h accepts.
    std::string Error;
    Client Conn = Client::connectToSpec(Opt.ConnectSpec, &Error);
    if (!Conn.valid()) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    ServiceRequest Req;
    Req.K = ServiceRequest::Kind::SubmitIr;
    Req.IrText = F.toString();
    Req.Regs = {Opt.Regs};
    Req.ClassRegs = Opt.ClassRegs;
    Req.TargetName = Opt.TargetName;
    Req.Options.AllocatorName = Opt.AllocatorName;
    Req.Details = true;
    std::string Response;
    if (!Conn.call(Client::makeSubmitIrRequest(Req), Response, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fputs(Response.c_str(), stdout);
    // Propagate a server-side rejection as a failing exit code.
    return Client::isErrorResponse(Response) ? 1 : 0;
  }

  if (std::string E = checkFunctionClasses(F, *Target); !E.empty()) {
    std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }
  std::string BudgetError;
  std::vector<unsigned> Budgets =
      resolveClassBudgets(*Target, Opt.Regs, Opt.ClassRegs, &BudgetError);
  if (Budgets.empty()) {
    std::fprintf(stderr, "error: %s\n", BudgetError.c_str());
    return 1;
  }
  AllocationProblem P = buildSsaProblem(F, *Target, Budgets);
  // Display the budgets actually used, not the raw --regs value: a
  // --class-regs override of class 0 wins over --regs.
  std::string BudgetText = std::to_string(Budgets[0]);
  for (unsigned C = 1; C < P.numClasses(); ++C)
    BudgetText += "," + std::string(Target->regClass(C).Name) + ":" +
                  std::to_string(Budgets[C]);
  std::printf("function %s: %u blocks, %u values, MaxLive %u, R=%s (%s)\n",
              F.name().c_str(), F.numBlocks(), F.numValues(), P.maxLive(),
              BudgetText.c_str(), Target->Name);

  if (Opt.Compare) {
    Table T({"allocator", "allocated", "spilled", "spill cost", "optimal?"});
    for (const std::string &Name : allAllocatorNames()) {
      if (Name == "brute")
        continue; // Exponential; meant for unit tests only.
      std::unique_ptr<Allocator> A = makeAllocator(Name);
      AllocationResult Result = A->allocateProblem(P);
      T.addRow({Name, Table::num((long long)Result.allocated().size()),
                Table::num((long long)Result.spilled().size()),
                Table::num((long long)Result.SpillCost),
                Result.Proven ? "proven" : ""});
    }
    T.print(stdout);
    return 0;
  }

  std::unique_ptr<Allocator> A = makeAllocator(Opt.AllocatorName);
  if (!A) {
    std::fprintf(stderr, "error: unknown allocator '%s'\n",
                 Opt.AllocatorName.c_str());
    return 1;
  }
  AllocationResult Result = A->allocateProblem(P);
  std::printf("%s: spill cost %lld, %zu spilled of %u values%s\n",
              A->name(), static_cast<long long>(Result.SpillCost),
              Result.spilled().size(), P.graph().numVertices(),
              Result.Proven ? " (proven optimal)" : "");
  for (VertexId V : Result.spilled())
    std::printf("  spill %s (cost %lld)\n",
                P.graph().name(V).empty() ? ("%" + std::to_string(V)).c_str()
                                    : P.graph().name(V).c_str(),
                static_cast<long long>(P.graph().weight(V)));

  if (Opt.Emit) {
    std::vector<char> Spilled(F.numValues(), 0);
    for (VertexId V = 0; V < P.graph().numVertices(); ++V)
      Spilled[V] = Result.Allocated[V] ? 0 : 1;
    rewriteSpills(F, Spilled);
    foldMemoryOperands(F, *Target);
    std::printf("\n%s", F.toString().c_str());
  }
  return 0;
}
