//===- examples/layra_alloc_tool.cpp - Command-line allocator driver ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small `llc`-style driver around the library: read a function in the
/// textual IR syntax (ir/Parser.h) or generate a random one, run any of the
/// paper's allocators at a chosen register count, and report the spill
/// decision -- optionally materialising the spill code.
///
/// Usage:
///   layra_alloc_tool [--input FILE | --seed N] [--allocator NAME]
///                    [--regs R] [--target st231|armv7|x86-64]
///                    [--compare] [--emit]
///
///   --input FILE   parse FILE (Function::toString() syntax; must be SSA)
///   --seed N       generate a random function instead (default seed 1)
///   --allocator    one of gc, nl, bl, fpl, bfpl, lh, ls, bls, optimal
///                  (default bfpl)
///   --regs R       register count (default 4)
///   --target       cost model / addressing modes (default st231)
///   --compare      additionally run every allocator and print a table
///   --emit         print the function with spill code inserted
///
/// Examples:
///   ./build/examples/layra_alloc_tool --seed 7 --regs 4 --compare
///   ./build/examples/layra_alloc_tool --input f.lir --allocator optimal
///
//===----------------------------------------------------------------------===//

#include "layra/Layra.h"

#include "ir/Parser.h"
#include "support/Table.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace layra;

namespace {

struct ToolOptions {
  std::string InputFile;
  uint64_t Seed = 1;
  std::string AllocatorName = "bfpl";
  unsigned Regs = 4;
  std::string TargetName = "st231";
  bool Compare = false;
  bool Emit = false;
};

void printUsageAndExit(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--input FILE | --seed N] [--allocator NAME] "
               "[--regs R] [--target st231|armv7|x86-64] [--compare] "
               "[--emit]\n",
               Argv0);
  std::exit(2);
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opt) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        printUsageAndExit(Argv[0]);
      return Argv[++I];
    };
    if (Arg == "--input")
      Opt.InputFile = Next();
    else if (Arg == "--seed")
      Opt.Seed = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--allocator")
      Opt.AllocatorName = Next();
    else if (Arg == "--regs")
      Opt.Regs = static_cast<unsigned>(std::strtoul(Next(), nullptr, 10));
    else if (Arg == "--target")
      Opt.TargetName = Next();
    else if (Arg == "--compare")
      Opt.Compare = true;
    else if (Arg == "--emit")
      Opt.Emit = true;
    else
      printUsageAndExit(Argv[0]);
  }
  return true;
}

const TargetDesc *targetByName(const std::string &Name) {
  if (Name == "st231")
    return &ST231;
  if (Name == "armv7" || Name == "armv7-a8")
    return &ARMv7;
  if (Name == "x86-64" || Name == "x86")
    return &X86_64;
  return nullptr;
}

Function loadOrGenerate(const ToolOptions &Opt) {
  if (!Opt.InputFile.empty()) {
    std::ifstream In(Opt.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   Opt.InputFile.c_str());
      std::exit(1);
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    ParsedFunction P = parseFunction(Buffer.str());
    if (!P.Ok) {
      std::fprintf(stderr, "error: %s:%u: %s\n", Opt.InputFile.c_str(),
                   P.Line, P.Error.c_str());
      std::exit(1);
    }
    std::string VerifyError;
    if (!verifyFunction(P.F, /*ExpectSsa=*/true, &VerifyError)) {
      std::fprintf(stderr, "error: %s: not strict SSA: %s\n",
                   Opt.InputFile.c_str(), VerifyError.c_str());
      std::exit(1);
    }
    return P.F;
  }
  Rng R(Opt.Seed);
  ProgramGenOptions Gen;
  Gen.NumVars = 18;
  Gen.MaxBlocks = 24;
  Function Raw = generateFunction(R, Gen);
  DominatorTree Dom(Raw);
  LoopInfo Loops(Raw, Dom);
  Loops.annotate(Raw);
  return convertToSsa(Raw).Ssa;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opt;
  parseArgs(Argc, Argv, Opt);
  const TargetDesc *Target = targetByName(Opt.TargetName);
  if (!Target) {
    std::fprintf(stderr, "error: unknown target '%s'\n",
                 Opt.TargetName.c_str());
    return 1;
  }

  Function F = loadOrGenerate(Opt);
  AllocationProblem P = buildSsaProblem(F, *Target, Opt.Regs);
  std::printf("function %s: %u blocks, %u values, MaxLive %u, R=%u (%s)\n",
              F.name().c_str(), F.numBlocks(), F.numValues(), P.maxLive(),
              Opt.Regs, Target->Name);

  if (Opt.Compare) {
    Table T({"allocator", "allocated", "spilled", "spill cost", "optimal?"});
    for (const std::string &Name : allAllocatorNames()) {
      if (Name == "brute")
        continue; // Exponential; meant for unit tests only.
      std::unique_ptr<Allocator> A = makeAllocator(Name);
      AllocationResult Result = A->allocate(P);
      T.addRow({Name, Table::num((long long)Result.allocated().size()),
                Table::num((long long)Result.spilled().size()),
                Table::num((long long)Result.SpillCost),
                Result.Proven ? "proven" : ""});
    }
    T.print(stdout);
    return 0;
  }

  std::unique_ptr<Allocator> A = makeAllocator(Opt.AllocatorName);
  if (!A) {
    std::fprintf(stderr, "error: unknown allocator '%s'\n",
                 Opt.AllocatorName.c_str());
    return 1;
  }
  AllocationResult Result = A->allocate(P);
  std::printf("%s: spill cost %lld, %zu spilled of %u values%s\n",
              A->name(), static_cast<long long>(Result.SpillCost),
              Result.spilled().size(), P.G.numVertices(),
              Result.Proven ? " (proven optimal)" : "");
  for (VertexId V : Result.spilled())
    std::printf("  spill %s (cost %lld)\n",
                P.G.name(V).empty() ? ("%" + std::to_string(V)).c_str()
                                    : P.G.name(V).c_str(),
                static_cast<long long>(P.G.weight(V)));

  if (Opt.Emit) {
    std::vector<char> Spilled(F.numValues(), 0);
    for (VertexId V = 0; V < P.G.numVertices(); ++V)
      Spilled[V] = Result.Allocated[V] ? 0 : 1;
    rewriteSpills(F, Spilled);
    foldMemoryOperands(F, *Target);
    std::printf("\n%s", F.toString().c_str());
  }
  return 0;
}
