//===- examples/quickstart.cpp - Layra in five minutes --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shortest end-to-end tour of Layra: build a small function by hand,
/// convert it to SSA, derive the (chordal) interference graph, run the
/// paper's layered-optimal allocator against graph coloring and the exact
/// optimum, and assign concrete registers to the winner.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "layra/Layra.h"

#include <cstdio>

using namespace layra;

/// Builds a toy function: a loop summing over two accumulators, with some
/// one-off setup values that compete for registers.
static Function buildExample() {
  Function F("quickstart");
  BlockId Entry = F.makeBlock("entry");
  BlockId Loop = F.makeBlock("loop");
  BlockId Exit = F.makeBlock("exit");

  ValueId N = F.makeValue("n"), A = F.makeValue("acc"),
          B = F.makeValue("bias"), T = F.makeValue("t"),
          U = F.makeValue("u"), Ret = F.makeValue("ret");

  auto Op = [&](BlockId Blk, ValueId Def, std::vector<ValueId> Uses) {
    Instruction I;
    I.Op = Opcode::Op;
    I.Defs = {Def};
    I.Uses = std::move(Uses);
    F.block(Blk).Instrs.push_back(std::move(I));
  };
  auto Br = [&](BlockId Blk, ValueId Cond) {
    Instruction I;
    I.Op = Opcode::Branch;
    I.Uses = {Cond};
    F.block(Blk).Instrs.push_back(std::move(I));
  };

  Op(Entry, N, {});
  Op(Entry, A, {});
  Op(Entry, B, {});
  Br(Entry, N);
  F.addEdge(Entry, Loop);

  Op(Loop, T, {A, N});
  Op(Loop, U, {T, B});
  Op(Loop, A, {U});
  Br(Loop, A);
  F.addEdge(Loop, Loop);
  F.addEdge(Loop, Exit);

  Op(Exit, Ret, {A, B});
  Instruction RetI;
  RetI.Op = Opcode::Return;
  RetI.Uses = {Ret};
  F.block(Exit).Instrs.push_back(std::move(RetI));

  return F;
}

int main() {
  // 1. Build the program and annotate loop frequencies (cost model input).
  Function F = buildExample();
  DominatorTree Dom(F);
  LoopInfo Loops(F, Dom);
  Loops.annotate(F);
  std::printf("--- input program ---\n%s\n", F.toString().c_str());

  // 2. SSA: live ranges become subtrees of the dominance tree, so the
  //    interference graph below is chordal (paper §3.2).
  SsaConversion Ssa = convertToSsa(F);
  std::printf("--- SSA form (%u phis) ---\n%s\n", Ssa.NumPhis,
              Ssa.Ssa.toString().c_str());

  // 3. The spill-everywhere instance for 2 registers on the ST231 model.
  AllocationProblem P = buildSsaProblem(Ssa.Ssa, ST231, /*NumRegisters=*/2);
  std::printf("interference graph: %u values, %zu edges, MaxLive=%u\n\n",
              P.graph().numVertices(), P.graph().numEdges(), P.maxLive());

  // 4. Compare allocators.
  for (const char *Name : {"bfpl", "gc", "optimal"}) {
    AllocationResult Result = makeAllocator(Name)->allocate(P);
    std::printf("%-8s spill cost %-6lld spilled:", Name, Result.SpillCost);
    for (VertexId V : Result.spilled())
      std::printf(" %s", P.graph().name(V).c_str());
    std::printf("\n");
  }

  // 5. Assign concrete registers to the layered allocation (tree scan).
  AllocationResult Best = layeredAllocate(P, LayeredOptions::bfpl());
  Assignment Regs = assignRegisters(P, Best.Allocated);
  std::printf("\nassignment (%u registers used, success=%d):\n",
              Regs.RegistersUsed, Regs.Success);
  for (VertexId V = 0; V < P.graph().numVertices(); ++V)
    if (Regs.RegisterOf[V] != Assignment::kNoRegister)
      std::printf("  %-8s -> r%u\n", P.graph().name(V).c_str(),
                  Regs.RegisterOf[V]);
  return 0;
}
