//===- examples/layra_serve.cpp - Allocation server binary ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `layra-serve`: the long-running allocation server (service/Server.h).
/// Clients connect over TCP and/or a Unix-domain socket and speak the
/// framed JSON protocol of docs/PROTOCOL.md; suite construction, the
/// solver thread pool, per-worker workspaces and the bounded result cache
/// all persist across requests.
///
/// Usage:
///   layra-serve [--unix=PATH] [--tcp=PORT] [--host=ADDR] [--threads=N]
///               [--shards=N] [--list-targets]
///               [--cache-cap=N] [--base-capacity=N] [--queue-cap=N]
///               [--in-flight=N]
///               [--disk-cache=DIR] [--disk-cache-cap=BYTES]
///               [--max-conns=N]
///               [--max-frame=BYTES] [--metrics-dump=FILE]
///               [--event-log=FILE] [--slow-ms=N] [--quiet]
///
///   --unix=PATH   listen on a Unix-domain socket at PATH
///   --tcp=PORT    listen on ADDR:PORT (0 = pick an ephemeral port; the
///                 chosen port is printed on startup)
///   --host=ADDR   TCP bind address (default 127.0.0.1; the protocol is
///                 unauthenticated, so keep it on loopback or a trusted
///                 network)
///   --threads     solver pool size per shard; 0 = hardware concurrency
///                 (default)
///   --shards=N    shared-nothing shard workers (default 1).  Requests are
///                 routed by content hash, so the same work always lands
///                 on the same shard's private cache
///   --cache-cap   bound on the result cache, entries, split across the
///                 shards (default 65536).  0 removes the bound entirely --
///                 the caches then grow for the life of the server, so
///                 reserve it for short-lived test instances
///   --base-capacity=N
///                 bound on retained delta bases (submit_ir resubmission
///                 warm-starts, docs/PROTOCOL.md), split across the
///                 shards with LRU eviction (default 256).  Bases hold a
///                 function plus its interference problem, so they are
///                 much heavier than cached outcomes; 0 removes the bound
///   --queue-cap   per-shard request-queue depth; a request routed to a
///                 full shard queue is rejected with an error response
///                 (default 64)
///   --in-flight=N per-connection in-flight request window; the server
///                 stops reading a connection with this many responses
///                 pending (default 32, 0 = unbounded)
///   --disk-cache=DIR
///                 persist every solved outcome content-addressed under
///                 DIR and serve repeats from it, warm-starting the caches
///                 across restarts.  The directory is created if missing
///   --disk-cache-cap=BYTES
///                 byte bound on --disk-cache with least-recently-used
///                 eviction (default 0 = unbounded)
///   --max-conns   concurrent connection cap (default 256)
///   --max-frame   largest accepted frame payload in bytes (default 16 MiB)
///   --metrics-dump=FILE
///                 write a Prometheus-style text exposition of the server
///                 stats and the process metrics registry to FILE on every
///                 SIGUSR1 and once more at drain ("-" = stderr).  The file
///                 is replaced atomically (temp file + rename), so a
///                 scraper racing a dump always reads one complete
///                 exposition -- old or new, never torn
///   --event-log=FILE
///                 enable the structured event ring (obs/EventLog.h) and
///                 dump it as JSON-lines to FILE ("-" = stderr): on
///                 SIGQUIT, on SIGUSR1, on a fatal error, and at drain.
///                 This is the flight recorder -- a wedged or crashed
///                 server leaves its last ~1024 events on disk.  Writes
///                 are atomic like --metrics-dump
///   --slow-ms=N   log every request whose dispatch+flush time reaches N
///                 milliseconds as one JSON line (full span tree,
///                 including per-job solver phases) on stderr.  0 logs
///                 every request
///   --quiet       suppress the startup/shutdown summary lines
///
/// SIGINT/SIGTERM drain gracefully: accepted requests finish, their
/// responses are written, then the process exits 0.  SIGUSR1 triggers a
/// metrics dump (when --metrics-dump is set) without disturbing service;
/// SIGQUIT dumps the event ring (when --event-log is set) and keeps
/// serving -- aim it at a wedged server before killing it.
///
/// Example session:
///   $ layra-serve --unix=/tmp/layra.sock &
///   $ layra-loadgen --unix=/tmp/layra.sock --clients=4 --requests=16
///   $ kill %1   # graceful drain
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "ir/Target.h"
#include "obs/EventLog.h"
#include "support/Compiler.h"
#include "support/ParseUtil.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace layra;

namespace {

[[noreturn]] void usage(const char *Argv0, const char *Error = nullptr) {
  if (Error)
    std::fprintf(stderr, "error: %s\n", Error);
  std::fprintf(stderr,
               "usage: %s [--unix=PATH] [--tcp=PORT] [--host=ADDR]\n"
               "          [--threads=N] [--shards=N] [--cache-cap=N]\n"
               "          [--base-capacity=N] [--queue-cap=N] [--in-flight=N]\n"
               "          [--disk-cache=DIR] [--disk-cache-cap=BYTES]\n"
               "          [--max-conns=N] [--max-frame=BYTES]\n"
               "          [--metrics-dump=FILE] [--event-log=FILE]\n"
               "          [--slow-ms=N] [--list-targets] [--quiet]\n",
               Argv0);
  std::exit(2);
}

/// Self-pipe carrying SIGINT/SIGTERM/SIGUSR1/SIGQUIT to the main thread:
/// a handler may only touch async-signal-safe calls, so it writes one
/// byte and main() does the actual drain or dump.  The byte value encodes
/// the request: 1 = stop, 2 = dump metrics, 3 = dump the event ring.
int StopPipe[2] = {-1, -1};

void onStopSignal(int) {
  char Byte = 1;
  // A full pipe means a stop is already pending; nothing to do.
  (void)!write(StopPipe[1], &Byte, 1);
}

void onDumpSignal(int) {
  char Byte = 2;
  (void)!write(StopPipe[1], &Byte, 1);
}

void onQuitSignal(int) {
  char Byte = 3;
  (void)!write(StopPipe[1], &Byte, 1);
}

/// Writes one complete exposition to \p Path ("-" = stderr) via the
/// atomic temp-file + rename helper, so a scraper racing SIGUSR1 never
/// reads a torn file.
void dumpMetrics(const std::string &Path, const ServerStats &Stats,
                 bool Quiet) {
  std::string Text = makeMetricsExposition(Stats);
  if (Path == "-") {
    std::fputs(Text.c_str(), stderr);
    return;
  }
  std::string Error;
  if (!obs::writeFileAtomically(Path, Text, &Error)) {
    std::fprintf(stderr, "layra-serve: metrics dump failed: %s\n",
                 Error.c_str());
    return;
  }
  if (!Quiet)
    std::fprintf(stderr, "layra-serve: metrics dump -> %s\n", Path.c_str());
}

/// Flight-recorder dump: the event ring as JSON-lines.  \p Why labels the
/// cause ("sigquit", "drain", ...) -- recorded as a final `dump` event so
/// the dump documents its own trigger.
void dumpEventLog(const std::string &Path, bool Quiet, const char *Why) {
  obs::EventLog &Log = obs::EventLog::global();
  Log.record(obs::EventKind::Dump, 0, nullptr, Why);
  std::string Text = Log.toJsonLines();
  if (Path == "-") {
    std::fputs(Text.c_str(), stderr);
    return;
  }
  std::string Error;
  if (!obs::writeFileAtomically(Path, Text, &Error)) {
    std::fprintf(stderr, "layra-serve: event-log dump failed: %s\n",
                 Error.c_str());
    return;
  }
  if (!Quiet)
    std::fprintf(stderr, "layra-serve: event log (%s) -> %s\n", Why,
                 Path.c_str());
}

/// Where the fatal hook dumps; set once before threads start.
std::string FatalDumpPath;

/// Last-words hook: a layraFatalError anywhere in the process flushes the
/// flight recorder before abort() so the crash leaves its final events
/// behind.  Runs on the failing thread; the ring is lock-free, so this
/// works even when the dispatcher is the thread that died.
void fatalFlightDump(const char *Msg) {
  obs::EventLog::global().record(obs::EventKind::Fatal, 0, nullptr, Msg);
  dumpEventLog(FatalDumpPath, /*Quiet=*/false, "fatal");
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opt;
  bool Quiet = false;
  std::string MetricsDumpPath;
  std::string EventLogPath;
  unsigned Parsed = 0;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) != 0)
        return nullptr;
      return Arg.c_str() + Len;
    };
    if (Arg == "--list-targets") {
      // Shared registry (ir/Target.h): identical output across the three
      // CLIs, including each target's register-class table.
      std::fputs(formatTargetList().c_str(), stdout);
      return 0;
    }
    if (const char *V = Value("--unix=")) {
      Opt.UnixPath = V;
      if (Opt.UnixPath.empty())
        usage(Argv[0], "--unix needs a path");
    } else if (const char *V = Value("--tcp=")) {
      if (!parseBoundedUnsigned(V, 65535, Parsed))
        usage(Argv[0], "--tcp must be a port in [0, 65535]");
      Opt.EnableTcp = true;
      Opt.TcpPort = static_cast<uint16_t>(Parsed);
    } else if (const char *V = Value("--host=")) {
      Opt.TcpHost = V;
    } else if (const char *V = Value("--threads=")) {
      if (!parseBoundedUnsigned(V, 1024, Opt.Threads))
        usage(Argv[0], "--threads must be an integer in [0, 1024]");
    } else if (const char *V = Value("--shards=")) {
      if (!parseBoundedUnsigned(V, 256, Opt.Shards) || Opt.Shards == 0)
        usage(Argv[0], "--shards must be an integer in [1, 256]");
    } else if (const char *V = Value("--in-flight=")) {
      if (!parseBoundedUnsigned(V, 1u << 20, Opt.InFlightWindow))
        usage(Argv[0], "--in-flight must be an integer in [0, 2^20]");
    } else if (const char *V = Value("--disk-cache=")) {
      Opt.DiskCacheDir = V;
      if (Opt.DiskCacheDir.empty())
        usage(Argv[0], "--disk-cache needs a directory path");
    } else if (const char *V = Value("--disk-cache-cap=")) {
      char *End = nullptr;
      errno = 0;
      unsigned long long Cap = std::strtoull(V, &End, 10);
      if (!std::isdigit(static_cast<unsigned char>(*V)) || (End && *End) ||
          errno == ERANGE)
        usage(Argv[0], "--disk-cache-cap must be a byte count >= 0");
      Opt.DiskCacheCapBytes = Cap;
    } else if (const char *V = Value("--cache-cap=")) {
      if (!parseBoundedUnsigned(V, 1u << 30, Parsed))
        usage(Argv[0],
              "--cache-cap must be an integer in [0, 2^30] (0 = unbounded; "
              "a long-lived server should keep a bound)");
      Opt.CacheCapacity = Parsed;
      if (Parsed == 0)
        std::fprintf(stderr, "layra-serve: warning: --cache-cap=0 removes "
                             "the cache bound; memory will grow with the "
                             "number of distinct instances served\n");
    } else if (const char *V = Value("--base-capacity=")) {
      if (!parseBoundedUnsigned(V, 1u << 20, Parsed))
        usage(Argv[0],
              "--base-capacity must be an integer in [0, 2^20] (0 = "
              "unbounded; bases are heavier than cached outcomes, keep a "
              "bound on a long-lived server)");
      Opt.BaseRegistryCapacity = Parsed;
    } else if (const char *V = Value("--queue-cap=")) {
      if (!parseBoundedUnsigned(V, 1u << 20, Parsed) || Parsed == 0)
        usage(Argv[0], "--queue-cap must be an integer in [1, 2^20]");
      Opt.QueueCapacity = Parsed;
    } else if (const char *V = Value("--max-conns=")) {
      if (!parseBoundedUnsigned(V, 1u << 20, Parsed) || Parsed == 0)
        usage(Argv[0], "--max-conns must be an integer in [1, 2^20]");
      Opt.MaxConnections = Parsed;
    } else if (const char *V = Value("--max-frame=")) {
      if (!parseBoundedUnsigned(V, 1u << 30, Parsed) || Parsed == 0)
        usage(Argv[0], "--max-frame must be an integer in [1, 2^30]");
      Opt.MaxFrameBytes = Parsed;
    } else if (const char *V = Value("--metrics-dump=")) {
      MetricsDumpPath = V;
      if (MetricsDumpPath.empty())
        usage(Argv[0], "--metrics-dump needs a file path (or '-')");
    } else if (const char *V = Value("--event-log=")) {
      EventLogPath = V;
      if (EventLogPath.empty())
        usage(Argv[0], "--event-log needs a file path (or '-')");
    } else if (const char *V = Value("--slow-ms=")) {
      char *End = nullptr;
      double Ms = std::strtod(V, &End);
      if (!End || *End != '\0' || !(Ms >= 0) || Ms > 1e9)
        usage(Argv[0], "--slow-ms must be a number of milliseconds >= 0");
      Opt.SlowMs = Ms;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
    } else {
      usage(Argv[0], ("unknown argument '" + Arg + "'").c_str());
    }
  }
  if (Opt.UnixPath.empty() && !Opt.EnableTcp)
    usage(Argv[0], "nothing to listen on: pass --unix=PATH and/or --tcp=PORT");
  if (Opt.DiskCacheDir.empty() && Opt.DiskCacheCapBytes != 0)
    usage(Argv[0], "--disk-cache-cap needs --disk-cache=DIR");

  if (pipe(StopPipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGUSR1, onDumpSignal);
  // A client that disconnects mid-response must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);
  if (!EventLogPath.empty()) {
    // The flight recorder is armed: record events, take SIGQUIT dumps,
    // and leave last words on a fatal error.  Without --event-log the
    // default SIGQUIT behavior (core dump) is preserved.
    obs::EventLog::global().setEnabled(true);
    std::signal(SIGQUIT, onQuitSignal);
    FatalDumpPath = EventLogPath;
    layraSetFatalHook(fatalFlightDump);
  }

  Server S(Opt);
  std::string Error;
  if (!S.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (!Quiet) {
    if (Opt.EnableTcp)
      std::printf("layra-serve: listening on %s:%u\n", Opt.TcpHost.c_str(),
                  S.tcpPort());
    if (!Opt.UnixPath.empty())
      std::printf("layra-serve: listening on unix:%s\n",
                  Opt.UnixPath.c_str());
    std::printf("layra-serve: %u shard(s), %u solver threads each, "
                "cache capacity %zu, queue capacity %zu/shard\n",
                Opt.Shards ? Opt.Shards : 1, S.stats().Threads,
                Opt.CacheCapacity, Opt.QueueCapacity);
    if (!Opt.DiskCacheDir.empty()) {
      ServerStats Stats = S.stats();
      std::printf("layra-serve: disk cache at %s (%llu entries, %llu bytes"
                  "%s)\n",
                  Opt.DiskCacheDir.c_str(),
                  static_cast<unsigned long long>(Stats.DiskEntries),
                  static_cast<unsigned long long>(Stats.DiskBytes),
                  Opt.DiskCacheCapBytes ? ", capped" : "");
    }
    std::fflush(stdout);
  }

  // Block until a stop signal arrives (retrying interrupted reads).
  // SIGUSR1/SIGQUIT bytes trigger dumps and keep serving.
  while (true) {
    char Byte = 0;
    ssize_t N = read(StopPipe[0], &Byte, 1);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0 || Byte == 1)
      break;
    if (Byte == 2) {
      if (!MetricsDumpPath.empty())
        dumpMetrics(MetricsDumpPath, S.stats(), Quiet);
      if (!EventLogPath.empty())
        dumpEventLog(EventLogPath, Quiet, "sigusr1");
    }
    if (Byte == 3 && !EventLogPath.empty())
      dumpEventLog(EventLogPath, Quiet, "sigquit");
  }

  S.requestStop();
  S.wait();
  // Final dumps so a drained server leaves its complete telemetry behind
  // even when nothing ever sent SIGUSR1/SIGQUIT.
  if (!MetricsDumpPath.empty())
    dumpMetrics(MetricsDumpPath, S.stats(), Quiet);
  if (!EventLogPath.empty())
    dumpEventLog(EventLogPath, Quiet, "drain");
  if (!Quiet) {
    ServerStats Stats = S.stats();
    std::fprintf(stderr,
                 "layra-serve: drained after %.0f ms: %llu requests "
                 "(%llu allocate, %llu submit_ir, %llu failed), "
                 "cache %llu/%llu entries, %llu hits, %llu evictions\n",
                 Stats.UptimeMs,
                 static_cast<unsigned long long>(Stats.RequestsTotal),
                 static_cast<unsigned long long>(Stats.RequestsAllocate),
                 static_cast<unsigned long long>(Stats.RequestsSubmitIr),
                 static_cast<unsigned long long>(Stats.RequestsFailed),
                 static_cast<unsigned long long>(Stats.CacheEntries),
                 static_cast<unsigned long long>(Stats.CacheCapacity),
                 static_cast<unsigned long long>(Stats.CacheHits),
                 static_cast<unsigned long long>(Stats.CacheEvictions));
  }
  return 0;
}
