//===- examples/layra_fuzz.cpp - Structured IR fuzzing CLI ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `layra-fuzz` command-line front end of the fuzzing subsystem
/// (src/fuzz/): structured, seed-deterministic mutation of IR functions
/// and generator configs, swept through the differential-oracle registry,
/// with delta-minimized reproducers written to a crash directory.
///
/// Usage:
///   layra-fuzz [--runs=N] [--seed=S] [--target=NAME]
///              [--corpus=DIR] [--negative=DIR] [--crashes=DIR]
///              [--oracles=a,b,...] [--serve-oracle]
///              [--break-oracle=NAME] [--max-failures=N] [--no-minimize]
///              [--repro FILE] [--list-oracles] [--list-targets]
///
///   --runs=N         fuzzing iterations (default 100)
///   --seed=S         session seed; same seed + options = same output
///                    bytes, same crash files (default 1)
///   --target=NAME    target for generated cases (default st231);
///                    corpus seeds keep their own recorded targets
///   --corpus=DIR     seed corpus of .lir files (default fuzz/corpus when
///                    it exists); negative seeds default to DIR/negative
///   --crashes=DIR    where minimized reproducers land (fuzz/crashes)
///   --oracles=...    comma list of oracle names (default: all)
///   --serve-oracle   start an in-process layra-serve and enable the
///                    serve-direct byte-equality oracle
///   --break-oracle=NAME  debug: plant a deterministic failure into the
///                    named oracle (fails when the function contains a
///                    copy) to exercise minimization end to end
///   --repro FILE     replay one reproducer instead of fuzzing; exit 1
///                    when the recorded failure still reproduces
///
/// Exit codes: 0 clean, 1 failures found (or reproduced), 2 usage/setup.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Oracles.h"
#include "support/ParseUtil.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>

using namespace layra;

namespace {

void printUsageAndExit(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--runs=N] [--seed=S] [--target=NAME] [--corpus=DIR]\n"
      "       [--negative=DIR] [--crashes=DIR] [--oracles=a,b,...]\n"
      "       [--serve-oracle] [--break-oracle=NAME] [--max-failures=N]\n"
      "       [--no-minimize] [--repro FILE] [--list-oracles] "
      "[--list-targets]\n",
      Argv0);
  std::exit(2);
}

bool isDirectory(const std::string &Path) {
  struct stat Sb;
  return ::stat(Path.c_str(), &Sb) == 0 && S_ISDIR(Sb.st_mode);
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Options;
  Options.CorpusDir = "fuzz/corpus"; // Default; cleared if absent below.
  std::string ReproPath;
  bool CorpusExplicit = false, NegativeExplicit = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    // Accept both `--flag=value` and `--flag value`.
    auto Value = [&](const char *Flag) -> const char * {
      size_t Len = std::strlen(Flag);
      if (Arg.compare(0, Len, Flag) == 0 && Arg.size() > Len &&
          Arg[Len] == '=')
        return Arg.c_str() + Len + 1;
      if (Arg == Flag) {
        if (I + 1 >= Argc)
          printUsageAndExit(Argv[0]);
        return Argv[++I];
      }
      return nullptr;
    };
    if (const char *V = Value("--runs")) {
      unsigned Runs = 0;
      if (!parseBoundedUnsigned(V, 1u << 20, Runs))
        printUsageAndExit(Argv[0]);
      Options.Runs = Runs;
    } else if (const char *V = Value("--seed")) {
      Options.Seed = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Value("--target")) {
      Options.TargetName = V;
    } else if (const char *V = Value("--corpus")) {
      Options.CorpusDir = V;
      CorpusExplicit = true;
    } else if (const char *V = Value("--negative")) {
      Options.NegativeDir = V;
      NegativeExplicit = true;
    } else if (const char *V = Value("--crashes")) {
      Options.CrashDir = V;
    } else if (const char *V = Value("--oracles")) {
      Options.Oracles = splitCommaList(V);
    } else if (Arg == "--serve-oracle") {
      Options.ServeOracle = true;
    } else if (const char *V = Value("--break-oracle")) {
      Options.BreakOracle = V;
    } else if (const char *V = Value("--max-failures")) {
      unsigned Max = 0;
      if (!parseBoundedUnsigned(V, 1u << 20, Max))
        printUsageAndExit(Argv[0]);
      Options.MaxFailures = Max;
    } else if (Arg == "--no-minimize") {
      Options.Minimize = false;
    } else if (const char *V = Value("--repro")) {
      ReproPath = V;
    } else if (Arg == "--list-oracles") {
      for (const Oracle &O : oracleRegistry())
        std::printf("%-20s %s%s\n", O.Name, O.Description,
                    O.NeedsServer ? " (needs --serve-oracle)" : "");
      return 0;
    } else if (Arg == "--list-targets") {
      std::fputs(formatTargetList().c_str(), stdout);
      return 0;
    } else {
      printUsageAndExit(Argv[0]);
    }
  }

  if (!targetByName(Options.TargetName)) {
    std::fprintf(stderr, "error: unknown target '%s'\n",
                 Options.TargetName.c_str());
    return 2;
  }
  if (Options.BreakOracle.empty() == false &&
      !findOracle(Options.BreakOracle)) {
    std::fprintf(stderr, "error: --break-oracle names unknown oracle '%s'\n",
                 Options.BreakOracle.c_str());
    return 2;
  }
  // The default corpus is optional (a bare build tree has none); an
  // explicitly requested one is not.
  if (!CorpusExplicit && !isDirectory(Options.CorpusDir))
    Options.CorpusDir.clear();
  if (!NegativeExplicit && !Options.CorpusDir.empty()) {
    std::string Neg = Options.CorpusDir + "/negative";
    if (isDirectory(Neg))
      Options.NegativeDir = Neg;
  }

  if (!ReproPath.empty()) {
    std::string Error;
    OracleOutcome Outcome = reproduceFile(ReproPath, Options, &Error);
    if (!Error.empty()) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    if (!Outcome.Ok) {
      std::printf("reproduced: %s\n", Outcome.Detail.c_str());
      return 1;
    }
    std::printf("clean: the recorded failure no longer reproduces\n");
    return 0;
  }

  FuzzReport Report = runFuzzSession(Options, stdout);
  for (const std::string &Error : Report.Errors)
    std::fprintf(stderr, "error: %s\n", Error.c_str());
  if (!Report.Errors.empty())
    return 2;
  return Report.Failures.empty() ? 0 : 1;
}
