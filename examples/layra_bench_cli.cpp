//===- examples/layra_bench_cli.cpp - Batch benchmark CLI -----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `layra-bench`: the command-line front end of the batch-allocation driver
/// (driver/BatchDriver.h).  Expands suite x register-count sweeps into
/// per-function pipeline jobs, runs them on the work-stealing pool, and
/// reports aggregates as a table, JSON and/or CSV.
///
/// Usage:
///   layra-bench [--suite=NAME[,NAME...]] [--regs=LO..HI | --regs=A,B,C]
///               [--class-regs=NAME:N[,NAME:N...]] [--threads=N]
///               [--target=NAME] [--list-targets]
///               [--allocator=NAME] [--max-rounds=N] [--no-affinity]
///               [--no-fold] [--cache-cap=N] [--disk-cache=DIR]
///               [--disk-cache-cap=BYTES] [--json=FILE] [--csv=FILE]
///               [--tasks-csv=FILE] [--details] [--no-timing]
///               [--trace=FILE] [--metrics[=FILE]]
///               [--workspace-stats] [--quiet]
///
///   --suite      suites to run (default eembc); names as in makeSuite(),
///                plus the graph-only suite `random-chordal` (generated
///                chordal interference graphs solved directly through
///                BatchDriver::solveProblems -- no IR pipeline, so it
///                appears in the stdout summary but not in --json/--csv
///                reports, and interval-consuming allocators ls/bls are
///                rejected with a diagnostic)
///   --regs       register counts for class 0, a range `4..16` or a list
///                `1,2,4` (default 4..16); other register classes keep the
///                target's architectural counts
///   --class-regs per-class budget overrides by name, e.g. `vfp:8`
///                (applied to every job of the sweep)
///   --list-targets  print every known target with its register-class
///                table and cost model, then exit
///   --threads    pool size; 0 = hardware concurrency (default 0)
///   --allocator  pipeline spiller per round (default bfpl)
///   --cache-cap  bound the driver's content-hash caches to N entries each
///                with LRU eviction (default 0 = unbounded; eviction counts
///                appear as cache_evictions in the reports)
///   --disk-cache persist solved outcomes content-addressed under DIR
///                (service/DiskCache.h) and answer repeats from it: a
///                second identical sweep -- even in a fresh process --
///                skips the solver.  Timing-free reports stay
///                byte-identical, warm or cold
///   --disk-cache-cap  byte bound on --disk-cache with LRU eviction
///                (default 0 = unbounded)
///   --json/--csv write the DriverReport in that format ("-" = stdout)
///   --details    include per-function tasks in the JSON report
///   --no-timing  omit wall-clock fields: output is then byte-identical
///                across runs and thread counts
///   --trace      write a Chrome-trace-format JSON of every solver phase
///                span (load in chrome://tracing or Perfetto); with
///                --no-timing the trace uses deterministic sequence
///                timestamps so it, too, is byte-identical across runs
///   --metrics    dump the metrics registry (per-stage latency histograms,
///                stage counters, workspace/cache gauges) in Prometheus
///                text format after the run, to FILE or stderr
///   --workspace-stats  print the workspace/cache subset of the metrics
///                registry (arena reuse accounting, pipeline-cache
///                hit/miss/eviction gauges) to stderr; never part of the
///                reports
///   --quiet      suppress the stdout summary table
///
/// Examples:
///   layra-bench --suite=eembc --regs=4..16 --threads=8 --json=out.json
///   layra-bench --suite=eembc,lao-kernels --regs=2,4,8 --no-timing --json=-
///
//===----------------------------------------------------------------------===//

#include "core/AllocationProblem.h"
#include "driver/BatchDriver.h"
#include "driver/ReportIO.h"
#include "graph/Generators.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "service/DiskCache.h"
#include "support/ParseUtil.h"
#include "support/Random.h"
#include "support/Table.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace layra;

namespace {

struct CliOptions {
  std::vector<std::string> Suites{"eembc"};
  std::vector<unsigned> Regs;
  std::vector<ClassRegOverride> ClassRegs;
  unsigned Threads = 0;
  std::string TargetName = "st231";
  PipelineOptions Pipeline;
  unsigned CacheCapacity = 0;
  std::string DiskCacheDir;
  uint64_t DiskCacheCapBytes = 0;
  std::string JsonPath;
  std::string CsvPath;
  std::string TasksCsvPath;
  bool Details = false;
  bool Timing = true;
  bool WorkspaceStats = false;
  bool Quiet = false;
  std::string TracePath;
  bool Metrics = false;
  std::string MetricsPath; ///< Empty = stderr.
};

[[noreturn]] void usage(const char *Argv0, const char *Error = nullptr) {
  if (Error)
    std::fprintf(stderr, "error: %s\n", Error);
  std::fprintf(
      stderr,
      "usage: %s [--suite=NAME[,NAME...]] [--regs=LO..HI|--regs=A,B,C]\n"
      "          [--class-regs=NAME:N[,NAME:N...]] [--threads=N]\n"
      "          [--target=NAME] [--list-targets]\n"
      "          [--allocator=NAME] [--max-rounds=N] [--no-affinity]\n"
      "          [--no-fold] [--cache-cap=N] [--disk-cache=DIR]\n"
      "          [--disk-cache-cap=BYTES] [--json=FILE] [--csv=FILE]\n"
      "          [--tasks-csv=FILE] [--details] [--no-timing]\n"
      "          [--trace=FILE] [--metrics[=FILE]]\n"
      "          [--workspace-stats] [--quiet]\n",
      Argv0);
  std::exit(2);
}

/// Largest register count / thread count / round count the CLI accepts;
/// generous for any real machine, small enough to make typos errors
/// instead of resource exhaustion.
constexpr unsigned kMaxCliValue = 1024;

CliOptions parseArgs(int Argc, char **Argv) {
  CliOptions Opt;
  Opt.Regs = {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) != 0)
        return nullptr;
      return Arg.c_str() + Len;
    };
    if (const char *V = Value("--suite=")) {
      Opt.Suites = splitCommaList(V);
      if (Opt.Suites.empty())
        usage(Argv[0], "--suite must name at least one suite");
    } else if (const char *V = Value("--regs=")) {
      std::string Error;
      if (!parseRegList(V, kMaxCliValue, Opt.Regs, Error))
        usage(Argv[0], Error.c_str());
    } else if (const char *V = Value("--class-regs=")) {
      std::string Error;
      if (!parseClassRegList(V, kMaxCliValue, Opt.ClassRegs, Error))
        usage(Argv[0], Error.c_str());
    } else if (Arg == "--list-targets") {
      std::fputs(formatTargetList().c_str(), stdout);
      std::exit(0);
    } else if (const char *V = Value("--threads=")) {
      if (!parseBoundedUnsigned(V, kMaxCliValue, Opt.Threads))
        usage(Argv[0], "--threads must be an integer in [0, 1024]");
    } else if (const char *V = Value("--target=")) {
      Opt.TargetName = V;
    } else if (const char *V = Value("--allocator=")) {
      Opt.Pipeline.AllocatorName = V;
    } else if (const char *V = Value("--max-rounds=")) {
      if (!parseBoundedUnsigned(V, kMaxCliValue, Opt.Pipeline.MaxRounds) ||
          Opt.Pipeline.MaxRounds == 0)
        usage(Argv[0], "--max-rounds must be an integer in [1, 1024]");
    } else if (const char *V = Value("--cache-cap=")) {
      // Capacities are entry counts, not CLI-sized small numbers; allow
      // anything that fits comfortably in memory accounting.
      if (!parseBoundedUnsigned(V, 1u << 30, Opt.CacheCapacity))
        usage(Argv[0], "--cache-cap must be an integer in [0, 2^30]");
    } else if (const char *V = Value("--disk-cache=")) {
      if (!*V)
        usage(Argv[0], "--disk-cache needs a directory path");
      Opt.DiskCacheDir = V;
    } else if (const char *V = Value("--disk-cache-cap=")) {
      char *End = nullptr;
      errno = 0;
      unsigned long long Cap = std::strtoull(V, &End, 10);
      if (!std::isdigit(static_cast<unsigned char>(*V)) || (End && *End) ||
          errno == ERANGE)
        usage(Argv[0], "--disk-cache-cap must be a byte count >= 0");
      Opt.DiskCacheCapBytes = Cap;
    } else if (Arg == "--no-affinity") {
      Opt.Pipeline.AffinityBias = false;
    } else if (Arg == "--no-fold") {
      Opt.Pipeline.FoldMemoryOperands = false;
    } else if (const char *V = Value("--json=")) {
      if (!*V)
        usage(Argv[0], "--json needs a file path (or '-' for stdout)");
      Opt.JsonPath = V;
    } else if (const char *V = Value("--csv=")) {
      if (!*V)
        usage(Argv[0], "--csv needs a file path (or '-' for stdout)");
      Opt.CsvPath = V;
    } else if (const char *V = Value("--tasks-csv=")) {
      if (!*V)
        usage(Argv[0], "--tasks-csv needs a file path (or '-' for stdout)");
      Opt.TasksCsvPath = V;
    } else if (Arg == "--details") {
      Opt.Details = true;
    } else if (Arg == "--no-timing") {
      Opt.Timing = false;
    } else if (const char *V = Value("--trace=")) {
      if (!*V)
        usage(Argv[0], "--trace needs a file path");
      Opt.TracePath = V;
    } else if (Arg == "--metrics") {
      Opt.Metrics = true;
    } else if (const char *V = Value("--metrics=")) {
      if (!*V)
        usage(Argv[0], "--metrics needs a file path (or omit '=FILE' for "
                       "stderr)");
      Opt.Metrics = true;
      Opt.MetricsPath = V;
    } else if (Arg == "--workspace-stats") {
      Opt.WorkspaceStats = true;
    } else if (Arg == "--quiet") {
      Opt.Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
    } else {
      usage(Argv[0], ("unknown argument '" + Arg + "'").c_str());
    }
  }
  // A report written to stdout must be the only thing on stdout, or
  // downstream parsers choke.
  int StdoutReports = (Opt.JsonPath == "-" ? 1 : 0) +
                      (Opt.CsvPath == "-" ? 1 : 0) +
                      (Opt.TasksCsvPath == "-" ? 1 : 0);
  if (StdoutReports > 1)
    usage(Argv[0], "at most one of --json/--csv/--tasks-csv may be '-'");
  if (StdoutReports == 1)
    Opt.Quiet = true;
  return Opt;
}

/// Opens \p Path for writing; "-" means stdout.
std::FILE *openOutput(const std::string &Path) {
  if (Path == "-")
    return stdout;
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    std::exit(1);
  }
  return Out;
}

void closeOutput(std::FILE *Out) {
  if (Out != stdout)
    std::fclose(Out);
}

/// The one graph-only suite the CLI offers: deterministic generated chordal
/// interference graphs (subtrees of a random tree, the paper's SSA model),
/// solved straight through BatchDriver::solveProblems with the requested
/// allocator -- the same path the fig* harness drives.  Exercises the
/// allocator-vs-problem validation: interval-consuming allocators (ls/bls)
/// get a clean diagnostic here, since generated graphs carry no interval
/// table.
constexpr const char *kGraphSuiteName = "random-chordal";

/// Runs the graph-only suite over the register sweep and prints its own
/// summary table.  Exits with a usage-style diagnostic when the allocator
/// cannot consume graph-only instances.
void runGraphSuite(BatchDriver &Driver, const CliOptions &Opt) {
  // Fixed seed: the suite is part of the determinism contract, like every
  // generated IR suite.
  Rng R(0x6c61797261u); // "layra"
  std::vector<AllocationProblem> Base;
  for (unsigned I = 0; I < 16; ++I) {
    ChordalGenOptions G;
    G.NumVertices = 24 + I * 8;
    G.TreeSize = 20 + I * 6;
    Base.push_back(AllocationProblem::fromChordalGraph(
        randomChordalGraph(R, G), Opt.Regs.front()));
  }

  Table T({"suite", "regs", "instances", "spill cost"});
  for (unsigned Regs : Opt.Regs) {
    std::vector<AllocationProblem> Swept;
    Swept.reserve(Base.size());
    for (const AllocationProblem &P : Base)
      Swept.push_back(P.withBudgets({Regs}));
    std::vector<const AllocationProblem *> Instances;
    Instances.reserve(Swept.size());
    for (const AllocationProblem &P : Swept)
      Instances.push_back(&P);

    std::string Error;
    std::vector<AllocationResult> Results = Driver.solveProblems(
        Instances, Opt.Pipeline.AllocatorName, 50'000'000, &Error);
    if (!Error.empty()) {
      std::fprintf(stderr, "error: suite '%s': %s\n", kGraphSuiteName,
                   Error.c_str());
      std::exit(2);
    }
    Weight Total = 0;
    for (const AllocationResult &Res : Results)
      Total += Res.SpillCost;
    T.addRow({kGraphSuiteName, std::to_string(Regs),
              std::to_string(Results.size()), std::to_string(Total)});
  }
  if (!Opt.Quiet)
    T.print(stdout);
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opt = parseArgs(Argc, Argv);
  const TargetDesc *Target = targetByName(Opt.TargetName);
  if (!Target)
    usage(Argv[0], "unknown target");
  {
    std::unique_ptr<Allocator> Probe =
        makeAllocator(Opt.Pipeline.AllocatorName);
    if (!Probe) {
      std::string Error =
          "unknown allocator '" + Opt.Pipeline.AllocatorName + "' (known:";
      for (const std::string &N : allAllocatorNames())
        Error += " " + N;
      Error += ")";
      usage(Argv[0], Error.c_str());
    }
    // Allocator-vs-suite compatibility, up front: the graph-only suite has
    // no interval table for the linear-scan family to consume.
    if (Probe->requiresIntervals() &&
        std::find(Opt.Suites.begin(), Opt.Suites.end(), kGraphSuiteName) !=
            Opt.Suites.end())
      usage(Argv[0], ("allocator '" + Opt.Pipeline.AllocatorName +
                      "' requires live intervals, but suite '" +
                      kGraphSuiteName + "' is graph-only (no interval table)")
                         .c_str());
  }

  // Split off the graph-only suite; everything else resolves via
  // makeSuite() below.
  bool WantGraphSuite = false;
  std::vector<std::string> IrSuiteNames;
  for (const std::string &Name : Opt.Suites) {
    if (Name == kGraphSuiteName)
      WantGraphSuite = true;
    else
      IrSuiteNames.push_back(Name);
  }

  std::vector<std::string> Known = allSuiteNames();
  for (const std::string &Name : IrSuiteNames)
    if (std::find(Known.begin(), Known.end(), Name) == Known.end()) {
      std::string Error = "unknown suite '" + Name + "' (known:";
      for (const std::string &K : Known)
        Error += " " + K;
      Error += " ";
      Error += kGraphSuiteName;
      Error += ")";
      usage(Argv[0], Error.c_str());
    }

  // Class-regs overrides must name classes the target has; resolve once
  // so a typo fails before any generation work.
  if (!Opt.ClassRegs.empty()) {
    std::string Error;
    if (resolveClassBudgets(*Target, Opt.Regs.front(), Opt.ClassRegs,
                            &Error)
            .empty())
      usage(Argv[0], Error.c_str());
  }

  // Generate each IR suite once and share it across the register sweep.
  std::vector<Suite> Suites;
  Suites.reserve(IrSuiteNames.size());
  for (const std::string &Name : IrSuiteNames)
    Suites.push_back(makeSuite(Name));

  // Multi-class suites (mixed-classes) need a target with those register
  // files; fail with a message instead of a driver abort.
  for (const Suite &S : Suites)
    for (const SuiteProgram &Prog : S.Programs)
      for (const Function &F : Prog.Functions)
        if (std::string E = checkFunctionClasses(F, *Target); !E.empty()) {
          E = "suite '" + S.Name + "': " + E +
              "; pick a multi-class target (--list-targets)";
          usage(Argv[0], E.c_str());
        }

  std::vector<BatchJob> Jobs;
  for (const Suite &S : Suites)
    for (unsigned Regs : Opt.Regs) {
      BatchJob Job;
      Job.SuiteName = S.Name;
      Job.SuiteData = &S;
      Job.Target = *Target;
      Job.NumRegisters = Regs;
      Job.ClassRegs = Opt.ClassRegs;
      Job.Options = Opt.Pipeline;
      Jobs.push_back(Job);
    }

  // Open report outputs before the (potentially long) run so an unwritable
  // path fails fast instead of discarding the results.
  std::FILE *JsonOut = Opt.JsonPath.empty() ? nullptr : openOutput(Opt.JsonPath);
  std::FILE *CsvOut = Opt.CsvPath.empty() ? nullptr : openOutput(Opt.CsvPath);
  std::FILE *TasksCsvOut =
      Opt.TasksCsvPath.empty() ? nullptr : openOutput(Opt.TasksCsvPath);

  // Observability: phase accounting feeds phase_ms breakdowns and the
  // per-stage histograms --metrics dumps; it stays off under plain
  // --no-timing so the default timing-free path does not even read clocks.
  if (Opt.Timing || Opt.Metrics || !Opt.TracePath.empty())
    obs::setPhaseAccounting(true);
  // A --no-timing trace is deterministic (sequence timestamps): the same
  // byte-identity contract the reports follow.
  if (!Opt.TracePath.empty())
    TraceCollector::global().enable(/*Deterministic=*/!Opt.Timing);

  BatchDriver Driver(Opt.Threads);
  if (Opt.CacheCapacity)
    Driver.setCacheCapacity(Opt.CacheCapacity);
  // Persistent result store: a second run over the same sweep -- even in a
  // fresh process -- answers from disk.  Reports stay byte-identical in
  // the default timing-free mode (cache-transparent accounting).
  std::unique_ptr<DiskCache> Disk;
  if (!Opt.DiskCacheDir.empty()) {
    Disk = std::make_unique<DiskCache>(Opt.DiskCacheDir,
                                       Opt.DiskCacheCapBytes);
    if (!Disk->valid()) {
      std::fprintf(stderr, "error: %s\n", Disk->error().c_str());
      return 1;
    }
    Driver.setOutcomeStore(Disk.get());
  }
  // Timing-free reports are the deterministic documents: they must not
  // depend on how warm any cache layer is (the disk store above makes a
  // warm start possible even in a fresh process).  Timed reports keep
  // the honest warm-cache view.
  DriverReport Report = Driver.run(Jobs, /*CacheTransparent=*/!Opt.Timing);

  if (!Opt.TracePath.empty()) {
    TraceCollector &TC = TraceCollector::global();
    TC.disable();
    std::FILE *TraceOut = openOutput(Opt.TracePath);
    if (!TC.writeTo(TraceOut)) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n",
                   Opt.TracePath.c_str());
      return 1;
    }
    closeOutput(TraceOut);
    if (!Opt.Quiet)
      std::fprintf(stderr, "trace: %llu spans -> %s\n",
                   static_cast<unsigned long long>(TC.eventCount()),
                   Opt.TracePath.c_str());
  }

  if (!Opt.Quiet) {
    std::printf("layra-bench: %zu jobs (%zu suites x %zu register counts), "
                "%u threads, allocator %s on %s\n",
                Jobs.size(), Suites.size(), Opt.Regs.size(), Report.Threads,
                Opt.Pipeline.AllocatorName.c_str(), Target->Name);
    std::vector<std::string> Headers{"suite",      "regs",  "functions",
                                     "fit",        "spill cost", "loads",
                                     "stores",     "cache hits"};
    if (Opt.Timing)
      Headers.push_back("wall ms");
    Table T(std::move(Headers));
    for (const JobReport &JR : Report.Jobs) {
      std::vector<std::string> Row{
          JR.Job.SuiteName,
          std::to_string(JR.Job.NumRegisters),
          std::to_string(JR.Tasks.size()),
          std::to_string(JR.FunctionsFit),
          std::to_string(JR.TotalSpillCost),
          std::to_string(JR.TotalLoads),
          std::to_string(JR.TotalStores),
          std::to_string(JR.CacheHits)};
      if (Opt.Timing)
        Row.push_back(Table::num(JR.WallMsTotal));
      T.addRow(std::move(Row));
    }
    T.print(stdout);
    if (Opt.Timing)
      std::printf("total wall time: %s ms (cache: %llu entries, %llu hits, "
                  "%llu evicted)\n",
                  Table::num(Report.WallMs).c_str(),
                  static_cast<unsigned long long>(Report.CacheEntries),
                  static_cast<unsigned long long>(Report.CacheHits),
                  static_cast<unsigned long long>(Report.CacheEvictions));
  }

  if (!Opt.Quiet && Disk) {
    DiskCacheStats DS = Disk->stats();
    std::fprintf(stderr,
                 "disk cache: %llu hits, %llu misses, %llu writes; "
                 "%llu entries (%llu bytes) at %s\n",
                 static_cast<unsigned long long>(DS.Hits),
                 static_cast<unsigned long long>(DS.Misses),
                 static_cast<unsigned long long>(DS.Writes),
                 static_cast<unsigned long long>(DS.Entries),
                 static_cast<unsigned long long>(DS.Bytes),
                 Disk->directory().c_str());
  }

  // The graph-only suite runs through solveProblems on the same driver
  // (summary table only; it has no pipeline tasks for the reports).
  if (WantGraphSuite)
    runGraphSuite(Driver, Opt);

  if (Opt.WorkspaceStats || Opt.Metrics) {
    // Stderr (unless --metrics=FILE), so a report streamed to stdout stays
    // parseable.  The workspace split is thread-count dependent (per-worker
    // arenas), hence gauges in the registry and never report fields.
    MetricsSnapshot Snap = MetricsRegistry::global().snapshot();
    if (Opt.WorkspaceStats) {
      // Alias for the workspace/cache subset of the registry.
      std::fputs(Snap.toText("layra.workspace.").c_str(), stderr);
      std::fputs(Snap.toText("layra.driver.cache.").c_str(), stderr);
    }
    if (Opt.Metrics) {
      std::string Text = Snap.toPrometheusText();
      if (Opt.MetricsPath.empty()) {
        std::fputs(Text.c_str(), stderr);
      } else {
        std::FILE *MetricsOut = openOutput(Opt.MetricsPath);
        std::fwrite(Text.data(), 1, Text.size(), MetricsOut);
        closeOutput(MetricsOut);
      }
    }
  }

  if (JsonOut) {
    writeDriverReportJson(JsonOut, Report, Opt.Timing, Opt.Details);
    closeOutput(JsonOut);
  }
  if (CsvOut) {
    writeDriverReportCsv(CsvOut, Report, Opt.Timing);
    closeOutput(CsvOut);
  }
  if (TasksCsvOut) {
    writeDriverTasksCsv(TasksCsvOut, Report, Opt.Timing);
    closeOutput(TasksCsvOut);
  }
  return 0;
}
