//===- examples/jit_pipeline.cpp - JIT-style allocation walkthrough -------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates the paper's §6.2 JIT scenario: non-SSA methods (as a JikesRVM-
/// style compiler would hold them), general interference graphs, and the
/// layered-heuristic allocator racing the classic JIT baselines.  Also
/// materialises the winning decision as spill code and reports the final
/// static spill profile -- everything a JIT backend would do, end to end.
///
/// Build & run:  ./build/examples/jit_pipeline
///
//===----------------------------------------------------------------------===//

#include "layra/Layra.h"

#include <chrono>
#include <cstdio>

using namespace layra;

int main() {
  // A "hot method" arriving at the JIT: generated, not hand-written, like
  // the synthetic JVM98 suite.
  Rng R(0xc0ffee);
  ProgramGenOptions Shape;
  Shape.NumVars = 16;
  Shape.MaxBlocks = 32;
  Shape.LoopProb = 0.35;
  Function Method = generateFunction(R, Shape, "hot_method");
  DominatorTree Dom(Method);
  LoopInfo Loops(Method, Dom);
  Loops.annotate(Method);

  unsigned Regs = 6;
  AllocationProblem P = buildGeneralProblem(Method, ARMv7, Regs);
  std::printf("method %s: %u blocks, %u variables, MaxLive=%u, "
              "interference %s\n\n",
              Method.name().c_str(), Method.numBlocks(), Method.numValues(),
              P.maxLive(), isChordal(P.graph()) ? "chordal" : "NON-chordal");

  // Race the JIT allocators; a JIT also cares about allocation time.  The
  // winner is the cheapest decision (lowest static spill cost), with
  // allocation time breaking ties -- not a hardcoded favourite.
  std::printf("%-8s %-12s %-10s\n", "alloc", "spill cost", "time");
  AllocationResult Best;
  std::string BestName;
  double BestUs = 0;
  for (const char *Name : {"ls", "bls", "gc", "lh"}) {
    auto A = makeAllocator(Name);
    auto T0 = std::chrono::steady_clock::now();
    AllocationResult Result = A->allocate(P);
    double Us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    std::printf("%-8s %-12lld %.0f us\n", Name, Result.SpillCost, Us);
    if (BestName.empty() || Result.SpillCost < Best.SpillCost ||
        (Result.SpillCost == Best.SpillCost && Us < BestUs)) {
      Best = Result;
      BestName = Name;
      BestUs = Us;
    }
  }
  std::printf("\nwinner: %s (spill cost %lld)\n", BestName.c_str(),
              Best.SpillCost);

  // Materialise the winner's decision as spill code.
  std::vector<char> Spilled(Method.numValues(), 0);
  for (VertexId V = 0; V < P.graph().numVertices(); ++V)
    Spilled[V] = Best.Allocated[V] ? 0 : 1;
  SpillRewriteStats Stats = rewriteSpills(Method, Spilled);
  std::printf("\nspill code inserted: %u stores, %u loads, %u stack slots\n",
              Stats.NumStores, Stats.NumLoads, Stats.NumSlots);

  Liveness LiveAfter(Method);
  std::printf("pressure: MaxLive %u -> %u after spilling (R = %u)\n",
              P.maxLive(), LiveAfter.maxLive(Method), Regs);

  std::printf("\n--- rewritten method (excerpt) ---\n");
  std::string Text = Method.toString();
  std::printf("%.1200s%s\n", Text.c_str(),
              Text.size() > 1200 ? "\n  ..." : "");
  return 0;
}
