//===- examples/layra_loadgen.cpp - Allocation-server load generator ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `layra-loadgen`: drives a running `layra-serve` with N concurrent client
/// connections replaying allocate requests, then reports throughput and
/// client-observed latency percentiles (p50/p95/p99 from the same
/// log-linear histogram type the server uses, obs/Metrics.h, so the two
/// ends' figures are bucket-for-bucket comparable).  Doubles as the CI
/// smoke driver: the exit status is nonzero unless every request completed
/// and -- because responses are deterministic -- every client saw
/// byte-identical answers to the identical request.
///
/// Usage:
///   layra-loadgen (--unix=PATH | --tcp=PORT [--host=ADDR])
///                 [--clients=N] [--requests=M | --duration=SECS]
///                 [--suite=NAME[,NAME...]]
///                 [--regs=LO..HI|--regs=A,B,C] [--allocator=NAME]
///                 [--target=NAME] [--details] [--timing] [--stats]
///                 [--trace-sample=K] [--quiet]
///
///   --clients     concurrent connections (default 4)
///   --requests    requests per client (default 8)
///   --duration    run for SECS seconds (fractions ok) instead of a fixed
///                 request count; every client still sends at least one
///                 request.  Mutually exclusive with --requests
///   --suite       suites named in each request (default eembc)
///   --regs        register counts per request (default 4..8)
///   --stats       fetch and print the server's stats payload at the end
///   --trace-sample=K
///                 request a traced response (docs/PROTOCOL.md `trace`
///                 field) for every K-th request of each client and print
///                 a per-phase latency breakdown table: the server's
///                 accept/queue_wait/dispatch/driver spans plus the
///                 flush+network residual against client-observed
///                 latency.  Each sampled request carries a unique trace
///                 id; a response that fails to echo it counts as a
///                 failed request.  Traced responses are excluded from
///                 the byte-identity check (they differ by exactly the
///                 trace object)
///
/// Example:
///   layra-loadgen --unix=/tmp/layra.sock --clients=8 --requests=32
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "service/Client.h"
#include "support/Json.h"
#include "support/ParseUtil.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace layra;

namespace {

struct LoadOptions {
  std::string UnixPath;
  bool UseTcp = false;
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  unsigned Clients = 4;
  unsigned Requests = 8;
  bool RequestsSet = false;
  /// Timed-run length in seconds; 0 = fixed request count per client.
  double DurationSecs = 0;
  std::vector<std::string> Suites{"eembc"};
  std::vector<unsigned> Regs{4, 5, 6, 7, 8};
  std::string Allocator = "bfpl";
  std::string Target = "st231";
  bool Details = false;
  bool Timing = false;
  bool FetchStats = false;
  bool Quiet = false;
  /// Trace every K-th request per client; 0 = tracing off.
  unsigned TraceSample = 0;
};

[[noreturn]] void usage(const char *Argv0, const char *Error = nullptr) {
  if (Error)
    std::fprintf(stderr, "error: %s\n", Error);
  std::fprintf(
      stderr,
      "usage: %s (--unix=PATH | --tcp=PORT [--host=ADDR])\n"
      "          [--clients=N] [--requests=M | --duration=SECS]\n"
      "          [--suite=NAME[,NAME...]]\n"
      "          [--regs=LO..HI|--regs=A,B,C] [--allocator=NAME]\n"
      "          [--target=NAME] [--details] [--timing] [--stats]\n"
      "          [--trace-sample=K] [--quiet]\n",
      Argv0);
  std::exit(2);
}

LoadOptions parseArgs(int Argc, char **Argv) {
  LoadOptions Opt;
  unsigned Parsed = 0;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) != 0)
        return nullptr;
      return Arg.c_str() + Len;
    };
    if (const char *V = Value("--unix=")) {
      Opt.UnixPath = V;
    } else if (const char *V = Value("--tcp=")) {
      if (!parseBoundedUnsigned(V, 65535, Parsed) || Parsed == 0)
        usage(Argv[0], "--tcp must be a port in [1, 65535]");
      Opt.UseTcp = true;
      Opt.Port = static_cast<uint16_t>(Parsed);
    } else if (const char *V = Value("--host=")) {
      Opt.Host = V;
    } else if (const char *V = Value("--clients=")) {
      if (!parseBoundedUnsigned(V, 4096, Opt.Clients) || Opt.Clients == 0)
        usage(Argv[0], "--clients must be an integer in [1, 4096]");
    } else if (const char *V = Value("--requests=")) {
      if (!parseBoundedUnsigned(V, 1u << 20, Opt.Requests) ||
          Opt.Requests == 0)
        usage(Argv[0], "--requests must be an integer in [1, 2^20]");
      Opt.RequestsSet = true;
    } else if (const char *V = Value("--duration=")) {
      if (!parsePositiveSeconds(V, 86400.0, Opt.DurationSecs))
        usage(Argv[0],
              "--duration must be a positive number of seconds (<= 86400)");
    } else if (const char *V = Value("--suite=")) {
      Opt.Suites = splitCommaList(V);
      if (Opt.Suites.empty())
        usage(Argv[0], "--suite must name at least one suite");
    } else if (const char *V = Value("--regs=")) {
      std::string Error;
      if (!parseRegList(V, 1024, Opt.Regs, Error))
        usage(Argv[0], Error.c_str());
    } else if (const char *V = Value("--allocator=")) {
      Opt.Allocator = V;
    } else if (const char *V = Value("--target=")) {
      Opt.Target = V;
    } else if (const char *V = Value("--trace-sample=")) {
      if (!parseBoundedUnsigned(V, 1u << 20, Opt.TraceSample) ||
          Opt.TraceSample == 0)
        usage(Argv[0], "--trace-sample must be an integer in [1, 2^20]");
    } else if (Arg == "--details") {
      Opt.Details = true;
    } else if (Arg == "--timing") {
      Opt.Timing = true;
    } else if (Arg == "--stats") {
      Opt.FetchStats = true;
    } else if (Arg == "--quiet") {
      Opt.Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
    } else {
      usage(Argv[0], ("unknown argument '" + Arg + "'").c_str());
    }
  }
  if (Opt.UnixPath.empty() && !Opt.UseTcp)
    usage(Argv[0], "pass --unix=PATH or --tcp=PORT");
  if (!Opt.UnixPath.empty() && Opt.UseTcp)
    usage(Argv[0], "pass only one of --unix / --tcp");
  if (Opt.DurationSecs > 0 && Opt.RequestsSet)
    usage(Argv[0], "pass only one of --requests / --duration");
  return Opt;
}

Client connect(const LoadOptions &Opt, std::string *Error) {
  if (Opt.UseTcp)
    return Client::connectToTcp(Opt.Host, Opt.Port, Error);
  return Client::connectToUnix(Opt.UnixPath, Error);
}

} // namespace

int main(int Argc, char **Argv) {
  LoadOptions Opt = parseArgs(Argc, Argv);

  ServiceRequest Req;
  Req.K = ServiceRequest::Kind::Allocate;
  Req.Suites = Opt.Suites;
  Req.Regs = Opt.Regs;
  Req.TargetName = Opt.Target;
  Req.Options.AllocatorName = Opt.Allocator;
  Req.Timing = Opt.Timing;
  Req.Details = Opt.Details;
  std::string Request = Client::makeAllocateRequest(Req);

  std::atomic<uint64_t> Completed{0}, Failed{0}, Mismatched{0};
  std::mutex ReferenceMutex;
  std::string ReferenceResponse; // First response; all others must match.
  // Per-span accumulation over traced responses (name -> {sum ms, count}),
  // plus the client-observed latency of exactly those requests so the
  // breakdown table and its residual line add up over the same sample.
  std::mutex TraceMutex;
  std::map<std::string, std::pair<double, uint64_t>> SpanAgg;
  double TracedClientMs = 0;
  uint64_t TracedCount = 0;
  // Shared concurrent histogram (obs/Metrics.h): record() is wait-free, so
  // clients never serialize on a latency mutex, and the bucket geometry
  // matches the server's service-time histogram exactly.
  Histogram Latency;

  auto Begin = std::chrono::steady_clock::now();
  auto Deadline =
      Begin + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(Opt.DurationSecs));
  std::vector<std::thread> Threads;
  Threads.reserve(Opt.Clients);
  for (unsigned C = 0; C < Opt.Clients; ++C)
    Threads.emplace_back([&, C] {
      std::string Error;
      Client Conn = connect(Opt, &Error);
      if (!Conn.valid()) {
        std::fprintf(stderr, "client %u: %s\n", C, Error.c_str());
        Failed += Opt.DurationSecs > 0 ? 1 : Opt.Requests;
        return;
      }
      std::string Response;
      // do/while: a timed run still sends at least one request per client,
      // so a sub-millisecond --duration cannot silently measure nothing.
      unsigned R = 0;
      // Counts every send attempt (unlike R, which only advances in
      // fixed-count mode); drives trace sampling in both modes.
      uint64_t Sent = 0;
      do {
        const bool Traced =
            Opt.TraceSample > 0 && Sent % Opt.TraceSample == 0;
        std::string TraceId;
        std::string TracedRequest;
        const std::string *Payload = &Request;
        if (Traced) {
          // A unique id per sampled request proves the echo is really
          // per-request, not a cached or crossed response.
          ServiceRequest TReq = Req;
          TReq.Trace = true;
          TraceId = "lg" + std::to_string(C) + "-" + std::to_string(Sent);
          TReq.TraceId = TraceId;
          TracedRequest = Client::makeAllocateRequest(TReq);
          Payload = &TracedRequest;
        }
        ++Sent;
        auto Start = std::chrono::steady_clock::now();
        if (!Conn.call(*Payload, Response, &Error)) {
          std::fprintf(stderr, "client %u request %u: %s\n", C, R,
                       Error.c_str());
          ++Failed;
          // A broken connection in a timed run would otherwise spin on
          // errors until the deadline; one failure ends this client.
          if (Opt.DurationSecs > 0)
            break;
          continue;
        }
        double Ms = std::chrono::duration_cast<
                        std::chrono::duration<double, std::milli>>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
        // A server-side error payload is a failed request here.
        if (Client::isErrorResponse(Response)) {
          std::fprintf(stderr, "client %u request %u: server error: %s\n", C,
                       R, Response.c_str());
          ++Failed;
          continue;
        }
        if (Traced) {
          // The echoed trace id must be the one this request carried;
          // anything else means the span data belongs to someone else.
          JsonParseResult Parsed = parseJson(Response);
          const JsonValue *Trace =
              Parsed.Ok ? Parsed.Value.find("trace") : nullptr;
          const JsonValue *Id = Trace ? Trace->find("id") : nullptr;
          if (!Id || !Id->isString() || Id->stringValue() != TraceId) {
            std::fprintf(stderr,
                         "client %u request %u: trace id '%s' not echoed\n",
                         C, R, TraceId.c_str());
            ++Failed;
            continue;
          }
          ++Completed;
          Latency.record(Ms);
          std::lock_guard<std::mutex> L(TraceMutex);
          ++TracedCount;
          TracedClientMs += Ms;
          if (const JsonValue *Spans = Trace->find("spans"))
            for (const JsonValue &Span : Spans->elements())
              if (const JsonValue *Name = Span.find("name"))
                if (const JsonValue *Dur = Span.find("dur_ms")) {
                  auto &Agg = SpanAgg[Name->stringValue()];
                  Agg.first += Dur->numberValue();
                  ++Agg.second;
                }
          // Traced responses carry the trace object, so they are by
          // design not byte-identical to the reference response.
          continue;
        }
        ++Completed;
        Latency.record(Ms);
        // Deterministic protocol: when timing is off, every response to
        // the identical request must be byte-identical across clients.
        if (!Opt.Timing) {
          std::lock_guard<std::mutex> L(ReferenceMutex);
          if (ReferenceResponse.empty())
            ReferenceResponse = Response;
          else if (Response != ReferenceResponse)
            ++Mismatched;
        }
      } while (Opt.DurationSecs > 0
                   ? std::chrono::steady_clock::now() < Deadline
                   : ++R < Opt.Requests);
    });
  for (std::thread &T : Threads)
    T.join();
  double TotalMs = std::chrono::duration_cast<
                       std::chrono::duration<double, std::milli>>(
                       std::chrono::steady_clock::now() - Begin)
                       .count();

  if (!Opt.Quiet) {
    HistogramSnapshot Snap = Latency.snapshot();
    if (Opt.DurationSecs > 0)
      std::printf("layra-loadgen: %llu requests completed over %u "
                  "clients in %.1f ms (%.1f req/s)\n",
                  static_cast<unsigned long long>(Completed.load()),
                  Opt.Clients, TotalMs,
                  Completed.load() > 0 ? 1000.0 * Completed.load() / TotalMs
                                       : 0.0);
    else
      std::printf("layra-loadgen: %llu/%llu requests completed over %u "
                  "clients in %.1f ms (%.1f req/s)\n",
                  static_cast<unsigned long long>(Completed.load()),
                  static_cast<unsigned long long>(
                      static_cast<uint64_t>(Opt.Clients) * Opt.Requests),
                  Opt.Clients, TotalMs,
                  Completed.load() > 0 ? 1000.0 * Completed.load() / TotalMs
                                       : 0.0);
    if (Snap.Count > 0)
      std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f\n",
                  Snap.percentile(0.50), Snap.percentile(0.95),
                  Snap.percentile(0.99), Snap.meanMs());
    if (Mismatched.load() > 0)
      std::printf("DETERMINISM VIOLATION: %llu responses differed\n",
                  static_cast<unsigned long long>(Mismatched.load()));
    if (Opt.TraceSample > 0 && TracedCount > 0) {
      // Server-side spans in request order, then the part of the client
      // latency the server never sees (response flush + network + client
      // parse) as the residual, so the rows sum to the client mean.
      std::printf("trace breakdown (%llu sampled requests, mean ms):\n",
                  static_cast<unsigned long long>(TracedCount));
      const char *Order[] = {"accept", "queue_wait", "dispatch", "driver"};
      double Accounted = 0;
      for (const char *Name : Order) {
        auto It = SpanAgg.find(Name);
        double Mean =
            It != SpanAgg.end() && It->second.second > 0
                ? It->second.first / static_cast<double>(It->second.second)
                : 0.0;
        Accounted += Mean;
        std::printf("  %-12s %9.3f\n", Name, Mean);
      }
      double ClientMean = TracedClientMs / static_cast<double>(TracedCount);
      double Residual = ClientMean - Accounted;
      std::printf("  %-12s %9.3f\n", "flush+net",
                  Residual > 0 ? Residual : 0.0);
      std::printf("  %-12s %9.3f\n", "client total", ClientMean);
    }
  }

  if (Opt.FetchStats) {
    std::string Error, Stats;
    Client Conn = connect(Opt, &Error);
    if (Conn.valid() && Conn.stats(Stats, &Error))
      std::fputs(Stats.c_str(), stdout);
    else
      std::fprintf(stderr, "stats fetch failed: %s\n", Error.c_str());
  }

  bool Ok = Completed.load() > 0 && Failed.load() == 0 &&
            Mismatched.load() == 0;
  return Ok ? 0 : 1;
}
