//===- examples/layra_loadgen.cpp - Allocation-server load generator ------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `layra-loadgen`: drives a running `layra-serve` with N concurrent client
/// connections replaying allocate requests, then reports throughput and
/// client-observed latency percentiles (p50/p95/p99 from the same
/// log-linear histogram type the server uses, obs/Metrics.h, so the two
/// ends' figures are bucket-for-bucket comparable).  Doubles as the CI
/// smoke driver: the exit status is nonzero unless every request completed
/// and -- because responses are deterministic -- every client saw
/// byte-identical answers to the identical request.
///
/// All connections are multiplexed on ONE thread through poll(2) --
/// mirroring the server's own event loop -- so `--clients=2000` costs two
/// thousand sockets, not two thousand threads, and the measured latency
/// is not polluted by client-side scheduler noise.  Each connection keeps
/// one request in flight (closed loop) unless `--rps` switches to
/// open-loop pacing: requests are then released on a fixed global
/// schedule, independent of responses, which is the arrival model that
/// actually exposes queueing behavior.
///
/// Usage:
///   layra-loadgen (--unix=PATH | --tcp=PORT [--host=ADDR])
///                 [--clients=N] [--requests=M | --duration=SECS]
///                 [--rps=N] [--suite=NAME[,NAME...]]
///                 [--regs=LO..HI|--regs=A,B,C] [--allocator=NAME]
///                 [--target=NAME] [--edit-heavy] [--details] [--timing]
///                 [--stats] [--trace-sample=K] [--json=FILE] [--quiet]
///
///   --clients     concurrent connections (default 4)
///   --requests    requests per client (default 8)
///   --duration    run for SECS seconds (fractions ok) instead of a fixed
///                 request count; every client still sends at least one
///                 request.  Mutually exclusive with --requests
///   --rps         open-loop request release rate, requests per second
///                 across all clients (default 0 = closed loop: each idle
///                 client sends immediately)
///   --edit-heavy  JIT resubmission scenario (docs/PROTOCOL.md delta
///                 mode): each client first submits its own generated
///                 function (registering a warm-start base), then
///                 alternates frequency-edited resubmissions *with* the
///                 `base` key (delta arm) and *without* it (scratch
///                 arm).  Every edit is unique, so neither arm can hit
///                 the content-hash response cache; the report carries
///                 separate p50/p95 for the two arms -- the delta
///                 speedup is the figure of merit.  Byte-identity
///                 checking is off (every response answers a different
///                 edit); suites are ignored
///   --suite       suites named in each request (default eembc)
///   --regs        register counts per request (default 4..8)
///   --stats       fetch and print the server's stats payload at the end,
///                 plus a per-shard cache hit-rate summary (stats v3)
///   --trace-sample=K
///                 request a traced response (docs/PROTOCOL.md `trace`
///                 field) for every K-th request of each client and print
///                 a per-phase latency breakdown table: the server's
///                 accept/queue_wait/dispatch/driver spans plus the
///                 flush+network residual against client-observed
///                 latency.  Each sampled request carries a unique trace
///                 id; a response that fails to echo it counts as a
///                 failed request.  Traced responses are excluded from
///                 the byte-identity check (they differ by exactly the
///                 trace object)
///   --json=FILE   write a machine-readable run summary ("-" = stdout);
///                 scripts/perf_gate.py checks its deterministic fields
///                 in CI
///
/// Example:
///   layra-loadgen --unix=/tmp/layra.sock --clients=8 --requests=32
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "service/Client.h"
#include "support/Json.h"
#include "support/ParseUtil.h"
#include "support/Socket.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <vector>

using namespace layra;

namespace {

struct LoadOptions {
  std::string UnixPath;
  bool UseTcp = false;
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  unsigned Clients = 4;
  unsigned Requests = 8;
  bool RequestsSet = false;
  /// Timed-run length in seconds; 0 = fixed request count per client.
  double DurationSecs = 0;
  /// Open-loop release rate across all clients; 0 = closed loop.
  double Rps = 0;
  std::vector<std::string> Suites{"eembc"};
  std::vector<unsigned> Regs{4, 5, 6, 7, 8};
  std::string Allocator = "bfpl";
  std::string Target = "st231";
  bool Details = false;
  bool Timing = false;
  bool FetchStats = false;
  bool Quiet = false;
  /// JIT resubmission scenario: delta vs from-scratch arms.
  bool EditHeavy = false;
  /// Trace every K-th request per client; 0 = tracing off.
  unsigned TraceSample = 0;
  std::string JsonPath;
};

[[noreturn]] void usage(const char *Argv0, const char *Error = nullptr) {
  if (Error)
    std::fprintf(stderr, "error: %s\n", Error);
  std::fprintf(
      stderr,
      "usage: %s (--unix=PATH | --tcp=PORT [--host=ADDR])\n"
      "          [--clients=N] [--requests=M | --duration=SECS]\n"
      "          [--rps=N] [--suite=NAME[,NAME...]]\n"
      "          [--regs=LO..HI|--regs=A,B,C] [--allocator=NAME]\n"
      "          [--target=NAME] [--edit-heavy] [--details] [--timing]\n"
      "          [--stats] [--trace-sample=K] [--json=FILE] [--quiet]\n",
      Argv0);
  std::exit(2);
}

LoadOptions parseArgs(int Argc, char **Argv) {
  LoadOptions Opt;
  unsigned Parsed = 0;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) != 0)
        return nullptr;
      return Arg.c_str() + Len;
    };
    if (const char *V = Value("--unix=")) {
      Opt.UnixPath = V;
    } else if (const char *V = Value("--tcp=")) {
      if (!parseBoundedUnsigned(V, 65535, Parsed) || Parsed == 0)
        usage(Argv[0], "--tcp must be a port in [1, 65535]");
      Opt.UseTcp = true;
      Opt.Port = static_cast<uint16_t>(Parsed);
    } else if (const char *V = Value("--host=")) {
      Opt.Host = V;
    } else if (const char *V = Value("--clients=")) {
      if (!parseBoundedUnsigned(V, 16384, Opt.Clients) || Opt.Clients == 0)
        usage(Argv[0], "--clients must be an integer in [1, 16384]");
    } else if (const char *V = Value("--requests=")) {
      if (!parseBoundedUnsigned(V, 1u << 20, Opt.Requests) ||
          Opt.Requests == 0)
        usage(Argv[0], "--requests must be an integer in [1, 2^20]");
      Opt.RequestsSet = true;
    } else if (const char *V = Value("--duration=")) {
      if (!parsePositiveReal(V, 86400.0, Opt.DurationSecs))
        usage(Argv[0],
              "--duration must be a positive number of seconds (<= 86400)");
    } else if (const char *V = Value("--rps=")) {
      // A rate, not a duration: same strict positive-real grammar, honest
      // name (parsePositiveSeconds would have read as seconds here).
      if (!parsePositiveReal(V, 1e7, Opt.Rps))
        usage(Argv[0], "--rps must be a positive rate (<= 1e7)");
    } else if (const char *V = Value("--suite=")) {
      Opt.Suites = splitCommaList(V);
      if (Opt.Suites.empty())
        usage(Argv[0], "--suite must name at least one suite");
    } else if (const char *V = Value("--regs=")) {
      std::string Error;
      if (!parseRegList(V, 1024, Opt.Regs, Error))
        usage(Argv[0], Error.c_str());
    } else if (const char *V = Value("--allocator=")) {
      Opt.Allocator = V;
    } else if (const char *V = Value("--target=")) {
      Opt.Target = V;
    } else if (const char *V = Value("--trace-sample=")) {
      if (!parseBoundedUnsigned(V, 1u << 20, Opt.TraceSample) ||
          Opt.TraceSample == 0)
        usage(Argv[0], "--trace-sample must be an integer in [1, 2^20]");
    } else if (const char *V = Value("--json=")) {
      if (!*V)
        usage(Argv[0], "--json needs a file path (or '-' for stdout)");
      Opt.JsonPath = V;
    } else if (Arg == "--edit-heavy") {
      Opt.EditHeavy = true;
    } else if (Arg == "--details") {
      Opt.Details = true;
    } else if (Arg == "--timing") {
      Opt.Timing = true;
    } else if (Arg == "--stats") {
      Opt.FetchStats = true;
    } else if (Arg == "--quiet") {
      Opt.Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
    } else {
      usage(Argv[0], ("unknown argument '" + Arg + "'").c_str());
    }
  }
  if (Opt.UnixPath.empty() && !Opt.UseTcp)
    usage(Argv[0], "pass --unix=PATH or --tcp=PORT");
  if (!Opt.UnixPath.empty() && Opt.UseTcp)
    usage(Argv[0], "pass only one of --unix / --tcp");
  if (Opt.DurationSecs > 0 && Opt.RequestsSet)
    usage(Argv[0], "pass only one of --requests / --duration");
  if (Opt.EditHeavy && Opt.TraceSample > 0)
    usage(Argv[0], "--edit-heavy and --trace-sample are mutually exclusive");
  return Opt;
}

Client connect(const LoadOptions &Opt, std::string *Error) {
  if (Opt.UseTcp)
    return Client::connectToTcp(Opt.Host, Opt.Port, Error);
  return Client::connectToUnix(Opt.UnixPath, Error);
}

/// The edit-heavy scenario's "hot method": one high-pressure loop whose
/// header frequency is the parameter a JIT's profile feedback would keep
/// nudging.  Every client gets its own function name (its own warm-start
/// base), and every edit a distinct \p Freq -- frequency is exactly the
/// kind of change the server's delta mode can absorb without rebuilding
/// the interference structure, and a distinct edit is what keeps both
/// measurement arms honest (no response-cache hits).
std::string makeEditHeavyIr(unsigned ClientIndex, uint64_t Freq) {
  // Big enough that building the interference structure dominates the
  // request: the delta arm's whole advantage is skipping that build, and
  // on a toy-sized method fixed request overhead would bury it.
  constexpr unsigned NumSeeds = 48;
  std::string Ir =
      "function jitfn_" + std::to_string(ClientIndex) + " {\n";
  Ir += "entry:  ; depth=0 freq=1\n";
  for (unsigned I = 0; I < NumSeeds; ++I)
    Ir += "  %e" + std::to_string(I) + " = op\n";
  Ir += "  br %e0\n  ; succs=loop\n";
  Ir += "loop:  ; depth=1 freq=" + std::to_string(Freq) +
        " preds=entry,loop\n";
  Ir += "  %i = phi %e0, %inext\n";
  // Each loop value mixes the counter with one entry seed, so every seed
  // stays live across the whole loop: MaxLive ~ NumSeeds + loop chain.
  for (unsigned I = 0; I < NumSeeds; ++I)
    Ir += "  %l" + std::to_string(I) + " = op %i, %e" +
          std::to_string(I) + "\n";
  Ir += "  %inext = op %l" + std::to_string(NumSeeds - 1) + "\n";
  Ir += "  br %inext\n  ; succs=loop,exit\n";
  Ir += "exit:  ; depth=0 freq=1 preds=loop\n";
  Ir += "  ret %l0, %l" + std::to_string(NumSeeds / 2) + ", %inext\n";
  Ir += "}\n";
  return Ir;
}

/// One multiplexed connection's state machine.  A connection is either
/// idle (no request in flight) or busy: writing the request frame out of
/// Out, then accumulating the response frame into In.
struct Conn {
  SocketFd Fd;
  unsigned Index = 0;
  bool Dead = false;
  bool Busy = false;
  /// Request frame being written; OutPos marks sent bytes.
  std::string Out;
  size_t OutPos = 0;
  /// Response frame accumulating.
  std::string In;
  uint64_t Sent = 0;     ///< Requests issued on this connection.
  unsigned Completed = 0;
  bool Traced = false;   ///< The in-flight request asked for a trace.
  std::string TraceId;
  std::chrono::steady_clock::time_point SendTime;
  /// Edit-heavy mode: which measurement arm the in-flight request
  /// belongs to (0 = base registration, unmeasured; 1 = delta; 2 =
  /// scratch), and the client's base key for the delta arm.
  unsigned Arm = 0;
  std::string BaseKey;
};

double msBetween(std::chrono::steady_clock::time_point A,
                 std::chrono::steady_clock::time_point B) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(B - A)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  LoadOptions Opt = parseArgs(Argc, Argv);

  ServiceRequest Req;
  Req.K = ServiceRequest::Kind::Allocate;
  Req.Suites = Opt.Suites;
  Req.Regs = Opt.Regs;
  Req.TargetName = Opt.Target;
  Req.Options.AllocatorName = Opt.Allocator;
  Req.Timing = Opt.Timing;
  Req.Details = Opt.Details;
  const std::string PlainFrame = encodeFrame(Client::makeAllocateRequest(Req));

  // Edit-heavy mode: per-client base IR and its wire base key, computed
  // once (the edits re-render the IR with a new loop frequency).
  auto submitFrame = [&](const std::string &Ir, const std::string &Base) {
    ServiceRequest S;
    S.K = ServiceRequest::Kind::SubmitIr;
    S.IrText = Ir;
    S.Regs = Opt.Regs;
    S.TargetName = Opt.Target;
    S.Options.AllocatorName = Opt.Allocator;
    S.Timing = Opt.Timing;
    S.Details = Opt.Details;
    S.Base = Base;
    return encodeFrame(Client::makeSubmitIrRequest(S));
  };
  // Each client edits in its own frequency band and each edit k adds k,
  // so every request body across all clients is unique: the solver's
  // content-hash cache ignores the function *name*, so same-structure
  // functions with equal frequencies would otherwise cross-hit between
  // clients and fake out both measurement arms.
  auto editFreq = [](unsigned ClientIndex, unsigned Edit) {
    return 100 + uint64_t(ClientIndex) * 1000000 + Edit;
  };

  uint64_t Completed = 0, Failed = 0, Mismatched = 0;
  std::string ReferenceResponse; // First response; all others must match.
  // Per-span accumulation over traced responses (name -> {sum ms, count}),
  // plus the client-observed latency of exactly those requests so the
  // breakdown table and its residual line add up over the same sample.
  std::map<std::string, std::pair<double, uint64_t>> SpanAgg;
  double TracedClientMs = 0;
  uint64_t TracedCount = 0;
  Histogram Latency;
  // Edit-heavy arms: client-observed latency of delta resubmissions vs
  // identical-shape from-scratch resubmissions.
  Histogram DeltaLat, ScratchLat;

  // One fd per client plus headroom; ask before connecting so 2000
  // clients do not die at the default soft limit of 1024.
  raiseFdLimit(Opt.Clients + 16);

  std::vector<Conn> Conns(Opt.Clients);
  for (unsigned C = 0; C < Opt.Clients; ++C) {
    Conns[C].Index = C;
    if (Opt.EditHeavy)
      Conns[C].BaseKey =
          formatBaseKey(submitIrBaseKey(makeEditHeavyIr(C, editFreq(C, 0))));
    std::string Error;
    SocketFd Fd = Opt.UseTcp ? connectTcp(Opt.Host, Opt.Port, &Error)
                             : connectUnix(Opt.UnixPath, &Error);
    if (!Fd.valid()) {
      std::fprintf(stderr, "client %u: %s\n", C, Error.c_str());
      // Same accounting the threaded loadgen used: a client that never
      // connected fails its whole quota (one request in timed mode).
      Failed += Opt.DurationSecs > 0 ? 1 : Opt.Requests;
      Conns[C].Dead = true;
      continue;
    }
    setNonBlocking(Fd.fd());
    setTcpNoDelay(Fd.fd());
    Conns[C].Fd = std::move(Fd);
  }

  auto Begin = std::chrono::steady_clock::now();
  auto Deadline =
      Begin + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(Opt.DurationSecs));
  // Open-loop schedule: the next instant a request may be released.
  // Slots that fall due while every client is busy accumulate, so a
  // stalled server faces the catch-up burst a real open-loop arrival
  // process would deliver.
  double ReleaseIntervalMs = Opt.Rps > 0 ? 1000.0 / Opt.Rps : 0;
  double NextReleaseMs = 0;

  auto wantMore = [&](const Conn &C) {
    if (Opt.DurationSecs > 0)
      // Timed mode: at least one request per client, then the deadline.
      return C.Sent == 0 || std::chrono::steady_clock::now() < Deadline;
    return C.Sent < Opt.Requests;
  };

  auto startRequest = [&](Conn &C) {
    C.Busy = true;
    C.Traced = Opt.TraceSample > 0 && C.Sent % Opt.TraceSample == 0;
    if (Opt.EditHeavy) {
      // Request 0 submits the base itself (registering it server-side);
      // after that, odd edits resubmit with the base key (delta arm) and
      // even edits resubmit without it (scratch arm).  The two arms use
      // disjoint edits, so comparing them never compares a solve against
      // a cache hit of the same edit.
      unsigned Edit = unsigned(C.Sent);
      if (Edit == 0) {
        C.Arm = 0;
        C.Out =
            submitFrame(makeEditHeavyIr(C.Index, editFreq(C.Index, 0)), "");
      } else {
        C.Arm = Edit % 2 == 1 ? 1 : 2;
        C.Out =
            submitFrame(makeEditHeavyIr(C.Index, editFreq(C.Index, Edit)),
                        C.Arm == 1 ? C.BaseKey : "");
      }
    } else if (C.Traced) {
      // A unique id per sampled request proves the echo is really
      // per-request, not a cached or crossed response.
      ServiceRequest TReq = Req;
      TReq.Trace = true;
      C.TraceId =
          "lg" + std::to_string(C.Index) + "-" + std::to_string(C.Sent);
      TReq.TraceId = C.TraceId;
      C.Out = encodeFrame(Client::makeAllocateRequest(TReq));
    } else {
      C.Out = PlainFrame;
    }
    C.OutPos = 0;
    C.In.clear();
    ++C.Sent;
    C.SendTime = std::chrono::steady_clock::now();
  };

  // Handles one complete response payload; returns false when the run
  // should treat it as a failed request.
  auto finishRequest = [&](Conn &C, const std::string &Response) {
    double Ms = msBetween(C.SendTime, std::chrono::steady_clock::now());
    C.Busy = false;
    ++C.Completed;
    if (Client::isErrorResponse(Response)) {
      std::fprintf(stderr, "client %u request %llu: server error: %s\n",
                   C.Index, static_cast<unsigned long long>(C.Sent - 1),
                   Response.c_str());
      ++Failed;
      return;
    }
    if (C.Traced) {
      // The echoed trace id must be the one this request carried;
      // anything else means the span data belongs to someone else.
      JsonParseResult Parsed = parseJson(Response);
      const JsonValue *Trace =
          Parsed.Ok ? Parsed.Value.find("trace") : nullptr;
      const JsonValue *Id = Trace ? Trace->find("id") : nullptr;
      if (!Id || !Id->isString() || Id->stringValue() != C.TraceId) {
        std::fprintf(stderr,
                     "client %u request %llu: trace id '%s' not echoed\n",
                     C.Index, static_cast<unsigned long long>(C.Sent - 1),
                     C.TraceId.c_str());
        ++Failed;
        return;
      }
      ++Completed;
      Latency.record(Ms);
      ++TracedCount;
      TracedClientMs += Ms;
      if (const JsonValue *Spans = Trace->find("spans"))
        for (const JsonValue &Span : Spans->elements())
          if (const JsonValue *Name = Span.find("name"))
            if (const JsonValue *Dur = Span.find("dur_ms")) {
              auto &Agg = SpanAgg[Name->stringValue()];
              Agg.first += Dur->numberValue();
              ++Agg.second;
            }
      // Traced responses carry the trace object, so they are by design
      // not byte-identical to the reference response.
      return;
    }
    ++Completed;
    Latency.record(Ms);
    if (Opt.EditHeavy) {
      // Each response answers a different edit, so byte-identity across
      // requests is meaningless here; the arms' histograms are the
      // deliverable instead.
      if (C.Arm == 1)
        DeltaLat.record(Ms);
      else if (C.Arm == 2)
        ScratchLat.record(Ms);
      return;
    }
    // Deterministic protocol: when timing is off, every response to the
    // identical request must be byte-identical across clients.
    if (!Opt.Timing) {
      if (ReferenceResponse.empty())
        ReferenceResponse = Response;
      else if (Response != ReferenceResponse)
        ++Mismatched;
    }
  };

  auto killConn = [&](Conn &C, const char *Why) {
    if (C.Busy) {
      std::fprintf(stderr, "client %u request %llu: %s\n", C.Index,
                   static_cast<unsigned long long>(C.Sent - 1), Why);
      ++Failed;
    } else if (wantMore(C)) {
      std::fprintf(stderr, "client %u: %s\n", C.Index, Why);
      ++Failed;
    }
    C.Dead = true;
    C.Fd.reset();
  };

  std::vector<pollfd> Fds;
  std::vector<Conn *> FdConns;
  while (true) {
    // Release phase: start requests on idle clients that still have
    // quota, respecting the open-loop schedule when --rps is set.
    double NowMs = msBetween(Begin, std::chrono::steady_clock::now());
    for (Conn &C : Conns) {
      if (C.Dead || C.Busy || !wantMore(C))
        continue;
      if (ReleaseIntervalMs > 0) {
        if (NowMs < NextReleaseMs)
          break; // Next slot not due; and slots are global, so stop here.
        NextReleaseMs += ReleaseIntervalMs;
      }
      startRequest(C);
    }

    Fds.clear();
    FdConns.clear();
    bool AnyBusy = false, AnyPending = false;
    for (Conn &C : Conns) {
      if (C.Dead)
        continue;
      if (!C.Busy) {
        if (wantMore(C))
          AnyPending = true;
        continue;
      }
      AnyBusy = true;
      short Ev = 0;
      if (C.OutPos < C.Out.size())
        Ev |= POLLOUT;
      else
        Ev |= POLLIN;
      Fds.push_back({C.Fd.fd(), Ev, 0});
      FdConns.push_back(&C);
    }
    if (!AnyBusy && !AnyPending)
      break; // Every client exhausted its quota (or died).
    if (Fds.empty()) {
      // Idle clients gated on the release schedule: sleep to the slot --
      // but never when it is already due.  Sleeping a minimum 1 ms here
      // capped the whole generator at ~1000 req/s regardless of --rps;
      // an overdue schedule must release immediately (truncation keeps
      // sub-millisecond waits spinning through poll(0), which is what
      // >1 kHz pacing needs).
      double SleepMs = NextReleaseMs - NowMs;
      if (SleepMs > 0)
        ::poll(nullptr, 0, SleepMs > 100 ? 100 : int(SleepMs));
      continue;
    }
    int Timeout = 100;
    if (ReleaseIntervalMs > 0 && AnyPending) {
      // Same rule under I/O: an overdue release slot means poll must not
      // block at all (the old 1 ms floor was the ~1000 req/s ceiling).
      double SleepMs = NextReleaseMs - NowMs;
      Timeout = SleepMs <= 0 ? 0 : (SleepMs > 100 ? 100 : int(SleepMs));
    } else if (AnyPending) {
      Timeout = 0; // Closed loop with idle clients: release next pass.
    }
    if (::poll(Fds.data(), nfds_t(Fds.size()), Timeout) < 0) {
      if (errno == EINTR)
        continue;
      std::perror("poll");
      return 1;
    }
    for (size_t I = 0; I < Fds.size(); ++I) {
      Conn &C = *FdConns[I];
      if (C.Dead || !Fds[I].revents)
        continue;
      if (Fds[I].revents & (POLLERR | POLLNVAL)) {
        killConn(C, "connection error");
        continue;
      }
      if (Fds[I].revents & POLLOUT) {
        while (C.OutPos < C.Out.size()) {
          ssize_t N = ::send(C.Fd.fd(), C.Out.data() + C.OutPos,
                             C.Out.size() - C.OutPos, MSG_NOSIGNAL);
          if (N > 0) {
            C.OutPos += size_t(N);
            continue;
          }
          if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
          if (N < 0 && errno == EINTR)
            continue;
          killConn(C, "send failed");
          break;
        }
        continue;
      }
      if (Fds[I].revents & (POLLIN | POLLHUP)) {
        char Buf[64 << 10];
        bool Closed = false;
        while (true) {
          ssize_t N = ::recv(C.Fd.fd(), Buf, sizeof Buf, 0);
          if (N > 0) {
            C.In.append(Buf, size_t(N));
            if (size_t(N) < sizeof Buf)
              break;
            continue;
          }
          if (N == 0) {
            Closed = true;
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
          if (errno == EINTR)
            continue;
          Closed = true;
          break;
        }
        if (C.In.size() >= kFrameHeaderBytes) {
          size_t PayloadBytes = 0;
          FrameStatus FS = decodeFrameHeader(
              reinterpret_cast<const unsigned char *>(C.In.data()),
              kDefaultMaxFrameBytes, PayloadBytes);
          if (FS != FrameStatus::Ok) {
            killConn(C, "bad response frame");
            continue;
          }
          if (C.In.size() >= kFrameHeaderBytes + PayloadBytes) {
            // Serial per connection: exactly one response outstanding,
            // so one complete frame finishes the in-flight request.
            std::string Response =
                C.In.substr(kFrameHeaderBytes, PayloadBytes);
            C.In.erase(0, kFrameHeaderBytes + PayloadBytes);
            finishRequest(C, Response);
          }
        }
        if (Closed && C.Busy)
          killConn(C, "connection closed mid-response");
        else if (Closed)
          C.Dead = true;
      }
    }
  }
  double TotalMs = msBetween(Begin, std::chrono::steady_clock::now());

  HistogramSnapshot Snap = Latency.snapshot();
  if (!Opt.Quiet) {
    if (Opt.DurationSecs > 0)
      std::printf("layra-loadgen: %llu requests completed over %u "
                  "clients in %.1f ms (%.1f req/s)\n",
                  static_cast<unsigned long long>(Completed), Opt.Clients,
                  TotalMs, Completed > 0 ? 1000.0 * Completed / TotalMs : 0.0);
    else
      std::printf("layra-loadgen: %llu/%llu requests completed over %u "
                  "clients in %.1f ms (%.1f req/s)\n",
                  static_cast<unsigned long long>(Completed),
                  static_cast<unsigned long long>(
                      static_cast<uint64_t>(Opt.Clients) * Opt.Requests),
                  Opt.Clients, TotalMs,
                  Completed > 0 ? 1000.0 * Completed / TotalMs : 0.0);
    if (Snap.Count > 0)
      std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f\n",
                  Snap.percentile(0.50), Snap.percentile(0.95),
                  Snap.percentile(0.99), Snap.meanMs());
    if (Opt.Rps > 0)
      std::printf("rate: requested %.1f req/s, achieved %.1f req/s\n",
                  Opt.Rps,
                  Completed > 0 ? 1000.0 * Completed / TotalMs : 0.0);
    if (Opt.EditHeavy) {
      HistogramSnapshot D = DeltaLat.snapshot();
      HistogramSnapshot Sc = ScratchLat.snapshot();
      std::printf("edit-heavy: delta   p50 %.3f ms  p95 %.3f ms "
                  "(%llu resubmits)\n",
                  D.percentile(0.50), D.percentile(0.95),
                  static_cast<unsigned long long>(D.Count));
      std::printf("            scratch p50 %.3f ms  p95 %.3f ms "
                  "(%llu resubmits)\n",
                  Sc.percentile(0.50), Sc.percentile(0.95),
                  static_cast<unsigned long long>(Sc.Count));
      if (D.Count > 0 && Sc.Count > 0 && D.percentile(0.50) > 0)
        std::printf("            delta speedup at p50: %.2fx\n",
                    Sc.percentile(0.50) / D.percentile(0.50));
    }
    if (Mismatched > 0)
      std::printf("DETERMINISM VIOLATION: %llu responses differed\n",
                  static_cast<unsigned long long>(Mismatched));
    if (Opt.TraceSample > 0 && TracedCount > 0) {
      // Server-side spans in request order, then the part of the client
      // latency the server never sees (response flush + network + client
      // parse) as the residual, so the rows sum to the client mean.
      std::printf("trace breakdown (%llu sampled requests, mean ms):\n",
                  static_cast<unsigned long long>(TracedCount));
      const char *Order[] = {"accept", "queue_wait", "dispatch", "driver"};
      double Accounted = 0;
      for (const char *Name : Order) {
        auto It = SpanAgg.find(Name);
        double Mean =
            It != SpanAgg.end() && It->second.second > 0
                ? It->second.first / static_cast<double>(It->second.second)
                : 0.0;
        Accounted += Mean;
        std::printf("  %-12s %9.3f\n", Name, Mean);
      }
      double ClientMean = TracedClientMs / static_cast<double>(TracedCount);
      double Residual = ClientMean - Accounted;
      std::printf("  %-12s %9.3f\n", "flush+net",
                  Residual > 0 ? Residual : 0.0);
      std::printf("  %-12s %9.3f\n", "client total", ClientMean);
    }
  }

  if (!Opt.JsonPath.empty()) {
    // The deterministic fields (clients, requests, completed, failed,
    // mismatched) are what scripts/perf_gate.py locks down; the latency
    // block is informational.
    JsonValue Doc = JsonValue::object();
    Doc.set("schema", "layra-loadgen-bench/v1");
    Doc.set("clients", static_cast<uint64_t>(Opt.Clients));
    if (Opt.DurationSecs <= 0)
      Doc.set("requests_per_client", static_cast<uint64_t>(Opt.Requests));
    Doc.set("completed", Completed);
    Doc.set("failed", Failed);
    Doc.set("mismatched", Mismatched);
    JsonValue Lat = JsonValue::object();
    Lat.set("p50_ms", Snap.percentile(0.50));
    Lat.set("p95_ms", Snap.percentile(0.95));
    Lat.set("p99_ms", Snap.percentile(0.99));
    Lat.set("mean_ms", Snap.Count > 0 ? Snap.meanMs() : 0.0);
    Lat.set("samples", Snap.Count);
    Doc.set("latency", std::move(Lat));
    Doc.set("wall_ms", TotalMs);
    Doc.set("req_per_s", Completed > 0 ? 1000.0 * Completed / TotalMs : 0.0);
    if (Opt.Rps > 0) {
      // Open-loop honesty: what rate was asked for vs what was actually
      // released+completed, so a generator that cannot keep up is
      // visible in the artifact rather than silently under-driving.
      JsonValue Rate = JsonValue::object();
      Rate.set("requested_rps", Opt.Rps);
      Rate.set("achieved_rps",
               Completed > 0 ? 1000.0 * Completed / TotalMs : 0.0);
      Doc.set("rate", std::move(Rate));
    }
    if (Opt.EditHeavy) {
      HistogramSnapshot D = DeltaLat.snapshot();
      HistogramSnapshot Sc = ScratchLat.snapshot();
      JsonValue EH = JsonValue::object();
      JsonValue DJ = JsonValue::object();
      DJ.set("p50_ms", D.percentile(0.50));
      DJ.set("p95_ms", D.percentile(0.95));
      DJ.set("samples", D.Count);
      EH.set("delta", std::move(DJ));
      JsonValue SJ = JsonValue::object();
      SJ.set("p50_ms", Sc.percentile(0.50));
      SJ.set("p95_ms", Sc.percentile(0.95));
      SJ.set("samples", Sc.Count);
      EH.set("scratch", std::move(SJ));
      Doc.set("edit_heavy", std::move(EH));
    }
    std::string Text = Doc.dump(2) + "\n";
    if (Opt.JsonPath == "-") {
      std::fputs(Text.c_str(), stdout);
    } else {
      std::FILE *Out = std::fopen(Opt.JsonPath.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     Opt.JsonPath.c_str());
        return 1;
      }
      std::fwrite(Text.data(), 1, Text.size(), Out);
      std::fclose(Out);
    }
  }

  if (Opt.FetchStats) {
    std::string Error, Stats;
    Client Conn = connect(Opt, &Error);
    if (Conn.valid() && Conn.stats(Stats, &Error)) {
      std::fputs(Stats.c_str(), stdout);
      // Per-shard hit-rate summary out of the v3 `shards` array: the
      // one-line view of whether content-hash routing kept each shard's
      // cache warm.
      JsonParseResult Parsed = parseJson(Stats);
      const JsonValue *Shards =
          Parsed.Ok ? Parsed.Value.find("shards") : nullptr;
      if (!Opt.Quiet && Shards && Shards->isArray()) {
        for (const JsonValue &Sh : Shards->elements()) {
          const JsonValue *Id = Sh.find("shard");
          const JsonValue *Requests = Sh.find("requests");
          const JsonValue *Cache = Sh.find("cache");
          const JsonValue *HitRate = Cache ? Cache->find("hit_rate") : nullptr;
          if (Id && Requests && HitRate)
            std::fprintf(stderr,
                         "shard %lld: %lld requests, cache hit rate %.2f\n",
                         static_cast<long long>(Id->intValue()),
                         static_cast<long long>(Requests->intValue()),
                         HitRate->numberValue());
        }
      }
    } else {
      std::fprintf(stderr, "stats fetch failed: %s\n", Error.c_str());
    }
  }

  bool Ok = Completed > 0 && Failed == 0 && Mismatched == 0;
  return Ok ? 0 : 1;
}
