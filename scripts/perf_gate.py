#!/usr/bin/env python3
"""Performance-regression gate over the committed BENCH_driver.json.

Reruns the canonical EEMBC register sweep (the baseline tracked at the
repo root) and fails when the build got meaningfully slower or when the
deterministic report fields drifted:

 1. Determinism: `--no-timing` reports must be byte-identical across
    thread counts (modulo the `"threads": N` configuration field), and
    their deterministic fields must match the committed baseline -- a
    drift means allocation *results* changed and the baseline must be
    regenerated deliberately, never silently.
 2. Timing: best-of-N single-thread wall_ms must stay within
    --threshold (default 15%) of the committed baseline's.  Best-of-N
    because CI wall clocks are noisy in one direction only: the fastest
    observed run is the least-contended one.

The fresh timed report is written to --out for artifact upload, in the
exact format of BENCH_driver.json: to accept an intended slowdown or
record a speedup, copy it over the baseline.

Usage:
  scripts/perf_gate.py --bench build/layra-bench \
      --baseline BENCH_driver.json --out fresh.json [--threshold 0.15]
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile

SWEEP = ["--suite=eembc", "--regs=4..16", "--quiet"]


def run_bench(bench, extra, out_path):
    cmd = [bench] + SWEEP + extra + [f"--json={out_path}"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)


def normalize_threads(text):
    return re.sub(r'"threads": \d+', '"threads": N', text)


def scrub_timing(doc):
    """Drops every wall-clock-derived field, recursively."""
    if isinstance(doc, dict):
        return {
            k: scrub_timing(v)
            for k, v in doc.items()
            if k not in ("wall_ms", "phase_ms", "threads")
        }
    if isinstance(doc, list):
        return [scrub_timing(v) for v in doc]
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True, help="layra-bench binary")
    ap.add_argument("--baseline", required=True, help="committed BENCH_driver.json")
    ap.add_argument("--out", required=True, help="where to write the fresh timed report")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional slowdown (default 0.15)")
    ap.add_argument("--runs", type=int, default=3, help="timed runs (best-of)")
    args = ap.parse_args()

    baseline = json.load(open(args.baseline))

    # --- Determinism across thread counts -------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        t1, t4 = f"{tmp}/t1.json", f"{tmp}/t4.json"
        run_bench(args.bench, ["--threads=1", "--no-timing"], t1)
        run_bench(args.bench, ["--threads=4", "--no-timing"], t4)
        raw = open(t1).read()
        a = normalize_threads(raw)
        b = normalize_threads(open(t4).read())
        if a != b:
            print("FAIL: --no-timing reports differ between thread counts",
                  file=sys.stderr)
            return 1
        print("ok: --no-timing report is thread-count independent")

        # --- Deterministic fields vs the committed baseline --------------
        fresh_det = scrub_timing(json.loads(raw))
        base_det = scrub_timing(baseline)
        if fresh_det != base_det:
            print("FAIL: deterministic report fields drifted from the "
                  f"committed baseline {args.baseline}; if the change is "
                  "intended, regenerate the baseline in the same commit",
                  file=sys.stderr)
            return 1
        print("ok: deterministic fields match the committed baseline")

    # --- Timed best-of-N vs baseline ------------------------------------
    base_ms = baseline["wall_ms"]
    best_ms, best_doc = None, None
    for i in range(args.runs):
        with tempfile.TemporaryDirectory() as tmp:
            timed = f"{tmp}/timed.json"
            run_bench(args.bench, ["--threads=1"], timed)
            doc = json.load(open(timed))
        print(f"timed run {i + 1}/{args.runs}: {doc['wall_ms']:.1f} ms")
        if best_ms is None or doc["wall_ms"] < best_ms:
            best_ms, best_doc = doc["wall_ms"], doc

    with open(args.out, "w") as f:
        json.dump(best_doc, f, indent=2)
        f.write("\n")
    limit = base_ms * (1.0 + args.threshold)
    verdict = "ok" if best_ms <= limit else "FAIL"
    print(f"{verdict}: best-of-{args.runs} {best_ms:.1f} ms vs baseline "
          f"{base_ms:.1f} ms (limit {limit:.1f} ms, "
          f"threshold {args.threshold:.0%})",
          file=sys.stderr if verdict == "FAIL" else sys.stdout)
    return 0 if verdict == "ok" else 1


if __name__ == "__main__":
    sys.exit(main())
