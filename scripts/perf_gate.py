#!/usr/bin/env python3
"""Performance-regression gate over the committed BENCH_driver.json.

Reruns the canonical EEMBC register sweep (the baseline tracked at the
repo root) and fails when the build got meaningfully slower or when the
deterministic report fields drifted:

 1. Determinism: `--no-timing` reports must be byte-identical across
    thread counts (modulo the `"threads": N` configuration field), and
    their deterministic fields must match the committed baseline -- a
    drift means allocation *results* changed and the baseline must be
    regenerated deliberately, never silently.
 2. Timing: best-of-N single-thread wall_ms must stay within
    --threshold (default 15%) of the committed baseline's.  Best-of-N
    because CI wall clocks are noisy in one direction only: the fastest
    observed run is the least-contended one.

The fresh timed report is written to --out for artifact upload, in the
exact format of BENCH_driver.json: to accept an intended slowdown or
record a speedup, copy it over the baseline.

The serving stack has its own committed baseline, BENCH_serve.json (a
layra-loadgen --json report).  With --serve-baseline/--serve-report the
gate checks the deterministic fields of a fresh loadgen run -- schema,
clients, requests_per_client, completed, failed, mismatched -- against
that baseline: every request must complete, none may fail or diverge
byte-wise, and the workload shape must match what the baseline recorded.
Latency numbers are reported but never gated (CI wall clocks are far too
noisy for tail percentiles); to change the canonical serve workload,
regenerate BENCH_serve.json in the same commit.

Usage:
  scripts/perf_gate.py --bench build/layra-bench \
      --baseline BENCH_driver.json --out fresh.json [--threshold 0.15]
  scripts/perf_gate.py --serve-baseline BENCH_serve.json \
      --serve-report fresh_serve.json
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile

SWEEP = ["--suite=eembc", "--regs=4..16", "--quiet"]


def run_bench(bench, extra, out_path):
    cmd = [bench] + SWEEP + extra + [f"--json={out_path}"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)


def normalize_threads(text):
    return re.sub(r'"threads": \d+', '"threads": N', text)


def scrub_timing(doc):
    """Drops every wall-clock-derived field, recursively."""
    if isinstance(doc, dict):
        return {
            k: scrub_timing(v)
            for k, v in doc.items()
            if k not in ("wall_ms", "phase_ms", "threads")
        }
    if isinstance(doc, list):
        return [scrub_timing(v) for v in doc]
    return doc


SERVE_SCHEMA = "layra-loadgen-bench/v1"
SERVE_DETERMINISTIC = ("schema", "clients", "requests_per_client",
                       "completed", "failed", "mismatched")


def serve_gate(baseline_path, report_path):
    """Returns 0 when the fresh serve report's deterministic fields are
    sound and match the committed baseline."""
    base = json.load(open(baseline_path))
    fresh = json.load(open(report_path))
    failures = []
    if fresh.get("schema") != SERVE_SCHEMA:
        failures.append(f"unexpected schema {fresh.get('schema')!r}")
    for key in SERVE_DETERMINISTIC:
        if base.get(key) != fresh.get(key):
            failures.append(f"field {key!r} drifted: baseline "
                            f"{base.get(key)!r} vs fresh {fresh.get(key)!r}")
    expected = fresh.get("clients", 0) * fresh.get("requests_per_client", 0)
    if fresh.get("completed") != expected:
        failures.append(f"completed {fresh.get('completed')!r} != "
                        f"clients * requests_per_client ({expected})")
    if fresh.get("failed"):
        failures.append(f"{fresh['failed']} request(s) failed")
    if fresh.get("mismatched"):
        failures.append(f"{fresh['mismatched']} response(s) diverged "
                        "byte-wise from the reference")
    lat = fresh.get("latency", {})
    p50, p95, p99 = (lat.get("p50_ms"), lat.get("p95_ms"), lat.get("p99_ms"))
    if not (isinstance(p50, (int, float)) and isinstance(p95, (int, float))
            and isinstance(p99, (int, float)) and 0 <= p50 <= p95 <= p99):
        failures.append(f"latency percentiles unordered: p50={p50} "
                        f"p95={p95} p99={p99}")
    if failures:
        for msg in failures:
            print(f"FAIL: serve: {msg}", file=sys.stderr)
        print(f"FAIL: serve report {report_path} does not pass the gate "
              f"against {baseline_path}; if the workload change is "
              "intended, regenerate the baseline in the same commit",
              file=sys.stderr)
        return 1
    print(f"ok: serve deterministic fields match ({fresh['completed']} "
          f"completed, 0 failed, 0 mismatched)")
    print(f"info: serve latency p50={p50:.2f} ms p95={p95:.2f} ms "
          f"p99={p99:.2f} ms, {fresh.get('req_per_s', 0):.0f} req/s "
          "(not gated)")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", help="layra-bench binary")
    ap.add_argument("--baseline", help="committed BENCH_driver.json")
    ap.add_argument("--out", help="where to write the fresh timed report")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional slowdown (default 0.15)")
    ap.add_argument("--runs", type=int, default=3, help="timed runs (best-of)")
    ap.add_argument("--serve-baseline", help="committed BENCH_serve.json")
    ap.add_argument("--serve-report",
                    help="fresh layra-loadgen --json report to gate")
    args = ap.parse_args()

    if bool(args.serve_baseline) != bool(args.serve_report):
        ap.error("--serve-baseline and --serve-report go together")
    if args.serve_baseline:
        rc = serve_gate(args.serve_baseline, args.serve_report)
        if rc or not args.bench:
            return rc
    elif not args.bench:
        ap.error("nothing to do: pass --bench/--baseline/--out and/or "
                 "--serve-baseline/--serve-report")
    if not (args.baseline and args.out):
        ap.error("--bench requires --baseline and --out")

    baseline = json.load(open(args.baseline))

    # --- Determinism across thread counts -------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        t1, t4 = f"{tmp}/t1.json", f"{tmp}/t4.json"
        run_bench(args.bench, ["--threads=1", "--no-timing"], t1)
        run_bench(args.bench, ["--threads=4", "--no-timing"], t4)
        raw = open(t1).read()
        a = normalize_threads(raw)
        b = normalize_threads(open(t4).read())
        if a != b:
            print("FAIL: --no-timing reports differ between thread counts",
                  file=sys.stderr)
            return 1
        print("ok: --no-timing report is thread-count independent")

        # --- Deterministic fields vs the committed baseline --------------
        fresh_det = scrub_timing(json.loads(raw))
        base_det = scrub_timing(baseline)
        if fresh_det != base_det:
            print("FAIL: deterministic report fields drifted from the "
                  f"committed baseline {args.baseline}; if the change is "
                  "intended, regenerate the baseline in the same commit",
                  file=sys.stderr)
            return 1
        print("ok: deterministic fields match the committed baseline")

    # --- Timed best-of-N vs baseline ------------------------------------
    base_ms = baseline["wall_ms"]
    best_ms, best_doc = None, None
    for i in range(args.runs):
        with tempfile.TemporaryDirectory() as tmp:
            timed = f"{tmp}/timed.json"
            run_bench(args.bench, ["--threads=1"], timed)
            doc = json.load(open(timed))
        print(f"timed run {i + 1}/{args.runs}: {doc['wall_ms']:.1f} ms")
        if best_ms is None or doc["wall_ms"] < best_ms:
            best_ms, best_doc = doc["wall_ms"], doc

    with open(args.out, "w") as f:
        json.dump(best_doc, f, indent=2)
        f.write("\n")
    limit = base_ms * (1.0 + args.threshold)
    verdict = "ok" if best_ms <= limit else "FAIL"
    print(f"{verdict}: best-of-{args.runs} {best_ms:.1f} ms vs baseline "
          f"{base_ms:.1f} ms (limit {limit:.1f} ms, "
          f"threshold {args.threshold:.0%})",
          file=sys.stderr if verdict == "FAIL" else sys.stdout)
    return 0 if verdict == "ok" else 1


if __name__ == "__main__":
    sys.exit(main())
