//===- bench/fig12_dist_eembc.cpp - Paper Figure 12 --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 12: distribution over individual EEMBC programs of the
/// allocation cost normalized to the per-program optimum, on ST231.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace layra;
using namespace layra::bench;

int main(int Argc, char **Argv) {
  FigureSpec Spec;
  Spec.Id = "Figure 12";
  Spec.Title = "Distribution of normalized allocation costs over individual "
               "programs of EEMBC on ST231";
  Spec.SuiteName = "eembc";
  Spec.Target = ST231;
  Spec.RegisterCounts = {1, 2, 4, 8, 16, 32};
  Spec.Allocators = {"gc", "nl", "bl", "fpl", "bfpl"};
  Spec.ChordalPipeline = true;
  Spec.Threads = parseThreadsFlag(Argc, Argv);
  printDistributionFigure(measureFigure(Spec));
  return 0;
}
