//===- bench/fig13_dist_laokernels.cpp - Paper Figure 13 --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 13: distribution over individual lao-kernels programs of the
/// allocation cost normalized to the per-program optimum, on ARMv7.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace layra;
using namespace layra::bench;

int main(int Argc, char **Argv) {
  FigureSpec Spec;
  Spec.Id = "Figure 13";
  Spec.Title = "Distribution of normalized allocation costs over individual "
               "programs of lao-kernels on ARMv7";
  Spec.SuiteName = "lao-kernels";
  Spec.Target = ARMv7;
  Spec.RegisterCounts = {1, 2, 4, 8, 16, 32};
  Spec.Allocators = {"gc", "nl", "bl", "fpl", "bfpl"};
  Spec.ChordalPipeline = true;
  Spec.Threads = parseThreadsFlag(Argc, Argv);
  printDistributionFigure(measureFigure(Spec));
  return 0;
}
