//===- bench/perf_allocators.cpp - Allocator runtime scaling --------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "polynomial" in the paper's title, measured: wall-clock scaling of
/// the layered allocators (claimed O(R(|V|+|E|))), the baselines, and the
/// exact solver over graph size and register count.
///
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"
#include "alloc/OptimalBnB.h"
#include "core/Layered.h"
#include "core/LayeredHeuristic.h"
#include "core/SolverWorkspace.h"
#include "graph/Generators.h"

#include <benchmark/benchmark.h>

using namespace layra;

namespace {
/// Deterministic problem cache so setup cost stays out of the timing.
AllocationProblem makeProblem(unsigned NumVertices, unsigned Regs) {
  Rng R(0xb0b5eed + NumVertices);
  ChordalGenOptions Opt;
  Opt.NumVertices = NumVertices;
  Opt.TreeSize = NumVertices;
  Opt.SubtreeSpread = 0.15;
  Graph G = randomChordalGraph(R, Opt);
  return AllocationProblem::fromChordalGraph(std::move(G), Regs);
}
} // namespace

static void BM_LayeredBfpl(benchmark::State &State) {
  AllocationProblem P = makeProblem(
      static_cast<unsigned>(State.range(0)),
      static_cast<unsigned>(State.range(1)));
  for (auto _ : State) {
    AllocationResult R = layeredAllocate(P, LayeredOptions::bfpl());
    benchmark::DoNotOptimize(R.SpillCost);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_LayeredBfpl)
    ->ArgsProduct({{64, 128, 256, 512, 1024}, {4, 8, 16}})
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

// Same allocator with a long-lived SolverWorkspace: the delta against
// BM_LayeredBfpl is the per-layer allocation churn the arena removes
// (every iteration reuses the previous iteration's buffers, the
// steady-state of a BatchDriver worker).
static void BM_LayeredBfplWorkspace(benchmark::State &State) {
  AllocationProblem P = makeProblem(
      static_cast<unsigned>(State.range(0)),
      static_cast<unsigned>(State.range(1)));
  SolverWorkspace WS;
  for (auto _ : State) {
    AllocationResult R = layeredAllocate(P, LayeredOptions::bfpl(), &WS);
    benchmark::DoNotOptimize(R.SpillCost);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_LayeredBfplWorkspace)
    ->ArgsProduct({{64, 128, 256, 512, 1024}, {4, 8, 16}})
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

static void BM_LayeredNl(benchmark::State &State) {
  AllocationProblem P = makeProblem(
      static_cast<unsigned>(State.range(0)),
      static_cast<unsigned>(State.range(1)));
  for (auto _ : State) {
    AllocationResult R = layeredAllocate(P, LayeredOptions::nl());
    benchmark::DoNotOptimize(R.SpillCost);
  }
}
BENCHMARK(BM_LayeredNl)
    ->ArgsProduct({{128, 512}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);

static void BM_LayeredHeuristic(benchmark::State &State) {
  AllocationProblem P = makeProblem(
      static_cast<unsigned>(State.range(0)),
      static_cast<unsigned>(State.range(1)));
  for (auto _ : State) {
    LayeredHeuristicResult R = layeredHeuristicAllocate(P);
    benchmark::DoNotOptimize(R.Allocation.SpillCost);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_LayeredHeuristic)
    ->ArgsProduct({{64, 128, 256, 512, 1024}, {8}})
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

static void BM_GraphColoring(benchmark::State &State) {
  AllocationProblem P = makeProblem(
      static_cast<unsigned>(State.range(0)),
      static_cast<unsigned>(State.range(1)));
  auto GC = makeAllocator("gc");
  for (auto _ : State) {
    AllocationResult R = GC->allocate(P);
    benchmark::DoNotOptimize(R.SpillCost);
  }
}
BENCHMARK(BM_GraphColoring)
    ->ArgsProduct({{64, 256, 1024}, {8}})
    ->Unit(benchmark::kMicrosecond);

static void BM_OptimalBnB(benchmark::State &State) {
  // Sparser instances (suite-like MaxLive) so the exact solve is the DP/
  // small-search regime the harness actually exercises; the node budget
  // bounds the worst case.
  Rng R(0x0b7a1 + static_cast<unsigned>(State.range(0)));
  ChordalGenOptions Opt;
  Opt.NumVertices = static_cast<unsigned>(State.range(0));
  Opt.TreeSize = Opt.NumVertices * 2;
  Opt.SubtreeSpread = 0.06;
  AllocationProblem P = AllocationProblem::fromChordalGraph(
      randomChordalGraph(R, Opt), static_cast<unsigned>(State.range(1)));
  OptimalBnBAllocator Optimal(/*NodeLimit=*/2'000'000);
  for (auto _ : State) {
    AllocationResult Result = Optimal.allocate(P);
    benchmark::DoNotOptimize(Result.SpillCost);
  }
}
BENCHMARK(BM_OptimalBnB)
    ->ArgsProduct({{64, 128, 256}, {8}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
