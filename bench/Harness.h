//===- bench/Harness.h - Paper-figure benchmark harness ---------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for the per-figure benchmark binaries.  Each figure of the
/// paper's evaluation (§6) is one executable that configures a FigureSpec
/// and calls the matching run*() entry point; the output is the same series
/// the paper plots, normalized to the exact Optimal baseline.
///
/// Normalization (DESIGN.md §3): aggregate figures report
/// sum(cost_A)/sum(cost_Optimal) per register count with Optimal == 1.000;
/// distribution figures report the five-number summary of per-program
/// ratios cost_A(p)/cost_Opt(p).
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_BENCH_HARNESS_H
#define LAYRA_BENCH_HARNESS_H

#include "ir/Target.h"
#include "suites/Suites.h"

#include <string>
#include <vector>

namespace layra {
namespace bench {

/// Configuration of one figure reproduction.
struct FigureSpec {
  /// Figure identifier, e.g. "Figure 8".
  std::string Id;
  /// Human-readable description printed as the header.
  std::string Title;
  /// Suite to evaluate ("spec2000int", "eembc", "lao-kernels", "specjvm98").
  std::string SuiteName;
  /// Target cost model.
  TargetDesc Target = ST231;
  /// Register counts to sweep.
  std::vector<unsigned> RegisterCounts;
  /// Allocators to compare (names from makeAllocator, "optimal" implied).
  std::vector<std::string> Allocators;
  /// true: SSA/chordal methodology (§6.1); false: non-SSA/general (§6.2).
  bool ChordalPipeline = true;
  /// Branch-and-bound node budget per instance for the Optimal baseline.
  uint64_t OptimalNodeLimit = 20'000'000;
  /// Batch-driver thread count; 0 = hardware concurrency.  The figure data
  /// is deterministic, so any thread count reproduces the same tables.
  unsigned Threads = 0;
};

/// Per-program spill costs of one allocator at one register count.
struct ProgramCosts {
  std::vector<std::string> Programs;       // Program names (stable order).
  std::vector<Weight> Cost;                // Summed over the program's functions.
};

/// All measurements for one figure: costs[allocator][register-index].
struct FigureData {
  FigureSpec Spec;
  std::vector<std::string> AllocatorNames; // Spec.Allocators + "optimal".
  // Indexed [allocator][register index] -> per-program costs.
  std::vector<std::vector<ProgramCosts>> Costs;
  /// Optimality proof coverage of the "optimal" baseline.
  unsigned OptimalProven = 0, OptimalTotal = 0;
};

/// Runs every allocator of \p Spec (plus "optimal") over the suite, batched
/// through the parallel driver (driver/BatchDriver.h).
FigureData measureFigure(const FigureSpec &Spec);

/// Parses an optional `--threads=N` argument for the per-figure binaries;
/// returns 0 (hardware concurrency) when absent.
unsigned parseThreadsFlag(int Argc, char **Argv);

/// Prints the aggregate-ratio table (paper Figures 8, 9, 10, 14):
/// one row per allocator, one column per register count, entries
/// sum(cost)/sum(optimal cost).
void printAggregateFigure(const FigureData &Data);

/// Prints the per-program-ratio distribution table (paper Figures 11-13):
/// rows are (allocator, register count), columns the box-plot quantiles.
void printDistributionFigure(const FigureData &Data);

/// Prints the per-benchmark table at a single register count (Figure 15).
void printPerProgramFigure(const FigureData &Data, unsigned RegisterCount);

} // namespace bench
} // namespace layra

#endif // LAYRA_BENCH_HARNESS_H
