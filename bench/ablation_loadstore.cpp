//===- bench/ablation_loadstore.cpp - §2.1 spill-everywhere vs load-store -===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §2.1 argues spill everywhere is a practical proxy for the NP-complete
/// load-store optimization because "most SSA variables have only one or two
/// uses in practice".  This ablation materialises BFPL's spill-everywhere
/// decision as spill code and then runs the block-local load-store
/// optimizer, reporting how many reloads it can actually remove -- small
/// percentages support the paper's argument.
///
//===----------------------------------------------------------------------===//

#include "core/Layered.h"
#include "core/ProblemBuilder.h"
#include "ir/ReloadCleanup.h"
#include "ir/SpillRewriter.h"
#include "ir/SsaBuilder.h"
#include "suites/Suites.h"
#include "support/Table.h"

#include <cstdio>

using namespace layra;

int main() {
  std::printf("== Ablation: spill-everywhere vs load-store optimization "
              "(BFPL spill code) ==\n");
  Table T({"suite", "regs", "loads", "removed", "removed %", "cost saved %"});

  for (const char *SuiteName : {"spec2000int", "eembc", "lao-kernels"}) {
    Suite S = makeSuite(SuiteName);
    for (unsigned Regs : {4u, 8u}) {
      unsigned Loads = 0, Removed = 0;
      Weight LoadCost = 0, Saved = 0;
      for (const SuiteProgram &Prog : S.Programs)
        for (const Function &F : Prog.Functions) {
          SsaConversion Conv = convertToSsa(F);
          AllocationProblem P = buildSsaProblem(Conv.Ssa, ST231, Regs);
          AllocationResult Alloc =
              layeredAllocate(P, LayeredOptions::bfpl());
          std::vector<char> Spilled(Conv.Ssa.numValues(), 0);
          for (VertexId V = 0; V < P.graph().numVertices(); ++V)
            Spilled[V] = Alloc.Allocated[V] ? 0 : 1;
          Function Rewritten = Conv.Ssa;
          SpillRewriteStats SpillStats = rewriteSpills(Rewritten, Spilled);
          Loads += SpillStats.NumLoads;
          // Weighted reload cost before cleanup.
          for (BlockId B = 0; B < Rewritten.numBlocks(); ++B)
            for (const Instruction &I : Rewritten.block(B).Instrs)
              if (I.Op == Opcode::Load)
                LoadCost += Rewritten.block(B).Frequency;
          ReloadCleanupStats Clean = eliminateRedundantReloads(Rewritten);
          Removed += Clean.LoadsRemoved;
          Saved += Clean.CostSaved;
        }
      T.addRow({SuiteName, std::to_string(Regs),
                Table::num((long long)Loads), Table::num((long long)Removed),
                Loads ? Table::num(100.0 * Removed / Loads, 1) + "%" : "-",
                LoadCost ? Table::num(100.0 * static_cast<double>(Saved) /
                                          static_cast<double>(LoadCost),
                                      1) +
                               "%"
                         : "-"});
    }
  }
  T.print(stdout);
  return 0;
}
