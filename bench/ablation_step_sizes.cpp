//===- bench/ablation_step_sizes.cpp - §4 step parameter ablation ---------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper fixes step = 1 ("we restrict ourselves to a step of one") and
/// notes step >= 2 is solvable by dynamic programming.  This ablation runs
/// the layered allocator with step 1, 2 and 3 layers across the chordal
/// suites and reports quality (cost vs optimal) and wall-clock, quantifying
/// what the extra optimality per layer buys.
///
//===----------------------------------------------------------------------===//

#include "alloc/OptimalBnB.h"
#include "core/Layered.h"
#include "suites/Suites.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>

using namespace layra;

int main() {
  struct Row {
    unsigned Step;
    Weight Cost = 0;
    double Millis = 0;
    unsigned Wins = 0; // Instances strictly better than step 1.
  };
  Row Rows[] = {{1, 0, 0, 0}, {2, 0, 0, 0}, {3, 0, 0, 0}};
  Weight OptimalCost = 0;
  unsigned Instances = 0;

  for (const char *SuiteName : {"eembc", "lao-kernels"}) {
    Suite S = makeSuite(SuiteName);
    for (unsigned Regs : {2u, 3u, 4u, 6u, 8u}) {
      std::vector<NamedProblem> Problems = chordalProblems(S, ST231, Regs);
      for (NamedProblem &NP : Problems) {
        ++Instances;
        OptimalBnBAllocator BnB(10'000'000);
        OptimalCost += BnB.allocate(NP.P).SpillCost;
        Weight Step1Cost = 0;
        for (Row &R : Rows) {
          LayeredOptions Opt = LayeredOptions::bfpl();
          Opt.Step = R.Step;
          auto T0 = std::chrono::steady_clock::now();
          Weight Cost = layeredAllocate(NP.P, Opt).SpillCost;
          R.Millis += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - T0)
                          .count();
          R.Cost += Cost;
          if (R.Step == 1)
            Step1Cost = Cost;
          else
            R.Wins += Cost < Step1Cost ? 1 : 0;
        }
      }
    }
  }

  std::printf("== Ablation: layer step size (BFPL, eembc + lao-kernels, "
              "R in {2,3,4,6,8}) ==\n");
  Table T({"step", "total cost", "vs optimal", "wins vs step1",
           "total time (ms)"});
  for (Row &R : Rows)
    T.addRow({std::to_string(R.Step), Table::num((long long)R.Cost),
              Table::num(static_cast<double>(R.Cost) /
                         static_cast<double>(OptimalCost)),
              Table::num((long long)R.Wins), Table::num(R.Millis, 1)});
  T.addRow({"optimal", Table::num((long long)OptimalCost), "1.000", "-",
            "-"});
  T.print(stdout);
  std::printf("instances: %u\n", Instances);
  return 0;
}
