//===- bench/fig11_dist_spec2000.cpp - Paper Figure 11 --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 11: distribution over individual SPEC CPU 2000int programs of the
/// allocation cost normalized to the per-program optimum, on ST231.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace layra;
using namespace layra::bench;

int main(int Argc, char **Argv) {
  FigureSpec Spec;
  Spec.Id = "Figure 11";
  Spec.Title = "Distribution of normalized allocation costs over individual "
               "programs of SPEC CPU 2000int on ST231";
  Spec.SuiteName = "spec2000int";
  Spec.Target = ST231;
  Spec.RegisterCounts = {1, 2, 4, 8, 16, 32};
  Spec.Allocators = {"gc", "nl", "bl", "fpl", "bfpl"};
  Spec.ChordalPipeline = true;
  Spec.Threads = parseThreadsFlag(Argc, Argv);
  printDistributionFigure(measureFigure(Spec));
  return 0;
}
