//===- bench/perf_graph_kernels.cpp - Graph kernel micro-benchmarks -------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks of the chordal primitives the layered allocator is
/// built from: MCS (PEO), maximal cliques, Frank's maximum weighted stable
/// set, and the clique-tree construction.  Frank's algorithm is the
/// per-layer O(|V|+|E|) primitive behind the paper's complexity claim.
///
//===----------------------------------------------------------------------===//

#include "graph/Chordal.h"
#include "graph/Generators.h"
#include "graph/StableSet.h"

#include <benchmark/benchmark.h>

using namespace layra;

namespace {
Graph makeGraph(unsigned NumVertices) {
  Rng R(0xfeed + NumVertices);
  ChordalGenOptions Opt;
  Opt.NumVertices = NumVertices;
  Opt.TreeSize = NumVertices;
  Opt.SubtreeSpread = 0.15;
  return randomChordalGraph(R, Opt);
}

std::vector<Weight> weightsOf(const Graph &G) {
  std::vector<Weight> W(G.numVertices());
  for (VertexId V = 0; V < G.numVertices(); ++V)
    W[V] = G.weight(V);
  return W;
}
} // namespace

static void BM_MaximumCardinalitySearch(benchmark::State &State) {
  Graph G = makeGraph(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    EliminationOrder Peo = maximumCardinalitySearch(G);
    benchmark::DoNotOptimize(Peo.Order.data());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_MaximumCardinalitySearch)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

static void BM_LexBfs(benchmark::State &State) {
  Graph G = makeGraph(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    EliminationOrder Peo = lexBfs(G);
    benchmark::DoNotOptimize(Peo.Order.data());
  }
}
BENCHMARK(BM_LexBfs)->RangeMultiplier(4)->Range(64, 1024)->Unit(
    benchmark::kMicrosecond);

static void BM_FrankStableSet(benchmark::State &State) {
  Graph G = makeGraph(static_cast<unsigned>(State.range(0)));
  EliminationOrder Peo = maximumCardinalitySearch(G);
  std::vector<Weight> W = weightsOf(G);
  for (auto _ : State) {
    StableSetResult R = maximumWeightedStableSetChordal(G, Peo, W);
    benchmark::DoNotOptimize(R.TotalWeight);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_FrankStableSet)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

static void BM_MaximalCliques(benchmark::State &State) {
  Graph G = makeGraph(static_cast<unsigned>(State.range(0)));
  EliminationOrder Peo = maximumCardinalitySearch(G);
  for (auto _ : State) {
    CliqueCover Cover = maximalCliquesChordal(G, Peo);
    benchmark::DoNotOptimize(Cover.Cliques.data());
  }
}
BENCHMARK(BM_MaximalCliques)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

static void BM_CliqueTree(benchmark::State &State) {
  Graph G = makeGraph(static_cast<unsigned>(State.range(0)));
  EliminationOrder Peo = maximumCardinalitySearch(G);
  CliqueCover Cover = maximalCliquesChordal(G, Peo);
  for (auto _ : State) {
    CliqueTree Tree = buildCliqueTree(G, Cover);
    benchmark::DoNotOptimize(Tree.Parent.data());
  }
}
BENCHMARK(BM_CliqueTree)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);

static void BM_ChordalityCheck(benchmark::State &State) {
  Graph G = makeGraph(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(isChordal(G));
}
BENCHMARK(BM_ChordalityCheck)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
