//===- bench/sec23_inclusion_property.cpp - Paper §2.3 --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §2.3: Diouf et al. observed that the optimal spill set at R registers is
/// included in the optimal spill set at R-1 registers for 99.83% of SPEC
/// JVM98 methods -- the empirical basis of stepwise (layered) allocation.
///
/// This harness recomputes the statistic on the synthetic JVM98 suite two
/// ways:
///
///  1. *arbitrary tie-break*: solve every R independently and check literal
///     nesting of the returned spill sets.  Synthetic suites have many
///     cost ties, so equal-value optima picked arbitrarily understate the
///     property badly;
///  2. *nested chain*: sweep R upwards carrying the allocated set A(R-1)
///     and solve each R lexicographically -- maximise the spill-cost
///     objective first, overlap with A(R-1) second (encoded exactly as
///     w' = w*(N+1) + [v in A], valid because weights are integral).  The
///     pair holds when the tie-broken optimum fully contains A(R-1), i.e.
///     when a nested optimal allocation *exists*.  This matches what the
///     paper's deterministic CPLEX runs on real (rarely tied) costs were
///     effectively measuring.
///
//===----------------------------------------------------------------------===//

#include "alloc/OptimalBnB.h"
#include "ir/Target.h"
#include "suites/Suites.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>

using namespace layra;

namespace {

/// Statistics of one sweep strategy.
struct InclusionStats {
  unsigned MethodsChecked = 0, MethodsAllHold = 0;
  unsigned PairsChecked = 0, PairsHold = 0;

  void addMethod(bool AllHold) {
    ++MethodsChecked;
    MethodsAllHold += AllHold ? 1 : 0;
  }
  void addPair(bool Holds) {
    ++PairsChecked;
    PairsHold += Holds ? 1 : 0;
  }
  double methodRate() const {
    return 100.0 * MethodsAllHold / std::max(1u, MethodsChecked);
  }
  double pairRate() const {
    return 100.0 * PairsHold / std::max(1u, PairsChecked);
  }
};

/// Independent solves, literal nesting of the returned spill sets.
void sweepArbitrary(const NamedProblem &NP, unsigned Top,
                    InclusionStats &Stats) {
  bool AllHold = true;
  std::set<VertexId> Previous;
  bool HavePrevious = false;
  // Downward sweep: spilled(R+1) must be contained in spilled(R).
  for (unsigned Regs = Top; Regs >= 1; --Regs) {
    // withBudgets shares the immutable graph across the whole sweep.
    AllocationProblem P = NP.P.withBudgets({Regs});
    OptimalBnBAllocator BnB(10'000'000);
    AllocationResult Result = BnB.allocate(P);
    std::vector<VertexId> SpilledVec = Result.spilled();
    std::set<VertexId> Spilled(SpilledVec.begin(), SpilledVec.end());
    if (HavePrevious) {
      bool Holds = std::includes(Spilled.begin(), Spilled.end(),
                                 Previous.begin(), Previous.end());
      Stats.addPair(Holds);
      AllHold &= Holds;
    }
    Previous = std::move(Spilled);
    HavePrevious = true;
  }
  Stats.addMethod(AllHold);
}

/// Upward sweep with lexicographic tie-breaking toward the previous
/// allocated set; a pair holds when a nested optimum exists.
void sweepNestedChain(const NamedProblem &NP, unsigned Top,
                      InclusionStats &Stats) {
  bool AllHold = true;
  std::vector<char> PreviousAllocated;
  Weight PreviousSize = 0;
  unsigned N = NP.P.graph().numVertices();

  for (unsigned Regs = 1; Regs <= Top; ++Regs) {
    AllocationProblem P = NP.P.withBudgets({Regs});
    if (!PreviousAllocated.empty()) {
      // Lexicographic objective: weight first, overlap with the previous
      // allocation second.  The perturbed weights need a private graph --
      // the sweep otherwise shares one immutable instance.
      Graph Perturbed = NP.P.graph();
      for (VertexId V = 0; V < N; ++V)
        Perturbed.setWeight(V, NP.P.graph().weight(V) * (N + 1) +
                                   (PreviousAllocated[V] ? 1 : 0));
      P.G = std::make_shared<Graph>(std::move(Perturbed));
    }
    OptimalBnBAllocator BnB(10'000'000);
    AllocationResult Result = BnB.allocate(P);
    if (!PreviousAllocated.empty()) {
      Weight Overlap = 0;
      for (VertexId V = 0; V < N; ++V)
        Overlap += (Result.Allocated[V] && PreviousAllocated[V]) ? 1 : 0;
      // Nested optimum exists iff the maximal overlap is the full previous
      // allocation (allocated sets grow with R <=> spill sets nest).
      bool Holds = Overlap == PreviousSize;
      Stats.addPair(Holds);
      AllHold &= Holds;
    }
    PreviousAllocated = Result.Allocated;
    PreviousSize = 0;
    for (VertexId V = 0; V < N; ++V)
      PreviousSize += PreviousAllocated[V] ? 1 : 0;
  }
  Stats.addMethod(AllHold);
}

} // namespace

int main() {
  Suite S = makeSpecJvm98();
  // Build once at a placeholder R; re-target per register count below.
  std::vector<NamedProblem> Problems = generalProblems(S, ARMv7, 1);

  InclusionStats Arbitrary, Nested;
  for (NamedProblem &NP : Problems) {
    unsigned MaxLive = NP.P.maxLive();
    if (MaxLive < 2)
      continue;
    // Cap the sweep so the harness stays fast on the biggest methods.
    unsigned Top = std::min(MaxLive, 12u);
    sweepArbitrary(NP, Top, Arbitrary);
    sweepNestedChain(NP, Top, Nested);
  }

  std::printf("== Section 2.3: spill-set inclusion across register counts "
              "==\n");
  Table T({"metric", "arbitrary tie-break", "nested chain"});
  T.addRow({"methods checked", Table::num((long long)Arbitrary.MethodsChecked),
            Table::num((long long)Nested.MethodsChecked)});
  T.addRow({"methods where inclusion holds for every R",
            Table::num((long long)Arbitrary.MethodsAllHold),
            Table::num((long long)Nested.MethodsAllHold)});
  T.addRow({"method inclusion rate (paper: 99.83%)",
            Table::num(Arbitrary.methodRate(), 2) + "%",
            Table::num(Nested.methodRate(), 2) + "%"});
  T.addRow({"adjacent-R pairs checked",
            Table::num((long long)Arbitrary.PairsChecked),
            Table::num((long long)Nested.PairsChecked)});
  T.addRow({"pairwise inclusion rate",
            Table::num(Arbitrary.pairRate(), 2) + "%",
            Table::num(Nested.pairRate(), 2) + "%"});
  T.print(stdout);
  std::printf(
      "\nReading: the 'nested chain' column asks whether *some* optimal\n"
      "allocation at R extends the one chosen at R-1 (lexicographic\n"
      "tie-break); the 'arbitrary' column shows how much of the property\n"
      "independent solves destroy through cost ties alone.  Synthetic\n"
      "costs tie far more often than JikesRVM's measured costs, so the\n"
      "paper's 99.83%% corresponds to the nested-chain figure.\n");
  return 0;
}
