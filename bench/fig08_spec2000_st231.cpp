//===- bench/fig08_spec2000_st231.cpp - Paper Figure 8 --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 8: mean normalized allocation cost of GC/NL/FPL/BL/BFPL/Optimal on
/// the SPEC CPU 2000int suite for the ST231, R in {1,2,4,8,16,32}.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace layra;
using namespace layra::bench;

int main(int Argc, char **Argv) {
  FigureSpec Spec;
  Spec.Id = "Figure 8";
  Spec.Title = "Allocation cost for the SPEC CPU 2000int benchmark suite on "
               "ST231 (normalized to Optimal)";
  Spec.SuiteName = "spec2000int";
  Spec.Target = ST231;
  Spec.RegisterCounts = {1, 2, 4, 8, 16, 32};
  Spec.Allocators = {"gc", "nl", "fpl", "bl", "bfpl"};
  Spec.ChordalPipeline = true;
  Spec.Threads = parseThreadsFlag(Argc, Argv);
  printAggregateFigure(measureFigure(Spec));
  return 0;
}
