//===- bench/Harness.cpp - Paper-figure benchmark harness ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "alloc/Allocator.h"
#include "driver/BatchDriver.h"
#include "support/ParseUtil.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

using namespace layra;
using namespace layra::bench;

namespace {
/// Sums per-function costs into per-program costs, preserving the suite's
/// program order.
ProgramCosts sumByProgram(const Suite &S,
                          const std::vector<NamedProblem> &Problems,
                          const std::vector<Weight> &FunctionCosts) {
  ProgramCosts Out;
  std::map<std::string, size_t> Index;
  for (const SuiteProgram &Prog : S.Programs) {
    Index[Prog.Name] = Out.Programs.size();
    Out.Programs.push_back(Prog.Name);
    Out.Cost.push_back(0);
  }
  for (size_t I = 0; I < Problems.size(); ++I)
    Out.Cost[Index.at(Problems[I].Program)] += FunctionCosts[I];
  return Out;
}
} // namespace

FigureData layra::bench::measureFigure(const FigureSpec &Spec) {
  FigureData Data;
  Data.Spec = Spec;
  Data.AllocatorNames = Spec.Allocators;
  Data.AllocatorNames.push_back("optimal");

  Suite S = makeSuite(Spec.SuiteName);
  Data.Costs.assign(Data.AllocatorNames.size(), {});

  // One driver for the whole figure: instances are fanned over its pool,
  // and identical instances *within* one (allocator, register count) batch
  // are solved once.  (Keys mix allocator and R, so distinct sweep points
  // never share results.)
  BatchDriver Driver(Spec.Threads);

  // Instance structure (graph, constraints, intervals) is budget-
  // independent: build every problem once at the first register count and
  // re-budget per sweep point with withBudgets, which *shares* the
  // immutable graph instead of re-deriving liveness + interference per R
  // (and instead of the withRegisters-era full graph copy).
  std::vector<NamedProblem> Problems =
      Spec.ChordalPipeline
          ? chordalProblems(S, Spec.Target, Spec.RegisterCounts[0])
          : generalProblems(S, Spec.Target, Spec.RegisterCounts[0]);

  for (unsigned RIndex = 0; RIndex < Spec.RegisterCounts.size(); ++RIndex) {
    unsigned Regs = Spec.RegisterCounts[RIndex];
    std::vector<AllocationProblem> Swept;
    if (RIndex > 0) {
      Swept.reserve(Problems.size());
      for (NamedProblem &NP : Problems) {
        // Sweep class 0, keep every other class's budget: preserves the
        // class structure withBudgets requires, so multi-class suites
        // sweep correctly too.
        std::vector<unsigned> Budgets = NP.P.Budgets;
        Budgets[0] = Regs;
        Swept.push_back(NP.P.withBudgets(std::move(Budgets)));
      }
    }
    std::vector<const AllocationProblem *> Instances;
    Instances.reserve(Problems.size());
    for (size_t I = 0; I < Problems.size(); ++I)
      Instances.push_back(RIndex > 0 ? &Swept[I] : &Problems[I].P);

    for (size_t A = 0; A < Data.AllocatorNames.size(); ++A) {
      const std::string &Name = Data.AllocatorNames[A];
      bool IsOptimal = Name == "optimal";
      std::string Error;
      std::vector<AllocationResult> Results = Driver.solveProblems(
          Instances, Name, Spec.OptimalNodeLimit, &Error);
      if (!Error.empty()) {
        // A misconfigured figure (bad allocator name, linear scan over
        // graph-only instances) is a usage error, not a process abort.
        std::fprintf(stderr, "error: %s: %s\n", Spec.Id.c_str(),
                     Error.c_str());
        std::exit(2);
      }
      std::vector<Weight> FunctionCosts(Problems.size(), 0);
      for (size_t I = 0; I < Problems.size(); ++I) {
        FunctionCosts[I] = Results[I].SpillCost;
        if (IsOptimal) {
          ++Data.OptimalTotal;
          Data.OptimalProven += Results[I].Proven ? 1 : 0;
        }
      }
      Data.Costs[A].push_back(sumByProgram(S, Problems, FunctionCosts));
    }
  }
  return Data;
}

unsigned layra::bench::parseThreadsFlag(int Argc, char **Argv) {
  unsigned Result = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--threads=", 10) == 0) {
      if (!parseBoundedUnsigned(Argv[I] + 10, 1024, Result)) {
        std::fprintf(stderr,
                     "error: --threads must be an integer in [0, 1024]\n");
        std::exit(2);
      }
      continue;
    }
    // --threads=N is the only flag the figure binaries take; anything else
    // (misspellings, the space-separated form) must not silently run the
    // benchmark with default settings.
    std::fprintf(stderr,
                 "error: unknown argument '%s' (only --threads=N is "
                 "supported)\n",
                 Argv[I]);
    std::exit(2);
  }
  return Result;
}

/// Index of "optimal" in Data.AllocatorNames (always the last entry).
static size_t optimalIndex(const FigureData &Data) {
  return Data.AllocatorNames.size() - 1;
}

static void printHeader(const FigureData &Data) {
  std::printf("== %s: %s ==\n", Data.Spec.Id.c_str(),
              Data.Spec.Title.c_str());
  std::printf("suite=%s target=%s pipeline=%s\n", Data.Spec.SuiteName.c_str(),
              Data.Spec.Target.Name,
              Data.Spec.ChordalPipeline ? "SSA/chordal" : "non-SSA/general");
}

static void printFooter(const FigureData &Data) {
  std::printf("optimal baseline: %u/%u instances proven optimal\n\n",
              Data.OptimalProven, Data.OptimalTotal);
}

void layra::bench::printAggregateFigure(const FigureData &Data) {
  printHeader(Data);
  std::vector<std::string> Headers{"allocator"};
  for (unsigned Regs : Data.Spec.RegisterCounts)
    Headers.push_back(std::to_string(Regs) + " regs");
  Table T(std::move(Headers));

  size_t Opt = optimalIndex(Data);
  for (size_t A = 0; A < Data.AllocatorNames.size(); ++A) {
    std::vector<std::string> Row{Data.AllocatorNames[A]};
    for (size_t RIndex = 0; RIndex < Data.Spec.RegisterCounts.size();
         ++RIndex) {
      Weight Sum = 0, OptSum = 0;
      for (size_t PIdx = 0; PIdx < Data.Costs[A][RIndex].Cost.size();
           ++PIdx) {
        Sum += Data.Costs[A][RIndex].Cost[PIdx];
        OptSum += Data.Costs[Opt][RIndex].Cost[PIdx];
      }
      Row.push_back(OptSum == 0 ? (Sum == 0 ? "1.000" : "inf")
                                : Table::num(static_cast<double>(Sum) /
                                             static_cast<double>(OptSum)));
    }
    T.addRow(std::move(Row));
  }
  T.print(stdout);
  printFooter(Data);
}

void layra::bench::printDistributionFigure(const FigureData &Data) {
  printHeader(Data);
  Table T({"allocator", "regs", "min", "q1", "median", "q3", "p95", "max",
           "programs"});
  size_t Opt = optimalIndex(Data);
  for (size_t A = 0; A + 1 < Data.AllocatorNames.size(); ++A) {
    for (size_t RIndex = 0; RIndex < Data.Spec.RegisterCounts.size();
         ++RIndex) {
      std::vector<double> Ratios;
      const ProgramCosts &Costs = Data.Costs[A][RIndex];
      const ProgramCosts &OptCosts = Data.Costs[Opt][RIndex];
      for (size_t PIdx = 0; PIdx < Costs.Cost.size(); ++PIdx) {
        if (OptCosts.Cost[PIdx] == 0) {
          if (Costs.Cost[PIdx] == 0)
            Ratios.push_back(1.0);
          continue; // Paper-style: skip infinite ratios (never hit here).
        }
        Ratios.push_back(static_cast<double>(Costs.Cost[PIdx]) /
                         static_cast<double>(OptCosts.Cost[PIdx]));
      }
      SampleSummary Summary = summarize(Ratios);
      T.addRow({Data.AllocatorNames[A],
                std::to_string(Data.Spec.RegisterCounts[RIndex]),
                Table::num(Summary.Min), Table::num(Summary.Q1),
                Table::num(Summary.Median), Table::num(Summary.Q3),
                Table::num(Summary.P95), Table::num(Summary.Max),
                Table::num(static_cast<long long>(Summary.Count))});
    }
  }
  T.print(stdout);
  printFooter(Data);
}

void layra::bench::printPerProgramFigure(const FigureData &Data,
                                         unsigned RegisterCount) {
  printHeader(Data);
  size_t RIndex = 0;
  bool Found = false;
  for (size_t I = 0; I < Data.Spec.RegisterCounts.size(); ++I)
    if (Data.Spec.RegisterCounts[I] == RegisterCount) {
      RIndex = I;
      Found = true;
    }
  if (!Found) {
    std::printf("register count %u was not measured\n", RegisterCount);
    return;
  }

  std::vector<std::string> Headers{"benchmark"};
  for (size_t A = 0; A + 1 < Data.AllocatorNames.size(); ++A)
    Headers.push_back(Data.AllocatorNames[A]);
  Table T(std::move(Headers));

  size_t Opt = optimalIndex(Data);
  const ProgramCosts &OptCosts = Data.Costs[Opt][RIndex];
  for (size_t PIdx = 0; PIdx < OptCosts.Programs.size(); ++PIdx) {
    std::vector<std::string> Row{OptCosts.Programs[PIdx]};
    for (size_t A = 0; A + 1 < Data.AllocatorNames.size(); ++A) {
      Weight Cost = Data.Costs[A][RIndex].Cost[PIdx];
      Weight OptCost = OptCosts.Cost[PIdx];
      Row.push_back(OptCost == 0
                        ? (Cost == 0 ? "1.000" : "inf")
                        : Table::num(static_cast<double>(Cost) /
                                     static_cast<double>(OptCost)));
    }
    T.addRow(std::move(Row));
  }
  T.print(stdout);
  printFooter(Data);
}
