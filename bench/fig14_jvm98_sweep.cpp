//===- bench/fig14_jvm98_sweep.cpp - Paper Figure 14 ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 14: the layered-heuristic allocator (LH) against the JIT baselines
/// (DLS = default linear scan, BLS, GC) on the non-SSA SPEC JVM98 workload,
/// normalized to the ILP optimum, R in {2,4,...,16}.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace layra;
using namespace layra::bench;

int main(int Argc, char **Argv) {
  FigureSpec Spec;
  Spec.Id = "Figure 14";
  Spec.Title = "Layered-heuristic allocator compared to other algorithms for "
               "different register counts (SPEC JVM98, JIT pipeline)";
  Spec.SuiteName = "specjvm98";
  Spec.Target = ARMv7;
  Spec.RegisterCounts = {2, 4, 6, 8, 10, 12, 14, 16};
  Spec.Allocators = {"ls", "bls", "gc", "lh"};
  Spec.ChordalPipeline = false;
  Spec.Threads = parseThreadsFlag(Argc, Argv);
  printAggregateFigure(measureFigure(Spec));
  return 0;
}
