//===- bench/ablation_layered_variants.cpp - §4.1/§4.2 ablation -----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the two improvements of §4 (biasing, fixed point): for every
/// chordal suite instance and register count, how often does each variant
/// strictly improve over plain NL, and how much of the NL-to-Optimal gap
/// does each close?  This quantifies the design choices the paper motivates
/// with Figures 6 and 7.
///
//===----------------------------------------------------------------------===//

#include "alloc/OptimalBnB.h"
#include "core/Layered.h"
#include "suites/Suites.h"
#include "support/Table.h"

#include <cstdio>

using namespace layra;

int main() {
  struct VariantRow {
    const char *Name;
    LayeredOptions Options;
    unsigned Wins = 0, Losses = 0;
    Weight TotalCost = 0;
  };
  VariantRow Variants[] = {
      {"nl", LayeredOptions::nl(), 0, 0, 0},
      {"bl", LayeredOptions::bl(), 0, 0, 0},
      {"fpl", LayeredOptions::fpl(), 0, 0, 0},
      {"bfpl", LayeredOptions::bfpl(), 0, 0, 0},
  };

  Weight OptimalCost = 0;
  unsigned Instances = 0;
  for (const char *SuiteName : {"spec2000int", "eembc", "lao-kernels"}) {
    Suite S = makeSuite(SuiteName);
    for (unsigned Regs : {2u, 4u, 8u, 16u}) {
      std::vector<NamedProblem> Problems = chordalProblems(S, ST231, Regs);
      for (NamedProblem &NP : Problems) {
        ++Instances;
        Weight NlCost =
            layeredAllocate(NP.P, LayeredOptions::nl()).SpillCost;
        OptimalBnBAllocator BnB(10'000'000);
        OptimalCost += BnB.allocate(NP.P).SpillCost;
        for (VariantRow &V : Variants) {
          Weight Cost = layeredAllocate(NP.P, V.Options).SpillCost;
          V.TotalCost += Cost;
          V.Wins += Cost < NlCost ? 1 : 0;
          V.Losses += Cost > NlCost ? 1 : 0;
        }
      }
    }
  }

  std::printf("== Ablation: layered variants vs plain NL (chordal suites, "
              "R in {2,4,8,16}) ==\n");
  Table T({"variant", "total cost", "vs optimal", "wins vs nl",
           "losses vs nl"});
  for (VariantRow &V : Variants)
    T.addRow({V.Name, Table::num((long long)V.TotalCost),
              Table::num(static_cast<double>(V.TotalCost) /
                         static_cast<double>(OptimalCost)),
              Table::num((long long)V.Wins),
              Table::num((long long)V.Losses)});
  T.addRow({"optimal", Table::num((long long)OptimalCost), "1.000", "-",
            "-"});
  T.print(stdout);
  std::printf("instances: %u\n", Instances);
  return 0;
}
