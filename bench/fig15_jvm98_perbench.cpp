//===- bench/fig15_jvm98_perbench.cpp - Paper Figure 15 -------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 15: per-benchmark normalized allocation costs of the JVM98 apps
/// at a register count of 6 (check, compress, jess, raytrace, db, javac,
/// mpegaudio, mtrt, jack).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace layra;
using namespace layra::bench;

int main(int Argc, char **Argv) {
  FigureSpec Spec;
  Spec.Id = "Figure 15";
  Spec.Title = "Layered-heuristic compared to other allocators when the "
               "register count is 6 (per SPEC JVM98 benchmark)";
  Spec.SuiteName = "specjvm98";
  Spec.Target = ARMv7;
  Spec.RegisterCounts = {6};
  Spec.Allocators = {"ls", "bls", "gc", "lh"};
  Spec.ChordalPipeline = false;
  Spec.Threads = parseThreadsFlag(Argc, Argv);
  printPerProgramFigure(measureFigure(Spec), 6);
  return 0;
}
