//===- bench/fig10_laokernels.cpp - Paper Figure 10 ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 10: mean normalized allocation cost of GC/NL/FPL/BL/BFPL/Optimal
/// on the LAO-KERNELS suite, R in {1,2,4,8,16,32}.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace layra;
using namespace layra::bench;

int main(int Argc, char **Argv) {
  FigureSpec Spec;
  Spec.Id = "Figure 10";
  Spec.Title = "Allocation cost for the LAO-KERNELS benchmark suite on "
               "ARMv7 (normalized to Optimal)";
  Spec.SuiteName = "lao-kernels";
  Spec.Target = ARMv7;
  Spec.RegisterCounts = {1, 2, 4, 8, 16, 32};
  Spec.Allocators = {"gc", "nl", "fpl", "bl", "bfpl"};
  Spec.ChordalPipeline = true;
  Spec.Threads = parseThreadsFlag(Argc, Argv);
  printAggregateFigure(measureFigure(Spec));
  return 0;
}
