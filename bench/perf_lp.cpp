//===- bench/perf_lp.cpp - LP / ILP engine micro-benchmarks ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks of the exact-solver engine (src/lp): simplex solve time
/// on clique-packing relaxations, and end-to-end ILP proof time on
/// SSA-style sliding-window instances, swept over instance size and
/// capacity.  These quantify why the "Optimal" baseline is affordable for
/// a whole-suite sweep: relaxations are near-integral, so the measured ILP
/// time is essentially one or two simplex solves.
///
//===----------------------------------------------------------------------===//

#include "lp/Ilp.h"
#include "lp/Simplex.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace layra;

namespace {

/// Sliding-window clique instance: N variables, window cliques of width W
/// every S variables, capacity R.  This is the shape SSA live ranges
/// produce along the dominance tree.
IlpInstance windowInstance(Rng &R, unsigned N, unsigned Width,
                           unsigned Stride, unsigned Capacity) {
  IlpInstance I;
  I.Weights.resize(N);
  for (Weight &W : I.Weights)
    W = R.nextInRange(1, 10000);
  for (unsigned Start = 0; Start + Width <= N; Start += Stride) {
    IlpConstraint K;
    K.Capacity = Capacity;
    for (unsigned V = Start; V < Start + Width; ++V)
      K.Vars.push_back(V);
    I.Constraints.push_back(std::move(K));
  }
  return I;
}

LinearProgram relaxationOf(const IlpInstance &I) {
  LinearProgram LP;
  for (unsigned V = 0; V < I.numVars(); ++V)
    LP.addVariable(static_cast<double>(I.Weights[V]), 0.0, 1.0);
  for (const IlpConstraint &K : I.Constraints) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned V : K.Vars)
      Terms.push_back({V, 1.0});
    LP.addRow(std::move(Terms), static_cast<double>(K.Capacity));
  }
  return LP;
}

void BM_SimplexCliqueRelaxation(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  unsigned Capacity = static_cast<unsigned>(State.range(1));
  Rng R(42);
  IlpInstance I = windowInstance(R, N, /*Width=*/16, /*Stride=*/3, Capacity);
  LinearProgram LP = relaxationOf(I);
  for (auto _ : State) {
    LpSolution S = solveLp(LP);
    benchmark::DoNotOptimize(S.Value);
  }
  State.SetLabel(std::to_string(LP.Rows.size()) + " rows");
}

void BM_IlpProveWindow(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  unsigned Capacity = static_cast<unsigned>(State.range(1));
  Rng R(43);
  IlpInstance I = windowInstance(R, N, /*Width=*/16, /*Stride=*/3, Capacity);
  uint64_t Nodes = 0;
  for (auto _ : State) {
    IlpResult Result = solveBinaryPackingBudgeted(I, nullptr, 1'000'000);
    benchmark::DoNotOptimize(Result.Value);
    Nodes += Result.Nodes;
  }
  State.counters["nodes/solve"] =
      benchmark::Counter(static_cast<double>(Nodes) /
                         static_cast<double>(State.iterations()));
}

void BM_IlpProveOddCycles(benchmark::State &State) {
  // Pairwise odd-cycle constraints: the worst case for the relaxation
  // (half-integral LP), forcing genuine branching.
  unsigned Cycles = static_cast<unsigned>(State.range(0));
  IlpInstance I;
  I.Weights.assign(5 * Cycles, 3);
  for (unsigned C = 0; C < Cycles; ++C)
    for (unsigned V = 0; V < 5; ++V)
      I.Constraints.push_back(
          {{5 * C + V, 5 * C + (V + 1) % 5}, 1});
  for (auto _ : State) {
    IlpResult Result = solveBinaryPackingBudgeted(I, nullptr, 1'000'000);
    benchmark::DoNotOptimize(Result.Value);
  }
}

} // namespace

BENCHMARK(BM_SimplexCliqueRelaxation)
    ->Args({64, 4})
    ->Args({128, 4})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({512, 8})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_IlpProveWindow)
    ->Args({64, 4})
    ->Args({128, 4})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_IlpProveOddCycles)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
