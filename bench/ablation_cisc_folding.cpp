//===- bench/ablation_cisc_folding.cpp - §4.3 CISC memory operands --------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4.3 notes that CISC targets "can take advantage of complex addressing
/// modes to get operands directly from memory (at most one such operand on
/// x86)".  This ablation materialises BFPL's spill-everywhere decision as
/// spill code and folds reloads on an x86-64-like target, reporting how
/// many reloads an addressing mode absorbs and how much of the static
/// reload cost that recovers -- i.e. how much cheaper the same allocation
/// gets on a CISC machine without changing the allocator at all.
///
//===----------------------------------------------------------------------===//

#include "core/Layered.h"
#include "core/ProblemBuilder.h"
#include "ir/OperandFolding.h"
#include "ir/SpillRewriter.h"
#include "ir/SsaBuilder.h"
#include "suites/Suites.h"
#include "support/Table.h"

#include <cstdio>

using namespace layra;

int main() {
  std::printf("== Ablation: CISC memory-operand folding of spill reloads "
              "(BFPL spill code, x86-64 cost model) ==\n");
  Table T({"suite", "regs", "loads", "folded", "folded %", "reload cost",
           "saved %"});

  for (const char *SuiteName : {"spec2000int", "eembc", "lao-kernels"}) {
    Suite S = makeSuite(SuiteName);
    for (unsigned Regs : {4u, 8u}) {
      unsigned Loads = 0, Folded = 0;
      Weight ReloadCost = 0, Saved = 0;
      for (const SuiteProgram &Prog : S.Programs)
        for (const Function &F : Prog.Functions) {
          SsaConversion Conv = convertToSsa(F);
          AllocationProblem P = buildSsaProblem(Conv.Ssa, X86_64, Regs);
          AllocationResult Alloc = layeredAllocate(P, LayeredOptions::bfpl());
          std::vector<char> Spilled(Conv.Ssa.numValues(), 0);
          for (VertexId V = 0; V < P.graph().numVertices(); ++V)
            Spilled[V] = Alloc.Allocated[V] ? 0 : 1;
          Function Rewritten = Conv.Ssa;
          SpillRewriteStats SpillStats = rewriteSpills(Rewritten, Spilled);
          Loads += SpillStats.NumLoads;
          for (BlockId B = 0; B < Rewritten.numBlocks(); ++B)
            for (const Instruction &I : Rewritten.block(B).Instrs)
              if (I.Op == Opcode::Load)
                ReloadCost +=
                    Rewritten.block(B).Frequency * X86_64.LoadCost;
          OperandFoldStats Fold = foldMemoryOperands(Rewritten, X86_64);
          Folded += Fold.LoadsFolded;
          Saved += Fold.CostSaved;
        }
      T.addRow({SuiteName, std::to_string(Regs), std::to_string(Loads),
                std::to_string(Folded),
                Table::percent(Folded, Loads),
                std::to_string(ReloadCost),
                Table::percent(Saved, ReloadCost)});
    }
  }
  T.print(stdout);
  std::printf("\nReading: 'folded %%' is the share of reloads an x86-style "
              "addressing mode absorbs; 'saved %%' the share of weighted "
              "reload cost recovered (folded operands still cost "
              "MemOperandCost each).\n");
  return 0;
}
