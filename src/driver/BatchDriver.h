//===- driver/BatchDriver.h - Parallel batch allocation ---------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch-allocation subsystem: expands jobs (suite x target x register
/// count x pipeline options) into per-function allocation tasks, dedupes
/// repeated instances through a content-hash cache, and executes the unique
/// ones on a work-stealing thread pool (support/ThreadPool.h).
///
/// Determinism contract: report contents other than wall-clock timings are
/// a pure function of the jobs -- independent of the thread count and of the
/// steal schedule.  This holds because (a) every task writes only its own
/// result slot, (b) the library itself is deterministic, and (c) cache
/// hit/miss classification happens in a serial expansion pass *before* any
/// parallel work, so which instance of a duplicate pair is "the hit" never
/// depends on a race.
///
/// The cache persists across run() calls: sweeping the same suite at a new
/// register count re-solves (keys include R), but re-running an identical
/// job -- or meeting the same function again in another suite -- is free.
/// In the decoupled spill-everywhere view (Bouchez, Darte, Rastello) the
/// spill decision is a pure function of the instance, which is what makes
/// memoizing it sound.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_DRIVER_BATCHDRIVER_H
#define LAYRA_DRIVER_BATCHDRIVER_H

#include "alloc/Pipeline.h"
#include "core/AllocationProblem.h"
#include "core/Delta.h"
#include "core/SolverWorkspace.h"
#include "ir/Target.h"
#include "obs/Trace.h"
#include "suites/Suites.h"
#include "support/LruCache.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace layra {

/// One batch job: every function of one suite, run through the allocation
/// pipeline at one register count with one option set.
struct BatchJob {
  /// Suite name; resolved through makeSuite() unless SuiteData is set.
  std::string SuiteName;
  /// Optional pre-built suite (must outlive the run() call).  Lets callers
  /// expand a generated suite once across a whole register sweep and lets
  /// tests drive hand-built functions.  SuiteName is then just the label.
  const Suite *SuiteData = nullptr;
  /// Target cost model.
  TargetDesc Target = ST231;
  /// Register count for this job: the budget of register class 0 (what
  /// `--regs` sweeps).  Other classes default to the target's
  /// architectural counts.
  unsigned NumRegisters = 0;
  /// Per-class overrides (`--class-regs=NAME:N`), applied on top of
  /// NumRegisters/architectural defaults by resolveClassBudgets.
  std::vector<ClassRegOverride> ClassRegs;
  /// Resolved per-class budgets.  Callers leave this empty; run() fills it
  /// (and the copy stored in each JobReport) so report serializers see the
  /// budgets without re-deriving them.
  std::vector<unsigned> Budgets;
  /// Pipeline configuration (allocator, rounds, folding, ...).
  PipelineOptions Options;
  /// Delta channel (core/Delta.h).  BaseKey != 0: warm-start this job's
  /// solved tasks from the base retained under that key; a task that
  /// solves without managing it (incompatible structure, or no such base)
  /// counts as a delta fallback.  RetainKey != 0: retain the round-0
  /// artifacts of this job's first task under that key for future deltas.
  /// At most one of the two may be set; both are designed for the
  /// single-function jobs the JIT/server resubmission path builds.
  /// Neither enters the task content hash -- delta solves are byte-equal
  /// to full solves, so cached outcomes stay shared either way.
  uint64_t BaseKey = 0;
  uint64_t RetainKey = 0;
};

/// Deterministic outcome of one function's pipeline run.  This is the unit
/// the cache stores and shares between duplicate instances.
struct TaskOutcome {
  Weight SpillCost = 0;
  unsigned NumLoads = 0;
  unsigned NumStores = 0;
  unsigned LoadsFolded = 0;
  unsigned Rounds = 0;
  unsigned FinalMaxLive = 0;
  bool Fits = false;
};

/// One function's record within a job report.
struct TaskResult {
  std::string Program;  ///< Owning suite program.
  std::string Function; ///< Function name.
  uint64_t Key = 0;     ///< Content hash (IR + target + R + options).
  bool CacheHit = false;///< Shared a previously solved identical instance.
  TaskOutcome Out;
  double WallMs = 0;    ///< Solve time; 0 for cache hits.  Timing field.
};

/// Aggregates over one job.  Every field except the WallMs* ones is
/// deterministic across thread counts.
struct JobReport {
  /// The job as configured, with SuiteName resolved and SuiteData cleared
  /// so the report never borrows the caller's suite storage.
  BatchJob Job;
  std::vector<TaskResult> Tasks; ///< Suite order, thread-independent.
  Weight TotalSpillCost = 0;
  uint64_t TotalLoads = 0;
  uint64_t TotalStores = 0;
  uint64_t TotalFolded = 0;
  uint64_t TotalRounds = 0;
  unsigned FunctionsFit = 0;
  unsigned CacheHits = 0;
  /// Wall-time aggregate/percentiles over this job's solved (non-hit)
  /// tasks.  Timing fields: excluded from determinism comparisons.
  double WallMsTotal = 0;
  double WallMsP50 = 0;
  double WallMsP95 = 0;
  double WallMsMax = 0;
  /// Per-phase *self*-time breakdown over this job's solved tasks, indexed
  /// by Phase (kNumPhases entries) -- summing PhaseMs reconstructs the
  /// solve wall time without double counting.  Populated only when phase
  /// accounting (obs::setPhaseAccounting) was on during run(); empty
  /// otherwise.  Timing fields: excluded from determinism comparisons and
  /// from --no-timing reports.
  std::vector<double> PhaseMs;
  std::vector<uint64_t> PhaseCount;
};

/// Everything one run() produced.
struct DriverReport {
  std::vector<JobReport> Jobs;
  unsigned Threads = 1;
  uint64_t CacheEntries = 0;   ///< Pipeline-cache size after the run.
  uint64_t CacheHits = 0;      ///< Hits across this run's jobs.
  uint64_t CacheEvictions = 0; ///< Entries evicted during this run.
  double WallMs = 0;           ///< Whole-batch wall clock.  Timing field.
};

/// Lifetime counters of one BatchDriver cache (pipeline or problem side).
/// Cumulative across run()/solveProblems() calls; the allocation server
/// surfaces them through its `stats` request, and `layra-bench
/// --workspace-stats` prints them alongside the arena accounting.
struct DriverCacheCounters {
  uint64_t Hits = 0;      ///< Tasks served from the cache or a batch twin.
  uint64_t Misses = 0;    ///< Tasks that required a solve.
  uint64_t Evictions = 0; ///< Entries dropped by the capacity bound.
  uint64_t Entries = 0;   ///< Entries currently held.
  uint64_t Capacity = 0;  ///< Configured bound; 0 = unbounded.
};

/// Lifetime counters of one BatchDriver's delta machinery.  Hits count
/// solved tasks whose round-0 problem came from a retained base (liveness
/// /interference/MCS skipped); fallbacks count tasks that asked for a
/// base but solved from scratch (structurally incompatible edit, or the
/// base was never registered/already evicted).  Cache hits of delta
/// requests count as neither -- no solve happened at all.
struct DriverDeltaCounters {
  uint64_t Hits = 0;
  uint64_t Fallbacks = 0;
  uint64_t Bases = 0;    ///< Bases currently retained.
  uint64_t Capacity = 0; ///< Registry bound; 0 = unbounded.
};

/// Persistence hook underneath the in-memory pipeline cache.  When a
/// store is attached (setOutcomeStore), run()'s serial classification
/// phase consults it for keys the memory cache misses, and the serial
/// commit phase hands it every newly solved outcome.  Both calls happen
/// only on the thread that called run(), never from pool workers, so an
/// implementation needs no synchronization against the driver itself
/// (service/DiskCache.h still locks internally because the server shares
/// one store across shard drivers).
///
/// Outcomes are pure functions of the content-hash key, which is what
/// makes persisting them sound -- the same argument that justifies the
/// in-memory cache.  A store must therefore never return a stale entry
/// for a changed solver: implementations version their payloads (the
/// disk cache keys its header on protocol + solver revision) and treat a
/// mismatch as a miss.
class TaskOutcomeStore {
public:
  virtual ~TaskOutcomeStore() = default;
  /// True when an outcome for \p Key exists; fills \p Out.  A corrupt or
  /// version-mismatched entry must read as "absent", not as an error --
  /// the driver then simply re-solves (and re-stores) the instance.
  virtual bool lookup(uint64_t Key, TaskOutcome &Out) = 0;
  /// Persists \p Out under \p Key.  Failures are the store's problem
  /// (drop the entry, log, evict); the driver does not check.
  virtual void store(uint64_t Key, const TaskOutcome &Out) = 0;
};

/// Stable structural hash of a function's IR: blocks, edges, instructions,
/// operands, spill slots and frequencies.  Value/block/function *names* are
/// excluded, so two structurally identical functions hash equal.
uint64_t hashFunction(const Function &F);

/// Cache key of one pipeline task: hashFunction(F) mixed with the target
/// cost model, the register budgets and every PipelineOptions field.
/// Single-class keys are unchanged from the scalar era (extra class
/// budgets are mixed only when present).
uint64_t hashPipelineTask(const Function &F, const TargetDesc &Target,
                          unsigned NumRegisters,
                          const PipelineOptions &Options);

/// Same key from a precomputed hashFunction(F) value; lets a register
/// sweep hash each function's IR once instead of once per job.
uint64_t hashPipelineTask(uint64_t FunctionHash, const TargetDesc &Target,
                          unsigned NumRegisters,
                          const PipelineOptions &Options);

/// Vector-budget form (resolveClassBudgets output).
uint64_t hashPipelineTask(uint64_t FunctionHash, const TargetDesc &Target,
                          const std::vector<unsigned> &Budgets,
                          const PipelineOptions &Options);

/// Stable content hash of a spill-everywhere instance: graph weights and
/// adjacency, register count, point constraints, and (when present) the
/// flattened live intervals.  Vertex names are excluded.
uint64_t hashProblem(const AllocationProblem &P);

/// Schedules per-function allocation problems over a work-stealing pool.
class BatchDriver {
public:
  /// \p Threads = 0 picks ThreadPool::defaultThreadCount().
  explicit BatchDriver(unsigned Threads = 0);

  unsigned numThreads() const { return Pool.numThreads(); }

  /// Expands \p Jobs, solves unique instances in parallel, and returns the
  /// per-job reports in job order (task order within a job is suite order).
  ///
  /// With \p CacheTransparent the report's cache-related content (per-task
  /// CacheHit flags, the hit counters, cache_entries/evictions) describes
  /// what a *fresh, unbounded* driver running the same jobs would report,
  /// while the persistent cache is still consulted to skip repeated solves.
  /// Outcome fields are pure functions of each instance either way, so a
  /// transparent timing-free report is byte-identical no matter how warm
  /// the cache is -- the property the allocation server's responses rely
  /// on (tests/service/ServerLoopbackTest.cpp asserts it).
  ///
  /// \p PhaseSink is the per-call span sink for request-scoped tracing:
  /// when non-null it is filled with one PhaseTotals per job (net of
  /// cache hits and batch duplicates, like JobReport::PhaseMs), turning
  /// phase accounting on for just this call if it was globally off.
  /// The sink never changes the report: JobReport::PhaseMs stays
  /// populated only when accounting was already enabled globally, so a
  /// traced request's report bytes match an untraced one's.
  DriverReport run(const std::vector<BatchJob> &Jobs,
                   bool CacheTransparent = false,
                   std::vector<PhaseTotals> *PhaseSink = nullptr);

  /// Lower-level batch entry used by the figure harness: solves every
  /// problem with allocator \p AllocatorName in parallel and returns the
  /// results in input order.  Duplicate instances (by content hash) are
  /// solved once.  \p OptimalNodeLimit bounds the "optimal"
  /// branch-and-bound search (always honored for that allocator, zero
  /// meaning a zero node budget; the default matches OptimalBnBAllocator's
  /// own); other allocators ignore it.
  ///
  /// The allocator name and allocator-vs-problem compatibility (the
  /// linear-scan family needs AllocationProblem::Intervals) are validated
  /// up front on the calling thread.  With \p Error non-null a violation
  /// returns an empty vector with \p Error set to the diagnostic; with the
  /// default null it remains fatal -- but always before any pool worker
  /// starts.
  std::vector<AllocationResult>
  solveProblems(const std::vector<const AllocationProblem *> &Problems,
                const std::string &AllocatorName,
                uint64_t OptimalNodeLimit = 50'000'000,
                std::string *Error = nullptr);

  /// Number of memoized pipeline outcomes.
  size_t pipelineCacheSize() const { return PipelineCache.size(); }
  /// Number of memoized problem results (solveProblems side).
  size_t problemCacheSize() const { return ProblemCache.size(); }

  /// Bounds both content-hash caches to \p MaxEntries each, evicting the
  /// least recently used overflow immediately.  0 (the default) removes the
  /// bound.  Recency updates and evictions happen only in the serial
  /// classification/commit phases, so eviction order -- and with it every
  /// report -- remains deterministic across thread counts.  A long-lived
  /// process (service/Server.h) must set a bound: entries are O(vertices)
  /// bytes each and otherwise accumulate forever.
  void setCacheCapacity(size_t MaxEntries);

  /// Attaches (or with null detaches) a persistent outcome store under
  /// the pipeline cache.  Not owned; must outlive the driver or be
  /// detached first.  Store hits behave exactly like in-memory cache
  /// hits in reports and counters -- in transparent mode they are
  /// invisible, preserving the byte-identity contract.
  void setOutcomeStore(TaskOutcomeStore *Store) { OutcomeStore = Store; }
  TaskOutcomeStore *outcomeStore() const { return OutcomeStore; }

  /// Lifetime hit/miss/eviction counters of the pipeline-outcome cache.
  DriverCacheCounters pipelineCacheCounters() const;
  /// Lifetime hit/miss/eviction counters of the problem-result cache.
  DriverCacheCounters problemCacheCounters() const;

  /// Bounds the base-function registry to \p MaxBases retained bases
  /// (LRU eviction; 0 removes the bound).  Bases are O(function + graph)
  /// bytes each -- far heavier than cached outcomes -- so a long-lived
  /// process must set a bound.
  void setBaseRegistryCapacity(size_t MaxBases);
  /// True when a base is currently retained under \p Key (no recency
  /// update; the server's base-not-found check).
  bool hasBase(uint64_t Key) const;
  /// Lifetime delta hit/fallback counters and registry occupancy.
  DriverDeltaCounters deltaCounters() const;

  /// Aggregated buffer-checkout accounting over every per-worker
  /// workspace, cumulative across run()/solveProblems() calls.  Feeds
  /// `layra-bench --workspace-stats`.  NOT part of the determinism
  /// contract: the reuse/allocated split depends on the thread count and
  /// the steal schedule, which is why it lives outside DriverReport.
  WorkspaceStats workspaceStats() const;

private:
  ThreadPool Pool;
  /// One workspace per pool participant (slot-indexed, see
  /// ThreadPool::parallelForWorker): consecutive tasks on a worker reuse
  /// the same arenas.  Workspaces persist across run() calls.
  std::vector<std::unique_ptr<SolverWorkspace>> Workspaces;
  /// hashPipelineTask key -> outcome.  Touched only from the serial
  /// expansion/commit phases, never from pool workers.
  LruCache<uint64_t, TaskOutcome> PipelineCache;
  /// hashProblem+allocator key -> result, for solveProblems.  Entries are
  /// retained until evicted by the capacity bound (unbounded by default) so
  /// a (problem, allocator, R) pair recurring in a later call is free; the
  /// cost is O(vertices) bytes per unique instance, a few MB across the
  /// largest figure sweep.  Callers for whom that never pays can simply use
  /// a shorter-lived driver.
  LruCache<uint64_t, AllocationResult> ProblemCache;
  /// Optional persistence layer under PipelineCache (not owned).
  TaskOutcomeStore *OutcomeStore = nullptr;
  /// Base-function registry: RetainKey -> retained round-0 artifacts.
  /// shared_ptr so an in-flight run's base survives an eviction the same
  /// run's phase-4 inserts trigger.  Touched only from the serial
  /// expansion/commit phases, so recency and eviction order -- and with
  /// them which deltas hit -- are deterministic across thread counts.
  LruCache<uint64_t, std::shared_ptr<const DeltaBase>> BaseRegistry;
  /// Lifetime hit/miss tallies (the caches themselves track evictions).
  uint64_t PipelineHits = 0, PipelineMisses = 0;
  uint64_t ProblemHits = 0, ProblemMisses = 0;
  uint64_t DeltaHits = 0, DeltaFallbacks = 0;
};

} // namespace layra

#endif // LAYRA_DRIVER_BATCHDRIVER_H
