//===- driver/BatchDriver.cpp - Parallel batch allocation ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include "alloc/OptimalBnB.h"
#include "ir/SsaBuilder.h"
#include "obs/Metrics.h"
#include "support/Compiler.h"
#include "support/Random.h"
#include "support/Statistics.h"

#include <chrono>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace layra;

//===----------------------------------------------------------------------===//
// Content hashing
//===----------------------------------------------------------------------===//

namespace {

/// Mixes \p Value into running hash \p H (SplitMix64 avalanche; same
/// primitive the suite generators use for seed derivation).
uint64_t mix(uint64_t H, uint64_t Value) {
  uint64_t State = H ^ (Value + 0x9e3779b97f4a7c15ULL);
  return splitMix64(State);
}

uint64_t mixString(uint64_t H, const std::string &S) {
  H = mix(H, S.size());
  for (unsigned char C : S)
    H = mix(H, C);
  return H;
}

double toMs(std::chrono::steady_clock::duration D) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             D)
      .count();
}

/// Publishes the driver's workspace-arena and pipeline-cache accounting as
/// gauges in the global metrics registry; `layra-bench --workspace-stats`
/// and `layra-serve --metrics-dump` read them back from a snapshot.
void publishDriverGauges(const WorkspaceStats &WS,
                         const DriverCacheCounters &Cache) {
  MetricsRegistry &M = MetricsRegistry::global();
  M.set(M.gauge("layra.workspace.bytes_reused"), double(WS.BytesReused));
  M.set(M.gauge("layra.workspace.bytes_allocated"), double(WS.BytesAllocated));
  M.set(M.gauge("layra.workspace.acquires"), double(WS.Acquires));
  M.set(M.gauge("layra.workspace.reuse_fraction"), WS.reuseFraction());
  M.set(M.gauge("layra.driver.cache.hits"), double(Cache.Hits));
  M.set(M.gauge("layra.driver.cache.misses"), double(Cache.Misses));
  M.set(M.gauge("layra.driver.cache.evictions"), double(Cache.Evictions));
  M.set(M.gauge("layra.driver.cache.entries"), double(Cache.Entries));
  M.set(M.gauge("layra.driver.cache.capacity"), double(Cache.Capacity));
}

} // namespace

uint64_t layra::hashFunction(const Function &F) {
  uint64_t H = 0x6c617972612d6866ULL; // "layra-hf"
  H = mix(H, F.numValues());
  H = mix(H, F.numBlocks());
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock &Block = F.block(B);
    H = mix(H, Block.LoopDepth);
    H = mix(H, static_cast<uint64_t>(Block.Frequency));
    H = mix(H, Block.Preds.size());
    for (BlockId P : Block.Preds)
      H = mix(H, P);
    H = mix(H, Block.Succs.size());
    for (BlockId S : Block.Succs)
      H = mix(H, S);
    H = mix(H, Block.Instrs.size());
    for (const Instruction &I : Block.Instrs) {
      H = mix(H, static_cast<uint64_t>(I.Op));
      H = mix(H, I.Defs.size());
      for (ValueId V : I.Defs)
        H = mix(H, V);
      H = mix(H, I.Uses.size());
      for (ValueId V : I.Uses)
        H = mix(H, V);
      H = mix(H, static_cast<uint64_t>(static_cast<int64_t>(I.SpillSlot)));
      H = mix(H, I.MemUseSlots.size());
      for (int Slot : I.MemUseSlots)
        H = mix(H, static_cast<uint64_t>(static_cast<int64_t>(Slot)));
    }
  }
  // Register classes partition the values and change every layer's view of
  // the function.  Mixed only when present so every historical
  // (single-class) key -- including the ones committed in golden reports --
  // is preserved bit-for-bit.
  if (F.maxValueClass() > 0) {
    H = mix(H, 0x636c6173736573ULL); // "classes"
    for (ValueId V = 0; V < F.numValues(); ++V)
      H = mix(H, F.valueClass(V));
  }
  return H;
}

uint64_t layra::hashPipelineTask(const Function &F, const TargetDesc &Target,
                                 unsigned NumRegisters,
                                 const PipelineOptions &Options) {
  return hashPipelineTask(hashFunction(F), Target, NumRegisters, Options);
}

uint64_t layra::hashPipelineTask(uint64_t FunctionHash,
                                 const TargetDesc &Target,
                                 unsigned NumRegisters,
                                 const PipelineOptions &Options) {
  return hashPipelineTask(FunctionHash, Target,
                          resolveClassBudgets(Target, NumRegisters, {}),
                          Options);
}

uint64_t layra::hashPipelineTask(uint64_t FunctionHash,
                                 const TargetDesc &Target,
                                 const std::vector<unsigned> &Budgets,
                                 const PipelineOptions &Options) {
  uint64_t H = FunctionHash;
  // The target enters the pipeline only through its cost model, its
  // addressing-mode geometry and its class budgets; the name is cosmetic.
  H = mix(H, static_cast<uint64_t>(Target.LoadCost));
  H = mix(H, static_cast<uint64_t>(Target.StoreCost));
  H = mix(H, Target.MaxMemOperands);
  H = mix(H, static_cast<uint64_t>(Target.MemOperandCost));
  H = mix(H, Budgets.empty() ? 0 : Budgets[0]);
  H = mixString(H, Options.AllocatorName);
  H = mix(H, Options.AffinityBias ? 1 : 0);
  H = mix(H, Options.MaxRounds);
  H = mix(H, Options.FoldMemoryOperands ? 1 : 0);
  // Extra class budgets are mixed only when present, preserving every
  // scalar-era (single-class) key bit-for-bit.
  if (Budgets.size() > 1) {
    H = mix(H, Budgets.size());
    for (size_t C = 1; C < Budgets.size(); ++C)
      H = mix(H, Budgets[C]);
  }
  return H;
}

uint64_t layra::hashProblem(const AllocationProblem &P) {
  uint64_t H = 0x6c617972612d6870ULL; // "layra-hp"
  H = mix(H, P.Budgets[0]);
  // Multi-class identity (extra budgets, vertex classes) is mixed only
  // when present: single-class instances keep their historical keys.
  if (P.multiClass()) {
    H = mix(H, P.Budgets.size());
    for (unsigned C = 1; C < P.Budgets.size(); ++C)
      H = mix(H, P.Budgets[C]);
    for (VertexId V = 0; V < P.graph().numVertices(); ++V)
      H = mix(H, P.classOf(V));
  }
  H = mix(H, P.Chordal ? 1 : 0);
  H = mix(H, P.graph().numVertices());
  for (VertexId V = 0; V < P.graph().numVertices(); ++V) {
    H = mix(H, static_cast<uint64_t>(P.graph().weight(V)));
    NeighborRange Neighbors = P.graph().neighbors(V);
    H = mix(H, Neighbors.size());
    for (VertexId N : Neighbors)
      H = mix(H, N);
  }
  H = mix(H, P.Constraints.size());
  for (const PressureConstraint &K : P.Constraints) {
    H = mix(H, K.Members.size());
    for (VertexId V : K.Members)
      H = mix(H, V);
  }
  // Linear-scan allocators consume the interval layout, which is not
  // derivable from the graph, so it is part of the instance identity.
  if (P.Intervals) {
    H = mix(H, P.Intervals->NumPoints);
    H = mix(H, P.Intervals->Intervals.size());
    for (const LiveInterval &I : P.Intervals->Intervals) {
      H = mix(H, I.V);
      H = mix(H, I.Start);
      H = mix(H, I.End);
      H = mix(H, static_cast<uint64_t>(I.Cost));
    }
  } else {
    H = mix(H, 0xdeadULL);
  }
  return H;
}

//===----------------------------------------------------------------------===//
// BatchDriver
//===----------------------------------------------------------------------===//

BatchDriver::BatchDriver(unsigned Threads) : Pool(Threads) {
  Workspaces.reserve(Pool.numThreads());
  for (unsigned W = 0; W < Pool.numThreads(); ++W)
    Workspaces.push_back(std::make_unique<SolverWorkspace>());
}

WorkspaceStats BatchDriver::workspaceStats() const {
  WorkspaceStats Total;
  for (const auto &WS : Workspaces)
    Total.merge(WS->Stats);
  return Total;
}

void BatchDriver::setCacheCapacity(size_t MaxEntries) {
  PipelineCache.setCapacity(MaxEntries);
  ProblemCache.setCapacity(MaxEntries);
}

DriverCacheCounters BatchDriver::pipelineCacheCounters() const {
  DriverCacheCounters C;
  C.Hits = PipelineHits;
  C.Misses = PipelineMisses;
  C.Evictions = PipelineCache.evictions();
  C.Entries = PipelineCache.size();
  C.Capacity = PipelineCache.capacity();
  return C;
}

DriverCacheCounters BatchDriver::problemCacheCounters() const {
  DriverCacheCounters C;
  C.Hits = ProblemHits;
  C.Misses = ProblemMisses;
  C.Evictions = ProblemCache.evictions();
  C.Entries = ProblemCache.size();
  C.Capacity = ProblemCache.capacity();
  return C;
}

void BatchDriver::setBaseRegistryCapacity(size_t MaxBases) {
  BaseRegistry.setCapacity(MaxBases);
}

bool BatchDriver::hasBase(uint64_t Key) const {
  return BaseRegistry.peek(Key) != nullptr;
}

DriverDeltaCounters BatchDriver::deltaCounters() const {
  DriverDeltaCounters C;
  C.Hits = DeltaHits;
  C.Fallbacks = DeltaFallbacks;
  C.Bases = BaseRegistry.size();
  C.Capacity = BaseRegistry.capacity();
  return C;
}

DriverReport BatchDriver::run(const std::vector<BatchJob> &Jobs,
                              bool CacheTransparent,
                              std::vector<PhaseTotals> *PhaseSink) {
  auto BatchStart = std::chrono::steady_clock::now();

  // A per-call sink needs phase accounting live for the duration of this
  // run even when no one enabled it globally.  The flip is restored on
  // exit; report-visible breakdowns key off WasAccounting (below) so the
  // sink alone never changes report bytes.
  const bool WasAccounting = obs::phaseAccountingEnabled();
  const bool WantSink = PhaseSink != nullptr;
  if (WantSink && !WasAccounting)
    obs::setPhaseAccounting(true);

  DriverReport Report;
  Report.Threads = Pool.numThreads();

  // Phase 1 (serial): generate each distinct named suite once.
  std::map<std::string, Suite> GeneratedSuites;
  for (const BatchJob &Job : Jobs)
    if (!Job.SuiteData && !GeneratedSuites.count(Job.SuiteName))
      GeneratedSuites.emplace(Job.SuiteName, makeSuite(Job.SuiteName));

  // Phase 2 (serial): expand jobs into tasks and classify hit/miss against
  // the persistent cache plus this batch's first occurrences.  Doing this
  // before any parallel work keeps the classification thread-independent.
  // Outcomes of persistent hits are copied out *now*: by the time phase 4
  // assembles results, a bounded cache may already have evicted them.
  struct PendingTask {
    size_t JobIndex;
    const Function *F;
    const std::string *Program;
    uint64_t Key;
    bool PersistentHit; ///< Key was in the cache before this run.
    bool BatchDup;      ///< An earlier task of this run has the same key.
    TaskOutcome CachedOut; ///< Meaningful only when PersistentHit.
    size_t UniqueIndex; ///< Slot in the unique-solve arrays.
  };
  std::vector<PendingTask> Pending;
  std::unordered_map<uint64_t, size_t> UniqueOf; // Key -> unique slot.
  std::vector<size_t> UniqueToPending;
  std::unordered_set<uint64_t> BatchSeen; // Every key met this run.
  // Outcomes pulled from the persistent store this run, read at most once
  // per key (the map dedupes repeats) and committed to the memory cache in
  // phase 4 in load order, so eviction order stays deterministic.
  std::unordered_map<uint64_t, TaskOutcome> StoreLoaded;
  std::vector<uint64_t> StoreLoadOrder;

  // Delta bookkeeping, all decided in this serial phase.  Bases and
  // captures attach to *unique solves* (first occurrence of a key): the
  // solve is byte-equal to a plain one, so batch twins and cached tasks
  // share its outcome unchanged.  A retained-but-cached instance still
  // needs a capture-only solve (below) so "request accepted => base
  // registered" survives warm restarts whose outcomes come from disk.
  std::vector<std::shared_ptr<const DeltaBase>> JobBases(Jobs.size());
  std::unordered_set<uint64_t> RetainSeen;
  std::vector<const DeltaBase *> UniqueBase;
  std::vector<char> UniqueWantBase;
  std::vector<std::shared_ptr<DeltaBase>> UniqueCapture;
  std::vector<uint64_t> UniqueCaptureKey;
  struct CaptureSolve {
    size_t PendingIndex;
    std::shared_ptr<DeltaBase> Capture;
    uint64_t Key;
  };
  std::vector<CaptureSolve> CaptureSolves;

  // Function pointers are stable for the duration of run() (suites live in
  // GeneratedSuites or in the caller's SuiteData), so each function's IR is
  // hashed once even when a sweep references it from many jobs.
  std::unordered_map<const Function *, uint64_t> FunctionHashes;
  auto HashOf = [&](const Function &F) {
    auto It = FunctionHashes.find(&F);
    if (It != FunctionHashes.end())
      return It->second;
    uint64_t H = hashFunction(F);
    FunctionHashes.emplace(&F, H);
    return H;
  };
  // One store read per distinct key per run; repeats are served from the
  // StoreLoaded snapshot so a slow store is touched O(unique keys) times.
  auto LookupStore = [&](uint64_t Key, TaskOutcome &Out) {
    auto Loaded = StoreLoaded.find(Key);
    if (Loaded != StoreLoaded.end()) {
      Out = Loaded->second;
      return true;
    }
    TaskOutcome FromStore;
    if (!OutcomeStore->lookup(Key, FromStore))
      return false;
    StoreLoaded.emplace(Key, FromStore);
    StoreLoadOrder.push_back(Key);
    Out = FromStore;
    return true;
  };

  Report.Jobs.resize(Jobs.size());
  // Per-class budgets of each job, resolved once (class 0 = NumRegisters,
  // others architectural, --class-regs overrides applied).
  std::vector<std::vector<unsigned>> JobBudgets(Jobs.size());
  for (size_t JI = 0; JI < Jobs.size(); ++JI) {
    const BatchJob &Job = Jobs[JI];
    const Suite &S =
        Job.SuiteData ? *Job.SuiteData : GeneratedSuites.at(Job.SuiteName);
    // The report must stay valid after the caller's Suite dies: snapshot
    // the resolved label and drop the borrowed pointer.
    Report.Jobs[JI].Job = Job;
    Report.Jobs[JI].Job.SuiteData = nullptr;
    if (Report.Jobs[JI].Job.SuiteName.empty())
      Report.Jobs[JI].Job.SuiteName = S.Name;
    std::string BudgetError;
    JobBudgets[JI] = resolveClassBudgets(Job.Target, Job.NumRegisters,
                                         Job.ClassRegs, &BudgetError);
    if (JobBudgets[JI].empty())
      layraFatalError("invalid class-regs override (front ends validate "
                      "before building jobs)");
    Report.Jobs[JI].Job.Budgets = JobBudgets[JI];
    assert(!(Job.BaseKey && Job.RetainKey) &&
           "a job either consumes a base or becomes one");
    // Resolve this job's base now (serial find, so registry recency and
    // with it LRU eviction order stay deterministic).  The shared_ptr
    // copy keeps the base alive even if this run's own phase-4 inserts
    // evict it from the registry.
    const DeltaBase *JobBase = nullptr;
    if (Job.BaseKey)
      if (const std::shared_ptr<const DeltaBase> *E =
              BaseRegistry.find(Job.BaseKey)) {
        JobBases[JI] = *E;
        JobBase = JobBases[JI].get();
      }
    // Retain at most one capture per key per run; an already-registered
    // key just has its recency refreshed.
    bool WantCapture = false;
    if (Job.RetainKey && !RetainSeen.count(Job.RetainKey) &&
        BaseRegistry.find(Job.RetainKey) == nullptr) {
      WantCapture = true;
      RetainSeen.insert(Job.RetainKey);
    }
    for (const SuiteProgram &Prog : S.Programs)
      for (const Function &F : Prog.Functions) {
        PendingTask T;
        T.JobIndex = JI;
        T.F = &F;
        T.Program = &Prog.Name;
        // Instances are equated purely by 64-bit content hash: at n tasks
        // the collision odds are ~n^2/2^65 (~1e-13 for n = 100k), which we
        // accept rather than storing canonical instances for re-check.
        T.Key = hashPipelineTask(HashOf(F), Job.Target, JobBudgets[JI],
                                 Job.Options);
        T.BatchDup = !BatchSeen.insert(T.Key).second;
        T.UniqueIndex = ~size_t(0);
        // find() marks the entry most recently used; lookups never insert,
        // so no eviction can happen before the phase-4 commit.
        if (const TaskOutcome *Hit = PipelineCache.find(T.Key)) {
          T.PersistentHit = true;
          T.CachedOut = *Hit;
        } else if (OutcomeStore && LookupStore(T.Key, T.CachedOut)) {
          // A store hit is a persistent hit the memory cache merely
          // forgot (or never saw -- a fresh process warm-starting from
          // disk); phase 4 re-seats it in the memory cache.
          T.PersistentHit = true;
        } else {
          T.PersistentHit = false;
          auto Known = UniqueOf.find(T.Key);
          if (Known != UniqueOf.end()) {
            T.UniqueIndex = Known->second;
          } else {
            T.UniqueIndex = UniqueOf.size();
            UniqueOf.emplace(T.Key, T.UniqueIndex);
            UniqueToPending.push_back(Pending.size());
            UniqueBase.push_back(JobBase);
            UniqueWantBase.push_back(Job.BaseKey != 0);
            UniqueCapture.push_back(nullptr);
            UniqueCaptureKey.push_back(0);
          }
        }
        if (WantCapture) {
          WantCapture = false; // The job's first task becomes the base.
          auto Slot = UniqueOf.find(T.Key);
          if (Slot != UniqueOf.end() && !UniqueCapture[Slot->second]) {
            // The instance is solved this run anyway; capture rides along
            // on that solve for free.
            UniqueCapture[Slot->second] = std::make_shared<DeltaBase>();
            UniqueCaptureKey[Slot->second] = Job.RetainKey;
          } else {
            // Cached instance (or its solve already captures another
            // key): schedule a dedicated capture-only solve.  The report
            // still uses the cached outcome -- identical bytes, since the
            // outcome is a pure function of the instance.
            CaptureSolves.push_back(
                {Pending.size(), std::make_shared<DeltaBase>(),
                 Job.RetainKey});
          }
        }
        if (T.PersistentHit || T.BatchDup)
          ++PipelineHits;
        else
          ++PipelineMisses;
        Pending.push_back(T);
      }
  }

  // Phase 3 (parallel): solve each unique instance once.  Every worker
  // writes only its own slot; the library itself is deterministic, and a
  // workspace carries only buffer capacity, never state, so slot-local
  // workspace reuse cannot leak one task's results into another's.
  std::vector<TaskOutcome> Outcomes(UniqueToPending.size());
  std::vector<double> SolveMs(UniqueToPending.size(), 0);
  // Sampled once so a mid-run flip cannot leave half-collected breakdowns.
  const bool CollectPhases = WasAccounting || WantSink;
  std::vector<PhaseTotals> TaskPhases(CollectPhases ? UniqueToPending.size()
                                                    : 0);
  std::vector<char> UniqueUsedDelta(UniqueToPending.size(), 0);
  Pool.parallelForWorker(UniqueToPending.size(), [&](size_t I,
                                                     unsigned Slot) {
    const PendingTask &T = Pending[UniqueToPending[I]];
    const BatchJob &Job = Jobs[T.JobIndex];
    // Tasks run serially on a worker, so the thread-local phase totals
    // delta across this task is exactly this task's breakdown.
    PhaseTotals Before;
    if (CollectPhases)
      Before = obs::threadPhaseTotals();
    auto Start = std::chrono::steady_clock::now();
    SsaConversion Ssa = convertToSsa(*T.F);
    PipelineDeltaContext Delta;
    Delta.Base = UniqueBase[I];
    Delta.Capture = UniqueCapture[I].get();
    PipelineResult R =
        runAllocationPipeline(Ssa.Ssa, Job.Target, JobBudgets[T.JobIndex],
                              Job.Options, Workspaces[Slot].get(), &Delta);
    UniqueUsedDelta[I] = Delta.UsedDelta ? 1 : 0;
    if (CollectPhases) {
      const PhaseTotals &After = obs::threadPhaseTotals();
      for (unsigned P = 0; P < kNumPhases; ++P) {
        TaskPhases[I].Ms[P] = After.Ms[P] - Before.Ms[P];
        TaskPhases[I].Count[P] = After.Count[P] - Before.Count[P];
      }
    }
    TaskOutcome &Out = Outcomes[I];
    Out.SpillCost = R.TotalSpillCost;
    Out.NumLoads = R.Spills.NumLoads;
    Out.NumStores = R.Spills.NumStores;
    Out.LoadsFolded = R.LoadsFolded;
    Out.Rounds = R.Rounds;
    Out.FinalMaxLive = R.FinalMaxLive;
    Out.Fits = R.Fits;
    SolveMs[I] = toMs(std::chrono::steady_clock::now() - Start);
  });
  // Capture-only solves for retained instances whose outcome was already
  // cached: nothing of these runs enters the report (outcomes are pure
  // functions of the instance, so re-solving adds no information), they
  // only populate the base registry.
  if (!CaptureSolves.empty())
    Pool.parallelForWorker(CaptureSolves.size(), [&](size_t I,
                                                     unsigned Slot) {
      const PendingTask &T = Pending[CaptureSolves[I].PendingIndex];
      const BatchJob &Job = Jobs[T.JobIndex];
      SsaConversion Ssa = convertToSsa(*T.F);
      PipelineDeltaContext Delta;
      Delta.Capture = CaptureSolves[I].Capture.get();
      runAllocationPipeline(Ssa.Ssa, Job.Target, JobBudgets[T.JobIndex],
                            Job.Options, Workspaces[Slot].get(), &Delta);
    });
  // All spans are closed once the pool drains; restore the global flip
  // before anything else can observe it.
  if (WantSink && !WasAccounting)
    obs::setPhaseAccounting(false);

  // Phase 4 (serial): commit outcomes to the cache and assemble the
  // reports in expansion order.  Results are read from the phase-2/3
  // snapshots, never from the cache, so a small capacity bound can evict
  // entries this very batch produced without corrupting the report.
  uint64_t EvictionsBefore = PipelineCache.evictions();
  // Disk-loaded outcomes re-enter the memory cache first (in load order),
  // then this run's solves; both flow through the same serial insert path
  // so a bounded capacity evicts deterministically.  Newly solved
  // outcomes also flow down into the persistent store.
  for (uint64_t Key : StoreLoadOrder)
    PipelineCache.insert(Key, StoreLoaded.at(Key));
  for (size_t I = 0; I < UniqueToPending.size(); ++I) {
    PipelineCache.insert(Pending[UniqueToPending[I]].Key, Outcomes[I]);
    if (OutcomeStore)
      OutcomeStore->store(Pending[UniqueToPending[I]].Key, Outcomes[I]);
  }

  // Delta commit (serial): tally hits/fallbacks over this run's solved
  // tasks and register captured bases in expansion order, so registry
  // contents and LRU eviction order are thread-count independent.
  // Incomplete captures (no liveness: the pipeline never reached a
  // round-0 build, e.g. MaxRounds quirks) are dropped rather than
  // registered as unusable bases.
  for (size_t I = 0; I < UniqueToPending.size(); ++I) {
    if (UniqueWantBase[I])
      ++(UniqueUsedDelta[I] ? DeltaHits : DeltaFallbacks);
    if (UniqueCapture[I] && UniqueCapture[I]->Live)
      BaseRegistry.insert(UniqueCaptureKey[I], std::move(UniqueCapture[I]));
  }
  for (CaptureSolve &C : CaptureSolves)
    if (C.Capture->Live)
      BaseRegistry.insert(C.Key, std::move(C.Capture));

  std::vector<std::vector<double>> JobSolveMs(Jobs.size());
  std::vector<PhaseTotals> JobPhases(CollectPhases ? Jobs.size() : 0);
  for (const PendingTask &T : Pending) {
    JobReport &JR = Report.Jobs[T.JobIndex];
    // Phase breakdowns, like WallMs, cover only the tasks actually solved
    // in this run (cache hits and batch twins cost no solver time).
    if (CollectPhases && !T.PersistentHit && !T.BatchDup)
      for (unsigned P = 0; P < kNumPhases; ++P) {
        JobPhases[T.JobIndex].Ms[P] += TaskPhases[T.UniqueIndex].Ms[P];
        JobPhases[T.JobIndex].Count[P] += TaskPhases[T.UniqueIndex].Count[P];
      }
    TaskResult Result;
    Result.Program = *T.Program;
    Result.Function = T.F->name();
    Result.Key = T.Key;
    // A transparent report describes what a fresh driver would have said:
    // only duplicates *within* this run count as hits.
    Result.CacheHit =
        CacheTransparent ? T.BatchDup : (T.PersistentHit || T.BatchDup);
    Result.Out = T.PersistentHit ? T.CachedOut : Outcomes[T.UniqueIndex];
    if (!T.PersistentHit && !T.BatchDup) {
      Result.WallMs = SolveMs[T.UniqueIndex];
      JobSolveMs[T.JobIndex].push_back(Result.WallMs);
    }
    JR.TotalSpillCost += Result.Out.SpillCost;
    JR.TotalLoads += Result.Out.NumLoads;
    JR.TotalStores += Result.Out.NumStores;
    JR.TotalFolded += Result.Out.LoadsFolded;
    JR.TotalRounds += Result.Out.Rounds;
    JR.FunctionsFit += Result.Out.Fits ? 1 : 0;
    JR.CacheHits += Result.CacheHit ? 1 : 0;
    JR.WallMsTotal += Result.WallMs;
    JR.Tasks.push_back(std::move(Result));
  }
  // Report-visible breakdowns only when accounting was globally on; the
  // per-call sink gets its copy regardless.  Keeping the two consumers
  // separate is what lets a traced request's report stay byte-identical
  // to an untraced one's.
  if (WasAccounting)
    for (size_t JI = 0; JI < Jobs.size(); ++JI) {
      JobReport &JR = Report.Jobs[JI];
      JR.PhaseMs.assign(JobPhases[JI].Ms, JobPhases[JI].Ms + kNumPhases);
      JR.PhaseCount.assign(JobPhases[JI].Count,
                           JobPhases[JI].Count + kNumPhases);
    }
  if (WantSink)
    *PhaseSink = std::move(JobPhases);
  for (size_t JI = 0; JI < Jobs.size(); ++JI) {
    SampleSummary Summary = summarize(std::move(JobSolveMs[JI]));
    Report.Jobs[JI].WallMsP50 = Summary.Median;
    Report.Jobs[JI].WallMsP95 = Summary.P95;
    Report.Jobs[JI].WallMsMax = Summary.Max;
    Report.CacheHits += Report.Jobs[JI].CacheHits;
  }
  // Transparent mode reports the cache a fresh unbounded driver would end
  // up with: one entry per distinct key, nothing evicted.
  Report.CacheEntries =
      CacheTransparent ? BatchSeen.size() : PipelineCache.size();
  Report.CacheEvictions =
      CacheTransparent ? 0 : PipelineCache.evictions() - EvictionsBefore;
  Report.WallMs = toMs(std::chrono::steady_clock::now() - BatchStart);
  publishDriverGauges(workspaceStats(), pipelineCacheCounters());
  return Report;
}

std::vector<AllocationResult>
BatchDriver::solveProblems(const std::vector<const AllocationProblem *> &Problems,
                           const std::string &AllocatorName,
                           uint64_t OptimalNodeLimit, std::string *Error) {
  bool IsOptimal = AllocatorName == "optimal";

  // Validate the allocator name and allocator-vs-problem compatibility up
  // front, on the calling thread: a bad name or an interval-consuming
  // allocator handed a graph-only instance must surface as a per-call
  // error (or, for legacy callers without \p Error, a fatal *here*), never
  // as a layraFatalError inside a pool worker.
  auto Fail = [&](std::string Message) -> std::vector<AllocationResult> {
    if (!Error)
      layraFatalError(Message.c_str());
    *Error = std::move(Message);
    return {};
  };
  if (Error)
    Error->clear();
  if (!IsOptimal) {
    std::unique_ptr<Allocator> Probe = makeAllocator(AllocatorName);
    if (!Probe) {
      std::string Known;
      for (const std::string &N : allAllocatorNames())
        Known += " " + N;
      return Fail("unknown allocator '" + AllocatorName + "' (known:" +
                  Known + ")");
    }
    if (Probe->requiresIntervals())
      for (size_t I = 0; I < Problems.size(); ++I)
        if (!Problems[I]->Intervals)
          return Fail("allocator '" + AllocatorName +
                      "' requires live intervals, but problem #" +
                      std::to_string(I) +
                      " is graph-only (no interval table); pick a "
                      "graph-based allocator or an interval-bearing suite");
  }

  // Serial classification, exactly as in run(): first occurrence of a key
  // solves, later ones share.
  uint64_t Salt = mixString(0x6c617972612d7370ULL, AllocatorName); // "la-sp"
  // The node limit shapes results only for the branch-and-bound solver;
  // keying it for other allocators would needlessly split their caches.
  Salt = mix(Salt, IsOptimal ? OptimalNodeLimit : 0);
  // Persistent-cache hits are copied out during classification: a bounded
  // cache may evict them before the final assembly below.
  std::vector<AllocationResult> Results(Problems.size());
  std::vector<uint64_t> Keys(Problems.size());
  std::vector<size_t> ResultUnique(Problems.size(), ~size_t(0));
  std::vector<size_t> UniqueToInput;
  std::unordered_map<uint64_t, size_t> UniqueOf;
  for (size_t I = 0; I < Problems.size(); ++I) {
    // Same accepted hash-collision tradeoff as the pipeline cache above.
    Keys[I] = mix(Salt, hashProblem(*Problems[I]));
    if (const AllocationResult *Hit = ProblemCache.find(Keys[I])) {
      Results[I] = *Hit;
      ++ProblemHits;
      continue;
    }
    auto Known = UniqueOf.find(Keys[I]);
    if (Known != UniqueOf.end()) {
      ResultUnique[I] = Known->second;
      ++ProblemHits;
    } else {
      ResultUnique[I] = UniqueToInput.size();
      UniqueOf.emplace(Keys[I], UniqueToInput.size());
      UniqueToInput.push_back(I);
      ++ProblemMisses;
    }
  }

  std::vector<AllocationResult> Unique(UniqueToInput.size());
  Pool.parallelForWorker(UniqueToInput.size(), [&](size_t U, unsigned Slot) {
    const AllocationProblem &P = *Problems[UniqueToInput[U]];
    SolverWorkspace *WS = Workspaces[Slot].get();
    if (IsOptimal) {
      OptimalBnBAllocator BnB(OptimalNodeLimit);
      Unique[U] = BnB.allocate(P, WS);
      return;
    }
    // Validated before the pool launched; this cannot fail here.
    std::unique_ptr<Allocator> A = makeAllocator(AllocatorName);
    assert(A && "allocator name validated before dispatch");
    // allocateProblem: single-class problems take the direct path,
    // multi-class ones the exact per-class decomposition.
    Unique[U] = A->allocateProblem(P, WS);
  });

  for (size_t I = 0; I < Problems.size(); ++I)
    if (ResultUnique[I] != ~size_t(0))
      Results[I] = Unique[ResultUnique[I]];
  for (size_t U = 0; U < UniqueToInput.size(); ++U)
    ProblemCache.insert(Keys[UniqueToInput[U]], std::move(Unique[U]));
  return Results;
}
