//===- driver/ReportIO.cpp - Driver report serializers ---------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "driver/ReportIO.h"

#include "support/Table.h"

using namespace layra;

/// Rounds a timing to the microsecond so serialized reports do not carry
/// meaningless sub-ns digits.
static double roundMs(double Ms) {
  return static_cast<double>(static_cast<long long>(Ms * 1000.0 + 0.5)) /
         1000.0;
}

static JsonValue jobToJson(const JobReport &JR, bool IncludeTiming,
                           bool IncludeTasks) {
  const BatchJob &Job = JR.Job;
  JsonValue Out = JsonValue::object();
  Out.set("suite", Job.SuiteName);
  Out.set("target", Job.Target.Name);
  Out.set("regs", Job.NumRegisters);
  // Per-class budgets appear only for multi-class targets, so every
  // single-class report -- the whole historical schema -- stays
  // byte-identical.
  if (Job.Budgets.size() > 1) {
    JsonValue Classes = JsonValue::object();
    for (unsigned C = 0; C < Job.Budgets.size(); ++C)
      Classes.set(Job.Target.regClass(C).Name, Job.Budgets[C]);
    Out.set("class_regs", std::move(Classes));
  }
  Out.set("allocator", Job.Options.AllocatorName);
  Out.set("affinity_bias", Job.Options.AffinityBias);
  Out.set("fold_mem_operands", Job.Options.FoldMemoryOperands);
  Out.set("max_rounds", Job.Options.MaxRounds);
  Out.set("functions", static_cast<unsigned long long>(JR.Tasks.size()));
  Out.set("functions_fit", JR.FunctionsFit);
  Out.set("cache_hits", JR.CacheHits);
  Out.set("total_spill_cost", static_cast<long long>(JR.TotalSpillCost));
  Out.set("loads", static_cast<unsigned long long>(JR.TotalLoads));
  Out.set("stores", static_cast<unsigned long long>(JR.TotalStores));
  Out.set("loads_folded", static_cast<unsigned long long>(JR.TotalFolded));
  Out.set("rounds", static_cast<unsigned long long>(JR.TotalRounds));
  if (IncludeTiming) {
    JsonValue Wall = JsonValue::object();
    Wall.set("total", roundMs(JR.WallMsTotal));
    Wall.set("p50", roundMs(JR.WallMsP50));
    Wall.set("p95", roundMs(JR.WallMsP95));
    Wall.set("max", roundMs(JR.WallMsMax));
    Out.set("wall_ms", std::move(Wall));
    // Per-phase self-time breakdown, present only when phase accounting
    // was on during the run.  Gated on IncludeTiming like every timing
    // field, so --no-timing reports and goldens keep their bytes.
    if (!JR.PhaseMs.empty()) {
      JsonValue Phases = JsonValue::object();
      for (unsigned P = 0; P < kNumPhases; ++P) {
        if (JR.PhaseCount[P] == 0)
          continue;
        JsonValue One = JsonValue::object();
        One.set("ms", roundMs(JR.PhaseMs[P]));
        One.set("count", static_cast<unsigned long long>(JR.PhaseCount[P]));
        Phases.set(phaseName(Phase(P)), std::move(One));
      }
      Out.set("phase_ms", std::move(Phases));
    }
  }
  if (IncludeTasks) {
    JsonValue Tasks = JsonValue::array();
    for (const TaskResult &T : JR.Tasks) {
      char KeyHex[19];
      std::snprintf(KeyHex, sizeof(KeyHex), "%016llx",
                    static_cast<unsigned long long>(T.Key));
      JsonValue Task = JsonValue::object();
      Task.set("program", T.Program);
      Task.set("function", T.Function);
      Task.set("key", KeyHex);
      Task.set("cache_hit", T.CacheHit);
      Task.set("spill_cost", static_cast<long long>(T.Out.SpillCost));
      Task.set("loads", T.Out.NumLoads);
      Task.set("stores", T.Out.NumStores);
      Task.set("loads_folded", T.Out.LoadsFolded);
      Task.set("rounds", T.Out.Rounds);
      Task.set("max_live", T.Out.FinalMaxLive);
      Task.set("fits", T.Out.Fits);
      if (IncludeTiming)
        Task.set("wall_ms", roundMs(T.WallMs));
      Tasks.push(std::move(Task));
    }
    Out.set("tasks", std::move(Tasks));
  }
  return Out;
}

JsonValue layra::driverReportToJson(const DriverReport &Report,
                                    bool IncludeTiming, bool IncludeTasks) {
  JsonValue Out = JsonValue::object();
  Out.set("schema", "layra-driver-report/v1");
  Out.set("threads", Report.Threads);
  Out.set("cache_entries", static_cast<unsigned long long>(Report.CacheEntries));
  Out.set("cache_hits", static_cast<unsigned long long>(Report.CacheHits));
  Out.set("cache_evictions",
          static_cast<unsigned long long>(Report.CacheEvictions));
  if (IncludeTiming)
    Out.set("wall_ms", roundMs(Report.WallMs));
  JsonValue Jobs = JsonValue::array();
  for (const JobReport &JR : Report.Jobs)
    Jobs.push(jobToJson(JR, IncludeTiming, IncludeTasks));
  Out.set("jobs", std::move(Jobs));
  return Out;
}

void layra::writeDriverReportJson(std::FILE *Out, const DriverReport &Report,
                                  bool IncludeTiming, bool IncludeTasks) {
  driverReportToJson(Report, IncludeTiming, IncludeTasks).write(Out);
}

/// `NAME:N;NAME:N` rendering of a multi-class job's budgets (CSV cell).
static std::string formatClassBudgets(const BatchJob &Job) {
  std::string Out;
  for (unsigned C = 0; C < Job.Budgets.size(); ++C) {
    if (C)
      Out += ";";
    Out += Job.Target.regClass(C).Name;
    Out += ":" + std::to_string(Job.Budgets[C]);
  }
  return Out;
}

void layra::writeDriverReportCsv(std::FILE *Out, const DriverReport &Report,
                                 bool IncludeTiming) {
  // Column names track the JSON schema ("functions_fit" etc.) so one field
  // has one name across serializers.  The class_regs column appears only
  // when some job targets a multi-class machine -- exactly like the JSON
  // field -- so historical single-class CSVs keep their bytes.
  bool AnyMultiClass = false;
  for (const JobReport &JR : Report.Jobs)
    AnyMultiClass |= JR.Job.Budgets.size() > 1;
  std::vector<std::string> Headers{
      "suite",      "target",        "regs",  "allocator",
      "affinity_bias", "fold_mem_operands", "max_rounds",
      "functions",  "functions_fit", "cache_hits", "spill_cost",
      "loads",      "stores",        "loads_folded", "rounds"};
  if (AnyMultiClass)
    Headers.insert(Headers.begin() + 3, "class_regs");
  // Phase columns appear only when some job carries a breakdown (phase
  // accounting on) *and* timing is included, mirroring the JSON field.
  bool AnyPhases = false;
  for (const JobReport &JR : Report.Jobs)
    AnyPhases |= !JR.PhaseMs.empty();
  AnyPhases &= IncludeTiming;
  if (IncludeTiming) {
    Headers.push_back("wall_ms_total");
    Headers.push_back("wall_ms_p50");
    Headers.push_back("wall_ms_p95");
    Headers.push_back("wall_ms_max");
  }
  if (AnyPhases)
    for (unsigned P = 0; P < kNumPhases; ++P)
      Headers.push_back(std::string("phase_ms_") + phaseName(Phase(P)));
  Table T(std::move(Headers));
  for (const JobReport &JR : Report.Jobs) {
    const BatchJob &Job = JR.Job;
    std::vector<std::string> Row{
        Job.SuiteName,
        Job.Target.Name,
        std::to_string(Job.NumRegisters),
        Job.Options.AllocatorName,
        Job.Options.AffinityBias ? "1" : "0",
        Job.Options.FoldMemoryOperands ? "1" : "0",
        std::to_string(Job.Options.MaxRounds),
        std::to_string(JR.Tasks.size()),
        std::to_string(JR.FunctionsFit),
        std::to_string(JR.CacheHits),
        std::to_string(JR.TotalSpillCost),
        std::to_string(JR.TotalLoads),
        std::to_string(JR.TotalStores),
        std::to_string(JR.TotalFolded),
        std::to_string(JR.TotalRounds)};
    if (AnyMultiClass)
      Row.insert(Row.begin() + 3, formatClassBudgets(Job));
    if (IncludeTiming) {
      Row.push_back(Table::num(JR.WallMsTotal));
      Row.push_back(Table::num(JR.WallMsP50));
      Row.push_back(Table::num(JR.WallMsP95));
      Row.push_back(Table::num(JR.WallMsMax));
    }
    if (AnyPhases)
      for (unsigned P = 0; P < kNumPhases; ++P)
        Row.push_back(JR.PhaseMs.empty() ? "0"
                                         : Table::num(JR.PhaseMs[P]));
    T.addRow(std::move(Row));
  }
  T.printCsv(Out);
}

void layra::writeDriverTasksCsv(std::FILE *Out, const DriverReport &Report,
                                bool IncludeTiming) {
  std::vector<std::string> Headers{
      "suite",  "regs",  "allocator",    "program", "function",
      "cache_hit", "spill_cost", "loads", "stores",  "loads_folded",
      "rounds", "max_live", "fits"};
  if (IncludeTiming)
    Headers.push_back("wall_ms");
  Table T(std::move(Headers));
  for (const JobReport &JR : Report.Jobs)
    for (const TaskResult &Task : JR.Tasks) {
      const BatchJob &Job = JR.Job;
      std::vector<std::string> Row{
          Job.SuiteName,
          std::to_string(Job.NumRegisters),
          Job.Options.AllocatorName,
          Task.Program,
          Task.Function,
          Task.CacheHit ? "1" : "0",
          std::to_string(Task.Out.SpillCost),
          std::to_string(Task.Out.NumLoads),
          std::to_string(Task.Out.NumStores),
          std::to_string(Task.Out.LoadsFolded),
          std::to_string(Task.Out.Rounds),
          std::to_string(Task.Out.FinalMaxLive),
          Task.Out.Fits ? "1" : "0"};
      if (IncludeTiming)
        Row.push_back(Table::num(Task.WallMs));
      T.addRow(std::move(Row));
    }
  T.printCsv(Out);
}
