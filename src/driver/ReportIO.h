//===- driver/ReportIO.h - Driver report serializers ------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON and CSV serialization of DriverReport (support/Json.h carries the
/// generic emitter; support/Table.h the CSV renderer).  The JSON schema is
/// versioned ("layra-driver-report/v1") and stable: BENCH_*.json trajectory
/// files and downstream tooling key on it.  Changes within v1 are strictly
/// additive (cache_evictions joined the top level when the caches became
/// bounded); removing or renaming a field requires a version bump.  Timing
/// fields (wall_ms and the per-job percentile block) are the only
/// non-deterministic content and can be omitted wholesale with
/// IncludeTiming = false, which makes the output of two runs over the same
/// jobs byte-identical regardless of thread count.
///
/// The allocation service (service/Server.h) reuses these serializers
/// verbatim: an `allocate` response payload is exactly the bytes
/// writeDriverReportJson() would produce for the same jobs.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_DRIVER_REPORTIO_H
#define LAYRA_DRIVER_REPORTIO_H

#include "driver/BatchDriver.h"
#include "support/Json.h"

#include <cstdio>

namespace layra {

/// Builds the JSON document for \p Report.
/// \param IncludeTiming  emit wall_ms / percentile fields.
/// \param IncludeTasks   emit the per-function task array of every job.
JsonValue driverReportToJson(const DriverReport &Report,
                             bool IncludeTiming = true,
                             bool IncludeTasks = false);

/// Serializes \p Report as JSON to \p Out (trailing newline included).
void writeDriverReportJson(std::FILE *Out, const DriverReport &Report,
                           bool IncludeTiming = true,
                           bool IncludeTasks = false);

/// One CSV row per job: suite, regs, allocator, totals, cache and timing.
void writeDriverReportCsv(std::FILE *Out, const DriverReport &Report,
                          bool IncludeTiming = true);

/// One CSV row per task (function) across all jobs.
void writeDriverTasksCsv(std::FILE *Out, const DriverReport &Report,
                         bool IncludeTiming = true);

} // namespace layra

#endif // LAYRA_DRIVER_REPORTIO_H
