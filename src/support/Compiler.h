//===- support/Compiler.h - Compiler portability helpers --------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability and diagnostics helpers shared by every Layra library.
/// Layra follows the LLVM convention of not using exceptions or RTTI; fatal
/// conditions are reported through \c layraUnreachable / \c layraFatalError.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_COMPILER_H
#define LAYRA_SUPPORT_COMPILER_H

namespace layra {

/// Portable 32-bit population count (std::popcount is C++20; Layra builds
/// as C++17).
inline int layraPopcount(unsigned Value) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcount(Value);
#else
  int Count = 0;
  for (; Value; Value &= Value - 1)
    ++Count;
  return Count;
#endif
}

/// Reports a fatal internal error and aborts.  Used by LAYRA_UNREACHABLE;
/// never returns.
[[noreturn]] void layraUnreachableInternal(const char *Msg, const char *File,
                                           unsigned Line);

/// Reports an unrecoverable error caused by invalid input and aborts.  Unlike
/// LAYRA_UNREACHABLE this is for conditions a user can trigger.
[[noreturn]] void layraFatalError(const char *Msg);

/// Hook invoked (with the message) right before layraFatalError and
/// LAYRA_UNREACHABLE abort -- the last-words mechanism long-running
/// processes use to flush their flight recorder (layra-serve installs
/// one).  The hook must be async-signal-unsafe-free-ish pragmatism:
/// it runs on the failing thread in an already-doomed process, so it
/// should only do simple, non-allocating-if-possible dump work and must
/// not call back into layraFatalError.  Pass nullptr to uninstall;
/// returns the previous hook.
using FatalHook = void (*)(const char *Msg);
FatalHook layraSetFatalHook(FatalHook Hook);

} // namespace layra

/// Marks a point in code which should never be reached.  Prints \p msg and
/// aborts in all build modes: Layra is a research-measurement library, so we
/// always prefer loud failure over undefined behaviour.
#define LAYRA_UNREACHABLE(msg)                                                 \
  ::layra::layraUnreachableInternal(msg, __FILE__, __LINE__)

#endif // LAYRA_SUPPORT_COMPILER_H
