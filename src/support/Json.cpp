//===- support/Json.cpp - Minimal ordered JSON emitter ---------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Compiler.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <clocale>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace layra;

const std::string &JsonValue::stringValue() const {
  static const std::string Empty;
  return K == Kind::String ? StringV : Empty;
}

const JsonValue &JsonValue::at(size_t I) const {
  assert(K == Kind::Array && I < ArrayV.size() && "at() out of range");
  return ArrayV[I];
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &Entry : ObjectV)
    if (Entry.first == Key)
      return &Entry.second;
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const {
  static const std::vector<std::pair<std::string, JsonValue>> Empty;
  return K == Kind::Object ? ObjectV : Empty;
}

const std::vector<JsonValue> &JsonValue::elements() const {
  static const std::vector<JsonValue> Empty;
  return K == Kind::Array ? ArrayV : Empty;
}

JsonValue &JsonValue::push(JsonValue V) {
  assert(K == Kind::Array && "push on a non-array JSON value");
  ArrayV.push_back(std::move(V));
  return *this;
}

JsonValue &JsonValue::set(const std::string &Key, JsonValue V) {
  assert(K == Kind::Object && "set on a non-object JSON value");
  for (auto &Entry : ObjectV)
    if (Entry.first == Key) {
      Entry.second = std::move(V);
      return *this;
    }
  ObjectV.emplace_back(Key, std::move(V));
  return *this;
}

JsonValue &JsonValue::append(std::string Key, JsonValue V) {
  assert(K == Kind::Object && "append on a non-object JSON value");
  ObjectV.emplace_back(std::move(Key), std::move(V));
  return *this;
}

JsonValue &JsonValue::memberAt(size_t I) {
  assert(K == Kind::Object && I < ObjectV.size() && "memberAt out of range");
  return ObjectV[I].second;
}

std::string JsonValue::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Out += Buffer;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

/// Formats \p D deterministically: %.17g round-trips every double, then the
/// precision is trimmed to the shortest form that still parses back equal.
/// JSON is locale-free, so a host application's LC_NUMERIC decimal point
/// (e.g. ',' under de_DE) is normalized back to '.'.
static std::string formatDouble(double D) {
  if (!std::isfinite(D))
    return "null"; // JSON has no Inf/NaN; reports never produce them.
  for (int Precision = 1; Precision <= 17; ++Precision) {
    char Buffer[40];
    std::snprintf(Buffer, sizeof(Buffer), "%.*g", Precision, D);
    // strtod honors the same locale as snprintf, so round-trip first.
    if (std::strtod(Buffer, nullptr) == D) {
      char Point = std::localeconv()->decimal_point[0];
      if (Point != '.')
        for (char *P = Buffer; *P; ++P)
          if (*P == Point)
            *P = '.';
      return Buffer;
    }
  }
  LAYRA_UNREACHABLE("%.17g must round-trip a finite double");
}

void JsonValue::dumpTo(std::string &Out, unsigned Indent,
                       unsigned Depth) const {
  auto NewlineIndent = [&](unsigned D) {
    if (Indent == 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * D, ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(IntV);
    break;
  case Kind::Double:
    Out += formatDouble(DoubleV);
    break;
  case Kind::String:
    Out += '"';
    Out += escape(StringV);
    Out += '"';
    break;
  case Kind::Array: {
    if (ArrayV.empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t I = 0; I < ArrayV.size(); ++I) {
      if (I)
        Out += ',';
      NewlineIndent(Depth + 1);
      ArrayV[I].dumpTo(Out, Indent, Depth + 1);
    }
    NewlineIndent(Depth);
    Out += ']';
    break;
  }
  case Kind::Object: {
    if (ObjectV.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t I = 0; I < ObjectV.size(); ++I) {
      if (I)
        Out += ",";
      NewlineIndent(Depth + 1);
      Out += '"';
      Out += escape(ObjectV[I].first);
      Out += Indent == 0 ? "\":" : "\": ";
      ObjectV[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    NewlineIndent(Depth);
    Out += '}';
    break;
  }
  }
}

std::string JsonValue::dump(unsigned Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

void JsonValue::write(std::FILE *Out, unsigned Indent) const {
  std::string Text = dump(Indent);
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fputc('\n', Out);
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent reader over one text buffer.  Errors record the first
/// failing position; parsing stops immediately (no recovery -- the service
/// rejects the whole request).
class JsonParser {
public:
  JsonParser(std::string_view Text, unsigned MaxDepth)
      : Text(Text), MaxDepth(MaxDepth) {}

  JsonParseResult run() {
    JsonParseResult Result;
    skipWhitespace();
    if (!parseValue(Result.Value, 0))
      return fail(Result);
    skipWhitespace();
    if (Pos != Text.size()) {
      setError("trailing characters after JSON document");
      return fail(Result);
    }
    Result.Ok = true;
    return Result;
  }

private:
  std::string_view Text;
  unsigned MaxDepth;
  size_t Pos = 0;
  std::string Error;
  size_t ErrorPos = 0;

  JsonParseResult fail(JsonParseResult &Result) {
    Result.Ok = false;
    Result.Value = JsonValue();
    Result.Error = Error.empty() ? "malformed JSON" : Error;
    Result.Line = 1;
    Result.Column = 1;
    for (size_t I = 0; I < ErrorPos && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++Result.Line;
        Result.Column = 1;
      } else {
        ++Result.Column;
      }
    }
    return Result;
  }

  void setError(const std::string &Message) {
    // Keep the first (deepest-relevant) error only.
    if (Error.empty()) {
      Error = Message;
      ErrorPos = Pos;
    }
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWhitespace() {
    while (!atEnd()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consumeLiteral(const char *Literal) {
    size_t Len = std::strlen(Literal);
    if (Text.compare(Pos, Len, Literal) != 0) {
      setError(std::string("invalid literal (expected '") + Literal + "')");
      return false;
    }
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth) {
      setError("nesting deeper than the configured limit");
      return false;
    }
    if (atEnd()) {
      setError("unexpected end of input (expected a value)");
      return false;
    }
    switch (peek()) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue(std::move(S));
      return true;
    }
    case 't':
      if (!consumeLiteral("true"))
        return false;
      Out = JsonValue(true);
      return true;
    case 'f':
      if (!consumeLiteral("false"))
        return false;
      Out = JsonValue(false);
      return true;
    case 'n':
      if (!consumeLiteral("null"))
        return false;
      Out = JsonValue();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    ++Pos; // '{'
    Out = JsonValue::object();
    skipWhitespace();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      return true;
    }
    // Duplicate-key handling through JsonValue::set would scan all prior
    // members per insert -- O(n^2) on adversarial network input.  A side
    // index keeps parsing linear while preserving set()'s semantics
    // (last duplicate wins, at the first occurrence's position).
    std::unordered_map<std::string, size_t> KeyIndex;
    while (true) {
      skipWhitespace();
      if (atEnd() || peek() != '"') {
        setError("expected '\"' to begin an object key");
        return false;
      }
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWhitespace();
      if (atEnd() || peek() != ':') {
        setError("expected ':' after object key");
        return false;
      }
      ++Pos;
      skipWhitespace();
      JsonValue Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      auto Known = KeyIndex.find(Key);
      if (Known != KeyIndex.end()) {
        Out.memberAt(Known->second) = std::move(Member);
      } else {
        KeyIndex.emplace(Key, Out.size());
        Out.append(std::move(Key), std::move(Member));
      }
      skipWhitespace();
      if (atEnd()) {
        setError("unterminated object (expected ',' or '}')");
        return false;
      }
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      setError("expected ',' or '}' in object");
      return false;
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    ++Pos; // '['
    Out = JsonValue::array();
    skipWhitespace();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWhitespace();
      JsonValue Element;
      if (!parseValue(Element, Depth + 1))
        return false;
      Out.push(std::move(Element));
      skipWhitespace();
      if (atEnd()) {
        setError("unterminated array (expected ',' or ']')");
        return false;
      }
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      setError("expected ',' or ']' in array");
      return false;
    }
  }

  /// Appends \p Code as UTF-8 to \p Out.
  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  /// Parses the four hex digits of a \\u escape into \p Code.
  bool parseHex4(unsigned &Code) {
    if (Pos + 4 > Text.size()) {
      setError("truncated \\u escape");
      return false;
    }
    Code = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + I];
      unsigned Digit;
      if (C >= '0' && C <= '9')
        Digit = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Digit = static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Digit = static_cast<unsigned>(C - 'A' + 10);
      else {
        setError("invalid hex digit in \\u escape");
        return false;
      }
      Code = Code * 16 + Digit;
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (true) {
      if (atEnd()) {
        setError("unterminated string");
        return false;
      }
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20) {
        setError("unescaped control character in string");
        return false;
      }
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos; // '\\'
      if (atEnd()) {
        setError("unterminated escape sequence");
        return false;
      }
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code;
        if (!parseHex4(Code))
          return false;
        if (Code >= 0xDC00 && Code <= 0xDFFF) {
          Pos -= 6; // Point at the escape, not past it.
          setError("lone low surrogate in \\u escape");
          return false;
        }
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          // High surrogate: a low surrogate escape must follow.
          if (Text.compare(Pos, 2, "\\u") != 0) {
            Pos -= 6;
            setError("high surrogate not followed by \\u escape");
            return false;
          }
          Pos += 2;
          unsigned Low;
          if (!parseHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF) {
            Pos -= 6;
            setError("high surrogate not followed by a low surrogate");
            return false;
          }
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        --Pos;
        setError("invalid escape character");
        return false;
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (!atEnd() && peek() == '-')
      ++Pos;
    // Integer part: "0" alone or a nonzero digit followed by digits
    // (RFC 8259 forbids leading zeros).
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      Pos = Start;
      setError("invalid value");
      return false;
    }
    if (peek() == '0') {
      ++Pos;
      if (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        Pos = Start;
        setError("number has a leading zero");
        return false;
      }
    } else {
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    bool Integral = true;
    if (!atEnd() && peek() == '.') {
      Integral = false;
      ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        setError("expected digits after decimal point");
        return false;
      }
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      Integral = false;
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        setError("expected digits in exponent");
        return false;
      }
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    std::string Token(Text.substr(Start, Pos - Start));
    if (Integral) {
      // strtoll saturates out-of-range values with ERANGE; such inputs
      // fall back to the double representation below instead of erroring,
      // matching common parser behaviour.
      errno = 0;
      char *End = nullptr;
      long long I = std::strtoll(Token.c_str(), &End, 10);
      if (errno == 0 && End && !*End) {
        Out = JsonValue(I);
        return true;
      }
    }
    // strtod honors LC_NUMERIC: under a comma-decimal locale it would
    // stop at the '.' the JSON grammar mandates and silently truncate.
    // Mirror the emitter (formatDouble): translate to the locale's
    // decimal point when the straight parse does not consume the token.
    char *End = nullptr;
    double D = std::strtod(Token.c_str(), &End);
    if (End && *End) {
      char Point = std::localeconv()->decimal_point[0];
      if (Point != '.') {
        std::string Local = Token;
        for (char &C : Local)
          if (C == '.')
            C = Point;
        D = std::strtod(Local.c_str(), nullptr);
      }
    }
    Out = JsonValue(D);
    return true;
  }
};

} // namespace

JsonParseResult layra::parseJson(std::string_view Text, unsigned MaxDepth) {
  return JsonParser(Text, MaxDepth).run();
}
