//===- support/Json.cpp - Minimal ordered JSON emitter ---------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Compiler.h"

#include <cassert>
#include <clocale>
#include <cmath>
#include <cstring>

using namespace layra;

JsonValue &JsonValue::push(JsonValue V) {
  assert(K == Kind::Array && "push on a non-array JSON value");
  ArrayV.push_back(std::move(V));
  return *this;
}

JsonValue &JsonValue::set(const std::string &Key, JsonValue V) {
  assert(K == Kind::Object && "set on a non-object JSON value");
  for (auto &Entry : ObjectV)
    if (Entry.first == Key) {
      Entry.second = std::move(V);
      return *this;
    }
  ObjectV.emplace_back(Key, std::move(V));
  return *this;
}

std::string JsonValue::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Out += Buffer;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

/// Formats \p D deterministically: %.17g round-trips every double, then the
/// precision is trimmed to the shortest form that still parses back equal.
/// JSON is locale-free, so a host application's LC_NUMERIC decimal point
/// (e.g. ',' under de_DE) is normalized back to '.'.
static std::string formatDouble(double D) {
  if (!std::isfinite(D))
    return "null"; // JSON has no Inf/NaN; reports never produce them.
  for (int Precision = 1; Precision <= 17; ++Precision) {
    char Buffer[40];
    std::snprintf(Buffer, sizeof(Buffer), "%.*g", Precision, D);
    // strtod honors the same locale as snprintf, so round-trip first.
    if (std::strtod(Buffer, nullptr) == D) {
      char Point = std::localeconv()->decimal_point[0];
      if (Point != '.')
        for (char *P = Buffer; *P; ++P)
          if (*P == Point)
            *P = '.';
      return Buffer;
    }
  }
  LAYRA_UNREACHABLE("%.17g must round-trip a finite double");
}

void JsonValue::dumpTo(std::string &Out, unsigned Indent,
                       unsigned Depth) const {
  auto NewlineIndent = [&](unsigned D) {
    if (Indent == 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * D, ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(IntV);
    break;
  case Kind::Double:
    Out += formatDouble(DoubleV);
    break;
  case Kind::String:
    Out += '"';
    Out += escape(StringV);
    Out += '"';
    break;
  case Kind::Array: {
    if (ArrayV.empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t I = 0; I < ArrayV.size(); ++I) {
      if (I)
        Out += ',';
      NewlineIndent(Depth + 1);
      ArrayV[I].dumpTo(Out, Indent, Depth + 1);
    }
    NewlineIndent(Depth);
    Out += ']';
    break;
  }
  case Kind::Object: {
    if (ObjectV.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t I = 0; I < ObjectV.size(); ++I) {
      if (I)
        Out += ",";
      NewlineIndent(Depth + 1);
      Out += '"';
      Out += escape(ObjectV[I].first);
      Out += Indent == 0 ? "\":" : "\": ";
      ObjectV[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    NewlineIndent(Depth);
    Out += '}';
    break;
  }
  }
}

std::string JsonValue::dump(unsigned Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

void JsonValue::write(std::FILE *Out, unsigned Indent) const {
  std::string Text = dump(Indent);
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fputc('\n', Out);
}
