//===- support/BitVector.h - Dense fixed-size bit vector --------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bit vector used by the dataflow analyses (liveness) where
/// word-parallel set union dominates the running time.  Mirrors the subset of
/// llvm::BitVector the IR layer needs.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_BITVECTOR_H
#define LAYRA_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace layra {

/// Fixed-size dense bit vector with word-parallel set operations.
class BitVector {
public:
  BitVector() = default;

  explicit BitVector(std::size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  std::size_t size() const { return NumBits; }

  bool test(std::size_t Bit) const {
    assert(Bit < NumBits && "bit index out of range");
    return (Words[Bit >> 6] >> (Bit & 63)) & 1;
  }

  void set(std::size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit >> 6] |= uint64_t(1) << (Bit & 63);
  }

  void reset(std::size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit >> 6] &= ~(uint64_t(1) << (Bit & 63));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Grows or shrinks to \p NewNumBits.  Existing bits below the new size
  /// are preserved; new bits are zero.  Shrinking clears the dropped tail's
  /// partial word so a later grow re-exposes zeroes, matching
  /// llvm::BitVector::resize semantics.
  void resize(std::size_t NewNumBits) {
    Words.resize((NewNumBits + 63) / 64, 0);
    if (NewNumBits < NumBits && (NewNumBits & 63))
      Words[NewNumBits >> 6] &=
          (uint64_t(1) << (NewNumBits & 63)) - 1;
    NumBits = NewNumBits;
  }

  /// Ensures capacity for bit indices below \p MinNumBits without ever
  /// shrinking -- the incremental-growth form addVertex-style call sites
  /// want.
  void growTo(std::size_t MinNumBits) {
    if (MinNumBits > NumBits)
      resize(MinNumBits);
  }

  /// This |= Other.  \returns true if any bit changed.
  bool unionWith(const BitVector &Other) {
    assert(Other.NumBits == NumBits && "bit vector size mismatch");
    bool Changed = false;
    for (std::size_t I = 0; I < Words.size(); ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// This &= ~Other.
  void subtract(const BitVector &Other) {
    assert(Other.NumBits == NumBits && "bit vector size mismatch");
    for (std::size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t Total = 0;
    for (uint64_t W : Words)
      Total += static_cast<std::size_t>(__builtin_popcountll(W));
    return Total;
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Calls \p Fn(index) for every set bit, in increasing index order.
  template <typename CallbackT> void forEach(CallbackT Fn) const {
    for (std::size_t I = 0; I < Words.size(); ++I) {
      uint64_t W = Words[I];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(I * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  /// Collects the set bits into a vector of indices.
  std::vector<unsigned> toIndices() const {
    std::vector<unsigned> Out;
    Out.reserve(count());
    forEach([&](std::size_t Bit) { Out.push_back(static_cast<unsigned>(Bit)); });
    return Out;
  }

private:
  std::size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace layra

#endif // LAYRA_SUPPORT_BITVECTOR_H
