//===- support/Compiler.cpp - Compiler portability helpers ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Compiler.h"

#include <cstdio>
#include <cstdlib>

using namespace layra;

void layra::layraUnreachableInternal(const char *Msg, const char *File,
                                     unsigned Line) {
  std::fprintf(stderr, "layra: UNREACHABLE executed at %s:%u: %s\n", File,
               Line, Msg);
  std::abort();
}

void layra::layraFatalError(const char *Msg) {
  std::fprintf(stderr, "layra: fatal error: %s\n", Msg);
  std::abort();
}
