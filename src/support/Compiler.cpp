//===- support/Compiler.cpp - Compiler portability helpers ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Compiler.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

using namespace layra;

namespace {

// The hook pointer is atomic so an install racing a fatal on another
// thread reads either the old hook or the new one, never a torn value.
std::atomic<FatalHook> GFatalHook{nullptr};

// A hook that itself dies must not recurse into another hook run.
void runFatalHookOnce(const char *Msg) {
  static std::atomic<bool> Ran{false};
  if (Ran.exchange(true))
    return;
  if (FatalHook Hook = GFatalHook.load(std::memory_order_acquire))
    Hook(Msg);
}

} // namespace

FatalHook layra::layraSetFatalHook(FatalHook Hook) {
  return GFatalHook.exchange(Hook, std::memory_order_acq_rel);
}

void layra::layraUnreachableInternal(const char *Msg, const char *File,
                                     unsigned Line) {
  std::fprintf(stderr, "layra: UNREACHABLE executed at %s:%u: %s\n", File,
               Line, Msg);
  runFatalHookOnce(Msg);
  std::abort();
}

void layra::layraFatalError(const char *Msg) {
  std::fprintf(stderr, "layra: fatal error: %s\n", Msg);
  runFatalHookOnce(Msg);
  std::abort();
}
