//===- support/ParseUtil.h - Command-line number parsing --------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict bounded integer parsing shared by the command-line front ends
/// (layra-bench, the fig* binaries).  Raw strtoul silently accepts signs,
/// trailing garbage and wrap-around ("-1" becomes ULONG_MAX), all of which
/// have turned typos into resource exhaustion or silently-wrong reports;
/// this helper rejects them.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_PARSEUTIL_H
#define LAYRA_SUPPORT_PARSEUTIL_H

#include <cctype>
#include <cstdlib>

namespace layra {

/// Parses \p Text as a base-10 unsigned integer in [0, Max] into \p Out.
/// Returns false for empty input, signs, whitespace, trailing garbage or
/// out-of-range values; \p Out is untouched on failure.
inline bool parseBoundedUnsigned(const char *Text, unsigned long Max,
                                 unsigned &Out) {
  if (!Text || !std::isdigit(static_cast<unsigned char>(*Text)))
    return false;
  char *End = nullptr;
  unsigned long Value = std::strtoul(Text, &End, 10);
  if ((End && *End) || Value > Max)
    return false;
  Out = static_cast<unsigned>(Value);
  return true;
}

} // namespace layra

#endif // LAYRA_SUPPORT_PARSEUTIL_H
