//===- support/ParseUtil.h - Command-line number parsing --------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict bounded integer parsing shared by the command-line front ends
/// (layra-bench, the fig* binaries).  Raw strtoul silently accepts signs,
/// trailing garbage and wrap-around ("-1" becomes ULONG_MAX), all of which
/// have turned typos into resource exhaustion or silently-wrong reports;
/// this helper rejects them.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_PARSEUTIL_H
#define LAYRA_SUPPORT_PARSEUTIL_H

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace layra {

/// Parses \p Text as a base-10 unsigned integer in [0, Max] into \p Out.
/// Returns false for empty input, signs, whitespace, trailing garbage or
/// out-of-range values; \p Out is untouched on failure.
inline bool parseBoundedUnsigned(const char *Text, unsigned long Max,
                                 unsigned &Out) {
  if (!Text || !std::isdigit(static_cast<unsigned char>(*Text)))
    return false;
  char *End = nullptr;
  unsigned long Value = std::strtoul(Text, &End, 10);
  if ((End && *End) || Value > Max)
    return false;
  Out = static_cast<unsigned>(Value);
  return true;
}

/// Parses \p Text as a strictly positive plain-decimal real in (0, Max]
/// into \p Out (fractions allowed).  Returns false -- leaving \p Out
/// untouched -- for empty input, signs, trailing garbage, nan/inf, zero
/// or negative values: "-5" must be a clean usage error, not a
/// wrapped-around value.  The grammar is plain decimal only (digits and
/// at most one '.'): strtod's extensions are rejected up front, so
/// "0x10" is an error rather than silently 16 and "1e3" an error rather
/// than 1000.  Used for any positive-real flag -- durations, rates --
/// so each front end names its own bound and error message.
inline bool parsePositiveReal(const char *Text, double Max, double &Out) {
  if (!Text)
    return false;
  bool SawDigit = false, SawDot = false;
  for (const char *P = Text; *P; ++P) {
    if (std::isdigit(static_cast<unsigned char>(*P))) {
      SawDigit = true;
    } else if (*P == '.') {
      if (SawDot)
        return false;
      SawDot = true;
    } else {
      return false; // Rejects hex ("0x10"), exponents ("1e3"), signs, inf.
    }
  }
  if (!SawDigit)
    return false;
  char *End = nullptr;
  double Value = std::strtod(Text, &End);
  if ((End && *End) || !(Value > 0) || Value > Max)
    return false;
  Out = Value;
  return true;
}

/// Historic name for parsePositiveReal, kept for the duration flags that
/// made the grammar: same strictness, seconds-flavoured documentation.
inline bool parsePositiveSeconds(const char *Text, double Max, double &Out) {
  return parsePositiveReal(Text, Max, Out);
}

/// Splits \p Text on commas, dropping empty segments ("a,,b" -> {a, b}).
inline std::vector<std::string> splitCommaList(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t Comma = Text.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Text.size();
    if (Comma > Start)
      Out.push_back(Text.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

/// Parses the register-count grammar shared by the CLI front ends
/// (layra-bench, layra-loadgen): an inclusive range `LO..HI` or a comma
/// list `A,B,C`, every value in [1, Max].  Returns false with \p Error
/// set on any violation; the caller renders usage.
inline bool parseRegList(const std::string &Text, unsigned Max,
                         std::vector<unsigned> &Out, std::string &Error) {
  Out.clear();
  size_t Dots = Text.find("..");
  if (Dots != std::string::npos) {
    unsigned Lo = 0, Hi = 0;
    if (!parseBoundedUnsigned(Text.substr(0, Dots).c_str(), Max, Lo) ||
        !parseBoundedUnsigned(Text.substr(Dots + 2).c_str(), Max, Hi) ||
        Lo == 0 || Hi < Lo) {
      Error = "--regs range must be LO..HI with 1 <= LO <= HI <= " +
              std::to_string(Max);
      return false;
    }
    for (unsigned R = Lo; R <= Hi; ++R)
      Out.push_back(R);
    return true;
  }
  for (const std::string &Item : splitCommaList(Text)) {
    unsigned R = 0;
    if (!parseBoundedUnsigned(Item.c_str(), Max, R) || R == 0) {
      Error = "--regs entries must be integers in [1, " +
              std::to_string(Max) + "]";
      return false;
    }
    Out.push_back(R);
  }
  if (Out.empty()) {
    Error = "--regs must name at least one register count";
    return false;
  }
  return true;
}

/// One `NAME:N` register-class budget override: replace the budget of the
/// named class for a run.  Defined here (the bottom layer) so the CLI
/// grammar below, ir/Target.h's budget resolution and the wire protocol
/// all share one type; front ends validate the names against their
/// target's class table.
struct ClassRegOverride {
  std::string Class;
  unsigned Regs = 0;
};

/// Parses the `--class-regs` grammar shared by the CLI front ends:
/// a comma list of `NAME:N` overrides, e.g. `vfp:8` or `gpr:12,vfp:8`,
/// every N in [1, Max] and every NAME a nonempty class identifier.
/// Returns false with \p Error set on any violation.  Semantic checks --
/// does the target have that class -- stay with the caller.
inline bool parseClassRegList(const std::string &Text, unsigned Max,
                              std::vector<ClassRegOverride> &Out,
                              std::string &Error) {
  Out.clear();
  for (const std::string &Item : splitCommaList(Text)) {
    size_t Colon = Item.find(':');
    if (Colon == std::string::npos || Colon == 0) {
      Error = "--class-regs entries must be NAME:N (got '" + Item + "')";
      return false;
    }
    ClassRegOverride Entry;
    Entry.Class = Item.substr(0, Colon);
    if (!parseBoundedUnsigned(Item.c_str() + Colon + 1, Max, Entry.Regs) ||
        Entry.Regs == 0) {
      Error = "--class-regs counts must be integers in [1, " +
              std::to_string(Max) + "] (got '" + Item + "')";
      return false;
    }
    for (const ClassRegOverride &Prev : Out)
      if (Prev.Class == Entry.Class) {
        Error = "--class-regs names class '" + Entry.Class + "' twice";
        return false;
      }
    Out.push_back(std::move(Entry));
  }
  if (Out.empty()) {
    Error = "--class-regs must name at least one NAME:N override";
    return false;
  }
  return true;
}

} // namespace layra

#endif // LAYRA_SUPPORT_PARSEUTIL_H
