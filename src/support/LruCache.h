//===- support/LruCache.h - Bounded LRU map ---------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A capacity-bounded map with least-recently-used eviction, backing the
/// batch driver's content-hash caches.  A long-lived process (the
/// allocation server) must not grow without limit, and the eviction order
/// must be deterministic so driver reports stay a pure function of the
/// request stream: every find() and insert() here happens in the driver's
/// *serial* phases, so the recency order -- and therefore which entry is
/// evicted -- never depends on thread scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_LRUCACHE_H
#define LAYRA_SUPPORT_LRUCACHE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace layra {

/// Bounded key-value cache with LRU eviction.  Capacity 0 means unbounded
/// (the CLI-sweep default; the server always configures a bound).
template <typename KeyT, typename ValueT> class LruCache {
public:
  explicit LruCache(size_t Capacity = 0) : Cap(Capacity) {}

  /// Entries currently held.
  size_t size() const { return Index.size(); }
  /// Maximum entries held at once; 0 = unbounded.
  size_t capacity() const { return Cap; }
  /// Entries evicted over the cache's lifetime.
  uint64_t evictions() const { return EvictionCount; }

  /// Changes the capacity, evicting the least recently used overflow
  /// immediately.  Setting 0 removes the bound (nothing is evicted).
  void setCapacity(size_t Capacity) {
    Cap = Capacity;
    evictOverflow();
  }

  /// Looks \p Key up and marks it most recently used.  Returns nullptr when
  /// absent.  The pointer stays valid until the entry is evicted.
  ValueT *find(const KeyT &Key) {
    auto It = Index.find(Key);
    if (It == Index.end())
      return nullptr;
    Entries.splice(Entries.begin(), Entries, It->second);
    return &It->second->second;
  }

  /// Looks \p Key up without touching the recency order.
  const ValueT *peek(const KeyT &Key) const {
    auto It = Index.find(Key);
    return It == Index.end() ? nullptr : &It->second->second;
  }

  /// Inserts \p Key (which must not be present) as most recently used and
  /// evicts the least recently used overflow.
  void insert(KeyT Key, ValueT Value) {
    assert(!Index.count(Key) && "inserting a key already in the cache");
    Entries.emplace_front(Key, std::move(Value));
    Index.emplace(std::move(Key), Entries.begin());
    evictOverflow();
  }

  void clear() {
    Entries.clear();
    Index.clear();
  }

private:
  void evictOverflow() {
    if (Cap == 0)
      return;
    while (Index.size() > Cap) {
      Index.erase(Entries.back().first);
      Entries.pop_back();
      ++EvictionCount;
    }
  }

  size_t Cap;
  uint64_t EvictionCount = 0;
  /// Most recently used at the front.
  std::list<std::pair<KeyT, ValueT>> Entries;
  std::unordered_map<KeyT, typename std::list<std::pair<KeyT, ValueT>>::iterator>
      Index;
};

} // namespace layra

#endif // LAYRA_SUPPORT_LRUCACHE_H
