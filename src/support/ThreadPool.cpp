//===- support/ThreadPool.cpp - Work-stealing thread pool ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace layra;

namespace {

/// One participant's task queue.  The owner pops from the front, thieves
/// pop from the back, so owner traversal stays contiguous.
struct TaskDeque {
  std::mutex M;
  std::deque<std::size_t> Tasks;

  bool popFront(std::size_t &Out) {
    std::lock_guard<std::mutex> Lock(M);
    if (Tasks.empty())
      return false;
    Out = Tasks.front();
    Tasks.pop_front();
    return true;
  }

  bool popBack(std::size_t &Out) {
    std::lock_guard<std::mutex> Lock(M);
    if (Tasks.empty())
      return false;
    Out = Tasks.back();
    Tasks.pop_back();
    return true;
  }
};

/// One parallelFor batch: the body, per-participant deques, and the count
/// of indices not yet executed.
struct Batch {
  const std::function<void(std::size_t, unsigned)> *Body = nullptr;
  std::vector<std::unique_ptr<TaskDeque>> Queues;
  std::atomic<std::size_t> Remaining{0};
};

} // namespace

struct ThreadPool::Impl {
  unsigned NumThreads;
  std::vector<std::thread> Workers;

  std::mutex M;
  std::condition_variable WakeCV; // Workers wait here between batches.
  std::condition_variable DoneCV; // parallelFor waits here for completion.
  Batch *Current = nullptr;       // Non-null while a batch is running.
  std::uint64_t Generation = 0;   // Bumped per batch to wake workers.
  unsigned ActiveWorkers = 0;     // Workers inside participate().
  bool Shutdown = false;

  explicit Impl(unsigned Threads) : NumThreads(Threads) {
    for (unsigned I = 1; I < NumThreads; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  /// Drains \p B as participant \p Slot: own queue first, then steal.
  void participate(Batch &B, unsigned Slot) {
    std::size_t NumQueues = B.Queues.size();
    std::size_t Index;
    for (;;) {
      if (B.Queues[Slot]->popFront(Index)) {
        (*B.Body)(Index, Slot);
        B.Remaining.fetch_sub(1, std::memory_order_release);
        continue;
      }
      bool Stole = false;
      for (std::size_t Off = 1; Off < NumQueues && !Stole; ++Off)
        Stole = B.Queues[(Slot + Off) % NumQueues]->popBack(Index);
      if (!Stole)
        return; // Every queue is empty; in-flight tasks belong to others.
      (*B.Body)(Index, Slot);
      B.Remaining.fetch_sub(1, std::memory_order_release);
    }
  }

  void workerLoop(unsigned Slot) {
    std::uint64_t SeenGeneration = 0;
    for (;;) {
      Batch *B = nullptr;
      {
        std::unique_lock<std::mutex> Lock(M);
        WakeCV.wait(Lock, [&] {
          return Shutdown || (Current && Generation != SeenGeneration);
        });
        if (Shutdown)
          return;
        SeenGeneration = Generation;
        B = Current;
        ++ActiveWorkers;
      }
      participate(*B, Slot);
      {
        std::lock_guard<std::mutex> Lock(M);
        --ActiveWorkers;
      }
      DoneCV.notify_all();
    }
  }
};

ThreadPool::ThreadPool(unsigned NumThreads)
    : State(std::make_unique<Impl>(NumThreads == 0 ? defaultThreadCount()
                                                   : NumThreads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(State->M);
    State->Shutdown = true;
  }
  State->WakeCV.notify_all();
  for (std::thread &T : State->Workers)
    T.join();
}

unsigned ThreadPool::numThreads() const { return State->NumThreads; }

unsigned ThreadPool::defaultThreadCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &Body) {
  parallelForWorker(N,
                    [&Body](std::size_t I, unsigned /*Slot*/) { Body(I); });
}

void ThreadPool::parallelForWorker(
    std::size_t N, const std::function<void(std::size_t, unsigned)> &Body) {
  if (N == 0)
    return;
  if (State->NumThreads == 1 || N == 1) {
    // Degenerate inline loop on the calling thread (slot 0).
    for (std::size_t I = 0; I < N; ++I)
      Body(I, 0);
    return;
  }

  Batch B;
  B.Body = &Body;
  std::size_t NumQueues = State->NumThreads;
  B.Queues.reserve(NumQueues);
  for (std::size_t Q = 0; Q < NumQueues; ++Q)
    B.Queues.push_back(std::make_unique<TaskDeque>());
  // Contiguous chunks, the first N % NumQueues one element longer.
  std::size_t Next = 0;
  for (std::size_t Q = 0; Q < NumQueues; ++Q) {
    std::size_t Len = N / NumQueues + (Q < N % NumQueues ? 1 : 0);
    for (std::size_t I = 0; I < Len; ++I)
      B.Queues[Q]->Tasks.push_back(Next++);
  }
  B.Remaining.store(N, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> Lock(State->M);
    State->Current = &B;
    ++State->Generation;
  }
  State->WakeCV.notify_all();

  // The calling thread is participant 0.
  State->participate(B, 0);

  // Wait until every task ran *and* no worker still holds a reference to
  // the batch (a worker that stole the last task may briefly keep scanning
  // the queues after Remaining hits zero).
  {
    std::unique_lock<std::mutex> Lock(State->M);
    State->DoneCV.wait(Lock, [&] {
      return B.Remaining.load(std::memory_order_acquire) == 0 &&
             State->ActiveWorkers == 0;
    });
    State->Current = nullptr;
  }
}
