//===- support/Table.cpp - Fixed-width table printing --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cinttypes>

using namespace layra;

Table::Table(std::vector<std::string> Headers) : Headers(std::move(Headers)) {
  assert(!this->Headers.empty() && "a table needs at least one column");
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row arity mismatch");
  Rows.push_back(std::move(Cells));
}

std::string Table::num(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string Table::num(long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", Value);
  return Buf;
}

std::string Table::percent(double Part, double Whole) {
  if (Whole == 0)
    return "-";
  return num(100.0 * Part / Whole, 1) + "%";
}

void Table::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C)
      std::fprintf(Out, "%s%-*s", C == 0 ? "" : "  ",
                   static_cast<int>(Widths[C]), Cells[C].c_str());
    std::fputc('\n', Out);
  };

  PrintRow(Headers);
  size_t Total = Headers.size() - 1;
  for (size_t W : Widths)
    Total += W + 1;
  for (size_t I = 0; I < Total; ++I)
    std::fputc('-', Out);
  std::fputc('\n', Out);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void Table::printCsv(std::FILE *Out) const {
  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C)
      std::fprintf(Out, "%s%s", C == 0 ? "" : ",", Cells[C].c_str());
    std::fputc('\n', Out);
  };
  PrintRow(Headers);
  for (const auto &Row : Rows)
    PrintRow(Row);
}
