//===- support/Statistics.cpp - Descriptive statistics -------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace layra;

double layra::quantileOfSorted(const std::vector<double> &Sorted, double Q) {
  assert(!Sorted.empty() && "quantile of an empty sample");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile must be within [0,1]");
  if (Sorted.size() == 1)
    return Sorted.front();
  double Rank = Q * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(std::floor(Rank));
  size_t Hi = static_cast<size_t>(std::ceil(Rank));
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + Frac * (Sorted[Hi] - Sorted[Lo]);
}

SampleSummary layra::summarize(std::vector<double> Values) {
  SampleSummary S;
  if (Values.empty())
    return S;
  std::sort(Values.begin(), Values.end());
  S.Count = Values.size();
  S.Min = Values.front();
  S.Max = Values.back();
  S.Q1 = quantileOfSorted(Values, 0.25);
  S.Median = quantileOfSorted(Values, 0.50);
  S.Q3 = quantileOfSorted(Values, 0.75);
  S.P95 = quantileOfSorted(Values, 0.95);
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  S.Mean = Sum / static_cast<double>(S.Count);
  double Var = 0;
  for (double V : Values)
    Var += (V - S.Mean) * (V - S.Mean);
  S.StdDev =
      S.Count > 1 ? std::sqrt(Var / static_cast<double>(S.Count - 1)) : 0.0;
  return S;
}

double layra::geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of an empty sample");
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}
