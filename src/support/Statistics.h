//===- support/Statistics.h - Descriptive statistics ------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics used by the benchmark harness to summarise
/// distributions of normalized allocation costs (the paper's Figures 11-13
/// and 15 report per-program distributions).
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_STATISTICS_H
#define LAYRA_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace layra {

/// A five-number-plus summary of a sample: the quantities a box plot shows.
struct SampleSummary {
  size_t Count = 0;
  double Min = 0;
  double Q1 = 0;
  double Median = 0;
  double Q3 = 0;
  double P95 = 0;
  double Max = 0;
  double Mean = 0;
  double StdDev = 0;
};

/// Computes the summary of \p Values.  Quantiles use linear interpolation
/// between closest ranks (type-7 in Hyndman-Fan terms, the common default).
/// Returns an all-zero summary for an empty sample.
SampleSummary summarize(std::vector<double> Values);

/// Computes the \p Q quantile (in [0,1]) of \p Sorted, which must be sorted
/// ascending and non-empty.
double quantileOfSorted(const std::vector<double> &Sorted, double Q);

/// Geometric mean of \p Values; entries must be positive.
double geometricMean(const std::vector<double> &Values);

} // namespace layra

#endif // LAYRA_SUPPORT_STATISTICS_H
