//===- support/Random.h - Deterministic pseudo-random numbers ---*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG used by the synthetic-workload generators and
/// the randomized property tests.  All Layra experiments must be perfectly
/// reproducible across platforms, so we roll our own generator (xoshiro256**
/// seeded through SplitMix64) instead of relying on std::mt19937 /
/// std::uniform_int_distribution whose exact streams the standard does not
/// pin down for distributions.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_RANDOM_H
#define LAYRA_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace layra {

/// SplitMix64 step; used to expand a 64-bit seed into xoshiro state.
/// Public because tests use it as a cheap avalanche/hash function too.
uint64_t splitMix64(uint64_t &State);

/// Deterministic xoshiro256** generator with convenience sampling helpers.
///
/// The raw stream matches the reference implementation by Blackman & Vigna.
/// All helper distributions are implemented on top of the raw stream with
/// fixed, documented algorithms so their results never depend on the C++
/// standard library implementation.
class Rng {
public:
  /// Seeds the generator; equal seeds yield equal streams forever.
  explicit Rng(uint64_t Seed);

  /// Returns the next raw 64 random bits.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound), using Lemire-style rejection.
  /// \pre Bound > 0.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform integer in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    if (Values.empty())
      return;
    for (std::size_t I = Values.size() - 1; I > 0; --I) {
      std::size_t J = static_cast<std::size_t>(nextBelow(I + 1));
      std::swap(Values[I], Values[J]);
    }
  }

  /// Returns a uniformly chosen element of \p Values.
  /// \pre Values is not empty.
  template <typename T> const T &pick(const std::vector<T> &Values) {
    assert(!Values.empty() && "cannot pick from an empty vector");
    return Values[static_cast<std::size_t>(nextBelow(Values.size()))];
  }

  /// Samples an index in [0, Weights.size()) proportionally to Weights.
  /// Zero-weight entries are never selected unless all weights are zero, in
  /// which case the distribution degrades to uniform.
  std::size_t pickWeighted(const std::vector<double> &Weights);

  /// Forks an independent child generator; the child stream is a pure
  /// function of this generator's current state.
  Rng fork();

private:
  uint64_t State[4];
};

} // namespace layra

#endif // LAYRA_SUPPORT_RANDOM_H
