//===- support/Table.h - Fixed-width table printing -------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny fixed-width table builder.  The benchmark harness uses it to print
/// the rows/series of each paper figure in a form that is both pleasant in a
/// terminal and trivially machine-readable (a `--csv`-style dump is also
/// provided).  We deliberately avoid <iostream> in line with the LLVM coding
/// standards; output goes through std::FILE*.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_TABLE_H
#define LAYRA_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace layra {

/// Accumulates rows of string cells and renders them with aligned columns.
class Table {
public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> Headers);

  /// Appends one row; the number of cells must match the header count.
  void addRow(std::vector<std::string> Cells);

  /// Convenience: formats a double with \p Precision digits after the point.
  static std::string num(double Value, int Precision = 3);

  /// Convenience: formats an integer cell.
  static std::string num(long long Value);

  /// Convenience: formats Part/Whole as a percentage with one decimal
  /// ("42.0%"); "-" when Whole is zero.
  static std::string percent(double Part, double Whole);

  /// Renders the table with aligned columns to \p Out.
  void print(std::FILE *Out) const;

  /// Renders the table as CSV to \p Out.
  void printCsv(std::FILE *Out) const;

  /// Number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace layra

#endif // LAYRA_SUPPORT_TABLE_H
