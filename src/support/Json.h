//===- support/Json.h - Minimal ordered JSON emitter ------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small ordered JSON document model for benchmark reports and the
/// allocation-service wire protocol (service/Protocol.h).  Object keys keep
/// insertion order and numbers format deterministically, so two runs
/// producing the same values serialize to byte-identical text -- the
/// property the batch driver's determinism checks (and the BENCH_*.json
/// trajectory files) rely on.
///
/// parseJson() is the matching strict reader: RFC 8259 grammar with a
/// recursion-depth bound, full string-escape handling (including surrogate
/// pairs), and rejection of trailing garbage -- malformed network input must
/// become an error message, never undefined behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_JSON_H
#define LAYRA_SUPPORT_JSON_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace layra {

/// One JSON value; a tree of these is a document.
class JsonValue {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool B) : K(Kind::Bool), BoolV(B) {}
  JsonValue(long long I) : K(Kind::Int), IntV(I) {}
  JsonValue(unsigned long long I)
      : K(Kind::Int), IntV(static_cast<long long>(I)) {}
  JsonValue(long I) : K(Kind::Int), IntV(I) {}
  JsonValue(unsigned long I) : K(Kind::Int), IntV(static_cast<long long>(I)) {}
  JsonValue(int I) : K(Kind::Int), IntV(I) {}
  JsonValue(unsigned I) : K(Kind::Int), IntV(I) {}
  JsonValue(double D) : K(Kind::Double), DoubleV(D) {}
  JsonValue(std::string S) : K(Kind::String), StringV(std::move(S)) {}
  JsonValue(const char *S) : K(Kind::String), StringV(S) {}

  static JsonValue array() { return JsonValue(Kind::Array); }
  static JsonValue object() { return JsonValue(Kind::Object); }

  Kind kind() const { return K; }

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isDouble() const { return K == Kind::Double; }
  /// Int or Double: anything numberValue() can represent.
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Value reads.  Each returns \p Default (or an empty string) when the
  /// value is not of the requested kind, so consumers of parsed documents
  /// can read optional fields without kind-checking boilerplate.
  bool boolValue(bool Default = false) const {
    return K == Kind::Bool ? BoolV : Default;
  }
  long long intValue(long long Default = 0) const {
    return K == Kind::Int ? IntV : Default;
  }
  double numberValue(double Default = 0) const {
    if (K == Kind::Int)
      return static_cast<double>(IntV);
    return K == Kind::Double ? DoubleV : Default;
  }
  const std::string &stringValue() const;

  /// Element count of an array or object; 0 for scalars.
  size_t size() const {
    return K == Kind::Array ? ArrayV.size()
                            : (K == Kind::Object ? ObjectV.size() : 0);
  }
  /// Array element access; \p I must be < size() of an array value.
  const JsonValue &at(size_t I) const;
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;
  /// Object members in insertion order (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>> &members() const;
  /// Array elements (empty for non-arrays).
  const std::vector<JsonValue> &elements() const;

  /// Appends \p V to an array value.
  JsonValue &push(JsonValue V);

  /// Sets \p Key of an object value (insertion order preserved; setting an
  /// existing key overwrites in place).  Linear in the member count --
  /// fine for the small hand-built documents reports are made of; bulk
  /// builders that already know key uniqueness (the parser) use append().
  JsonValue &set(const std::string &Key, JsonValue V);

  /// Appends a member to an object *without* the duplicate-key scan.  The
  /// caller is responsible for key uniqueness (parseJson tracks keys in a
  /// side index, keeping object parsing linear on adversarial input).
  JsonValue &append(std::string Key, JsonValue V);

  /// Mutable access to member \p I's value (parser duplicate-key
  /// overwrite); \p I must be < size() of an object value.
  JsonValue &memberAt(size_t I);

  /// Serializes the document.  \p Indent > 0 pretty-prints with that many
  /// spaces per level; 0 emits compact single-line JSON.
  std::string dump(unsigned Indent = 2) const;

  /// Serializes to \p Out followed by a newline.
  void write(std::FILE *Out, unsigned Indent = 2) const;

  /// JSON string escaping of \p S (quotes not included).
  static std::string escape(const std::string &S);

private:
  explicit JsonValue(Kind Which) : K(Which) {}
  void dumpTo(std::string &Out, unsigned Indent, unsigned Depth) const;

  Kind K;
  bool BoolV = false;
  long long IntV = 0;
  double DoubleV = 0;
  std::string StringV;
  std::vector<JsonValue> ArrayV;
  std::vector<std::pair<std::string, JsonValue>> ObjectV;
};

/// Outcome of parseJson().
struct JsonParseResult {
  /// True when the whole input was one well-formed JSON document; Value is
  /// meaningful only then (Error/Line/Column describe the first problem
  /// otherwise).
  bool Ok = false;
  JsonValue Value;
  std::string Error;
  /// 1-based position of the error.
  unsigned Line = 0;
  unsigned Column = 0;
};

/// Parses \p Text as one JSON document (RFC 8259: any value is a valid
/// top-level document).  Strict: rejects trailing non-whitespace, invalid
/// escapes, lone surrogates, control characters inside strings, malformed
/// numbers, and nesting deeper than \p MaxDepth.  Numbers without fraction
/// or exponent that fit a long long parse as Int; everything else numeric
/// parses as Double.  Duplicate object keys keep the *last* occurrence (at
/// the first occurrence's position), matching JsonValue::set.
///
/// Taking a string_view lets callers parse a slice of a larger buffer (the
/// serve event loop slices request payloads straight out of per-connection
/// read buffers) without first materializing a std::string.  The view only
/// needs to stay alive for the duration of the call; the parsed document
/// owns all of its storage.
JsonParseResult parseJson(std::string_view Text, unsigned MaxDepth = 64);

} // namespace layra

#endif // LAYRA_SUPPORT_JSON_H
