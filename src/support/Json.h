//===- support/Json.h - Minimal ordered JSON emitter ------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small write-only JSON document builder for benchmark reports.  Object
/// keys keep insertion order and numbers format deterministically, so two
/// runs producing the same values serialize to byte-identical text -- the
/// property the batch driver's determinism checks (and the BENCH_*.json
/// trajectory files) rely on.  No parsing: Layra emits reports, it does not
/// consume them.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_JSON_H
#define LAYRA_SUPPORT_JSON_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace layra {

/// One JSON value; a tree of these is a document.
class JsonValue {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool B) : K(Kind::Bool), BoolV(B) {}
  JsonValue(long long I) : K(Kind::Int), IntV(I) {}
  JsonValue(unsigned long long I)
      : K(Kind::Int), IntV(static_cast<long long>(I)) {}
  JsonValue(int I) : K(Kind::Int), IntV(I) {}
  JsonValue(unsigned I) : K(Kind::Int), IntV(I) {}
  JsonValue(double D) : K(Kind::Double), DoubleV(D) {}
  JsonValue(std::string S) : K(Kind::String), StringV(std::move(S)) {}
  JsonValue(const char *S) : K(Kind::String), StringV(S) {}

  static JsonValue array() { return JsonValue(Kind::Array); }
  static JsonValue object() { return JsonValue(Kind::Object); }

  Kind kind() const { return K; }

  /// Appends \p V to an array value.
  JsonValue &push(JsonValue V);

  /// Sets \p Key of an object value (insertion order preserved; setting an
  /// existing key overwrites in place).
  JsonValue &set(const std::string &Key, JsonValue V);

  /// Serializes the document.  \p Indent > 0 pretty-prints with that many
  /// spaces per level; 0 emits compact single-line JSON.
  std::string dump(unsigned Indent = 2) const;

  /// Serializes to \p Out followed by a newline.
  void write(std::FILE *Out, unsigned Indent = 2) const;

  /// JSON string escaping of \p S (quotes not included).
  static std::string escape(const std::string &S);

private:
  explicit JsonValue(Kind Which) : K(Which) {}
  void dumpTo(std::string &Out, unsigned Indent, unsigned Depth) const;

  Kind K;
  bool BoolV = false;
  long long IntV = 0;
  double DoubleV = 0;
  std::string StringV;
  std::vector<JsonValue> ArrayV;
  std::vector<std::pair<std::string, JsonValue>> ObjectV;
};

} // namespace layra

#endif // LAYRA_SUPPORT_JSON_H
