//===- support/Socket.cpp - POSIX socket helpers ---------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace layra;

void SocketFd::reset(int NewFd) {
  if (Fd >= 0)
    ::close(Fd);
  Fd = NewFd;
}

bool layra::setNonBlocking(int Fd, bool NonBlocking) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  int Want = NonBlocking ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  return Flags == Want || ::fcntl(Fd, F_SETFL, Want) == 0;
}

void layra::setTcpNoDelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

unsigned layra::raiseFdLimit(unsigned Want) {
  rlimit Limit;
  if (::getrlimit(RLIMIT_NOFILE, &Limit) != 0)
    return Want;
  if (Limit.rlim_cur != RLIM_INFINITY && Limit.rlim_cur < Want) {
    rlim_t Target = Limit.rlim_max == RLIM_INFINITY
                        ? rlim_t(Want)
                        : std::min<rlim_t>(Want, Limit.rlim_max);
    if (Target > Limit.rlim_cur) {
      rlimit Raised = Limit;
      Raised.rlim_cur = Target;
      if (::setrlimit(RLIMIT_NOFILE, &Raised) == 0)
        Limit = Raised;
    }
  }
  return Limit.rlim_cur == RLIM_INFINITY
             ? Want
             : static_cast<unsigned>(Limit.rlim_cur);
}

namespace {

void setError(std::string *Error, const std::string &What) {
  if (Error)
    *Error = What + ": " + std::strerror(errno);
}

/// Fills \p Addr for \p Host:\p Port.  Numeric IPv4 only, plus the
/// "localhost" convenience spelling.
bool resolveIpv4(const std::string &Host, uint16_t Port, sockaddr_in &Addr,
                 std::string *Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  const std::string &Numeric = Host == "localhost" ? "127.0.0.1" : Host;
  if (inet_pton(AF_INET, Numeric.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "invalid IPv4 address '" + Host + "'";
    return false;
  }
  return true;
}

bool fillUnixAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "unix socket path empty or longer than " +
               std::to_string(sizeof(Addr.sun_path) - 1) + " bytes";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

SocketFd layra::listenTcp(const std::string &Host, uint16_t Port,
                          std::string *Error) {
  sockaddr_in Addr;
  if (!resolveIpv4(Host, Port, Addr, Error))
    return SocketFd();
  SocketFd Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!Fd.valid()) {
    setError(Error, "socket");
    return SocketFd();
  }
  int One = 1;
  ::setsockopt(Fd.fd(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    setError(Error, "bind " + Host + ":" + std::to_string(Port));
    return SocketFd();
  }
  if (::listen(Fd.fd(), SOMAXCONN) != 0) {
    setError(Error, "listen");
    return SocketFd();
  }
  return Fd;
}

SocketFd layra::listenUnix(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, Error))
    return SocketFd();
  // A stale socket file from a crashed predecessor would make bind fail
  // with EADDRINUSE, so daemons conventionally replace it -- but only a
  // *dead socket*: a regular file at the path is a typo'd --unix that
  // must not be deleted, and a socket something still answers on belongs
  // to a live server that must not be hijacked.
  struct stat Sb;
  if (::lstat(Path.c_str(), &Sb) == 0) {
    if (!S_ISSOCK(Sb.st_mode)) {
      if (Error)
        *Error = "path " + Path + " exists and is not a socket; refusing "
                 "to replace it";
      return SocketFd();
    }
    SocketFd Probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (Probe.valid() &&
        ::connect(Probe.fd(), reinterpret_cast<sockaddr *>(&Addr),
                  sizeof(Addr)) == 0) {
      if (Error)
        *Error = "a server is already listening on " + Path;
      return SocketFd();
    }
    ::unlink(Path.c_str()); // Nobody answered: a stale leftover.
  }
  SocketFd Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!Fd.valid()) {
    setError(Error, "socket");
    return SocketFd();
  }
  if (::bind(Fd.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    setError(Error, "bind " + Path);
    return SocketFd();
  }
  if (::listen(Fd.fd(), SOMAXCONN) != 0) {
    setError(Error, "listen");
    return SocketFd();
  }
  return Fd;
}

SocketFd layra::connectTcp(const std::string &Host, uint16_t Port,
                           std::string *Error) {
  sockaddr_in Addr;
  if (!resolveIpv4(Host, Port, Addr, Error))
    return SocketFd();
  SocketFd Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!Fd.valid()) {
    setError(Error, "socket");
    return SocketFd();
  }
  if (::connect(Fd.fd(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    setError(Error, "connect " + Host + ":" + std::to_string(Port));
    return SocketFd();
  }
  setTcpNoDelay(Fd.fd());
  return Fd;
}

SocketFd layra::connectUnix(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, Error))
    return SocketFd();
  SocketFd Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!Fd.valid()) {
    setError(Error, "socket");
    return SocketFd();
  }
  if (::connect(Fd.fd(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    setError(Error, "connect " + Path);
    return SocketFd();
  }
  return Fd;
}

uint16_t layra::boundTcpPort(const SocketFd &Listener) {
  sockaddr_in Addr;
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Listener.fd(), reinterpret_cast<sockaddr *>(&Addr),
                    &Len) != 0)
    return 0;
  return ntohs(Addr.sin_port);
}

SocketFd layra::acceptConnection(const SocketFd &Listener, int TimeoutMs,
                                 bool *TimedOut) {
  if (TimedOut)
    *TimedOut = false;
  pollfd Poll;
  Poll.fd = Listener.fd();
  Poll.events = POLLIN;
  Poll.revents = 0;
  int Ready = ::poll(&Poll, 1, TimeoutMs);
  if (Ready == 0) {
    if (TimedOut)
      *TimedOut = true;
    return SocketFd();
  }
  if (Ready < 0) {
    // An interrupted poll is a retry, not a dead listener.
    if (TimedOut && errno == EINTR)
      *TimedOut = true;
    return SocketFd();
  }
  int Fd = ::accept(Listener.fd(), nullptr, nullptr);
  if (Fd < 0) {
    // A connection that was reset between poll and accept is a timeout
    // from the caller's point of view: keep looping.
    if (TimedOut &&
        (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK ||
         errno == EINTR))
      *TimedOut = true;
    return SocketFd();
  }
  SocketFd Out(Fd);
  setTcpNoDelay(Out.fd());
  return Out;
}

bool layra::sendAll(int Fd, const void *Data, size_t Size) {
  const char *Cursor = static_cast<const char *>(Data);
  while (Size > 0) {
    ssize_t Sent = ::send(Fd, Cursor, Size, MSG_NOSIGNAL);
    if (Sent < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (Sent == 0)
      return false;
    Cursor += Sent;
    Size -= static_cast<size_t>(Sent);
  }
  return true;
}

bool layra::sendAllWithTimeout(int Fd, const void *Data, size_t Size,
                               int IdleTimeoutMs) {
  const char *Cursor = static_cast<const char *>(Data);
  while (Size > 0) {
    ssize_t Sent = ::send(Fd, Cursor, Size, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (Sent > 0) {
      Cursor += Sent;
      Size -= static_cast<size_t>(Sent);
      continue;
    }
    if (Sent == 0)
      return false;
    if (errno == EINTR)
      continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      return false;
    // Send buffer full: wait for the peer to drain some of it, bounded.
    pollfd Poll;
    Poll.fd = Fd;
    Poll.events = POLLOUT;
    Poll.revents = 0;
    int Ready = ::poll(&Poll, 1, IdleTimeoutMs);
    if (Ready == 0)
      return false; // No progress within the idle bound.
    if (Ready < 0 && errno != EINTR)
      return false;
  }
  return true;
}

ssize_t layra::recvFull(int Fd, void *Data, size_t Size) {
  char *Cursor = static_cast<char *>(Data);
  size_t Total = 0;
  while (Total < Size) {
    ssize_t Got = ::recv(Fd, Cursor + Total, Size - Total, 0);
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (Got == 0)
      break;
    Total += static_cast<size_t>(Got);
  }
  return static_cast<ssize_t>(Total);
}
