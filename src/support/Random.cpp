//===- support/Random.cpp - Deterministic pseudo-random numbers ----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cmath>

using namespace layra;

uint64_t layra::splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) {
  // Expand the seed with SplitMix64 as recommended by the xoshiro authors;
  // this avoids the all-zero state and decorrelates nearby seeds.
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound > 0 && "nextBelow bound must be positive");
  // Unbiased rejection sampling: draw until the value falls inside the
  // largest multiple of Bound representable in 64 bits.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "nextInRange requires Lo <= Hi");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  // Span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  uint64_t Offset = Span == 0 ? next() : nextBelow(Span);
  return Lo + static_cast<int64_t>(Offset);
}

double Rng::nextDouble() {
  // 53 high bits scaled to [0,1); the standard trick, exact in binary64.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

std::size_t Rng::pickWeighted(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "cannot sample from an empty weight vector");
  double Total = 0;
  for (double W : Weights) {
    assert(W >= 0 && "weights must be non-negative");
    Total += W;
  }
  if (Total <= 0)
    return static_cast<std::size_t>(nextBelow(Weights.size()));
  double Point = nextDouble() * Total;
  double Acc = 0;
  for (std::size_t I = 0; I + 1 < Weights.size(); ++I) {
    Acc += Weights[I];
    if (Point < Acc)
      return I;
  }
  return Weights.size() - 1;
}

Rng Rng::fork() {
  return Rng(next() ^ 0xa0761d6478bd642fULL);
}
