//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for batch allocation.  The driver
/// (driver/BatchDriver.h) fans thousands of independent per-function
/// allocation problems over it; tasks are index-addressed so every result
/// lands in its own slot and batch output is deterministic regardless of
/// the thread count or the steal schedule.
///
/// Design: parallelFor splits [0, N) into one contiguous chunk per
/// participant (the calling thread plus NumThreads-1 workers).  Each
/// participant drains its own chunk front-to-back (cache-friendly) and,
/// when empty, steals from the back of a victim's deque.  Workers are
/// persistent and sleep between batches.  With one thread, parallelFor
/// degenerates to an inline loop on the calling thread -- no pool traffic
/// at all.
///
/// Tasks must not throw: Layra follows the LLVM convention of aborting on
/// fatal conditions instead of unwinding (support/Compiler.h).
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_THREADPOOL_H
#define LAYRA_SUPPORT_THREADPOOL_H

#include <cstddef>
#include <functional>
#include <memory>

namespace layra {

class ThreadPool {
public:
  /// Creates a pool executing loops on \p NumThreads participants in total
  /// (the calling thread counts as one); 0 means defaultThreadCount().
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total participants, including the calling thread.  Always >= 1.
  unsigned numThreads() const;

  /// Runs Body(I) once for every I in [0, N), distributed over the pool.
  /// Returns when all N calls have completed.  Body must be safe to call
  /// concurrently from different threads for different indices; two calls
  /// never share an index.  Not reentrant: Body must not call parallelFor
  /// on the same pool.
  void parallelFor(std::size_t N, const std::function<void(std::size_t)> &Body);

  /// Like parallelFor, but Body additionally receives the executing
  /// participant's slot in [0, numThreads()); slot 0 is the calling thread.
  /// At any moment at most one task runs per slot, so Body may use the slot
  /// to index per-worker state (e.g. a SolverWorkspace) without locking.
  /// Which *indices* land on which slot depends on the steal schedule; only
  /// state whose contents never alter results (scratch arenas, counters)
  /// should be keyed this way.
  void parallelForWorker(
      std::size_t N,
      const std::function<void(std::size_t, unsigned)> &Body);

  /// std::thread::hardware_concurrency clamped to at least 1.
  static unsigned defaultThreadCount();

private:
  struct Impl;
  std::unique_ptr<Impl> State;
};

} // namespace layra

#endif // LAYRA_SUPPORT_THREADPOOL_H
