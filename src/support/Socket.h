//===- support/Socket.h - POSIX socket helpers ------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over the POSIX socket API for the allocation service
/// (service/Server.h, service/Client.h): TCP and Unix-domain listeners and
/// connectors, full-buffer send/recv loops, and a poll-based accept with
/// timeout so accept loops can observe a stop flag.  Loopback-oriented by
/// design -- TCP hosts are numeric addresses (or "localhost"), name
/// resolution is out of scope.
///
/// Error reporting follows the library convention of no exceptions: every
/// constructor-like helper returns an invalid SocketFd and fills *Error.
/// SIGPIPE is never raised from here (MSG_NOSIGNAL); a closed peer shows up
/// as a short write instead.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUPPORT_SOCKET_H
#define LAYRA_SUPPORT_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>

namespace layra {

/// Owning file-descriptor handle.  Move-only; closes on destruction.
class SocketFd {
public:
  SocketFd() = default;
  explicit SocketFd(int Fd) : Fd(Fd) {}
  ~SocketFd() { reset(); }

  SocketFd(const SocketFd &) = delete;
  SocketFd &operator=(const SocketFd &) = delete;
  SocketFd(SocketFd &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  SocketFd &operator=(SocketFd &&Other) noexcept {
    if (this != &Other) {
      reset(Other.Fd);
      Other.Fd = -1;
    }
    return *this;
  }

  int fd() const { return Fd; }
  bool valid() const { return Fd >= 0; }

  /// Closes the held descriptor (if any) and adopts \p NewFd.
  void reset(int NewFd = -1);
  /// Releases ownership without closing.
  int release() {
    int Out = Fd;
    Fd = -1;
    return Out;
  }

private:
  int Fd = -1;
};

/// Creates a TCP listener bound to \p Host:\p Port (SO_REUSEADDR set, port
/// 0 = ephemeral; boundTcpPort() reads the choice back).  \p Host must be a
/// numeric IPv4 address or "localhost".
SocketFd listenTcp(const std::string &Host, uint16_t Port,
                   std::string *Error);

/// Creates a Unix-domain listener at \p Path.  A *stale* socket file left
/// by a crashed predecessor (nothing accepts connections on it) is
/// replaced; a live server's socket or a non-socket file at the path is an
/// error, never deleted.  The caller unlinks the path on shutdown.
SocketFd listenUnix(const std::string &Path, std::string *Error);

/// Connects to a TCP server at \p Host:\p Port.
SocketFd connectTcp(const std::string &Host, uint16_t Port,
                    std::string *Error);

/// Connects to a Unix-domain server socket at \p Path.
SocketFd connectUnix(const std::string &Path, std::string *Error);

/// The port a TCP listener actually bound (resolves port 0); 0 on error.
uint16_t boundTcpPort(const SocketFd &Listener);

/// Waits up to \p TimeoutMs for a connection on \p Listener and accepts it.
/// Returns an invalid SocketFd on timeout or error; *TimedOut (optional)
/// distinguishes the two so accept loops can keep polling a stop flag.
SocketFd acceptConnection(const SocketFd &Listener, int TimeoutMs,
                          bool *TimedOut);

/// Switches \p Fd's O_NONBLOCK flag.  The event-loop server and the
/// multiplexed load generator run every connection non-blocking; blocking
/// callers (the simple Client) never need this.  False when fcntl failed.
bool setNonBlocking(int Fd, bool NonBlocking = true);

/// Disables Nagle on a TCP socket.  Request/response framing sends small
/// header+payload pairs, so coalescing only adds latency (~40 ms worst
/// case against delayed ACKs).  Harmless on non-TCP descriptors (the
/// setsockopt simply fails); always returns void for that reason --
/// accept/connect paths call it unconditionally.
void setTcpNoDelay(int Fd);

/// Raises RLIMIT_NOFILE's soft limit toward \p Want descriptors (capped at
/// the hard limit).  Returns the resulting soft limit.  Lets
/// `layra-loadgen --clients=2000` and a many-connection server run under
/// the common 1024-descriptor default without sudo.
unsigned raiseFdLimit(unsigned Want);

/// Writes all \p Size bytes to \p Fd, looping over short writes.  False on
/// any error (including a closed peer).
bool sendAll(int Fd, const void *Data, size_t Size);

/// Like sendAll, but gives up when the peer accepts no bytes for
/// \p IdleTimeoutMs (a client that stopped reading).  The timeout is on
/// *progress*, not the whole transfer: a slow-but-draining peer is fine.
/// False on error or timeout; the caller decides whether to drop the
/// connection.
bool sendAllWithTimeout(int Fd, const void *Data, size_t Size,
                        int IdleTimeoutMs);

/// Reads exactly \p Size bytes unless the stream ends first.  Returns the
/// number of bytes actually read (< Size when the peer closed cleanly, 0
/// for an immediately closed stream), or -1 when recv() failed (errno
/// set) -- a connection reset is an I/O error, not an EOF.
ssize_t recvFull(int Fd, void *Data, size_t Size);

} // namespace layra

#endif // LAYRA_SUPPORT_SOCKET_H
