//===- fuzz/Oracles.h - Differential oracle registry ------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle registry: every invariant the test suite checks ad hoc --
/// heuristics never beat a proven exact optimum, assignments respect
/// interference and per-class budgets, workspace reuse is byte-pure,
/// the batch driver's cache is report-transparent, the allocation server
/// answers byte-identically to a direct driver run -- as named, reusable
/// checks over one FuzzCase.  `layra-fuzz` sweeps them over mutated
/// cases; tests/fuzz/OracleTest.cpp pins each one on known-good and
/// known-violating inputs.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_FUZZ_ORACLES_H
#define LAYRA_FUZZ_ORACLES_H

#include "fuzz/FuzzCase.h"

#include <string>
#include <vector>

namespace layra {

class Client;
class SolverWorkspace;

/// Verdict of one oracle over one case.
struct OracleOutcome {
  bool Ok = true;
  /// One-line failure description (empty when Ok).
  std::string Detail;
};

/// Everything an oracle may consult.  The session prepares the SSA
/// conversion once per case; oracles never mutate the case.
struct OracleContext {
  const FuzzCase *Case = nullptr;
  const TargetDesc *Target = nullptr;
  /// Case->F converted to strict SSA (oracles needing chordal instances
  /// build problems from this).
  const Function *Ssa = nullptr;
  /// Optional shared scratch; the workspace-purity oracle requires it.
  SolverWorkspace *WS = nullptr;
  /// Connection to an in-process allocation server; null disables the
  /// serve-vs-direct oracle (it reports Ok without checking).
  Client *ServeClient = nullptr;
  /// Pool width of that server -- the direct reference run must match or
  /// the reports' "threads" field trivially differs.
  unsigned ServeThreads = 2;
  /// Debug flag (`layra-fuzz --break-oracle=NAME`): the named oracle
  /// additionally fails whenever the function contains a copy
  /// instruction.  A deterministic planted bug, used to exercise the
  /// minimizer and the crash-report round trip end to end.
  std::string BreakOracle;
};

/// One registered oracle.
struct Oracle {
  const char *Name;
  const char *Description;
  OracleOutcome (*Run)(const OracleContext &);
  /// True for oracles that need ServeClient; they pass vacuously without
  /// one and `layra-fuzz` only enables them under --serve-oracle.
  bool NeedsServer = false;
};

/// All oracles, in a stable order:
///   heuristic-vs-exact, assignment-valid, workspace-pure,
///   parse-roundtrip, cache-transparent, delta-vs-full, metrics-quiet,
///   serve-direct.
const std::vector<Oracle> &oracleRegistry();

/// Lookup by name; nullptr when unknown.
const Oracle *findOracle(const std::string &Name);

/// Runs \p O on \p Ctx, applying the planted --break-oracle failure when
/// Ctx.BreakOracle names it (see OracleContext::BreakOracle).
OracleOutcome runOracle(const Oracle &O, const OracleContext &Ctx);

} // namespace layra

#endif // LAYRA_FUZZ_ORACLES_H
