//===- fuzz/Oracles.cpp - Differential oracle registry ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "alloc/BruteForce.h"
#include "alloc/OptimalBnB.h"
#include "core/Layered.h"
#include "core/LayeredHeuristic.h"
#include "core/ProblemBuilder.h"
#include "core/SolverWorkspace.h"
#include "driver/BatchDriver.h"
#include "driver/ReportIO.h"
#include "ir/Parser.h"
#include "obs/EventLog.h"
#include "obs/RequestTrace.h"
#include "obs/Trace.h"
#include "service/Client.h"
#include "service/Protocol.h"
#include "suites/Suites.h"

using namespace layra;

namespace {

/// Largest instance the exhaustive-search cross check runs on.
constexpr unsigned kBruteForceVertexLimit = 18;

OracleOutcome fail(std::string Detail) { return {false, std::move(Detail)}; }

/// Expresses a case's budget vector as the (NumRegisters, ClassRegs)
/// pair BatchJob and the wire protocol speak: class 0 through the swept
/// register count, every other class as an explicit by-name override.
std::vector<ClassRegOverride>
classOverrides(const TargetDesc &Target, const std::vector<unsigned> &Budgets) {
  std::vector<ClassRegOverride> Overrides;
  for (unsigned C = 1; C < Budgets.size(); ++C)
    Overrides.push_back({Target.regClass(C).Name, Budgets[C]});
  return Overrides;
}

/// The single-function suite both driver-level oracles feed to
/// BatchDriver, labelled the way the server labels a submit_ir suite so
/// the serve-vs-direct comparison is over identical jobs.
Suite singleFunctionSuite(const Function &F, const std::string &SuiteName) {
  Suite S;
  S.Name = SuiteName;
  SuiteProgram Prog;
  Prog.Name = F.name();
  Prog.Functions.push_back(F);
  S.Programs.push_back(std::move(Prog));
  return S;
}

std::vector<BatchJob> singleJob(const Suite &S, const TargetDesc &Target,
                                const std::vector<unsigned> &Budgets) {
  BatchJob Job;
  Job.SuiteName = S.Name;
  Job.SuiteData = &S;
  Job.Target = Target;
  Job.NumRegisters = Budgets.empty() ? 4 : Budgets[0];
  Job.ClassRegs = classOverrides(Target, Budgets);
  return {Job};
}

/// Heuristic spill costs may never undercut a proven exact optimum, and
/// where exhaustive search is affordable it must agree with the
/// branch-and-bound cost exactly.
OracleOutcome checkHeuristicVsExact(const OracleContext &Ctx) {
  AllocationProblem P =
      buildSsaProblem(*Ctx.Ssa, *Ctx.Target, Ctx.Case->Budgets, Ctx.WS);
  OptimalBnBAllocator BnB;
  AllocationResult Exact = BnB.allocate(P, Ctx.WS);
  if (!Exact.Proven)
    return {}; // No proven anchor; nothing to compare against.
  if (!isFeasibleAllocation(P, Exact.Allocated))
    return fail("BnB allocation violates a pressure constraint");
  for (const char *Name : {"bfpl", "lh"}) {
    AllocationResult H = makeAllocator(Name)->allocateProblem(P, Ctx.WS);
    if (!isFeasibleAllocation(P, H.Allocated))
      return fail(std::string(Name) +
                  " allocation violates a pressure constraint");
    if (H.SpillCost < Exact.SpillCost)
      return fail(std::string(Name) + " spill cost " +
                  std::to_string(H.SpillCost) + " beats proven optimum " +
                  std::to_string(Exact.SpillCost));
  }
  if (P.graph().numVertices() <= kBruteForceVertexLimit) {
    AllocationResult Brute = BruteForceAllocator().allocate(P);
    if (Brute.SpillCost != Exact.SpillCost)
      return fail("brute-force optimum " + std::to_string(Brute.SpillCost) +
                  " disagrees with BnB optimum " +
                  std::to_string(Exact.SpillCost));
  }
  return {};
}

/// The layered heuristic's register assignment must give interfering
/// same-class vertices distinct registers, stay within each class's
/// budget, and only assign registers to allocated vertices.
OracleOutcome checkAssignmentValid(const OracleContext &Ctx) {
  AllocationProblem P =
      buildSsaProblem(*Ctx.Ssa, *Ctx.Target, Ctx.Case->Budgets, Ctx.WS);
  for (RegClassId C = 0; C < P.numClasses(); ++C) {
    std::vector<VertexId> ToGlobal;
    AllocationProblem Sub =
        P.multiClass() ? P.projectClass(C, ToGlobal, Ctx.WS) : P;
    if (Sub.graph().numVertices() == 0)
      continue;
    LayeredHeuristicResult LH = layeredHeuristicAllocate(Sub, Ctx.WS);
    const std::vector<char> &Allocated = LH.Allocation.Allocated;
    if (Allocated.size() != Sub.graph().numVertices() ||
        LH.RegisterOf.size() != Sub.graph().numVertices())
      return fail("lh result size mismatch in class " + std::to_string(C));
    for (VertexId V = 0; V < Sub.graph().numVertices(); ++V) {
      if (!Allocated[V]) {
        if (LH.RegisterOf[V] != LayeredHeuristicResult::kNoRegister)
          return fail("spilled vertex carries a register in class " +
                      std::to_string(C));
        continue;
      }
      if (LH.RegisterOf[V] >= Sub.uniformBudget())
        return fail("register index exceeds budget " +
                    std::to_string(Sub.uniformBudget()) + " in class " +
                    std::to_string(C));
      for (VertexId U : Sub.graph().neighbors(V))
        if (Allocated[U] && LH.RegisterOf[V] == LH.RegisterOf[U])
          return fail("interfering pair shares register " +
                      std::to_string(LH.RegisterOf[V]) + " in class " +
                      std::to_string(C));
    }
    if (!isFeasibleAllocation(Sub, Allocated))
      return fail("lh allocation violates a pressure constraint in class " +
                  std::to_string(C));
    if (!P.multiClass())
      break; // Sub aliases P; one pass covers it.
  }
  return {};
}

/// The baseline backends (graph coloring, both linear-scan policies) must
/// produce feasible, budget-respecting allocations whose spill cost never
/// undercuts a proven exact optimum.  Nothing differentially checked these
/// allocators before: they are the paper's comparison points, so a silently
/// infeasible baseline would skew every figure.
OracleOutcome checkBaselineBackends(const OracleContext &Ctx) {
  AllocationProblem P =
      buildSsaProblem(*Ctx.Ssa, *Ctx.Target, Ctx.Case->Budgets, Ctx.WS);
  OptimalBnBAllocator BnB;
  AllocationResult Exact = BnB.allocate(P, Ctx.WS);
  for (const char *Name : {"gc", "ls", "bls"}) {
    std::unique_ptr<Allocator> A = makeAllocator(Name);
    if (A->requiresIntervals() && !P.Intervals)
      return fail(std::string(Name) +
                  ": SSA problem unexpectedly lacks live intervals");
    AllocationResult R = A->allocateProblem(P, Ctx.WS);
    if (R.Allocated.size() != P.graph().numVertices())
      return fail(std::string(Name) + " flag vector size mismatch");
    if (!isFeasibleAllocation(P, R.Allocated))
      return fail(std::string(Name) +
                  " allocation violates a pressure constraint");
    if (Exact.Proven && R.SpillCost < Exact.SpillCost)
      return fail(std::string(Name) + " spill cost " +
                  std::to_string(R.SpillCost) + " beats proven optimum " +
                  std::to_string(Exact.SpillCost));
  }
  return {};
}

/// Shared-workspace runs must be byte-identical to fresh runs: a
/// SolverWorkspace carries capacity, never state.
OracleOutcome checkWorkspacePure(const OracleContext &Ctx) {
  if (!Ctx.WS)
    return {}; // Nothing to compare without a long-lived workspace.
  AllocationProblem Fresh =
      buildSsaProblem(*Ctx.Ssa, *Ctx.Target, Ctx.Case->Budgets);
  AllocationProblem Reused =
      buildSsaProblem(*Ctx.Ssa, *Ctx.Target, Ctx.Case->Budgets, Ctx.WS);
  if (Fresh.Peo.Order != Reused.Peo.Order)
    return fail("workspace reuse changed the elimination order");
  if (!(Fresh.Constraints == Reused.Constraints) ||
      Fresh.Constraints.size() != Reused.Constraints.size())
    return fail("workspace reuse changed the pressure constraints");

  for (const char *Name : {"bfpl", "lh", "optimal"}) {
    AllocationResult A = makeAllocator(Name)->allocateProblem(Fresh);
    AllocationResult B = makeAllocator(Name)->allocateProblem(Reused, Ctx.WS);
    if (A.Allocated != B.Allocated || A.SpillCost != B.SpillCost)
      return fail(std::string(Name) +
                  " diverges between fresh and reused workspaces");
  }
  return {};
}

/// Print -> parse -> print must be stable: the first print of a parsed
/// function re-prints byte-identically ever after, and parsing preserves
/// the structural content hash.
OracleOutcome checkParseRoundtrip(const OracleContext &Ctx) {
  std::string First = Ctx.Case->F.toString();
  ParsedFunction P1 = parseFunction(First);
  if (!P1.Ok)
    return fail("own toString() fails to parse at line " +
                std::to_string(P1.Line) + ": " + P1.Error);
  std::string Second = P1.F.toString();
  ParsedFunction P2 = parseFunction(Second);
  if (!P2.Ok)
    return fail("re-printed form fails to parse at line " +
                std::to_string(P2.Line) + ": " + P2.Error);
  if (P2.F.toString() != Second)
    return fail("print/parse round trip is not stable from second print");
  if (hashFunction(P1.F) != hashFunction(P2.F))
    return fail("round trip changed the structural content hash");
  std::string VerifyError;
  if (!verifyFunction(P2.F, /*ExpectSsa=*/false, &VerifyError))
    return fail("round-tripped function fails verification: " + VerifyError);
  return {};
}

/// A warm driver's cache-transparent report must be byte-identical to a
/// fresh driver's report over the same jobs (timing excluded, per-task
/// detail included -- that is where the cache_hit flags live).
OracleOutcome checkCacheTransparent(const OracleContext &Ctx) {
  Suite S = singleFunctionSuite(Ctx.Case->F, "fuzz");
  std::vector<BatchJob> Jobs = singleJob(S, *Ctx.Target, Ctx.Case->Budgets);
  // Duplicate the job so intra-batch twin classification is exercised too.
  Jobs.push_back(Jobs.front());

  BatchDriver FreshDriver(1);
  std::string FreshJson =
      driverReportToJson(FreshDriver.run(Jobs), /*IncludeTiming=*/false,
                         /*IncludeTasks=*/true)
          .dump(2);

  BatchDriver WarmDriver(1);
  WarmDriver.run(Jobs); // Warm the persistent caches.
  std::string WarmJson =
      driverReportToJson(WarmDriver.run(Jobs, /*CacheTransparent=*/true),
                         /*IncludeTiming=*/false, /*IncludeTasks=*/true)
          .dump(2);
  if (FreshJson != WarmJson)
    return fail("warm cache-transparent report differs from a fresh run");
  return {};
}

/// Delta mode must be report-transparent: a resubmission solved against a
/// retained base (driver/BatchDriver.h BaseKey/RetainKey, the engine under
/// the server's submit_ir `base` field) yields report bytes identical to a
/// fresh driver's full solve of the same edited function.  Two edits per
/// case: a frequency bump, which tier-A compatibility must absorb through
/// the delta path (counted as a hit), and a structural use-list edit,
/// which it must reject into a counted full-solve fallback -- silent
/// wrong-path answers are exactly what the counters exist to rule out.
OracleOutcome checkDeltaVsFull(const OracleContext &Ctx) {
  const std::vector<unsigned> &Budgets = Ctx.Case->Budgets;
  // Any nonzero key works: the registry is keyed by the caller, not by
  // content, and this driver pair is private to the oracle.
  const uint64_t BaseKey = hashFunction(*Ctx.Ssa) | 1;

  Suite BaseS = singleFunctionSuite(*Ctx.Ssa, "fuzz");
  std::vector<BatchJob> BaseJobs = singleJob(BaseS, *Ctx.Target, Budgets);
  BaseJobs[0].RetainKey = BaseKey;

  auto deltaVsFull = [&](const Function &Edited, bool ExpectHit,
                         std::string &Failure) {
    Suite EditS = singleFunctionSuite(Edited, "fuzz");

    BatchDriver Warm(1);
    Warm.run(BaseJobs); // Solve + retain the base.
    if (!Warm.hasBase(BaseKey)) {
      Failure = "driver did not retain the base under its RetainKey";
      return false;
    }
    std::vector<BatchJob> DeltaJobs = singleJob(EditS, *Ctx.Target, Budgets);
    DeltaJobs[0].BaseKey = BaseKey;
    std::string DeltaJson =
        driverReportToJson(Warm.run(DeltaJobs, /*CacheTransparent=*/true),
                           /*IncludeTiming=*/false, /*IncludeTasks=*/true)
            .dump(2);

    BatchDriver Fresh(1);
    std::string FullJson =
        driverReportToJson(Fresh.run(singleJob(EditS, *Ctx.Target, Budgets)),
                           /*IncludeTiming=*/false, /*IncludeTasks=*/true)
            .dump(2);
    if (DeltaJson != FullJson) {
      Failure = "delta-solved report differs from a fresh full solve";
      return false;
    }
    DriverDeltaCounters DC = Warm.deltaCounters();
    if (ExpectHit && (DC.Hits != 1 || DC.Fallbacks != 0)) {
      Failure = "frequency edit did not take the delta path (hits=" +
                std::to_string(DC.Hits) +
                ", fallbacks=" + std::to_string(DC.Fallbacks) + ")";
      return false;
    }
    if (!ExpectHit && DC.Fallbacks == 0) {
      Failure = "structural edit was not counted as a delta fallback";
      return false;
    }
    return true;
  };

  std::string Failure;

  // Edit 1: profile drift.  Same structure, different block frequency --
  // the delta warm-start must engage and stay byte-transparent.
  Function Bumped = *Ctx.Ssa;
  Bumped.block(0).Frequency += 9;
  if (!deltaVsFull(Bumped, /*ExpectHit=*/true, Failure))
    return fail(Failure);

  // Edit 2: a structural change -- the entry terminator gains a use of a
  // value defined earlier in the block.  Compatibility must refuse the
  // base and fall back to a counted full solve.
  Function Edited = *Ctx.Ssa;
  BasicBlock &Entry = Edited.block(0);
  ValueId Reused = kNoValue;
  for (size_t I = 0; I + 1 < Entry.Instrs.size() && Reused == kNoValue; ++I)
    for (ValueId D : Entry.Instrs[I].Defs)
      Reused = D;
  if (Reused != kNoValue && !Entry.Instrs.empty()) {
    Entry.Instrs.back().Uses.push_back(Reused);
    if (!deltaVsFull(Edited, /*ExpectHit=*/false, Failure))
      return fail(Failure);
  }
  return {};
}

/// Observability must be free of observable effect: running the pipeline
/// with tracing and phase accounting fully enabled yields a timing-free
/// report byte-identical to a quiet run.  Guards the zero-cost-when-
/// disabled contract from the other side -- instrumentation may measure,
/// never steer.
OracleOutcome checkMetricsQuiet(const OracleContext &Ctx) {
  Suite S = singleFunctionSuite(Ctx.Case->F, "fuzz");
  std::vector<BatchJob> Jobs = singleJob(S, *Ctx.Target, Ctx.Case->Budgets);

  // Quiet run first, with every obs feature off (the fuzz driver leaves
  // them off; force it anyway so the oracle is self-contained).
  TraceCollector &TC = TraceCollector::global();
  bool WasTracing = TC.enabled();
  bool WasDet = TC.deterministic();
  bool WasAccounting = obs::phaseAccountingEnabled();
  TC.disable();
  obs::setPhaseAccounting(false);
  BatchDriver QuietDriver(1);
  std::string QuietJson =
      driverReportToJson(QuietDriver.run(Jobs), /*IncludeTiming=*/false,
                         /*IncludeTasks=*/true)
          .dump(2);

  // Instrumented run: deterministic tracing, phase accounting, the
  // request-scoped event log, a live per-job phase sink, and a request
  // trace consuming it -- every observability surface at once.
  obs::EventLog &Events = obs::EventLog::global();
  bool WasEvents = Events.enabled();
  TC.enable(/*Deterministic=*/true);
  obs::setPhaseAccounting(true);
  Events.setEnabled(true);
  Events.record(obs::EventKind::RequestStart, 0, "fuzz-metrics-quiet");
  BatchDriver LoudDriver(1);
  std::vector<PhaseTotals> JobPhases;
  std::string LoudJson =
      driverReportToJson(LoudDriver.run(Jobs, /*CacheTransparent=*/false,
                                        &JobPhases),
                         /*IncludeTiming=*/false,
                         /*IncludeTasks=*/true)
          .dump(2);
  obs::RequestTrace Trace;
  Trace.begin("fuzz-metrics-quiet", std::chrono::steady_clock::now());
  Trace.attachJobPhases(JobPhases);
  Events.record(obs::EventKind::RequestEnd, 0, Trace.id().c_str());
  TC.disable();
  TC.clear();
  obs::setPhaseAccounting(WasAccounting);
  Events.setEnabled(WasEvents);
  if (WasTracing)
    TC.enable(WasDet);

  if (JobPhases.size() != Jobs.size())
    return fail("phase sink did not report one entry per job");

  if (QuietJson != LoudJson)
    return fail("timing-free report changed when tracing/metrics were on");
  return {};
}

/// The allocation server's submit_ir response must be byte-identical to
/// a direct fresh BatchDriver run of the same single-function suite.
OracleOutcome checkServeDirect(const OracleContext &Ctx) {
  if (!Ctx.ServeClient)
    return {}; // Oracle disabled (no in-process server).

  ServiceRequest Req;
  Req.K = ServiceRequest::Kind::SubmitIr;
  Req.IrText = Ctx.Ssa->toString();
  Req.TargetName = Ctx.Case->TargetName;
  Req.Regs = {Ctx.Case->Budgets.empty() ? 4u : Ctx.Case->Budgets[0]};
  Req.ClassRegs = classOverrides(*Ctx.Target, Ctx.Case->Budgets);
  Req.Details = true;

  std::string Response, Error;
  if (!Ctx.ServeClient->call(Client::makeSubmitIrRequest(Req), Response,
                             &Error))
    return fail("server transport failure: " + Error);
  if (Client::isErrorResponse(Response))
    return fail("server rejected the case: " + Response);

  // Mirror Server::Impl::handleSubmitIr's job construction exactly.
  ParsedFunction Parsed = parseFunction(Req.IrText);
  if (!Parsed.Ok)
    return fail("ssa text failed to re-parse: " + Parsed.Error);
  Suite S = singleFunctionSuite(Parsed.F, "submitted");
  std::vector<BatchJob> Jobs = singleJob(S, *Ctx.Target, Ctx.Case->Budgets);
  BatchDriver Direct(Ctx.ServeThreads);
  std::string DirectJson =
      driverReportToJson(Direct.run(Jobs), /*IncludeTiming=*/false,
                         /*IncludeTasks=*/true)
          .dump(2) +
      "\n";
  if (Response != DirectJson)
    return fail("server response differs from a direct driver run");
  return {};
}

} // namespace

const std::vector<Oracle> &layra::oracleRegistry() {
  static const std::vector<Oracle> Registry{
      {"heuristic-vs-exact",
       "heuristic spill cost never beats a proven BnB/brute optimum",
       checkHeuristicVsExact, false},
      {"assignment-valid",
       "no interfering same-class pair shares a register; budgets held",
       checkAssignmentValid, false},
      {"baseline-backends",
       "gc/ls/bls allocations are feasible and never beat a proven optimum",
       checkBaselineBackends, false},
      {"workspace-pure",
       "shared-SolverWorkspace runs are byte-equal to fresh runs",
       checkWorkspacePure, false},
      {"parse-roundtrip",
       "textual IR print/parse round trip is stable and hash-preserving",
       checkParseRoundtrip, false},
      {"cache-transparent",
       "warm BatchDriver cache-transparent reports equal fresh reports",
       checkCacheTransparent, false},
      {"delta-vs-full",
       "delta warm-start reports equal fresh full solves; edits hit/fall back",
       checkDeltaVsFull, false},
      {"metrics-quiet",
       "tracing/phase accounting on vs off yields byte-identical reports",
       checkMetricsQuiet, false},
      {"serve-direct",
       "layra-serve submit_ir responses equal direct driver runs byte-for-byte",
       checkServeDirect, true},
  };
  return Registry;
}

const Oracle *layra::findOracle(const std::string &Name) {
  for (const Oracle &O : oracleRegistry())
    if (Name == O.Name)
      return &O;
  return nullptr;
}

OracleOutcome layra::runOracle(const Oracle &O, const OracleContext &Ctx) {
  OracleOutcome Outcome = O.Run(Ctx);
  if (Outcome.Ok && Ctx.BreakOracle == O.Name) {
    // The planted bug: deterministic, minimizable (any copy instruction
    // triggers it), and replayable from a reproducer file.
    for (const BasicBlock &BB : Ctx.Case->F.blocks())
      for (const Instruction &I : BB.Instrs)
        if (I.Op == Opcode::Copy)
          return fail("planted failure (--break-oracle): function contains "
                      "a copy instruction");
  }
  return Outcome;
}
