//===- fuzz/Mutator.h - Structured IR mutators ------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-deterministic structured mutations over the phi-free non-SSA
/// mutation substrate (fuzz/FuzzCase.h).  Every mutator produces a
/// *candidate* case; the driver gates candidates through validateCase()
/// and discards invalid ones, so individual mutators may be optimistic
/// (e.g. delete an instruction whose definition turns out to be needed)
/// without ever feeding the oracles a malformed function.  All mutants
/// round-trip through ir/Parser -- normalizeCase() runs after every
/// accepted mutation -- which is what makes crash reports replayable.
///
/// CFG mutations are implemented by rebuilding the function from a
/// FunctionSketch, an editable mirror of Function: Function itself only
/// grows (makeBlock/addEdge), while mutators need to delete blocks and
/// rewire edges.  With no phis in the substrate, edge *order* carries no
/// semantics, so the rebuild is a straightforward re-insertion.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_FUZZ_MUTATOR_H
#define LAYRA_FUZZ_MUTATOR_H

#include "fuzz/FuzzCase.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace layra {

/// An editable mirror of Function (see file comment).
struct FunctionSketch {
  struct SketchBlock {
    std::string Name;
    std::vector<Instruction> Instrs; ///< Terminator last, no phis.
    std::vector<unsigned> Succs;     ///< Indexes into Blocks.
    unsigned LoopDepth = 0;
    Weight Frequency = 1;
  };

  std::string Name = "f";
  std::vector<SketchBlock> Blocks; ///< Blocks[0] is the entry.
  unsigned NumValues = 0;
  std::vector<std::string> ValueNames;  ///< Sized NumValues ("" = anonymous).
  std::vector<RegClassId> ValueClasses; ///< Sized NumValues.

  static FunctionSketch fromFunction(const Function &F);

  /// Rebuilds a Function.  Value ids are preserved verbatim; blocks keep
  /// their sketch order; preds are re-derived from the succs lists in
  /// block-then-succ order -- a canonicalization of the edge-insertion
  /// history, which carries no meaning in a phi-free function (pred
  /// order is only significant as phi operand order).
  Function build() const;

  /// Drops unreachable blocks (cascading) and remaps succ indexes.  A
  /// `br` terminator left with no successors becomes `ret`.  Called by
  /// mutators that delete blocks or edges.
  void pruneUnreachable();
};

/// The mutation kinds the fuzzer draws from.
enum class MutationKind {
  InsertOp,      ///< Insert an op/copy using in-scope values.
  DeleteInstr,   ///< Delete one non-terminator instruction.
  SwapInstrs,    ///< Swap two adjacent non-terminator instructions.
  SplitBlock,    ///< Split a block in two, linked by an unconditional br.
  MergeBlocks,   ///< Merge a single-succ/single-pred block pair.
  CloneBlock,    ///< Duplicate a block and redirect one incoming edge.
  AddLoop,       ///< Add a back edge to a dominating block.
  ReassignClass, ///< Move one value to another register class.
  PerturbFreq,   ///< Change one block's execution frequency.
  PerturbBudget, ///< Change one register class's budget.
};

/// Short stable name of \p Kind ("insert-op", "add-loop", ...), recorded
/// in crash-report trails.
const char *mutationKindName(MutationKind Kind);

/// All mutation kinds, in a stable order (tests sweep this).
const std::vector<MutationKind> &allMutationKinds();

/// Applies one mutation of kind \p Kind to \p Case, drawing every choice
/// from \p R.  Returns false when the kind is not applicable (e.g. no
/// mergeable block pair, single-class target for ReassignClass); \p Case
/// is left untouched then.  A true return only means the mutation was
/// applied -- the caller still validates and may reject the candidate.
bool applyMutation(FuzzCase &Case, MutationKind Kind, Rng &R);

/// Draws a kind uniformly, applies it, and appends its name to
/// \p Case.Trail on success.
bool applyRandomMutation(FuzzCase &Case, Rng &R);

} // namespace layra

#endif // LAYRA_FUZZ_MUTATOR_H
