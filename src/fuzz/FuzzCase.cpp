//===- fuzz/FuzzCase.cpp - One structured fuzzing case ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzCase.h"

#include "driver/BatchDriver.h" // hashFunction
#include "ir/Liveness.h"
#include "ir/Parser.h"
#include "support/ParseUtil.h"
#include "support/Random.h" // splitMix64

#include <sstream>

using namespace layra;

unsigned FuzzCase::numInstructions() const {
  unsigned N = 0;
  for (const BasicBlock &BB : F.blocks())
    N += static_cast<unsigned>(BB.Instrs.size());
  return N;
}

bool layra::validateCase(const FuzzCase &Case, std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  const TargetDesc *Target = Case.target();
  if (!Target)
    return Fail("unknown target '" + Case.TargetName + "'");
  if (Case.Budgets.size() != Target->numClasses())
    return Fail("budgets size " + std::to_string(Case.Budgets.size()) +
                " does not match target class count " +
                std::to_string(Target->numClasses()));
  for (unsigned B : Case.Budgets)
    if (B == 0)
      return Fail("zero register budget");
  if (std::string E = checkFunctionClasses(Case.F, *Target); !E.empty())
    return Fail(E);

  std::string VerifyError;
  if (!verifyFunction(Case.F, /*ExpectSsa=*/false, &VerifyError))
    return Fail("verify: " + VerifyError);

  // The mutation substrate is phi-free: phis only appear after SSA
  // conversion, and every CFG mutator relies on not having to maintain
  // positional phi operands.
  for (const BasicBlock &BB : Case.F.blocks())
    for (const Instruction &I : BB.Instrs)
      if (I.isPhi())
        return Fail("phi instruction in non-SSA fuzz substrate (block '" +
                    BB.Name + "')");

  // Reachability: dominators/SSA construction assume every block hangs off
  // the entry.  Mutators that orphan a block must cascade-delete it.
  std::vector<char> Seen(Case.F.numBlocks(), 0);
  std::vector<BlockId> Work{Case.F.entry()};
  Seen[Case.F.entry()] = 1;
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (BlockId S : Case.F.block(B).Succs)
      if (!Seen[S]) {
        Seen[S] = 1;
        Work.push_back(S);
      }
  }
  for (BlockId B = 0; B < Case.F.numBlocks(); ++B)
    if (!Seen[B])
      return Fail("unreachable block '" + Case.F.block(B).Name + "'");

  // Strict definedness: no variable may be live into the entry block,
  // otherwise some path uses it before any definition and SSA conversion
  // would materialize <undef> phi operands the allocators never see in
  // production.
  Liveness Live(Case.F);
  const BitVector &EntryIn = Live.liveIn(Case.F.entry());
  for (ValueId V = 0; V < Case.F.numValues(); ++V)
    if (EntryIn.test(V))
      return Fail("value %" + std::to_string(V) +
                  " is used before any definition on some path");
  return true;
}

bool layra::normalizeCase(FuzzCase &Case, std::string *Error) {
  ParsedFunction Parsed = parseFunction(Case.F.toString());
  if (!Parsed.Ok) {
    if (Error)
      *Error = "normalize: line " + std::to_string(Parsed.Line) + ": " +
               Parsed.Error;
    return false;
  }
  Case.F = std::move(Parsed.F);
  return true;
}

std::string layra::formatReproducer(const FuzzCase &Case) {
  std::string Out = ";! layra-fuzz-reproducer/v1\n";
  Out += ";! target=" + Case.TargetName + "\n";
  Out += ";! budgets=";
  for (size_t I = 0; I < Case.Budgets.size(); ++I)
    Out += (I ? "," : "") + std::to_string(Case.Budgets[I]);
  Out += "\n";
  Out += ";! seed=" + std::to_string(Case.Seed) +
         " run=" + std::to_string(Case.Run) + "\n";
  if (!Case.OracleName.empty())
    Out += ";! oracle=" + Case.OracleName + "\n";
  if (!Case.Trail.empty()) {
    Out += ";! trail=";
    for (size_t I = 0; I < Case.Trail.size(); ++I)
      Out += (I ? "," : "") + Case.Trail[I];
    Out += "\n";
  }
  if (!Case.Detail.empty()) {
    // The detail must stay one line to keep the file parseable.
    std::string Flat = Case.Detail;
    for (char &C : Flat)
      if (C == '\n' || C == '\r')
        C = ' ';
    Out += ";! detail=" + Flat + "\n";
  }
  Out += Case.F.toString();
  return Out;
}

bool layra::parseReproducer(const std::string &Text, FuzzCase &Case,
                            std::string *Error) {
  FuzzCase Out;
  std::string IrText;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind(";!", 0) != 0) {
      IrText += Line + "\n";
      continue;
    }
    std::string Meta = Line.substr(2);
    // Metadata lines are `key=value` tokens separated by spaces; only
    // `trail` and `detail` swallow the rest of the line.
    size_t Pos = 0;
    while (Pos < Meta.size()) {
      while (Pos < Meta.size() && Meta[Pos] == ' ')
        ++Pos;
      size_t Eq = Meta.find('=', Pos);
      if (Eq == std::string::npos)
        break; // The version tag line has no '='.
      std::string Key = Meta.substr(Pos, Eq - Pos);
      size_t End = (Key == "trail" || Key == "detail")
                       ? Meta.size()
                       : Meta.find(' ', Eq + 1);
      if (End == std::string::npos)
        End = Meta.size();
      std::string Value = Meta.substr(Eq + 1, End - (Eq + 1));
      Pos = End;
      if (Key == "target") {
        Out.TargetName = Value;
      } else if (Key == "budgets") {
        Out.Budgets.clear();
        for (const std::string &Item : splitCommaList(Value)) {
          unsigned B = 0;
          if (!parseBoundedUnsigned(Item.c_str(), 1024, B) || B == 0) {
            if (Error)
              *Error = "bad budgets metadata '" + Value + "'";
            return false;
          }
          Out.Budgets.push_back(B);
        }
      } else if (Key == "seed") {
        Out.Seed = std::strtoull(Value.c_str(), nullptr, 10);
      } else if (Key == "run") {
        Out.Run = std::strtoull(Value.c_str(), nullptr, 10);
      } else if (Key == "oracle") {
        Out.OracleName = Value;
      } else if (Key == "trail") {
        for (const std::string &Item : splitCommaList(Value))
          Out.Trail.push_back(Item);
      } else if (Key == "detail") {
        Out.Detail = Value;
      }
      // Unknown keys: ignored (forward compatibility).
    }
  }

  ParsedFunction Parsed = parseFunction(IrText);
  if (!Parsed.Ok) {
    if (Error)
      *Error = "line " + std::to_string(Parsed.Line) + ": " + Parsed.Error;
    return false;
  }
  Out.F = std::move(Parsed.F);

  const TargetDesc *Target = targetByName(Out.TargetName);
  if (!Target) {
    if (Error)
      *Error = "unknown target '" + Out.TargetName + "'";
    return false;
  }
  // Bare corpus files carry no budgets line: default to the historical
  // sweep entry point (R=4 for class 0, architectural counts elsewhere).
  if (Out.Budgets.empty())
    Out.Budgets = resolveClassBudgets(*Target, 4, {});
  if (Out.Budgets.size() != Target->numClasses()) {
    if (Error)
      *Error = "budgets list has " + std::to_string(Out.Budgets.size()) +
               " entries but target '" + Out.TargetName + "' has " +
               std::to_string(Target->numClasses()) + " class(es)";
    return false;
  }
  Case = std::move(Out);
  return true;
}

uint64_t layra::hashCase(const FuzzCase &Case) {
  uint64_t H = hashFunction(Case.F);
  uint64_t State = H ^ 0x66757a7a2d636173ULL; // "fuzz-cas"
  for (char C : Case.TargetName) {
    State ^= static_cast<unsigned char>(C);
    H ^= splitMix64(State);
  }
  for (unsigned B : Case.Budgets) {
    State ^= B;
    H ^= splitMix64(State);
  }
  return H;
}
