//===- fuzz/Fuzzer.h - Deterministic fuzzing sessions -----------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzing session behind `layra-fuzz`: draws base cases from the
/// seed corpus and from perturbed ProgramGen configurations, applies a
/// seed-deterministic burst of structured mutations (fuzz/Mutator.h),
/// sweeps the oracle registry (fuzz/Oracles.h) over every accepted
/// mutant, and on a violation minimizes the case (fuzz/Minimizer.h) and
/// writes a content-addressed reproducer (fuzz/Corpus.h).
///
/// Determinism contract: a session's entire observable output -- which
/// cases are generated, which oracles fail, the minimized reproducer
/// bytes and file names -- is a pure function of (Seed, Runs, options).
/// Run i draws from its own SplitMix64-derived stream, so neither
/// failures nor minimization consume random state that later runs see.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_FUZZ_FUZZER_H
#define LAYRA_FUZZ_FUZZER_H

#include "fuzz/FuzzCase.h"
#include "fuzz/Oracles.h"

#include <cstdio>
#include <string>
#include <vector>

namespace layra {

/// Session configuration.
struct FuzzOptions {
  uint64_t Seed = 1;
  unsigned Runs = 100;
  std::string TargetName = "st231";
  /// Seed corpus directory ("" = none; generated bases only).
  std::string CorpusDir;
  /// Negative corpus directory ("" = none).  Every file here must fail
  /// to parse cleanly; a file that parses is a session-level error.
  std::string NegativeDir;
  /// Where minimized reproducers land.
  std::string CrashDir = "fuzz/crashes";
  /// Oracle names to run; empty = every registered oracle (server-backed
  /// ones only when a server is enabled).
  std::vector<std::string> Oracles;
  /// Start an in-process allocation server and enable the serve-direct
  /// oracle against it.
  bool ServeOracle = false;
  /// Planted-failure debug flag (see OracleContext::BreakOracle).
  std::string BreakOracle;
  /// Mutations attempted per run (1..N drawn uniformly).
  unsigned MaxMutationsPerCase = 4;
  /// Minimize failing cases before writing reproducers.
  bool Minimize = true;
  /// Stop after this many distinct failures (0 = never stop early).
  unsigned MaxFailures = 0;
};

/// One recorded failure.
struct FuzzFailure {
  FuzzCase Case;        ///< Minimized (when FuzzOptions::Minimize).
  std::string CrashPath; ///< Written reproducer ("" if writing failed).
};

/// Per-oracle outcome counters for one session.  Pass/Fail count main
/// sweep verdicts only (minimization re-sweeps are deliberately
/// excluded so the numbers stay comparable across --minimize settings);
/// Minimized counts failures of this oracle that went through the
/// minimizer.
struct OracleTally {
  std::string Name;
  uint64_t Pass = 0;
  uint64_t Fail = 0;
  uint64_t Minimized = 0;
};

/// Session outcome.
struct FuzzReport {
  unsigned Runs = 0;
  unsigned CorpusSeeds = 0;
  unsigned NegativeSeeds = 0;
  uint64_t MutationsApplied = 0;
  uint64_t MutationsRejected = 0;
  uint64_t OracleChecks = 0;
  /// One entry per selected oracle, in registry selection order.
  std::vector<OracleTally> Tallies;
  std::vector<FuzzFailure> Failures;
  /// Session-level problems (unreadable corpus, negative seed that
  /// parsed, ...).  Non-empty means the session itself is unhealthy,
  /// independent of oracle verdicts.
  std::vector<std::string> Errors;

  bool clean() const { return Failures.empty() && Errors.empty(); }
};

/// Runs a fuzzing session.  \p Log (optional) receives one line per
/// failure and a summary; pass nullptr for silence.
FuzzReport runFuzzSession(const FuzzOptions &Options, std::FILE *Log);

/// Replays one reproducer file: runs the oracle named in its metadata
/// (or, when absent, every oracle \p Options selects) against the case.
/// Returns the outcome of the *violated* oracle when the failure
/// reproduces; Ok=true when the case is clean.  \p Options supplies
/// BreakOracle/ServeOracle context; Seed/Runs/corpus fields are ignored.
OracleOutcome reproduceFile(const std::string &Path,
                            const FuzzOptions &Options, std::string *Error);

} // namespace layra

#endif // LAYRA_FUZZ_FUZZER_H
