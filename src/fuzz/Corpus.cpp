//===- fuzz/Corpus.cpp - Seed corpus and crash reports ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "ir/Parser.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <set>
#include <sstream>
#include <sys/stat.h>

using namespace layra;

namespace {

/// Name-sorted `*.lir` entries of \p Dir (regular files only).
bool listLirFiles(const std::string &Dir, std::vector<std::string> &Paths,
                  std::string *Error) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D) {
    if (Error)
      *Error = Dir + ": " + std::strerror(errno);
    return false;
  }
  std::vector<std::string> Names;
  while (struct dirent *Entry = ::readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name.size() < 4 || Name.compare(Name.size() - 4, 4, ".lir") != 0)
      continue;
    struct stat Sb;
    std::string Path = Dir + "/" + Name;
    if (::stat(Path.c_str(), &Sb) == 0 && S_ISREG(Sb.st_mode))
      Names.push_back(std::move(Name));
  }
  ::closedir(D);
  // readdir order is filesystem-dependent; sorting keeps every fuzz run
  // bit-reproducible.
  std::sort(Names.begin(), Names.end());
  for (std::string &Name : Names)
    Paths.push_back(Dir + "/" + Name);
  return true;
}

bool readFile(const std::string &Path, std::string &Out, std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = Path + ": cannot open";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

std::string hexDigits(uint64_t Value) {
  static const char *Digits = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[I] = Digits[Value & 0xF];
    Value >>= 4;
  }
  return Out;
}

} // namespace

bool layra::loadCorpus(const std::string &Dir, std::vector<FuzzCase> &Cases,
                       std::vector<std::string> &Errors) {
  std::vector<std::string> Paths;
  std::string DirError;
  if (!listLirFiles(Dir, Paths, &DirError)) {
    Errors.push_back(DirError);
    return false;
  }
  std::set<uint64_t> Seen;
  for (const std::string &Path : Paths) {
    FuzzCase Case;
    std::string Error;
    if (!loadReproducerFile(Path, Case, &Error)) {
      Errors.push_back(Error);
      continue;
    }
    if (!Seen.insert(hashCase(Case)).second)
      continue; // Content-hash duplicate of an earlier seed.
    Cases.push_back(std::move(Case));
  }
  return true;
}

bool layra::checkNegativeCorpus(const std::string &Dir,
                                std::vector<std::string> &Violations,
                                unsigned *NumScanned) {
  std::vector<std::string> Paths;
  std::string DirError;
  if (!listLirFiles(Dir, Paths, &DirError)) {
    Violations.push_back(DirError);
    return false;
  }
  if (NumScanned)
    *NumScanned = static_cast<unsigned>(Paths.size());
  for (const std::string &Path : Paths) {
    std::string Text, Error;
    if (!readFile(Path, Text, &Error)) {
      Violations.push_back(Error);
      continue;
    }
    ParsedFunction Parsed = parseFunction(Text);
    if (Parsed.Ok)
      Violations.push_back(Path + ": expected a parse error, but the file "
                                  "parsed successfully");
    else if (Parsed.Error.empty())
      Violations.push_back(Path + ": parse failed without an error message");
  }
  return true;
}

std::string layra::writeCrashFile(const std::string &Dir,
                                  const FuzzCase &Case, std::string *Error) {
  // Create the directory (and parents: crash dirs like fuzz/crashes may
  // be two levels deep on a fresh checkout).
  for (size_t Pos = 0; Pos != std::string::npos;) {
    Pos = Dir.find('/', Pos + 1);
    std::string Prefix = Pos == std::string::npos ? Dir : Dir.substr(0, Pos);
    if (Prefix.empty())
      continue;
    if (::mkdir(Prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      if (Error)
        *Error = Prefix + ": " + std::strerror(errno);
      return {};
    }
  }
  std::string Path = Dir + "/crash-" + hexDigits(hashCase(Case)) + ".lir";
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    if (Error)
      *Error = Path + ": cannot write";
    return {};
  }
  Out << formatReproducer(Case);
  Out.close();
  if (!Out) {
    if (Error)
      *Error = Path + ": write failed";
    return {};
  }
  return Path;
}

bool layra::loadReproducerFile(const std::string &Path, FuzzCase &Case,
                               std::string *Error) {
  std::string Text;
  if (!readFile(Path, Text, Error))
    return false;
  std::string ParseError;
  if (!parseReproducer(Text, Case, &ParseError)) {
    if (Error)
      *Error = Path + ": " + ParseError;
    return false;
  }
  std::string ValidateError;
  if (!validateCase(Case, &ValidateError)) {
    if (Error)
      *Error = Path + ": " + ValidateError;
    return false;
  }
  return true;
}
