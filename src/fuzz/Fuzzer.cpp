//===- fuzz/Fuzzer.cpp - Deterministic fuzzing sessions ---------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "core/SolverWorkspace.h"
#include "fuzz/Corpus.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Mutator.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "obs/Metrics.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Random.h"

#include <cstdlib>
#include <memory>
#include <set>
#include <unistd.h>

using namespace layra;

namespace {

/// The in-process allocation server the serve-direct oracle talks to.
/// One per session, started lazily; the socket lives in /tmp and never
/// influences session output (the oracle compares payload bytes only).
/// Runs with more than one shard and a throwaway disk cache on purpose:
/// the byte-identity oracle then also covers shard routing and
/// persistent-cache transparency on every fuzz case.
struct ServeHarness {
  static constexpr unsigned kThreads = 2;
  static constexpr unsigned kShards = 2;
  std::unique_ptr<Server> Srv;
  Client Conn;
  std::string DiskDir;

  bool start(uint64_t Seed, std::string *Error) {
    ServerOptions Opt;
    Opt.UnixPath = "/tmp/layra-fuzz-" + std::to_string(::getpid()) + "-" +
                   std::to_string(Seed) + ".sock";
    Opt.Threads = kThreads;
    Opt.Shards = kShards;
    char Template[] = "/tmp/layra-fuzz-disk-XXXXXX";
    if (char *Dir = ::mkdtemp(Template)) {
      DiskDir = Dir;
      Opt.DiskCacheDir = DiskDir;
    }
    Srv = std::make_unique<Server>(Opt);
    if (!Srv->start(Error))
      return false;
    Conn = Client::connectToUnix(Srv->unixPath(), Error);
    return Conn.valid();
  }

  ~ServeHarness() {
    if (Srv) {
      Conn.close();
      Srv->requestStop();
      Srv->wait();
    }
    if (!DiskDir.empty()) {
      // Best-effort scratch cleanup: entries live two levels deep
      // (DIR/<2-hex>/<key>), nothing else is ever in the directory.
      std::string Cmd = "rm -rf '" + DiskDir + "'";
      (void)!std::system(Cmd.c_str());
    }
  }
};

/// Resolves the oracle set a session runs: explicit names when given,
/// otherwise the whole registry (server-backed oracles only when a
/// server is up).  Unknown names land in \p Errors.
std::vector<const Oracle *> selectOracles(const FuzzOptions &Options,
                                          bool HaveServer,
                                          std::vector<std::string> &Errors) {
  std::vector<const Oracle *> Selected;
  if (Options.Oracles.empty()) {
    for (const Oracle &O : oracleRegistry())
      if (!O.NeedsServer || HaveServer)
        Selected.push_back(&O);
    return Selected;
  }
  for (const std::string &Name : Options.Oracles) {
    const Oracle *O = findOracle(Name);
    if (!O) {
      Errors.push_back("unknown oracle '" + Name + "'");
      continue;
    }
    if (O->NeedsServer && !HaveServer) {
      Errors.push_back("oracle '" + Name +
                       "' needs the in-process server (--serve-oracle)");
      continue;
    }
    Selected.push_back(O);
  }
  return Selected;
}

/// A fresh base case from a perturbed ProgramGen configuration -- the
/// "mutate the generator config" half of the mutation surface.  Sizes
/// stay small enough that the exact-solver oracles are affordable.
FuzzCase generateBase(const TargetDesc &Target, uint64_t Run, Rng &R) {
  ProgramGenOptions Gen;
  Gen.NumVars = 6 + static_cast<unsigned>(R.nextBelow(8));
  Gen.NumParams = 2 + static_cast<unsigned>(R.nextBelow(3));
  Gen.MaxBlocks = 12 + static_cast<unsigned>(R.nextBelow(8));
  Gen.MaxNesting = 1 + static_cast<unsigned>(R.nextBelow(3));
  Gen.ExprsPerBlockMin = 1;
  Gen.ExprsPerBlockMax = 2 + static_cast<unsigned>(R.nextBelow(3));
  Gen.LoopProb = 0.20 + 0.30 * R.nextDouble();
  Gen.IfProb = 0.20 + 0.30 * R.nextDouble();
  Gen.CopyProb = 0.05 + 0.15 * R.nextDouble();
  Gen.NumClasses = Target.numClasses();
  Gen.AltClassProb = 0.25 + 0.25 * R.nextDouble();

  FuzzCase Case;
  Case.TargetName = Target.Name;
  Case.F = generateFunction(R, Gen, "fz" + std::to_string(Run));
  for (unsigned C = 0; C < Target.numClasses(); ++C)
    Case.Budgets.push_back(2 + static_cast<unsigned>(R.nextBelow(7)));
  return Case;
}

/// Finds (or appends) the tally row for \p Name.  Rows are appended in
/// first-seen order, which for the main sweep is selection order --
/// deterministic across runs of the same session configuration.
OracleTally &tallyFor(std::vector<OracleTally> &Tallies,
                      const std::string &Name) {
  for (OracleTally &T : Tallies)
    if (T.Name == Name)
      return T;
  Tallies.push_back(OracleTally{Name, 0, 0, 0});
  return Tallies.back();
}

/// Runs every selected oracle over \p Case; returns the first failure
/// (Ok=true when the case is clean).  \p Checks counts oracle runs.
/// \p Tallies (optional) receives per-oracle pass/fail counts -- the
/// main sweep passes it, minimization re-sweeps pass nullptr so the
/// counters mean the same thing with and without --minimize.
OracleOutcome sweepOracles(const FuzzCase &Case,
                           const std::vector<const Oracle *> &Selected,
                           SolverWorkspace *WS, Client *ServeClient,
                           const std::string &BreakOracle,
                           uint64_t *Checks, std::string *FailedOracle,
                           std::vector<OracleTally> *Tallies = nullptr) {
  SsaConversion Ssa = convertToSsa(Case.F);
  OracleContext Ctx;
  Ctx.Case = &Case;
  Ctx.Target = Case.target();
  Ctx.Ssa = &Ssa.Ssa;
  Ctx.WS = WS;
  Ctx.ServeClient = ServeClient;
  Ctx.ServeThreads = ServeHarness::kThreads;
  Ctx.BreakOracle = BreakOracle;
  for (const Oracle *O : Selected) {
    if (Checks)
      ++*Checks;
    OracleOutcome Outcome = runOracle(*O, Ctx);
    if (Tallies) {
      OracleTally &T = tallyFor(*Tallies, O->Name);
      Outcome.Ok ? ++T.Pass : ++T.Fail;
    }
    if (!Outcome.Ok) {
      if (FailedOracle)
        *FailedOracle = O->Name;
      return Outcome;
    }
  }
  return {};
}

} // namespace

FuzzReport layra::runFuzzSession(const FuzzOptions &Options, std::FILE *Log) {
  FuzzReport Report;
  const TargetDesc *Target = targetByName(Options.TargetName);
  if (!Target) {
    Report.Errors.push_back("unknown target '" + Options.TargetName + "'");
    return Report;
  }

  // Corpus: positive seeds join the base pool, negative seeds must fail
  // to parse cleanly before any fuzzing happens.
  std::vector<FuzzCase> CorpusCases;
  if (!Options.CorpusDir.empty()) {
    std::vector<std::string> CorpusErrors;
    loadCorpus(Options.CorpusDir, CorpusCases, CorpusErrors);
    for (std::string &E : CorpusErrors)
      Report.Errors.push_back("corpus: " + E);
  }
  Report.CorpusSeeds = static_cast<unsigned>(CorpusCases.size());
  if (!Options.NegativeDir.empty()) {
    std::vector<std::string> Violations;
    checkNegativeCorpus(Options.NegativeDir, Violations,
                        &Report.NegativeSeeds);
    for (std::string &V : Violations)
      Report.Errors.push_back("negative corpus: " + V);
  }

  ServeHarness Serve;
  Client *ServeClient = nullptr;
  if (Options.ServeOracle) {
    std::string Error;
    if (Serve.start(Options.Seed, &Error))
      ServeClient = &Serve.Conn;
    else
      Report.Errors.push_back("serve harness: " + Error);
  }

  std::vector<const Oracle *> Selected =
      selectOracles(Options, ServeClient != nullptr, Report.Errors);
  if (Selected.empty())
    Report.Errors.push_back("no oracles selected");
  if (!Report.Errors.empty())
    return Report;
  // Pre-seed one row per selected oracle so a session where an oracle
  // never fired still reports it (with zeros), in selection order.
  for (const Oracle *O : Selected)
    tallyFor(Report.Tallies, O->Name);

  // One long-lived workspace, the BatchDriver worker pattern: reuse
  // across every case is itself under test (workspace-pure oracle).
  SolverWorkspace WS;
  std::set<uint64_t> SeenFailures;

  for (uint64_t Run = 0; Run < Options.Runs; ++Run) {
    Report.Runs = static_cast<unsigned>(Run + 1);
    // Every run draws from its own derived stream: failures and
    // minimization never shift the randomness later runs see.
    uint64_t DeriveState =
        Options.Seed ^ (0x9e3779b97f4a7c15ULL * (Run + 1));
    Rng R(splitMix64(DeriveState));

    FuzzCase Case;
    if (!CorpusCases.empty() && R.nextBool(0.5))
      Case = R.pick(CorpusCases);
    else
      Case = generateBase(*Target, Run, R);
    Case.Seed = Options.Seed;
    Case.Run = Run;
    if (!validateCase(Case) || !normalizeCase(Case))
      continue; // Generator hiccup: count nothing, stay deterministic.

    unsigned Burst =
        1 + static_cast<unsigned>(R.nextBelow(Options.MaxMutationsPerCase));
    for (unsigned M = 0; M < Burst; ++M) {
      FuzzCase Candidate = Case;
      if (!applyRandomMutation(Candidate, R)) {
        ++Report.MutationsRejected;
        continue;
      }
      if (!validateCase(Candidate) || !normalizeCase(Candidate)) {
        ++Report.MutationsRejected;
        continue;
      }
      Case = std::move(Candidate);
      ++Report.MutationsApplied;
    }

    std::string FailedOracle;
    OracleOutcome Outcome =
        sweepOracles(Case, Selected, &WS, ServeClient, Options.BreakOracle,
                     &Report.OracleChecks, &FailedOracle, &Report.Tallies);
    if (Outcome.Ok)
      continue;

    Case.OracleName = FailedOracle;
    Case.Detail = Outcome.Detail;
    const Oracle *O = findOracle(FailedOracle);
    if (Options.Minimize && O) {
      ++tallyFor(Report.Tallies, FailedOracle).Minimized;
      minimizeCase(Case, [&](const FuzzCase &Candidate) {
        return !sweepOracles(Candidate, {O}, &WS, ServeClient,
                             Options.BreakOracle, nullptr, nullptr)
                    .Ok;
      });
      // Minimization may land on a different failure detail; refresh it.
      std::string MinOracle;
      OracleOutcome MinOutcome =
          sweepOracles(Case, {O}, &WS, ServeClient, Options.BreakOracle,
                       nullptr, &MinOracle);
      if (!MinOutcome.Ok)
        Case.Detail = MinOutcome.Detail;
    }

    if (!SeenFailures.insert(hashCase(Case)).second)
      continue; // Same minimized case already reported this session.

    FuzzFailure Failure;
    Failure.Case = Case;
    std::string WriteError;
    Failure.CrashPath =
        writeCrashFile(Options.CrashDir, Case, &WriteError);
    if (Failure.CrashPath.empty())
      Report.Errors.push_back("crash report: " + WriteError);
    if (Log)
      std::fprintf(Log,
                   "FAIL run=%llu oracle=%s instrs=%u crash=%s\n  %s\n",
                   static_cast<unsigned long long>(Run), FailedOracle.c_str(),
                   Case.numInstructions(),
                   Failure.CrashPath.empty() ? "<unwritten>"
                                             : Failure.CrashPath.c_str(),
                   Case.Detail.c_str());
    Report.Failures.push_back(std::move(Failure));
    if (Options.MaxFailures &&
        Report.Failures.size() >= Options.MaxFailures)
      break;
  }

  // Publish the per-oracle counters into the global registry so a
  // --metrics-dump from the CLI carries them alongside solver metrics.
  MetricsRegistry &MR = MetricsRegistry::global();
  for (const OracleTally &T : Report.Tallies) {
    const std::string Base = "layra.fuzz.oracle." + T.Name;
    MR.add(MR.counter(Base + ".pass"), T.Pass);
    MR.add(MR.counter(Base + ".fail"), T.Fail);
    MR.add(MR.counter(Base + ".minimized"), T.Minimized);
  }

  if (Log) {
    std::fprintf(Log,
                 "fuzz: %u runs, %llu mutations (%llu rejected), %llu "
                 "oracle checks, %zu failures, %u corpus seeds, %u "
                 "negative seeds\n",
                 Report.Runs,
                 static_cast<unsigned long long>(Report.MutationsApplied),
                 static_cast<unsigned long long>(Report.MutationsRejected),
                 static_cast<unsigned long long>(Report.OracleChecks),
                 Report.Failures.size(), Report.CorpusSeeds,
                 Report.NegativeSeeds);
    // Deterministic per-oracle lines (selection order, fixed format):
    // part of the session's observable output, so the bit-for-bit
    // reproducibility check in CI covers them too.
    for (const OracleTally &T : Report.Tallies)
      std::fprintf(Log, "oracle %s: %llu pass, %llu fail, %llu minimized\n",
                   T.Name.c_str(),
                   static_cast<unsigned long long>(T.Pass),
                   static_cast<unsigned long long>(T.Fail),
                   static_cast<unsigned long long>(T.Minimized));
  }
  return Report;
}

OracleOutcome layra::reproduceFile(const std::string &Path,
                                   const FuzzOptions &Options,
                                   std::string *Error) {
  FuzzCase Case;
  if (!loadReproducerFile(Path, Case, Error))
    return {}; // Ok=true, but *Error tells the caller loading failed.

  std::vector<std::string> SelectErrors;
  ServeHarness Serve;
  Client *ServeClient = nullptr;
  if (Options.ServeOracle) {
    std::string ServeError;
    if (Serve.start(Options.Seed, &ServeError))
      ServeClient = &Serve.Conn;
    else if (Error) {
      *Error = "serve harness: " + ServeError;
      return {};
    }
  }

  std::vector<const Oracle *> Selected;
  if (!Case.OracleName.empty()) {
    const Oracle *O = findOracle(Case.OracleName);
    if (!O) {
      if (Error)
        *Error = "reproducer names unknown oracle '" + Case.OracleName + "'";
      return {};
    }
    if (O->NeedsServer && !ServeClient) {
      if (Error)
        *Error = "oracle '" + Case.OracleName +
                 "' needs the in-process server (--serve-oracle)";
      return {};
    }
    Selected.push_back(O);
  } else {
    Selected = selectOracles(Options, ServeClient != nullptr, SelectErrors);
    if (!SelectErrors.empty()) {
      if (Error)
        *Error = SelectErrors.front();
      return {};
    }
  }

  SolverWorkspace WS;
  return sweepOracles(Case, Selected, &WS, ServeClient, Options.BreakOracle,
                      nullptr, nullptr);
}
