//===- fuzz/Minimizer.h - Delta-debugging case minimizer --------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing FuzzCase to a minimal reproducer: greedy
/// delta-debugging over blocks, instruction chunks, operands, budgets,
/// frequencies and register classes, accepting a candidate only when it
/// (a) still passes validateCase() and (b) still fails the same oracle.
/// Deterministic: candidate order is fixed, no randomness, so the same
/// failing case always minimizes to the same bytes -- which is what makes
/// `layra-fuzz --runs=N --seed=S` bit-reproducible end to end.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_FUZZ_MINIMIZER_H
#define LAYRA_FUZZ_MINIMIZER_H

#include "fuzz/FuzzCase.h"

#include <functional>

namespace layra {

/// Statistics of one minimization.
struct MinimizeStats {
  unsigned CandidatesTried = 0;
  unsigned CandidatesAccepted = 0;
  unsigned Rounds = 0;
};

/// Shrinks \p Case in place.  \p StillFails must return true when a
/// candidate still exhibits the failure being chased; it is only ever
/// called on candidates that pass validateCase().  The function runs
/// whole passes to a fixpoint (bounded by \p MaxRounds as a safety
/// valve); on return \p Case is the smallest accepted variant, already
/// normalized through the parser round trip.
MinimizeStats minimizeCase(FuzzCase &Case,
                           const std::function<bool(const FuzzCase &)> &StillFails,
                           unsigned MaxRounds = 32);

} // namespace layra

#endif // LAYRA_FUZZ_MINIMIZER_H
