//===- fuzz/Corpus.h - Seed corpus and crash reports ------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-corpus management for `layra-fuzz`: loading `.lir` reproducer
/// files from a directory (sorted by name and deduplicated by content
/// hash so re-committing an equivalent seed is a no-op), loading the
/// *negative* corpus (files that must fail to parse cleanly -- crash
/// regression seeds for ir/Parser), and writing minimized crash
/// reproducers under a content-addressed name.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_FUZZ_CORPUS_H
#define LAYRA_FUZZ_CORPUS_H

#include "fuzz/FuzzCase.h"

#include <string>
#include <vector>

namespace layra {

/// Loads every `*.lir` file under \p Dir (non-recursive, name-sorted) as
/// a FuzzCase, dropping content-hash duplicates.  Files that fail to
/// parse or validate are reported in \p Errors ("<file>: <reason>"); the
/// good cases still load.  Returns false only when \p Dir itself cannot
/// be read.
bool loadCorpus(const std::string &Dir, std::vector<FuzzCase> &Cases,
                std::vector<std::string> &Errors);

/// Loads the negative corpus: every `*.lir` under \p Dir must make
/// parseFunction() return a clean error (Ok=false with a message -- and,
/// trivially, not crash).  Files that unexpectedly parse are appended to
/// \p Violations; \p NumScanned (optional) receives the file count.
/// Returns false when \p Dir cannot be read.
bool checkNegativeCorpus(const std::string &Dir,
                         std::vector<std::string> &Violations,
                         unsigned *NumScanned = nullptr);

/// Writes \p Case in reproducer format to
/// `<Dir>/crash-<16-hex-digits>.lir` (content-addressed via hashCase, so
/// rediscovering one minimized case never duplicates files).  Creates
/// \p Dir if needed.  Returns the path, or "" with \p Error set.
std::string writeCrashFile(const std::string &Dir, const FuzzCase &Case,
                           std::string *Error);

/// Reads one reproducer file into \p Case.  False with \p Error set on
/// IO, parse, or validation failure.
bool loadReproducerFile(const std::string &Path, FuzzCase &Case,
                        std::string *Error);

} // namespace layra

#endif // LAYRA_FUZZ_CORPUS_H
