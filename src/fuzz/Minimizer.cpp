//===- fuzz/Minimizer.cpp - Delta-debugging case minimizer ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include "fuzz/Mutator.h"

#include <algorithm>

using namespace layra;

namespace {

/// Shared accept gate: a candidate replaces the current case only when it
/// is structurally valid, normalizes, and still fails.
struct Shrinker {
  FuzzCase &Case;
  const std::function<bool(const FuzzCase &)> &StillFails;
  MinimizeStats Stats;

  bool accept(FuzzCase &Candidate) {
    ++Stats.CandidatesTried;
    if (!validateCase(Candidate) || !normalizeCase(Candidate))
      return false;
    if (!StillFails(Candidate))
      return false;
    // Keep provenance; only the payload shrinks.
    Candidate.Seed = Case.Seed;
    Candidate.Run = Case.Run;
    Candidate.Trail = Case.Trail;
    Candidate.OracleName = Case.OracleName;
    Candidate.Detail = Case.Detail;
    Case = std::move(Candidate);
    ++Stats.CandidatesAccepted;
    return true;
  }
};

/// Tries to delete whole non-entry blocks, rerouting nothing: edges into
/// a deleted block simply disappear (a `br` left succ-less becomes
/// `ret`), and blocks orphaned by the deletion are pruned along with it.
bool passDropBlocks(Shrinker &S) {
  bool Changed = false;
  for (unsigned B = 1; B < S.Case.F.numBlocks();) {
    FunctionSketch Sketch = FunctionSketch::fromFunction(S.Case.F);
    for (FunctionSketch::SketchBlock &SB : Sketch.Blocks)
      SB.Succs.erase(std::remove(SB.Succs.begin(), SB.Succs.end(), B),
                     SB.Succs.end());
    Sketch.Blocks[B].Succs.clear();
    // Make the dropped block unreachable, then let pruning remap.
    for (FunctionSketch::SketchBlock &SB : Sketch.Blocks)
      if (!SB.Instrs.empty() && SB.Instrs.back().Op == Opcode::Branch &&
          SB.Succs.empty())
        SB.Instrs.back().Op = Opcode::Return;
    FunctionSketch Pruned = std::move(Sketch);
    // B is now unreachable (no succ edges point at it).
    Pruned.pruneUnreachable();
    FuzzCase Candidate = S.Case;
    Candidate.F = Pruned.build();
    if (S.accept(Candidate))
      Changed = true; // Same index now names the next block.
    else
      ++B;
  }
  return Changed;
}

/// Tries to delete individual CFG edges (a back edge or one arm of a
/// branch); blocks orphaned by the cut are pruned, and a `br` left with
/// no successors becomes `ret`.
bool passDropEdges(Shrinker &S) {
  bool Changed = false;
  for (BlockId B = 0; B < S.Case.F.numBlocks(); ++B) {
    for (unsigned E = 0; E < S.Case.F.block(B).Succs.size();) {
      FunctionSketch Sketch = FunctionSketch::fromFunction(S.Case.F);
      FunctionSketch::SketchBlock &SB = Sketch.Blocks[B];
      SB.Succs.erase(SB.Succs.begin() + E);
      if (SB.Succs.empty() && !SB.Instrs.empty() &&
          SB.Instrs.back().Op == Opcode::Branch)
        SB.Instrs.back().Op = Opcode::Return;
      Sketch.pruneUnreachable();
      FuzzCase Candidate = S.Case;
      Candidate.F = Sketch.build();
      if (S.accept(Candidate)) {
        Changed = true;
        break; // Block ids shifted; restart this block's edge scan.
      }
      ++E;
    }
  }
  return Changed;
}

/// Merges single-succ/single-pred block pairs (an unconditional `br`
/// into a block nothing else enters).  Dropping a mid-chain block
/// outright would orphan everything behind it, so chains of empty blocks
/// survive passDropBlocks; merging collapses them.
bool passMergeChains(Shrinker &S) {
  bool Changed = true, Any = false;
  while (Changed) {
    Changed = false;
    const Function &F = S.Case.F;
    std::vector<unsigned> PredCount(F.numBlocks(), 0);
    for (BlockId B = 0; B < F.numBlocks(); ++B)
      for (BlockId Succ : F.block(B).Succs)
        ++PredCount[Succ];
    for (BlockId B = 0; B < F.numBlocks() && !Changed; ++B) {
      const BasicBlock &BB = F.block(B);
      if (BB.Succs.size() != 1 || BB.Instrs.empty() ||
          BB.Instrs.back().Op != Opcode::Branch)
        continue;
      BlockId Succ = BB.Succs[0];
      if (Succ == F.entry() || Succ == B || PredCount[Succ] != 1)
        continue;
      FunctionSketch Sketch = FunctionSketch::fromFunction(F);
      FunctionSketch::SketchBlock &SB = Sketch.Blocks[B];
      SB.Instrs.pop_back();
      for (Instruction &I : Sketch.Blocks[Succ].Instrs)
        SB.Instrs.push_back(std::move(I));
      SB.Succs = Sketch.Blocks[Succ].Succs;
      Sketch.Blocks[Succ].Succs.clear();
      Sketch.pruneUnreachable();
      FuzzCase Candidate = S.Case;
      Candidate.F = Sketch.build();
      if (S.accept(Candidate))
        Changed = Any = true;
    }
  }
  return Any;
}

/// Tries to delete runs of non-terminator instructions, halving chunk
/// sizes ddmin-style down to single instructions.
bool passDropInstructions(Shrinker &S) {
  bool Changed = false;
  for (unsigned Chunk = 8; Chunk >= 1; Chunk /= 2) {
    bool ChunkChanged = true;
    while (ChunkChanged) {
      ChunkChanged = false;
      for (BlockId B = 0; B < S.Case.F.numBlocks(); ++B) {
        unsigned NumInstrs =
            static_cast<unsigned>(S.Case.F.block(B).Instrs.size());
        for (unsigned Start = 0; Start < NumInstrs;) {
          const BasicBlock &BB = S.Case.F.block(B);
          if (Start >= BB.Instrs.size())
            break;
          unsigned End = std::min(
              Start + Chunk, static_cast<unsigned>(BB.Instrs.size()));
          // Never delete the terminator.
          if (!BB.Instrs.empty() &&
              End == BB.Instrs.size())
            End = static_cast<unsigned>(BB.Instrs.size()) - 1;
          if (End <= Start) {
            ++Start;
            continue;
          }
          FunctionSketch Sketch = FunctionSketch::fromFunction(S.Case.F);
          auto &Instrs = Sketch.Blocks[B].Instrs;
          Instrs.erase(Instrs.begin() + Start, Instrs.begin() + End);
          FuzzCase Candidate = S.Case;
          Candidate.F = Sketch.build();
          if (S.accept(Candidate)) {
            Changed = ChunkChanged = true;
            // Do not advance: the window now holds fresh instructions.
          } else {
            ++Start;
          }
        }
      }
    }
    if (Chunk == 1)
      break;
  }
  return Changed;
}

/// Tries to drop individual use operands (ops and terminators tolerate
/// any use count; copies need exactly one, so they are skipped).
bool passDropOperands(Shrinker &S) {
  bool Changed = false;
  for (BlockId B = 0; B < S.Case.F.numBlocks(); ++B) {
    for (unsigned I = 0; I < S.Case.F.block(B).Instrs.size(); ++I) {
      for (unsigned U = 0; U < S.Case.F.block(B).Instrs[I].Uses.size();) {
        if (S.Case.F.block(B).Instrs[I].Op == Opcode::Copy)
          break;
        FunctionSketch Sketch = FunctionSketch::fromFunction(S.Case.F);
        auto &Uses = Sketch.Blocks[B].Instrs[I].Uses;
        Uses.erase(Uses.begin() + U);
        FuzzCase Candidate = S.Case;
        Candidate.F = Sketch.build();
        if (S.accept(Candidate))
          Changed = true; // Same index now names the next use.
        else
          ++U;
      }
    }
  }
  return Changed;
}

/// Tries to canonicalize block frequencies to 1 and loop depths to 0.
bool passFlattenWeights(Shrinker &S) {
  bool Changed = false;
  for (BlockId B = 0; B < S.Case.F.numBlocks(); ++B) {
    const BasicBlock &BB = S.Case.F.block(B);
    if (BB.Frequency == 1 && BB.LoopDepth == 0)
      continue;
    FuzzCase Candidate = S.Case;
    Candidate.F.block(B).Frequency = 1;
    Candidate.F.block(B).LoopDepth = 0;
    if (S.accept(Candidate))
      Changed = true;
  }
  return Changed;
}

/// Tries to move every value back to class 0 (single-file cases are the
/// easiest to reason about).
bool passFlattenClasses(Shrinker &S) {
  bool Changed = false;
  for (ValueId V = 0; V < S.Case.F.numValues(); ++V) {
    if (S.Case.F.valueClass(V) == 0)
      continue;
    FunctionSketch Sketch = FunctionSketch::fromFunction(S.Case.F);
    Sketch.ValueClasses[V] = 0;
    FuzzCase Candidate = S.Case;
    Candidate.F = Sketch.build();
    if (S.accept(Candidate))
      Changed = true;
  }
  return Changed;
}

/// Tries smaller register budgets (smaller instances spill more and are
/// easier to eyeball).
bool passShrinkBudgets(Shrinker &S) {
  bool Changed = false;
  for (unsigned C = 0; C < S.Case.Budgets.size(); ++C)
    for (unsigned Budget : {1u, 2u, 4u}) {
      if (Budget >= S.Case.Budgets[C])
        break;
      FuzzCase Candidate = S.Case;
      Candidate.Budgets[C] = Budget;
      if (S.accept(Candidate)) {
        Changed = true;
        break;
      }
    }
  return Changed;
}

} // namespace

MinimizeStats layra::minimizeCase(
    FuzzCase &Case, const std::function<bool(const FuzzCase &)> &StillFails,
    unsigned MaxRounds) {
  Shrinker S{Case, StillFails, {}};
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    ++S.Stats.Rounds;
    bool Changed = false;
    Changed |= passDropBlocks(S);
    Changed |= passDropEdges(S);
    Changed |= passMergeChains(S);
    Changed |= passDropInstructions(S);
    Changed |= passDropOperands(S);
    Changed |= passFlattenWeights(S);
    Changed |= passFlattenClasses(S);
    Changed |= passShrinkBudgets(S);
    if (!Changed)
      break;
  }
  return S.Stats;
}
