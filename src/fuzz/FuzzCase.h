//===- fuzz/FuzzCase.h - One structured fuzzing case ------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit the fuzzing subsystem manipulates: a non-SSA, phi-free IR
/// function (the mutation substrate -- SSA conversion happens inside the
/// oracles, exactly as in the production pipeline) together with the
/// target it runs on and the per-class register budgets.  A case is fully
/// described by its textual reproducer form: `;!`-prefixed metadata lines
/// followed by the function in ir/Parser.h syntax, so every crash report
/// is a self-contained file a human (or `layra-fuzz --repro`) can replay.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_FUZZ_FUZZCASE_H
#define LAYRA_FUZZ_FUZZCASE_H

#include "ir/Program.h"
#include "ir/Target.h"

#include <cstdint>
#include <string>
#include <vector>

namespace layra {

/// One fuzzing case: function + target + budgets, plus the provenance the
/// crash reporter records.
struct FuzzCase {
  /// The function under test.  Non-SSA and phi-free by construction; the
  /// oracles convert to SSA themselves.
  Function F{"f"};
  /// Target name (targetByName); the class table budgets index into.
  std::string TargetName = "st231";
  /// Register budget per target class (resolveClassBudgets shape).
  std::vector<unsigned> Budgets;

  // --- Provenance (filled by the session, serialized into reproducers) ---
  /// Session seed and run index the case came from.
  uint64_t Seed = 0;
  uint64_t Run = 0;
  /// Names of the mutations applied, in order ("insert-op,add-loop,...").
  std::vector<std::string> Trail;
  /// Violated oracle (crash reports only).
  std::string OracleName;
  /// Oracle failure detail (crash reports only; single line).
  std::string Detail;

  const TargetDesc *target() const { return targetByName(TargetName); }

  /// Total instruction count (terminators included) -- the size metric the
  /// minimizer drives down.
  unsigned numInstructions() const;
};

/// Structural validity of a case: the function verifies (non-SSA), every
/// block is reachable from entry, every use is dominated by a definition
/// on every path (no variable is live into the entry block), the function
/// is phi-free, its register classes fit the target's class table, and
/// Budgets has one nonzero entry per target class.  Everything the
/// mutators and the minimizer produce must pass this gate before an
/// oracle ever sees it; \p Error (optional) receives the first violation.
bool validateCase(const FuzzCase &Case, std::string *Error = nullptr);

/// Canonicalizes \p Case.F through a print/parse round trip: value ids
/// are renumbered by first textual appearance, so structurally equal
/// cases serialize to equal bytes.  Returns false (case untouched) if the
/// round trip fails -- which is itself a parser bug worth reporting.
bool normalizeCase(FuzzCase &Case, std::string *Error = nullptr);

/// Serializes \p Case in the reproducer format:
///
/// \code
///   ;! layra-fuzz-reproducer/v1
///   ;! target=armv7-vfp
///   ;! budgets=4,2
///   ;! seed=7 run=12
///   ;! oracle=heuristic-vs-exact
///   ;! trail=insert-op,add-loop
///   ;! detail=lh spill cost 12 below proven optimum 15
///   function f { ... }
/// \endcode
std::string formatReproducer(const FuzzCase &Case);

/// Parses the reproducer format (metadata lines optional -- a bare `.lir`
/// corpus file is a valid reproducer with default target/budgets).
/// Unknown `;!` keys are ignored for forward compatibility.  On success
/// fills \p Case; on failure returns false with \p Error set.
bool parseReproducer(const std::string &Text, FuzzCase &Case,
                     std::string *Error);

/// Stable content hash of a case: hashFunction(F) mixed with the target
/// name and budgets.  Crash file names derive from it, so re-discovering
/// the same minimized case never duplicates a report.
uint64_t hashCase(const FuzzCase &Case);

} // namespace layra

#endif // LAYRA_FUZZ_FUZZCASE_H
