//===- fuzz/Mutator.cpp - Structured IR mutators ----------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "ir/Dominators.h"

#include <algorithm>

using namespace layra;

FunctionSketch FunctionSketch::fromFunction(const Function &F) {
  FunctionSketch S;
  S.Name = F.name();
  S.NumValues = F.numValues();
  S.ValueNames.resize(S.NumValues);
  S.ValueClasses.resize(S.NumValues, 0);
  for (ValueId V = 0; V < S.NumValues; ++V) {
    S.ValueNames[V] = F.valueName(V);
    S.ValueClasses[V] = F.valueClass(V);
  }
  S.Blocks.resize(F.numBlocks());
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock &BB = F.block(B);
    SketchBlock &SB = S.Blocks[B];
    SB.Name = BB.Name;
    SB.Instrs = BB.Instrs;
    SB.Succs.assign(BB.Succs.begin(), BB.Succs.end());
    SB.LoopDepth = BB.LoopDepth;
    SB.Frequency = BB.Frequency;
  }
  return S;
}

Function FunctionSketch::build() const {
  Function F(Name);
  for (const SketchBlock &SB : Blocks)
    F.makeBlock(SB.Name);
  // makeValue hands out dense ids from zero, so sketch value ids carry
  // over verbatim.
  for (ValueId V = 0; V < NumValues; ++V)
    F.makeValue(ValueNames[V], ValueClasses[V]);
  for (BlockId B = 0; B < Blocks.size(); ++B) {
    BasicBlock &BB = F.block(B);
    BB.Instrs = Blocks[B].Instrs;
    BB.LoopDepth = Blocks[B].LoopDepth;
    BB.Frequency = Blocks[B].Frequency;
  }
  // The substrate is phi-free, so edge insertion order is free of phi
  // operand semantics; inserting in block-then-succ order keeps rebuilds
  // deterministic.
  for (BlockId B = 0; B < Blocks.size(); ++B)
    for (unsigned To : Blocks[B].Succs)
      F.addEdge(B, To);
  return F;
}

void FunctionSketch::pruneUnreachable() {
  std::vector<char> Seen(Blocks.size(), 0);
  std::vector<unsigned> Work{0};
  Seen[0] = 1;
  while (!Work.empty()) {
    unsigned B = Work.back();
    Work.pop_back();
    for (unsigned S : Blocks[B].Succs)
      if (!Seen[S]) {
        Seen[S] = 1;
        Work.push_back(S);
      }
  }
  std::vector<unsigned> Remap(Blocks.size(), ~0u);
  unsigned Next = 0;
  for (unsigned B = 0; B < Blocks.size(); ++B)
    if (Seen[B])
      Remap[B] = Next++;
  if (Next == Blocks.size())
    return;
  std::vector<SketchBlock> Kept;
  Kept.reserve(Next);
  for (unsigned B = 0; B < Blocks.size(); ++B) {
    if (!Seen[B])
      continue;
    SketchBlock SB = std::move(Blocks[B]);
    for (unsigned &S : SB.Succs)
      S = Remap[S];
    // Reachable blocks only ever point at reachable blocks, so no succ
    // entry dangles -- but a caller may have emptied a succ list before
    // pruning, leaving a `br` with nowhere to go.
    if (SB.Succs.empty() && !SB.Instrs.empty() &&
        SB.Instrs.back().Op == Opcode::Branch)
      SB.Instrs.back().Op = Opcode::Return;
    Kept.push_back(std::move(SB));
  }
  Blocks = std::move(Kept);
}

const char *layra::mutationKindName(MutationKind Kind) {
  switch (Kind) {
  case MutationKind::InsertOp:
    return "insert-op";
  case MutationKind::DeleteInstr:
    return "delete-instr";
  case MutationKind::SwapInstrs:
    return "swap-instrs";
  case MutationKind::SplitBlock:
    return "split-block";
  case MutationKind::MergeBlocks:
    return "merge-blocks";
  case MutationKind::CloneBlock:
    return "clone-block";
  case MutationKind::AddLoop:
    return "add-loop";
  case MutationKind::ReassignClass:
    return "reassign-class";
  case MutationKind::PerturbFreq:
    return "perturb-freq";
  case MutationKind::PerturbBudget:
    return "perturb-budget";
  }
  return "unknown";
}

const std::vector<MutationKind> &layra::allMutationKinds() {
  static const std::vector<MutationKind> Kinds{
      MutationKind::InsertOp,      MutationKind::DeleteInstr,
      MutationKind::SwapInstrs,    MutationKind::SplitBlock,
      MutationKind::MergeBlocks,   MutationKind::CloneBlock,
      MutationKind::AddLoop,       MutationKind::ReassignClass,
      MutationKind::PerturbFreq,   MutationKind::PerturbBudget};
  return Kinds;
}

namespace {

/// A fresh block name not colliding with any existing one (parser block
/// names are unique).
std::string freshBlockName(const FunctionSketch &S, const char *Stem) {
  for (unsigned N = static_cast<unsigned>(S.Blocks.size());; ++N) {
    std::string Name = std::string(Stem) + std::to_string(N);
    bool Taken = false;
    for (const FunctionSketch::SketchBlock &SB : S.Blocks)
      if (SB.Name == Name) {
        Taken = true;
        break;
      }
    if (!Taken)
      return Name;
  }
}

/// Values guaranteed def-before-use at (Block, InstrIndex): everything the
/// entry block defines before its terminator (the entry dominates every
/// point) plus everything defined earlier in the same block.
std::vector<ValueId> valuesInScope(const Function &F, BlockId B,
                                   unsigned Index) {
  std::vector<char> Safe(F.numValues(), 0);
  if (B != F.entry())
    for (const Instruction &I : F.block(F.entry()).Instrs)
      for (ValueId V : I.Defs)
        Safe[V] = 1;
  const BasicBlock &BB = F.block(B);
  for (unsigned I = 0; I < Index && I < BB.Instrs.size(); ++I)
    for (ValueId V : BB.Instrs[I].Defs)
      Safe[V] = 1;
  std::vector<ValueId> Out;
  for (ValueId V = 0; V < F.numValues(); ++V)
    if (Safe[V])
      Out.push_back(V);
  return Out;
}

bool mutateInsertOp(FuzzCase &Case, Rng &R) {
  const TargetDesc *Target = Case.target();
  FunctionSketch S = FunctionSketch::fromFunction(Case.F);
  unsigned B = static_cast<unsigned>(R.nextBelow(S.Blocks.size()));
  FunctionSketch::SketchBlock &SB = S.Blocks[B];
  // Insert anywhere before the terminator.
  unsigned Pos = SB.Instrs.empty()
                     ? 0
                     : static_cast<unsigned>(R.nextBelow(SB.Instrs.size()));
  std::vector<ValueId> Scope = valuesInScope(Case.F, B, Pos);

  Instruction I;
  bool MakeCopy = !Scope.empty() && R.nextBool(0.2);
  I.Op = MakeCopy ? Opcode::Copy : Opcode::Op;
  unsigned NumUses =
      MakeCopy ? 1
               : (Scope.empty() ? 0
                                : static_cast<unsigned>(R.nextBelow(3)));
  for (unsigned U = 0; U < NumUses; ++U)
    I.Uses.push_back(R.pick(Scope));

  bool Redefine = Case.F.numValues() > 0 && R.nextBool(0.3);
  if (Redefine) {
    ValueId V = static_cast<ValueId>(R.nextBelow(Case.F.numValues()));
    // Copies stay within one register class (cross-class moves are
    // conversions, not coalescing candidates -- same rule as ProgramGen).
    if (MakeCopy && S.ValueClasses[V] != S.ValueClasses[I.Uses[0]])
      Redefine = false;
    else
      I.Defs.push_back(V);
  }
  if (I.Defs.empty()) {
    RegClassId Class = 0;
    if (MakeCopy)
      Class = S.ValueClasses[I.Uses[0]];
    else if (Target->numClasses() > 1 && R.nextBool(0.3))
      Class = static_cast<RegClassId>(
          1 + R.nextBelow(Target->numClasses() - 1));
    I.Defs.push_back(S.NumValues++);
    S.ValueNames.emplace_back();
    S.ValueClasses.push_back(Class);
  }
  SB.Instrs.insert(SB.Instrs.begin() + Pos, std::move(I));
  Case.F = S.build();
  return true;
}

bool mutateDeleteInstr(FuzzCase &Case, Rng &R) {
  std::vector<std::pair<unsigned, unsigned>> Candidates;
  for (BlockId B = 0; B < Case.F.numBlocks(); ++B) {
    const BasicBlock &BB = Case.F.block(B);
    for (unsigned I = 0; I < BB.Instrs.size(); ++I)
      if (!BB.Instrs[I].isTerminator())
        Candidates.push_back({B, I});
  }
  if (Candidates.empty())
    return false;
  auto [B, I] = Candidates[R.nextBelow(Candidates.size())];
  FunctionSketch S = FunctionSketch::fromFunction(Case.F);
  S.Blocks[B].Instrs.erase(S.Blocks[B].Instrs.begin() + I);
  Case.F = S.build();
  return true;
}

bool mutateSwapInstrs(FuzzCase &Case, Rng &R) {
  std::vector<std::pair<unsigned, unsigned>> Candidates;
  for (BlockId B = 0; B < Case.F.numBlocks(); ++B) {
    const BasicBlock &BB = Case.F.block(B);
    for (unsigned I = 0; I + 1 < BB.Instrs.size(); ++I)
      if (!BB.Instrs[I].isTerminator() && !BB.Instrs[I + 1].isTerminator())
        Candidates.push_back({B, I});
  }
  if (Candidates.empty())
    return false;
  auto [B, I] = Candidates[R.nextBelow(Candidates.size())];
  FunctionSketch S = FunctionSketch::fromFunction(Case.F);
  std::swap(S.Blocks[B].Instrs[I], S.Blocks[B].Instrs[I + 1]);
  Case.F = S.build();
  return true;
}

bool mutateSplitBlock(FuzzCase &Case, Rng &R) {
  std::vector<unsigned> Candidates;
  for (BlockId B = 0; B < Case.F.numBlocks(); ++B)
    if (Case.F.block(B).Instrs.size() >= 2)
      Candidates.push_back(B);
  if (Candidates.empty())
    return false;
  unsigned B = Candidates[R.nextBelow(Candidates.size())];
  FunctionSketch S = FunctionSketch::fromFunction(Case.F);
  FunctionSketch::SketchBlock &SB = S.Blocks[B];
  unsigned K = 1 + static_cast<unsigned>(R.nextBelow(SB.Instrs.size() - 1));

  FunctionSketch::SketchBlock Tail;
  Tail.Name = freshBlockName(S, "split");
  Tail.Instrs.assign(SB.Instrs.begin() + K, SB.Instrs.end());
  Tail.Succs = SB.Succs;
  Tail.LoopDepth = SB.LoopDepth;
  Tail.Frequency = SB.Frequency;

  SB.Instrs.erase(SB.Instrs.begin() + K, SB.Instrs.end());
  Instruction Br;
  Br.Op = Opcode::Branch;
  SB.Instrs.push_back(std::move(Br));
  SB.Succs = {static_cast<unsigned>(S.Blocks.size())};
  S.Blocks.push_back(std::move(Tail));
  Case.F = S.build();
  return true;
}

bool mutateMergeBlocks(FuzzCase &Case, Rng &R) {
  // Pred counts to find single-pred targets.
  std::vector<unsigned> PredCount(Case.F.numBlocks(), 0);
  for (BlockId B = 0; B < Case.F.numBlocks(); ++B)
    for (BlockId Succ : Case.F.block(B).Succs)
      ++PredCount[Succ];
  std::vector<std::pair<unsigned, unsigned>> Candidates;
  for (BlockId B = 0; B < Case.F.numBlocks(); ++B) {
    const BasicBlock &BB = Case.F.block(B);
    if (BB.Succs.size() != 1 || BB.Instrs.empty() ||
        BB.Instrs.back().Op != Opcode::Branch)
      continue;
    BlockId Succ = BB.Succs[0];
    if (Succ == Case.F.entry() || Succ == B || PredCount[Succ] != 1)
      continue;
    Candidates.push_back({B, Succ});
  }
  if (Candidates.empty())
    return false;
  auto [B, Succ] = Candidates[R.nextBelow(Candidates.size())];
  FunctionSketch S = FunctionSketch::fromFunction(Case.F);
  FunctionSketch::SketchBlock &SB = S.Blocks[B];
  SB.Instrs.pop_back(); // The unconditional br into Succ.
  for (Instruction &I : S.Blocks[Succ].Instrs)
    SB.Instrs.push_back(std::move(I));
  SB.Succs = S.Blocks[Succ].Succs;
  S.Blocks[Succ].Succs.clear(); // Now unreachable; prune rewires the rest.
  S.pruneUnreachable();
  Case.F = S.build();
  return true;
}

bool mutateCloneBlock(FuzzCase &Case, Rng &R) {
  std::vector<std::pair<unsigned, unsigned>> Edges; // (pred, succ index)
  for (BlockId P = 0; P < Case.F.numBlocks(); ++P) {
    const BasicBlock &PB = Case.F.block(P);
    for (unsigned I = 0; I < PB.Succs.size(); ++I)
      if (PB.Succs[I] != Case.F.entry())
        Edges.push_back({P, I});
  }
  if (Edges.empty())
    return false;
  auto [P, SuccIdx] = Edges[R.nextBelow(Edges.size())];
  FunctionSketch S = FunctionSketch::fromFunction(Case.F);
  unsigned B = S.Blocks[P].Succs[SuccIdx];
  FunctionSketch::SketchBlock Clone = S.Blocks[B];
  Clone.Name = freshBlockName(S, "clone");
  unsigned CloneIdx = static_cast<unsigned>(S.Blocks.size());
  S.Blocks.push_back(std::move(Clone));
  S.Blocks[P].Succs[SuccIdx] = CloneIdx;
  S.pruneUnreachable(); // B may have lost its only incoming edge.
  Case.F = S.build();
  return true;
}

bool mutateAddLoop(FuzzCase &Case, Rng &R) {
  DominatorTree Dom(Case.F);
  std::vector<std::pair<BlockId, BlockId>> Candidates;
  for (BlockId B = 0; B < Case.F.numBlocks(); ++B) {
    const BasicBlock &BB = Case.F.block(B);
    if (BB.Instrs.empty() || BB.Instrs.back().Op != Opcode::Branch ||
        BB.Succs.size() >= 3)
      continue;
    // Back edges to a dominator keep the CFG reducible, which is the shape
    // ProgramGen guarantees and LoopInfo expects.
    for (BlockId H = 0; H < Case.F.numBlocks(); ++H) {
      if (!Dom.dominates(H, B))
        continue;
      if (std::find(BB.Succs.begin(), BB.Succs.end(), H) != BB.Succs.end())
        continue;
      Candidates.push_back({B, H});
    }
  }
  if (Candidates.empty())
    return false;
  auto [B, H] = Candidates[R.nextBelow(Candidates.size())];
  // addEdge only grows the CFG and the substrate has no phis to extend, so
  // this one mutator can edit the function in place.
  Case.F.addEdge(B, H);
  return true;
}

bool mutateReassignClass(FuzzCase &Case, Rng &R) {
  const TargetDesc *Target = Case.target();
  if (Target->numClasses() < 2 || Case.F.numValues() == 0)
    return false;
  ValueId V = static_cast<ValueId>(R.nextBelow(Case.F.numValues()));
  RegClassId NewClass = static_cast<RegClassId>(
      R.nextBelow(Target->numClasses() - 1));
  if (NewClass >= Case.F.valueClass(V))
    ++NewClass; // Uniform over the classes other than the current one.
  // Rebuild rather than setValueClass: Function::MaxClass only ratchets
  // up, and a stale maximum would fail the class-table validation.
  FunctionSketch S = FunctionSketch::fromFunction(Case.F);
  S.ValueClasses[V] = NewClass;
  Case.F = S.build();
  return true;
}

bool mutatePerturbFreq(FuzzCase &Case, Rng &R) {
  static const Weight Choices[] = {1, 2, 5, 10, 50, 100, 1000};
  BlockId B = static_cast<BlockId>(R.nextBelow(Case.F.numBlocks()));
  Weight Freq = Choices[R.nextBelow(sizeof(Choices) / sizeof(Choices[0]))];
  if (Freq == Case.F.block(B).Frequency)
    return false;
  Case.F.block(B).Frequency = Freq;
  return true;
}

bool mutatePerturbBudget(FuzzCase &Case, Rng &R) {
  if (Case.Budgets.empty())
    return false;
  unsigned C = static_cast<unsigned>(R.nextBelow(Case.Budgets.size()));
  // Small budgets keep the exact oracles affordable; 1..10 spans "spill
  // almost everything" to "often fits".
  unsigned NewBudget = 1 + static_cast<unsigned>(R.nextBelow(10));
  if (NewBudget == Case.Budgets[C])
    return false;
  Case.Budgets[C] = NewBudget;
  return true;
}

} // namespace

bool layra::applyMutation(FuzzCase &Case, MutationKind Kind, Rng &R) {
  switch (Kind) {
  case MutationKind::InsertOp:
    return mutateInsertOp(Case, R);
  case MutationKind::DeleteInstr:
    return mutateDeleteInstr(Case, R);
  case MutationKind::SwapInstrs:
    return mutateSwapInstrs(Case, R);
  case MutationKind::SplitBlock:
    return mutateSplitBlock(Case, R);
  case MutationKind::MergeBlocks:
    return mutateMergeBlocks(Case, R);
  case MutationKind::CloneBlock:
    return mutateCloneBlock(Case, R);
  case MutationKind::AddLoop:
    return mutateAddLoop(Case, R);
  case MutationKind::ReassignClass:
    return mutateReassignClass(Case, R);
  case MutationKind::PerturbFreq:
    return mutatePerturbFreq(Case, R);
  case MutationKind::PerturbBudget:
    return mutatePerturbBudget(Case, R);
  }
  return false;
}

bool layra::applyRandomMutation(FuzzCase &Case, Rng &R) {
  const std::vector<MutationKind> &Kinds = allMutationKinds();
  MutationKind Kind = Kinds[R.nextBelow(Kinds.size())];
  if (!applyMutation(Case, Kind, R))
    return false;
  Case.Trail.push_back(mutationKindName(Kind));
  return true;
}
