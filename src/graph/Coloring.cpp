//===- graph/Coloring.cpp - Graph coloring (assignment phase) -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Coloring.h"

#include <algorithm>

using namespace layra;

std::vector<unsigned>
layra::greedyColoring(const Graph &G, const std::vector<VertexId> &Sequence) {
  std::vector<unsigned> Colors(G.numVertices(), kNoColor);
  std::vector<char> Used; // Scratch: colors taken by neighbors.
  for (VertexId V : Sequence) {
    assert(Colors[V] == kNoColor && "vertex colored twice");
    Used.assign(G.degree(V) + 1, 0);
    for (VertexId U : G.neighbors(V)) {
      unsigned C = Colors[U];
      if (C != kNoColor && C < Used.size())
        Used[C] = 1;
    }
    unsigned C = 0;
    while (Used[C])
      ++C;
    Colors[V] = C;
  }
  return Colors;
}

std::vector<unsigned> layra::colorChordal(const Graph &G,
                                          const EliminationOrder &Peo) {
  // Reverse PEO = a "simplicial construction" order: when vertex v is
  // colored, its already-colored neighbors form a clique, so the greedy
  // choice never exceeds maxclique - 1.
  std::vector<VertexId> Reverse(Peo.Order.rbegin(), Peo.Order.rend());
  return greedyColoring(G, Reverse);
}

unsigned layra::numColorsUsed(const std::vector<unsigned> &Colors) {
  unsigned Max = 0;
  bool Any = false;
  for (unsigned C : Colors)
    if (C != kNoColor) {
      Any = true;
      Max = std::max(Max, C);
    }
  return Any ? Max + 1 : 0;
}

bool layra::isProperColoring(const Graph &G,
                             const std::vector<unsigned> &Colors) {
  assert(Colors.size() == G.numVertices() && "one color slot per vertex");
  for (VertexId V = 0; V < G.numVertices(); ++V) {
    if (Colors[V] == kNoColor)
      continue;
    for (VertexId U : G.neighbors(V))
      if (U > V && Colors[U] == Colors[V])
        return false;
  }
  return true;
}
