//===- graph/Chordal.h - Chordal graph machinery ----------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Perfect elimination orders, chordality testing, maximal cliques and clique
/// trees -- the structural backbone of the paper.  Interference graphs of SSA
/// programs are chordal (Hack et al.; paper §3.2), maximal cliques correspond
/// exactly to sets of variables simultaneously live at some program point,
/// and a PEO makes the maximum weighted stable set (the optimal one-register
/// allocation layer) computable in linear time.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_GRAPH_CHORDAL_H
#define LAYRA_GRAPH_CHORDAL_H

#include "graph/Graph.h"

#include <optional>
#include <vector>

namespace layra {

class SolverWorkspace;

/// A vertex elimination order together with its inverse permutation.
/// Order[i] is the i-th vertex eliminated; Position[v] is v's index in Order.
struct EliminationOrder {
  std::vector<VertexId> Order;
  std::vector<unsigned> Position;

  /// Builds the inverse permutation from \p Order.
  static EliminationOrder fromOrder(std::vector<VertexId> Order);
};

/// Computes an elimination order via Maximum Cardinality Search.
/// For a chordal graph the *reverse* of the MCS visit order is a perfect
/// elimination order; the returned order is already reversed, i.e. it is a
/// PEO whenever \p G is chordal.  \p WS optionally supplies the bucket
/// scratch (core/SolverWorkspace.h); results are identical either way.
EliminationOrder maximumCardinalitySearch(const Graph &G,
                                          SolverWorkspace *WS = nullptr);

/// Computes an elimination order via lexicographic BFS (Rose-Tarjan-Lueker).
/// As with MCS, the returned order is a PEO whenever \p G is chordal.
EliminationOrder lexBfs(const Graph &G);

/// Returns true if \p Order is a perfect elimination order of \p G: each
/// vertex's later neighbors form a clique.  Linear-time RTL check.
bool isPerfectEliminationOrder(const Graph &G, const EliminationOrder &Order,
                               SolverWorkspace *WS = nullptr);

/// Returns true if \p G is chordal (every cycle of length >= 4 has a chord).
bool isChordal(const Graph &G);

/// The maximal cliques of a chordal graph, plus bookkeeping used by the
/// fixed-point layered allocator (paper Algorithm 4) and the step-k dynamic
/// program.
struct CliqueCover {
  /// Each maximal clique as a vertex list (unordered).
  std::vector<std::vector<VertexId>> Cliques;
  /// CliquesOf[v] lists the indices of the maximal cliques containing v.
  std::vector<std::vector<unsigned>> CliquesOf;

  unsigned numCliques() const {
    return static_cast<unsigned>(Cliques.size());
  }

  /// Size of the largest clique; equals the chromatic number for chordal
  /// graphs and MaxLive for SSA interference graphs.
  unsigned maxCliqueSize() const;
};

/// Enumerates all maximal cliques of chordal \p G given a PEO.
/// Runs in O(V + E) time plus output size.
/// \pre \p Peo is a perfect elimination order of \p G.
CliqueCover maximalCliquesChordal(const Graph &G, const EliminationOrder &Peo,
                                  SolverWorkspace *WS = nullptr);

/// A clique tree of a chordal graph: a tree on the maximal cliques such that
/// for every vertex the cliques containing it induce a subtree.  Built as a
/// maximum-weight spanning tree of the clique intersection graph, which is a
/// classical characterisation of clique trees.
struct CliqueTree {
  /// Parent clique index; Root has parent ~0u.  Indices refer to the
  /// CliqueCover this tree was built from.
  std::vector<unsigned> Parent;
  /// Children lists (redundant with Parent, handy for DP traversals).
  std::vector<std::vector<unsigned>> Children;
  /// Topological order: parents before children, Order[0] is the root.
  std::vector<unsigned> TopoOrder;
  /// Separator[i] = intersection of clique i with its parent (empty for the
  /// root and for cliques in other connected components).
  std::vector<std::vector<VertexId>> Separator;
};

/// Builds a clique tree of \p Cover (one root per connected component of the
/// clique intersection graph; forests are represented with multiple roots).
CliqueTree buildCliqueTree(const Graph &G, const CliqueCover &Cover);

/// Verifies the induced-subtree property of \p Tree w.r.t. \p Cover: for
/// every vertex, the cliques containing it form a connected subtree.
/// Used by tests and asserts.
bool isValidCliqueTree(const Graph &G, const CliqueCover &Cover,
                       const CliqueTree &Tree);

} // namespace layra

#endif // LAYRA_GRAPH_CHORDAL_H
