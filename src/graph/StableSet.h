//===- graph/StableSet.h - Maximum weighted stable sets ---------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maximum weighted stable (independent) sets.  On a chordal graph Frank's
/// algorithm (the paper's Algorithm 1) finds an optimum in O(|V| + |E|); a
/// maximum weighted stable set is exactly the optimal allocation for a single
/// register, which is the layer primitive of the layered-optimal allocator.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_GRAPH_STABLESET_H
#define LAYRA_GRAPH_STABLESET_H

#include "graph/Chordal.h"
#include "graph/Graph.h"

#include <vector>

namespace layra {

class SolverWorkspace;

/// Result of a stable-set computation.
struct StableSetResult {
  /// The chosen vertices; always a stable set of the input graph.
  std::vector<VertexId> Set;
  /// Total weight of Set under the weights the query was made with.
  Weight TotalWeight = 0;
};

/// Frank's algorithm: maximum weighted stable set of a chordal graph.
///
/// \param G the graph; only its adjacency is used.
/// \param Peo a perfect elimination order of \p G.
/// \param Weights per-vertex weights (may differ from G's weights, e.g. the
///        biased weights of paper §4.1); entries must be non-negative.
/// \param Mask if non-empty, restricts the computation to vertices V with
///        Mask[V] != 0 (the induced subgraph on the mask, whose PEO is the
///        restriction of \p Peo).
/// \param WS optional scratch workspace (residual weights, red stack, blue
///        marks); nullptr solves with private buffers.  Results are
///        identical either way.
///
/// Vertices of weight zero are never selected (selecting them is always
/// allowed but never increases the weight; excluding them matches paper
/// Algorithm 1, whose red marking requires w' > 0).
StableSetResult maximumWeightedStableSetChordal(
    const Graph &G, const EliminationOrder &Peo,
    const std::vector<Weight> &Weights, const std::vector<char> &Mask = {},
    SolverWorkspace *WS = nullptr);

/// Exhaustive maximum weighted stable set for arbitrary graphs; exponential,
/// only for cross-validation in tests.
/// \pre G.numVertices() <= 30.
StableSetResult maximumWeightedStableSetBruteForce(
    const Graph &G, const std::vector<Weight> &Weights);

} // namespace layra

#endif // LAYRA_GRAPH_STABLESET_H
