//===- graph/Graph.cpp - Weighted undirected interference graph ----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Graph.h"

#include <algorithm>

using namespace layra;

VertexId Graph::addVertex(Weight W, std::string Name) {
  assert(W >= 0 && "spill costs are non-negative");
  VertexId Id = numVertices();
  Adjacency.emplace_back();
  Weights.push_back(W);
  if (!Name.empty()) {
    Names.resize(Id + 1);
    Names[Id] = std::move(Name);
  }
  return Id;
}

bool Graph::addEdge(VertexId U, VertexId V) {
  assert(U < numVertices() && V < numVertices() && "vertex out of range");
  assert(U != V && "self-loops are not interference edges");
  if (hasEdge(U, V))
    return false;
  Adjacency[U].push_back(V);
  Adjacency[V].push_back(U);
  ++EdgeCount;
  return true;
}

bool Graph::hasEdge(VertexId U, VertexId V) const {
  assert(U < numVertices() && V < numVertices() && "vertex out of range");
  // Scan the smaller adjacency list.
  const std::vector<VertexId> &Smaller =
      degree(U) <= degree(V) ? Adjacency[U] : Adjacency[V];
  VertexId Target = degree(U) <= degree(V) ? V : U;
  return std::find(Smaller.begin(), Smaller.end(), Target) != Smaller.end();
}

const std::string &Graph::name(VertexId V) const {
  assert(V < numVertices() && "vertex out of range");
  static const std::string Empty;
  return V < Names.size() ? Names[V] : Empty;
}

void Graph::setName(VertexId V, std::string Name) {
  assert(V < numVertices() && "vertex out of range");
  if (Names.size() <= V)
    Names.resize(V + 1);
  Names[V] = std::move(Name);
}

Weight Graph::totalWeight() const {
  Weight Sum = 0;
  for (Weight W : Weights)
    Sum += W;
  return Sum;
}

Weight Graph::weightOf(const std::vector<VertexId> &Subset) const {
  Weight Sum = 0;
  for (VertexId V : Subset)
    Sum += weight(V);
  return Sum;
}

bool Graph::isStableSet(const std::vector<VertexId> &Subset) const {
  std::vector<char> InSet(numVertices(), 0);
  for (VertexId V : Subset) {
    assert(V < numVertices() && "vertex out of range");
    InSet[V] = 1;
  }
  for (VertexId V : Subset)
    for (VertexId U : neighbors(V))
      if (InSet[U])
        return false;
  return true;
}

Graph Graph::inducedSubgraph(const std::vector<VertexId> &Keep,
                             std::vector<VertexId> *OldToNew) const {
  std::vector<VertexId> Map(numVertices(), ~0u);
  Graph Sub;
  for (VertexId V : Keep) {
    assert(V < numVertices() && "vertex out of range");
    assert(Map[V] == ~0u && "duplicate vertex in induced subgraph request");
    Map[V] = Sub.addVertex(weight(V), name(V));
  }
  for (VertexId V : Keep)
    for (VertexId U : neighbors(V))
      if (Map[U] != ~0u && V < U)
        Sub.addEdge(Map[V], Map[U]);
  if (OldToNew)
    *OldToNew = std::move(Map);
  return Sub;
}

std::string Graph::toDot(const std::vector<VertexId> &Highlight) const {
  std::vector<char> Hot(numVertices(), 0);
  for (VertexId V : Highlight)
    Hot[V] = 1;
  std::string Dot = "graph interference {\n  node [shape=circle];\n";
  for (VertexId V = 0; V < numVertices(); ++V) {
    Dot += "  n" + std::to_string(V) + " [label=\"";
    Dot += name(V).empty() ? ("v" + std::to_string(V)) : name(V);
    Dot += ':';
    Dot += std::to_string(weight(V));
    Dot += '"';
    if (Hot[V])
      Dot += ", style=filled, fillcolor=lightblue";
    Dot += "];\n";
  }
  for (VertexId V = 0; V < numVertices(); ++V)
    for (VertexId U : neighbors(V))
      if (V < U)
        Dot += "  n" + std::to_string(V) + " -- n" + std::to_string(U) + ";\n";
  Dot += "}\n";
  return Dot;
}
