//===- graph/Graph.cpp - Weighted undirected interference graph ----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Graph.h"

#include <algorithm>

using namespace layra;

VertexId Graph::addVertex(Weight W, std::string Name) {
  assert(W >= 0 && "spill costs are non-negative");
  assert(!Compressed && "addVertex on a compressed graph");
  VertexId Id = numVertices();
  Adjacency.emplace_back();
  Weights.push_back(W);
  if (!Name.empty()) {
    Names.resize(Id + 1);
    Names[Id] = std::move(Name);
  }

  if (MatrixEnabled) {
    unsigned Count = Id + 1;
    if (Count > kMaxDenseVertices) {
      // Past the density cap: drop the matrix for good and fall back to
      // list scans.
      std::vector<uint64_t>().swap(Matrix);
      MatrixStride = 0;
      MatrixEnabled = false;
    } else {
      unsigned NeededWords = (Count + 63) / 64;
      if (NeededWords > MatrixStride) {
        // Re-stride with geometric headroom so incremental addVertex
        // re-lays rows O(log N) times, not O(N).
        unsigned NewStride =
            (std::min(Count * 2, kMaxDenseVertices) + 63) / 64;
        std::vector<uint64_t> NewMatrix(
            static_cast<std::size_t>(Count) * NewStride, 0);
        for (VertexId V = 0; V < Id; ++V)
          std::copy_n(Matrix.begin() +
                          static_cast<std::size_t>(V) * MatrixStride,
                      MatrixStride,
                      NewMatrix.begin() +
                          static_cast<std::size_t>(V) * NewStride);
        Matrix = std::move(NewMatrix);
        MatrixStride = NewStride;
      } else {
        Matrix.resize(static_cast<std::size_t>(Count) * MatrixStride, 0);
      }
    }
  }
  return Id;
}

bool Graph::addEdge(VertexId U, VertexId V) {
  assert(U < numVertices() && V < numVertices() && "vertex out of range");
  assert(U != V && "self-loops are not interference edges");
  assert(!Compressed && "addEdge on a compressed graph");
  if (hasEdge(U, V))
    return false;
  Adjacency[U].push_back(V);
  Adjacency[V].push_back(U);
  if (MatrixStride) {
    setMatrixBit(U, V);
    setMatrixBit(V, U);
  }
  ++EdgeCount;
  return true;
}

bool Graph::hasEdgeScan(VertexId U, VertexId V) const {
  // Scan the smaller neighbor list.
  if (degree(U) > degree(V))
    std::swap(U, V);
  NeighborRange Smaller = neighbors(U);
  return std::find(Smaller.begin(), Smaller.end(), V) != Smaller.end();
}

void Graph::compress() {
  if (Compressed)
    return;
  unsigned N = numVertices();
  assert(2 * EdgeCount <= UINT32_MAX && "edge count overflows CSR offsets");
  CsrOffsets.resize(N + 1);
  CsrNeighbors.resize(2 * EdgeCount);
  uint32_t Offset = 0;
  for (VertexId V = 0; V < N; ++V) {
    CsrOffsets[V] = Offset;
    std::copy(Adjacency[V].begin(), Adjacency[V].end(),
              CsrNeighbors.begin() + Offset);
    Offset += static_cast<uint32_t>(Adjacency[V].size());
  }
  CsrOffsets[N] = Offset;
  // Release the per-vertex list storage; the CSR is the view from now on.
  std::vector<std::vector<VertexId>>().swap(Adjacency);
  Compressed = true;
}

const std::string &Graph::name(VertexId V) const {
  assert(V < numVertices() && "vertex out of range");
  static const std::string Empty;
  return V < Names.size() ? Names[V] : Empty;
}

void Graph::setName(VertexId V, std::string Name) {
  assert(V < numVertices() && "vertex out of range");
  if (Names.size() <= V)
    Names.resize(V + 1);
  Names[V] = std::move(Name);
}

Weight Graph::totalWeight() const {
  Weight Sum = 0;
  for (Weight W : Weights)
    Sum += W;
  return Sum;
}

Weight Graph::weightOf(const std::vector<VertexId> &Subset) const {
  Weight Sum = 0;
  for (VertexId V : Subset)
    Sum += weight(V);
  return Sum;
}

bool Graph::isStableSet(const std::vector<VertexId> &Subset) const {
  std::vector<char> InSet(numVertices(), 0);
  for (VertexId V : Subset) {
    assert(V < numVertices() && "vertex out of range");
    InSet[V] = 1;
  }
  for (VertexId V : Subset)
    for (VertexId U : neighbors(V))
      if (InSet[U])
        return false;
  return true;
}

Graph Graph::inducedSubgraph(const std::vector<VertexId> &Keep,
                             std::vector<VertexId> *OldToNew) const {
  std::vector<VertexId> Map(numVertices(), ~0u);
  Graph Sub;
  for (VertexId V : Keep) {
    assert(V < numVertices() && "vertex out of range");
    assert(Map[V] == ~0u && "duplicate vertex in induced subgraph request");
    Map[V] = Sub.addVertex(weight(V), name(V));
  }
  for (VertexId V : Keep)
    for (VertexId U : neighbors(V))
      if (Map[U] != ~0u && V < U)
        Sub.addEdge(Map[V], Map[U]);
  if (OldToNew)
    *OldToNew = std::move(Map);
  return Sub;
}

std::string Graph::toDot(const std::vector<VertexId> &Highlight) const {
  std::vector<char> Hot(numVertices(), 0);
  for (VertexId V : Highlight)
    Hot[V] = 1;
  std::string Dot = "graph interference {\n  node [shape=circle];\n";
  for (VertexId V = 0; V < numVertices(); ++V) {
    Dot += "  n" + std::to_string(V) + " [label=\"";
    Dot += name(V).empty() ? ("v" + std::to_string(V)) : name(V);
    Dot += ':';
    Dot += std::to_string(weight(V));
    Dot += '"';
    if (Hot[V])
      Dot += ", style=filled, fillcolor=lightblue";
    Dot += "];\n";
  }
  for (VertexId V = 0; V < numVertices(); ++V)
    for (VertexId U : neighbors(V))
      if (V < U)
        Dot += "  n" + std::to_string(V) + " -- n" + std::to_string(U) + ";\n";
  Dot += "}\n";
  return Dot;
}
