//===- graph/StableSet.cpp - Maximum weighted stable sets -----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/StableSet.h"

#include "core/SolverWorkspace.h"
#include "obs/Trace.h"

#include <algorithm>

using namespace layra;

StableSetResult layra::maximumWeightedStableSetChordal(
    const Graph &G, const EliminationOrder &Peo,
    const std::vector<Weight> &Weights, const std::vector<char> &Mask,
    SolverWorkspace *WS) {
  PhaseSpan StableSetSpan(Phase::StableSet);
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  unsigned N = G.numVertices();
  assert(Weights.size() == N && "one weight per vertex required");
  assert((Mask.empty() || Mask.size() == N) && "mask size mismatch");
  auto InMask = [&](VertexId V) { return Mask.empty() || Mask[V]; };

  // Phase 1 (paper Algorithm 1, first loops): sweep the PEO with residual
  // weights; greedily "mark red" every vertex whose residual weight is still
  // positive, charging its weight to all later (residual) neighbors.
  std::vector<Weight> &Residual = WS->acquire(WS->Stable.Residual, N, Weight(0));
  for (VertexId V = 0; V < N; ++V)
    if (InMask(V)) {
      assert(Weights[V] >= 0 && "stable-set weights must be non-negative");
      Residual[V] = Weights[V];
    }

  // LIFO, as required by phase 2.
  std::vector<VertexId> &RedStack = WS->acquireCleared(WS->Stable.RedStack);
  for (VertexId V : Peo.Order) {
    if (!InMask(V) || Residual[V] <= 0)
      continue;
    RedStack.push_back(V);
    Weight Charge = Residual[V];
    for (VertexId U : G.neighbors(V)) {
      if (!InMask(U))
        continue;
      Residual[U] = std::max<Weight>(0, Residual[U] - Charge);
    }
    Residual[V] = 0;
  }

  // Phase 2: pop red vertices in reverse order; keep ("mark blue") each one
  // that is not adjacent to an already blue vertex.  The result is a maximum
  // weighted stable set by LP duality of Frank's charging argument.
  std::vector<char> &BlueAdjacent =
      WS->acquire(WS->Stable.BlueAdjacent, N, char(0));
  StableSetResult Result;
  for (auto It = RedStack.rbegin(); It != RedStack.rend(); ++It) {
    VertexId V = *It;
    if (BlueAdjacent[V])
      continue;
    Result.Set.push_back(V);
    Result.TotalWeight += Weights[V];
    for (VertexId U : G.neighbors(V))
      BlueAdjacent[U] = 1;
  }
  assert(G.isStableSet(Result.Set) && "Frank's algorithm produced non-stable");
  return Result;
}

StableSetResult layra::maximumWeightedStableSetBruteForce(
    const Graph &G, const std::vector<Weight> &Weights) {
  unsigned N = G.numVertices();
  assert(N <= 30 && "brute force is exponential; use small graphs only");
  assert(Weights.size() == N && "one weight per vertex required");

  std::vector<uint32_t> NeighborBits(N, 0);
  for (VertexId V = 0; V < N; ++V)
    for (VertexId U : G.neighbors(V))
      NeighborBits[V] |= 1u << U;

  uint32_t BestSet = 0;
  Weight BestWeight = 0;
  for (uint32_t Subset = 0; Subset < (1u << N); ++Subset) {
    Weight W = 0;
    bool Stable = true;
    for (VertexId V = 0; V < N && Stable; ++V) {
      if (!(Subset & (1u << V)))
        continue;
      if (NeighborBits[V] & Subset)
        Stable = false;
      else
        W += Weights[V];
    }
    if (Stable && W > BestWeight) {
      BestWeight = W;
      BestSet = Subset;
    }
  }

  StableSetResult Result;
  Result.TotalWeight = BestWeight;
  for (VertexId V = 0; V < N; ++V)
    if (BestSet & (1u << V))
      Result.Set.push_back(V);
  return Result;
}
