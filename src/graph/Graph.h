//===- graph/Graph.h - Weighted undirected interference graph ---*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weighted undirected graph all Layra allocators operate on.  Vertices
/// are dense ids 0..N-1; each vertex carries a non-negative integer weight,
/// interpreted as its estimated spill cost (paper §3: "A spill cost
/// represents the access frequency of a variable").
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_GRAPH_GRAPH_H
#define LAYRA_GRAPH_GRAPH_H

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace layra {

/// Dense vertex identifier.
using VertexId = unsigned;

/// Spill-cost weight.  Integer so that optimal/heuristic comparisons are
/// exact; the IR cost model produces integers (accesses x block frequency).
using Weight = long long;

/// An undirected graph with per-vertex weights and optional vertex names.
///
/// The representation is a plain adjacency list.  Edges are deduplicated on
/// insertion; self-loops are rejected.  Adjacency lists are kept in insertion
/// order -- algorithms that need determinism across runs get it because the
/// whole library is deterministic (no pointer ordering anywhere).
class Graph {
public:
  Graph() = default;

  /// Creates a graph with \p NumVertices vertices of weight 0.
  explicit Graph(unsigned NumVertices)
      : Adjacency(NumVertices), Weights(NumVertices, 0) {}

  /// Adds a vertex with weight \p W and returns its id.
  VertexId addVertex(Weight W = 0, std::string Name = {});

  /// Adds the undirected edge {U, V} unless it already exists.
  /// \returns true if the edge was inserted, false if it was present.
  /// \pre U != V and both are valid vertex ids.
  bool addEdge(VertexId U, VertexId V);

  /// Returns true if the undirected edge {U, V} exists.
  bool hasEdge(VertexId U, VertexId V) const;

  unsigned numVertices() const {
    return static_cast<unsigned>(Adjacency.size());
  }
  size_t numEdges() const { return EdgeCount; }

  const std::vector<VertexId> &neighbors(VertexId V) const {
    assert(V < numVertices() && "vertex out of range");
    return Adjacency[V];
  }

  unsigned degree(VertexId V) const {
    return static_cast<unsigned>(neighbors(V).size());
  }

  Weight weight(VertexId V) const {
    assert(V < numVertices() && "vertex out of range");
    return Weights[V];
  }

  void setWeight(VertexId V, Weight W) {
    assert(V < numVertices() && "vertex out of range");
    assert(W >= 0 && "spill costs are non-negative");
    Weights[V] = W;
  }

  /// Optional human-readable name; empty when never set.
  const std::string &name(VertexId V) const;
  void setName(VertexId V, std::string Name);

  /// Sum of all vertex weights (the cost of spilling everything).
  Weight totalWeight() const;

  /// Sum of weights over \p Subset.
  Weight weightOf(const std::vector<VertexId> &Subset) const;

  /// Returns true if \p Subset contains no two adjacent vertices.
  bool isStableSet(const std::vector<VertexId> &Subset) const;

  /// Builds the subgraph induced by \p Keep (weights and names carried over).
  /// \param [out] OldToNew if non-null, receives a map of size numVertices()
  ///   with the new id of each kept vertex and ~0u for dropped ones.
  Graph inducedSubgraph(const std::vector<VertexId> &Keep,
                        std::vector<VertexId> *OldToNew = nullptr) const;

  /// Renders the graph in Graphviz DOT syntax (used by the examples).
  /// Vertices in \p Highlight are drawn filled.
  std::string toDot(const std::vector<VertexId> &Highlight = {}) const;

private:
  std::vector<std::vector<VertexId>> Adjacency;
  std::vector<Weight> Weights;
  std::vector<std::string> Names;
  size_t EdgeCount = 0;
};

} // namespace layra

#endif // LAYRA_GRAPH_GRAPH_H
