//===- graph/Graph.h - Weighted undirected interference graph ---*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weighted undirected graph all Layra allocators operate on.  Vertices
/// are dense ids 0..N-1; each vertex carries a non-negative integer weight,
/// interpreted as its estimated spill cost (paper §3: "A spill cost
/// represents the access frequency of a variable").
///
/// Storage is layered for the solver hot paths:
///  - Mutable phase: per-vertex adjacency lists in *insertion order* (the
///    order is load-bearing -- MCS bucket tie-breaking and with it every
///    PEO, clique cover and DP result depends on it), plus a dense bit
///    matrix making hasEdge()/addEdge() duplicate detection O(1) for
///    graphs up to kMaxDenseVertices.
///  - Frozen phase: compress() flattens the lists into a CSR view (offsets
///    + one packed neighbor array) so every neighbor walk in MCS, Frank's
///    algorithm and the clique-tree DP streams one contiguous array
///    instead of chasing per-vertex heap blocks.  compress() preserves
///    iteration order exactly; results are bit-identical either way.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_GRAPH_GRAPH_H
#define LAYRA_GRAPH_GRAPH_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace layra {

/// Dense vertex identifier.
using VertexId = unsigned;

/// Spill-cost weight.  Integer so that optimal/heuristic comparisons are
/// exact; the IR cost model produces integers (accesses x block frequency).
using Weight = long long;

/// A non-owning view of one vertex's neighbor list, valid over both the
/// mutable adjacency-list storage and the compressed CSR storage.  Iterates
/// in edge-insertion order in both cases.  Invalidated by addVertex /
/// addEdge / compress on the owning graph.
class NeighborRange {
public:
  using value_type = VertexId;
  using const_iterator = const VertexId *;

  NeighborRange() = default;
  NeighborRange(const VertexId *Begin, const VertexId *End)
      : Begin_(Begin), End_(End) {}

  const VertexId *begin() const { return Begin_; }
  const VertexId *end() const { return End_; }
  std::size_t size() const { return static_cast<std::size_t>(End_ - Begin_); }
  bool empty() const { return Begin_ == End_; }
  VertexId operator[](std::size_t I) const {
    assert(I < size() && "neighbor index out of range");
    return Begin_[I];
  }

  friend bool operator==(const NeighborRange &A, const NeighborRange &B) {
    return A.size() == B.size() && std::equal(A.begin(), A.end(), B.begin());
  }
  friend bool operator!=(const NeighborRange &A, const NeighborRange &B) {
    return !(A == B);
  }

private:
  const VertexId *Begin_ = nullptr;
  const VertexId *End_ = nullptr;
};

/// An undirected graph with per-vertex weights and optional vertex names.
///
/// Edges are deduplicated on insertion; self-loops are rejected.  Adjacency
/// is kept in insertion order -- algorithms that need determinism across
/// runs get it because the whole library is deterministic (no pointer
/// ordering anywhere).
class Graph {
public:
  /// Largest vertex count for which the dense adjacency bit matrix is
  /// maintained.  One row is numVertices() bits, so the matrix costs
  /// ~N^2/8 bytes (2 MiB at the cap); beyond it hasEdge falls back to the
  /// list scan.  Suite-derived interference graphs sit far below the cap.
  static constexpr unsigned kMaxDenseVertices = 4096;

  Graph() = default;

  /// Creates a graph with \p NumVertices vertices of weight 0.
  explicit Graph(unsigned NumVertices)
      : Adjacency(NumVertices), Weights(NumVertices, 0) {
    if (NumVertices > kMaxDenseVertices)
      MatrixEnabled = false;
    else if (NumVertices > 0) {
      MatrixStride = (NumVertices + 63) / 64;
      Matrix.assign(static_cast<std::size_t>(NumVertices) * MatrixStride, 0);
    }
  }

  /// Adds a vertex with weight \p W and returns its id.
  /// \pre the graph is not compressed.
  VertexId addVertex(Weight W = 0, std::string Name = {});

  /// Adds the undirected edge {U, V} unless it already exists.
  /// \returns true if the edge was inserted, false if it was present.
  /// \pre U != V, both are valid vertex ids, and the graph is not
  /// compressed.
  bool addEdge(VertexId U, VertexId V);

  /// Returns true if the undirected edge {U, V} exists.  O(1) while the
  /// dense bit matrix is live (numVertices() <= kMaxDenseVertices);
  /// otherwise a scan of the smaller neighbor list.
  bool hasEdge(VertexId U, VertexId V) const {
    assert(U < numVertices() && V < numVertices() && "vertex out of range");
    if (MatrixStride)
      return (Matrix[static_cast<std::size_t>(U) * MatrixStride +
                     (V >> 6)] >>
              (V & 63)) &
             1;
    return hasEdgeScan(U, V);
  }

  unsigned numVertices() const {
    return static_cast<unsigned>(Weights.size());
  }
  size_t numEdges() const { return EdgeCount; }

  /// Freezes the edge set and flattens adjacency into a CSR (offsets +
  /// packed neighbor array) so neighbor walks stream contiguous memory.
  /// Iteration order -- and with it every downstream result -- is
  /// unchanged.  Idempotent; addVertex/addEdge are no longer allowed.
  /// Called at problem-construction freeze points
  /// (AllocationProblem::fromChordalGraph / fromGeneralGraph).
  void compress();

  /// True once compress() ran.
  bool compressed() const { return Compressed; }

  NeighborRange neighbors(VertexId V) const {
    assert(V < numVertices() && "vertex out of range");
    if (Compressed) {
      const VertexId *Base = CsrNeighbors.data();
      return {Base + CsrOffsets[V], Base + CsrOffsets[V + 1]};
    }
    const std::vector<VertexId> &List = Adjacency[V];
    return {List.data(), List.data() + List.size()};
  }

  unsigned degree(VertexId V) const {
    assert(V < numVertices() && "vertex out of range");
    if (Compressed)
      return CsrOffsets[V + 1] - CsrOffsets[V];
    return static_cast<unsigned>(Adjacency[V].size());
  }

  Weight weight(VertexId V) const {
    assert(V < numVertices() && "vertex out of range");
    return Weights[V];
  }

  void setWeight(VertexId V, Weight W) {
    assert(V < numVertices() && "vertex out of range");
    assert(W >= 0 && "spill costs are non-negative");
    Weights[V] = W;
  }

  /// Optional human-readable name; empty when never set.
  const std::string &name(VertexId V) const;
  void setName(VertexId V, std::string Name);

  /// Sum of all vertex weights (the cost of spilling everything).
  Weight totalWeight() const;

  /// Sum of weights over \p Subset.
  Weight weightOf(const std::vector<VertexId> &Subset) const;

  /// Returns true if \p Subset contains no two adjacent vertices.
  bool isStableSet(const std::vector<VertexId> &Subset) const;

  /// Builds the subgraph induced by \p Keep (weights and names carried over).
  /// The result is mutable (not compressed), whatever the source's state.
  /// \param [out] OldToNew if non-null, receives a map of size numVertices()
  ///   with the new id of each kept vertex and ~0u for dropped ones.
  Graph inducedSubgraph(const std::vector<VertexId> &Keep,
                        std::vector<VertexId> *OldToNew = nullptr) const;

  /// Renders the graph in Graphviz DOT syntax (used by the examples).
  /// Vertices in \p Highlight are drawn filled.
  std::string toDot(const std::vector<VertexId> &Highlight = {}) const;

private:
  bool hasEdgeScan(VertexId U, VertexId V) const;
  void setMatrixBit(VertexId U, VertexId V) {
    Matrix[static_cast<std::size_t>(U) * MatrixStride + (V >> 6)] |=
        uint64_t(1) << (V & 63);
  }

  /// Insertion-order adjacency lists; emptied (storage released) by
  /// compress().
  std::vector<std::vector<VertexId>> Adjacency;
  std::vector<Weight> Weights;
  std::vector<std::string> Names;
  size_t EdgeCount = 0;

  /// Dense adjacency bit matrix, row-major with MatrixStride 64-bit words
  /// per row.  Membership only -- iteration always uses the ordered lists /
  /// CSR.  Dropped permanently once numVertices() exceeds
  /// kMaxDenseVertices.
  std::vector<uint64_t> Matrix;
  unsigned MatrixStride = 0;
  bool MatrixEnabled = true;

  /// CSR view, valid once Compressed: CsrOffsets has numVertices()+1
  /// entries; vertex V's neighbors are CsrNeighbors[CsrOffsets[V] ..
  /// CsrOffsets[V+1]).
  std::vector<uint32_t> CsrOffsets;
  std::vector<VertexId> CsrNeighbors;
  bool Compressed = false;
};

} // namespace layra

#endif // LAYRA_GRAPH_GRAPH_H
