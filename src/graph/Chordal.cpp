//===- graph/Chordal.cpp - Chordal graph machinery ------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Chordal.h"

#include "core/SolverWorkspace.h"
#include "obs/Trace.h"
#include "support/Compiler.h"

#include <algorithm>
#include <list>
#include <numeric>
#include <unordered_map>

using namespace layra;

EliminationOrder EliminationOrder::fromOrder(std::vector<VertexId> Order) {
  EliminationOrder Result;
  Result.Position.resize(Order.size(), ~0u);
  for (unsigned I = 0; I < Order.size(); ++I) {
    assert(Order[I] < Order.size() && "order mentions unknown vertex");
    assert(Result.Position[Order[I]] == ~0u && "duplicate vertex in order");
    Result.Position[Order[I]] = I;
  }
  Result.Order = std::move(Order);
  return Result;
}

EliminationOrder layra::maximumCardinalitySearch(const Graph &G,
                                                 SolverWorkspace *WS) {
  PhaseSpan McsSpan(Phase::McsPeo);
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  unsigned N = G.numVertices();
  // Bucketed MCS: Buckets[c] holds unvisited vertices with c visited
  // neighbors; we repeatedly visit from the highest non-empty bucket.
  std::vector<std::vector<VertexId>> &Buckets =
      WS->acquireNested(WS->Chordal.Buckets, N + 1);
  std::vector<unsigned> &Count = WS->acquire(WS->Chordal.Count, N, 0u);
  std::vector<char> &Visited = WS->acquire(WS->Chordal.Visited, N, char(0));
  for (VertexId V = 0; V < N; ++V)
    Buckets[0].push_back(V);

  std::vector<VertexId> Visit;
  Visit.reserve(N);
  unsigned Top = 0;
  while (Visit.size() < N) {
    while (Buckets[Top].empty()) {
      assert(Top > 0 && "MCS ran out of vertices before visiting all");
      --Top;
    }
    VertexId V = Buckets[Top].back();
    Buckets[Top].pop_back();
    if (Visited[V])
      continue; // Stale bucket entry; the vertex moved to a higher bucket.
    if (Count[V] != Top)
      continue; // Stale: superseded by a later push at the correct level.
    Visited[V] = 1;
    Visit.push_back(V);
    for (VertexId U : G.neighbors(V)) {
      if (Visited[U])
        continue;
      ++Count[U];
      Buckets[Count[U]].push_back(U);
      Top = std::max(Top, Count[U]);
    }
  }

  // The reverse of the MCS visit order is a PEO on chordal graphs.
  std::reverse(Visit.begin(), Visit.end());
  return EliminationOrder::fromOrder(std::move(Visit));
}

EliminationOrder layra::lexBfs(const Graph &G) {
  PhaseSpan LexBfsSpan(Phase::McsPeo);
  unsigned N = G.numVertices();
  // Partition refinement: Slices is an ordered list of vertex groups; the
  // next visited vertex is the front of the first slice, and visiting splits
  // every slice into (neighbors, non-neighbors), neighbors first.
  std::list<std::vector<VertexId>> Slices;
  if (N > 0) {
    std::vector<VertexId> All(N);
    std::iota(All.begin(), All.end(), 0);
    Slices.push_back(std::move(All));
  }

  std::vector<char> IsNeighbor(N, 0);
  std::vector<VertexId> Visit;
  Visit.reserve(N);
  while (!Slices.empty()) {
    std::vector<VertexId> &First = Slices.front();
    VertexId V = First.back();
    First.pop_back();
    if (First.empty())
      Slices.pop_front();
    Visit.push_back(V);

    for (VertexId U : G.neighbors(V))
      IsNeighbor[U] = 1;
    for (auto It = Slices.begin(); It != Slices.end();) {
      std::vector<VertexId> Hit, Miss;
      for (VertexId U : *It)
        (IsNeighbor[U] ? Hit : Miss).push_back(U);
      if (Hit.empty() || Miss.empty()) {
        ++It;
        continue;
      }
      *It = std::move(Miss);
      Slices.insert(It, std::move(Hit));
      ++It;
    }
    for (VertexId U : G.neighbors(V))
      IsNeighbor[U] = 0;
  }

  std::reverse(Visit.begin(), Visit.end());
  return EliminationOrder::fromOrder(std::move(Visit));
}

/// Later neighbors of \p V (the "monotone adjacency set" of the RTL
/// chordality literature), collected into the caller's scratch buffer
/// (cleared first) so tight loops do not allocate per vertex.
static void laterNeighbors(const Graph &G, const EliminationOrder &Peo,
                           VertexId V, std::vector<VertexId> &Out) {
  Out.clear();
  for (VertexId U : G.neighbors(V))
    if (Peo.Position[U] > Peo.Position[V])
      Out.push_back(U);
}

bool layra::isPerfectEliminationOrder(const Graph &G,
                                      const EliminationOrder &Order,
                                      SolverWorkspace *WS) {
  PhaseSpan PeoSpan(Phase::McsPeo);
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  unsigned N = G.numVertices();
  if (Order.Order.size() != N)
    return false;
  // Rose-Tarjan-Lueker test: for each vertex v, let u be the earliest later
  // neighbor; all other later neighbors of v must be adjacent to u.  We
  // batch the membership checks per u.
  std::vector<std::vector<VertexId>> &MustBeAdjacentTo =
      WS->acquireNested(WS->Chordal.MustBeAdjacentTo, N);
  std::vector<VertexId> &Later = WS->acquireCleared(WS->Chordal.Later);
  for (VertexId V : Order.Order) {
    laterNeighbors(G, Order, V, Later);
    if (Later.empty())
      continue;
    VertexId Parent = *std::min_element(
        Later.begin(), Later.end(), [&](VertexId A, VertexId B) {
          return Order.Position[A] < Order.Position[B];
        });
    for (VertexId U : Later)
      if (U != Parent)
        MustBeAdjacentTo[Parent].push_back(U);
  }
  std::vector<char> &Mark = WS->acquire(WS->Chordal.Flags, N, char(0));
  for (VertexId U = 0; U < N; ++U) {
    if (MustBeAdjacentTo[U].empty())
      continue;
    for (VertexId W : G.neighbors(U))
      Mark[W] = 1;
    bool Ok = true;
    for (VertexId W : MustBeAdjacentTo[U])
      Ok = Ok && Mark[W];
    for (VertexId W : G.neighbors(U))
      Mark[W] = 0;
    if (!Ok)
      return false;
  }
  return true;
}

bool layra::isChordal(const Graph &G) {
  return isPerfectEliminationOrder(G, maximumCardinalitySearch(G));
}

unsigned CliqueCover::maxCliqueSize() const {
  size_t Max = 0;
  for (const auto &K : Cliques)
    Max = std::max(Max, K.size());
  return static_cast<unsigned>(Max);
}

CliqueCover layra::maximalCliquesChordal(const Graph &G,
                                         const EliminationOrder &Peo,
                                         SolverWorkspace *WS) {
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  assert(isPerfectEliminationOrder(G, Peo) &&
         "maximalCliquesChordal requires a PEO (is the graph chordal?)");
  unsigned N = G.numVertices();
  // Fulkerson-Gross: every maximal clique is C_v = {v} + laterNeighbors(v)
  // for some v.  C_v is NON-maximal iff some u with parent(u) == v satisfies
  // |later(u)| == |later(v)| + 1 (then C_v is a subset of C_u); this is the
  // Blair-Peyton detection used in clique-tree construction.
  std::vector<unsigned> &LaterCount =
      WS->acquire(WS->Chordal.LaterCount, N, 0u);
  std::vector<VertexId> &Parent =
      WS->acquire(WS->Chordal.Parent, N, VertexId(~0u));
  std::vector<VertexId> &Later = WS->acquireCleared(WS->Chordal.Later);
  for (VertexId V = 0; V < N; ++V) {
    laterNeighbors(G, Peo, V, Later);
    LaterCount[V] = static_cast<unsigned>(Later.size());
    if (!Later.empty())
      Parent[V] = *std::min_element(
          Later.begin(), Later.end(), [&](VertexId A, VertexId B) {
            return Peo.Position[A] < Peo.Position[B];
          });
  }

  std::vector<char> &Absorbed = WS->acquire(WS->Chordal.Flags, N, char(0));
  for (VertexId U = 0; U < N; ++U)
    if (Parent[U] != ~0u && LaterCount[U] == LaterCount[Parent[U]] + 1)
      Absorbed[Parent[U]] = 1;

  CliqueCover Cover;
  Cover.CliquesOf.resize(N);
  for (VertexId V : Peo.Order) {
    if (Absorbed[V])
      continue;
    laterNeighbors(G, Peo, V, Later);
    // The clique itself is output, not scratch: copy at exact size.
    std::vector<VertexId> Clique;
    Clique.reserve(Later.size() + 1);
    Clique.assign(Later.begin(), Later.end());
    Clique.push_back(V);
    unsigned Index = Cover.numCliques();
    for (VertexId U : Clique)
      Cover.CliquesOf[U].push_back(Index);
    Cover.Cliques.push_back(std::move(Clique));
  }
  return Cover;
}

namespace {
/// Disjoint-set union for the Kruskal run in buildCliqueTree.
class UnionFind {
public:
  explicit UnionFind(unsigned N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  unsigned find(unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  bool unite(unsigned A, unsigned B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return false;
    Parent[B] = A;
    return true;
  }

private:
  std::vector<unsigned> Parent;
};
} // namespace

CliqueTree layra::buildCliqueTree(const Graph &G, const CliqueCover &Cover) {
  PhaseSpan TreeSpan(Phase::CliqueTreeDp);
  unsigned K = Cover.numCliques();
  CliqueTree Tree;
  Tree.Parent.assign(K, ~0u);
  Tree.Children.resize(K);
  Tree.Separator.resize(K);

  // Weight of the clique-intersection edge (i, j) = |K_i intersect K_j|.
  // Only pairs sharing a vertex matter; enumerate them via CliquesOf.
  std::unordered_map<uint64_t, unsigned> Shared;
  for (VertexId V = 0; V < G.numVertices(); ++V) {
    const std::vector<unsigned> &In = Cover.CliquesOf[V];
    for (size_t A = 0; A < In.size(); ++A)
      for (size_t B = A + 1; B < In.size(); ++B) {
        unsigned I = std::min(In[A], In[B]), J = std::max(In[A], In[B]);
        ++Shared[(static_cast<uint64_t>(I) << 32) | J];
      }
  }

  struct CandidateEdge {
    unsigned Weight, I, J;
  };
  std::vector<CandidateEdge> Edges;
  Edges.reserve(Shared.size());
  for (const auto &[Key, W] : Shared)
    Edges.push_back({W, static_cast<unsigned>(Key >> 32),
                     static_cast<unsigned>(Key & 0xffffffffu)});
  // Sort by descending weight, tie-broken by indices for determinism.
  std::sort(Edges.begin(), Edges.end(),
            [](const CandidateEdge &A, const CandidateEdge &B) {
              if (A.Weight != B.Weight)
                return A.Weight > B.Weight;
              if (A.I != B.I)
                return A.I < B.I;
              return A.J < B.J;
            });

  UnionFind Dsu(K);
  std::vector<std::vector<unsigned>> TreeAdj(K);
  for (const CandidateEdge &E : Edges)
    if (Dsu.unite(E.I, E.J)) {
      TreeAdj[E.I].push_back(E.J);
      TreeAdj[E.J].push_back(E.I);
    }

  // Root every component at its smallest clique index and orient.
  std::vector<char> Seen(K, 0);
  for (unsigned Root = 0; Root < K; ++Root) {
    if (Seen[Root])
      continue;
    std::vector<unsigned> Stack{Root};
    Seen[Root] = 1;
    while (!Stack.empty()) {
      unsigned C = Stack.back();
      Stack.pop_back();
      Tree.TopoOrder.push_back(C);
      for (unsigned D : TreeAdj[C]) {
        if (Seen[D])
          continue;
        Seen[D] = 1;
        Tree.Parent[D] = C;
        Tree.Children[C].push_back(D);
        Stack.push_back(D);
      }
    }
  }

  // Separators: child clique intersected with its parent clique.
  std::vector<char> Mark(G.numVertices(), 0);
  for (unsigned C = 0; C < K; ++C) {
    unsigned P = Tree.Parent[C];
    if (P == ~0u)
      continue;
    for (VertexId V : Cover.Cliques[P])
      Mark[V] = 1;
    for (VertexId V : Cover.Cliques[C])
      if (Mark[V])
        Tree.Separator[C].push_back(V);
    for (VertexId V : Cover.Cliques[P])
      Mark[V] = 0;
  }
  return Tree;
}

bool layra::isValidCliqueTree(const Graph &G, const CliqueCover &Cover,
                              const CliqueTree &Tree) {
  unsigned K = Cover.numCliques();
  if (Tree.Parent.size() != K || Tree.Separator.size() != K)
    return false;
  // Induced-subtree property: for each vertex v the number of tree edges
  // with both endpoints containing v must be |CliquesOf(v)| - 1.
  std::vector<unsigned> EdgesContaining(G.numVertices(), 0);
  for (unsigned C = 0; C < K; ++C)
    for (VertexId V : Tree.Separator[C])
      ++EdgesContaining[V];
  for (VertexId V = 0; V < G.numVertices(); ++V) {
    if (Cover.CliquesOf[V].empty())
      return false; // Every vertex lies in at least one maximal clique.
    if (EdgesContaining[V] != Cover.CliquesOf[V].size() - 1)
      return false;
  }
  return true;
}
