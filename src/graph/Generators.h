//===- graph/Generators.h - Random graph generators -------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random-graph generators used by property tests and the
/// micro-benchmarks.  The chordal generator samples *subtrees of a random
/// tree*, which is exactly the structural characterisation of chordal graphs
/// (Gavril; paper §3.2) -- so chordality holds by construction, mirroring how
/// SSA live ranges are subtrees of the dominance tree.
///
/// The *benchmark-suite* workloads do not use these generators: they derive
/// interference graphs from real (synthetic) programs via src/ir.  These are
/// for unit/property tests and scaling studies only.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_GRAPH_GENERATORS_H
#define LAYRA_GRAPH_GENERATORS_H

#include "graph/Graph.h"
#include "support/Random.h"

namespace layra {

/// Options for randomChordalGraph.
struct ChordalGenOptions {
  /// Number of vertices (live ranges).
  unsigned NumVertices = 50;
  /// Number of nodes of the host tree (program points).
  unsigned TreeSize = 40;
  /// Expected subtree size as a fraction of the tree (controls density).
  double SubtreeSpread = 0.25;
  /// Maximum vertex weight; weights are sampled uniformly in [1, MaxWeight].
  Weight MaxWeight = 100;
};

/// Generates a random chordal graph by intersecting random connected
/// subtrees of a random host tree.
Graph randomChordalGraph(Rng &R, const ChordalGenOptions &Options);

/// Generates a random interval graph: each vertex is a random interval on
/// [0, Horizon); vertices interfere iff their intervals overlap.
/// Interval graphs model straight-line (single basic block) SSA code.
Graph randomIntervalGraph(Rng &R, unsigned NumVertices, unsigned Horizon,
                          unsigned MaxLength, Weight MaxWeight);

/// Erdős–Rényi G(n, p) with uniform weights in [1, MaxWeight].  Generally
/// *not* chordal: models non-SSA interference graphs in stress tests.
Graph randomGraph(Rng &R, unsigned NumVertices, double EdgeProbability,
                  Weight MaxWeight);

} // namespace layra

#endif // LAYRA_GRAPH_GENERATORS_H
