//===- graph/Coloring.h - Graph coloring (assignment phase) -----*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy colorings.  In decoupled register allocation coloring is the
/// *assignment* phase: once the allocation has picked which variables live in
/// registers, coloring the induced subgraph picks the concrete register.  On
/// chordal graphs the greedy coloring along a reverse PEO is optimal (uses
/// exactly max-clique-size colors) -- this is the "tree scan" of paper §1.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_GRAPH_COLORING_H
#define LAYRA_GRAPH_COLORING_H

#include "graph/Chordal.h"
#include "graph/Graph.h"

#include <vector>

namespace layra {

/// A vertex -> color map; kNoColor marks uncolored vertices.
inline constexpr unsigned kNoColor = ~0u;

/// Greedily colors vertices in the given sequence, assigning each vertex the
/// smallest color unused by its already-colored neighbors.
/// \returns per-vertex colors; vertices not in \p Sequence stay kNoColor.
std::vector<unsigned> greedyColoring(const Graph &G,
                                     const std::vector<VertexId> &Sequence);

/// Optimal coloring of a chordal graph: greedy along the reverse PEO.
/// Uses exactly as many colors as the largest clique.
std::vector<unsigned> colorChordal(const Graph &G,
                                   const EliminationOrder &Peo);

/// Returns the number of distinct colors used (ignoring kNoColor).
unsigned numColorsUsed(const std::vector<unsigned> &Colors);

/// Returns true if no edge of \p G joins two vertices of the same color
/// (vertices colored kNoColor are ignored).
bool isProperColoring(const Graph &G, const std::vector<unsigned> &Colors);

} // namespace layra

#endif // LAYRA_GRAPH_COLORING_H
