//===- graph/Generators.cpp - Random graph generators ---------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"

#include <algorithm>

using namespace layra;

Graph layra::randomChordalGraph(Rng &R, const ChordalGenOptions &Options) {
  unsigned T = std::max(1u, Options.TreeSize);
  // Random labelled tree: node i > 0 attaches to a uniform earlier node.
  std::vector<std::vector<unsigned>> TreeAdj(T);
  for (unsigned Node = 1; Node < T; ++Node) {
    unsigned Parent = static_cast<unsigned>(R.nextBelow(Node));
    TreeAdj[Node].push_back(Parent);
    TreeAdj[Parent].push_back(Node);
  }

  // Each vertex = a random connected subtree grown by frontier expansion.
  unsigned N = Options.NumVertices;
  std::vector<std::vector<unsigned>> SubtreeNodes(N);
  std::vector<std::vector<char>> Contains(N, std::vector<char>(T, 0));
  for (unsigned V = 0; V < N; ++V) {
    unsigned Target = std::max<unsigned>(
        1, static_cast<unsigned>(Options.SubtreeSpread * T *
                                 (0.25 + 1.5 * R.nextDouble())));
    unsigned Seed = static_cast<unsigned>(R.nextBelow(T));
    std::vector<unsigned> Frontier{Seed};
    Contains[V][Seed] = 1;
    SubtreeNodes[V].push_back(Seed);
    while (SubtreeNodes[V].size() < Target && !Frontier.empty()) {
      size_t Pick = static_cast<size_t>(R.nextBelow(Frontier.size()));
      unsigned Node = Frontier[Pick];
      Frontier[Pick] = Frontier.back();
      Frontier.pop_back();
      for (unsigned Next : TreeAdj[Node]) {
        if (Contains[V][Next])
          continue;
        Contains[V][Next] = 1;
        SubtreeNodes[V].push_back(Next);
        Frontier.push_back(Next);
        if (SubtreeNodes[V].size() >= Target)
          break;
      }
    }
  }

  Graph G;
  for (unsigned V = 0; V < N; ++V)
    G.addVertex(static_cast<Weight>(R.nextInRange(1, Options.MaxWeight)));
  // Vertices interfere iff their subtrees share a tree node.  Sweep tree
  // nodes and connect all subtree owners present at each node.
  std::vector<std::vector<VertexId>> Owners(T);
  for (unsigned V = 0; V < N; ++V)
    for (unsigned Node : SubtreeNodes[V])
      Owners[Node].push_back(V);
  for (unsigned Node = 0; Node < T; ++Node)
    for (size_t A = 0; A < Owners[Node].size(); ++A)
      for (size_t B = A + 1; B < Owners[Node].size(); ++B)
        G.addEdge(Owners[Node][A], Owners[Node][B]);
  return G;
}

Graph layra::randomIntervalGraph(Rng &R, unsigned NumVertices,
                                 unsigned Horizon, unsigned MaxLength,
                                 Weight MaxWeight) {
  assert(Horizon > 0 && MaxLength > 0 && "degenerate interval parameters");
  struct Interval {
    unsigned Lo, Hi;
  };
  std::vector<Interval> Intervals(NumVertices);
  Graph G;
  for (unsigned V = 0; V < NumVertices; ++V) {
    unsigned Lo = static_cast<unsigned>(R.nextBelow(Horizon));
    unsigned Len = 1 + static_cast<unsigned>(R.nextBelow(MaxLength));
    Intervals[V] = {Lo, std::min(Horizon, Lo + Len)};
    G.addVertex(static_cast<Weight>(R.nextInRange(1, MaxWeight)));
  }
  for (unsigned A = 0; A < NumVertices; ++A)
    for (unsigned B = A + 1; B < NumVertices; ++B)
      if (Intervals[A].Lo < Intervals[B].Hi && Intervals[B].Lo < Intervals[A].Hi)
        G.addEdge(A, B);
  return G;
}

Graph layra::randomGraph(Rng &R, unsigned NumVertices, double EdgeProbability,
                         Weight MaxWeight) {
  Graph G;
  for (unsigned V = 0; V < NumVertices; ++V)
    G.addVertex(static_cast<Weight>(R.nextInRange(1, MaxWeight)));
  for (unsigned A = 0; A < NumVertices; ++A)
    for (unsigned B = A + 1; B < NumVertices; ++B)
      if (R.nextBool(EdgeProbability))
        G.addEdge(A, B);
  return G;
}
