//===- alloc/OptimalBnB.h - Exact branch-and-bound solver -------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Optimal" baseline of the paper's evaluation.  The paper solves an
/// ILP (Diouf et al. [11]); we solve the *same model* exactly with a
/// dedicated branch-and-bound:
///
///     maximise   sum w(v) x_v
///     subject to sum_{v in K} x_v <= R   for every point constraint K
///                x binary
///
/// The solver preprocesses aggressively (constraints of size <= R never
/// bind; vertices outside every binding constraint are allocated for free;
/// the rest decomposes into independent components), warm-starts from the
/// BFPL / layered-heuristic solutions -- whose near-optimality (the paper's
/// very point) makes the proof search shallow -- and propagates saturated
/// constraints during the DFS.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_ALLOC_OPTIMALBNB_H
#define LAYRA_ALLOC_OPTIMALBNB_H

#include "alloc/Allocator.h"

#include <cstdint>

namespace layra {

/// Exact solver with a node budget.
class OptimalBnBAllocator : public Allocator {
public:
  explicit OptimalBnBAllocator(uint64_t NodeLimit = 50'000'000)
      : NodeLimit(NodeLimit) {}

  /// Solves to proven optimality unless the node budget is exhausted, in
  /// which case the best incumbent is returned with Proven == false.
  AllocationResult allocate(const AllocationProblem &P) override;
  /// Workspace-aware entry: the warm-start heuristics, the exact clique-tree
  /// DP and the ILP relaxations all reuse \p WS's arenas.
  AllocationResult allocate(const AllocationProblem &P,
                            SolverWorkspace *WS) override;
  const char *name() const override { return "optimal"; }

  /// Search nodes expanded by the last allocate() call.
  uint64_t lastNodeCount() const { return NodesUsed; }

private:
  uint64_t NodeLimit;
  uint64_t NodesUsed = 0;
};

} // namespace layra

#endif // LAYRA_ALLOC_OPTIMALBNB_H
