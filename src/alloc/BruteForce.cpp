//===- alloc/BruteForce.cpp - Exhaustive oracle for tests ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/BruteForce.h"

#include "support/Compiler.h"

using namespace layra;

AllocationResult BruteForceAllocator::allocate(const AllocationProblem &P) {
  unsigned N = P.graph().numVertices();
  if (N > 24)
    layraFatalError("brute-force allocator limited to 24 vertices");

  // Budgets are per constraint (multi-class instances carry one budget per
  // class; single-class instances one uniform R).
  std::vector<std::pair<uint32_t, unsigned>> ConstraintMask;
  ConstraintMask.reserve(P.Constraints.size());
  for (const PressureConstraint &K : P.Constraints) {
    if (K.Members.size() <= K.Budget)
      continue; // Never binding.
    uint32_t Mask = 0;
    for (VertexId V : K.Members)
      Mask |= uint32_t(1) << V;
    ConstraintMask.push_back({Mask, K.Budget});
  }

  uint32_t BestSet = 0;
  Weight BestWeight = -1;
  for (uint64_t Subset = 0; Subset < (uint64_t(1) << N); ++Subset) {
    uint32_t Bits = static_cast<uint32_t>(Subset);
    bool Feasible = true;
    for (const auto &[Mask, Budget] : ConstraintMask)
      if (layraPopcount(Bits & Mask) > static_cast<int>(Budget)) {
        Feasible = false;
        break;
      }
    if (!Feasible)
      continue;
    Weight W = 0;
    for (unsigned V = 0; V < N; ++V)
      if (Bits & (uint32_t(1) << V))
        W += P.graph().weight(V);
    if (W > BestWeight) {
      BestWeight = W;
      BestSet = Bits;
    }
  }

  std::vector<char> Flags(N, 0);
  for (unsigned V = 0; V < N; ++V)
    if (BestSet & (uint32_t(1) << V))
      Flags[V] = 1;
  AllocationResult Result = AllocationResult::fromFlags(P.graph(), std::move(Flags));
  Result.Proven = true;
  return Result;
}
