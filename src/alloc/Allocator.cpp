//===- alloc/Allocator.cpp - Common allocator interface --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"

#include "alloc/BruteForce.h"
#include "alloc/GraphColoring.h"
#include "alloc/LinearScan.h"
#include "alloc/OptimalBnB.h"
#include "core/Layered.h"
#include "core/LayeredHeuristic.h"
#include "core/SolverWorkspace.h"

using namespace layra;

Allocator::~Allocator() = default;

AllocationResult Allocator::allocateProblem(const AllocationProblem &P,
                                            SolverWorkspace *WS) {
  if (!P.multiClass())
    return allocate(P, WS);

  // Exact per-class decomposition: register classes partition the vertices
  // and every pressure constraint lies within one class, so the instance
  // is the disjoint union of single-class instances.  Each one is solved
  // with this very allocator; flags merge through the local -> global
  // vertex maps.
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  std::vector<char> &Merged = WS->acquire(
      WS->ClassSplit.MergedFlags, P.graph().numVertices(), char(0));
  bool Proven = true;
  for (RegClassId Class = 0; Class < P.numClasses(); ++Class) {
    // The subproblem owns its storage, so the shared ToGlobal scratch is
    // free for the next class after the merge below.
    std::vector<VertexId> &ToGlobal =
        WS->acquireCleared(WS->ClassSplit.ToGlobal);
    AllocationProblem Sub = P.projectClass(Class, ToGlobal, WS);
    if (Sub.graph().numVertices() == 0)
      continue; // Class has a budget but no values.
    AllocationResult R = allocate(Sub, WS);
    Proven &= R.Proven;
    for (VertexId Local = 0; Local < R.Allocated.size(); ++Local)
      if (R.Allocated[Local])
        Merged[ToGlobal[Local]] = 1;
  }
  AllocationResult Out = AllocationResult::fromFlags(
      P.graph(), std::vector<char>(Merged.begin(), Merged.end()));
  Out.Proven = Proven;
  assert(isFeasibleAllocation(P, Out.Allocated) &&
         "per-class decomposition produced an infeasible allocation");
  return Out;
}

namespace {
/// Adapts the layered-optimal variants (free functions in core) to the
/// Allocator interface.
class LayeredAdapter : public Allocator {
public:
  LayeredAdapter(const char *Name, LayeredOptions Options)
      : AdapterName(Name), Options(Options) {}

  AllocationResult allocate(const AllocationProblem &P) override {
    return allocate(P, nullptr);
  }
  AllocationResult allocate(const AllocationProblem &P,
                            SolverWorkspace *WS) override {
    return layeredAllocate(P, Options, WS);
  }
  const char *name() const override { return AdapterName; }

private:
  const char *AdapterName;
  LayeredOptions Options;
};

/// Adapts the layered heuristic (general graphs).
class LayeredHeuristicAdapter : public Allocator {
public:
  AllocationResult allocate(const AllocationProblem &P) override {
    return allocate(P, nullptr);
  }
  AllocationResult allocate(const AllocationProblem &P,
                            SolverWorkspace *WS) override {
    return layeredHeuristicAllocate(P, WS).Allocation;
  }
  const char *name() const override { return "lh"; }
};
} // namespace

std::unique_ptr<Allocator> layra::makeAllocator(const std::string &Name) {
  if (Name == "gc")
    return std::make_unique<GraphColoringAllocator>();
  if (Name == "nl")
    return std::make_unique<LayeredAdapter>("nl", LayeredOptions::nl());
  if (Name == "bl")
    return std::make_unique<LayeredAdapter>("bl", LayeredOptions::bl());
  if (Name == "fpl")
    return std::make_unique<LayeredAdapter>("fpl", LayeredOptions::fpl());
  if (Name == "bfpl")
    return std::make_unique<LayeredAdapter>("bfpl", LayeredOptions::bfpl());
  if (Name == "lh")
    return std::make_unique<LayeredHeuristicAdapter>();
  if (Name == "ls")
    return std::make_unique<LinearScanAllocator>(
        LinearScanAllocator::PolicyKind::FurthestEnd);
  if (Name == "bls")
    return std::make_unique<LinearScanAllocator>(
        LinearScanAllocator::PolicyKind::CostBelady);
  if (Name == "optimal")
    return std::make_unique<OptimalBnBAllocator>();
  if (Name == "brute")
    return std::make_unique<BruteForceAllocator>();
  return nullptr;
}

std::vector<std::string> layra::allAllocatorNames() {
  return {"gc", "nl", "bl", "fpl", "bfpl", "lh", "ls", "bls", "optimal",
          "brute"};
}
