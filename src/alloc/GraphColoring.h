//===- alloc/GraphColoring.h - Chaitin-Briggs baseline ----------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical Chaitin-Briggs optimistic graph-coloring allocator -- the
/// paper's "GC" baseline.  Simplify removes low-degree nodes; when stuck, the
/// node minimising cost/degree is pushed optimistically; select colors the
/// stack top-down and spills optimistic nodes that find no color.  In the
/// decoupled spill-everywhere cost model, spilled vertices are simply
/// removed (their short reload ranges are not re-inserted), matching how the
/// paper evaluates all allocators on a level field.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_ALLOC_GRAPHCOLORING_H
#define LAYRA_ALLOC_GRAPHCOLORING_H

#include "alloc/Allocator.h"

namespace layra {

/// Chaitin-Briggs with optimistic coloring and cost/degree spill choice.
class GraphColoringAllocator : public Allocator {
public:
  AllocationResult allocate(const AllocationProblem &P) override;
  const char *name() const override { return "gc"; }

  /// The coloring produced by the last allocate() call (register per vertex,
  /// ~0u for spilled) -- GC performs allocation and assignment together.
  const std::vector<unsigned> &lastColoring() const { return Colors; }

private:
  std::vector<unsigned> Colors;
};

} // namespace layra

#endif // LAYRA_ALLOC_GRAPHCOLORING_H
