//===- alloc/OptimalBnB.cpp - Exact branch-and-bound solver ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/OptimalBnB.h"

#include "core/Layered.h"
#include "core/LayeredHeuristic.h"
#include "core/StepLayer.h"
#include "lp/Ilp.h"

#include <algorithm>

using namespace layra;

namespace {
/// State cap for the exact clique-tree DP path.  Beyond ~100k subset
/// states the LP-guided ILP search (below) wins decisively: measured on the
/// two largest SPEC-like programs, the full R sweep drops from ~22 s with
/// an 8M cap to ~0.5 s with this one, because mid-R components whose DP
/// tables would hold millions of subsets close at the ILP root instead.
constexpr double kDpStateLimit = 100000;

/// Components up to this many vertices go to the integer-exact DFS (no
/// floating point involved); larger ones use the LP-guided ILP search,
/// whose relaxation bounds stay strong where the DFS capacity bound
/// collapses (mid-R suite instances with hundreds of interleaved cliques).
constexpr unsigned kDfsVertexLimit = 26;

/// One independent subproblem after preprocessing: vertices tied together by
/// binding (size > R) constraints.  Indices below are *local* (positions in
/// Vertices, which is sorted by decreasing weight).
struct Component {
  /// Vertices in *program order* (PEO position for chordal instances, first
  /// containing point otherwise): constraints then resolve contiguously
  /// during the DFS sweep, which is what lets the capacity bound prune.
  std::vector<VertexId> Vertices;
  std::vector<std::vector<unsigned>> ConstraintsOf; // Local vertex -> K ids.
  std::vector<std::vector<unsigned>> MembersOf;     // K id -> local vertices.
  unsigned NumConstraints = 0;
};

/// DFS branch-and-bound over one component.
///
/// Invariants at dfs(I):
///  - vertices with local index < I are decided, >= I undecided;
///  - Count[K] = allocated members of constraint K;
///  - ForcedBy[J] = number of saturated (Count == R) constraints containing
///    the undecided-or-decided vertex J; an undecided J with ForcedBy > 0
///    can never be allocated below this node;
///  - ForcedUndecided = total weight of undecided J >= I with ForcedBy > 0.
///
/// Bounds: the cheap bound Current + SuffixWeight[I] - ForcedUndecided
/// prunes first; if it does not, a capacity bound subtracts, over a greedy
/// family of vertex-disjoint constraints, the weight of the cheapest
/// members each constraint must still spill (it has c allocated and u
/// unforced undecided members, so at least c + u - R of those must go).
class ComponentSolver {
public:
  ComponentSolver(const Graph &G, const Component &C, unsigned R,
                  uint64_t &NodeBudget)
      : G(G), C(C), R(R), NodeBudget(NodeBudget) {
    unsigned N = static_cast<unsigned>(C.Vertices.size());
    Count.assign(C.NumConstraints, 0);
    ForcedBy.assign(N, 0);
    SuffixWeight.assign(N + 1, 0);
    for (unsigned I = N; I-- > 0;)
      SuffixWeight[I] = SuffixWeight[I + 1] + G.weight(C.Vertices[I]);
    Chosen.assign(N, 0);
    BestChosen = Chosen;
    MarkedAt.assign(N, ~uint64_t(0));
    Epoch = 0;
  }

  /// Seeds the incumbent from a feasible global selection.
  void warmStart(const std::vector<char> &GlobalFlags) {
    Weight W = 0;
    std::vector<char> Local(C.Vertices.size(), 0);
    std::vector<unsigned> Cnt(C.NumConstraints, 0);
    for (unsigned I = 0; I < C.Vertices.size(); ++I) {
      if (!GlobalFlags[C.Vertices[I]])
        continue;
      bool Fits = true;
      for (unsigned K : C.ConstraintsOf[I])
        Fits &= Cnt[K] < R;
      if (!Fits)
        continue;
      Local[I] = 1;
      W += G.weight(C.Vertices[I]);
      for (unsigned K : C.ConstraintsOf[I])
        ++Cnt[K];
    }
    if (W > BestWeight) {
      BestWeight = W;
      BestChosen = std::move(Local);
    }
  }

  /// Runs the search; returns false if the node budget ran out.
  bool solve() { return dfs(0, 0); }

  Weight bestWeight() const { return BestWeight; }
  const std::vector<char> &bestChosen() const { return BestChosen; }

private:
  /// Allocates local vertex I into its constraints; newly saturated
  /// constraints force their later (undecided) members.  Returns an undo
  /// token: the list of constraints that became saturated.
  std::vector<unsigned> saturate(unsigned I) {
    std::vector<unsigned> NewlySaturated;
    for (unsigned K : C.ConstraintsOf[I]) {
      if (++Count[K] != R)
        continue;
      NewlySaturated.push_back(K);
      for (unsigned J : C.MembersOf[K])
        if (J > I && ForcedBy[J]++ == 0)
          ForcedUndecided += G.weight(C.Vertices[J]);
    }
    return NewlySaturated;
  }

  void desaturate(unsigned I, const std::vector<unsigned> &NewlySaturated) {
    for (unsigned K : NewlySaturated)
      for (unsigned J : C.MembersOf[K])
        if (J > I && --ForcedBy[J] == 0)
          ForcedUndecided -= G.weight(C.Vertices[J]);
    for (unsigned K : C.ConstraintsOf[I])
      --Count[K];
  }

  /// Capacity bound: lower-bounds the weight that vertex-disjoint
  /// constraints still force to be spilled below this node.  A constraint
  /// with c allocated and u unforced undecided members must spill at least
  /// c + u - R of the latter; charging the cheapest ones is a valid bound,
  /// summable over vertex-disjoint constraints.
  Weight capacityBound(unsigned I) {
    ++Epoch;
    Weight Extra = 0;
    for (unsigned K = 0; K < C.NumConstraints; ++K) {
      if (Count[K] >= R)
        continue; // Saturated: members already in ForcedUndecided.
      const std::vector<unsigned> &Members = C.MembersOf[K];
      Scratch.clear();
      bool Disjoint = true;
      for (unsigned J : Members) {
        if (J < I)
          continue; // Decided prefix.
        if (MarkedAt[J] == Epoch) {
          Disjoint = false;
          break;
        }
        if (ForcedBy[J] == 0)
          Scratch.push_back(G.weight(C.Vertices[J]));
      }
      if (!Disjoint ||
          Count[K] + static_cast<unsigned>(Scratch.size()) <= R)
        continue;
      unsigned MustSpill =
          Count[K] + static_cast<unsigned>(Scratch.size()) - R;
      std::nth_element(Scratch.begin(), Scratch.begin() + (MustSpill - 1),
                       Scratch.end());
      for (unsigned T = 0; T < MustSpill; ++T)
        Extra += Scratch[T];
      for (unsigned J : Members)
        if (J >= I)
          MarkedAt[J] = Epoch;
    }
    return Extra;
  }

  bool dfs(unsigned I, Weight Current) {
    if (NodeBudget == 0)
      return false;
    --NodeBudget;

    unsigned N = static_cast<unsigned>(C.Vertices.size());
    if (I == N) {
      if (Current > BestWeight) {
        BestWeight = Current;
        BestChosen = Chosen;
      }
      return true;
    }
    Weight CheapBound = Current + SuffixWeight[I] - ForcedUndecided;
    if (CheapBound <= BestWeight)
      return true; // Bound: cannot beat the incumbent.
    if (CheapBound - capacityBound(I) <= BestWeight)
      return true;

    bool Complete = true;
    Weight W = G.weight(C.Vertices[I]);

    if (ForcedBy[I] == 0) {
      // Allocate branch (tried first: vertices are weight-descending).
      std::vector<unsigned> Token = saturate(I);
      Chosen[I] = 1;
      Complete &= dfs(I + 1, Current + W);
      Chosen[I] = 0;
      desaturate(I, Token);

      // Spill branch: I leaves the undecided set unforced, no adjustment.
      Complete &= dfs(I + 1, Current);
      return Complete;
    }

    // Forced spill: I was counted in ForcedUndecided while undecided.
    ForcedUndecided -= W;
    Complete &= dfs(I + 1, Current);
    ForcedUndecided += W;
    return Complete;
  }

  const Graph &G;
  const Component &C;
  unsigned R;
  uint64_t &NodeBudget;

  std::vector<unsigned> Count;
  std::vector<unsigned> ForcedBy;
  std::vector<Weight> SuffixWeight;
  Weight ForcedUndecided = 0;

  std::vector<char> Chosen, BestChosen;
  std::vector<uint64_t> MarkedAt; // Epoch marks for capacityBound.
  std::vector<Weight> Scratch;    // Weight buffer for capacityBound.
  uint64_t Epoch = 0;
  Weight BestWeight = -1;
};
} // namespace

AllocationResult OptimalBnBAllocator::allocate(const AllocationProblem &P) {
  return allocate(P, nullptr);
}

AllocationResult OptimalBnBAllocator::allocate(const AllocationProblem &P,
                                               SolverWorkspace *WS) {
  const Graph &G = P.graph();
  unsigned N = G.numVertices();
  NodesUsed = 0;

  // --- Preprocessing ------------------------------------------------------
  // Budgets are per constraint (the multi-class generalization: one budget
  // per register class; single-class instances carry one uniform R).  Only
  // constraints with more members than budget can bind.  Drop constraints
  // contained in other binding constraints: overlapping constraints always
  // belong to the same class (classes partition the vertices), so their
  // bounds agree and the superset implies the subset.
  struct BindingConstraint {
    std::vector<VertexId> Members; // Sorted.
    unsigned Budget = 0;
  };
  std::vector<BindingConstraint> Binding;
  for (const PressureConstraint &K : P.Constraints)
    if (K.Members.size() > K.Budget) {
      BindingConstraint B;
      B.Members = K.Members;
      B.Budget = K.Budget;
      std::sort(B.Members.begin(), B.Members.end());
      Binding.push_back(std::move(B));
    }
  std::sort(Binding.begin(), Binding.end(),
            [](const BindingConstraint &A, const BindingConstraint &B) {
              return A.Members.size() > B.Members.size();
            });
  {
    std::vector<BindingConstraint> Kept;
    std::vector<std::vector<unsigned>> KeptOf(N);
    for (BindingConstraint &K : Binding) {
      bool Subset = false;
      for (unsigned Idx : KeptOf[K.Members.front()]) {
        const BindingConstraint &S = Kept[Idx];
        if (S.Members.size() >= K.Members.size() &&
            std::includes(S.Members.begin(), S.Members.end(),
                          K.Members.begin(), K.Members.end())) {
          Subset = true;
          break;
        }
      }
      if (Subset)
        continue;
      unsigned Idx = static_cast<unsigned>(Kept.size());
      for (VertexId V : K.Members)
        KeptOf[V].push_back(Idx);
      Kept.push_back(std::move(K));
    }
    Binding = std::move(Kept);
  }

  // Vertices outside every binding constraint are allocated for free.
  std::vector<char> Flags(N, 0);
  std::vector<std::vector<unsigned>> BindingOf(N);
  for (unsigned K = 0; K < Binding.size(); ++K)
    for (VertexId V : Binding[K].Members)
      BindingOf[V].push_back(K);
  for (VertexId V = 0; V < N; ++V)
    if (BindingOf[V].empty())
      Flags[V] = 1;

  // Independent components: constraints sharing a vertex go together.
  std::vector<int> CompOfConstraint(Binding.size(), -1);
  std::vector<int> CompOfVertex(N, -1);
  int NumComponents = 0;
  for (unsigned Seed = 0; Seed < Binding.size(); ++Seed) {
    if (CompOfConstraint[Seed] != -1)
      continue;
    int Comp = NumComponents++;
    std::vector<unsigned> Work{Seed};
    CompOfConstraint[Seed] = Comp;
    while (!Work.empty()) {
      unsigned K = Work.back();
      Work.pop_back();
      for (VertexId V : Binding[K].Members) {
        CompOfVertex[V] = Comp;
        for (unsigned K2 : BindingOf[V])
          if (CompOfConstraint[K2] == -1) {
            CompOfConstraint[K2] = Comp;
            Work.push_back(K2);
          }
      }
    }
  }

  // Warm start from the paper's own heuristics: their near-optimality (the
  // paper's very point) keeps the exactness proof shallow.  The layered
  // family speaks one uniform budget, so multi-class instances skip the
  // warm start (they reach this solver directly only from tests and the
  // decomposition cross-checks; the all-spilled incumbent is still valid).
  std::vector<char> Warm(N, 0);
  if (!P.multiClass()) {
    if (P.Chordal)
      Warm = layeredAllocate(P, LayeredOptions::bfpl(), WS).Allocated;
    else
      Warm = layeredHeuristicAllocate(P, WS).Allocation.Allocated;
  }

  // Program-order locality key: PEO position for chordal instances, index
  // of the first containing constraint otherwise (the interference builder
  // records point constraints in program order).  Sweeping vertices in this
  // order makes constraints resolve contiguously, which is what lets the
  // capacity bound prune (see ComponentSolver).
  std::vector<unsigned> Locality(N, ~0u);
  if (P.Chordal && P.Peo.Position.size() == N) {
    Locality = P.Peo.Position;
  } else {
    for (unsigned K = 0; K < P.Constraints.size(); ++K)
      for (VertexId V : P.Constraints[K].Members)
        Locality[V] = std::min(Locality[V], K);
  }

  // Every constraint of a component shares one register class (constraints
  // sharing a vertex share its class), hence one budget.
  std::vector<unsigned> CompBudget(NumComponents, 0);
  for (unsigned K = 0; K < Binding.size(); ++K)
    CompBudget[CompOfConstraint[K]] = Binding[K].Budget;

  // --- Solve each component ------------------------------------------------
  uint64_t Budget = NodeLimit;
  bool Proven = true;
  for (int Comp = 0; Comp < NumComponents; ++Comp) {
    unsigned R = CompBudget[Comp];
    std::vector<VertexId> CompVertices;
    for (VertexId V = 0; V < N; ++V)
      if (CompOfVertex[V] == Comp)
        CompVertices.push_back(V);

    // Chordal instances: the clique-tree DP with per-clique bound R is an
    // exact polynomial-space-per-fixed-R solver (paper §2.2's
    // pseudo-polynomiality).  Solve the component's induced subproblem that
    // way whenever its state space is affordable; its constraint system is
    // equivalent to the restriction of the original one.
    if (P.Chordal) {
      Graph Sub = G.inducedSubgraph(CompVertices);
      AllocationProblem SubP =
          AllocationProblem::fromChordalGraph(std::move(Sub), R, WS);
      std::vector<char> FullMask(SubP.graph().numVertices(), 1);
      if (estimateBoundedLayerStates(SubP, FullMask, R) <= kDpStateLimit) {
        std::vector<Weight> W(SubP.graph().numVertices());
        for (VertexId V = 0; V < SubP.graph().numVertices(); ++V)
          W[V] = SubP.graph().weight(V);
        for (VertexId Local : optimalBoundedLayer(SubP, FullMask, W, R, WS))
          Flags[CompVertices[Local]] = 1;
        continue;
      }
    }

    // Large components: LP-relaxation-guided exact search (lp/Ilp.h).  The
    // restriction of the feasible global warm start to the component is
    // feasible for the component's constraints (they are a subset of the
    // global ones), so it seeds the incumbent directly.
    if (CompVertices.size() > kDfsVertexLimit) {
      IlpInstance Instance;
      std::vector<unsigned> LocalOf(N, ~0u);
      Instance.Weights.reserve(CompVertices.size());
      for (unsigned I = 0; I < CompVertices.size(); ++I) {
        LocalOf[CompVertices[I]] = I;
        Instance.Weights.push_back(G.weight(CompVertices[I]));
      }
      for (unsigned K = 0; K < Binding.size(); ++K) {
        if (CompOfConstraint[K] != Comp)
          continue;
        IlpConstraint Row;
        Row.Capacity = R;
        for (VertexId V : Binding[K].Members)
          Row.Vars.push_back(LocalOf[V]);
        Instance.Constraints.push_back(std::move(Row));
      }
      std::vector<char> LocalWarm(CompVertices.size(), 0);
      for (unsigned I = 0; I < CompVertices.size(); ++I)
        LocalWarm[I] = Warm[CompVertices[I]];
      IlpResult Ilp = solveBinaryPacking(Instance, &LocalWarm, Budget, WS);
      Proven &= Ilp.Proven;
      for (unsigned I = 0; I < CompVertices.size(); ++I)
        if (Ilp.X[I])
          Flags[CompVertices[I]] = 1;
      continue;
    }

    Component C;
    C.Vertices = std::move(CompVertices);
    std::sort(C.Vertices.begin(), C.Vertices.end(),
              [&](VertexId A, VertexId B) {
                if (Locality[A] != Locality[B])
                  return Locality[A] < Locality[B];
                if (G.weight(A) != G.weight(B))
                  return G.weight(A) > G.weight(B);
                return A < B;
              });
    std::vector<unsigned> LocalOf(N, ~0u);
    for (unsigned I = 0; I < C.Vertices.size(); ++I)
      LocalOf[C.Vertices[I]] = I;
    C.ConstraintsOf.resize(C.Vertices.size());
    for (unsigned K = 0; K < Binding.size(); ++K) {
      if (CompOfConstraint[K] != Comp)
        continue;
      unsigned Local = C.NumConstraints++;
      C.MembersOf.emplace_back();
      for (VertexId V : Binding[K].Members) {
        C.ConstraintsOf[LocalOf[V]].push_back(Local);
        C.MembersOf[Local].push_back(LocalOf[V]);
      }
      std::sort(C.MembersOf[Local].begin(), C.MembersOf[Local].end());
    }

    ComponentSolver Solver(G, C, R, Budget);
    Solver.warmStart(Warm);
    Proven &= Solver.solve();
    for (unsigned I = 0; I < C.Vertices.size(); ++I)
      if (Solver.bestChosen()[I])
        Flags[C.Vertices[I]] = 1;
  }
  NodesUsed = NodeLimit - Budget;

  AllocationResult Result = AllocationResult::fromFlags(G, std::move(Flags));
  Result.Proven = Proven;
  assert(isFeasibleAllocation(P, Result.Allocated) &&
         "BnB produced an infeasible allocation");
  return Result;
}
