//===- alloc/GraphColoring.cpp - Chaitin-Briggs baseline -------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/GraphColoring.h"

#include <algorithm>

using namespace layra;

AllocationResult GraphColoringAllocator::allocate(const AllocationProblem &P) {
  const Graph &G = P.graph();
  unsigned N = G.numVertices();
  unsigned R = P.uniformBudget();

  // --- Simplify phase -----------------------------------------------------
  // CurrentDegree tracks degrees in the shrinking subgraph.
  std::vector<unsigned> CurrentDegree(N);
  std::vector<char> Removed(N, 0);
  for (VertexId V = 0; V < N; ++V)
    CurrentDegree[V] = G.degree(V);

  std::vector<VertexId> Stack;
  Stack.reserve(N);
  // Worklist of simplifiable nodes (degree < R).
  std::vector<VertexId> Low;
  for (VertexId V = 0; V < N; ++V)
    if (CurrentDegree[V] < R)
      Low.push_back(V);

  unsigned RemainingCount = N;
  auto RemoveNode = [&](VertexId V) {
    Removed[V] = 1;
    --RemainingCount;
    Stack.push_back(V);
    for (VertexId U : G.neighbors(V)) {
      if (Removed[U])
        continue;
      if (--CurrentDegree[U] == R - 1 && R > 0)
        Low.push_back(U);
    }
  };

  while (RemainingCount > 0) {
    // Drain the simplify worklist first.
    bool Simplified = false;
    while (!Low.empty()) {
      VertexId V = Low.back();
      Low.pop_back();
      if (Removed[V] || CurrentDegree[V] >= R)
        continue;
      RemoveNode(V);
      Simplified = true;
    }
    if (Simplified && RemainingCount == 0)
      break;
    if (RemainingCount == 0)
      break;
    // Stuck: every remaining node has degree >= R.  Push the node with the
    // smallest cost/degree ratio optimistically (Chaitin's spill metric;
    // Briggs defers the actual spill decision to select).
    VertexId Best = kNoValue;
    for (VertexId V = 0; V < N; ++V) {
      if (Removed[V])
        continue;
      if (Best == kNoValue) {
        Best = V;
        continue;
      }
      // Compare cost/degree without divisions: w(V)*deg(Best) vs
      // w(Best)*deg(V).  Ties: higher degree, then lower id.
      Weight Lhs = G.weight(V) * static_cast<Weight>(CurrentDegree[Best]);
      Weight Rhs = G.weight(Best) * static_cast<Weight>(CurrentDegree[V]);
      if (Lhs != Rhs ? Lhs < Rhs
                     : CurrentDegree[V] > CurrentDegree[Best]) {
        Best = V;
      }
    }
    if (Best == kNoValue)
      break;
    RemoveNode(Best);
  }

  // --- Select phase -------------------------------------------------------
  Colors.assign(N, ~0u);
  std::vector<char> UsedColor;
  std::vector<char> Flags(N, 0);
  while (!Stack.empty()) {
    VertexId V = Stack.back();
    Stack.pop_back();
    UsedColor.assign(R, 0);
    for (VertexId U : G.neighbors(V))
      if (Colors[U] != ~0u)
        UsedColor[Colors[U]] = 1;
    unsigned Color = 0;
    while (Color < R && UsedColor[Color])
      ++Color;
    if (Color >= R)
      continue; // Actual spill: optimistic node found no color.
    Colors[V] = Color;
    Flags[V] = 1;
  }

  return AllocationResult::fromFlags(G, std::move(Flags));
}
