//===- alloc/Pipeline.cpp - Iterative allocation pipeline ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/Pipeline.h"

#include "core/Coalescing.h"
#include "core/ProblemBuilder.h"
#include "core/SolverWorkspace.h"
#include "ir/Liveness.h"
#include "ir/OperandFolding.h"
#include "obs/Trace.h"
#include "support/Compiler.h"

using namespace layra;

PipelineResult layra::runAllocationPipeline(const Function &F,
                                            const TargetDesc &Target,
                                            unsigned NumRegisters,
                                            const PipelineOptions &Options,
                                            SolverWorkspace *WS) {
  std::vector<unsigned> Budgets =
      resolveClassBudgets(Target, NumRegisters, {});
  return runAllocationPipeline(F, Target, Budgets, Options, WS);
}

PipelineResult layra::runAllocationPipeline(
    const Function &F, const TargetDesc &Target,
    const std::vector<unsigned> &Budgets, const PipelineOptions &Options,
    SolverWorkspace *WS) {
  assert(verifyFunction(F, /*ExpectSsa=*/true) &&
         "pipeline requires strict SSA input");
  PhaseSpan PipelineSpan(Phase::Pipeline);
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  std::unique_ptr<Allocator> Alloc = makeAllocator(Options.AllocatorName);
  if (!Alloc)
    layraFatalError("unknown allocator name in pipeline options");

  PipelineResult Out;
  Out.Rewritten = F;

  // Values spilled in an earlier round live only from def to the adjacent
  // store; spilling them again would be wasted motion, so they are pinned.
  std::vector<char> &Pinned =
      WS->acquire(WS->Pipeline.Pinned, F.numValues(), char(0));

  for (unsigned Round = 0; Round < Options.MaxRounds; ++Round) {
    PhaseSpan RoundSpan(Phase::SpillRound);
    ++Out.Rounds;
    obs::addSpillRound();
    AllocationProblem P =
        buildSsaProblem(Out.Rewritten, Target, Budgets, WS);
    if (P.fitsBudgets())
      break; // Every class fits already; nothing to spill this round.

    // allocateProblem decomposes multi-class instances per register class;
    // single-class instances take the historical direct path.
    AllocationResult Result = [&] {
      PhaseSpan AllocSpan(Phase::Allocate);
      return Alloc->allocateProblem(P, WS);
    }();
    // Pin-aware spill set: never re-spill a pinned value.
    std::vector<char> &Spilled =
        WS->acquire(WS->Pipeline.Spilled, Out.Rewritten.numValues(), char(0));
    unsigned NumSpilled = 0;
    for (VertexId V = 0; V < P.graph().numVertices(); ++V) {
      if (Result.Allocated[V] || (V < Pinned.size() && Pinned[V]))
        continue;
      Spilled[V] = 1;
      Out.TotalSpillCost += P.graph().weight(V);
      ++NumSpilled;
    }
    if (NumSpilled == 0)
      break; // Allocator found nothing (more) to spill.

    // One rewrite covers every class's spills; reload temporaries inherit
    // their value's class (ir/SpillRewriter.cpp).
    SpillRewriteStats Stats = rewriteSpills(Out.Rewritten, Spilled);
    Out.Spills.NumLoads += Stats.NumLoads;
    Out.Spills.NumStores += Stats.NumStores;
    Out.Spills.NumSlots += Stats.NumSlots;

    // CISC targets absorb single-use reloads into addressing modes, which
    // removes their temporaries before the next round measures pressure.
    if (Options.FoldMemoryOperands && Target.MaxMemOperands > 0) {
      PhaseSpan FoldSpan(Phase::OperandFold);
      Out.LoadsFolded +=
          foldMemoryOperands(Out.Rewritten, Target).LoadsFolded;
    }

    Pinned.resize(Out.Rewritten.numValues(), 0);
    for (VertexId V = 0; V < Spilled.size(); ++V)
      if (Spilled[V])
        Pinned[V] = 1;
  }

  // Final assignment over whatever still lives in registers.
  AllocationProblem P =
      buildSsaProblem(Out.Rewritten, Target, Budgets, WS);
  AllocationResult Final = [&] {
    PhaseSpan AllocSpan(Phase::Allocate);
    return Alloc->allocateProblem(P, WS);
  }();
  Out.FinalMaxLive = P.maxLive();
  bool FinalFits = P.fitsBudgets();

  PhaseSpan AssignSpan(Phase::Assign);
  std::vector<Affinity> Affinities = collectAffinities(Out.Rewritten);
  Out.Regs = Options.AffinityBias
                 ? assignRegistersBiased(P, Final.Allocated, Affinities)
                 : assignRegisters(P, Final.Allocated);
  Out.TotalSpillCost += Final.SpillCost;
  Out.RemainingCopyCost =
      remainingCopyCost(Affinities, Final.Allocated, Out.Regs.RegisterOf);
  Out.Fits = FinalFits || (Final.SpillCost == 0 && Out.Regs.Success);
  Out.Fits = Out.Fits && Out.Regs.Success;
  return Out;
}
