//===- alloc/Pipeline.cpp - Iterative allocation pipeline ------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/Pipeline.h"

#include "core/Coalescing.h"
#include "core/Delta.h"
#include "core/ProblemBuilder.h"
#include "core/SolverWorkspace.h"
#include "ir/Liveness.h"
#include "ir/OperandFolding.h"
#include "obs/Trace.h"
#include "support/Compiler.h"

#include <optional>

using namespace layra;

PipelineResult layra::runAllocationPipeline(const Function &F,
                                            const TargetDesc &Target,
                                            unsigned NumRegisters,
                                            const PipelineOptions &Options,
                                            SolverWorkspace *WS) {
  std::vector<unsigned> Budgets =
      resolveClassBudgets(Target, NumRegisters, {});
  return runAllocationPipeline(F, Target, Budgets, Options, WS);
}

PipelineResult layra::runAllocationPipeline(
    const Function &F, const TargetDesc &Target,
    const std::vector<unsigned> &Budgets, const PipelineOptions &Options,
    SolverWorkspace *WS, PipelineDeltaContext *Delta) {
  assert(verifyFunction(F, /*ExpectSsa=*/true) &&
         "pipeline requires strict SSA input");
  PhaseSpan PipelineSpan(Phase::Pipeline);
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  std::unique_ptr<Allocator> Alloc = makeAllocator(Options.AllocatorName);
  if (!Alloc)
    layraFatalError("unknown allocator name in pipeline options");

  const DeltaBase *Base = Delta ? Delta->Base : nullptr;
  DeltaBase *Capture = Delta ? Delta->Capture : nullptr;
  assert(!(Base && Capture) && "a run either consumes a base or becomes one");
  if (Capture) {
    Capture->Ssa = F;
    Capture->AllocatorName = Options.AllocatorName;
  }
  bool ExactRound0 = false;

  PipelineResult Out;
  Out.Rewritten = F;

  // The problem matching Out.Rewritten, when one has been built and no
  // rewrite invalidated it.  Rounds that exit the loop via `break` leave
  // it valid, so the final assignment reuses it instead of rebuilding --
  // one buildSsaProblem saved on every function that converges (which is
  // most of them), with identical results: the rebuild would run on the
  // exact same function.
  std::optional<AllocationProblem> Current;
  bool CurrentIsRound0 = false;

  // Round-0 problem: the only build the delta machinery touches.  A
  // compatible base sidesteps liveness/interference/MCS wholesale; a
  // capture run exports those artifacts for future deltas.  Both produce
  // the same problem a plain build would.
  auto buildRound0 = [&]() -> AllocationProblem {
    if (Base) {
      AllocationProblem P;
      if (buildDeltaProblem(*Base, F, Target, Budgets, P, ExactRound0)) {
        Delta->UsedDelta = true;
        return P;
      }
    }
    if (Capture) {
      ProblemBuildArtifacts Artifacts;
      AllocationProblem P = buildSsaProblem(F, Target, Budgets, WS, &Artifacts);
      Capture->Live = std::move(Artifacts.Live);
      Capture->Costs = std::move(Artifacts.Costs);
      return P;
    }
    return buildSsaProblem(F, Target, Budgets, WS);
  };

  // Allocates \p P, warm-starting from the base when the round-0 problem
  // is provably identical to the base's (allocateProblem is a pure
  // function of the problem, so reusing its retained result is exact).
  // A capture run retains the first allocation of the round-0 problem.
  auto allocateCurrent = [&](const AllocationProblem &P,
                             bool IsRound0) -> AllocationResult {
    if (IsRound0 && Delta && Delta->UsedDelta && ExactRound0 &&
        Base->HasRound0 && Base->AllocatorName == Options.AllocatorName) {
      Delta->WarmStarted = true;
      return Base->Round0;
    }
    AllocationResult Result = [&] {
      PhaseSpan AllocSpan(Phase::Allocate);
      return Alloc->allocateProblem(P, WS);
    }();
    if (IsRound0 && Capture && !Capture->HasRound0) {
      Capture->Problem = P;
      Capture->Round0 = Result;
      Capture->HasRound0 = true;
    }
    return Result;
  };

  // Values spilled in an earlier round live only from def to the adjacent
  // store; spilling them again would be wasted motion, so they are pinned.
  std::vector<char> &Pinned =
      WS->acquire(WS->Pipeline.Pinned, F.numValues(), char(0));

  for (unsigned Round = 0; Round < Options.MaxRounds; ++Round) {
    PhaseSpan RoundSpan(Phase::SpillRound);
    ++Out.Rounds;
    obs::addSpillRound();
    Current.emplace(Round == 0
                        ? buildRound0()
                        : buildSsaProblem(Out.Rewritten, Target, Budgets, WS));
    CurrentIsRound0 = (Round == 0);
    AllocationProblem &P = *Current;
    if (P.fitsBudgets())
      break; // Every class fits already; nothing to spill this round.

    // allocateProblem decomposes multi-class instances per register class;
    // single-class instances take the historical direct path.
    AllocationResult Result = allocateCurrent(P, CurrentIsRound0);
    // Pin-aware spill set: never re-spill a pinned value.
    std::vector<char> &Spilled =
        WS->acquire(WS->Pipeline.Spilled, Out.Rewritten.numValues(), char(0));
    unsigned NumSpilled = 0;
    for (VertexId V = 0; V < P.graph().numVertices(); ++V) {
      if (Result.Allocated[V] || (V < Pinned.size() && Pinned[V]))
        continue;
      Spilled[V] = 1;
      Out.TotalSpillCost += P.graph().weight(V);
      ++NumSpilled;
    }
    if (NumSpilled == 0)
      break; // Allocator found nothing (more) to spill.

    // One rewrite covers every class's spills; reload temporaries inherit
    // their value's class (ir/SpillRewriter.cpp).
    SpillRewriteStats Stats = rewriteSpills(Out.Rewritten, Spilled);
    Out.Spills.NumLoads += Stats.NumLoads;
    Out.Spills.NumStores += Stats.NumStores;
    Out.Spills.NumSlots += Stats.NumSlots;

    // CISC targets absorb single-use reloads into addressing modes, which
    // removes their temporaries before the next round measures pressure.
    if (Options.FoldMemoryOperands && Target.MaxMemOperands > 0) {
      PhaseSpan FoldSpan(Phase::OperandFold);
      Out.LoadsFolded +=
          foldMemoryOperands(Out.Rewritten, Target).LoadsFolded;
    }

    Pinned.resize(Out.Rewritten.numValues(), 0);
    for (VertexId V = 0; V < Spilled.size(); ++V)
      if (Spilled[V])
        Pinned[V] = 1;
    Current.reset(); // Rewritten changed; the problem no longer matches.
    CurrentIsRound0 = false;
  }

  // Final assignment over whatever still lives in registers.
  if (!Current) {
    Current.emplace(buildSsaProblem(Out.Rewritten, Target, Budgets, WS));
    CurrentIsRound0 = false;
  }
  AllocationProblem &P = *Current;
  AllocationResult Final = allocateCurrent(P, CurrentIsRound0);
  Out.FinalMaxLive = P.maxLive();
  bool FinalFits = P.fitsBudgets();

  PhaseSpan AssignSpan(Phase::Assign);
  std::vector<Affinity> Affinities = collectAffinities(Out.Rewritten);
  Out.Regs = Options.AffinityBias
                 ? assignRegistersBiased(P, Final.Allocated, Affinities)
                 : assignRegisters(P, Final.Allocated);
  Out.TotalSpillCost += Final.SpillCost;
  Out.RemainingCopyCost =
      remainingCopyCost(Affinities, Final.Allocated, Out.Regs.RegisterOf);
  Out.Fits = FinalFits || (Final.SpillCost == 0 && Out.Regs.Success);
  Out.Fits = Out.Fits && Out.Regs.Success;
  return Out;
}
