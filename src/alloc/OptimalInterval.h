//===- alloc/OptimalInterval.h - Flow-exact interval solver -----*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Provably optimal spill-everywhere allocation for *interval* instances
/// (straight-line/basic-block code, the classical linear-scan setting):
/// selecting a maximum-weight set of intervals with at most R overlapping
/// anywhere is a min-cost-flow problem.  Layra uses it as an independent
/// oracle to cross-check the branch-and-bound solver.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_ALLOC_OPTIMALINTERVAL_H
#define LAYRA_ALLOC_OPTIMALINTERVAL_H

#include "ir/LiveIntervals.h"

#include <vector>

namespace layra {

class SolverWorkspace;

/// Selects a maximum-weight subset of \p Intervals such that at most
/// \p NumRegisters of the chosen ones overlap at any point.
/// \returns flags parallel to \p Intervals: 1 = keep in a register.
///
/// Exactness: the flow network (a capacity-R chain over event coordinates
/// with a capacity-1 bypass arc per interval of cost -weight) has integral
/// optima, and min-cost R-flows correspond exactly to feasible selections.
std::vector<char>
selectIntervalsOptimal(const std::vector<LiveInterval> &Intervals,
                       unsigned NumRegisters, SolverWorkspace *WS = nullptr);

} // namespace layra

#endif // LAYRA_ALLOC_OPTIMALINTERVAL_H
