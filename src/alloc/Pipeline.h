//===- alloc/Pipeline.h - Iterative allocation pipeline ---------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end driver a backend would call: allocate, materialise spill
/// code, and -- because reload temporaries themselves occupy registers
/// (paper §4.3: "we can iteratively update the interferences after
/// allocation") -- re-derive the interference graph and iterate until the
/// function's register pressure fits the machine.  Optionally coalesces
/// copies conservatively first and biases the final assignment so affine
/// values share registers.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_ALLOC_PIPELINE_H
#define LAYRA_ALLOC_PIPELINE_H

#include "alloc/Allocator.h"
#include "core/Assignment.h"
#include "ir/Program.h"
#include "ir/SpillRewriter.h"
#include "ir/Target.h"

#include <string>

namespace layra {

class SolverWorkspace;
struct PipelineDeltaContext;

/// Configuration of one pipeline run.
struct PipelineOptions {
  /// Allocator name (makeAllocator) used each round.
  std::string AllocatorName = "bfpl";
  /// Bias the final assignment toward removing copies.
  bool AffinityBias = true;
  /// Safety cap on allocate/rewrite rounds.
  unsigned MaxRounds = 4;
  /// On targets with addressing modes (TargetDesc::MaxMemOperands > 0),
  /// fold single-use reloads into their consumers after each rewrite
  /// round (paper §4.3).  Folding deletes reload temporaries, so it only
  /// ever lowers the pressure the next round sees.
  bool FoldMemoryOperands = true;
};

/// Outcome of the pipeline.
struct PipelineResult {
  /// The function with all spill code inserted (SSA is preserved).
  Function Rewritten{"<empty>"};
  /// Final register assignment over the rewritten function's values.
  Assignment Regs;
  /// Total static spill cost across rounds (weights of spilled values).
  Weight TotalSpillCost = 0;
  /// Aggregate spill-code statistics.  NumLoads counts reloads as inserted;
  /// LoadsFolded of them were later absorbed into memory operands.
  SpillRewriteStats Spills;
  /// Reloads folded into consuming instructions (CISC targets only).
  unsigned LoadsFolded = 0;
  /// Static cost of copies left after assignment (affinities not unified).
  Weight RemainingCopyCost = 0;
  /// Rounds executed (1 = no reload pressure correction was needed).
  unsigned Rounds = 0;
  /// MaxLive of the rewritten function.
  unsigned FinalMaxLive = 0;
  /// True when the final pressure fits NumRegisters and the assignment
  /// succeeded within the register budget.
  bool Fits = false;
};

/// Runs the full decoupled pipeline on strict-SSA \p F with \p NumRegisters
/// registers in class 0 and the target's architectural counts in any other
/// class (ir/Target.h register classes).
/// \pre verifyFunction(F, /*ExpectSsa=*/true).
///
/// \p WS optionally supplies the solver scratch shared by every round's
/// problem construction and allocation (core/SolverWorkspace.h).  The
/// BatchDriver passes one workspace per pool worker, so consecutive tasks
/// on a worker reuse the same arenas; results are bit-identical with and
/// without a workspace.
PipelineResult runAllocationPipeline(const Function &F,
                                     const TargetDesc &Target,
                                     unsigned NumRegisters,
                                     const PipelineOptions &Options = {},
                                     SolverWorkspace *WS = nullptr);

/// Per-class budget form: \p Budgets holds one register count per target
/// class (resolveClassBudgets).  Each round allocates every class -- the
/// allocator decomposes multi-class instances per class -- and rewrites
/// all spills at once; spill temporaries inherit their value's class, so
/// reload pressure stays within the file that caused it.
///
/// \p Delta optionally connects the run to the delta machinery
/// (core/Delta.h): a retained base warm-starts round 0, or the run's own
/// round-0 artifacts are captured for future deltas.  Results are
/// byte-identical with and without a delta context -- warm starts reuse
/// only values a from-scratch run would recompute identically.
PipelineResult runAllocationPipeline(const Function &F,
                                     const TargetDesc &Target,
                                     const std::vector<unsigned> &Budgets,
                                     const PipelineOptions &Options = {},
                                     SolverWorkspace *WS = nullptr,
                                     PipelineDeltaContext *Delta = nullptr);

} // namespace layra

#endif // LAYRA_ALLOC_PIPELINE_H
