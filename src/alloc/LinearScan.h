//===- alloc/LinearScan.h - Linear scan baselines ----------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-scan allocators over flattened live intervals -- the paper's §6.2
/// JIT baselines:
///  - LS ("DLS" in Figure 14): the original Poletto-Sarkar policy, spilling
///    the interval whose live range ends furthest, blind to spill costs;
///  - BLS: cost-guided spilling that falls back to Belady's furthest-first
///    rule among candidates whose costs are within a threshold of the
///    cheapest (paper: "if their costs are close enough").
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_ALLOC_LINEARSCAN_H
#define LAYRA_ALLOC_LINEARSCAN_H

#include "alloc/Allocator.h"

namespace layra {

/// Linear scan over AllocationProblem::Intervals (which must be present).
class LinearScanAllocator : public Allocator {
public:
  /// Spill-choice policy.
  enum class PolicyKind {
    FurthestEnd, ///< LS / DLS: spill the interval ending last.
    CostBelady,  ///< BLS: cheapest cost, Belady tie-break within Threshold.
  };

  explicit LinearScanAllocator(PolicyKind Policy, double Threshold = 0.25)
      : Policy(Policy), Threshold(Threshold) {}

  AllocationResult allocate(const AllocationProblem &P) override;
  const char *name() const override {
    return Policy == PolicyKind::FurthestEnd ? "ls" : "bls";
  }
  bool requiresIntervals() const override { return true; }

private:
  PolicyKind Policy;
  /// BLS: candidates with Cost <= (1 + Threshold) * min cost compete on
  /// furthest end.
  double Threshold;
};

} // namespace layra

#endif // LAYRA_ALLOC_LINEARSCAN_H
