//===- alloc/Allocator.h - Common allocator interface -----------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform interface the benchmark harness drives: every spilling
/// algorithm of the paper's evaluation (§6) is an Allocator that maps an
/// AllocationProblem to an AllocationResult.  makeAllocator() resolves the
/// names used in the paper's figures ("gc", "nl", "bl", "fpl", "bfpl", "lh",
/// "ls", "bls", "optimal", ...).
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_ALLOC_ALLOCATOR_H
#define LAYRA_ALLOC_ALLOCATOR_H

#include "core/AllocationProblem.h"

#include <memory>
#include <string>
#include <vector>

namespace layra {

class SolverWorkspace;

/// Abstract spilling/allocation algorithm.
class Allocator {
public:
  virtual ~Allocator();

  /// Solves \p P.  Results of all allocators are feasible w.r.t. the point
  /// constraints (isFeasibleAllocation); exact solvers set Result.Proven.
  virtual AllocationResult allocate(const AllocationProblem &P) = 0;

  /// Workspace-aware entry point: solves \p P reusing \p WS's scratch
  /// arenas (core/SolverWorkspace.h).  The default forwards to the plain
  /// overload; allocators with reusable scratch override it.  Results are
  /// bit-identical across the two entry points and across workspace
  /// histories -- a workspace only carries capacity, never state.
  virtual AllocationResult allocate(const AllocationProblem &P,
                                    SolverWorkspace *WS) {
    (void)WS;
    return allocate(P);
  }

  /// Class-aware entry point -- what the pipeline and the batch driver
  /// call.  Single-class instances go straight to allocate() (identical
  /// results, identical cost).  Multi-class instances decompose exactly
  /// into independent per-class subproblems -- classes never share a
  /// pressure constraint -- which are each solved with this allocator and
  /// merged; Proven holds iff every class's solve proved optimality, and
  /// since the objective is additive across classes the merged result is
  /// optimal whenever the parts are.
  AllocationResult allocateProblem(const AllocationProblem &P,
                                   SolverWorkspace *WS = nullptr);

  /// Short name as used in the paper's figures.
  virtual const char *name() const = 0;

  /// True when this allocator consumes AllocationProblem::Intervals (the
  /// linear-scan family).  Batch entry points check it up front so a
  /// graph-only instance (fromChordalGraph / fromGeneralGraph paths, which
  /// carry no interval table) produces a clean per-call error instead of a
  /// process-killing fatal inside the solve.
  virtual bool requiresIntervals() const { return false; }
};

/// Creates an allocator by figure name.  Known names:
///   "gc"            Chaitin-Briggs optimistic graph coloring
///   "nl","bl","fpl","bfpl"  the layered-optimal variants (chordal only)
///   "lh"            layered heuristic (any graph)
///   "ls"            linear scan, cost-blind furthest-end spilling ("DLS")
///   "bls"           linear scan with cost/Belady threshold spilling
///   "optimal"       exact branch-and-bound over the point constraints
///   "brute"         exhaustive search (tiny instances; tests)
/// Returns nullptr for unknown names.
std::unique_ptr<Allocator> makeAllocator(const std::string &Name);

/// All names makeAllocator accepts (in a stable presentation order).
std::vector<std::string> allAllocatorNames();

} // namespace layra

#endif // LAYRA_ALLOC_ALLOCATOR_H
