//===- alloc/LinearScan.cpp - Linear scan baselines ------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/LinearScan.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace layra;

AllocationResult LinearScanAllocator::allocate(const AllocationProblem &P) {
  if (!P.Intervals)
    layraFatalError("linear scan requires live intervals on the problem");
  const LiveIntervalTable &Table = *P.Intervals;
  unsigned R = P.uniformBudget();

  std::vector<char> Flags(P.graph().numVertices(), 0);
  // Active list kept sorted by increasing End (classic linear scan).
  std::vector<LiveInterval> Active;

  auto InsertActive = [&](const LiveInterval &I) {
    auto It = std::upper_bound(Active.begin(), Active.end(), I,
                               [](const LiveInterval &A,
                                  const LiveInterval &B) {
                                 return A.End < B.End;
                               });
    Active.insert(It, I);
  };

  for (const LiveInterval &Current : Table.Intervals) {
    // Expire intervals whose range ended before this start.
    size_t Keep = 0;
    for (const LiveInterval &A : Active) {
      if (A.End >= Current.Start)
        Active[Keep++] = A;
    }
    Active.resize(Keep);

    if (Active.size() < R) {
      Flags[Current.V] = 1;
      InsertActive(Current);
      continue;
    }
    if (R == 0)
      continue; // Everything spills.

    // Choose a victim among the active intervals and the current one.
    // Candidates for eviction: Active + Current.
    auto SpillVictim = [&]() -> size_t {
      // Returns index into Active, or Active.size() for Current.
      if (Policy == PolicyKind::FurthestEnd) {
        // Active is sorted by End; the last active interval ends furthest.
        const LiveInterval &Last = Active.back();
        return Last.End > Current.End ? Active.size() - 1 : Active.size();
      }
      // CostBelady: find the cheapest candidates, then the furthest end
      // among those within the threshold.
      Weight MinCost = Current.Cost;
      for (const LiveInterval &A : Active)
        MinCost = std::min(MinCost, A.Cost);
      double Limit = static_cast<double>(MinCost) * (1.0 + Threshold);
      size_t Best = Active.size(); // Current by default.
      unsigned BestEnd = Current.End;
      bool CurrentEligible = static_cast<double>(Current.Cost) <= Limit;
      if (!CurrentEligible)
        BestEnd = 0;
      for (size_t I = 0; I < Active.size(); ++I) {
        if (static_cast<double>(Active[I].Cost) > Limit)
          continue;
        if (Best == Active.size() && !CurrentEligible) {
          Best = I;
          BestEnd = Active[I].End;
          continue;
        }
        if (Active[I].End > BestEnd) {
          Best = I;
          BestEnd = Active[I].End;
        }
      }
      return Best;
    };

    size_t Victim = SpillVictim();
    if (Victim == Active.size()) {
      // Spill the current interval: it never enters a register.
      continue;
    }
    // Spill an active interval and allocate the current one in its place.
    Flags[Active[Victim].V] = 0;
    Active.erase(Active.begin() + static_cast<long>(Victim));
    Flags[Current.V] = 1;
    InsertActive(Current);
  }

  return AllocationResult::fromFlags(P.graph(), std::move(Flags));
}
